(* Golden-trace regression tests for the rule/event discrimination index.

   The indexed dispatch path in Shell.occurred must be observationally
   identical to the naive linear scan it replaced: same rules selected,
   same firing order, same generated events, same everything.  These
   tests pin that down end-to-end by running three representative
   workloads (the E1 propagation run, the E4 demarcation run, and the
   E13 lossy-network run) at fixed seeds and comparing the MD5 digest of
   their full Trace_io dump against digests recorded at the commit just
   before the index was introduced.

   If a change to rule dispatch, translator lookup, or shell bookkeeping
   reorders so much as one event, the digest moves and the test names
   the workload that diverged.  To re-record after an *intentional*
   semantic change: GOLDEN_PRINT=1 dune exec test/test_golden_traces.exe *)

open Cm_rule
module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Sys_ = Cm_core.System
module Reliable = Cm_core.Reliable
module Payroll = Cm_workload.Payroll
module Bank = Cm_workload.Bank

let digest_of_trace trace =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Trace_io.event_to_line e);
      Buffer.add_char buf '\n')
    (Trace.events trace);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* E1: notify+write propagation, 20 employees, Poisson updates. *)
let e1_trace () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 101) ~employees:20 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:10.0 ~until:3000.0;
  Sys_.run p.Payroll.system ~until:3600.0;
  Sys_.trace p.Payroll.system

(* E4: demarcation protocol, 200 random X updates, conservative policy. *)
let e4_trace () =
  let b =
    Bank.create ~config:(Sys_.Config.seeded 42)
      ~policy:Cm_core.Demarcation.Conservative ()
  in
  let sim = Sys_.sim b.Bank.system in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let ops = 200 in
  for i = 1 to ops do
    Sim.schedule_at sim (float_of_int i *. 10.0) (fun () ->
        let v = Cm_util.Prng.int rng 100 in
        match Bank.try_set_x b v with
        | Bank.Applied -> ()
        | Bank.Requested ->
          Sim.schedule sim ~delay:5.0 (fun () -> ignore (Bank.try_set_x b v)))
  done;
  Sys_.run b.Bank.system ~until:(float_of_int ops *. 10.0 +. 100.0);
  Sys_.trace b.Bank.system

(* E13: propagation over a lossy network behind the reliable layer. *)
let e13_trace () =
  let p =
    Payroll.create
      ~config:
        Sys_.Config.(
          seeded 1300
          |> with_faults { Net.drop_prob = 0.2; dup_prob = 0.1 }
          |> with_reliable Reliable.default_config)
      ~employees:3 ()
  in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
  Sys_.run p.Payroll.system ~until:700.0;
  Sys_.trace p.Payroll.system

let goldens =
  [
    ("e1-propagation", e1_trace);
    ("e4-demarcation", e4_trace);
    ("e13-lossy-reliable", e13_trace);
  ]

(* Digests recorded on the pre-index dispatch path (commit b3e2a08). *)
let expected = function
  | "e1-propagation" -> "2f775ff9655ece706b10c6c48fbc1dcb"
  | "e4-demarcation" -> "42ab225224d9340d38cb80ef6c0b0fbd"
  | "e13-lossy-reliable" -> "d4e49c4049e9940d6eb614e74a6f9538"
  | name -> Alcotest.fail ("no golden digest recorded for " ^ name)

let check_golden name trace () =
  Alcotest.(check string)
    (name ^ " trace digest unchanged since pre-index recording")
    (expected name)
    (digest_of_trace (trace ()))

let () =
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then begin
    List.iter
      (fun (name, trace) ->
        Printf.printf "%s %s\n%!" name (digest_of_trace (trace ())))
      goldens;
    exit 0
  end;
  Alcotest.run "golden_traces"
    [
      ( "byte-identical traces",
        List.map
          (fun (name, trace) -> Alcotest.test_case name `Quick (check_golden name trace))
          goldens );
    ]
