(* Golden-trace regression tests for the rule/event discrimination index.

   The indexed dispatch path in Shell.occurred must be observationally
   identical to the naive linear scan it replaced: same rules selected,
   same firing order, same generated events, same everything.  These
   tests pin that down end-to-end by running three representative
   workloads (the E1 propagation run, the E4 demarcation run, and the
   E13 lossy-network run) at fixed seeds and comparing the MD5 digest of
   their full Trace_io dump against digests recorded at the commit just
   before the index was introduced.

   If a change to rule dispatch, translator lookup, or shell bookkeeping
   reorders so much as one event, the digest moves and the test names
   the workload that diverged.  To re-record after an *intentional*
   semantic change: GOLDEN_PRINT=1 dune exec test/test_golden_traces.exe *)

open Cm_rule
module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Sys_ = Cm_core.System
module Reliable = Cm_core.Reliable
module Payroll = Cm_workload.Payroll
module Bank = Cm_workload.Bank

let digest_of_trace trace =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Trace_io.event_to_line e);
      Buffer.add_char buf '\n')
    (Trace.events trace);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* E1: notify+write propagation, 20 employees, Poisson updates. *)
let e1_trace () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 101) ~employees:20 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:10.0 ~until:3000.0;
  Sys_.run p.Payroll.system ~until:3600.0;
  Sys_.trace p.Payroll.system

(* E4: demarcation protocol, 200 random X updates, conservative policy. *)
let e4_trace () =
  let b =
    Bank.create ~config:(Sys_.Config.seeded 42)
      ~policy:Cm_core.Demarcation.Conservative ()
  in
  let sim = Sys_.sim b.Bank.system in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let ops = 200 in
  for i = 1 to ops do
    Sim.schedule_at sim (float_of_int i *. 10.0) (fun () ->
        let v = Cm_util.Prng.int rng 100 in
        match Bank.try_set_x b v with
        | Bank.Applied -> ()
        | Bank.Requested ->
          Sim.schedule sim ~delay:5.0 (fun () -> ignore (Bank.try_set_x b v)))
  done;
  Sys_.run b.Bank.system ~until:(float_of_int ops *. 10.0 +. 100.0);
  Sys_.trace b.Bank.system

(* E13: propagation over a lossy network behind the reliable layer. *)
let e13_trace () =
  let p =
    Payroll.create
      ~config:
        Sys_.Config.(
          seeded 1300
          |> with_faults { Net.drop_prob = 0.2; dup_prob = 0.1 }
          |> with_reliable Reliable.default_config)
      ~employees:3 ()
  in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
  Sys_.run p.Payroll.system ~until:700.0;
  Sys_.trace p.Payroll.system

(* ---- sharded runs of the same workloads ----------------------------

   A Fabric with [shards = 1] (the config default) is documented to BE
   the sequential path — plain delegation, stream draws, dense ids.
   These variants rebuild E1/E4/E13 on a one-shard fabric (the workload
   constructors accept the fabric-owned system via [?system]) and must
   reproduce the very same pre-index digests byte for byte. *)

module Fabric = Cm_shard.Shard.Fabric

let e1_sharded_trace () =
  let fab =
    Fabric.create
      ~config:Sys_.Config.(seeded 101 |> with_shards 1)
      ~assign:(fun _ -> 0) Payroll.locator
  in
  let p = Payroll.create ~system:(Fabric.system fab 0) ~employees:20 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:10.0 ~until:3000.0;
  Fabric.run fab ~until:3600.0;
  Sys_.trace (Fabric.system fab 0)

let e4_sharded_trace () =
  let fab =
    Fabric.create
      ~config:Sys_.Config.(seeded 42 |> with_shards 1)
      ~assign:(fun _ -> 0) Bank.locator
  in
  let b =
    Bank.create ~system:(Fabric.system fab 0)
      ~policy:Cm_core.Demarcation.Conservative ()
  in
  let sim = Sys_.sim b.Bank.system in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let ops = 200 in
  for i = 1 to ops do
    Sim.schedule_at sim (float_of_int i *. 10.0) (fun () ->
        let v = Cm_util.Prng.int rng 100 in
        match Bank.try_set_x b v with
        | Bank.Applied -> ()
        | Bank.Requested ->
          Sim.schedule sim ~delay:5.0 (fun () -> ignore (Bank.try_set_x b v)))
  done;
  Fabric.run fab ~until:(float_of_int ops *. 10.0 +. 100.0);
  Sys_.trace (Fabric.system fab 0)

let e13_sharded_trace () =
  let config =
    Sys_.Config.(
      seeded 1300
      |> with_faults { Net.drop_prob = 0.2; dup_prob = 0.1 }
      |> with_reliable Reliable.default_config |> with_shards 1)
  in
  let fab = Fabric.create ~config ~assign:(fun _ -> 0) Payroll.locator in
  let p = Payroll.create ~system:(Fabric.system fab 0) ~employees:3 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
  Fabric.run fab ~until:700.0;
  Sys_.trace (Fabric.system fab 0)

(* ---- a multi-shard canonical-digest golden -------------------------

   Fixed four-site chain world, jitter-free with distinct per-link
   latencies, run at shards 1 and 2.  The canonical (id-free, sorted)
   digest must match across the two layouts and match the recorded
   constant — this pins the cross-shard merge itself, not just the
   degenerate delegation path. *)

let chain_site i = Printf.sprintf "s%d" i

let chain_locator item =
  let b = item.Item.base in
  if String.length b > 1 && b.[0] = 'X' then
    match int_of_string_opt (String.sub b 1 (String.length b - 1)) with
    | Some i -> chain_site i
    | None -> chain_site 0
  else chain_site 0

let chain_rules =
  Parser.parse_rules
    "u0: U(X0, v) ->[5] C(X1, v)\n\
     c1: C(X1, v) ->[5] W(X1, v)\n\
     u1: U(X1, v) ->[5] C(X2, v)\n\
     c2: C(X2, v) ->[5] W(X2, v)\n\
     d2: C(X2, v) ->[5] D(X3, v)\n\
     e3: D(X3, v) ->[5] W(X3, v)\n\
     u3: U(X3, v) ->[5] C(X0, v)\n\
     c0: C(X0, v) ->[5] W(X0, v)\n"

let chain_updates = [ (0, 1001, 0.5); (1, 1002, 1.1); (3, 1003, 1.7); (0, 1004, 2.3); (2, 1005, 2.9) ]

let chain_digest ~shards () =
  let config = Sys_.Config.(seeded 7700 |> with_shards shards) in
  let fab =
    Fabric.create ~config
      ~assign:(fun s -> if shards > 1 && (s = "s1" || s = "s3") then 1 else 0)
      chain_locator
  in
  for i = 0 to 3 do
    ignore (Fabric.add_shell fab ~site:(chain_site i))
  done;
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i <> j then
        Fabric.set_latency fab ~from_site:(chain_site i) ~to_site:(chain_site j)
          { Net.base = 0.3 +. (0.01 *. float_of_int ((i * 4) + j)); jitter = 0.0 }
    done
  done;
  Fabric.install fab
    {
      Cm_core.Strategy.strategy_name = "chain";
      description = "golden chain world";
      rules = chain_rules;
      aux_init = [];
    };
  List.iter
    (fun (i, v, t) ->
      let s = chain_site i in
      let emit =
        Cm_core.Shell.emitter_for (Fabric.shell_for fab ~site:s) ~site:s
      in
      Fabric.at fab ~site:s t (fun () ->
          ignore
            (emit
               {
                 Event.name = "U";
                 args =
                   [
                     Event.Ai (Item.make (Printf.sprintf "X%d" i));
                     Event.Av (Value.Int v);
                   ];
               }
               ~kind:Event.Spontaneous)))
    chain_updates;
  Fabric.run fab ~until:20.0;
  Fabric.trace_digest fab

let chain_expected = "7ea1a3130a5fb6eae879ad070b48d7c9"

let check_chain_golden shards () =
  Alcotest.(check string)
    (Printf.sprintf "canonical chain digest at %d shard(s)" shards)
    chain_expected
    (chain_digest ~shards ())

let goldens =
  [
    ("e1-propagation", e1_trace);
    ("e4-demarcation", e4_trace);
    ("e13-lossy-reliable", e13_trace);
    ("e1-propagation-sharded", e1_sharded_trace);
    ("e4-demarcation-sharded", e4_sharded_trace);
    ("e13-lossy-reliable-sharded", e13_sharded_trace);
  ]

(* Digests recorded on the pre-index dispatch path (commit b3e2a08).
   The -sharded variants run the same workloads through a one-shard
   fabric and must hit the very same bytes. *)
let expected = function
  | "e1-propagation" | "e1-propagation-sharded" ->
    "2f775ff9655ece706b10c6c48fbc1dcb"
  | "e4-demarcation" | "e4-demarcation-sharded" ->
    "42ab225224d9340d38cb80ef6c0b0fbd"
  | "e13-lossy-reliable" | "e13-lossy-reliable-sharded" ->
    "d4e49c4049e9940d6eb614e74a6f9538"
  | name -> Alcotest.fail ("no golden digest recorded for " ^ name)

let check_golden name trace () =
  Alcotest.(check string)
    (name ^ " trace digest unchanged since pre-index recording")
    (expected name)
    (digest_of_trace (trace ()))

let () =
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then begin
    List.iter
      (fun (name, trace) ->
        Printf.printf "%s %s\n%!" name (digest_of_trace (trace ())))
      goldens;
    Printf.printf "chain-canonical-1 %s\n%!" (chain_digest ~shards:1 ());
    Printf.printf "chain-canonical-2 %s\n%!" (chain_digest ~shards:2 ());
    exit 0
  end;
  Alcotest.run "golden_traces"
    [
      ( "byte-identical traces",
        List.map
          (fun (name, trace) -> Alcotest.test_case name `Quick (check_golden name trace))
          goldens );
      ( "canonical digest across shard layouts",
        [
          Alcotest.test_case "chain-1-shard" `Quick (check_chain_golden 1);
          Alcotest.test_case "chain-2-shards" `Quick (check_chain_golden 2);
        ] );
    ]
