(* Streaming §3.3 monitors (Cm_core.Monitor).

   The heart of this file is the differential suite: hundreds of seeded
   random traces — same-instant micro-batches, INS/DEL interleavings,
   repeated values, parameterized items — fed event-by-event into the
   streaming monitors, then re-checked with the post-hoc Guarantee.check
   fold over the identical timeline.  Verdict, obligation count, and
   violation flag must agree trace-by-trace for every supported form.

   On top sit the self-healing units: live staleness verdicts (the §5
   Silent_drop failure caught within κ plus one poll period, where the
   fold only notices at the end of the run), staleness transitions,
   forced refreshes, and feed-discipline errors. *)

module Sys_ = Cm_core.System
module Monitor = Cm_core.Monitor
module Guarantee = Cm_core.Guarantee
module Tr_rel = Cm_core.Tr_relational
module Health = Cm_sources.Health
module Payroll = Cm_workload.Payroll
module Prng = Cm_util.Prng
open Cm_rule

(* ---- differential suite ------------------------------------------- *)

(* A small alphabet with shared last characters, so the feed path's
   base-filter bitmap sees both definitive misses and false-positive
   hits that must still fall through to the exact lookup. *)
let bases = [| "x"; "y"; "z"; "qx"; "qy" |]

let values = [| 1; 2; 3; 42 |]

(* One random trace: events in time order with deliberate same-instant
   clusters (micro-batches), weighted toward writes. *)
let random_events rng ~n =
  let time = ref 0.0 in
  List.init n (fun _ ->
      (* ~1/3 of events share the previous instant. *)
      if Prng.int rng 3 > 0 then
        time := !time +. (0.1 +. Prng.uniform_in rng ~lo:0.0 ~hi:2.0);
      let item = Item.make bases.(Prng.int rng (Array.length bases)) in
      let desc =
        match Prng.int rng 10 with
        | 0 -> Event.ins item
        | 1 -> Event.del item
        | _ -> Event.w item (Value.Int values.(Prng.int rng (Array.length values)))
      in
      (!time, desc))

let forms ~leader ~follower =
  let pair = { Guarantee.leader; follower } in
  [
    Guarantee.Follows pair;
    Guarantee.Leads pair;
    Guarantee.Strictly_follows pair;
    Guarantee.Metric_follows (pair, 0.5);
    Guarantee.Metric_follows (pair, 3.0);
    Guarantee.Metric_follows (pair, 50.0);
    Guarantee.Always_leq { smaller = leader; larger = follower };
  ]

(* Feed one trace through watchers for every form over every ordered
   base pair, finalize, and compare each verdict against the fold. *)
let differential_one ~seed ~n ~with_initial ~ignore_after () =
  let rng = Prng.create ~seed in
  let events = random_events rng ~n in
  let horizon =
    List.fold_left (fun acc (t, _) -> Float.max acc t) 0.0 events +. 1.0
  in
  let ignore_after =
    if ignore_after then Some (horizon /. 2.0) else None
  in
  let initial =
    if with_initial then
      [ (Item.make "x", Value.Int 1); (Item.make "y", Value.Int 2) ]
    else []
  in
  let m = Monitor.create () in
  let trace = Trace.create () in
  Monitor.attach m trace;
  let watched =
    List.concat_map
      (fun leader ->
        List.concat_map
          (fun follower ->
            if String.equal leader follower then []
            else
              List.map
                (fun g -> (g, Monitor.watch ?ignore_after m g))
                (forms ~leader:(Item.make leader)
                   ~follower:(Item.make follower)))
          [ "x"; "y"; "qx" ])
      [ "x"; "y"; "qx" ]
  in
  if initial <> [] then Monitor.note_initial m initial;
  List.iter
    (fun (time, desc) -> ignore (Trace.record trace ~time ~site:"s" desc))
    events;
  Monitor.finalize m ~horizon;
  let tl = Timeline.of_trace ~initial trace in
  List.iter
    (fun (g, handle) ->
      let v = Monitor.verdict handle in
      let rep = Guarantee.check ?ignore_after ~horizon tl g in
      let label =
        Printf.sprintf "seed %d %s" seed (Guarantee.to_string g)
      in
      Alcotest.(check bool) (label ^ ": holds") rep.Guarantee.holds
        v.Monitor.v_holds;
      Alcotest.(check int) (label ^ ": points") rep.Guarantee.checked_points
        v.Monitor.v_points;
      Alcotest.(check bool)
        (label ^ ": violations consistent")
        (not rep.Guarantee.holds)
        (v.Monitor.v_violations > 0))
    watched

let differential_sweep () =
  for seed = 1 to 150 do
    differential_one ~seed ~n:60 ~with_initial:(seed mod 2 = 0)
      ~ignore_after:(seed mod 3 = 0) ()
  done

(* Longer traces stress state pruning (κ windows, leads discharge). *)
let differential_long () =
  for seed = 500 to 520 do
    differential_one ~seed ~n:400 ~with_initial:(seed mod 2 = 0)
      ~ignore_after:false ()
  done

(* The empty trace: finalize alone must reproduce the fold's vacuous
   verdicts (always-leq still samples the 0.0 point when initial values
   exist). *)
let differential_empty () =
  differential_one ~seed:9999 ~n:0 ~with_initial:true ~ignore_after:false ()

(* ---- violation stream --------------------------------------------- *)

let violations_surface_immediately () =
  let m = Monitor.create () in
  let seen = ref [] in
  Monitor.on_violation m (fun v -> seen := v :: !seen);
  let x = Item.make "x" and y = Item.make "y" in
  ignore (Monitor.watch m (Guarantee.Follows { leader = x; follower = y }));
  let ev id time desc =
    { Event.id; time; site = "s"; desc; kind = Event.Spontaneous }
  in
  Monitor.feed m (ev 0 1.0 (Event.w x (Value.Int 1)));
  Monitor.feed m (ev 1 2.0 (Event.w y (Value.Int 7)));
  (* The batch at 2.0 is still open; the next event closes it, and the
     violation (y = 7 never held by x) surfaces attributed to the
     instant of its obligation, 2.0 — not to the event that happened to
     close the batch. *)
  Monitor.feed m (ev 2 3.0 (Event.w x (Value.Int 1)));
  (match !seen with
  | [ v ] ->
    Alcotest.(check (float 1e-9)) "attributed to its instant" 2.0 v.Monitor.vi_at
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  Monitor.finalize m ~horizon:10.0;
  Alcotest.(check int) "no duplicate at finalize" 1 (List.length !seen)

let feed_discipline () =
  let m = Monitor.create () in
  let x = Item.make "x" in
  ignore
    (Monitor.watch m
       (Guarantee.Follows { leader = x; follower = Item.make "y" }));
  let ev id time desc =
    { Event.id; time; site = "s"; desc; kind = Event.Spontaneous }
  in
  Monitor.feed m (ev 0 5.0 (Event.w x (Value.Int 1)));
  (match Monitor.feed m (ev 1 4.0 (Event.w x (Value.Int 2))) with
  | () -> Alcotest.fail "out-of-order feed accepted"
  | exception Invalid_argument _ -> ());
  Monitor.finalize m ~horizon:10.0;
  match Monitor.feed m (ev 2 6.0 (Event.w x (Value.Int 3))) with
  | () -> Alcotest.fail "feed after finalize accepted"
  | exception Invalid_argument _ -> ()

let unsupported_forms_rejected () =
  let m = Monitor.create () in
  let g =
    Guarantee.Exists_within
      { antecedent = Item.make "x"; consequent = Item.make "y"; bound = 5.0 }
  in
  Alcotest.(check bool) "not supported" false (Monitor.supported g);
  match Monitor.watch m g with
  | _ -> Alcotest.fail "unsupported form accepted"
  | exception Invalid_argument _ -> ()

(* ---- live staleness ----------------------------------------------- *)

(* No simulation attached: time is the feed clock.  κ = 2: after the
   leader moves on, a copy still holding the old value turns stale as
   soon as the old value ages out of the (now − κ, now] window. *)
let staleness_verdict_no_sim () =
  let m = Monitor.create () in
  let transitions = ref [] in
  Monitor.on_staleness m (fun ~source:_ ~target:_ ~at ~stale ->
      transitions := (at, stale) :: !transitions);
  Monitor.watch_copy m ~source:"S" ~target:"C" ~kappa:(Some 2.0);
  Alcotest.(check bool) "unwatched pair is never stale" false
    (Monitor.copy_stale m ~source:"S" ~target:"Other");
  let s = Item.make "S" and c = Item.make "C" in
  let feed id time desc =
    Monitor.feed m { Event.id; time; site = "s"; desc; kind = Event.Spontaneous }
  in
  feed 0 1.0 (Event.w s (Value.Int 1));
  feed 1 1.0 (Event.w c (Value.Int 1));
  feed 2 5.0 (Event.w s (Value.Int 2));
  (* At 5.0 the copy's value 1 left the leader at 5.0 exactly: still
     inside the window.  By 8.0 (> 5 + κ) it has aged out — but with no
     simulation clock the passive verdict only reflects the last
     completed instant (the batch at 8.0 is still open), so quiet aging
     needs the probe's synchronous look. *)
  feed 3 8.0 (Event.w s (Value.Int 3));
  Alcotest.(check bool) "passive verdict lags the open instant" false
    (Monitor.copy_stale m ~source:"S" ~target:"C");
  Alcotest.(check bool) "force_refresh sees the aged-out value" true
    (Monitor.force_refresh m ~source:"S" ~target:"C");
  Alcotest.(check bool) "refreshed verdict is cached" true
    (Monitor.copy_stale m ~source:"S" ~target:"C");
  (* The copy catches up; the next completed instant turns it fresh. *)
  feed 4 9.0 (Event.w c (Value.Int 3));
  feed 5 10.0 (Event.w s (Value.Int 3));
  Alcotest.(check bool) "fresh after catch-up" false
    (Monitor.copy_stale m ~source:"S" ~target:"C");
  match List.rev !transitions with
  | (8.0, true) :: (9.0, false) :: [] -> ()
  | ts ->
    Alcotest.failf "expected stale@8 then fresh@9, got [%s]"
      (String.concat "; "
         (List.map (fun (at, s) -> Printf.sprintf "(%.1f,%b)" at s) ts))

(* §5 Silent_drop regression over the real payroll pipeline: writes keep
   landing on the source database (and in the trace), the notifications
   die silently.  The live verdict must flag the copy within κ plus one
   monitor tick of the dropped write — the post-hoc fold over the same
   prefix sees nothing until the horizon. *)
let silent_drop_flagged_within_kappa () =
  let config = Sys_.Config.with_monitor true (Sys_.Config.seeded 4242) in
  let p = Payroll.create ~config ~employees:1 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  let sim = Sys_.sim system in
  let monitor = Option.get (Sys_.monitor system) in
  let nsw = Cm_core.Interface.no_spontaneous_write Payroll.target_pattern in
  Sys_.declare_copies system
    ~interfaces:(Sys_.interface_rules system @ [ nsw ])
    [ ("Salary1", "Salary2") ];
  Monitor.note_initial monitor p.Payroll.initial;
  let kappa =
    match Sys_.copy_qualifies system ~source:"Salary1" ~target:"Salary2" with
    | Ok k -> k
    | Error e -> Alcotest.failf "copy does not qualify: %s" e
  in
  let emp = List.hd p.Payroll.employees in
  let stale_at = ref None in
  Monitor.on_staleness monitor (fun ~source:_ ~target:_ ~at ~stale ->
      if stale && !stale_at = None then stale_at := Some at);
  (* A healthy write propagates; then the channel starts dropping. *)
  Payroll.schedule_update p ~at:10.0 ~emp ~salary:1111;
  let health = Tr_rel.health p.Payroll.tr_a in
  Cm_sim.Sim.schedule_at sim 30.0 (fun () ->
      Health.set health Health.Silent_drop);
  Payroll.schedule_update p ~at:35.0 ~emp ~salary:2222;
  Sys_.run system ~until:100.0;
  Alcotest.(check bool) "copy is stale at the horizon" true
    (Monitor.copy_stale monitor ~source:"Salary1" ~target:"Salary2");
  match !stale_at with
  | None -> Alcotest.fail "silent drop never flagged"
  | Some at ->
    let bound = 35.0 +. kappa +. 1.0 (* + one default-tick poll period *) in
    Alcotest.(check bool)
      (Printf.sprintf "flagged at %.2f <= %.2f (write + kappa + tick)" at bound)
      true
      (at <= bound);
    Alcotest.(check bool) "not before the write aged out" true
      (at >= 35.0 +. kappa -. 1e-9)

(* ---- crash recovery (wipe + journal relearn) ---------------------- *)

let ev id time desc =
  { Event.id; time; site = "s"; desc; kind = Event.Spontaneous }

let owns_y item = String.equal item.Item.base "y"

(* The ROADMAP gap, unit-level: a crash between a violation and its
   detection must still report the violation.  Two leader takes are
   pending when the follower's site crashes; the wipe destroys the
   obligations, the journal relearn restores them, and finalize fails
   them.  The [relearn:false] control shows the gap being closed: the
   bare wipe buries both violations. *)
let crash_buried_leads_violation_still_reported () =
  let x = Item.make "x" and y = Item.make "y" in
  let run ~relearn =
    let m = Monitor.create () in
    let seen = ref 0 in
    Monitor.on_violation m (fun _ -> incr seen);
    let h = Monitor.watch m (Guarantee.Leads { leader = x; follower = y }) in
    let history =
      [ ev 0 1.0 (Event.w x (Value.Int 5)); ev 1 2.0 (Event.w x (Value.Int 6)) ]
    in
    List.iter (Monitor.feed m) history;
    let wiped = Monitor.crash_wipe m ~owns:owns_y in
    Alcotest.(check int) "one watcher wiped" 1 wiped;
    if relearn then Monitor.relearn m history;
    Monitor.finalize m ~horizon:10.0;
    (Monitor.verdict h, !seen)
  in
  let v, n = run ~relearn:true in
  Alcotest.(check bool) "violations survive the crash" false v.Monitor.v_holds;
  Alcotest.(check int) "both buried obligations fail" 2 v.Monitor.v_violations;
  Alcotest.(check int) "both surfaced on the stream" 2 n;
  let v0, n0 = run ~relearn:false in
  Alcotest.(check bool) "without relearn the crash buries them" true
    v0.Monitor.v_holds;
  Alcotest.(check int) "nothing surfaced without relearn" 0 n0

(* The replay is a state rebuild, not a re-evaluation: history the
   watcher already scored live is not re-scored (no double count), and
   a post-recovery follower take of a value the leader held only before
   the crash is not a false violation (the seen-set is rebuilt). *)
let relearn_rebuilds_without_double_count () =
  let x = Item.make "x" and y = Item.make "y" in
  let m = Monitor.create () in
  let seen = ref 0 in
  Monitor.on_violation m (fun _ -> incr seen);
  let h = Monitor.watch m (Guarantee.Follows { leader = x; follower = y }) in
  let history =
    [
      ev 0 1.0 (Event.w x (Value.Int 5));
      ev 1 2.0 (Event.w y (Value.Int 5));
      ev 2 3.0 (Event.w x (Value.Int 8));
    ]
  in
  List.iter (Monitor.feed m) history;
  ignore (Monitor.crash_wipe m ~owns:owns_y);
  Monitor.relearn m history;
  (* Live again: y takes 8 (held now) and then 5 (held only pre-crash —
     a wiped seen-set would flag it). *)
  Monitor.feed m (ev 3 4.0 (Event.w y (Value.Int 8)));
  Monitor.feed m (ev 4 5.0 (Event.w y (Value.Int 5)));
  Monitor.finalize m ~horizon:10.0;
  let v = Monitor.verdict h in
  Alcotest.(check bool) "no false positive after relearn" true v.Monitor.v_holds;
  Alcotest.(check int) "no violations" 0 v.Monitor.v_violations;
  (* 1 live point pre-crash + 2 live points post-recovery; the replayed
     follower take is deliberately not re-scored. *)
  Alcotest.(check int) "replay scores no points" 3 v.Monitor.v_points;
  Alcotest.(check int) "stream stayed quiet" 0 !seen

(* A relearned obligation is a live obligation: the restored leads take
   discharges against post-recovery follower activity like it was never
   lost. *)
let relearned_obligation_discharges_live () =
  let x = Item.make "x" and y = Item.make "y" in
  let m = Monitor.create () in
  let h = Monitor.watch m (Guarantee.Leads { leader = x; follower = y }) in
  let history = [ ev 0 1.0 (Event.w x (Value.Int 5)) ] in
  List.iter (Monitor.feed m) history;
  ignore (Monitor.crash_wipe m ~owns:owns_y);
  Monitor.relearn m history;
  Monitor.feed m (ev 1 2.0 (Event.w y (Value.Int 5)));
  Monitor.finalize m ~horizon:10.0;
  let v = Monitor.verdict h in
  Alcotest.(check bool) "discharged after recovery" true v.Monitor.v_holds;
  Alcotest.(check int) "no violations" 0 v.Monitor.v_violations

(* End-to-end through the system: a durable payroll world where the
   target site crashes before an in-flight propagation arrives (no
   reliable layer, so the fire is genuinely lost).  The source's write
   is journaled; the crash wipes the monitor watchers homed at the
   target site; [Sys_.restart_site] relearns them from the merged
   journals.  The lost update is a real Leads violation, and it must
   still be reported even though the watcher that owed the detection
   was down when the evidence went by. *)
let system_crash_between_violation_and_detection () =
  let config =
    Sys_.Config.(
      seeded 606 |> with_monitor true
      |> with_durability Cm_core.Journal.Journal_with_checkpoint)
  in
  let p = Payroll.create ~config ~employees:1 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  let monitor = Option.get (Sys_.monitor system) in
  Monitor.note_initial monitor p.Payroll.initial;
  let emp = List.hd p.Payroll.employees in
  let h =
    Monitor.watch monitor
      (Guarantee.Leads
         {
           leader = Payroll.source_item emp;
           follower = Payroll.target_item emp;
         })
  in
  let violations = ref [] in
  Monitor.on_violation monitor (fun v -> violations := v :: !violations);
  let sim = Sys_.sim system in
  Cm_sim.Sim.schedule_at sim 1.0 (fun () ->
      Sys_.crash_site system ~site:Payroll.site_b);
  Payroll.schedule_update p ~at:2.0 ~emp ~salary:4242;
  Cm_sim.Sim.schedule_at sim 50.0 (fun () ->
      Sys_.restart_site system ~site:Payroll.site_b);
  Sys_.run system ~until:200.0;
  Alcotest.(check bool) "the update really was lost" true
    (Value.to_float (Payroll.salary_at p `B emp) <> 4242.0);
  Monitor.finalize monitor ~horizon:200.0;
  let v = Monitor.verdict h in
  Alcotest.(check bool) "lost propagation detected" false v.Monitor.v_holds;
  Alcotest.(check bool) "violation names the buried value" true
    (List.exists
       (fun vi ->
         let s = vi.Monitor.vi_detail in
         let needle = "4242" in
         let n = String.length s and k = String.length needle in
         let rec scan i = i + k <= n && (String.sub s i k = needle || scan (i + 1)) in
         scan 0)
       !violations)

(* The monitor only observes: a monitored run's trace is byte-identical
   to an unmonitored one. *)
let observation_only () =
  let run monitored =
    let base = Sys_.Config.seeded 777 in
    let config = if monitored then Sys_.Config.with_monitor true base else base in
    let p = Payroll.create ~config ~employees:2 () in
    Payroll.install_propagation p;
    Payroll.random_updates p ~mean_interarrival:15.0 ~until:300.0;
    Sys_.run p.Payroll.system ~until:400.0;
    List.map Event.to_string (Trace.events (Sys_.trace p.Payroll.system))
  in
  Alcotest.(check (list string)) "same trace" (run false) (run true)

let () =
  Alcotest.run "cm_monitor"
    [
      ( "differential",
        [
          Alcotest.test_case "150 random traces, all forms" `Quick
            differential_sweep;
          Alcotest.test_case "long traces" `Quick differential_long;
          Alcotest.test_case "empty trace" `Quick differential_empty;
        ] );
      ( "violations",
        [
          Alcotest.test_case "surface at their instant" `Quick
            violations_surface_immediately;
          Alcotest.test_case "feed discipline" `Quick feed_discipline;
          Alcotest.test_case "unsupported forms" `Quick
            unsupported_forms_rejected;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "verdict + transitions" `Quick
            staleness_verdict_no_sim;
          Alcotest.test_case "silent drop within kappa + tick" `Quick
            silent_drop_flagged_within_kappa;
          Alcotest.test_case "observation only" `Quick observation_only;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "crash between violation and detection" `Quick
            crash_buried_leads_violation_still_reported;
          Alcotest.test_case "relearn is silent (no double count)" `Quick
            relearn_rebuilds_without_double_count;
          Alcotest.test_case "relearned obligation discharges" `Quick
            relearned_obligation_discharges_live;
          Alcotest.test_case "system-level lost propagation" `Quick
            system_crash_between_violation_and_detection;
        ] );
    ]
