(* Tests for the toolkit layers: interface catalog, suggestion engine,
   CM-RID parsing, and configuration-driven assembly. *)

open Cm_rule
module Interface = Cm_core.Interface
module Suggest = Cm_core.Suggest
module Cmrid = Cm_core.Cmrid
module Toolkit = Cm_core.Toolkit
module Sys_ = Cm_core.System
module Guarantee = Cm_core.Guarantee
module C = Cm_core.Constraint_def

(* ---- interface catalog ---- *)

let interface_shapes () =
  let x = Interface.plain "X" in
  let checks =
    [
      (Interface.write ~delta:5.0 x, "r1: WR(X, b) ->[5] W(X, b)", Interface.Write);
      (Interface.no_spontaneous_write x, "r2: Ws(X, *, b) ->[0] FALSE",
       Interface.No_spontaneous_write);
      (Interface.notify ~delta:2.0 x, "r3: Ws(X, *, b) ->[2] N(X, b)", Interface.Notify);
      (Interface.read ~delta:1.0 x, "r4: RR(X) && (X == b) ->[1] R(X, b)", Interface.Read);
      (Interface.delete ~delta:1.0 x, "r5: DR(X) ->[1] DEL(X)", Interface.Delete);
    ]
  in
  List.iter
    (fun (rule, expected, kind) ->
      (* Normalize the generated id by reparsing with a fixed label. *)
      let shown = Rule.to_string { rule with Rule.id = String.sub expected 0 2 } in
      Alcotest.(check string) expected expected shown;
      Alcotest.(check (option string)) "classified"
        (Some (Interface.kind_to_string kind))
        (Option.map Interface.kind_to_string (Interface.classify rule)))
    checks

let interface_periodic_and_conditional () =
  let x = Interface.plain "X" in
  let p = Interface.periodic_notify ~period:300.0 ~delta:1.0 x in
  Alcotest.(check (option string)) "periodic" (Some "periodic-notify")
    (Option.map Interface.kind_to_string (Interface.classify p));
  let c =
    Interface.conditional_notify ~delta:2.0
      ~condition:(Interface.relative_change_condition ~threshold:0.1)
      x
  in
  Alcotest.(check (option string)) "conditional" (Some "conditional-notify")
    (Option.map Interface.kind_to_string (Interface.classify c));
  Alcotest.(check bool) "lhs is 3-arg Ws" true
    (List.length c.Rule.lhs.Template.args = 3)

let interface_family () =
  let f = Interface.family "Phone" [ "n" ] in
  let r = Interface.notify ~delta:2.0 f in
  let desc = Event.n (Item.make "Phone" ~params:[ Value.Str "ann" ]) (Value.Int 5) in
  let steps = Rule.rhs_steps r in
  Alcotest.(check bool) "family template matches instance" true
    (Template.matches (List.hd steps).Rule.template desc
       ~seed:
         (Expr.Env.add "n"
            (Expr.Bval (Value.Str "ann"))
            (Expr.Env.add "b" (Expr.Bval (Value.Int 5)) Expr.empty_env))
    <> None)

(* ---- suggestion engine ---- *)

let interfaces_of spec base = match List.assoc_opt base spec with Some k -> k | None -> []

let copy_constraint =
  C.Copy
    {
      source = Interface.family "Salary1" [ "n" ];
      target = Interface.family "Salary2" [ "n" ];
    }

let suggest_notify_write () =
  let interfaces =
    interfaces_of
      [
        ("Salary1", [ Interface.Notify; Interface.Read ]);
        ("Salary2", [ Interface.Write; Interface.Read ]);
      ]
  in
  let candidates = Suggest.for_constraint ~interfaces copy_constraint in
  let names = List.map (fun c -> c.Suggest.candidate_name) candidates in
  Alcotest.(check bool) "propagate offered" true (List.mem "propagate" names);
  Alcotest.(check bool) "cached variant offered" true
    (List.mem "propagate-cached" names);
  let prop = List.find (fun c -> c.Suggest.candidate_name = "propagate") candidates in
  Alcotest.(check int) "all four guarantees" 4 (List.length prop.Suggest.guarantees)

let suggest_read_only_source () =
  let interfaces =
    interfaces_of
      [ ("Salary1", [ Interface.Read ]); ("Salary2", [ Interface.Write ]) ]
  in
  let candidates = Suggest.for_constraint ~interfaces copy_constraint in
  (match candidates with
   | [ c ] ->
     Alcotest.(check string) "poll" "poll" c.Suggest.candidate_name;
     Alcotest.(check bool) "no leads guarantee" true
       (not
          (List.exists
             (function Guarantee.Leads _ -> true | _ -> false)
             c.Suggest.guarantees))
   | _ -> Alcotest.fail "expected exactly the polling candidate")

let suggest_monitor_when_unwritable () =
  let interfaces =
    interfaces_of
      [ ("Salary1", [ Interface.Notify ]); ("Salary2", [ Interface.Notify ]) ]
  in
  let candidates = Suggest.for_constraint ~interfaces copy_constraint in
  (match candidates with
   | [ c ] ->
     Alcotest.(check string) "monitor" "monitor" c.Suggest.candidate_name;
     Alcotest.(check bool) "monitor guarantee" true
       (List.exists
          (function Guarantee.Monitor_window _ -> true | _ -> false)
          c.Suggest.guarantees)
   | _ -> Alcotest.fail "expected exactly the monitor candidate")

let suggest_nothing_possible () =
  let interfaces = interfaces_of [ ("Salary1", []); ("Salary2", []) ] in
  Alcotest.(check int) "no candidates" 0
    (List.length (Suggest.for_constraint ~interfaces copy_constraint))

let suggest_leq_demarcation () =
  let interfaces =
    interfaces_of
      [
        ("X", [ Interface.Read; Interface.Write ]);
        ("Y", [ Interface.Read; Interface.Write ]);
      ]
  in
  let candidates =
    Suggest.for_constraint ~interfaces
      (C.Leq { smaller = Item.make "X"; larger = Item.make "Y" })
  in
  Alcotest.(check int) "two policies" 2 (List.length candidates);
  List.iter
    (fun c ->
      Alcotest.(check bool) "always-leq guarantee" true
        (List.exists
           (function Guarantee.Always_leq _ -> true | _ -> false)
           c.Suggest.guarantees))
    candidates

let suggest_describe () =
  let interfaces =
    interfaces_of
      [ ("Salary1", [ Interface.Notify ]); ("Salary2", [ Interface.Write ]) ]
  in
  match Suggest.for_constraint ~interfaces copy_constraint with
  | c :: _ ->
    let text = Suggest.describe c in
    Alcotest.(check bool) "mentions rules" true
      (String.length text > 50 && String.index_opt text '\n' <> None)
  | [] -> Alcotest.fail "no candidate"

(* ---- CM-RID parsing ---- *)

let sample_config =
  {|# payroll configuration
source sf relational
  init CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)
  init INSERT INTO employees VALUES ('e1', 100)
  item Salary1(n)
    read SELECT salary FROM employees WHERE empid = $n
    write UPDATE employees SET salary = $b WHERE empid = $n
    notify employees.salary key empid
  latency notify 1.0
  delta notify 5.0

source ny relational
  init CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)
  init INSERT INTO employees VALUES ('e1', 100)
  item Salary2(n)
    read SELECT salary FROM employees WHERE empid = $n
    write UPDATE employees SET salary = $b WHERE empid = $n
    notify employees.salary key empid observe

source files kvfile
  item Phone(n)
    key phone.$n
    writable

location Flag app
|}

let cmrid_parse () =
  match Cmrid.parse sample_config with
  | Error es -> Alcotest.fail (Cmrid.errors_to_string es)
  | Ok config ->
    Alcotest.(check int) "three sources" 3 (List.length config.Cmrid.sources);
    Alcotest.(check (list string)) "sites" [ "app"; "files"; "ny"; "sf" ]
      (Cmrid.sites config);
    let sf = List.hd config.Cmrid.sources in
    Alcotest.(check int) "init stmts" 2 (List.length sf.Cmrid.s_init);
    let item = List.hd sf.Cmrid.s_items in
    Alcotest.(check (option string)) "read sql"
      (Some "SELECT salary FROM employees WHERE empid = $n")
      item.Cmrid.i_read;
    (match item.Cmrid.i_notify with
     | Some n ->
       Alcotest.(check string) "table" "employees" n.Cmrid.n_table;
       Alcotest.(check bool) "send" true n.Cmrid.n_send
     | None -> Alcotest.fail "notify missing");
    let loc = Cmrid.locator config in
    Alcotest.(check string) "Salary1 at sf" "sf" (loc (Item.make "Salary1"));
    Alcotest.(check string) "Flag at app" "app" (loc (Item.make "Flag"));
    Alcotest.(check string) "unknown fallback" "unknown" (loc (Item.make "Zzz"))

let cmrid_errors () =
  let fails text =
    match Cmrid.parse text with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "bad kind" true (fails "source x oracle");
  Alcotest.(check bool) "item outside source" true (fails "item X");
  Alcotest.(check bool) "bad threshold" true
    (fails "source a relational\n item X\n notify t.c key k threshold zz");
  Alcotest.(check bool) "stray directive" true (fails "frobnicate")

let toolkit_build_and_run () =
  match Cmrid.parse sample_config with
  | Error es -> Alcotest.fail (Cmrid.errors_to_string es)
  | Ok config -> (
    match Toolkit.build ~config:(Cm_core.System.Config.seeded 21) config with
    | Error m -> Alcotest.fail m
    | Ok built ->
      (* Interface discovery reflects the configuration. *)
      let summary = Toolkit.interface_summary built in
      (match List.assoc_opt "Salary1" summary with
       | Some kinds ->
         Alcotest.(check bool) "sf has notify" true (List.mem "notify" kinds);
         Alcotest.(check bool) "sf has write" true (List.mem "write" kinds)
       | None -> Alcotest.fail "Salary1 missing from summary");
      (* Install the propagation strategy suggested for these interfaces
         and run an update through the whole configured system. *)
      Sys_.install built.Toolkit.system
        (Cm_core.Strategy.propagate ~delta:5.0
           ~source:(Interface.family "Salary1" [ "n" ])
           ~target:(Interface.family "Salary2" [ "n" ])
           ());
      let tr_sf = List.assoc "sf" built.Toolkit.relational in
      Cm_sim.Sim.schedule_at (Sys_.sim built.Toolkit.system) 5.0 (fun () ->
          match
            Cm_core.Tr_relational.exec_app tr_sf
              "UPDATE employees SET salary = 999 WHERE empid = 'e1'"
          with
          | Ok _ -> ()
          | Error e -> failwith (Cm_relational.Database.error_to_string e));
      Sys_.run built.Toolkit.system ~until:60.0;
      let db_ny = List.assoc "ny" built.Toolkit.databases in
      (match
         Cm_relational.Database.exec db_ny
           "SELECT salary FROM employees WHERE empid = 'e1'"
       with
       | Ok (Cm_relational.Database.Rows { rows = [ [ v ] ]; _ }) ->
         Alcotest.(check bool) "propagated through configured system" true
           (Value.equal v (Value.Int 999))
       | _ -> Alcotest.fail "ny lookup failed"))

let toolkit_config_rules_installed () =
  (* A strategy declared in the CM-RID file is installed and running. *)
  let config_text =
    sample_config ^ "\nrule prop: N(Salary1(n), b) ->[5] WR(Salary2(n), b)\n"
  in
  match Cmrid.parse config_text with
  | Error es -> Alcotest.fail (Cmrid.errors_to_string es)
  | Ok config -> (
    match Toolkit.build ~config:(Cm_core.System.Config.seeded 22) config with
    | Error m -> Alcotest.fail m
    | Ok built ->
      Alcotest.(check int) "strategy installed" 1
        (List.length (Sys_.strategy_rules built.Toolkit.system));
      let tr_sf = List.assoc "sf" built.Toolkit.relational in
      Cm_sim.Sim.schedule_at (Sys_.sim built.Toolkit.system) 5.0 (fun () ->
          ignore
            (Cm_core.Tr_relational.exec_app tr_sf
               "UPDATE employees SET salary = 777 WHERE empid = 'e1'"));
      Sys_.run built.Toolkit.system ~until:60.0;
      let db_ny = List.assoc "ny" built.Toolkit.databases in
      match
        Cm_relational.Database.exec db_ny
          "SELECT salary FROM employees WHERE empid = 'e1'"
      with
      | Ok (Cm_relational.Database.Rows { rows = [ [ v ] ]; _ }) ->
        Alcotest.(check bool) "propagated via configured strategy" true
          (Value.equal v (Value.Int 777))
      | _ -> Alcotest.fail "lookup failed")

let toolkit_config_bad_rules_rejected () =
  let config_text = "source a relational\n  item X\nrule @@@ nonsense\n" in
  match Cmrid.parse config_text with
  | Error _ -> ()  (* rejected at parse time is fine too *)
  | Ok config -> (
    match Toolkit.build config with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "bad strategy rules must be rejected")

let toolkit_build_rejects_duplicates () =
  let config =
    {|source a relational
  item X
source b relational
  item X
|}
  in
  match Cmrid.parse config with
  | Error es -> Alcotest.fail (Cmrid.errors_to_string es)
  | Ok config -> (
    match Toolkit.build config with
    | Error m ->
      Alcotest.(check bool) "mentions duplicate" true
        (String.length m > 0)
    | Ok _ -> Alcotest.fail "duplicate bases must be rejected")

let () =
  Alcotest.run "cm_toolkit"
    [
      ( "interface",
        [
          Alcotest.test_case "shapes" `Quick interface_shapes;
          Alcotest.test_case "periodic + conditional" `Quick
            interface_periodic_and_conditional;
          Alcotest.test_case "family" `Quick interface_family;
        ] );
      ( "suggest",
        [
          Alcotest.test_case "notify + write" `Quick suggest_notify_write;
          Alcotest.test_case "read-only source" `Quick suggest_read_only_source;
          Alcotest.test_case "monitor fallback" `Quick suggest_monitor_when_unwritable;
          Alcotest.test_case "nothing possible" `Quick suggest_nothing_possible;
          Alcotest.test_case "leq -> demarcation" `Quick suggest_leq_demarcation;
          Alcotest.test_case "describe" `Quick suggest_describe;
        ] );
      ( "cmrid",
        [
          Alcotest.test_case "parse" `Quick cmrid_parse;
          Alcotest.test_case "errors" `Quick cmrid_errors;
        ] );
      ( "toolkit",
        [
          Alcotest.test_case "build and run" `Quick toolkit_build_and_run;
          Alcotest.test_case "rejects duplicates" `Quick toolkit_build_rejects_duplicates;
          Alcotest.test_case "config rules installed" `Quick toolkit_config_rules_installed;
          Alcotest.test_case "bad config rules rejected" `Quick
            toolkit_config_bad_rules_rejected;
        ] );
    ]
