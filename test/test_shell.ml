(* Unit tests for the CM-Shell: rule distribution, condition evaluation,
   custom-event chaining, the private store, failure propagation, and
   Figure 1's "site without a shell of its own" configuration. *)

open Cm_rule
module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Strategy = Cm_core.Strategy
module Msg = Cm_core.Msg

let value = Alcotest.testable Value.pp Value.equal

let strategy_of rules =
  {
    Strategy.strategy_name = "test";
    description = "test rules";
    rules = Parser.parse_rules rules;
    aux_init = [];
  }

(* Two shells a/b, items Xa at a and Xb/aux at b. *)
let two_shells () =
  let locator item =
    match item.Item.base with "Xa" -> "a" | _ -> "b"
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 5) locator in
  let sa = Sys_.add_shell system ~site:"a" in
  let sb = Sys_.add_shell system ~site:"b" in
  (system, sa, sb)

let emit_at shell ~site desc =
  ignore ((Shell.emitter_for shell ~site) desc ~kind:Event.Spontaneous)

let custom name args = { Event.name; args }

let av v = Event.Av v
let ai base = Event.Ai (Item.make base)

(* ---- rule distribution and firing ---- *)

let cross_site_chaining () =
  (* A custom event at a triggers a store write at b. *)
  let system, sa, sb = two_shells () in
  Sys_.install system (strategy_of "r1: Ping(Xa, v) ->[5] W(Cache, v)");
  emit_at sa ~site:"a" (custom "Ping" [ ai "Xa"; av (Value.Int 7) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check (option value)) "store updated at b" (Some (Value.Int 7))
    (Shell.read_aux sb (Item.make "Cache"))

let chaining_through_custom_events () =
  (* Rule 1 produces a custom event that rule 2 consumes. *)
  let system, _sa, sb = two_shells () in
  Sys_.install system
    (strategy_of
       {|r1: Ping(Xb, v) ->[5] Pong(Xb, v)
         r2: Pong(Xb, v) ->[5] W(Cache, v)|});
  emit_at sb ~site:"b" (custom "Ping" [ ai "Xb"; av (Value.Int 3) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check (option value)) "chained" (Some (Value.Int 3))
    (Shell.read_aux sb (Item.make "Cache"))

let lhs_condition_gates_firing () =
  let system, sa, sb = two_shells () in
  (* Condition on CM data at the LHS site. *)
  Shell.write_aux sa (Item.make "Gate") (Value.Bool false);
  Sys_.install system
    (strategy_of "r1: Ping(Xa, v) && Gate == true ->[5] W(Cache, v)");
  (* Gate is at b per locator... use an a-local gate instead. *)
  ignore sb;
  emit_at sa ~site:"a" (custom "Ping" [ ai "Xa"; av (Value.Int 1) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check (option value)) "not fired" None
    (Shell.read_aux sb (Item.make "Cache"))

let guard_sequences_evaluate_in_order () =
  (* The §3.2 cache rule: compare before updating the cache. *)
  let system, _sa, sb = two_shells () in
  Sys_.install system
    (strategy_of
       "r1: Ping(Xb, v) ->[5] (Cache != v) ? Hit(Xb, v), W(Cache, v)");
  Shell.write_aux sb (Item.make "Cache") (Value.Int 1);
  let hits = ref 0 in
  Shell.on_custom sb "Hit" (fun _ -> incr hits);
  emit_at sb ~site:"b" (custom "Ping" [ ai "Xb"; av (Value.Int 1) ]);
  Sys_.run system ~until:5.0;
  Alcotest.(check int) "same value: no hit" 0 !hits;
  emit_at sb ~site:"b" (custom "Ping" [ ai "Xb"; av (Value.Int 2) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check int) "changed value: hit" 1 !hits;
  Alcotest.(check (option value)) "cache updated" (Some (Value.Int 2))
    (Shell.read_aux sb (Item.make "Cache"));
  emit_at sb ~site:"b" (custom "Ping" [ ai "Xb"; av (Value.Int 2) ]);
  Sys_.run system ~until:15.0;
  Alcotest.(check int) "cache suppressed repeat" 1 !hits

let clock_item_binds_time () =
  let system, _sa, sb = two_shells () in
  Sys_.install system
    (strategy_of "r1: Ping(Xb, v) && Clock == t ->[5] W(Stamp, t)");
  Sim.schedule_at (Sys_.sim system) 42.0 (fun () ->
      emit_at sb ~site:"b" (custom "Ping" [ ai "Xb"; av (Value.Int 0) ]));
  Sys_.run system ~until:50.0;
  match Shell.read_aux sb (Item.make "Stamp") with
  | Some (Value.Float t) -> Alcotest.(check (float 1e-9)) "stamped" 42.0 t
  | _ -> Alcotest.fail "Stamp not written"

let duplicate_rule_ids_rejected () =
  let system, _sa, _sb = two_shells () in
  Sys_.install system (strategy_of "r1: Ping(Xa, v) ->[5] Pong(Xa, v)");
  Alcotest.(check bool) "raises" true
    (try
       Sys_.install system (strategy_of "r1: Ping(Xa, v) ->[5] Pong(Xa, v)");
       false
     with Invalid_argument _ -> true)

let counters_track_activity () =
  let system, sa, sb = two_shells () in
  Sys_.install system (strategy_of "r1: Ping(Xa, v) ->[5] W(Cache, v)");
  emit_at sa ~site:"a" (custom "Ping" [ ai "Xa"; av (Value.Int 1) ]);
  emit_at sa ~site:"a" (custom "Ping" [ ai "Xa"; av (Value.Int 2) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check int) "fires sent by a" 2 (Shell.fires_sent sa);
  Alcotest.(check int) "fires executed by b" 2 (Shell.fires_executed sb);
  Alcotest.(check bool) "events seen" true (Shell.events_seen sa >= 2)

(* ---- periodic registration ---- *)

let periodic_deduplicated () =
  let system, sa, _sb = two_shells () in
  Shell.register_periodic sa ~period:10.0 ();
  Shell.register_periodic sa ~period:10.0 ();
  (* duplicate ignored *)
  Sys_.run system ~until:35.0;
  Alcotest.(check int) "one tick stream" 3
    (List.length (Trace.named (Sys_.trace system) "P"))

let periodic_distinct_periods () =
  let system, sa, _sb = two_shells () in
  Shell.register_periodic sa ~period:10.0 ();
  Shell.register_periodic sa ~period:15.0 ();
  Sys_.run system ~until:31.0;
  (* 10, 20, 30 and 15, 30 -> 5 ticks *)
  Alcotest.(check int) "both streams" 5
    (List.length (Trace.named (Sys_.trace system) "P"))

(* ---- aux store ---- *)

let aux_write_records_event () =
  let system, _sa, sb = two_shells () in
  Shell.write_aux sb (Item.make "Flag") (Value.Bool true);
  Alcotest.(check int) "W recorded" 1
    (List.length (Trace.named (Sys_.trace system) "W"));
  Alcotest.(check (option value)) "readable" (Some (Value.Bool true))
    (Shell.read_aux sb (Item.make "Flag"))

(* ---- failure notices ---- *)

let failure_notice_propagates () =
  let system, sa, sb = two_shells () in
  ignore system;
  let received = ref [] in
  Shell.on_failure_notice sb (fun ~origin kind -> received := (origin, kind) :: !received);
  Shell.report_failure sa Msg.Metric;
  Sys_.run system ~until:5.0;
  Alcotest.(check bool) "peer notified" true (List.mem ("a", Msg.Metric) !received)

let reset_notice_propagates () =
  let system, sa, sb = two_shells () in
  let resets = ref [] in
  Shell.on_reset_notice sb (fun ~origin -> resets := origin :: !resets);
  Shell.broadcast_reset sa;
  Sys_.run system ~until:5.0;
  Alcotest.(check (list string)) "reset received" [ "a" ] !resets

(* ---- Figure 1: a site served by another site's shell ---- *)

let foreign_site_served_by_shell () =
  (* Sites a (shell), c (no shell, its translator attaches to a's shell),
     b (shell, write target).  Propagation from c's item to b's store. *)
  let locator item =
    match item.Item.base with
    | "Xc" -> "c"
    | "Xa" -> "a"
    | _ -> "b"
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 9) locator in
  let sa = Sys_.add_shell system ~site:"a" in
  let sb = Sys_.add_shell system ~site:"b" in
  (* A kvfile source living at site c, translated by a's shell. *)
  let fs = Cm_sources.Kvfile.create () in
  let tr =
    Cm_core.Tr_kvfile.create ~sim:(Sys_.sim system) ~fs ~site:"c"
      ~emit:(Shell.emitter_for sa ~site:"c")
      ~report:(fun k -> Shell.report_failure sa k)
      [ { Cm_core.Tr_kvfile.base = "Xc"; params = []; key_template = "xc"; writable = true } ]
  in
  Sys_.register_translator system ~shell:sa (Cm_core.Tr_kvfile.cmi tr);
  (* Strategy triggered by spontaneous writes at site c. *)
  Sys_.install system (strategy_of "r1: Ws(Xc, v) ->[5] W(Cache, v)");
  Cm_core.Tr_kvfile.write_app tr (Item.make "Xc") (Value.Int 99);
  Sys_.run system ~until:10.0;
  Alcotest.(check (option value)) "propagated from shell-less site"
    (Some (Value.Int 99))
    (Shell.read_aux sb (Item.make "Cache"));
  (* The Ws event is recorded at site c, not at the serving shell's site. *)
  match Trace.named (Sys_.trace system) "Ws" with
  | [ e ] -> Alcotest.(check string) "event site" "c" e.Event.site
  | _ -> Alcotest.fail "expected one Ws"

let foreign_site_rhs_routed () =
  (* RHS items at the shell-less site are routed to its serving shell. *)
  let locator item =
    match item.Item.base with "Xc" -> "c" | "Xa" -> "a" | _ -> "b"
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 10) locator in
  let sa = Sys_.add_shell system ~site:"a" in
  let sb = Sys_.add_shell system ~site:"b" in
  ignore sb;
  let fs = Cm_sources.Kvfile.create () in
  let tr =
    Cm_core.Tr_kvfile.create ~sim:(Sys_.sim system) ~fs ~site:"c"
      ~emit:(Shell.emitter_for sa ~site:"c")
      ~report:(fun k -> Shell.report_failure sa k)
      [ { Cm_core.Tr_kvfile.base = "Xc"; params = []; key_template = "xc"; writable = true } ]
  in
  Sys_.register_translator system ~shell:sa (Cm_core.Tr_kvfile.cmi tr);
  (* An event at b requests a write at c: the Fire envelope must route to
     a's shell (which serves c). *)
  Sys_.install system (strategy_of "r1: Ping(Xb, v) ->[5] WR(Xc, v)");
  ignore ((Shell.emitter_for sb ~site:"b") (custom "Ping" [ ai "Xb"; av (Value.Int 5) ])
            ~kind:Event.Spontaneous);
  Sys_.run system ~until:10.0;
  Alcotest.(check (option string)) "written at c" (Some "5")
    (Cm_sources.Kvfile.read fs "xc")

(* ---- dispatch edge cases (indexed vs naive) ---- *)

let chaining_rule_fires_only_locally () =
  (* A rule mentioning no item on either side has no LHS site: it is
     installed everywhere and must trigger only on events at the
     shell's own site — not on events the shell records for a site it
     merely serves. *)
  let system, sa, sb = two_shells () in
  Sys_.install system (strategy_of "r1: Tick(v) ->[5] Tock(v)");
  let tocks_a = ref 0 and tocks_b = ref 0 in
  Shell.on_custom sa "Tock" (fun _ -> incr tocks_a);
  Shell.on_custom sb "Tock" (fun _ -> incr tocks_b);
  emit_at sa ~site:"a" (custom "Tick" [ av (Value.Int 1) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check int) "fires at the recording shell" 1 !tocks_a;
  Alcotest.(check int) "not at the peer shell" 0 !tocks_b;
  (* Same event name recorded at shell a for site b: site filter must
     reject it on both dispatch paths. *)
  emit_at sa ~site:"b" (custom "Tick" [ av (Value.Int 2) ]);
  Sys_.run system ~until:20.0;
  Alcotest.(check int) "foreign-site event skips the chaining rule" 1 !tocks_a

let periodic_reinstall_idempotent () =
  (* Two strategies carrying P rules with the same (site, period): the
     second install must not start a second tick stream, but both rules
     must fire on every tick of the shared stream. *)
  let system, _sa, _sb = two_shells () in
  Sys_.install system (strategy_of "p1: P(10) ->[1] Saw(Xa)");
  Sys_.install system (strategy_of "p2: P(10) ->[1] Saw2(Xa)");
  Sys_.run system ~until:38.0;
  Alcotest.(check int) "one tick stream" 3
    (List.length (Trace.named (Sys_.trace system) "P"));
  Alcotest.(check int) "first rule fires each tick" 3
    (List.length (Trace.named (Sys_.trace system) "Saw"));
  Alcotest.(check int) "second rule fires each tick" 3
    (List.length (Trace.named (Sys_.trace system) "Saw2"))

let custom_handlers_coexist_with_rules () =
  (* on_custom hooks and indexed rule dispatch observe the same event:
     neither short-circuits the other. *)
  let system, sa, sb = two_shells () in
  Sys_.install system (strategy_of "r1: Ping(Xa, v) ->[5] W(Cache, v)");
  let seen = ref 0 in
  Shell.on_custom sa "Ping" (fun e ->
      Alcotest.(check string) "handler sees the event" "Ping" e.Event.desc.Event.name;
      incr seen);
  emit_at sa ~site:"a" (custom "Ping" [ ai "Xa"; av (Value.Int 9) ]);
  Sys_.run system ~until:10.0;
  Alcotest.(check int) "handler ran once" 1 !seen;
  Alcotest.(check (option value)) "rule fired too" (Some (Value.Int 9))
    (Shell.read_aux sb (Item.make "Cache"))

let naive_dispatch_equivalent () =
  (* The retained naive matcher is a drop-in: the same workload under
     Config.with_dispatch Naive ends in the same state. *)
  let run dispatch =
    let locator item = match item.Item.base with "Xa" -> "a" | _ -> "b" in
    let config =
      Cm_core.System.Config.(seeded 5 |> with_dispatch dispatch)
    in
    let system = Sys_.create ~config locator in
    let sa = Sys_.add_shell system ~site:"a" in
    let sb = Sys_.add_shell system ~site:"b" in
    Sys_.install system
      (strategy_of
         {|r1: Ping(Xa, v) ->[5] Pong(Xa, v)
           r2: Pong(Xa, v) ->[5] W(Cache, v)|});
    emit_at sa ~site:"a" (custom "Ping" [ ai "Xa"; av (Value.Int 4) ]);
    Sys_.run system ~until:20.0;
    (Shell.read_aux sb (Item.make "Cache"), Trace.length (Sys_.trace system))
  in
  let indexed = run Shell.Indexed in
  let naive = run Shell.Naive in
  Alcotest.(check (pair (option value) int))
    "indexed and naive runs end identically" naive indexed

let () =
  Alcotest.run "cm_shell"
    [
      ( "engine",
        [
          Alcotest.test_case "cross-site chaining" `Quick cross_site_chaining;
          Alcotest.test_case "custom event chaining" `Quick chaining_through_custom_events;
          Alcotest.test_case "lhs condition" `Quick lhs_condition_gates_firing;
          Alcotest.test_case "guard sequence" `Quick guard_sequences_evaluate_in_order;
          Alcotest.test_case "clock item" `Quick clock_item_binds_time;
          Alcotest.test_case "duplicate ids" `Quick duplicate_rule_ids_rejected;
          Alcotest.test_case "counters" `Quick counters_track_activity;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "deduplicated" `Quick periodic_deduplicated;
          Alcotest.test_case "distinct periods" `Quick periodic_distinct_periods;
          Alcotest.test_case "re-install idempotent" `Quick
            periodic_reinstall_idempotent;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "chaining rule local only" `Quick
            chaining_rule_fires_only_locally;
          Alcotest.test_case "custom handlers coexist" `Quick
            custom_handlers_coexist_with_rules;
          Alcotest.test_case "naive dispatch equivalent" `Quick
            naive_dispatch_equivalent;
        ] );
      ("store", [ Alcotest.test_case "aux write" `Quick aux_write_records_event ]);
      ( "failures",
        [
          Alcotest.test_case "failure notice" `Quick failure_notice_propagates;
          Alcotest.test_case "reset notice" `Quick reset_notice_propagates;
        ] );
      ( "figure-1 site 3",
        [
          Alcotest.test_case "foreign site served" `Quick foreign_site_served_by_shell;
          Alcotest.test_case "foreign RHS routed" `Quick foreign_site_rhs_routed;
        ] );
    ]
