(* Observability layer: registry semantics, span tracing across a
   two-site firing, snapshot determinism, and the no-op mode. *)

module Obs = Cm_core.Obs
module Sys_ = Cm_core.System
module Net = Cm_net.Net
module Reliable = Cm_core.Reliable
module Payroll = Cm_workload.Payroll

(* ---- registry ---- *)

let label_merging () =
  let t = Obs.create () in
  Obs.incr t "hits" ~labels:[ ("site", "sf"); ("rule", "r1") ];
  Obs.incr t "hits" ~labels:[ ("rule", "r1"); ("site", "sf") ];
  Alcotest.(check int) "order-insensitive" 2
    (Obs.counter_value t "hits" ~labels:[ ("site", "sf"); ("rule", "r1") ]);
  Obs.incr t "hits" ~labels:[ ("site", "ny"); ("rule", "r1") ] ~by:3;
  Alcotest.(check int) "distinct label set" 3
    (Obs.counter_value t "hits" ~labels:[ ("rule", "r1"); ("site", "ny") ]);
  Alcotest.(check int) "total sums label sets" 5 (Obs.counter_total t "hits");
  Alcotest.(check int) "absent counter is 0" 0
    (Obs.counter_value t "misses")

let instruments () =
  let t = Obs.create () in
  Obs.gauge t "depth" 3.0;
  Obs.gauge t "depth" 7.0;
  Alcotest.(check (option (float 1e-9))) "gauge keeps latest" (Some 7.0)
    (Obs.gauge_value t "depth");
  List.iter (Obs.observe t "lat") [ 1.0; 3.0; 2.0 ];
  Alcotest.(check (list (float 1e-9))) "series chronological" [ 1.0; 3.0; 2.0 ]
    (Obs.series_values t "lat");
  let rows = Obs.snapshot t in
  Alcotest.(check int) "snapshot has both" 2 (List.length rows);
  let names = List.map (fun r -> r.Obs.name) rows in
  Alcotest.(check (list string)) "sorted by name" [ "depth"; "lat" ] names

(* ---- spans across a two-site firing ---- *)

(* Payroll over a lossy network with the reliable layer: the sf shell
   opens "fire" roots, the span id rides the Fire envelope, retransmits
   attach to it, and the ny shell adds "execute" -> "step" children. *)
let traced_payroll ?(drop = 0.2) seed =
  let obs = Obs.create () in
  let config =
    Sys_.Config.(
      seeded seed
      |> with_faults { Net.drop_prob = drop; dup_prob = 0.1 }
      |> with_reliable Reliable.default_config
      |> with_obs obs)
  in
  let p = Payroll.create ~config ~employees:3 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:300.0;
  Sys_.run p.Payroll.system ~until:500.0;
  (obs, p)

let span_invariants () =
  let obs, _ = traced_payroll 1300 in
  let spans = Obs.spans obs in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  let by_id id = List.find (fun s -> s.Obs.id = id) spans in
  let seen = Hashtbl.create 64 in
  List.iteri
    (fun i s ->
      Alcotest.(check int) "ids sequential from 1" (i + 1) s.Obs.id;
      Hashtbl.add seen s.Obs.id ())
    spans;
  List.iter
    (fun s ->
      if s.Obs.parent <> 0 then begin
        Alcotest.(check bool) "parent exists" true (Hashtbl.mem seen s.Obs.parent);
        Alcotest.(check bool) "parent opened first" true (s.Obs.parent < s.Obs.id);
        let p = by_id s.Obs.parent in
        Alcotest.(check bool) "parent started no later" true
          (p.Obs.started <= s.Obs.started);
        match s.Obs.span_name with
        | "execute" | "retransmit" ->
          Alcotest.(check string) "child of a fire" "fire" p.Obs.span_name
        | "step" ->
          Alcotest.(check string) "step under execute" "execute" p.Obs.span_name
        | other -> Alcotest.failf "unexpected child span %s" other
      end
      else
        Alcotest.(check string) "only fires are roots" "fire" s.Obs.span_name)
    spans;
  let fires = List.filter (fun s -> s.Obs.span_name = "fire") spans in
  let executes = List.filter (fun s -> s.Obs.span_name = "execute") spans in
  Alcotest.(check bool) "some firings traced" true (List.length fires > 0);
  Alcotest.(check int) "every fire executed exactly once (reliable net)"
    (List.length fires) (List.length executes);
  (* Cross-site: fire opens at sf, execute at ny. *)
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "fire at source site" (Some "sf")
        (List.assoc_opt "site" s.Obs.span_labels))
    fires;
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "execute at target site" (Some "ny")
        (List.assoc_opt "site" s.Obs.span_labels))
    executes;
  let retrans = List.filter (fun s -> s.Obs.span_name = "retransmit") spans in
  Alcotest.(check bool) "lossy run has retransmit spans" true
    (List.length retrans > 0)

let counters_wired () =
  let obs, _ = traced_payroll 1300 in
  Alcotest.(check bool) "net sends counted" true
    (Obs.counter_total obs "net_sent" > 0);
  Alcotest.(check bool) "drops counted" true
    (Obs.counter_total obs "net_dropped" > 0);
  Alcotest.(check bool) "retransmits counted" true
    (Obs.counter_total obs "reliable_retransmits" > 0);
  Alcotest.(check bool) "shell events counted" true
    (Obs.counter_total obs "shell_events" > 0);
  Alcotest.(check int) "fires sent = fires executed"
    (Obs.counter_total obs "shell_fires_sent")
    (Obs.counter_total obs "shell_fires_executed");
  Alcotest.(check bool) "latency series populated" true
    (Obs.series_values obs "net_latency" ~labels:[ ("from", "sf"); ("to", "ny") ]
     <> [])

(* ---- determinism ---- *)

let snapshot_determinism () =
  let obs1, _ = traced_payroll 1300 in
  let obs2, _ = traced_payroll 1300 in
  Alcotest.(check string) "snapshot JSON byte-identical"
    (Obs.snapshot_to_json obs1) (Obs.snapshot_to_json obs2);
  Alcotest.(check string) "spans JSON byte-identical"
    (Obs.spans_to_json obs1) (Obs.spans_to_json obs2);
  Alcotest.(check string) "snapshot CSV byte-identical"
    (Obs.snapshot_to_csv obs1) (Obs.snapshot_to_csv obs2);
  let obs3, _ = traced_payroll 1301 in
  Alcotest.(check bool) "different seed, different snapshot" true
    (Obs.snapshot_to_json obs1 <> Obs.snapshot_to_json obs3)

(* Observability must not perturb the simulation: the same seed with
   and without a registry ends in the same application state. *)
let observation_transparent () =
  let finals p =
    List.map
      (fun emp -> (Payroll.salary_at p `A emp, Payroll.salary_at p `B emp))
      p.Payroll.employees
  in
  let run config =
    let p = Payroll.create ~config ~employees:3 () in
    Payroll.install_propagation p;
    Payroll.random_updates p ~mean_interarrival:20.0 ~until:300.0;
    Sys_.run p.Payroll.system ~until:500.0;
    p
  in
  let base =
    Sys_.Config.(
      seeded 1300
      |> with_faults { Net.drop_prob = 0.2; dup_prob = 0.1 }
      |> with_reliable Reliable.default_config)
  in
  let plain = run base in
  let observed = run (Sys_.Config.with_obs (Obs.create ()) base) in
  Alcotest.(check bool) "same final salaries" true
    (finals plain = finals observed)

(* ---- no-op mode ---- *)

let noop_mode () =
  Alcotest.(check bool) "noop disabled" false (Obs.enabled Obs.noop);
  Alcotest.(check bool) "create enabled" true (Obs.enabled (Obs.create ()));
  Obs.incr Obs.noop "x";
  Obs.gauge Obs.noop "g" 1.0;
  Obs.observe Obs.noop "s" 1.0;
  Alcotest.(check int) "span id is the 0 sentinel" 0
    (Obs.span Obs.noop ~name:"fire" ~at:0.0);
  Obs.end_span Obs.noop ~id:0 ~at:1.0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.snapshot Obs.noop));
  Alcotest.(check int) "no spans" 0 (List.length (Obs.spans Obs.noop));
  (* Systems built without ?obs run on the shared noop registry. *)
  let p = Payroll.create ~config:(Sys_.Config.seeded 5) ~employees:1 () in
  Alcotest.(check bool) "default system is noop" false
    (Obs.enabled (Sys_.obs p.Payroll.system))

let () =
  Alcotest.run "cm_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "label merging" `Quick label_merging;
          Alcotest.test_case "instruments" `Quick instruments;
        ] );
      ( "spans",
        [
          Alcotest.test_case "parent-child invariants" `Quick span_invariants;
          Alcotest.test_case "counters wired" `Quick counters_wired;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "snapshot determinism" `Quick snapshot_determinism;
          Alcotest.test_case "observation transparent" `Quick
            observation_transparent;
        ] );
      ("noop", [ Alcotest.test_case "zero-overhead mode" `Quick noop_mode ]);
    ]
