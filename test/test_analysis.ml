(* Tests for the static checker (cmtool check).  The broken fixture at
   examples/config/broken.cmrid carries one specimen per check code; the
   golden assertions here pin code, severity, file and line for each, so
   the fixture and the checker cannot drift apart silently. *)

module Analysis = Cm_analysis.Analysis
module Chaos = Cm_chaos.Chaos
module Cmrid = Cm_core.Cmrid

let payroll = "../examples/config/payroll.cmrid"
let interfaces_rules = "../examples/config/interfaces.rules"
let strategy_rules = "../examples/config/strategy.rules"
let broken = "../examples/config/broken.cmrid"
let broken_rules = "../examples/config/broken.rules"
let broken_deps = "../examples/config/broken_deps.cmrid"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_payroll ?(with_rules = true) () =
  let rule_files =
    if with_rules then
      [
        (interfaces_rules, read_file interfaces_rules);
        (strategy_rules, read_file strategy_rules);
      ]
    else []
  in
  Analysis.check_config ~rule_files ~file:payroll (read_file payroll)

let check_broken () =
  Analysis.check_config
    ~rule_files:[ (broken_rules, read_file broken_rules) ]
    ~file:broken (read_file broken)

let distinct_codes findings =
  List.sort_uniq compare (List.map (fun f -> f.Analysis.code) findings)

(* [expect] pins one golden diagnostic: code, severity, basename of the
   reporting file, line, and (when given) the site column. *)
let expect findings ?site ~sev ~file ~line code =
  let matches f =
    f.Analysis.code = code
    && f.Analysis.severity = sev
    && Filename.basename f.Analysis.file = file
    && f.Analysis.line = Some line
    && match site with None -> true | Some s -> f.Analysis.site = Some s
  in
  let label =
    Printf.sprintf "%s at %s:%d" code file line
  in
  Alcotest.(check bool) label true (List.exists matches findings)

(* --- clean runs ------------------------------------------------------- *)

let test_payroll_clean () =
  let findings = check_payroll () in
  Alcotest.(check string) "no findings" "no findings" (Analysis.to_text findings);
  Alcotest.(check int) "exit 0 under --deny-warnings" 0
    (Analysis.exit_code ~deny_warnings:true findings)

let test_payroll_clean_without_rule_files () =
  (* The config alone must also pass: the synthesized interfaces suffice
     to prove [leads], so GRT001 stays quiet. *)
  let findings = check_payroll ~with_rules:false () in
  let errors, _, _ = Analysis.summary findings in
  Alcotest.(check int) "errors" 0 errors;
  Alcotest.(check int) "exit 0" 0 (Analysis.exit_code findings)

let test_shipped_workloads_clean () =
  List.iter
    (fun w ->
      let interfaces, strategy, locator = Chaos.static_rules w in
      let findings = Analysis.check_rules ~interfaces ~strategy ~locator () in
      let errors, _, _ = Analysis.summary findings in
      Alcotest.(check int)
        (Chaos.workload_to_string w ^ " workload has no errors")
        0 errors)
    [ Chaos.Payroll; Chaos.Bank ]

(* --- the broken fixture ----------------------------------------------- *)

let test_broken_summary () =
  let findings = check_broken () in
  let errors, warnings, infos = Analysis.summary findings in
  Alcotest.(check int) "errors" 12 errors;
  Alcotest.(check int) "warnings" 8 warnings;
  Alcotest.(check int) "infos" 2 infos;
  Alcotest.(check int) "exit code" 1 (Analysis.exit_code findings);
  Alcotest.(check bool) "at least 8 distinct codes" true
    (List.length (distinct_codes findings) >= 8)

let test_broken_golden () =
  let fs = check_broken () in
  let cm = "broken.cmrid" in
  (* configuration / parse errors *)
  expect fs ~sev:Analysis.Error ~file:cm ~line:27 "CFG001";
  expect fs ~sev:Analysis.Error ~file:cm ~line:29 "CFG002";
  (* resolution (§4.1 rule distribution) *)
  expect fs ~sev:Analysis.Error ~file:cm ~line:31 "R001";
  expect fs ~sev:Analysis.Error ~file:cm ~line:30 ~site:"sf" "R002";
  expect fs ~sev:Analysis.Error ~file:cm ~line:32 "R003";
  expect fs ~sev:Analysis.Error ~file:cm ~line:33 "R004";
  expect fs ~sev:Analysis.Warning ~file:cm ~line:26 ~site:"zz" "R005";
  (* capabilities vs the §3.1.1 interface statements *)
  expect fs ~sev:Analysis.Error ~file:cm ~line:34 ~site:"sf" "CAP001";
  expect fs ~sev:Analysis.Error ~file:cm ~line:36 ~site:"ny" "CAP002";
  expect fs ~sev:Analysis.Error ~file:cm ~line:35 ~site:"sf" "CAP003";
  expect fs ~sev:Analysis.Warning ~file:cm ~line:37 ~site:"sf" "CAP004";
  expect fs ~sev:Analysis.Warning ~file:cm ~line:39 ~site:"ny" "CAP004";
  (* conflicts and firing cycles (Appendix A) *)
  expect fs ~sev:Analysis.Warning ~file:cm ~line:30 "CON001";
  expect fs ~sev:Analysis.Error ~file:cm ~line:42 "CON002";
  expect fs ~sev:Analysis.Warning ~file:cm ~line:40 "CON003";
  expect fs ~sev:Analysis.Info ~file:cm ~line:44 "CON004";
  (* guarantee feasibility (§3.3.1, Derive prover) *)
  expect fs ~sev:Analysis.Warning ~file:cm ~line:50 ~site:"ny" "GRT001";
  expect fs ~sev:Analysis.Error ~file:cm ~line:51 "R001";
  (* hygiene *)
  expect fs ~sev:Analysis.Warning ~file:cm ~line:46 ~site:"sf" "HYG001";
  expect fs ~sev:Analysis.Warning ~file:cm ~line:47 "HYG002";
  expect fs ~sev:Analysis.Info ~file:cm ~line:17 ~site:"sf" "HYG003";
  (* the companion rule file reports under its own name and line *)
  expect fs ~sev:Analysis.Error ~file:"broken.rules" ~line:6 "CFG002"

let test_broken_messages () =
  let fs = check_broken () in
  let message code =
    match List.find_opt (fun f -> f.Analysis.code = code) fs with
    | Some f -> f.Analysis.message
    | None -> Alcotest.failf "no %s finding" code
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let assert_contains code needle =
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S" code needle)
      true
      (contains (message code) needle)
  in
  assert_contains "R001" "Nope";
  assert_contains "CAP001" "WR(B)";
  assert_contains "CON002" "ping, pong";
  assert_contains "GRT001" "copy(G1)";
  assert_contains "HYG002" "same1, same2"

(* --- the broken_deps fixture (DEP pass family) ------------------------ *)

let check_broken_deps () =
  Analysis.check_config ~file:broken_deps (read_file broken_deps)

let test_broken_deps_summary () =
  let fs = check_broken_deps () in
  let errors, warnings, infos = Analysis.summary fs in
  Alcotest.(check int) "errors" 4 errors;
  Alcotest.(check int) "warnings" 2 warnings;
  Alcotest.(check int) "infos" 0 infos;
  Alcotest.(check int) "exit code" 1 (Analysis.exit_code fs);
  Alcotest.(check (list string)) "exactly the DEP family fires"
    [ "DEP001"; "DEP002"; "DEP003"; "DEP004"; "DEP005" ]
    (distinct_codes fs)

let test_broken_deps_golden () =
  let fs = check_broken_deps () in
  let cm = "broken_deps.cmrid" in
  (* weak acyclicity: wa1/wa2 close a position cycle through a ⁎ edge *)
  expect fs ~sev:Analysis.Error ~file:cm ~line:24 "DEP001";
  (* EGD/TGD interaction: ie2 can merge the null ie1 creates *)
  expect fs ~sev:Analysis.Warning ~file:cm ~line:29 "DEP002";
  (* repair writes a base without a §3.1.1 write interface *)
  expect fs ~sev:Analysis.Error ~file:cm ~line:34 ~site:"lab" "DEP003";
  (* no body base declared anywhere: never an active trigger *)
  expect fs ~sev:Analysis.Warning ~file:cm ~line:38 "DEP004";
  (* malformed surface text, and an arity break of value-last *)
  expect fs ~sev:Analysis.Error ~file:cm ~line:41 "DEP005";
  expect fs ~sev:Analysis.Error ~file:cm ~line:45 ~site:"lab" "DEP005"

let test_broken_deps_json_deterministic () =
  let run () = Analysis.to_json ~checked:broken_deps (check_broken_deps ()) in
  Alcotest.(check string) "byte-identical across runs" (run ()) (run ())

(* Boundary: an ordinary position cycle plus an existential edge that
   stays OFF every cycle is still weakly acyclic — DEP001 must not fire
   on mere existence of ⁎ edges or of cycles. *)
let deps_config deps =
  let header =
    [
      "source s1 relational";
      "  item A(n)";
      "    read SELECT v FROM t WHERE k = $n";
      "    write UPDATE t SET v = $b WHERE k = $n";
      "  item B(n)";
      "    read SELECT v FROM t WHERE k = $n";
      "    write UPDATE t SET v = $b WHERE k = $n";
      "  item F(n)";
      "    read SELECT v FROM t WHERE k = $n";
      "    write UPDATE t SET v = $b WHERE k = $n";
    ]
  in
  let body = List.map (fun d -> "dependency " ^ d) deps in
  ( String.concat "\n" (header @ body) ^ "\n",
    (* line of the first dependency *)
    List.length header + 1 )

let test_dep_weakly_acyclic_boundary () =
  let text, _ =
    deps_config
      [
        "r1: A(x, v) -> B(x, v)";
        "r2: B(x, v) -> A(x, v)";
        "r3: A(x, v) -> F(x, w)";
      ]
  in
  let fs = Analysis.check_config ~file:"inline.cmrid" text in
  let errors, warnings, _ = Analysis.summary fs in
  Alcotest.(check int) "no errors: the ⁎ edge escapes every cycle" 0 errors;
  Alcotest.(check int) "no warnings either" 0 warnings

let test_dep_star_cycle_rejected () =
  let text, first =
    deps_config [ "wa1: A(x, y) -> B(x, z)"; "wa2: B(x, y) -> A(y, w)" ]
  in
  let fs = Analysis.check_config ~file:"inline.cmrid" text in
  expect fs ~sev:Analysis.Error ~file:"inline.cmrid" ~line:first "DEP001";
  Alcotest.(check int) "exits 1" 1 (Analysis.exit_code fs)

(* --- renderers and exit codes ----------------------------------------- *)

let test_json_deterministic () =
  let run () = Analysis.to_json ~checked:broken (check_broken ()) in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical across runs" a b;
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "carries the summary" true (contains a {|"errors":12|});
  Alcotest.(check bool) "null line for file-level findings is representable" true
    (contains (Analysis.to_json ~checked:"x" []) {|"findings":[]|})

let test_warning_exit_codes () =
  let findings = Analysis.check_config ~file:"inline.cmrid" "location Flag zz\n" in
  let errors, warnings, _ = Analysis.summary findings in
  Alcotest.(check int) "no errors" 0 errors;
  Alcotest.(check int) "one warning" 1 warnings;
  Alcotest.(check int) "warnings alone exit 0" 0 (Analysis.exit_code findings);
  Alcotest.(check int) "--deny-warnings promotes to 1" 1
    (Analysis.exit_code ~deny_warnings:true findings)

let test_check_rules_standalone () =
  (* Rules checked without any interface statements: every capability the
     strategy relies on is missing. *)
  let r = Cm_rule.Parser.parse_rule "bad: N(X(n), b) ->[5] WR(Y(n), b)" in
  let findings =
    Analysis.check_rules ~interfaces:[] ~strategy:[ r ]
      ~locator:(fun _ -> "s") ()
  in
  let codes = distinct_codes findings in
  Alcotest.(check bool) "CAP001 fires" true (List.mem "CAP001" codes);
  Alcotest.(check bool) "CAP002 fires" true (List.mem "CAP002" codes)

(* --- the parser front half (satellite: error accumulation) ------------ *)

let test_parse_accumulates_errors () =
  match Cmrid.parse "bogus one\nsource sf relational\nalso bad\n" with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error errs ->
    Alcotest.(check int) "both bad directives reported" 2 (List.length errs);
    Alcotest.(check (list int)) "with their line numbers" [ 1; 3 ]
      (List.map (fun e -> e.Cmrid.e_line) errs)

let test_duplicate_constraint_rejected () =
  let text =
    "constraint copy A B\nconstraint copy A B required\nconstraint copy A C\n"
  in
  (match Cmrid.parse text with
  | Ok _ -> Alcotest.fail "duplicate constraint copy must be rejected"
  | Error errs ->
    let contains hay needle =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check int) "exactly one error" 1 (List.length errs);
    let e = List.hd errs in
    Alcotest.(check int) "reported on the duplicate's line" 2 e.Cmrid.e_line;
    Alcotest.(check bool) "names the first declaration" true
      (contains e.Cmrid.e_msg "first declared on line 1"));
  (* parse_partial keeps the first of the pair and the distinct pair *)
  let t, _ = Cmrid.parse_partial text in
  Alcotest.(check int) "partial result holds two constraints" 2
    (List.length t.Cmrid.constraints)

let () =
  Alcotest.run "analysis"
    [
      ( "clean",
        [
          Alcotest.test_case "payroll + rule files" `Quick test_payroll_clean;
          Alcotest.test_case "payroll config alone" `Quick
            test_payroll_clean_without_rule_files;
          Alcotest.test_case "shipped workloads" `Quick
            test_shipped_workloads_clean;
        ] );
      ( "broken fixture",
        [
          Alcotest.test_case "summary counts" `Quick test_broken_summary;
          Alcotest.test_case "golden diagnostics" `Quick test_broken_golden;
          Alcotest.test_case "messages name culprits" `Quick
            test_broken_messages;
        ] );
      ( "broken deps fixture",
        [
          Alcotest.test_case "summary counts" `Quick test_broken_deps_summary;
          Alcotest.test_case "golden diagnostics" `Quick
            test_broken_deps_golden;
          Alcotest.test_case "json determinism" `Quick
            test_broken_deps_json_deterministic;
          Alcotest.test_case "weakly-acyclic boundary passes" `Quick
            test_dep_weakly_acyclic_boundary;
          Alcotest.test_case "star cycle rejected" `Quick
            test_dep_star_cycle_rejected;
        ] );
      ( "renderers",
        [
          Alcotest.test_case "json determinism" `Quick test_json_deterministic;
          Alcotest.test_case "warning exit codes" `Quick
            test_warning_exit_codes;
        ] );
      ( "rules mode",
        [
          Alcotest.test_case "standalone capability check" `Quick
            test_check_rules_standalone;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "errors accumulate" `Quick
            test_parse_accumulates_errors;
          Alcotest.test_case "duplicate constraint copy rejected" `Quick
            test_duplicate_constraint_rejected;
        ] );
    ]
