(* Unit tests for the CM-Translators: request handling, ground-truth
   recording, interface reporting, and failure mapping for each source
   kind. *)

open Cm_rule
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Cmi = Cm_core.Cmi
module Health = Cm_sources.Health
module Msg = Cm_core.Msg

let value = Alcotest.testable Value.pp Value.equal

(* A bare single-shell world for driving a translator directly. *)
type world = {
  system : Sys_.t;
  shell : Shell.t;
  failures : Msg.failure_kind list ref;
}

let world ?(site = "s") ?(locator = fun _ -> "s") () =
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 7) locator in
  let shell = Sys_.add_shell system ~site in
  let failures = ref [] in
  Shell.on_failure_notice shell (fun ~origin:_ kind -> failures := kind :: !failures);
  { system; shell; failures }

let run w ~until = Sys_.run w.system ~until

let named w name = Trace.named (Sys_.trace w.system) name

let request cmi desc = cmi.Cmi.request desc ~kind:Event.Spontaneous

(* ---------- kvfile translator ---------- *)

let kv_setup ?(latency = 0.1) () =
  let w = world () in
  let fs = Cm_sources.Kvfile.create () in
  let tr =
    Cm_core.Tr_kvfile.create ~sim:(Sys_.sim w.system) ~fs ~site:"s"
      ~emit:(Shell.emitter_for w.shell ~site:"s")
      ~report:(fun k -> Shell.report_failure w.shell k)
      ~latency
      [
        { Cm_core.Tr_kvfile.base = "Phone"; params = [ "n" ]; key_template = "phone.$n";
          writable = true };
        { Cm_core.Tr_kvfile.base = "Motd"; params = []; key_template = "motd";
          writable = false };
      ]
  in
  (w, fs, tr, Cm_core.Tr_kvfile.cmi tr)

let phone n = Item.make "Phone" ~params:[ Value.Str n ]

let kv_write_request_roundtrip () =
  let w, fs, _tr, cmi = kv_setup () in
  request cmi (Event.wr (phone "ann") (Value.Int 555));
  run w ~until:10.0;
  Alcotest.(check (option string)) "native file written" (Some "555")
    (Cm_sources.Kvfile.read fs "phone.ann");
  Alcotest.(check int) "WR recorded" 1 (List.length (named w "WR"));
  Alcotest.(check int) "W emitted" 1 (List.length (named w "W"))

let kv_read_request_roundtrip () =
  let w, _fs, tr, cmi = kv_setup () in
  Cm_core.Tr_kvfile.write_app tr (phone "bob") (Value.Int 777);
  request cmi (Event.rr (phone "bob"));
  run w ~until:10.0;
  match named w "R" with
  | [ r ] -> (
    match r.Event.desc.Event.args with
    | [ _; Event.Av v ] -> Alcotest.check value "read value" (Value.Int 777) v
    | _ -> Alcotest.fail "bad R args")
  | other -> Alcotest.fail (Printf.sprintf "expected 1 R, got %d" (List.length other))

let kv_read_missing_item_silent () =
  let w, _fs, _tr, cmi = kv_setup () in
  request cmi (Event.rr (phone "ghost"));
  run w ~until:10.0;
  Alcotest.(check int) "no R for a missing item" 0 (List.length (named w "R"))

let kv_delete_request () =
  let w, fs, tr, cmi = kv_setup () in
  Cm_core.Tr_kvfile.write_app tr (phone "ann") (Value.Int 1);
  request cmi (Event.dr (phone "ann"));
  run w ~until:10.0;
  Alcotest.(check (option string)) "gone" None (Cm_sources.Kvfile.read fs "phone.ann");
  Alcotest.(check int) "DEL emitted" 1 (List.length (named w "DEL"))

let kv_write_app_records_ws () =
  let w, _fs, tr, _cmi = kv_setup () in
  Cm_core.Tr_kvfile.write_app tr (phone "ann") (Value.Int 1);
  Cm_core.Tr_kvfile.write_app tr (phone "ann") (Value.Int 2);
  (match named w "Ws" with
   | [ _; second ] -> (
     match second.Event.desc.Event.args with
     | [ _; Event.Av old_v; Event.Av new_v ] ->
       Alcotest.check value "old recorded" (Value.Int 1) old_v;
       Alcotest.check value "new recorded" (Value.Int 2) new_v
     | _ -> Alcotest.fail "bad Ws args")
   | l -> Alcotest.fail (Printf.sprintf "expected 2 Ws, got %d" (List.length l)));
  Cm_core.Tr_kvfile.remove_app tr (phone "ann");
  Alcotest.(check int) "DEL ground truth" 1 (List.length (named w "DEL"))

let kv_readonly_item_rejects_write () =
  let w, fs, _tr, cmi = kv_setup () in
  Cm_sources.Kvfile.write fs "motd" "hello";
  request cmi (Event.wr (Item.make "Motd") (Value.Str "x"));
  run w ~until:10.0;
  Alcotest.(check (option string)) "unchanged" (Some "hello")
    (Cm_sources.Kvfile.read fs "motd");
  Alcotest.(check int) "no W" 0 (List.length (named w "W"))

let kv_interfaces_reported () =
  let _w, _fs, tr, cmi = kv_setup () in
  let kinds =
    List.filter_map Cm_core.Interface.classify (Cm_core.Tr_kvfile.interface_rules tr)
  in
  Alcotest.(check bool) "read" true (List.mem Cm_core.Interface.Read kinds);
  Alcotest.(check bool) "write" true (List.mem Cm_core.Interface.Write kinds);
  Alcotest.(check bool) "no notify" true
    (not (List.mem Cm_core.Interface.Notify kinds));
  Alcotest.(check bool) "owns Phone" true (cmi.Cmi.owns "Phone");
  Alcotest.(check bool) "does not own Zzz" false (cmi.Cmi.owns "Zzz")

let kv_down_reports_logical () =
  let w, fs, _tr, cmi = kv_setup () in
  Health.set (Cm_sources.Kvfile.health fs) Health.Down;
  request cmi (Event.wr (phone "ann") (Value.Int 1));
  run w ~until:10.0;
  Alcotest.(check bool) "logical failure reported" true
    (List.mem Msg.Logical !(w.failures))

let kv_degraded_reports_metric () =
  (* latency 0.1, delta 0.5; +2 s degradation breaks the bound. *)
  let w, fs, _tr, cmi = kv_setup () in
  Health.set (Cm_sources.Kvfile.health fs)
    (Health.Degraded { extra_latency = 2.0 });
  request cmi (Event.wr (phone "ann") (Value.Int 1));
  run w ~until:10.0;
  Alcotest.(check bool) "metric failure reported" true
    (List.mem Msg.Metric !(w.failures));
  Alcotest.(check int) "write still performed" 1 (List.length (named w "W"))

let kv_key_template () =
  let _w, _fs, tr, _cmi = kv_setup () in
  Alcotest.(check (option string)) "substituted" (Some "phone.ann")
    (Cm_core.Tr_kvfile.key_of tr (phone "ann"));
  Alcotest.(check (option string)) "constant" (Some "motd")
    (Cm_core.Tr_kvfile.key_of tr (Item.make "Motd"));
  Alcotest.(check (option string)) "unknown base" None
    (Cm_core.Tr_kvfile.key_of tr (Item.make "Nope"))

(* ---------- objstore translator ---------- *)

let obj_setup ?(notify = Cm_core.Tr_objstore.Plain) () =
  let w = world () in
  let store = Cm_sources.Objstore.create () in
  Cm_sources.Objstore.put store ~cls:"person" ~id:"ann" [ ("phone", Value.Int 1) ];
  let tr =
    Cm_core.Tr_objstore.create ~sim:(Sys_.sim w.system) ~store ~site:"s"
      ~emit:(Shell.emitter_for w.shell ~site:"s")
      ~report:(fun k -> Shell.report_failure w.shell k)
      [
        { Cm_core.Tr_objstore.base = "OPhone"; cls = "person"; attr = "phone";
          writable = true; notify };
      ]
  in
  (w, store, tr, Cm_core.Tr_objstore.cmi tr)

let ophone n = Item.make "OPhone" ~params:[ Value.Str n ]

let obj_spontaneous_produces_ws_and_n () =
  let w, _store, tr, _cmi = obj_setup () in
  ignore (Cm_core.Tr_objstore.set_app tr (ophone "ann") (Value.Int 2));
  run w ~until:10.0;
  Alcotest.(check int) "Ws" 1 (List.length (named w "Ws"));
  Alcotest.(check int) "N" 1 (List.length (named w "N"))

let obj_cm_write_is_not_spontaneous () =
  let w, store, _tr, cmi = obj_setup () in
  request cmi (Event.wr (ophone "ann") (Value.Int 9));
  run w ~until:10.0;
  Alcotest.(check (option value)) "written" (Some (Value.Int 9))
    (Cm_sources.Objstore.get_attr store ~cls:"person" ~id:"ann" ~attr:"phone");
  Alcotest.(check int) "no Ws for CM write" 0 (List.length (named w "Ws"));
  Alcotest.(check int) "no N for CM write" 0 (List.length (named w "N"));
  Alcotest.(check int) "W emitted" 1 (List.length (named w "W"))

let obj_conditional_filters () =
  let filter ~old_value ~new_value =
    Float.abs (Value.to_float new_value -. Value.to_float old_value)
    > 0.5 *. Value.to_float old_value
  in
  let w, _store, tr, _cmi =
    obj_setup
      ~notify:
        (Cm_core.Tr_objstore.Filtered
           { filter; filter_expr = Cm_core.Interface.relative_change_condition ~threshold:0.5 })
      ()
  in
  ignore (Cm_core.Tr_objstore.set_app tr (ophone "ann") (Value.Int 100));
  run w ~until:5.0;
  (* 1 -> 100 is a huge change: notified. *)
  Alcotest.(check int) "big change notified" 1 (List.length (named w "N"));
  ignore (Cm_core.Tr_objstore.set_app tr (ophone "ann") (Value.Int 105));
  run w ~until:10.0;
  (* 100 -> 105 is 5%: filtered, but Ws ground truth still recorded. *)
  Alcotest.(check int) "small change filtered" 1 (List.length (named w "N"));
  Alcotest.(check int) "ground truth kept" 2 (List.length (named w "Ws"))

let obj_read_request () =
  let w, _store, _tr, cmi = obj_setup () in
  request cmi (Event.rr (ophone "ann"));
  run w ~until:10.0;
  Alcotest.(check int) "R" 1 (List.length (named w "R"))

let obj_write_missing_object_reports () =
  let w, _store, _tr, cmi = obj_setup () in
  request cmi (Event.wr (ophone "ghost") (Value.Int 1));
  run w ~until:10.0;
  Alcotest.(check bool) "logical failure" true (List.mem Msg.Logical !(w.failures))

let obj_silent_drop_suppresses_n () =
  let w, store, tr, _cmi = obj_setup () in
  Health.set (Cm_sources.Objstore.health store) Health.Silent_drop;
  ignore (Cm_core.Tr_objstore.set_app tr (ophone "ann") (Value.Int 3));
  run w ~until:10.0;
  Alcotest.(check int) "no N" 0 (List.length (named w "N"));
  Alcotest.(check int) "no failure notice either" 0 (List.length !(w.failures))

(* ---------- whois translator ---------- *)

let whois_setup () =
  let w = world () in
  let server = Cm_sources.Whois.create () in
  let tr =
    Cm_core.Tr_whois.create ~sim:(Sys_.sim w.system) ~server ~site:"s"
      ~emit:(Shell.emitter_for w.shell ~site:"s")
      ~report:(fun k -> Shell.report_failure w.shell k)
      [ { Cm_core.Tr_whois.base = "WPhone"; field = "phone" } ]
  in
  Cm_core.Tr_whois.register_app tr ~name:"ann" ~fields:[ ("phone", "111") ];
  (w, server, tr, Cm_core.Tr_whois.cmi tr)

let wphone n = Item.make "WPhone" ~params:[ Value.Str n ]

let whois_read () =
  let w, _server, _tr, cmi = whois_setup () in
  request cmi (Event.rr (wphone "ann"));
  run w ~until:10.0;
  match named w "R" with
  | [ r ] -> (
    match r.Event.desc.Event.args with
    | [ _; Event.Av v ] -> Alcotest.check value "value" (Value.Str "111") v
    | _ -> Alcotest.fail "bad R args")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 R, got %d" (List.length l))

let whois_write_rejected () =
  let w, _server, _tr, cmi = whois_setup () in
  request cmi (Event.wr (wphone "ann") (Value.Str "x"));
  run w ~until:10.0;
  Alcotest.(check int) "no W from a read-only source" 0 (List.length (named w "W"))

let whois_update_app_records_ws () =
  let w, _server, tr, _cmi = whois_setup () in
  Alcotest.(check bool) "updated" true
    (Cm_core.Tr_whois.update_app tr ~name:"ann" ~field:"phone" ~value:"222");
  Alcotest.(check int) "Ws recorded" 2 (List.length (named w "Ws"));
  (* registration + update *)
  Alcotest.(check bool) "unregister" true (Cm_core.Tr_whois.unregister_app tr ~name:"ann");
  Alcotest.(check int) "DEL recorded" 1 (List.length (named w "DEL"))

let whois_interfaces_read_only () =
  let _w, _server, tr, _cmi = whois_setup () in
  let kinds =
    List.filter_map Cm_core.Interface.classify (Cm_core.Tr_whois.interface_rules tr)
  in
  Alcotest.(check (list string)) "only read" [ "read" ]
    (List.map Cm_core.Interface.kind_to_string kinds)

(* ---------- bibdb translator ---------- *)

let bib_setup () =
  let w = world () in
  let db = Cm_sources.Bibdb.create () in
  let tr =
    Cm_core.Tr_bibdb.create ~sim:(Sys_.sim w.system) ~db ~site:"s"
      ~emit:(Shell.emitter_for w.shell ~site:"s")
      ~report:(fun k -> Shell.report_failure w.shell k)
      ~base:"BibPaper" ()
  in
  (w, db, tr, Cm_core.Tr_bibdb.cmi tr)

let bib_add_withdraw_ground_truth () =
  let w, _db, tr, _cmi = bib_setup () in
  Cm_core.Tr_bibdb.add_app tr
    { Cm_sources.Bibdb.key = "p1"; title = "T"; authors = [ "a" ]; year = 1996 };
  Alcotest.(check int) "INS" 1 (List.length (named w "INS"));
  Alcotest.(check bool) "withdraw" true (Cm_core.Tr_bibdb.withdraw_app tr "p1");
  Alcotest.(check int) "DEL" 1 (List.length (named w "DEL"))

let bib_read_title () =
  let w, _db, tr, cmi = bib_setup () in
  Cm_core.Tr_bibdb.add_app tr
    { Cm_sources.Bibdb.key = "p1"; title = "A Toolkit"; authors = [ "a" ]; year = 1996 };
  request cmi (Event.rr (Item.make "BibPaper" ~params:[ Value.Str "p1" ]));
  run w ~until:10.0;
  match named w "R" with
  | [ r ] -> (
    match r.Event.desc.Event.args with
    | [ _; Event.Av v ] -> Alcotest.check value "title" (Value.Str "A Toolkit") v
    | _ -> Alcotest.fail "bad R args")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 R, got %d" (List.length l))

let bib_query_by_author () =
  let _w, _db, tr, _cmi = bib_setup () in
  Cm_core.Tr_bibdb.add_app tr
    { Cm_sources.Bibdb.key = "p1"; title = "T1"; authors = [ "widom" ]; year = 1996 };
  Cm_core.Tr_bibdb.add_app tr
    { Cm_sources.Bibdb.key = "p2"; title = "T2"; authors = [ "other" ]; year = 1995 };
  Alcotest.(check int) "by author" 1
    (List.length (Cm_core.Tr_bibdb.papers_by_author tr "widom"))

(* ---------- relational translator extras ---------- *)

let rel_setup ?(periodic = None) ?(no_spontaneous = false) () =
  let w = world () in
  let db = Cm_relational.Database.create () in
  ignore
    (Cm_relational.Database.exec db
       "CREATE TABLE t (id TEXT PRIMARY KEY, v INT NOT NULL)");
  ignore (Cm_relational.Database.exec db "INSERT INTO t VALUES ('k', 0)");
  let tr =
    Cm_core.Tr_relational.create ~sim:(Sys_.sim w.system) ~db ~site:"s"
      ~emit:(Shell.emitter_for w.shell ~site:"s")
      ~report:(fun k -> Shell.report_failure w.shell k)
      ~existence:
        [ { Cm_core.Tr_relational.ex_base = "Row"; ex_table = "t"; ex_key_column = "id" } ]
      [
        {
          Cm_core.Tr_relational.base = "V";
          params = [];
          read_sql = Some "SELECT v FROM t WHERE id = 'k'";
          write_sql = Some "UPDATE t SET v = $b WHERE id = 'k'";
          delete_sql = None;
          notify =
            Some
              { Cm_core.Tr_relational.table = "t"; column = "v"; key_column = "id";
                send = true; filter = None; filter_expr = None };
          no_spontaneous;
          periodic;
        };
      ]
  in
  (w, db, tr, Cm_core.Tr_relational.cmi tr)

let rel_existence_events () =
  let w, _db, tr, _cmi = rel_setup () in
  ignore (Cm_core.Tr_relational.exec_app tr "INSERT INTO t VALUES ('k2', 5)");
  ignore (Cm_core.Tr_relational.exec_app tr "DELETE FROM t WHERE id = 'k2'");
  Alcotest.(check int) "INS" 1 (List.length (named w "INS"));
  Alcotest.(check int) "DEL" 1 (List.length (named w "DEL"))

let rel_periodic_notify () =
  let w, _db, _tr, _cmi = rel_setup ~periodic:(Some 10.0) () in
  run w ~until:35.0;
  (* Ticks at 10, 20, 30 -> three P events and three N events. *)
  Alcotest.(check int) "P events" 3 (List.length (named w "P"));
  Alcotest.(check int) "N events" 3 (List.length (named w "N"));
  (* The reported interfaces include the periodic-notify statement. *)
  ()

let rel_periodic_interface_reported () =
  let _w, _db, tr, _cmi = rel_setup ~periodic:(Some 10.0) () in
  let kinds =
    List.filter_map Cm_core.Interface.classify
      (Cm_core.Tr_relational.interface_rules tr)
  in
  Alcotest.(check bool) "periodic-notify reported" true
    (List.mem Cm_core.Interface.Periodic_notify kinds)

let rel_periodic_rejects_families () =
  let w = world () in
  let db = Cm_relational.Database.create () in
  ignore (Cm_relational.Database.exec db "CREATE TABLE t (id TEXT PRIMARY KEY, v INT)");
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Cm_core.Tr_relational.create ~sim:(Sys_.sim w.system) ~db ~site:"s"
            ~emit:(Shell.emitter_for w.shell ~site:"s")
            ~report:(fun _ -> ())
            [
              {
                Cm_core.Tr_relational.base = "V";
                params = [ "n" ];
                read_sql = Some "SELECT v FROM t WHERE id = $n";
                write_sql = None;
                delete_sql = None;
                notify = None;
                no_spontaneous = false;
                periodic = Some 10.0;
              };
            ]);
       false
     with Invalid_argument _ -> true)

let rel_no_spontaneous_interface () =
  let _w, _db, tr, _cmi = rel_setup ~no_spontaneous:true () in
  let kinds =
    List.filter_map Cm_core.Interface.classify
      (Cm_core.Tr_relational.interface_rules tr)
  in
  Alcotest.(check bool) "no-spontaneous-write reported" true
    (List.mem Cm_core.Interface.No_spontaneous_write kinds)

let rel_no_spontaneous_violation_detected () =
  (* If the source promised Ws -> FALSE but an application writes anyway,
     the validity checker flags the prohibited event. *)
  let w, _db, tr, _cmi = rel_setup ~no_spontaneous:true () in
  ignore (Cm_core.Tr_relational.exec_app tr "UPDATE t SET v = 42 WHERE id = 'k'");
  run w ~until:10.0;
  let rules = Cm_core.Tr_relational.interface_rules tr in
  let violations =
    Validity.check ~rules ~locator:(fun _ -> "s") (Sys_.trace w.system)
  in
  Alcotest.(check bool) "prohibited Ws flagged" true
    (List.exists (function Validity.Prohibited _ -> true | _ -> false) violations)

let () =
  Alcotest.run "cm_translators"
    [
      ( "kvfile",
        [
          Alcotest.test_case "write roundtrip" `Quick kv_write_request_roundtrip;
          Alcotest.test_case "read roundtrip" `Quick kv_read_request_roundtrip;
          Alcotest.test_case "read missing" `Quick kv_read_missing_item_silent;
          Alcotest.test_case "delete" `Quick kv_delete_request;
          Alcotest.test_case "write_app ground truth" `Quick kv_write_app_records_ws;
          Alcotest.test_case "read-only item" `Quick kv_readonly_item_rejects_write;
          Alcotest.test_case "interfaces" `Quick kv_interfaces_reported;
          Alcotest.test_case "down -> logical" `Quick kv_down_reports_logical;
          Alcotest.test_case "degraded -> metric" `Quick kv_degraded_reports_metric;
          Alcotest.test_case "key template" `Quick kv_key_template;
        ] );
      ( "objstore",
        [
          Alcotest.test_case "spontaneous Ws+N" `Quick obj_spontaneous_produces_ws_and_n;
          Alcotest.test_case "CM write not spontaneous" `Quick
            obj_cm_write_is_not_spontaneous;
          Alcotest.test_case "conditional filter" `Quick obj_conditional_filters;
          Alcotest.test_case "read" `Quick obj_read_request;
          Alcotest.test_case "missing object" `Quick obj_write_missing_object_reports;
          Alcotest.test_case "silent drop" `Quick obj_silent_drop_suppresses_n;
        ] );
      ( "whois",
        [
          Alcotest.test_case "read" `Quick whois_read;
          Alcotest.test_case "write rejected" `Quick whois_write_rejected;
          Alcotest.test_case "update_app Ws" `Quick whois_update_app_records_ws;
          Alcotest.test_case "read-only interfaces" `Quick whois_interfaces_read_only;
        ] );
      ( "bibdb",
        [
          Alcotest.test_case "ground truth" `Quick bib_add_withdraw_ground_truth;
          Alcotest.test_case "read title" `Quick bib_read_title;
          Alcotest.test_case "by author" `Quick bib_query_by_author;
        ] );
      ( "relational",
        [
          Alcotest.test_case "existence events" `Quick rel_existence_events;
          Alcotest.test_case "periodic notify" `Quick rel_periodic_notify;
          Alcotest.test_case "periodic interface" `Quick rel_periodic_interface_reported;
          Alcotest.test_case "periodic rejects families" `Quick
            rel_periodic_rejects_families;
          Alcotest.test_case "no-spontaneous interface" `Quick
            rel_no_spontaneous_interface;
          Alcotest.test_case "no-spontaneous violation" `Quick
            rel_no_spontaneous_violation_detected;
        ] );
    ]
