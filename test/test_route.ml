(* Tests for the constraint-aware read router (Cm_route.Route): the
   qualification/fallback matrix (replica -> master -> forced poll), the
   inclusive kappa <= SLO boundary — including a sampled channel whose
   kappa carries the poll period in the same end-to-end seconds as the
   SLO — replicas dropping out and re-qualifying across rule-epoch
   churn, and byte-determinism of the cmtool route reports. *)

module Net = Cm_net.Net
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Msg = Cm_core.Msg
module Interface = Cm_core.Interface
module Strategy = Cm_core.Strategy
module Evolution = Cm_core.Evolution
module Route = Cm_route.Route
module Payroll = Cm_workload.Payroll
open Cm_rule

let ok_or_fail label = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" label m

let outcome =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Route.outcome_to_string o))
    ( = )

let skip_reasons d =
  List.map (fun s -> (s.Route.sk_target, s.Route.sk_reason)) d.Route.d_skips

(* -- a two-replica star --------------------------------------------------

   Feed mastered at hub; CopyA at ra with kappa 5, CopyB at rb with
   kappa 20 (kappa = notify delta 2 + propagation delta + write delta 1).
   All links at the network default 0.05 s base, so a local replica
   costs 0 and any remote read costs 0.1. *)

let star_program =
  String.concat "\n"
    [
      "nf: Ws(Feed(n), b) ->[2] N(Feed(n), b)";
      "wa: WR(CopyA(n), b) ->[1] W(CopyA(n), b)";
      "qa: Ws(CopyA(n), b) -> FALSE";
      "pa: N(Feed(n), b) ->[2] WR(CopyA(n), b)";
      "wb: WR(CopyB(n), b) ->[1] W(CopyB(n), b)";
      "qb: Ws(CopyB(n), b) -> FALSE";
      "pb: N(Feed(n), b) ->[17] WR(CopyB(n), b)";
    ]

let star_locator (item : Item.t) =
  match item.Item.base with
  | "Feed" -> "hub"
  | "CopyA" -> "ra"
  | "CopyB" -> "rb"
  | b -> Alcotest.failf "unexpected base %s" b

(* [keep] filters the program's rules (by id) before they are handed to
   the router — dropping the quiet statements makes kappa unprovable. *)
let star ?(seed = 7) ?(keep = fun _ -> true) () =
  let rules = Parser.parse_rules star_program in
  let rules = List.filter (fun r -> keep r.Rule.id) rules in
  let interfaces, strategy =
    List.partition (fun r -> Interface.classify r <> None) rules
  in
  let system = Sys_.create ~config:(Sys_.Config.seeded seed) star_locator in
  let route =
    Route.create ~interfaces ~strategy system
      ~constraints:[ ("Feed", "CopyA"); ("Feed", "CopyB") ]
  in
  (system, route)

(* -- qualification and replica selection -- *)

let replica_local_and_cheapest () =
  let _, route = star () in
  (* Local copy wins at zero cost. *)
  let d = Route.read route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "local replica" Route.Replica d.Route.d_outcome;
  Alcotest.(check string) "served CopyA" "CopyA" d.Route.d_served_base;
  Alcotest.(check (float 1e-9)) "kappa 5" 5.0 d.Route.d_served_kappa;
  Alcotest.(check (float 1e-9)) "zero latency" 0.0 d.Route.d_latency;
  (* Both qualify from rb: the local one is cheaper. *)
  let d = Route.read route ~client_site:"rb" "Feed" in
  Alcotest.(check string) "rb serves its own copy" "CopyB" d.Route.d_served_base;
  (* From a third site both cost the same round trip: the site-name
     tie-break picks ra deterministically. *)
  let d = Route.read route ~client_site:"cx" "Feed" in
  Alcotest.(check string) "tie broken by site" "CopyA" d.Route.d_served_base;
  Alcotest.(check (float 1e-9)) "one round trip" 0.1 d.Route.d_latency

let slo_filters_catalog () =
  let _, route = star () in
  (* SLO 10: CopyB (kappa 20) is over budget, CopyA still qualifies even
     from rb — a stale-enough local copy is not served. *)
  let d = Route.read ~within_kappa:10.0 route ~client_site:"rb" "Feed" in
  Alcotest.check outcome "remote replica" Route.Replica d.Route.d_outcome;
  Alcotest.(check string) "served CopyA" "CopyA" d.Route.d_served_base;
  Alcotest.(check (list (pair string string)))
    "CopyB skipped over-slo"
    [ ("CopyB", "over-slo") ]
    (skip_reasons d)

let slo_boundary_is_inclusive () =
  let _, route = star () in
  (* kappa = SLO qualifies: both are end-to-end seconds. *)
  let d = Route.read ~within_kappa:5.0 route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "kappa = slo serves replica" Route.Replica
    d.Route.d_outcome;
  Alcotest.(check (float 1e-9)) "kappa 5" 5.0 d.Route.d_served_kappa;
  (* Just under the bound: nothing qualifies, fall back to the master. *)
  let d = Route.read ~within_kappa:4.999 route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "below kappa falls back" Route.Master d.Route.d_outcome;
  Alcotest.(check string) "master serves Feed" "Feed" d.Route.d_served_base;
  Alcotest.(check string) "at hub" "hub" d.Route.d_served_site;
  Alcotest.(check (float 1e-9)) "authoritative kappa" 0.0 d.Route.d_served_kappa;
  Alcotest.(check (list (pair string string)))
    "both copies over-slo"
    [ ("CopyA", "over-slo"); ("CopyB", "over-slo") ]
    (skip_reasons d)

(* A sampled channel's kappa includes the poll period, in the same
   seconds the SLO is expressed in — so a copy refreshed every 120 s
   qualifies at SLO = kappa exactly and not one millisecond under. *)
let sampled_kappa_same_units () =
  let p =
    Payroll.create
      ~config:(Sys_.Config.seeded 1701)
      ~employees:1 ~mode:Payroll.Read_only ()
  in
  Payroll.install_polling ~period:120.0 p;
  let system = p.Payroll.system in
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let route =
    Route.create
      ~interfaces:(Sys_.interface_rules system @ [ nsw ])
      ~strategy:(Sys_.strategy_rules system)
      system
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  let entry =
    match Sys_.copy_view system ~source:"Salary1" ~target:"Salary2" with
    | Some e -> e
    | None -> Alcotest.fail "copy not declared"
  in
  let kappa =
    match entry.Sys_.Guarantee_view.gv_kappa with
    | Some k -> k
    | None -> Alcotest.fail "sampled kappa unprovable"
  in
  Alcotest.(check bool)
    (Printf.sprintf "kappa (%g) includes the 120 s period" kappa)
    true (kappa >= 120.0);
  let d =
    Route.read ~within_kappa:kappa route ~client_site:Payroll.site_b "Salary1"
  in
  Alcotest.check outcome "slo = kappa qualifies" Route.Replica d.Route.d_outcome;
  let d =
    Route.read
      ~within_kappa:(kappa -. 0.001)
      route ~client_site:Payroll.site_b "Salary1"
  in
  Alcotest.check outcome "slo just under kappa does not" Route.Master
    d.Route.d_outcome

(* -- fallback matrix -- *)

let unprovable_falls_back_to_master () =
  (* Without the no-spontaneous-write statements nothing is provable. *)
  let _, route = star ~keep:(fun id -> id <> "qa" && id <> "qb") () in
  let d = Route.read route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "master" Route.Master d.Route.d_outcome;
  Alcotest.(check (list (pair string string)))
    "both unprovable"
    [ ("CopyA", "unprovable"); ("CopyB", "unprovable") ]
    (skip_reasons d)

let invalidated_copy_skipped () =
  let system, route = star () in
  let shell = Sys_.add_shell system ~site:"ra" in
  Shell.report_failure shell Msg.Metric;
  let d = Route.read route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "other replica serves" Route.Replica d.Route.d_outcome;
  Alcotest.(check string) "served CopyB" "CopyB" d.Route.d_served_base;
  Alcotest.(check (list (pair string string)))
    "CopyA invalidated"
    [ ("CopyA", "invalidated") ]
    (skip_reasons d);
  let entry =
    match Sys_.copy_view system ~source:"Feed" ~target:"CopyA" with
    | Some e -> e
    | None -> Alcotest.fail "copy not declared"
  in
  Alcotest.(check bool) "view shows invalid" false
    entry.Sys_.Guarantee_view.gv_valid

let partitioned_master_forces_poll () =
  let system, route = star () in
  let net = Sys_.net system in
  Net.partition net ~from_site:"ra" ~to_site:"hub" ~until:1e9;
  (* SLO 1: no copy qualifies; the master is unreachable from ra; the
     poll is relayed via rb, the only replica site that still reaches
     the hub: penalty 1.0 + rt(ra,rb) 0.1 + rt(rb,hub) 0.1. *)
  let d = Route.read ~within_kappa:1.0 route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "forced poll" Route.Forced_poll d.Route.d_outcome;
  Alcotest.(check string) "answered by the master" "Feed" d.Route.d_served_base;
  Alcotest.(check (float 1e-9)) "authoritative kappa" 0.0 d.Route.d_served_kappa;
  Alcotest.(check (float 1e-9)) "penalty + relay trips" 1.2 d.Route.d_latency;
  (* From rb the master is still reachable: plain master fallback. *)
  let d = Route.read ~within_kappa:1.0 route ~client_site:"rb" "Feed" in
  Alcotest.check outcome "master from rb" Route.Master d.Route.d_outcome

(* -- epoch churn: a replica loses its guarantee, then wins it back -- *)

let epoch_churn_requalifies () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 1702) ~employees:1 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let interfaces = Sys_.interface_rules system @ [ nsw ] in
  let route =
    Route.create ~interfaces
      ~strategy:(Sys_.strategy_rules system)
      system
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  let read () = Route.read route ~client_site:Payroll.site_b "Salary1" in
  let d = read () in
  Alcotest.check outcome "epoch 0 serves the replica" Route.Replica
    d.Route.d_outcome;
  Alcotest.(check (float 1e-9)) "kappa 11" 11.0 d.Route.d_served_kappa;
  let evo =
    Evolution.create ~constraints:[ ("Salary1", "Salary2") ] ~interfaces system
  in
  (* Epoch 1: an empty program — nothing propagates, the metric
     guarantee is lost, the router must stop serving the copy. *)
  let noop =
    {
      Strategy.strategy_name = "noop";
      description = "no propagation";
      rules = [];
      aux_init = [];
    }
  in
  ignore (ok_or_fail "propose noop" (Evolution.propose evo noop));
  ignore (ok_or_fail "cutover noop" (Evolution.cutover evo));
  ok_or_fail "retire 0" (Evolution.retire evo ~epoch:0);
  let d = read () in
  Alcotest.check outcome "lost guarantee falls back" Route.Master
    d.Route.d_outcome;
  Alcotest.(check (list (pair string string)))
    "skipped epoch-lost"
    [ ("Salary2", "epoch-lost") ]
    (skip_reasons d);
  (* Epoch 2: propagation reinstated — the copy re-qualifies. *)
  let v2 =
    Strategy.propagate ~prefix:"v2" ~delta:5.0 ~source:Payroll.source_pattern
      ~target:Payroll.target_pattern ()
  in
  ignore (ok_or_fail "propose v2" (Evolution.propose evo v2));
  ignore (ok_or_fail "cutover v2" (Evolution.cutover evo));
  ok_or_fail "retire 1" (Evolution.retire evo ~epoch:1);
  let d = read () in
  Alcotest.check outcome "re-qualified" Route.Replica d.Route.d_outcome;
  Alcotest.(check (float 1e-9)) "kappa restored" 11.0 d.Route.d_served_kappa

(* -- quarantine: live staleness pulls a copy out of service ---------- *)

(* A §5 Silent_drop makes Salary2 stale; the monitor's transition
   quarantines it instantly.  Re-admission is half-open: reads before
   the dwell skip "quarantined", the first read after it probes (one
   forced refresh billed as a poll); a probe against a still-stale copy
   re-arms the quarantine, and only a fresh probe returns the copy to
   service. *)
let quarantine_probe_readmission () =
  let module Monitor = Cm_core.Monitor in
  let module Tr_rel = Cm_core.Tr_relational in
  let module Health = Cm_sources.Health in
  let config = Sys_.Config.with_monitor true (Sys_.Config.seeded 1703) in
  let p = Payroll.create ~config ~employees:1 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  let sim = Sys_.sim system in
  let monitor = Option.get (Sys_.monitor system) in
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let route =
    Route.create
      ~interfaces:(Sys_.interface_rules system @ [ nsw ])
      ~probe_after:5.0 system
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  Monitor.note_initial monitor p.Payroll.initial;
  let kappa =
    match Sys_.copy_qualifies system ~source:"Salary1" ~target:"Salary2" with
    | Ok k -> k
    | Error e -> Alcotest.failf "copy does not qualify: %s" e
  in
  Alcotest.(check (float 1e-9)) "kappa 11" 11.0 kappa;
  let emp = List.hd p.Payroll.employees in
  let decisions = ref [] in
  let read_at at label =
    Cm_sim.Sim.schedule_at sim at (fun () ->
        let d = Route.read route ~client_site:Payroll.site_b "Salary1" in
        decisions := (label, d) :: !decisions)
  in
  (* t=10: healthy write, propagates.  t=30: channel starts dropping
     silently.  t=35: a dropped write — staleness onset at 35 + κ = 46,
     quarantine entry on the tick that notices it, probe due ~5 s on. *)
  Payroll.schedule_update p ~at:10.0 ~emp ~salary:1111;
  let health = Tr_rel.health p.Payroll.tr_a in
  Cm_sim.Sim.schedule_at sim 30.0 (fun () ->
      Health.set health Health.Silent_drop);
  Payroll.schedule_update p ~at:35.0 ~emp ~salary:2222;
  Cm_sim.Sim.schedule_at sim 40.0 (fun () -> Health.set health Health.Healthy);
  read_at 20.0 "healthy";
  read_at 48.0 "dwell";  (* quarantined, probe not yet due *)
  read_at 54.0 "probe-stale";  (* probe fires; copy still stale; re-arm *)
  (* t=56: a fresh write propagates (arrives ~57.2), so the next probe
     after the re-armed dwell (54 + 5) finds the copy fresh. *)
  Payroll.schedule_update p ~at:56.0 ~emp ~salary:3333;
  read_at 62.0 "probe-fresh";
  read_at 65.0 "served-again";
  Sys_.run system ~until:80.0;
  let d label = List.assoc label !decisions in
  Alcotest.check outcome "healthy read serves the replica" Route.Replica
    (d "healthy").Route.d_outcome;
  Alcotest.check outcome "quarantined read falls back" Route.Master
    (d "dwell").Route.d_outcome;
  Alcotest.(check (list (pair string string)))
    "dwell skip reason"
    [ ("Salary2", "quarantined") ]
    (skip_reasons (d "dwell"));
  Alcotest.check outcome "stale probe falls back" Route.Master
    (d "probe-stale").Route.d_outcome;
  Alcotest.(check (list (pair string string)))
    "stale probe skip reason"
    [ ("Salary2", "stale") ]
    (skip_reasons (d "probe-stale"));
  Alcotest.check outcome "fresh probe serves the replica" Route.Replica
    (d "probe-fresh").Route.d_outcome;
  Alcotest.(check bool)
    (Printf.sprintf "probe pays the poll surcharge (%.2f)"
       (d "probe-fresh").Route.d_latency)
    true
    ((d "probe-fresh").Route.d_latency >= 1.0);
  Alcotest.check outcome "readmitted copy serves normally" Route.Replica
    (d "served-again").Route.d_outcome;
  Alcotest.(check bool) "no surcharge once readmitted" true
    ((d "served-again").Route.d_latency < 1.0);
  Alcotest.(check int) "one quarantine entry" 1 (Route.quarantines route);
  Alcotest.(check int) "two probes" 2 (Route.probes route);
  Alcotest.(check int) "one readmission" 1 (Route.readmissions route);
  Alcotest.(check (list (triple string string (float 1e-9))))
    "quarantine list empty at the end" [] (Route.quarantined route)

(* -- deterministic reports -- *)

let reports_are_deterministic () =
  let client_sites = [ "hub"; "ra"; "rb" ] in
  let render () =
    let _, route = star () in
    let decisions = Route.plan ~within_kappa:10.0 route ~client_sites in
    ( Route.report_to_text ~slo:10.0 route decisions,
      Route.report_to_json ~slo:10.0 route decisions )
  in
  let text1, json1 = render () in
  let text2, json2 = render () in
  Alcotest.(check string) "text byte-identical" text1 text2;
  Alcotest.(check string) "json byte-identical" json1 json2;
  (* And re-planning on the same router is stable too. *)
  let _, route = star () in
  let d1 = Route.plan ~within_kappa:10.0 route ~client_sites in
  let d2 = Route.plan ~within_kappa:10.0 route ~client_sites in
  Alcotest.(check string) "replan identical"
    (Route.report_to_json ~slo:10.0 route d1)
    (Route.report_to_json ~slo:10.0 route d2)

let counters_track_outcomes () =
  let system, route = star () in
  ignore (Route.read route ~client_site:"ra" "Feed");
  ignore (Route.read ~within_kappa:1.0 route ~client_site:"ra" "Feed");
  Net.partition (Sys_.net system) ~from_site:"ra" ~to_site:"hub" ~until:1e9;
  ignore (Route.read ~within_kappa:1.0 route ~client_site:"ra" "Feed");
  Alcotest.(check int) "reads" 3 (Route.reads route);
  Alcotest.(check int) "replica" 1 (Route.reads_by route Route.Replica);
  Alcotest.(check int) "master" 1 (Route.reads_by route Route.Master);
  Alcotest.(check int) "poll" 1 (Route.reads_by route Route.Forced_poll)

let () =
  Alcotest.run "cm_route"
    [
      ( "qualification",
        [
          Alcotest.test_case "local + cheapest replica" `Quick
            replica_local_and_cheapest;
          Alcotest.test_case "slo filters catalog" `Quick slo_filters_catalog;
          Alcotest.test_case "kappa = slo is inclusive" `Quick
            slo_boundary_is_inclusive;
          Alcotest.test_case "sampled kappa same units" `Quick
            sampled_kappa_same_units;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "unprovable -> master" `Quick
            unprovable_falls_back_to_master;
          Alcotest.test_case "invalidated copy skipped" `Quick
            invalidated_copy_skipped;
          Alcotest.test_case "partitioned master -> forced poll" `Quick
            partitioned_master_forces_poll;
          Alcotest.test_case "counters" `Quick counters_track_outcomes;
        ] );
      ( "epoch churn",
        [
          Alcotest.test_case "lost then re-qualified" `Quick
            epoch_churn_requalifies;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "stale -> quarantine -> probe -> readmit" `Quick
            quarantine_probe_readmission;
        ] );
      ( "reports",
        [
          Alcotest.test_case "byte-deterministic" `Quick
            reports_are_deterministic;
        ] );
    ]
