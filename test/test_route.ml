(* Tests for the constraint-aware read router (Cm_route.Route): the
   qualification/fallback matrix (replica -> master -> forced poll), the
   inclusive kappa <= SLO boundary — including a sampled channel whose
   kappa carries the poll period in the same end-to-end seconds as the
   SLO — replicas dropping out and re-qualifying across rule-epoch
   churn, and byte-determinism of the cmtool route reports. *)

module Net = Cm_net.Net
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Msg = Cm_core.Msg
module Interface = Cm_core.Interface
module Strategy = Cm_core.Strategy
module Evolution = Cm_core.Evolution
module Route = Cm_route.Route
module Payroll = Cm_workload.Payroll
open Cm_rule

let ok_or_fail label = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" label m

let outcome =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Route.outcome_to_string o))
    ( = )

let skip_reasons d =
  List.map (fun s -> (s.Route.sk_target, s.Route.sk_reason)) d.Route.d_skips

(* -- a two-replica star --------------------------------------------------

   Feed mastered at hub; CopyA at ra with kappa 5, CopyB at rb with
   kappa 20 (kappa = notify delta 2 + propagation delta + write delta 1).
   All links at the network default 0.05 s base, so a local replica
   costs 0 and any remote read costs 0.1. *)

let star_program =
  String.concat "\n"
    [
      "nf: Ws(Feed(n), b) ->[2] N(Feed(n), b)";
      "wa: WR(CopyA(n), b) ->[1] W(CopyA(n), b)";
      "qa: Ws(CopyA(n), b) -> FALSE";
      "pa: N(Feed(n), b) ->[2] WR(CopyA(n), b)";
      "wb: WR(CopyB(n), b) ->[1] W(CopyB(n), b)";
      "qb: Ws(CopyB(n), b) -> FALSE";
      "pb: N(Feed(n), b) ->[17] WR(CopyB(n), b)";
    ]

let star_locator (item : Item.t) =
  match item.Item.base with
  | "Feed" -> "hub"
  | "CopyA" -> "ra"
  | "CopyB" -> "rb"
  | b -> Alcotest.failf "unexpected base %s" b

(* [keep] filters the program's rules (by id) before they are handed to
   the router — dropping the quiet statements makes kappa unprovable. *)
let star ?(seed = 7) ?(keep = fun _ -> true) () =
  let rules = Parser.parse_rules star_program in
  let rules = List.filter (fun r -> keep r.Rule.id) rules in
  let interfaces, strategy =
    List.partition (fun r -> Interface.classify r <> None) rules
  in
  let system = Sys_.create ~config:(Sys_.Config.seeded seed) star_locator in
  let route =
    Route.create ~interfaces ~strategy system
      ~constraints:[ ("Feed", "CopyA"); ("Feed", "CopyB") ]
  in
  (system, route)

(* -- qualification and replica selection -- *)

let replica_local_and_cheapest () =
  let _, route = star () in
  (* Local copy wins at zero cost. *)
  let d = Route.read route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "local replica" Route.Replica d.Route.d_outcome;
  Alcotest.(check string) "served CopyA" "CopyA" d.Route.d_served_base;
  Alcotest.(check (float 1e-9)) "kappa 5" 5.0 d.Route.d_served_kappa;
  Alcotest.(check (float 1e-9)) "zero latency" 0.0 d.Route.d_latency;
  (* Both qualify from rb: the local one is cheaper. *)
  let d = Route.read route ~client_site:"rb" "Feed" in
  Alcotest.(check string) "rb serves its own copy" "CopyB" d.Route.d_served_base;
  (* From a third site both cost the same round trip: the site-name
     tie-break picks ra deterministically. *)
  let d = Route.read route ~client_site:"cx" "Feed" in
  Alcotest.(check string) "tie broken by site" "CopyA" d.Route.d_served_base;
  Alcotest.(check (float 1e-9)) "one round trip" 0.1 d.Route.d_latency

let slo_filters_catalog () =
  let _, route = star () in
  (* SLO 10: CopyB (kappa 20) is over budget, CopyA still qualifies even
     from rb — a stale-enough local copy is not served. *)
  let d = Route.read ~within_kappa:10.0 route ~client_site:"rb" "Feed" in
  Alcotest.check outcome "remote replica" Route.Replica d.Route.d_outcome;
  Alcotest.(check string) "served CopyA" "CopyA" d.Route.d_served_base;
  Alcotest.(check (list (pair string string)))
    "CopyB skipped over-slo"
    [ ("CopyB", "over-slo") ]
    (skip_reasons d)

let slo_boundary_is_inclusive () =
  let _, route = star () in
  (* kappa = SLO qualifies: both are end-to-end seconds. *)
  let d = Route.read ~within_kappa:5.0 route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "kappa = slo serves replica" Route.Replica
    d.Route.d_outcome;
  Alcotest.(check (float 1e-9)) "kappa 5" 5.0 d.Route.d_served_kappa;
  (* Just under the bound: nothing qualifies, fall back to the master. *)
  let d = Route.read ~within_kappa:4.999 route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "below kappa falls back" Route.Master d.Route.d_outcome;
  Alcotest.(check string) "master serves Feed" "Feed" d.Route.d_served_base;
  Alcotest.(check string) "at hub" "hub" d.Route.d_served_site;
  Alcotest.(check (float 1e-9)) "authoritative kappa" 0.0 d.Route.d_served_kappa;
  Alcotest.(check (list (pair string string)))
    "both copies over-slo"
    [ ("CopyA", "over-slo"); ("CopyB", "over-slo") ]
    (skip_reasons d)

(* A sampled channel's kappa includes the poll period, in the same
   seconds the SLO is expressed in — so a copy refreshed every 120 s
   qualifies at SLO = kappa exactly and not one millisecond under. *)
let sampled_kappa_same_units () =
  let p =
    Payroll.create
      ~config:(Sys_.Config.seeded 1701)
      ~employees:1 ~mode:Payroll.Read_only ()
  in
  Payroll.install_polling ~period:120.0 p;
  let system = p.Payroll.system in
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let route =
    Route.create
      ~interfaces:(Sys_.interface_rules system @ [ nsw ])
      ~strategy:(Sys_.strategy_rules system)
      system
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  let entry =
    match Sys_.copy_view system ~source:"Salary1" ~target:"Salary2" with
    | Some e -> e
    | None -> Alcotest.fail "copy not declared"
  in
  let kappa =
    match entry.Sys_.Guarantee_view.gv_kappa with
    | Some k -> k
    | None -> Alcotest.fail "sampled kappa unprovable"
  in
  Alcotest.(check bool)
    (Printf.sprintf "kappa (%g) includes the 120 s period" kappa)
    true (kappa >= 120.0);
  let d =
    Route.read ~within_kappa:kappa route ~client_site:Payroll.site_b "Salary1"
  in
  Alcotest.check outcome "slo = kappa qualifies" Route.Replica d.Route.d_outcome;
  let d =
    Route.read
      ~within_kappa:(kappa -. 0.001)
      route ~client_site:Payroll.site_b "Salary1"
  in
  Alcotest.check outcome "slo just under kappa does not" Route.Master
    d.Route.d_outcome

(* -- fallback matrix -- *)

let unprovable_falls_back_to_master () =
  (* Without the no-spontaneous-write statements nothing is provable. *)
  let _, route = star ~keep:(fun id -> id <> "qa" && id <> "qb") () in
  let d = Route.read route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "master" Route.Master d.Route.d_outcome;
  Alcotest.(check (list (pair string string)))
    "both unprovable"
    [ ("CopyA", "unprovable"); ("CopyB", "unprovable") ]
    (skip_reasons d)

let invalidated_copy_skipped () =
  let system, route = star () in
  let shell = Sys_.add_shell system ~site:"ra" in
  Shell.report_failure shell Msg.Metric;
  let d = Route.read route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "other replica serves" Route.Replica d.Route.d_outcome;
  Alcotest.(check string) "served CopyB" "CopyB" d.Route.d_served_base;
  Alcotest.(check (list (pair string string)))
    "CopyA invalidated"
    [ ("CopyA", "invalidated") ]
    (skip_reasons d);
  let entry =
    match Sys_.copy_view system ~source:"Feed" ~target:"CopyA" with
    | Some e -> e
    | None -> Alcotest.fail "copy not declared"
  in
  Alcotest.(check bool) "view shows invalid" false
    entry.Sys_.Guarantee_view.gv_valid

let partitioned_master_forces_poll () =
  let system, route = star () in
  let net = Sys_.net system in
  Net.partition net ~from_site:"ra" ~to_site:"hub" ~until:1e9;
  (* SLO 1: no copy qualifies; the master is unreachable from ra; the
     poll is relayed via rb, the only replica site that still reaches
     the hub: penalty 1.0 + rt(ra,rb) 0.1 + rt(rb,hub) 0.1. *)
  let d = Route.read ~within_kappa:1.0 route ~client_site:"ra" "Feed" in
  Alcotest.check outcome "forced poll" Route.Forced_poll d.Route.d_outcome;
  Alcotest.(check string) "answered by the master" "Feed" d.Route.d_served_base;
  Alcotest.(check (float 1e-9)) "authoritative kappa" 0.0 d.Route.d_served_kappa;
  Alcotest.(check (float 1e-9)) "penalty + relay trips" 1.2 d.Route.d_latency;
  (* From rb the master is still reachable: plain master fallback. *)
  let d = Route.read ~within_kappa:1.0 route ~client_site:"rb" "Feed" in
  Alcotest.check outcome "master from rb" Route.Master d.Route.d_outcome

(* -- epoch churn: a replica loses its guarantee, then wins it back -- *)

let epoch_churn_requalifies () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 1702) ~employees:1 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let interfaces = Sys_.interface_rules system @ [ nsw ] in
  let route =
    Route.create ~interfaces
      ~strategy:(Sys_.strategy_rules system)
      system
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  let read () = Route.read route ~client_site:Payroll.site_b "Salary1" in
  let d = read () in
  Alcotest.check outcome "epoch 0 serves the replica" Route.Replica
    d.Route.d_outcome;
  Alcotest.(check (float 1e-9)) "kappa 11" 11.0 d.Route.d_served_kappa;
  let evo =
    Evolution.create ~constraints:[ ("Salary1", "Salary2") ] ~interfaces system
  in
  (* Epoch 1: an empty program — nothing propagates, the metric
     guarantee is lost, the router must stop serving the copy. *)
  let noop =
    {
      Strategy.strategy_name = "noop";
      description = "no propagation";
      rules = [];
      aux_init = [];
    }
  in
  ignore (ok_or_fail "propose noop" (Evolution.propose evo noop));
  ignore (ok_or_fail "cutover noop" (Evolution.cutover evo));
  ok_or_fail "retire 0" (Evolution.retire evo ~epoch:0);
  let d = read () in
  Alcotest.check outcome "lost guarantee falls back" Route.Master
    d.Route.d_outcome;
  Alcotest.(check (list (pair string string)))
    "skipped epoch-lost"
    [ ("Salary2", "epoch-lost") ]
    (skip_reasons d);
  (* Epoch 2: propagation reinstated — the copy re-qualifies. *)
  let v2 =
    Strategy.propagate ~prefix:"v2" ~delta:5.0 ~source:Payroll.source_pattern
      ~target:Payroll.target_pattern ()
  in
  ignore (ok_or_fail "propose v2" (Evolution.propose evo v2));
  ignore (ok_or_fail "cutover v2" (Evolution.cutover evo));
  ok_or_fail "retire 1" (Evolution.retire evo ~epoch:1);
  let d = read () in
  Alcotest.check outcome "re-qualified" Route.Replica d.Route.d_outcome;
  Alcotest.(check (float 1e-9)) "kappa restored" 11.0 d.Route.d_served_kappa

(* -- deterministic reports -- *)

let reports_are_deterministic () =
  let client_sites = [ "hub"; "ra"; "rb" ] in
  let render () =
    let _, route = star () in
    let decisions = Route.plan ~within_kappa:10.0 route ~client_sites in
    ( Route.report_to_text ~slo:10.0 route decisions,
      Route.report_to_json ~slo:10.0 route decisions )
  in
  let text1, json1 = render () in
  let text2, json2 = render () in
  Alcotest.(check string) "text byte-identical" text1 text2;
  Alcotest.(check string) "json byte-identical" json1 json2;
  (* And re-planning on the same router is stable too. *)
  let _, route = star () in
  let d1 = Route.plan ~within_kappa:10.0 route ~client_sites in
  let d2 = Route.plan ~within_kappa:10.0 route ~client_sites in
  Alcotest.(check string) "replan identical"
    (Route.report_to_json ~slo:10.0 route d1)
    (Route.report_to_json ~slo:10.0 route d2)

let counters_track_outcomes () =
  let system, route = star () in
  ignore (Route.read route ~client_site:"ra" "Feed");
  ignore (Route.read ~within_kappa:1.0 route ~client_site:"ra" "Feed");
  Net.partition (Sys_.net system) ~from_site:"ra" ~to_site:"hub" ~until:1e9;
  ignore (Route.read ~within_kappa:1.0 route ~client_site:"ra" "Feed");
  Alcotest.(check int) "reads" 3 (Route.reads route);
  Alcotest.(check int) "replica" 1 (Route.reads_by route Route.Replica);
  Alcotest.(check int) "master" 1 (Route.reads_by route Route.Master);
  Alcotest.(check int) "poll" 1 (Route.reads_by route Route.Forced_poll)

let () =
  Alcotest.run "cm_route"
    [
      ( "qualification",
        [
          Alcotest.test_case "local + cheapest replica" `Quick
            replica_local_and_cheapest;
          Alcotest.test_case "slo filters catalog" `Quick slo_filters_catalog;
          Alcotest.test_case "kappa = slo is inclusive" `Quick
            slo_boundary_is_inclusive;
          Alcotest.test_case "sampled kappa same units" `Quick
            sampled_kappa_same_units;
        ] );
      ( "fallback",
        [
          Alcotest.test_case "unprovable -> master" `Quick
            unprovable_falls_back_to_master;
          Alcotest.test_case "invalidated copy skipped" `Quick
            invalidated_copy_skipped;
          Alcotest.test_case "partitioned master -> forced poll" `Quick
            partitioned_master_forces_poll;
          Alcotest.test_case "counters" `Quick counters_track_outcomes;
        ] );
      ( "epoch churn",
        [
          Alcotest.test_case "lost then re-qualified" `Quick
            epoch_churn_requalifies;
        ] );
      ( "reports",
        [
          Alcotest.test_case "byte-deterministic" `Quick
            reports_are_deterministic;
        ] );
    ]
