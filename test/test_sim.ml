(* Tests for the discrete-event simulation kernel. *)

module Sim = Cm_sim.Sim

let clock_starts_at_zero () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (Sim.now sim)

let schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let ties_run_in_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  Sim.schedule sim ~delay:5.5 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "clock at callback" 5.5 !seen;
  Alcotest.(check (float 1e-9)) "clock after run" 5.5 (Sim.now sim)

let nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () ->
      log := ("outer", Sim.now sim) :: !log;
      Sim.schedule sim ~delay:2.0 (fun () -> log := ("inner", Sim.now sim) :: !log));
  Sim.run sim;
  match List.rev !log with
  | [ ("outer", t1); ("inner", t2) ] ->
    Alcotest.(check (float 1e-9)) "outer at 1" 1.0 t1;
    Alcotest.(check (float 1e-9)) "inner at 3" 3.0 t2
  | _ -> Alcotest.fail "wrong callback sequence"

let negative_delay_clamped () =
  let sim = Sim.create () in
  let ran = ref false in
  Sim.schedule sim ~delay:1.0 (fun () ->
      Sim.schedule sim ~delay:(-5.0) (fun () ->
          ran := true;
          Alcotest.(check (float 1e-9)) "no time travel" 1.0 (Sim.now sim)));
  Sim.run sim;
  Alcotest.(check bool) "ran" true !ran

let until_stops_and_advances () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr count);
  Sim.schedule sim ~delay:10.0 (fun () -> incr count);
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "only first ran" 1 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.0 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "second ran on resume" 2 !count

let until_drained_queue_advances_clock () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () -> ());
  Sim.run ~until:100.0 sim;
  Alcotest.(check (float 1e-9)) "clock at horizon" 100.0 (Sim.now sim)

let stop_exception () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr count);
  Sim.schedule sim ~delay:2.0 (fun () -> raise Sim.Stop);
  Sim.schedule sim ~delay:3.0 (fun () -> incr count);
  Sim.run sim;
  Alcotest.(check int) "stopped early" 1 !count

let every_fires_periodically () =
  let sim = Sim.create () in
  let ticks = ref [] in
  let stop = ref false in
  Sim.every sim ~period:10.0 (fun () -> ticks := Sim.now sim :: !ticks)
    ~cancel:(fun () -> !stop);
  Sim.schedule sim ~delay:35.0 (fun () -> stop := true);
  Sim.run ~until:100.0 sim;
  Alcotest.(check (list (float 1e-9))) "ticks at 10,20,30" [ 10.0; 20.0; 30.0 ]
    (List.rev !ticks)

let every_with_start () =
  let sim = Sim.create () in
  let ticks = ref [] in
  Sim.every sim ~start:0.0 ~period:5.0 (fun () -> ticks := Sim.now sim :: !ticks)
    ~cancel:(fun () -> Sim.now sim >= 11.0);
  Sim.run ~until:100.0 sim;
  Alcotest.(check (list (float 1e-9))) "ticks at 0,5,10" [ 0.0; 5.0; 10.0 ]
    (List.rev !ticks)

let step_one_at_a_time () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr count);
  Sim.schedule sim ~delay:2.0 (fun () -> incr count);
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check int) "one ran" 1 !count;
  Alcotest.(check bool) "step 2" true (Sim.step sim);
  Alcotest.(check bool) "queue empty" false (Sim.step sim);
  Alcotest.(check int) "both ran" 2 !count

let counters () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () -> ());
  Sim.schedule sim ~delay:2.0 (fun () -> ());
  Alcotest.(check int) "pending" 2 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "processed" 2 (Sim.events_processed sim);
  Alcotest.(check int) "none pending" 0 (Sim.pending sim)

let pending_ignores_cancelled_periodics () =
  (* A periodic timer always has its next re-arm sitting in the queue.
     Once its cancel predicate flips, that queued tick is dead weight and
     [pending] must not report it. *)
  let sim = Sim.create () in
  let stop = ref false in
  let ticks = ref 0 in
  Sim.every sim ~period:10.0 (fun () -> incr ticks) ~cancel:(fun () -> !stop);
  Alcotest.(check int) "live re-arm counted" 1 (Sim.pending sim);
  Sim.schedule sim ~delay:15.0 (fun () -> stop := true);
  Sim.run ~until:16.0 sim;
  (* The tick scheduled for t=20 is still queued, but cancelled. *)
  Alcotest.(check int) "cancelled re-arm not counted" 0 (Sim.pending sim);
  Sim.run sim;
  (* Draining pops the dead entry without running its action. *)
  Alcotest.(check int) "dead tick never runs" 1 !ticks

let rng_determinism () =
  let run_once () =
    let sim = Sim.create ~seed:11 () in
    let xs = ref [] in
    Sim.schedule sim ~delay:1.0 (fun () ->
        for _ = 1 to 5 do
          xs := Cm_util.Prng.int (Sim.rng sim) 1000 :: !xs
        done);
    Sim.run sim;
    !xs
  in
  Alcotest.(check (list int)) "reproducible" (run_once ()) (run_once ())

let schedule_at_past_clamped () =
  let sim = Sim.create () in
  let at = ref (-1.0) in
  Sim.schedule sim ~delay:4.0 (fun () ->
      Sim.schedule_at sim 1.0 (fun () -> at := Sim.now sim));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "clamped to now" 4.0 !at

let () =
  Alcotest.run "cm_sim"
    [
      ( "kernel",
        [
          Alcotest.test_case "clock starts at zero" `Quick clock_starts_at_zero;
          Alcotest.test_case "schedule order" `Quick schedule_order;
          Alcotest.test_case "ties in schedule order" `Quick ties_run_in_schedule_order;
          Alcotest.test_case "clock advances" `Quick clock_advances;
          Alcotest.test_case "nested scheduling" `Quick nested_scheduling;
          Alcotest.test_case "negative delay clamped" `Quick negative_delay_clamped;
          Alcotest.test_case "run until" `Quick until_stops_and_advances;
          Alcotest.test_case "until advances drained clock" `Quick
            until_drained_queue_advances_clock;
          Alcotest.test_case "stop exception" `Quick stop_exception;
          Alcotest.test_case "every" `Quick every_fires_periodically;
          Alcotest.test_case "every with start" `Quick every_with_start;
          Alcotest.test_case "step" `Quick step_one_at_a_time;
          Alcotest.test_case "counters" `Quick counters;
          Alcotest.test_case "pending ignores cancelled periodics" `Quick
            pending_ignores_cancelled_periodics;
          Alcotest.test_case "rng determinism" `Quick rng_determinism;
          Alcotest.test_case "schedule_at past clamped" `Quick schedule_at_past_clamped;
        ] );
    ]
