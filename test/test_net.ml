(* Tests for the simulated network: FIFO delivery, latency, statistics. *)

module Sim = Cm_sim.Sim
module Net = Cm_net.Net

let make ?latency () =
  let sim = Sim.create ~seed:5 () in
  let net = Net.create ~sim ?latency () in
  (sim, net)

let delivery () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  let got = ref [] in
  Net.register net ~site:"b" (fun msg -> got := (msg, Sim.now sim) :: !got);
  Net.send net ~from_site:"a" ~to_site:"b" "hello";
  Sim.run sim;
  match !got with
  | [ ("hello", t) ] -> Alcotest.(check (float 1e-9)) "latency applied" 0.1 t
  | _ -> Alcotest.fail "message not delivered exactly once"

let fifo_per_link () =
  let sim, net = make ~latency:{ Net.base = 0.05; jitter = 0.2 } () in
  let got = ref [] in
  Net.register net ~site:"b" (fun msg -> got := msg :: !got);
  for i = 1 to 50 do
    Net.send net ~from_site:"a" ~to_site:"b" i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "in order despite jitter" (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let local_send_is_async () =
  let sim, net = make () in
  let got = ref false in
  Net.register net ~site:"a" (fun () -> got := true);
  Net.send net ~from_site:"a" ~to_site:"a" ();
  Alcotest.(check bool) "not synchronous" false !got;
  Sim.run sim;
  Alcotest.(check bool) "delivered" true !got;
  Alcotest.(check (float 1e-9)) "zero delay" 0.0 (Sim.now sim)

let unknown_destination () =
  (* With crash/restart in the fault model, a missing destination is a
     runtime condition: the message becomes a recorded drop, not an
     exception escaping the event loop. *)
  let sim, net = make () in
  let hook_drops = ref [] in
  Net.on_drop net (fun ~from_site ~to_site reason ->
      hook_drops := (from_site, to_site, reason) :: !hook_drops);
  Net.send net ~from_site:"a" ~to_site:"nowhere" ();
  Sim.run sim;
  Alcotest.(check int) "dropped" 1 (Net.messages_dropped net);
  Alcotest.(check int) "unroutable" 1 (Net.drops_by net Net.Unroutable);
  Alcotest.(check bool) "hook saw it" true
    (!hook_drops = [ ("a", "nowhere", Net.Unroutable) ])

let drop_all () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  Net.set_default_faults net { Net.drop_prob = 1.0; dup_prob = 0.0 };
  let got = ref 0 in
  Net.register net ~site:"b" (fun () -> incr got);
  for _ = 1 to 20 do
    Net.send net ~from_site:"a" ~to_site:"b" ()
  done;
  Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "all recorded" 20 (Net.drops_by net Net.Faulty);
  Alcotest.(check int) "per link" 20
    (Net.dropped_between net ~from_site:"a" ~to_site:"b")

let duplicate_all () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  Net.set_faults net ~from_site:"a" ~to_site:"b"
    { Net.drop_prob = 0.0; dup_prob = 1.0 };
  let got = ref 0 in
  Net.register net ~site:"b" (fun () -> incr got);
  for _ = 1 to 10 do
    Net.send net ~from_site:"a" ~to_site:"b" ()
  done;
  Sim.run sim;
  Alcotest.(check int) "each delivered twice" 20 !got;
  Alcotest.(check int) "duplications counted" 10 (Net.messages_duplicated net)

let local_sends_are_immune () =
  let sim, net = make () in
  Net.set_default_faults net { Net.drop_prob = 1.0; dup_prob = 1.0 };
  let got = ref 0 in
  Net.register net ~site:"a" (fun () -> incr got);
  Net.send net ~from_site:"a" ~to_site:"a" ();
  Sim.run sim;
  Alcotest.(check int) "self-send exempt from faults" 1 !got

let partition_window () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  let got = ref [] in
  Net.register net ~site:"b" (fun msg -> got := msg :: !got);
  Net.partition net ~from_site:"a" ~to_site:"b" ~until:10.0;
  Net.send net ~from_site:"a" ~to_site:"b" "during";
  Sim.schedule_at sim 11.0 (fun () -> Net.send net ~from_site:"a" ~to_site:"b" "after");
  Sim.run sim;
  Alcotest.(check (list string)) "only post-partition traffic" [ "after" ] !got;
  Alcotest.(check int) "partition drop recorded" 1 (Net.drops_by net Net.Partitioned)

let crash_and_restart () =
  let sim, net = make ~latency:{ Net.base = 1.0; jitter = 0.0 } () in
  let got = ref [] in
  Net.register net ~site:"b" (fun msg -> got := msg :: !got);
  (* In flight when the endpoint dies: lost on arrival. *)
  Net.send net ~from_site:"a" ~to_site:"b" "in-flight";
  Sim.schedule_at sim 0.5 (fun () -> Net.crash_site net ~site:"b");
  Sim.schedule_at sim 2.0 (fun () -> Net.send net ~from_site:"a" ~to_site:"b" "while-down");
  Sim.schedule_at sim 5.0 (fun () -> Net.restart_site net ~site:"b");
  Sim.schedule_at sim 6.0 (fun () -> Net.send net ~from_site:"a" ~to_site:"b" "after-restart");
  Sim.run sim;
  Alcotest.(check (list string)) "only post-restart traffic" [ "after-restart" ] !got;
  Alcotest.(check int) "both losses recorded" 2 (Net.drops_by net Net.Endpoint_down)

let fault_determinism () =
  let run () =
    let sim, net = make ~latency:{ Net.base = 0.05; jitter = 0.1 } () in
    Net.set_default_faults net { Net.drop_prob = 0.3; dup_prob = 0.2 };
    let got = ref [] in
    Net.register net ~site:"b" (fun i -> got := (i, Sim.now sim) :: !got);
    for i = 1 to 50 do
      Net.send net ~from_site:"a" ~to_site:"b" i
    done;
    Sim.run sim;
    (!got, Net.messages_dropped net, Net.messages_duplicated net)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same faults" true (a = b);
  let _, dropped, duplicated = a in
  Alcotest.(check bool) "faults actually fired" true (dropped > 0 && duplicated > 0)

let no_fifo_reorders () =
  (* The fifo:false ablation path: with jitter much larger than the base
     latency, delivery order must differ from send order. *)
  let sim = Sim.create ~seed:5 () in
  let net = Net.create ~sim ~latency:{ Net.base = 0.01; jitter = 5.0 } ~fifo:false () in
  let got = ref [] in
  Net.register net ~site:"b" (fun i -> got := i :: !got);
  for i = 1 to 50 do
    Net.send net ~from_site:"a" ~to_site:"b" i
  done;
  Sim.run sim;
  let received = List.rev !got in
  Alcotest.(check int) "all delivered" 50 (List.length received);
  Alcotest.(check bool) "jitter reordered the stream" true
    (received <> List.init 50 (fun i -> i + 1))

let duplicate_registration () =
  let _, net = make () in
  Net.register net ~site:"a" (fun () -> ());
  Alcotest.(check bool) "raises" true
    (try
       Net.register net ~site:"a" (fun () -> ());
       false
     with Invalid_argument _ -> true)

let per_link_latency_override () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  Net.set_latency net ~from_site:"a" ~to_site:"b" { Net.base = 2.0; jitter = 0.0 };
  let at = ref 0.0 in
  Net.register net ~site:"b" (fun () -> at := Sim.now sim);
  Net.send net ~from_site:"a" ~to_site:"b" ();
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "override used" 2.0 !at

let statistics () =
  let sim, net = make () in
  Net.register net ~site:"b" (fun () -> ());
  Net.register net ~site:"c" (fun () -> ());
  Net.send net ~from_site:"a" ~to_site:"b" ();
  Net.send net ~from_site:"a" ~to_site:"b" ();
  Net.send net ~from_site:"a" ~to_site:"c" ();
  Sim.run sim;
  Alcotest.(check int) "total" 3 (Net.messages_sent net);
  Alcotest.(check int) "a->b" 2 (Net.messages_between net ~from_site:"a" ~to_site:"b");
  Alcotest.(check int) "a->c" 1 (Net.messages_between net ~from_site:"a" ~to_site:"c");
  Net.reset_counters net;
  Alcotest.(check int) "reset" 0 (Net.messages_sent net)

let deterministic_jitter () =
  let run () =
    let sim, net = make ~latency:{ Net.base = 0.05; jitter = 0.1 } () in
    let times = ref [] in
    Net.register net ~site:"b" (fun () -> times := Sim.now sim :: !times);
    for _ = 1 to 10 do
      Net.send net ~from_site:"a" ~to_site:"b" ()
    done;
    Sim.run sim;
    !times
  in
  Alcotest.(check (list (float 1e-12))) "same seed, same delays" (run ()) (run ())

let () =
  Alcotest.run "cm_net"
    [
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick delivery;
          Alcotest.test_case "fifo per link" `Quick fifo_per_link;
          Alcotest.test_case "local send async" `Quick local_send_is_async;
          Alcotest.test_case "unknown destination" `Quick unknown_destination;
          Alcotest.test_case "duplicate registration" `Quick duplicate_registration;
          Alcotest.test_case "per-link override" `Quick per_link_latency_override;
          Alcotest.test_case "statistics" `Quick statistics;
          Alcotest.test_case "deterministic jitter" `Quick deterministic_jitter;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop all" `Quick drop_all;
          Alcotest.test_case "duplicate all" `Quick duplicate_all;
          Alcotest.test_case "local sends immune" `Quick local_sends_are_immune;
          Alcotest.test_case "partition window" `Quick partition_window;
          Alcotest.test_case "crash and restart" `Quick crash_and_restart;
          Alcotest.test_case "fault determinism" `Quick fault_determinism;
          Alcotest.test_case "no-fifo reorders" `Quick no_fifo_reorders;
        ] );
    ]
