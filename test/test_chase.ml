(* Tests for the dependency/chase subsystem (lib/chase): surface parsing,
   weak acyclicity, the restricted chase (determinism, minimality, EGD
   merges), compilation to CM rules, and the differential proving that
   chase-derived repairs coincide with the hand-written §4.2 propagation
   strategy on the payroll workload. *)

module Chase = Cm_chase.Chase
module Db = Cm_relational.Database
module Sys_ = Cm_core.System
module Strategy = Cm_core.Strategy
open Cm_rule
open Cm_workload

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let parse_ok ?label text =
  match Chase.parse ?label text with
  | Ok d -> d
  | Error m -> Alcotest.failf "parse %S failed: %s" text m

let parse_all texts = List.map (fun t -> parse_ok t) texts

let cval v = Chase.Cval v
let str s = cval (Value.Str s)
let int n = cval (Value.Int n)
let fact base args = { Chase.f_base = base; f_args = args }

let fact_strings inst = List.map Chase.fact_to_string (Chase.Instance.facts inst)

let chase_ok deps inst =
  match Chase.chase deps inst with
  | Ok o -> o
  | Error m -> Alcotest.failf "chase failed: %s" m

(* --- parsing ----------------------------------------------------------- *)

let test_parse_roundtrip () =
  let d = parse_ok "copy: A(n, s) -> B(n, s)" in
  Alcotest.(check string) "canonical text" "copy: A(n, s) -> B(n, s)"
    (Chase.to_string d);
  Alcotest.(check string) "kind" "tgd" (Chase.kind_name d);
  Alcotest.(check (list string)) "body bases" [ "A" ] (Chase.body_bases d);
  Alcotest.(check (list string)) "written bases" [ "B" ]
    (Chase.written_bases d)

let test_parse_default_label () =
  let d = parse_ok ~label:"d7" "A(n, s) -> B(n, s)" in
  Alcotest.(check string) "fallback label" "d7" d.Chase.d_label

let test_parse_egd () =
  let d = parse_ok "fd: A(n, s) && A(n, s2) -> s == s2" in
  Alcotest.(check string) "kind" "egd" (Chase.kind_name d);
  Alcotest.(check string) "canonical text" "fd: A(n, s) && A(n, s2) -> s == s2"
    (Chase.to_string d);
  Alcotest.(check (list string)) "written bases: atoms carrying equated vars"
    [ "A" ] (Chase.written_bases d)

let test_parse_existential () =
  let d = parse_ok "m: A(n, s) -> B(n, z)" in
  match d.Chase.d_form with
  | Chase.Tgd t ->
    Alcotest.(check (list string)) "existential vars" [ "z" ]
      (Chase.existential_vars t)
  | Chase.Egd _ -> Alcotest.fail "expected a TGD"

let test_parse_errors () =
  let expect_error text needle =
    match Chase.parse text with
    | Ok _ -> Alcotest.failf "expected %S to fail" text
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions %S (got %S)" text needle m)
        true (contains m needle)
  in
  expect_error "A(n, s) B(n, s)" "->";
  expect_error "x: A(n, s) ->" "empty head";
  expect_error "x: -> A(n, s)" "empty body";
  expect_error "x: A(n, s) -> s == t" "t"

(* --- weak acyclicity and interaction cycles ---------------------------- *)

let test_weakly_acyclic_boundary () =
  (* An ordinary cycle (A ↔ B) plus a ⁎ edge that leaves the cycle for E:
     weakly acyclic — the special edge stays outside every SCC. *)
  let deps =
    parse_all
      [
        "r1: A(x, v) -> B(x, v)";
        "r2: B(x, v) -> A(x, v)";
        "r3: A(x, v) -> F(x, w)";
      ]
  in
  Alcotest.(check bool) "weakly acyclic" true (Chase.weakly_acyclic deps);
  Alcotest.(check int) "no special cycles" 0
    (List.length (Chase.special_cycles deps));
  Alcotest.(check bool) "graph still has a special edge" true
    (List.exists (fun e -> e.Chase.e_special) (Chase.dependency_graph deps))

let test_star_cycle_detected () =
  let deps = parse_all [ "wa1: A(x, y) -> B(x, z)"; "wa2: B(x, y) -> A(y, w)" ] in
  Alcotest.(check bool) "not weakly acyclic" false (Chase.weakly_acyclic deps);
  match Chase.special_cycles deps with
  | [ c ] ->
    Alcotest.(check (list string)) "positions on the cycle" [ "A.0"; "B.1" ]
      (List.map Chase.position_to_string c.Chase.c_positions);
    Alcotest.(check (list string)) "culprit labels" [ "wa1"; "wa2" ]
      c.Chase.c_labels
  | cs -> Alcotest.failf "expected one cycle, got %d" (List.length cs)

let test_interaction_cycle () =
  let tgd = parse_ok "ie1: C(x, y) -> D(x, z)" in
  let egd = parse_ok "ie2: D(x, y) && C(x, w) -> y == w" in
  (match Chase.interaction_cycles [ tgd; egd ] with
  | [ group ] ->
    Alcotest.(check (list string)) "group members" [ "ie1"; "ie2" ]
      (List.map (fun d -> d.Chase.d_label) group)
  | gs -> Alcotest.failf "expected one group, got %d" (List.length gs));
  Alcotest.(check int) "no group without the EGD" 0
    (List.length (Chase.interaction_cycles [ tgd ]))

(* --- the chase --------------------------------------------------------- *)

let copy_program = parse_all [ "copy: A(n, s) -> B(n, s)" ]

let stale_instance () =
  let inst = Chase.Instance.create () in
  List.iter
    (fun f -> ignore (Chase.Instance.add inst f))
    [
      fact "A" [ str "e1"; int 1000 ];
      fact "A" [ str "e2"; int 1100 ];
      fact "B" [ str "e1"; int 1000 ];
    ];
  inst

let test_chase_repairs_missing_copy () =
  let inst = stale_instance () in
  let o = chase_ok copy_program inst in
  Alcotest.(check (list string)) "exactly the missing tuple is inserted"
    [ "insert B(\"e2\", 1100)  (by copy)" ]
    (List.map Chase.repair_to_string o.Chase.repairs);
  Alcotest.(check int) "two rounds: one firing, one quiescent" 2
    o.Chase.rounds;
  Alcotest.(check bool) "the fact landed" true
    (Chase.Instance.mem inst (fact "B" [ str "e2"; int 1100 ]))

let test_chase_deterministic () =
  let run () =
    let inst = stale_instance () in
    let o = chase_ok copy_program inst in
    (List.map Chase.repair_to_string o.Chase.repairs, fact_strings inst)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (list string) (list string)))
    "identical repairs and final instance across runs" a b

let test_chase_minimal_fixpoint () =
  let inst = stale_instance () in
  ignore (chase_ok copy_program inst);
  let again = chase_ok copy_program inst in
  Alcotest.(check int) "second chase repairs nothing" 0
    (List.length again.Chase.repairs);
  Alcotest.(check int) "and is quiescent immediately" 1 again.Chase.rounds

let test_chase_existential_null () =
  let deps = parse_all [ "has: A(n, s) -> C(n, z)" ] in
  let inst = Chase.Instance.create () in
  ignore (Chase.Instance.add inst (fact "A" [ str "e1"; int 1000 ]));
  let o = chase_ok deps inst in
  Alcotest.(check (list string)) "insert carries a labelled null"
    [ "insert C(\"e1\", \xe2\x8a\xa51)  (by has)" ]
    (List.map Chase.repair_to_string o.Chase.repairs)

let test_egd_merges_tgd_null () =
  let deps =
    parse_all [ "t: B(x, y) -> C(x, z)"; "e: C(x, y) && B(x, w) -> y == w" ]
  in
  let inst = Chase.Instance.create () in
  ignore (Chase.Instance.add inst (fact "B" [ str "k"; int 5 ]));
  let o = chase_ok deps inst in
  Alcotest.(check (list string)) "insert with a null, then the EGD merge"
    [ "insert C(\"k\", \xe2\x8a\xa51)  (by t)"; "merge \xe2\x8a\xa51 := 5  (by e)" ]
    (List.map Chase.repair_to_string o.Chase.repairs);
  Alcotest.(check bool) "the merged constant fact is present" true
    (Chase.Instance.mem inst (fact "C" [ str "k"; int 5 ]));
  Alcotest.(check bool) "no labelled null survives" false
    (List.exists
       (fun f ->
         List.exists
           (function Chase.Lnull _ -> true | Chase.Cval _ -> false)
           f.Chase.f_args)
       (Chase.Instance.facts inst))

let test_egd_constant_clash_fails () =
  let deps = parse_all [ "fd: A(n, s) && A(n, s2) -> s == s2" ] in
  let inst = Chase.Instance.create () in
  ignore (Chase.Instance.add inst (fact "A" [ str "e1"; int 1 ]));
  ignore (Chase.Instance.add inst (fact "A" [ str "e1"; int 2 ]));
  match Chase.chase deps inst with
  | Ok _ -> Alcotest.fail "expected the chase to fail on a constant clash"
  | Error m ->
    Alcotest.(check bool)
      (Printf.sprintf "error names the EGD (got %S)" m)
      true (contains m "fd")

let test_chase_max_rounds () =
  (* The wa1/wa2 ⁎-cycle really does cascade: the chase must hit the
     round limit rather than loop forever. *)
  let deps = parse_all [ "wa1: A(x, y) -> B(x, z)"; "wa2: B(x, y) -> A(y, w)" ] in
  let inst = Chase.Instance.create () in
  ignore (Chase.Instance.add inst (fact "A" [ str "a"; int 1 ]));
  match Chase.chase ~max_rounds:5 deps inst with
  | Ok _ -> Alcotest.fail "expected the round limit to trip"
  | Error m ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions rounds (got %S)" m)
      true (contains m "round")

let test_load_database () =
  let db = Db.create () in
  let must = function Ok r -> r | Error e -> failwith (Db.error_to_string e) in
  ignore
    (must
       (Db.exec db "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)"));
  List.iter
    (fun (n, s) ->
      ignore
        (must
           (Db.exec db "INSERT INTO employees VALUES ($n, $s)"
              ~params:[ ("n", Value.Str n); ("s", Value.Int s) ])))
    [ ("e1", 1000); ("e2", 1100) ];
  let inst = Chase.Instance.create () in
  (match
     Chase.Instance.load_database inst
       ~base_of_table:(function "employees" -> Some "Salary1" | _ -> None)
       db
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "load_database failed: %s" m);
  Alcotest.(check (list string)) "value-last facts, rows in order"
    [ "Salary1(\"e1\", 1000)"; "Salary1(\"e2\", 1100)" ]
    (fact_strings inst)

(* --- compiling to CM rules --------------------------------------------- *)

let to_rules_ok deps =
  match Chase.to_rules deps with
  | Ok rs -> rs
  | Error m -> Alcotest.failf "to_rules failed: %s" m

let test_to_rules_copy () =
  let rules = to_rules_ok (parse_all [ "prop: Salary1(n, s) -> Salary2(n, s)" ]) in
  Alcotest.(check (list string)) "compiles to the §4.2 propagation rule"
    [ "prop: N(Salary1(n), s) ->[5] WR(Salary2(n), s)" ]
    (List.map Rule.to_string rules)

let test_to_rules_join_condition () =
  let rules =
    to_rules_ok (parse_all [ "j: A(n, s) && B(n, t) -> C(n, s)" ])
  in
  let s = Rule.to_string (List.hd rules) in
  Alcotest.(check bool)
    (Printf.sprintf "join atom becomes an LHS condition (got %S)" s)
    true
    (contains s "B(n) == t" && contains s "WR(C(n), s)")

let test_to_rules_existential_value () =
  let rules = to_rules_ok (parse_all [ "m: A(n, s) -> D(n, z)" ]) in
  let s = Rule.to_string (List.hd rules) in
  Alcotest.(check bool)
    (Printf.sprintf "create-if-absent guard on the write (got %S)" s)
    true
    (contains s "!(E(D(n)))" && contains s "null")

let test_to_rules_refusals () =
  let expect_error deps needle =
    match Chase.to_rules (parse_all deps) with
    | Ok _ -> Alcotest.failf "expected to_rules to refuse %s" (List.hd deps)
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "refusal mentions %S (got %S)" needle m)
        true (contains m needle)
  in
  expect_error [ "fd: A(n, s) && A(n, s2) -> s == s2" ] "EGD";
  expect_error
    [ "wa1: A(x, y) -> B(x, z)"; "wa2: B(x, y) -> A(y, w)" ]
    "weakly acyclic";
  expect_error [ "p: A(n, s) -> B(z, s)" ] "existential variable z";
  expect_error [ "u: A(n, s) && B(m, t) -> C(n, s)" ] "join parameter m"

(* --- differential: chase repairs ≡ hand-written repairs ---------------- *)

let test_differential_instance_level () =
  (* The chase over a stale payroll instance inserts exactly the tuples
     the hand-written prop rule (N(Salary1(n), b) → WR(Salary2(n), b))
     would write: one Salary2 fact per employee whose copy is missing. *)
  let program = parse_all [ "copy_dep: Salary1(n, s) -> Salary2(n, s)" ] in
  let inst = Chase.Instance.create () in
  let salaries = [ ("e1", 1000); ("e2", 1100); ("e3", 1200) ] in
  List.iter
    (fun (n, s) -> ignore (Chase.Instance.add inst (fact "Salary1" [ str n; int s ])))
    salaries;
  (* only e1's copy is fresh *)
  ignore (Chase.Instance.add inst (fact "Salary2" [ str "e1"; int 1000 ]));
  let o = chase_ok program inst in
  let hand_written =
    (* what the RHS WR(Salary2(n), b) writes for each un-copied trigger *)
    [ "insert Salary2(\"e2\", 1100)  (by copy_dep)";
      "insert Salary2(\"e3\", 1200)  (by copy_dep)" ]
  in
  Alcotest.(check (list string)) "chase repairs = hand-written writes"
    hand_written
    (List.map Chase.repair_to_string o.Chase.repairs)

let test_differential_end_to_end () =
  (* Run the payroll workload twice from the same seed and update
     schedule: once under the hand-written propagation strategy, once
     under the rule compiled from the copy dependency.  Final salaries
     and the full event trace must agree byte for byte. *)
  let updates = [ (10.0, "e1", 2000); (30.0, "e2", 2500); (55.0, "e1", 2600) ] in
  let run install =
    let p = Payroll.create ~config:(Sys_.Config.seeded 9) ~employees:3 () in
    install p;
    List.iter
      (fun (at, emp, salary) -> Payroll.schedule_update p ~at ~emp ~salary)
      updates;
    Sys_.run p.Payroll.system ~until:200.0;
    let salaries =
      List.concat_map
        (fun emp ->
          [
            Value.to_string (Payroll.salary_at p `A emp);
            Value.to_string (Payroll.salary_at p `B emp);
          ])
        p.Payroll.employees
    in
    (salaries, Trace.to_string (Sys_.trace p.Payroll.system))
  in
  let hand = run (fun p -> Payroll.install_propagation p) in
  let compiled =
    run (fun p ->
        let rules =
          to_rules_ok (parse_all [ "prop: Salary1(n, s) -> Salary2(n, s)" ])
        in
        Sys_.install p.Payroll.system
          {
            Strategy.strategy_name = "chase-compiled";
            description = "rules compiled from the copy dependency";
            rules;
            aux_init = [];
          })
  in
  Alcotest.(check (list string)) "final salaries agree" (fst hand) (fst compiled);
  Alcotest.(check string) "traces byte-identical" (snd hand) (snd compiled);
  Alcotest.(check bool) "the runs actually propagated" true
    (List.mem "2600" (fst hand))

let () =
  Alcotest.run "chase"
    [
      ( "parsing",
        [
          Alcotest.test_case "tgd roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "default label" `Quick test_parse_default_label;
          Alcotest.test_case "egd" `Quick test_parse_egd;
          Alcotest.test_case "existential vars" `Quick test_parse_existential;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "weak acyclicity",
        [
          Alcotest.test_case "boundary: off-cycle star edge passes" `Quick
            test_weakly_acyclic_boundary;
          Alcotest.test_case "star cycle detected" `Quick
            test_star_cycle_detected;
          Alcotest.test_case "egd/tgd interaction cycle" `Quick
            test_interaction_cycle;
        ] );
      ( "chase",
        [
          Alcotest.test_case "repairs the missing copy" `Quick
            test_chase_repairs_missing_copy;
          Alcotest.test_case "deterministic" `Quick test_chase_deterministic;
          Alcotest.test_case "minimal fixpoint" `Quick
            test_chase_minimal_fixpoint;
          Alcotest.test_case "existential null" `Quick
            test_chase_existential_null;
          Alcotest.test_case "egd merges a tgd null" `Quick
            test_egd_merges_tgd_null;
          Alcotest.test_case "constant clash fails" `Quick
            test_egd_constant_clash_fails;
          Alcotest.test_case "round limit trips on a cascade" `Quick
            test_chase_max_rounds;
          Alcotest.test_case "load from a database" `Quick test_load_database;
        ] );
      ( "to_rules",
        [
          Alcotest.test_case "copy dependency" `Quick test_to_rules_copy;
          Alcotest.test_case "join condition" `Quick
            test_to_rules_join_condition;
          Alcotest.test_case "existential value" `Quick
            test_to_rules_existential_value;
          Alcotest.test_case "refusals" `Quick test_to_rules_refusals;
        ] );
      ( "differential",
        [
          Alcotest.test_case "instance level" `Quick
            test_differential_instance_level;
          Alcotest.test_case "end to end on payroll" `Quick
            test_differential_end_to_end;
        ] );
    ]
