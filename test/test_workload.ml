(* Tests of the scenario builders: payroll, demarcation bank, banking day,
   and the four-source Stanford federation. *)

open Cm_rule
module Sys_ = Cm_core.System
module Guarantee = Cm_core.Guarantee
module Strategy = Cm_core.Strategy
open Cm_workload

let value = Alcotest.testable Value.pp Value.equal

let holds name (r : Guarantee.report) =
  Alcotest.(check bool)
    (name ^ ": " ^ String.concat "; " r.Guarantee.counterexamples)
    true r.Guarantee.holds

(* ---- gen ---- *)

let gen_poisson_counts () =
  let sim = Cm_sim.Sim.create ~seed:1 () in
  let rng = Cm_util.Prng.create ~seed:2 in
  let count = ref 0 in
  Gen.poisson sim ~rng ~mean_interarrival:1.0 ~until:1000.0 (fun () -> incr count);
  Cm_sim.Sim.run sim;
  (* Poisson with mean 1 over 1000 s: expect ~1000 events. *)
  Alcotest.(check bool)
    (Printf.sprintf "count plausible (%d)" !count)
    true
    (!count > 800 && !count < 1200)

let gen_fixed_counts () =
  let sim = Cm_sim.Sim.create ~seed:1 () in
  let count = ref 0 in
  Gen.every_fixed sim ~period:10.0 ~until:100.0 (fun () -> incr count);
  Cm_sim.Sim.run ~until:200.0 sim;
  Alcotest.(check int) "10 ticks" 10 !count

let gen_random_walk () =
  let rng = Cm_util.Prng.create ~seed:3 in
  for _ = 1 to 100 do
    let next = Gen.random_walk rng ~current:100 ~step:5 in
    Alcotest.(check bool) "moved within step" true
      (next <> 100 && abs (next - 100) <= 5)
  done

(* Open-loop population: arrivals come only from populated sites, in
   proportion to population, and a re-run at the same seeds reproduces
   the exact same draw sequence. *)
let readers_open_loop () =
  let run () =
    let sim = Cm_sim.Sim.create ~seed:4 () in
    let rng = Cm_util.Prng.create ~seed:5 in
    let counts = Hashtbl.create 4 in
    Readers.open_loop sim ~rng
      ~clients:[ ("a", 9_000); ("b", 1_000); ("c", 0) ]
      ~rate_per_client:0.001 ~until:1000.0 (fun ~site ->
        Hashtbl.replace counts site
          (1 + Option.value (Hashtbl.find_opt counts site) ~default:0));
    Cm_sim.Sim.run sim;
    counts
  in
  let counts = run () in
  let n site = Option.value (Hashtbl.find_opt counts site) ~default:0 in
  (* 10^4 clients at 10^-3 reads/s over 10^3 s: ~10^4 arrivals. *)
  let total = n "a" + n "b" in
  Alcotest.(check bool)
    (Printf.sprintf "total plausible (%d)" total)
    true
    (total > 8_000 && total < 12_000);
  Alcotest.(check int) "empty population never drawn" 0 (n "c");
  Alcotest.(check bool)
    (Printf.sprintf "draws follow population (a=%d b=%d)" (n "a") (n "b"))
    true
    (n "a" > 5 * n "b");
  let counts' = run () in
  Alcotest.(check int) "deterministic (a)" (n "a")
    (Option.value (Hashtbl.find_opt counts' "a") ~default:0);
  Alcotest.(check int) "deterministic (b)" (n "b")
    (Option.value (Hashtbl.find_opt counts' "b") ~default:0)

let readers_open_loop_rejects () =
  let sim = Cm_sim.Sim.create ~seed:4 () in
  let rng = Cm_util.Prng.create ~seed:5 in
  let raises f =
    match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty population" true
    (raises (fun () ->
         Readers.open_loop sim ~rng ~clients:[ ("a", 0) ] ~rate_per_client:1.0
           ~until:1.0 (fun ~site:_ -> ())));
  Alcotest.(check bool) "non-positive rate" true
    (raises (fun () ->
         Readers.open_loop sim ~rng ~clients:[ ("a", 1) ] ~rate_per_client:0.0
           ~until:1.0 (fun ~site:_ -> ())));
  Alcotest.(check bool) "negative rate" true
    (raises (fun () ->
         Readers.open_loop sim ~rng ~clients:[ ("a", 1) ] ~rate_per_client:(-2.0)
           ~until:1.0 (fun ~site:_ -> ())));
  (* NaN <= 0.0 is false, so a bare sign check would let NaN through
     into the interarrival divide and schedule at time NaN forever. *)
  Alcotest.(check bool) "NaN rate" true
    (raises (fun () ->
         Readers.open_loop sim ~rng ~clients:[ ("a", 1) ]
           ~rate_per_client:Float.nan ~until:1.0 (fun ~site:_ -> ())));
  Alcotest.(check bool) "infinite rate" true
    (raises (fun () ->
         Readers.open_loop sim ~rng ~clients:[ ("a", 1) ]
           ~rate_per_client:Float.infinity ~until:1.0 (fun ~site:_ -> ())));
  Alcotest.(check bool) "empty client list" true
    (raises (fun () ->
         Readers.open_loop sim ~rng ~clients:[] ~rate_per_client:1.0 ~until:1.0
           (fun ~site:_ -> ())));
  Alcotest.(check bool) "negative client count" true
    (raises (fun () ->
         Readers.open_loop sim ~rng
           ~clients:[ ("a", 3); ("b", -1) ]
           ~rate_per_client:1.0 ~until:1.0 (fun ~site:_ -> ())));
  (* Several sites, all empty — distinct from the empty-list case. *)
  Alcotest.(check bool) "all-zero population" true
    (raises (fun () ->
         Readers.open_loop sim ~rng
           ~clients:[ ("a", 0); ("b", 0) ]
           ~rate_per_client:1.0 ~until:1.0 (fun ~site:_ -> ())))

(* ---- payroll ---- *)

let payroll_propagation () =
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 5) ~employees:5 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
  Sys_.run p.Payroll.system ~until:600.0;
  (* All salaries converged. *)
  List.iter
    (fun emp ->
      Alcotest.check value ("converged " ^ emp)
        (Payroll.salary_at p `A emp)
        (Payroll.salary_at p `B emp))
    p.Payroll.employees;
  (* All four guarantees hold for every employee. *)
  let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
  List.iter
    (fun emp ->
      List.iter
        (fun g ->
          holds
            (emp ^ " " ^ Guarantee.name g)
            (Guarantee.check ~horizon:600.0 ~ignore_after:500.0 tl g))
        (Payroll.guarantees p ~emp))
    p.Payroll.employees

let payroll_validity () =
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 6) ~employees:3 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:30.0 ~until:300.0;
  Sys_.run p.Payroll.system ~until:400.0;
  Alcotest.(check (list string)) "valid execution" []
    (List.map Validity.violation_to_string (Sys_.check_validity p.Payroll.system))

let payroll_validity_many_seeds () =
  (* Any seed must produce a valid execution: the engine's behaviour is
     the semantics, whatever the interleaving. *)
  List.iter
    (fun seed ->
      let p = Payroll.create ~config:(Cm_core.System.Config.seeded seed) ~employees:4 () in
      Payroll.install_propagation p;
      Payroll.random_updates p ~mean_interarrival:15.0 ~until:400.0;
      Sys_.run p.Payroll.system ~until:500.0;
      Alcotest.(check int)
        (Printf.sprintf "seed %d valid" seed)
        0
        (List.length (Sys_.check_validity p.Payroll.system)))
    [ 11; 22; 33; 44; 55; 66 ]

let payroll_polling_validity () =
  (* Polling traces are valid executions too: every P tick fires every
     polling rule, reads respond with the sampled value, and the
     forwarding chain keeps its provenance. *)
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 17) ~employees:2 ~mode:Payroll.Read_only () in
  Payroll.install_polling ~period:60.0 p;
  Payroll.random_updates p ~mean_interarrival:40.0 ~until:400.0;
  Sys_.run p.Payroll.system ~until:500.0;
  Alcotest.(check (list string)) "polling trace valid" []
    (List.map Validity.violation_to_string
       (Sys_.check_validity ~initial:p.Payroll.initial p.Payroll.system))

let payroll_conditional_validity () =
  (* Conditional notify: filtered spontaneous writes create no obligation
     (the interface's LHS condition is false), delivered ones do. *)
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 18) ~employees:1 ~mode:(Payroll.Conditional 0.10) () in
  Payroll.install_propagation p;
  Payroll.schedule_update p ~at:10.0 ~emp:"e1" ~salary:1040;  (* filtered *)
  Payroll.schedule_update p ~at:40.0 ~emp:"e1" ~salary:2000;  (* notified *)
  Sys_.run p.Payroll.system ~until:200.0;
  Alcotest.(check (list string)) "conditional trace valid" []
    (List.map Validity.violation_to_string (Sys_.check_validity p.Payroll.system))

let payroll_cached_strategy_behaviour () =
  (* The Â§3.2 cache rule through the engine: forwarded once per distinct
     value, and the trace remains valid. *)
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 19) ~employees:1 () in
  Sys_.install p.Payroll.system
    (Strategy.propagate_cached ~delta:5.0 ~source:Payroll.source_pattern
       ~target:Payroll.target_pattern ~cache:"C1" ());
  Payroll.schedule_update p ~at:10.0 ~emp:"e1" ~salary:5000;
  Payroll.schedule_update p ~at:30.0 ~emp:"e1" ~salary:6000;
  Sys_.run p.Payroll.system ~until:100.0;
  Alcotest.check value "propagated" (Value.Int 6000) (Payroll.salary_at p `B "e1");
  Alcotest.(check int) "two forwards" 2
    (List.length (Trace.named (Sys_.trace p.Payroll.system) "WR"));
  Alcotest.(check (list string)) "cached trace valid" []
    (List.map Validity.violation_to_string (Sys_.check_validity p.Payroll.system))

let bank_trace_validity () =
  (* The demarcation rounds (custom events, binding guards, limit writes)
     also form a valid execution. *)
  let b = Bank.create ~config:(Cm_core.System.Config.seeded 20) ~policy:Cm_core.Demarcation.Conservative () in
  let sim = Sys_.sim b.Bank.system in
  Cm_sim.Sim.schedule_at sim 1.0 (fun () -> ignore (Bank.try_set_x b 30));
  Cm_sim.Sim.schedule_at sim 5.0 (fun () -> ignore (Bank.try_set_x b 80));
  Cm_sim.Sim.schedule_at sim 50.0 (fun () -> ignore (Bank.try_set_x b 80));
  Sys_.run b.Bank.system ~until:200.0;
  Alcotest.(check (list string)) "demarcation trace valid" []
    (List.map Validity.violation_to_string
       (Sys_.check_validity ~initial:(Bank.initial b) b.Bank.system))

let payroll_polling_leads_fails () =
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 7) ~employees:2 ~mode:Payroll.Read_only () in
  Payroll.install_polling ~period:60.0 p;
  (* Burst of updates inside one interval. *)
  Payroll.schedule_update p ~at:70.0 ~emp:"e1" ~salary:1111;
  Payroll.schedule_update p ~at:75.0 ~emp:"e1" ~salary:2222;
  Payroll.schedule_update p ~at:80.0 ~emp:"e1" ~salary:3333;
  Sys_.run p.Payroll.system ~until:500.0;
  let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
  let pair =
    {
      Guarantee.leader = Payroll.source_item "e1";
      follower = Payroll.target_item "e1";
    }
  in
  let leads =
    Guarantee.check ~horizon:500.0 ~ignore_after:400.0 tl (Guarantee.Leads pair)
  in
  Alcotest.(check bool) "leads fails" false leads.Guarantee.holds;
  holds "follows" (Guarantee.check ~horizon:500.0 tl (Guarantee.Follows pair));
  Alcotest.check value "last value arrived" (Value.Int 3333) (Payroll.salary_at p `B "e1")

let payroll_conditional_notify_filters () =
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 8) ~employees:1 ~mode:(Payroll.Conditional 0.10) () in
  Payroll.install_propagation p;
  (* +5% change: filtered inside the source; +50%: notified. *)
  Payroll.schedule_update p ~at:10.0 ~emp:"e1" ~salary:1050;
  Sys_.run p.Payroll.system ~until:50.0;
  Alcotest.check value "small change not propagated" (Value.Int 1000)
    (Payroll.salary_at p `B "e1");
  Payroll.schedule_update p ~at:60.0 ~emp:"e1" ~salary:1575;
  Sys_.run p.Payroll.system ~until:120.0;
  Alcotest.check value "large change propagated" (Value.Int 1575)
    (Payroll.salary_at p `B "e1")

(* ---- bank / demarcation ---- *)

let bank_local_and_requested () =
  let b = Bank.create ~config:(Cm_core.System.Config.seeded 9) ~policy:Cm_core.Demarcation.Conservative () in
  Alcotest.(check bool) "within limit applied" true (Bank.try_set_x b 30 = Bank.Applied);
  Alcotest.(check bool) "beyond limit requested" true
    (Bank.try_set_x b 90 = Bank.Requested);
  (* After the limit-change round, the retry succeeds. *)
  Sys_.run b.Bank.system ~until:60.0;
  Alcotest.(check bool) "retry applied" true (Bank.try_set_x b 90 = Bank.Applied);
  Alcotest.(check (float 1e-9)) "x" 90.0 (Bank.x_bal b);
  (* Invariant held throughout. *)
  let tl = Sys_.timeline ~initial:(Bank.initial b) b.Bank.system in
  holds "X <= Y always" (Guarantee.check ~horizon:60.0 tl Bank.always_leq_guarantee)

let bank_shrink_path () =
  let b = Bank.create ~config:(Cm_core.System.Config.seeded 10) ~policy:Cm_core.Demarcation.Conservative () in
  (* Y = 100, lower limit 50: dropping to 40 needs A to lower X's limit. *)
  Alcotest.(check bool) "requested" true (Bank.try_set_y b 40 = Bank.Requested);
  Sys_.run b.Bank.system ~until:60.0;
  (* X = 0 <= 40, so the grant goes through: Xlim = Ylim = 40. *)
  Alcotest.(check (float 1e-9)) "Xlim lowered" 40.0 (Bank.x_lim b);
  Alcotest.(check (float 1e-9)) "Ylim lowered" 40.0 (Bank.y_lim b);
  Alcotest.(check bool) "retry applied" true (Bank.try_set_y b 40 = Bank.Applied);
  let tl = Sys_.timeline ~initial:(Bank.initial b) b.Bank.system in
  holds "X <= Y always" (Guarantee.check ~horizon:60.0 tl Bank.always_leq_guarantee)

let bank_eager_vs_conservative_traffic () =
  (* Under eager grants, a climb of X needs fewer limit-change rounds. *)
  let climb policy =
    let b = Bank.create ~config:(Cm_core.System.Config.seeded 11) ~policy () in
    let requests = ref 0 in
    let sim = Sys_.sim b.Bank.system in
    let rec climb_to v =
      if v <= 95 then begin
        (match Bank.try_set_x b v with
         | Bank.Applied -> ()
         | Bank.Requested -> incr requests);
        (* Allow protocol rounds to finish, then continue. *)
        Cm_sim.Sim.schedule sim ~delay:20.0 (fun () ->
            (match Bank.try_set_x b v with Bank.Applied | Bank.Requested -> ());
            climb_to (v + 10))
      end
    in
    climb_to 10;
    Sys_.run b.Bank.system ~until:2000.0;
    !requests
  in
  let eager = climb Cm_core.Demarcation.Eager in
  let conservative = climb Cm_core.Demarcation.Conservative in
  Alcotest.(check bool)
    (Printf.sprintf "eager (%d) <= conservative (%d)" eager conservative)
    true (eager <= conservative);
  Alcotest.(check bool) "eager needs exactly one round" true (eager = 1)

let bank_stress_concurrent () =
  (* Both sides issue random operations concurrently for a long run, with
     blind retries; the invariant must hold at every instant and the
     trace must remain a valid execution. *)
  List.iter
    (fun seed ->
      let b = Bank.create ~config:(Cm_core.System.Config.seeded seed) ~policy:Cm_core.Demarcation.Eager () in
      let sim = Sys_.sim b.Bank.system in
      let rng = Cm_util.Prng.create ~seed:(seed * 13) in
      for i = 1 to 120 do
        let at = float_of_int i *. 7.0 in
        Cm_sim.Sim.schedule_at sim at (fun () ->
            if Cm_util.Prng.bool rng then
              ignore (Bank.try_set_x b (Cm_util.Prng.int rng 120))
            else ignore (Bank.try_set_y b (20 + Cm_util.Prng.int rng 120)));
        (* blind retry a little later, also random *)
        Cm_sim.Sim.schedule_at sim (at +. 3.0) (fun () ->
            if Cm_util.Prng.bool rng then
              ignore (Bank.try_set_x b (Cm_util.Prng.int rng 120)))
      done;
      Sys_.run b.Bank.system ~until:1000.0;
      let tl = Sys_.timeline ~initial:(Bank.initial b) b.Bank.system in
      let r = Guarantee.check ~horizon:1000.0 tl Bank.always_leq_guarantee in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: X <= Y always (%s)" seed
           (String.concat "; " r.Guarantee.counterexamples))
        true r.Guarantee.holds;
      Alcotest.(check (float 1e-9)) "limits consistent" (Bank.x_lim b) (Bank.y_lim b))
    [ 1; 2; 3; 4; 5 ]

(* ---- banking day ---- *)

let banking_day_periodic_guarantee () =
  let b = Banking_day.create ~config:(Cm_core.System.Config.seeded 12) ~accounts:3 () in
  Banking_day.run_days b ~days:3 ~updates_per_day:20;
  let tl = Sys_.timeline ~initial:b.Banking_day.initial b.Banking_day.system in
  List.iter
    (fun acct ->
      holds ("periodic " ^ acct)
        (Guarantee.check
           ~horizon:(3.0 *. Banking_day.day)
           tl (Banking_day.guarantee acct)))
    b.Banking_day.accounts;
  (* Balances agree at the end of the last night window. *)
  List.iter
    (fun acct ->
      Alcotest.check value ("converged " ^ acct)
        (Banking_day.balance_at b `Branch acct)
        (Banking_day.balance_at b `Head_office acct))
    b.Banking_day.accounts

(* ---- stanford federation ---- *)

let stanford_phone_chain () =
  let s = Stanford.create ~config:(Cm_core.System.Config.seeded 13) ~people:3 ~poll_period:60.0 () in
  let sim = Sys_.sim s.Stanford.system in
  (* An administrator changes p1's directory entry. *)
  Cm_sim.Sim.schedule_at sim 10.0 (fun () ->
      Stanford.admin_change_phone s ~person:"p1" ~phone:"555-9999");
  Sys_.run s.Stanford.system ~until:400.0;
  Alcotest.(check (option value)) "reached lookup" (Some (Value.Str "555-9999"))
    (Stanford.phone_in_lookup s ~person:"p1");
  Alcotest.(check (option value)) "reached groupdb" (Some (Value.Str "555-9999"))
    (Stanford.phone_in_groupdb s ~person:"p1");
  (* Only directory changes happened, so the whois -> lookup hop's
     guarantees hold as well. *)
  let tl = Sys_.timeline ~initial:s.Stanford.initial s.Stanford.system in
  List.iter
    (fun g -> holds (Guarantee.name g) (Guarantee.check ~horizon:400.0 tl g))
    (Stanford.directory_guarantees s ~person:"p1")

let stanford_lookup_to_groupdb () =
  let s = Stanford.create ~config:(Cm_core.System.Config.seeded 14) ~people:2 () in
  let sim = Sys_.sim s.Stanford.system in
  Cm_sim.Sim.schedule_at sim 10.0 (fun () ->
      Stanford.app_change_phone s ~person:"p2" ~phone:"555-1234");
  Sys_.run s.Stanford.system ~until:100.0;
  Alcotest.(check (option value)) "propagated" (Some (Value.Str "555-1234"))
    (Stanford.phone_in_groupdb s ~person:"p2");
  (* Guarantees on the lookup -> groupdb hop. *)
  let tl = Sys_.timeline ~initial:s.Stanford.initial s.Stanford.system in
  List.iter
    (fun g -> holds (Guarantee.name g) (Guarantee.check ~horizon:100.0 ~ignore_after:80.0 tl g))
    (Stanford.phone_guarantees s ~person:"p2")

let stanford_refint () =
  let s = Stanford.create ~config:(Cm_core.System.Config.seeded 15) ~people:2 () in
  let sim = Sys_.sim s.Stanford.system in
  Cm_sim.Sim.schedule_at sim 10.0 (fun () ->
      Stanford.publish_paper s ~key:"icde96" ~title:"Constraint Toolkit"
        ~authors:[ "chawathe"; "garcia-molina"; "widom" ]);
  Cm_sim.Sim.schedule_at sim 200.0 (fun () -> Stanford.withdraw_paper s ~key:"icde96");
  Sys_.run s.Stanford.system ~until:150.0;
  Alcotest.(check bool) "paper mirrored" true (Stanford.paper_in_groupdb s ~key:"icde96");
  Sys_.run s.Stanford.system ~until:400.0;
  Alcotest.(check bool) "paper removed" false (Stanford.paper_in_groupdb s ~key:"icde96");
  let tl = Sys_.timeline s.Stanford.system in
  holds "refint bounded"
    (Guarantee.check ~horizon:400.0 tl (Stanford.refint_guarantee ~key:"icde96" ~bound:60.0))

let () =
  Alcotest.run "cm_workload"
    [
      ( "gen",
        [
          Alcotest.test_case "poisson" `Quick gen_poisson_counts;
          Alcotest.test_case "fixed" `Quick gen_fixed_counts;
          Alcotest.test_case "random walk" `Quick gen_random_walk;
          Alcotest.test_case "open-loop readers" `Quick readers_open_loop;
          Alcotest.test_case "open-loop rejects" `Quick readers_open_loop_rejects;
        ] );
      ( "payroll",
        [
          Alcotest.test_case "propagation + guarantees" `Quick payroll_propagation;
          Alcotest.test_case "validity" `Quick payroll_validity;
          Alcotest.test_case "validity across seeds" `Quick payroll_validity_many_seeds;
          Alcotest.test_case "polling validity" `Quick payroll_polling_validity;
          Alcotest.test_case "conditional validity" `Quick payroll_conditional_validity;
          Alcotest.test_case "cached strategy" `Quick payroll_cached_strategy_behaviour;
          Alcotest.test_case "polling misses" `Quick payroll_polling_leads_fails;
          Alcotest.test_case "conditional notify" `Quick payroll_conditional_notify_filters;
        ] );
      ( "bank",
        [
          Alcotest.test_case "local + requested" `Quick bank_local_and_requested;
          Alcotest.test_case "shrink path" `Quick bank_shrink_path;
          Alcotest.test_case "eager vs conservative" `Quick
            bank_eager_vs_conservative_traffic;
          Alcotest.test_case "concurrent stress" `Quick bank_stress_concurrent;
          Alcotest.test_case "trace validity" `Quick bank_trace_validity;
        ] );
      ( "banking day",
        [ Alcotest.test_case "periodic guarantee" `Quick banking_day_periodic_guarantee ] );
      ( "stanford",
        [
          Alcotest.test_case "whois -> lookup -> groupdb" `Quick stanford_phone_chain;
          Alcotest.test_case "lookup -> groupdb guarantees" `Quick
            stanford_lookup_to_groupdb;
          Alcotest.test_case "referential integrity" `Quick stanford_refint;
        ] );
    ]
