(* Crash-recovery tests: the Journal/Recovery protocol (ISSUE 3) driven
   through crashes placed exactly where the protocol is weakest — across
   the retransmission give-up horizon, across an epoch bump, between a
   checkpoint and the work it summarizes — plus the randomized 50-crash
   chaos schedule from the acceptance criteria. *)

module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Msg = Cm_core.Msg
module Reliable = Cm_core.Reliable
module Journal = Cm_core.Journal
module Recovery = Cm_core.Recovery
module Shell = Cm_core.Shell
module Sys_ = Cm_core.System
module Obs = Cm_core.Obs
module Payroll = Cm_workload.Payroll
module Chaos = Cm_chaos.Chaos
open Cm_rule

let tag i = Msg.Reset_notice { origin_site = string_of_int i }

let untag = function
  | Msg.Reset_notice { origin_site } -> int_of_string origin_site
  | _ -> Alcotest.fail "unexpected message shape"

(* A crash window that outlasts the whole retransmission chain
   (~85 s with the default config), so the sender's give-up concludes
   while the peer is still down. *)
let payroll_long_crash ~durability () =
  let config =
    Sys_.Config.(
      seeded 17
      |> with_reliable Reliable.default_config
      |> with_durability durability)
  in
  let p = Payroll.create ~config ~employees:1 () in
  Payroll.install_propagation p;
  let logical = ref 0 and metric = ref 0 in
  List.iter
    (fun shell ->
      Shell.on_failure_notice shell (fun ~origin:_ -> function
        | Msg.Logical -> incr logical
        | Msg.Metric -> incr metric))
    [ p.Payroll.shell_a; p.Payroll.shell_b ];
  let sim = Sys_.sim p.Payroll.system in
  Sim.schedule_at sim 1.0 (fun () ->
      Sys_.crash_site p.Payroll.system ~site:Payroll.site_b);
  Payroll.schedule_update p ~at:2.0 ~emp:"e1" ~salary:4200;
  Sim.schedule_at sim 150.0 (fun () ->
      Sys_.restart_site p.Payroll.system ~site:Payroll.site_b);
  Sys_.run p.Payroll.system ~until:400.0;
  (p, !logical, !metric)

let crash_outlasting_chain_without_journal_loses () =
  let p, logical, _metric = payroll_long_crash ~durability:Journal.None () in
  let s =
    match Sys_.reliable p.Payroll.system with
    | Some r -> Reliable.stats r
    | None -> Alcotest.fail "reliable layer expected"
  in
  Alcotest.(check bool) "chain exhausted" true (s.Reliable.give_ups >= 1);
  Alcotest.(check int) "abandoned, not pending" 0
    (match Sys_.reliable p.Payroll.system with
     | Some r -> Reliable.pending r
     | None -> 0);
  Alcotest.(check bool) "suspicion surfaced as a logical failure" true
    (logical >= 1);
  Alcotest.(check bool) "the update never reached the target" true
    (Value.to_float (Payroll.salary_at p `B "e1") <> 4200.0)

let crash_outlasting_chain_with_journal_recovers () =
  let p, logical, metric =
    payroll_long_crash ~durability:Journal.Journal_with_checkpoint ()
  in
  let s =
    match Sys_.reliable p.Payroll.system with
    | Some r -> Reliable.stats r
    | None -> Alcotest.fail "reliable layer expected"
  in
  Alcotest.(check bool) "chain crossed the give-up threshold" true
    (s.Reliable.give_ups >= 1);
  Alcotest.(check (float 0.0)) "the durable frame arrived after restart" 4200.0
    (Value.to_float (Payroll.salary_at p `B "e1"));
  Alcotest.(check int) "exactly once" 1
    (Shell.fires_executed p.Payroll.shell_b);
  Alcotest.(check int) "crash stayed metric" 0 logical;
  Alcotest.(check bool) "restart broadcast a metric notice" true (metric >= 1)

(* -- epoch discipline at the transport level -- *)

let transport ?(seed = 3) ?(fifo = true) ?(jitter = 0.0) () =
  let sim = Sim.create ~seed () in
  let net =
    Net.create ~sim ~latency:{ Net.base = 0.05; jitter } ~fifo
      ~faults:Net.no_faults ()
  in
  let journals = Journal.create_registry () in
  let r = Reliable.create ~sim ~net ~journals () in
  (sim, net, r)

let restart_sender r ~next_mid =
  Reliable.reset_endpoint r ~site:"a";
  Reliable.restore_sender_state r ~from_site:"a" ~to_site:"b" ~epoch:1
    ~next_mid;
  Reliable.requeue_unacked r ~from_site:"a" ~to_site:"b"

let epoch_bump_rejects_previous_life () =
  (* 20 frames scattered over [0.05, 5.05] by jitter; the sender
     "restarts" at 0.01 and re-queues all of them under epoch 1.  Old
     and new incarnations' frames interleave on the wire: previous-life
     arrivals after the receiver adopts epoch 1 must be rejected, and
     every payload must still come through exactly once. *)
  let sim, _net, r = transport ~fifo:false ~jitter:5.0 () in
  let got = ref [] in
  Reliable.register r ~site:"b" (fun m -> got := untag m :: !got);
  Reliable.register r ~site:"a" (fun _ -> ());
  for i = 1 to 20 do
    Reliable.send r ~from_site:"a" ~to_site:"b" (tag i)
  done;
  Sim.schedule_at sim 0.01 (fun () -> restart_sender r ~next_mid:20);
  Sim.run sim ~until:300.0;
  let s = Reliable.stats r in
  Alcotest.(check bool) "previous-life frames were rejected" true
    (s.Reliable.epoch_rejections > 0);
  Alcotest.(check (list int)) "every payload exactly once"
    (List.init 20 (fun i -> i + 1))
    (List.sort compare !got);
  Alcotest.(check int) "transport drained" 0 (Reliable.pending r)

let duplicate_suppressed_across_epoch_bump () =
  (* The ack path b->a is partitioned, so the frame is delivered but
     never discharged; the sender restarts and re-queues it under epoch
     1 with the same mid.  The receiver must recognize the mid across
     the epoch bump and deliver nothing twice. *)
  let sim, net, r = transport () in
  let got = ref [] in
  Reliable.register r ~site:"b" (fun m -> got := untag m :: !got);
  Reliable.register r ~site:"a" (fun _ -> ());
  Net.partition net ~from_site:"b" ~to_site:"a" ~until:50.0;
  Reliable.send r ~from_site:"a" ~to_site:"b" (tag 1);
  Sim.schedule_at sim 10.0 (fun () -> restart_sender r ~next_mid:1);
  Sim.run sim ~until:300.0;
  let s = Reliable.stats r in
  Alcotest.(check (list int)) "delivered once" [ 1 ] !got;
  Alcotest.(check int) "stats agree" 1 s.Reliable.delivered;
  Alcotest.(check bool) "the cross-epoch copy was suppressed" true
    (s.Reliable.dup_suppressed >= 1);
  Alcotest.(check int) "transport drained" 0 (Reliable.pending r)

(* -- checkpoints -- *)

let checkpoint_between_firing_halves () =
  (* An update's firing has two durable halves: Fire_sent at the source,
     Delivered at the target.  A checkpoint taken between the delivery
     and the crash must summarize the receiver window consistently, so
     the post-restart replay neither re-fires nor loses the update. *)
  let config =
    Sys_.Config.(
      seeded 23
      |> with_reliable Reliable.default_config
      |> with_durability Journal.Journal_with_checkpoint)
  in
  let p = Payroll.create ~config ~employees:1 () in
  Payroll.install_propagation p;
  let logical = ref 0 in
  Shell.on_failure_notice p.Payroll.shell_b (fun ~origin:_ -> function
    | Msg.Logical -> incr logical
    | Msg.Metric -> ());
  let sim = Sys_.sim p.Payroll.system in
  let rec_mgr =
    match Sys_.recovery p.Payroll.system with
    | Some r -> r
    | None -> Alcotest.fail "recovery manager expected"
  in
  Payroll.schedule_update p ~at:1.0 ~emp:"e1" ~salary:7777;
  (* Notify latency is 1 s and wire latency ~50 ms: the Fire is
     delivered at ~2.05.  Checkpoint at 2.1, crash at 2.15. *)
  Sim.schedule_at sim 2.1 (fun () ->
      Recovery.checkpoint_now rec_mgr ~site:Payroll.site_a;
      Recovery.checkpoint_now rec_mgr ~site:Payroll.site_b);
  Sim.schedule_at sim 2.15 (fun () ->
      Sys_.crash_site p.Payroll.system ~site:Payroll.site_b);
  Sim.schedule_at sim 30.0 (fun () ->
      Sys_.restart_site p.Payroll.system ~site:Payroll.site_b);
  Sys_.run p.Payroll.system ~until:100.0;
  Alcotest.(check (float 0.0)) "the update survived" 7777.0
    (Value.to_float (Payroll.salary_at p `B "e1"));
  Alcotest.(check int) "fired exactly once" 1
    (Shell.fires_executed p.Payroll.shell_b);
  Alcotest.(check int) "no logical failure" 0 !logical

(* -- determinism -- *)

let crash_replay_run () =
  let obs = Obs.create () in
  let config =
    Sys_.Config.(
      seeded 29
      |> with_reliable Reliable.default_config
      |> with_durability Journal.Journal_with_checkpoint
      |> with_obs obs)
  in
  let p = Payroll.create ~config ~employees:3 () in
  Payroll.install_propagation p;
  let sim = Sys_.sim p.Payroll.system in
  List.iteri
    (fun i emp ->
      Payroll.schedule_update p ~at:(2.0 +. float_of_int i) ~emp
        ~salary:(5000 + (100 * i)))
    [ "e1"; "e2"; "e3"; "e1" ];
  Sim.schedule_at sim 3.5 (fun () ->
      Sys_.crash_site p.Payroll.system ~site:Payroll.site_b);
  Sim.schedule_at sim 120.0 (fun () ->
      Sys_.restart_site p.Payroll.system ~site:Payroll.site_b);
  Sys_.run p.Payroll.system ~until:300.0;
  let journal site =
    match Sys_.journal p.Payroll.system ~site with
    | Some j -> Journal.to_string j
    | None -> Alcotest.fail "journal expected"
  in
  ( journal Payroll.site_a ^ journal Payroll.site_b,
    Obs.snapshot_to_json obs )

let journal_replay_is_deterministic () =
  let j1, o1 = crash_replay_run () in
  let j2, o2 = crash_replay_run () in
  Alcotest.(check string) "journals byte-identical" j1 j2;
  Alcotest.(check string) "observability snapshots byte-identical" o1 o2

let chaos_report_is_deterministic () =
  let spec = { Chaos.default_spec with seed = 42; events = 120; crashes = 4 } in
  let r1 = Chaos.report_to_string (Chaos.run spec) in
  let r2 = Chaos.report_to_string (Chaos.run spec) in
  Alcotest.(check string) "chaos reports byte-identical" r1 r2

(* -- acceptance: the 50-crash schedule -- *)

let fifty_crash_chaos_schedule_is_lossless () =
  let spec =
    {
      Chaos.default_spec with
      seed = 1;
      events = 800;
      crashes = 50;
      durability = Journal.Journal_with_checkpoint;
    }
  in
  let r = Chaos.run spec in
  if not (Chaos.passed r) then
    Alcotest.failf "chaos verdict FAIL:\n%s" (Chaos.report_to_string r);
  Alcotest.(check int) "no lost firings" 0 r.Chaos.lost_firings;
  Alcotest.(check int) "no duplicated firings" 0 r.Chaos.duplicate_firings;
  Alcotest.(check int) "crashes were metric failures only" 0
    r.Chaos.logical_notices;
  Alcotest.(check bool) "crashes were visible" true (r.Chaos.metric_notices > 0);
  Alcotest.(check bool) "final state converged" true r.Chaos.final_state_matches

(* -- acceptance: self-healing across 50 seeded schedules -- *)

let fifty_seed_heal_schedules_self_heal () =
  for seed = 1 to 50 do
    let spec = { Chaos.default_spec with seed } in
    let r = Chaos.run_heal spec in
    if not (Chaos.heal_passed r) then
      Alcotest.failf "heal verdict FAIL (seed %d):\n%s" seed
        (Chaos.heal_report_to_string r);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no stale serves" seed)
      0 r.Chaos.h_stale_serves;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: bad rollout rolled back" seed)
      1 r.Chaos.h_rollbacks;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: rollback journaled" seed)
      true r.Chaos.h_rollback_journaled;
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: streamed verdicts match the fold" seed)
      [] r.Chaos.h_fold_mismatches;
    (* Spot-check byte determinism (every seed would double the sweep). *)
    if seed mod 10 = 0 then
      Alcotest.(check string)
        (Printf.sprintf "seed %d: deterministic report" seed)
        (Chaos.heal_report_to_string r)
        (Chaos.heal_report_to_string (Chaos.run_heal spec))
  done

(* -- acceptance: sharded chaos across 25 seeded schedules --

   The multi-domain fabric under crash schedules: every seed must pass
   its invariants (journaled recovery on the crashed site's shard, live
   sites elsewhere keep firing through the window) with a durable
   config, and the report must be byte-identical across repeated runs
   AND across shard counts — the report deliberately omits the shard
   count so one seed prints one report at every layout. *)

let twenty_five_seed_sharded_chaos () =
  for seed = 1 to 25 do
    let spec =
      {
        Chaos.default_shard_spec with
        ss_seed = seed;
        ss_events = 40;
        ss_crashes = 2;
        ss_durability = Journal.Journal_with_checkpoint;
      }
    in
    let r2 = Chaos.run_sharded { spec with ss_shards = 2 } in
    if not (Chaos.shard_passed r2) then
      Alcotest.failf "sharded chaos verdict FAIL (seed %d):\n%s" seed
        (Chaos.shard_report_to_string r2);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: both crashes recovered" seed)
      2 r2.Chaos.sr_restarts;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: journal replay on restart" seed)
      true
      (r2.Chaos.sr_replayed > 0);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: live shard fired during crash windows" seed)
      true
      (r2.Chaos.sr_live_during_crash > 0);
    (* Byte determinism across layouts on every seed; repeated-run
       determinism spot-checked (each extra run re-executes the world). *)
    Alcotest.(check string)
      (Printf.sprintf "seed %d: report identical at 1 and 2 shards" seed)
      (Chaos.shard_report_to_string (Chaos.run_sharded { spec with ss_shards = 1 }))
      (Chaos.shard_report_to_string r2);
    if seed mod 5 = 0 then begin
      Alcotest.(check string)
        (Printf.sprintf "seed %d: report identical at 3 shards" seed)
        (Chaos.shard_report_to_string r2)
        (Chaos.shard_report_to_string (Chaos.run_sharded { spec with ss_shards = 3 }));
      Alcotest.(check string)
        (Printf.sprintf "seed %d: repeated run byte-identical" seed)
        (Chaos.shard_report_to_string r2)
        (Chaos.shard_report_to_string (Chaos.run_sharded { spec with ss_shards = 2 }))
    end
  done

let () =
  Alcotest.run "cm_recovery"
    [
      ( "give-up horizon",
        [
          Alcotest.test_case "without journal the update is lost" `Quick
            crash_outlasting_chain_without_journal_loses;
          Alcotest.test_case "with journal the update survives" `Quick
            crash_outlasting_chain_with_journal_recovers;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "previous-life frames rejected" `Quick
            epoch_bump_rejects_previous_life;
          Alcotest.test_case "duplicate suppressed across bump" `Quick
            duplicate_suppressed_across_epoch_bump;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "between firing halves" `Quick
            checkpoint_between_firing_halves;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "journal replay" `Quick
            journal_replay_is_deterministic;
          Alcotest.test_case "chaos report" `Quick chaos_report_is_deterministic;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "50-crash payroll schedule" `Slow
            fifty_crash_chaos_schedule_is_lossless;
          Alcotest.test_case "50-seed heal schedules self-heal" `Slow
            fifty_seed_heal_schedules_self_heal;
          Alcotest.test_case "25-seed sharded chaos schedules" `Slow
            twenty_five_seed_sharded_chaos;
        ] );
    ]
