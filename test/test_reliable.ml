(* Tests for the reliable-delivery layer over a faulty network: acks,
   retransmission with backoff, duplicate suppression, order restoration,
   heartbeat failure detection — and the end-to-end behaviour of a full
   toolkit scenario under loss (paper §5 made executable). *)

module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Msg = Cm_core.Msg
module Reliable = Cm_core.Reliable
module Shell = Cm_core.Shell
module Sys_ = Cm_core.System
module Guarantee = Cm_core.Guarantee
module Health = Cm_sources.Health
module Tr_rel = Cm_core.Tr_relational
module Payroll = Cm_workload.Payroll
open Cm_rule

let tag i = Msg.Reset_notice { origin_site = string_of_int i }

let untag = function
  | Msg.Reset_notice { origin_site } -> int_of_string origin_site
  | _ -> Alcotest.fail "unexpected message shape"

let make ?(seed = 7) ?(latency = { Net.base = 0.05; jitter = 0.01 }) ?(fifo = true)
    ?(faults = Net.no_faults) ?(config = Reliable.default_config) () =
  let sim = Sim.create ~seed () in
  let net = Net.create ~sim ~latency ~fifo ~faults () in
  let r = Reliable.create ~sim ~net ~config () in
  (sim, net, r)

let exactly_once_in_order () =
  (* 30 % loss and 30 % duplication on every link; the application must
     still see every envelope exactly once, in send order. *)
  let sim, net, r =
    make ~faults:{ Net.drop_prob = 0.3; dup_prob = 0.3 } ()
  in
  let got = ref [] in
  Reliable.register r ~site:"b" (fun m -> got := untag m :: !got);
  Reliable.register r ~site:"a" (fun _ -> ());
  for i = 1 to 60 do
    Reliable.send r ~from_site:"a" ~to_site:"b" (tag i)
  done;
  Sim.run sim ~until:500.0;
  Alcotest.(check (list int)) "exactly once, in order"
    (List.init 60 (fun i -> i + 1))
    (List.rev !got);
  let s = Reliable.stats r in
  Alcotest.(check int) "all envelopes delivered" 60 s.Reliable.delivered;
  Alcotest.(check int) "none abandoned" 0 s.Reliable.give_ups;
  Alcotest.(check int) "nothing outstanding" 0 (Reliable.pending r);
  Alcotest.(check bool) "losses forced retransmissions" true
    (s.Reliable.retransmits > 0);
  Alcotest.(check bool) "duplicates were suppressed" true
    (s.Reliable.dup_suppressed > 0);
  Alcotest.(check bool) "network really misbehaved" true
    (Net.messages_dropped net > 0 && Net.messages_duplicated net > 0)

let restores_order_over_reordering_net () =
  (* The fifo:false ablation network reorders aggressively (see
     test_net's no-fifo test); sequence numbers must restore send order
     on top of it. *)
  let sim, _net, r =
    make ~latency:{ Net.base = 0.01; jitter = 5.0 } ~fifo:false ()
  in
  let got = ref [] in
  Reliable.register r ~site:"b" (fun m -> got := untag m :: !got);
  Reliable.register r ~site:"a" (fun _ -> ());
  for i = 1 to 50 do
    Reliable.send r ~from_site:"a" ~to_site:"b" (tag i)
  done;
  Sim.run sim ~until:500.0;
  Alcotest.(check (list int)) "order restored"
    (List.init 50 (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check bool) "out-of-order arrivals were buffered" true
    ((Reliable.stats r).Reliable.reordered > 0)

let backoff_through_partition () =
  (* A partition outlasting several retransmission timeouts: the envelope
     must survive it via backoff and arrive exactly once. *)
  let sim, net, r = make ~latency:{ Net.base = 0.05; jitter = 0.0 } () in
  let got = ref [] in
  Reliable.register r ~site:"b" (fun m -> got := untag m :: !got);
  Reliable.register r ~site:"a" (fun _ -> ());
  Net.partition net ~from_site:"a" ~to_site:"b" ~until:20.0;
  Reliable.send r ~from_site:"a" ~to_site:"b" (tag 1);
  Sim.run sim ~until:200.0;
  Alcotest.(check (list int)) "delivered exactly once" [ 1 ] !got;
  let s = Reliable.stats r in
  Alcotest.(check bool) "several retries burned" true (s.Reliable.retransmits >= 3);
  Alcotest.(check int) "never abandoned" 0 s.Reliable.give_ups

let give_up_suspects_peer () =
  (* A permanently dead endpoint: after max_retries the sender abandons
     the envelope and its failure detector raises Suspect_down locally. *)
  let config =
    { Reliable.default_config with retry_timeout = 0.5; max_retries = 2 }
  in
  let sim, net, r = make ~config () in
  let suspicions = ref [] in
  let a_saw = ref [] in
  Reliable.register r ~site:"a" (fun m -> a_saw := m :: !a_saw);
  Reliable.register r ~site:"b" (fun _ -> ());
  Reliable.on_suspect r (fun ~site ~suspect -> suspicions := (site, suspect) :: !suspicions);
  Net.crash_site net ~site:"b";
  Reliable.send r ~from_site:"a" ~to_site:"b" (tag 1);
  Sim.run sim ~until:100.0;
  let s = Reliable.stats r in
  Alcotest.(check int) "envelope abandoned" 1 s.Reliable.give_ups;
  Alcotest.(check int) "queue empty" 0 (Reliable.pending r);
  Alcotest.(check bool) "hook fired" true (List.mem ("a", "b") !suspicions);
  Alcotest.(check (list string)) "a suspects b" [ "b" ] (Reliable.suspects r ~site:"a");
  Alcotest.(check bool) "Suspect_down delivered locally" true
    (List.exists
       (function
         | Msg.Suspect_down { origin_site = "a"; suspect_site = "b" } -> true
         | _ -> false)
       !a_saw)

let heartbeat_detects_crash_and_recovery () =
  let config =
    {
      Reliable.default_config with
      heartbeat_period = 1.0;
      suspect_after = 3.5;
    }
  in
  let sim, net, r = make ~config () in
  let a_saw = ref [] in
  Reliable.register r ~site:"a" (fun m -> a_saw := (Sim.now sim, m) :: !a_saw);
  Reliable.register r ~site:"b" (fun _ -> ());
  Sim.schedule_at sim 10.0 (fun () -> Net.crash_site net ~site:"b");
  Sim.schedule_at sim 30.0 (fun () -> Net.restart_site net ~site:"b");
  Sim.schedule_at sim 20.0 (fun () ->
      Alcotest.(check (list string)) "suspected while down" [ "b" ]
        (Reliable.suspects r ~site:"a"));
  Sim.run sim ~until:50.0;
  Alcotest.(check (list string)) "cleared after restart" []
    (Reliable.suspects r ~site:"a");
  let suspect_at =
    List.find_map
      (function
        | t, Msg.Suspect_down { suspect_site = "b"; _ } -> Some t
        | _ -> None)
      (List.rev !a_saw)
  and reset_at =
    List.find_map
      (function
        | t, Msg.Reset_notice { origin_site = "b" } -> Some t
        | _ -> None)
      (List.rev !a_saw)
  in
  (match suspect_at, reset_at with
   | Some ts, Some tr ->
     Alcotest.(check bool) "suspected after silence threshold" true
       (ts > 10.0 && ts < 20.0);
     Alcotest.(check bool) "recovered after restart" true (tr > 30.0 && tr < 35.0)
   | _ -> Alcotest.fail "missing Suspect_down or Reset_notice at a");
  let s = Reliable.stats r in
  Alcotest.(check bool) "heartbeats flowed" true (s.Reliable.heartbeats_sent > 0);
  Alcotest.(check bool) "counters saw the episode" true
    (s.Reliable.suspects >= 1 && s.Reliable.recoveries >= 1)

(* ---- end-to-end: full toolkit scenario under loss ---- *)

let final_salaries p =
  List.map
    (fun emp ->
      (Payroll.salary_at p `A emp, Payroll.salary_at p `B emp))
    p.Payroll.employees

let drive config =
  let p = Payroll.create ~config ~employees:3 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
  Sys_.run p.Payroll.system ~until:700.0;
  p

let faulty_run_matches_clean_run () =
  (* The acceptance bar: 20 % loss + duplication on every link, and the
     scenario must end in exactly the state of the zero-fault run at the
     same seed, with nonzero, deterministic retransmit/ack counters. *)
  let clean = drive (Sys_.Config.seeded 42) in
  let faulty () =
    drive
      Sys_.Config.(
        seeded 42
        |> with_faults { Net.drop_prob = 0.2; dup_prob = 0.2 }
        |> with_reliable Reliable.default_config)
  in
  let f1 = faulty () and f2 = faulty () in
  Alcotest.(check bool) "final stores identical to zero-fault run" true
    (final_salaries clean = final_salaries f1);
  let stats p =
    match Sys_.reliable p.Payroll.system with
    | Some r -> Reliable.stats r
    | None -> Alcotest.fail "reliable layer missing"
  in
  let s1 = stats f1 in
  Alcotest.(check bool) "retransmits nonzero" true (s1.Reliable.retransmits > 0);
  Alcotest.(check bool) "acks nonzero" true (s1.Reliable.acks_sent > 0);
  Alcotest.(check int) "no envelope lost" s1.Reliable.data_sent s1.Reliable.delivered;
  Alcotest.(check int) "no envelope abandoned" 0 s1.Reliable.give_ups;
  Alcotest.(check bool) "counters deterministic across runs" true (s1 = stats f2);
  Alcotest.(check bool) "final state deterministic across runs" true
    (final_salaries f1 = final_salaries f2);
  let r1 =
    Sys_.check_guarantee ~initial:f1.Payroll.initial f1.Payroll.system
      (Guarantee.Follows
         {
           Guarantee.leader = Payroll.source_item "e1";
           follower = Payroll.target_item "e1";
         })
  in
  Alcotest.(check bool) "guarantee (1) survives the faults" true
    r1.Guarantee.holds

let silent_drop_is_silent () =
  (* §5's undetectable failure, end to end: a source whose notify
     interface silently drops must miss updates without raising and
     without producing any failure notice. *)
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 7) ~employees:1 () in
  Payroll.install_propagation p;
  let g =
    Sys_.declare_guarantee p.Payroll.system
      ~sites:[ Payroll.site_a; Payroll.site_b ]
      (Guarantee.Follows
         {
           Guarantee.leader = Payroll.source_item "e1";
           follower = Payroll.target_item "e1";
         })
  in
  let notices = ref 0 in
  Shell.on_failure_notice p.Payroll.shell_b (fun ~origin:_ _ -> incr notices);
  Sim.schedule_at (Sys_.sim p.Payroll.system) 50.0 (fun () ->
      Health.set (Tr_rel.health p.Payroll.tr_a) Health.Silent_drop);
  Payroll.schedule_update p ~at:60.0 ~emp:"e1" ~salary:7777;
  Sys_.run p.Payroll.system ~until:200.0;
  Alcotest.(check bool) "source took the write" true
    (Value.equal (Payroll.salary_at p `A "e1") (Value.Int 7777));
  Alcotest.(check bool) "target silently missed it" false
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 7777));
  Alcotest.(check int) "no failure notice" 0 !notices;
  Alcotest.(check bool) "guarantee still believed valid" true
    (Sys_.guarantee_valid g)

let network_silence_is_detected () =
  (* The same silent loss placed in the communication substrate instead:
     the heartbeat detector surfaces it as a Suspect_down failure notice
     and the declared guarantee is invalidated — the previously
     undetectable failure becomes detectable. *)
  let reliable =
    {
      Reliable.default_config with
      retry_timeout = 1.0;
      max_retries = 5;
      heartbeat_period = 5.0;
      suspect_after = 15.0;
    }
  in
  let p =
    Payroll.create
      ~config:Sys_.Config.(seeded 7 |> with_reliable reliable)
      ~employees:1 ()
  in
  Payroll.install_propagation p;
  let g =
    Sys_.declare_guarantee p.Payroll.system
      ~sites:[ Payroll.site_a; Payroll.site_b ]
      (Guarantee.Follows
         {
           Guarantee.leader = Payroll.source_item "e1";
           follower = Payroll.target_item "e1";
         })
  in
  let notices = ref [] in
  Shell.on_failure_notice p.Payroll.shell_a (fun ~origin kind ->
      notices := (origin, kind) :: !notices);
  Sim.schedule_at (Sys_.sim p.Payroll.system) 50.0 (fun () ->
      Net.crash_site (Sys_.net p.Payroll.system) ~site:Payroll.site_b);
  Payroll.schedule_update p ~at:60.0 ~emp:"e1" ~salary:7777;
  Sys_.run p.Payroll.system ~until:300.0;
  Alcotest.(check bool) "target missed the update" false
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 7777));
  Alcotest.(check bool) "detector raised a failure notice for ny" true
    (List.exists
       (fun (origin, kind) ->
         String.equal origin Payroll.site_b && kind = Msg.Logical)
       !notices);
  Alcotest.(check bool) "guarantee invalidated" false (Sys_.guarantee_valid g)

let reliable_layer_is_transparent_when_network_is_clean () =
  (* With a zero-fault network the reliable layer must not change what
     the application computes — only add acks underneath. *)
  let raw = drive (Sys_.Config.seeded 11) in
  let wrapped =
    drive Sys_.Config.(seeded 11 |> with_reliable Reliable.default_config)
  in
  Alcotest.(check bool) "same final stores" true
    (final_salaries raw = final_salaries wrapped);
  Alcotest.(check int) "no retransmissions needed" 0
    (match Sys_.reliable wrapped.Payroll.system with
     | Some r -> (Reliable.stats r).Reliable.retransmits
     | None -> -1);
  Alcotest.(check int) "validity still clean" 0
    (List.length (Sys_.check_validity ~initial:wrapped.Payroll.initial
                    wrapped.Payroll.system))

let () =
  Alcotest.run "cm_reliable"
    [
      ( "protocol",
        [
          Alcotest.test_case "exactly once, in order" `Quick exactly_once_in_order;
          Alcotest.test_case "restores order over no-fifo net" `Quick
            restores_order_over_reordering_net;
          Alcotest.test_case "backoff through partition" `Quick
            backoff_through_partition;
          Alcotest.test_case "give-up suspects peer" `Quick give_up_suspects_peer;
          Alcotest.test_case "heartbeat detect + recover" `Quick
            heartbeat_detects_crash_and_recovery;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "faulty run matches clean run" `Quick
            faulty_run_matches_clean_run;
          Alcotest.test_case "silent drop stays silent" `Quick silent_drop_is_silent;
          Alcotest.test_case "network silence is detected" `Quick
            network_silence_is_detected;
          Alcotest.test_case "transparent on clean network" `Quick
            reliable_layer_is_transparent_when_network_is_clean;
        ] );
    ]
