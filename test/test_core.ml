(* End-to-end tests of the constraint manager: the paper's §4.2 payroll
   scenario, the polling variant, the monitor strategy, failure handling,
   and the Demarcation Protocol. *)

open Cm_rule
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Strategy = Cm_core.Strategy
module Guarantee = Cm_core.Guarantee
module Interface = Cm_core.Interface
module Tr_rel = Cm_core.Tr_relational
module Db = Cm_relational.Database
module Health = Cm_sources.Health

let value = Alcotest.testable Value.pp Value.equal

(* ---- scenario builder: §4.2 payroll ---- *)

type payroll = {
  system : Sys_.t;
  shell_a : Shell.t;
  shell_b : Shell.t;
  tr_a : Tr_rel.t;
  tr_b : Tr_rel.t;
  db_a : Db.t;
  db_b : Db.t;
}

let locator item =
  match item.Item.base with
  | "Salary1" -> "sf"
  | "Salary2" -> "ny"
  | b when String.length b >= 2 && String.sub b 0 2 = "C_" -> "ny"
  | _ -> "ny"

let setup_db db =
  (match
     Db.exec db "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)"
   with
   | Ok _ -> ()
   | Error e -> failwith (Db.error_to_string e));
  List.iter
    (fun (id, sal) ->
      match
        Db.exec db
          (Printf.sprintf "INSERT INTO employees VALUES ('%s', %d)" id sal)
      with
      | Ok _ -> ()
      | Error e -> failwith (Db.error_to_string e))
    [ ("e1", 100); ("e2", 200); ("e3", 300) ]

let payroll_binding ~base ~notify =
  {
    Tr_rel.base;
    params = [ "n" ];
    read_sql = Some "SELECT salary FROM employees WHERE empid = $n";
    write_sql = Some "UPDATE employees SET salary = $b WHERE empid = $n";
    delete_sql = None;
    notify =
      (if notify then
         Some
           {
             Tr_rel.table = "employees";
             column = "salary";
             key_column = "empid";
             send = true;
             filter = None;
             filter_expr = None;
           }
       else
         (* Observe-only: ground-truth Ws events without a notify interface. *)
         Some
           {
             Tr_rel.table = "employees";
             column = "salary";
             key_column = "empid";
             send = false;
             filter = None;
             filter_expr = None;
           });
    no_spontaneous = false;
    periodic = None;
  }

let make_payroll ?(notify = true) ?(seed = 7) () =
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded seed) locator in
  let shell_a = Sys_.add_shell system ~site:"sf" in
  let shell_b = Sys_.add_shell system ~site:"ny" in
  let db_a = Db.create () in
  let db_b = Db.create () in
  setup_db db_a;
  setup_db db_b;
  let tr_a =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_a ~site:"sf"
      ~emit:(Shell.emitter_for shell_a ~site:"sf")
      ~report:(fun kind -> Shell.report_failure shell_a kind)
      [ payroll_binding ~base:"Salary1" ~notify ]
  in
  let tr_b =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_b ~site:"ny"
      ~emit:(Shell.emitter_for shell_b ~site:"ny")
      ~report:(fun kind -> Shell.report_failure shell_b kind)
      [ payroll_binding ~base:"Salary2" ~notify:false ]
  in
  Sys_.register_translator system ~shell:shell_a (Tr_rel.cmi tr_a);
  Sys_.register_translator system ~shell:shell_b (Tr_rel.cmi tr_b);
  { system; shell_a; shell_b; tr_a; tr_b; db_a; db_b }

let update_salary p emp sal ~at =
  Cm_sim.Sim.schedule_at (Sys_.sim p.system) at (fun () ->
      match
        Tr_rel.exec_app p.tr_a "UPDATE employees SET salary = $s WHERE empid = $n"
          ~params:[ ("s", Value.Int sal); ("n", Value.Str emp) ]
      with
      | Ok _ -> ()
      | Error e -> failwith (Db.error_to_string e))

let salary_in db emp =
  match
    Db.exec db "SELECT salary FROM employees WHERE empid = $n"
      ~params:[ ("n", Value.Str emp) ]
  with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> v
  | _ -> Alcotest.fail "salary lookup failed"

let initial_state =
  List.concat_map
    (fun (id, sal) ->
      [
        (Item.make "Salary1" ~params:[ Value.Str id ], Value.Int sal);
        (Item.make "Salary2" ~params:[ Value.Str id ], Value.Int sal);
      ])
    [ ("e1", 100); ("e2", 200); ("e3", 300) ]

(* ---- tests ---- *)

let propagation_end_to_end () =
  let p = make_payroll () in
  Sys_.install p.system
    (Strategy.propagate ~delta:5.0
       ~source:(Interface.family "Salary1" [ "n" ])
       ~target:(Interface.family "Salary2" [ "n" ])
       ());
  update_salary p "e1" 150 ~at:10.0;
  update_salary p "e2" 250 ~at:20.0;
  update_salary p "e1" 175 ~at:30.0;
  Sys_.run p.system ~until:100.0;
  Alcotest.check value "e1 propagated" (Value.Int 175) (salary_in p.db_b "e1");
  Alcotest.check value "e2 propagated" (Value.Int 250) (salary_in p.db_b "e2");
  Alcotest.check value "e3 untouched" (Value.Int 300) (salary_in p.db_b "e3")

let propagation_guarantees_hold () =
  let p = make_payroll () in
  Sys_.install p.system
    (Strategy.propagate ~delta:5.0
       ~source:(Interface.family "Salary1" [ "n" ])
       ~target:(Interface.family "Salary2" [ "n" ])
       ());
  List.iteri
    (fun i sal -> update_salary p "e1" sal ~at:(10.0 +. float_of_int (10 * i)))
    [ 110; 120; 130; 140 ];
  Sys_.run p.system ~until:200.0;
  let tl = Sys_.timeline ~initial:initial_state p.system in
  let source = Item.make "Salary1" ~params:[ Value.Str "e1" ] in
  let target = Item.make "Salary2" ~params:[ Value.Str "e1" ] in
  List.iter
    (fun g ->
      let r = Guarantee.check ~horizon:200.0 ~ignore_after:150.0 tl g in
      Alcotest.(check bool)
        (Guarantee.name g ^ " holds: " ^ String.concat "; " r.Guarantee.counterexamples)
        true r.Guarantee.holds)
    (Guarantee.for_copy_constraint ~source ~target ~kappa:10.0)

let propagation_trace_is_valid_execution () =
  let p = make_payroll () in
  Sys_.install p.system
    (Strategy.propagate ~delta:5.0
       ~source:(Interface.family "Salary1" [ "n" ])
       ~target:(Interface.family "Salary2" [ "n" ])
       ());
  update_salary p "e1" 150 ~at:10.0;
  update_salary p "e2" 250 ~at:20.0;
  Sys_.run p.system ~until:100.0;
  let violations = Sys_.check_validity p.system in
  Alcotest.(check (list string)) "valid execution" []
    (List.map Validity.violation_to_string violations)

let polling_misses_updates () =
  (* §4.2.3: with a read interface and polling, guarantee (2) fails when
     several updates land in one polling interval. *)
  let p = make_payroll ~notify:false () in
  let source = Expr.Item ("Salary1", [ Expr.Const (Value.Str "e1") ]) in
  let target = Expr.Item ("Salary2", [ Expr.Const (Value.Str "e1") ]) in
  Sys_.install p.system (Strategy.poll ~period:60.0 ~delta:5.0 ~source ~target ());
  (* Two updates within one 60 s polling interval: the first is missed. *)
  update_salary p "e1" 111 ~at:70.0;
  update_salary p "e1" 122 ~at:80.0;
  Sys_.run p.system ~until:400.0;
  let tl = Sys_.timeline ~initial:initial_state p.system in
  let src = Item.make "Salary1" ~params:[ Value.Str "e1" ] in
  let tgt = Item.make "Salary2" ~params:[ Value.Str "e1" ] in
  let pair = { Guarantee.leader = src; follower = tgt } in
  let follows = Guarantee.check ~horizon:400.0 tl (Guarantee.Follows pair) in
  Alcotest.(check bool) "(1) still holds" true follows.Guarantee.holds;
  let leads = Guarantee.check ~horizon:400.0 ~ignore_after:300.0 tl (Guarantee.Leads pair) in
  Alcotest.(check bool) "(2) fails under polling" false leads.Guarantee.holds;
  let strict = Guarantee.check ~horizon:400.0 tl (Guarantee.Strictly_follows pair) in
  Alcotest.(check bool) "(3) still holds" true strict.Guarantee.holds;
  Alcotest.check value "final value did arrive" (Value.Int 122) (salary_in p.db_b "e1")

let monitor_strategy_flag () =
  (* §6.3: two notify-only sources; the CM maintains Flag/Tb. *)
  let locator item =
    match item.Item.base with "Salary1" -> "sf" | "Salary2" -> "ny" | _ -> "app"
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 11) locator in
  let shell_a = Sys_.add_shell system ~site:"sf" in
  let shell_b = Sys_.add_shell system ~site:"ny" in
  let shell_app = Sys_.add_shell system ~site:"app" in
  let db_a = Db.create () and db_b = Db.create () in
  setup_db db_a;
  setup_db db_b;
  let notify_only base =
    {
      (payroll_binding ~base ~notify:true) with
      Tr_rel.write_sql = None;
      read_sql = Some "SELECT salary FROM employees WHERE empid = $n";
    }
  in
  let tr_a =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_a ~site:"sf"
      ~emit:(Shell.emitter_for shell_a ~site:"sf")
      ~report:(fun k -> Shell.report_failure shell_a k)
      [ notify_only "Salary1" ]
  in
  let tr_b =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_b ~site:"ny"
      ~emit:(Shell.emitter_for shell_b ~site:"ny")
      ~report:(fun k -> Shell.report_failure shell_b k)
      [ notify_only "Salary2" ]
  in
  Sys_.register_translator system ~shell:shell_a (Tr_rel.cmi tr_a);
  Sys_.register_translator system ~shell:shell_b (Tr_rel.cmi tr_b);
  (* Monitor the e1 salaries only. *)
  let x = Expr.Item ("Salary1", [ Expr.Const (Value.Str "e1") ]) in
  let y = Expr.Item ("Salary2", [ Expr.Const (Value.Str "e1") ]) in
  Sys_.install system (Strategy.monitor ~prefix:"m" ~delta:5.0 ~x ~y ());
  let aux = Strategy.monitor_items ~prefix:"m" () in
  (* Update X, making them unequal; then update Y to match. *)
  let app_update tr sal ~at =
    Cm_sim.Sim.schedule_at (Sys_.sim system) at (fun () ->
        match
          Tr_rel.exec_app tr "UPDATE employees SET salary = $s WHERE empid = 'e1'"
            ~params:[ ("s", Value.Int sal) ]
        with
        | Ok _ -> ()
        | Error e -> failwith (Db.error_to_string e))
  in
  app_update tr_a 500 ~at:10.0;
  app_update tr_b 500 ~at:50.0;
  Sys_.run system ~until:100.0;
  (* After both updates and notifications, caches are equal: Flag true. *)
  (match Shell.read_aux shell_app aux.Strategy.flag with
   | Some (Value.Bool b) -> Alcotest.(check bool) "flag true at end" true b
   | _ -> Alcotest.fail "flag missing");
  (match Shell.read_aux shell_app aux.Strategy.tb with
   | Some (Value.Float tb) ->
     Alcotest.(check bool) "Tb set after Y's catch-up" true (tb >= 50.0 && tb <= 60.0)
   | _ -> Alcotest.fail "Tb missing");
  (* The monitor guarantee itself holds on the trace. *)
  let tl = Sys_.timeline ~initial:initial_state system in
  let g =
    Guarantee.Monitor_window
      {
        flag = aux.Strategy.flag;
        tb = aux.Strategy.tb;
        x = Item.make "Salary1" ~params:[ Value.Str "e1" ];
        y = Item.make "Salary2" ~params:[ Value.Str "e1" ];
        kappa = 6.0;
      }
  in
  let r = Guarantee.check ~horizon:100.0 tl g in
  Alcotest.(check bool)
    ("monitor guarantee: " ^ String.concat "; " r.Guarantee.counterexamples)
    true r.Guarantee.holds

let failure_invalidation () =
  let p = make_payroll () in
  Sys_.install p.system
    (Strategy.propagate ~delta:5.0
       ~source:(Interface.family "Salary1" [ "n" ])
       ~target:(Interface.family "Salary2" [ "n" ])
       ());
  let src = Item.make "Salary1" ~params:[ Value.Str "e1" ] in
  let tgt = Item.make "Salary2" ~params:[ Value.Str "e1" ] in
  let pair = { Guarantee.leader = src; follower = tgt } in
  let g_nonmetric =
    Sys_.declare_guarantee p.system ~sites:[ "sf"; "ny" ] (Guarantee.Follows pair)
  in
  let g_metric =
    Sys_.declare_guarantee p.system ~sites:[ "sf"; "ny" ]
      (Guarantee.Metric_follows (pair, 10.0))
  in
  (* Degrade the target database: writes now take 60 s extra, missing the
     write interface's bound -> metric failure. *)
  Cm_sim.Sim.schedule_at (Sys_.sim p.system) 5.0 (fun () ->
      Health.set (Tr_rel.health p.tr_b) (Health.Degraded { extra_latency = 60.0 }));
  update_salary p "e1" 500 ~at:10.0;
  Sys_.run p.system ~until:200.0;
  Alcotest.(check bool) "metric guarantee invalidated" false
    (Sys_.guarantee_valid g_metric);
  Alcotest.(check bool) "non-metric guarantee survives" true
    (Sys_.guarantee_valid g_nonmetric);
  (* The write did eventually happen: non-metric semantics intact. *)
  Alcotest.check value "value arrived late" (Value.Int 500) (salary_in p.db_b "e1")

let logical_failure_invalidates_all () =
  let p = make_payroll () in
  Sys_.install p.system
    (Strategy.propagate ~delta:5.0
       ~source:(Interface.family "Salary1" [ "n" ])
       ~target:(Interface.family "Salary2" [ "n" ])
       ());
  let src = Item.make "Salary1" ~params:[ Value.Str "e1" ] in
  let tgt = Item.make "Salary2" ~params:[ Value.Str "e1" ] in
  let pair = { Guarantee.leader = src; follower = tgt } in
  let g1 = Sys_.declare_guarantee p.system ~sites:[ "sf"; "ny" ] (Guarantee.Follows pair) in
  let g4 =
    Sys_.declare_guarantee p.system ~sites:[ "sf"; "ny" ]
      (Guarantee.Metric_follows (pair, 10.0))
  in
  Cm_sim.Sim.schedule_at (Sys_.sim p.system) 5.0 (fun () ->
      Health.set (Tr_rel.health p.tr_b) Health.Down);
  update_salary p "e1" 500 ~at:10.0;
  Sys_.run p.system ~until:100.0;
  Alcotest.(check bool) "non-metric also invalidated" false (Sys_.guarantee_valid g1);
  Alcotest.(check bool) "metric invalidated" false (Sys_.guarantee_valid g4);
  (* Recovery + reset restores validity. *)
  Health.set (Tr_rel.health p.tr_b) Health.Healthy;
  Shell.broadcast_reset p.shell_b;
  Sys_.run p.system ~until:110.0;
  Alcotest.(check bool) "reset restores" true (Sys_.guarantee_valid g1)

(* ---- demarcation ---- *)

let demarcation_setup policy =
  let locator item =
    match item.Item.base with
    | "Xbal" | "Xlim" | "PendX" -> "a"
    | _ -> "b"
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 3) locator in
  let shell_a = Sys_.add_shell system ~site:"a" in
  let shell_b = Sys_.add_shell system ~site:"b" in
  let db_a = Db.create () and db_b = Db.create () in
  (match
     Db.exec db_a
       "CREATE TABLE acct (id TEXT PRIMARY KEY, bal INT NOT NULL, lim INT NOT NULL, CHECK (bal <= lim))"
   with
   | Ok _ -> ()
   | Error e -> failwith (Db.error_to_string e));
  (match Db.exec db_a "INSERT INTO acct VALUES ('x', 0, 50)" with
   | Ok _ -> ()
   | Error e -> failwith (Db.error_to_string e));
  (match
     Db.exec db_b
       "CREATE TABLE acct (id TEXT PRIMARY KEY, bal INT NOT NULL, lim INT NOT NULL, CHECK (bal >= lim))"
   with
   | Ok _ -> ()
   | Error e -> failwith (Db.error_to_string e));
  (match Db.exec db_b "INSERT INTO acct VALUES ('y', 100, 50)" with
   | Ok _ -> ()
   | Error e -> failwith (Db.error_to_string e));
  let binding base col =
    {
      Tr_rel.base;
      params = [];
      read_sql = Some (Printf.sprintf "SELECT %s FROM acct" col);
      write_sql = Some (Printf.sprintf "UPDATE acct SET %s = $b" col);
      delete_sql = None;
      notify =
        Some
          {
            Tr_rel.table = "acct";
            column = col;
            key_column = "id";
            send = false;
            filter = None;
            filter_expr = None;
          };
      no_spontaneous = false;
    periodic = None;
    }
  in
  let tr_a =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_a ~site:"a"
      ~emit:(Shell.emitter_for shell_a ~site:"a")
      ~report:(fun k -> Shell.report_failure shell_a k)
      [ binding "Xbal" "bal"; binding "Xlim" "lim" ]
  in
  let tr_b =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_b ~site:"b"
      ~emit:(Shell.emitter_for shell_b ~site:"b")
      ~report:(fun k -> Shell.report_failure shell_b k)
      [ binding "Ybal" "bal"; binding "Ylim" "lim" ]
  in
  Sys_.register_translator system ~shell:shell_a (Tr_rel.cmi tr_a);
  Sys_.register_translator system ~shell:shell_b (Tr_rel.cmi tr_b);
  let x = { Cm_core.Demarcation.bal = "Xbal"; lim = "Xlim"; pend = "PendX" } in
  let y = { Cm_core.Demarcation.bal = "Ybal"; lim = "Ylim"; pend = "PendY" } in
  Sys_.install system (Cm_core.Demarcation.rules ~policy ~delta:10.0 ~x ~y ());
  (system, shell_a, tr_a, tr_b, db_a, db_b, x, y)

let bal_of db =
  match Db.exec db "SELECT bal FROM acct" with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> Value.to_float v
  | _ -> Alcotest.fail "bal lookup failed"

let lim_of db =
  match Db.exec db "SELECT lim FROM acct" with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> Value.to_float v
  | _ -> Alcotest.fail "lim lookup failed"

let demarcation_local_op_within_limit () =
  let _system, _shell_a, tr_a, _tr_b, db_a, _db_b, _x, _y =
    demarcation_setup Cm_core.Demarcation.Conservative
  in
  (* Within the limit: accepted locally, no CM involvement. *)
  (match Tr_rel.exec_app tr_a "UPDATE acct SET bal = 40" with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Db.error_to_string e));
  Alcotest.(check (float 1e-9)) "bal updated" 40.0 (bal_of db_a)

let demarcation_local_op_beyond_limit_rejected () =
  let _system, _shell_a, tr_a, _tr_b, db_a, _db_b, _x, _y =
    demarcation_setup Cm_core.Demarcation.Conservative
  in
  (match Tr_rel.exec_app tr_a "UPDATE acct SET bal = 80" with
   | Ok _ -> Alcotest.fail "write beyond limit must be rejected"
   | Error (Db.Check_failed _) -> ()
   | Error e -> Alcotest.fail (Db.error_to_string e));
  Alcotest.(check (float 1e-9)) "bal unchanged" 0.0 (bal_of db_a)

let demarcation_limit_change_roundtrip () =
  let system, shell_a, tr_a, _tr_b, db_a, db_b, x, _y =
    demarcation_setup Cm_core.Demarcation.Conservative
  in
  (* Ask to raise X's limit to 80 (Y = 100 so it can be granted). *)
  Cm_sim.Sim.schedule_at (Sys_.sim system) 1.0 (fun () ->
      Cm_core.Demarcation.request_increase_x
        ~emit:(Shell.emitter_for shell_a ~site:"a")
        ~x ~wanted:(Value.Int 80));
  Sys_.run system ~until:50.0;
  Alcotest.(check (float 1e-9)) "Ylim raised first" 80.0 (lim_of db_b);
  Alcotest.(check (float 1e-9)) "Xlim raised" 80.0 (lim_of db_a);
  (* Now the local write succeeds. *)
  (match Tr_rel.exec_app tr_a "UPDATE acct SET bal = 80" with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Db.error_to_string e));
  Alcotest.(check (float 1e-9)) "bal raised" 80.0 (bal_of db_a);
  (* Constraint X <= Y holds throughout the trace. *)
  let tl = Sys_.timeline system
      ~initial:
        [
          (Item.make "Xbal", Value.Int 0);
          (Item.make "Ybal", Value.Int 100);
        ]
  in
  let g =
    Guarantee.Always_leq { smaller = Item.make "Xbal"; larger = Item.make "Ybal" }
  in
  let r = Guarantee.check ~horizon:60.0 tl g in
  Alcotest.(check bool)
    ("X <= Y always: " ^ String.concat "; " r.Guarantee.counterexamples)
    true r.Guarantee.holds

let demarcation_eager_grants_more () =
  let system, shell_a, _tr_a, _tr_b, db_a, db_b, x, _y =
    demarcation_setup Cm_core.Demarcation.Eager
  in
  Cm_sim.Sim.schedule_at (Sys_.sim system) 1.0 (fun () ->
      Cm_core.Demarcation.request_increase_x
        ~emit:(Shell.emitter_for shell_a ~site:"a")
        ~x ~wanted:(Value.Int 60));
  Sys_.run system ~until:50.0;
  (* Eager policy grants the full current slack: limits go to Y = 100. *)
  Alcotest.(check (float 1e-9)) "Ylim at eager max" 100.0 (lim_of db_b);
  Alcotest.(check (float 1e-9)) "Xlim at eager max" 100.0 (lim_of db_a)

let demarcation_denied_when_no_slack () =
  let system, shell_a, _tr_a, _tr_b, db_a, db_b, x, _y =
    demarcation_setup Cm_core.Demarcation.Conservative
  in
  (* Y = 100: asking for 150 must be denied; limits unchanged. *)
  Cm_sim.Sim.schedule_at (Sys_.sim system) 1.0 (fun () ->
      Cm_core.Demarcation.request_increase_x
        ~emit:(Shell.emitter_for shell_a ~site:"a")
        ~x ~wanted:(Value.Int 150));
  Sys_.run system ~until:50.0;
  Alcotest.(check (float 1e-9)) "Ylim unchanged" 50.0 (lim_of db_b);
  Alcotest.(check (float 1e-9)) "Xlim unchanged" 50.0 (lim_of db_a)

let () =
  Alcotest.run "cm_core"
    [
      ( "payroll (§4.2)",
        [
          Alcotest.test_case "propagation end to end" `Quick propagation_end_to_end;
          Alcotest.test_case "guarantees (1)-(4) hold" `Quick propagation_guarantees_hold;
          Alcotest.test_case "trace is a valid execution" `Quick
            propagation_trace_is_valid_execution;
          Alcotest.test_case "polling misses updates" `Quick polling_misses_updates;
        ] );
      ( "monitor (§6.3)",
        [ Alcotest.test_case "flag/tb maintained" `Quick monitor_strategy_flag ] );
      ( "failures (§5)",
        [
          Alcotest.test_case "metric failure" `Quick failure_invalidation;
          Alcotest.test_case "logical failure + reset" `Quick
            logical_failure_invalidates_all;
        ] );
      ( "demarcation (§6.1)",
        [
          Alcotest.test_case "local op within limit" `Quick
            demarcation_local_op_within_limit;
          Alcotest.test_case "local op beyond limit rejected" `Quick
            demarcation_local_op_beyond_limit_rejected;
          Alcotest.test_case "limit-change roundtrip" `Quick
            demarcation_limit_change_roundtrip;
          Alcotest.test_case "eager grants more" `Quick demarcation_eager_grants_more;
          Alcotest.test_case "denied when no slack" `Quick
            demarcation_denied_when_no_slack;
        ] );
    ]
