(* Differential tests for Cm_shard.Shard.Fabric.

   The sharded executor must be observationally equivalent to the
   sequential System it partitions: for any world (topology, rule
   program, workload) and any shard count, the canonical trace digest,
   the summed observability counters, and the end-state of every store
   must equal the unsharded oracle's.

   A seeded Prng drives a generator of random federations — 3..8 sites,
   a random cross-site notification chain per site (U at the source
   fires C at a random peer; C chains once more on some sites before
   settling as a local W), distinct per-link latencies so causally
   unrelated chains never collide on an instant — and random workloads
   of spontaneous U events.  Every world runs at shard counts 1, 2, 4
   and 7 (with a fresh random site→shard assignment per count) and each
   run is compared against the shards=1 oracle.  The zero-lookahead
   degenerate case (a cross-shard link with zero base latency) is
   pinned separately: it must serialize safely, not hang and not
   diverge. *)

open Cm_rule
module Fabric = Cm_shard.Shard.Fabric
module Config = Cm_core.System.Config
module Shell = Cm_core.Shell
module Strategy = Cm_core.Strategy
module Obs = Cm_core.Obs
module Prng = Cm_util.Prng

let site i = Printf.sprintf "s%d" i
let base i = Printf.sprintf "X%d" i

(* base "X<i>" -> site "s<i>"; anything else lives at s0. *)
let locator item =
  let b = item.Item.base in
  if String.length b > 1 && b.[0] = 'X' then
    match int_of_string_opt (String.sub b 1 (String.length b - 1)) with
    | Some i -> site i
    | None -> site 0
  else site 0

(* ---- world generation ---------------------------------------------- *)

type world = {
  m : int;  (* number of sites *)
  rules : Rule.t list;
  updates : (int * int * float) list;  (* site, value, time *)
  until : float;
}

(* One notification chain per site: U(X_i, v) fires C(X_{f i}, v); C
   settles locally as W, and on some sites also chains a second hop
   D(X_{g i}, v) which settles as W at its destination. *)
let gen_world rng =
  let m = 3 + Prng.int rng 6 in
  let buf = Buffer.create 256 in
  for i = 0 to m - 1 do
    let j = (i + 1 + Prng.int rng (m - 1)) mod m in
    Buffer.add_string buf
      (Printf.sprintf "u%d: U(%s, v) ->[5] C(%s, v)\n" i (base i) (base j));
    Buffer.add_string buf
      (Printf.sprintf "c%d: C(%s, v) ->[5] W(%s, v)\n" i (base i) (base i));
    if Prng.int rng 2 = 0 then begin
      let k = (i + 1 + Prng.int rng (m - 1)) mod m in
      Buffer.add_string buf
        (Printf.sprintf "d%d: C(%s, v) ->[5] D(%s, v)\n" i (base i) (base k));
      Buffer.add_string buf
        (Printf.sprintf "e%d: D(%s, v) ->[5] W(%s, v)\n" i (base i) (base i))
    end
  done;
  let n_updates = 4 + Prng.int rng 8 in
  let updates =
    List.init n_updates (fun idx ->
        let i = Prng.int rng m in
        let v = 1000 + (idx * 17) + i in
        let t = 0.5 +. (0.371 *. float_of_int idx) +. (0.0017 *. float_of_int i) in
        (i, v, t))
  in
  { m; rules = Parser.parse_rules (Buffer.contents buf); updates; until = 25.0 }

(* Distinct base latency per directed link (jitter-free: the worlds
   must not consume PRNG draws, so stream- and keyed-draw networks
   behave identically). *)
let link_latency m i j =
  { Cm_net.Net.base = 0.3 +. (0.0053 *. float_of_int ((i * m) + j)); jitter = 0.0 }

let build_fabric ~case ~shards ~assignment w =
  let config =
    Config.seeded (4242 + case) |> Config.with_shards shards
    |> Config.with_obs (Obs.create ())
  in
  let fab =
    Fabric.create ~config
      ~assign:(fun s ->
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some i when i < Array.length assignment -> assignment.(i)
        | _ -> 0)
      locator
  in
  for i = 0 to w.m - 1 do
    ignore (Fabric.add_shell fab ~site:(site i))
  done;
  for i = 0 to w.m - 1 do
    for j = 0 to w.m - 1 do
      if i <> j then
        Fabric.set_latency fab ~from_site:(site i) ~to_site:(site j)
          (link_latency w.m i j)
    done
  done;
  Fabric.install fab
    {
      Strategy.strategy_name = "diff";
      description = "differential chain world";
      rules = w.rules;
      aux_init = [];
    };
  List.iter
    (fun (i, v, t) ->
      let s = site i in
      let emit = Shell.emitter_for (Fabric.shell_for fab ~site:s) ~site:s in
      Fabric.at fab ~site:s t (fun () ->
          ignore
            (emit
               { Event.name = "U"; args = [ Event.Ai (Item.make (base i)); Event.Av (Value.Int v) ] }
               ~kind:Event.Spontaneous)))
    w.updates;
  fab

type observation = {
  digest : string;
  events : int;  (* trace length across shards *)
  fires_sent : int;
  fires_executed : int;
  shell_events : int;
  net_sent : int;
  end_state : (string * string) list;  (* item base, final value *)
}

let observe w fab =
  let end_state =
    List.init w.m (fun i ->
        let v =
          match Shell.read_aux (Fabric.shell_for fab ~site:(site i)) (Item.make (base i)) with
          | Some v -> Value.to_string v
          | None -> "<none>"
        in
        (base i, v))
  in
  {
    digest = Fabric.trace_digest fab;
    events = List.length (Fabric.merged_events fab);
    fires_sent = Fabric.counter_total fab "shell_fires_sent";
    fires_executed = Fabric.counter_total fab "shell_fires_executed";
    shell_events = Fabric.counter_total fab "shell_events";
    net_sent = Fabric.counter_total fab "net_sent";
    end_state;
  }

let check_equal ~case ~shards oracle got =
  let ctx fmt =
    Printf.ksprintf
      (fun what ->
        Alcotest.failf "case %d, shards %d: %s (oracle events %d, got %d)" case
          shards what oracle.events got.events)
      fmt
  in
  if not (String.equal oracle.digest got.digest) then ctx "trace digest diverged";
  if oracle.fires_sent <> got.fires_sent then
    ctx "fires_sent %d <> %d" oracle.fires_sent got.fires_sent;
  if oracle.fires_executed <> got.fires_executed then
    ctx "fires_executed %d <> %d" oracle.fires_executed got.fires_executed;
  if oracle.shell_events <> got.shell_events then
    ctx "shell_events %d <> %d" oracle.shell_events got.shell_events;
  if oracle.net_sent <> got.net_sent then
    ctx "net_sent %d <> %d" oracle.net_sent got.net_sent;
  List.iter2
    (fun (b, v) (b', v') ->
      if not (String.equal v v') then
        ctx "end state of %s: oracle %s, got %s" b v v';
      assert (String.equal b b'))
    oracle.end_state got.end_state

let shard_counts = [ 2; 4; 7 ]

let run_case case =
  let rng = Prng.create ~seed:(100_000 + case) in
  let w = gen_world rng in
  let oracle_fab =
    build_fabric ~case ~shards:1 ~assignment:(Array.make w.m 0) w
  in
  Fabric.run oracle_fab ~until:w.until;
  let oracle = observe w oracle_fab in
  List.iter
    (fun n ->
      let arng = Prng.create ~seed:(case * 31) in
      let assignment = Array.init w.m (fun _ -> Prng.int arng n) in
      let fab = build_fabric ~case ~shards:n ~assignment w in
      Fabric.run fab ~until:w.until;
      check_equal ~case ~shards:n oracle (observe w fab))
    shard_counts;
  oracle

let differential_cases () =
  let cases = 500 in
  let total_events = ref 0 in
  let total_fires = ref 0 in
  for case = 1 to cases do
    let oracle = run_case case in
    total_events := !total_events + oracle.events;
    total_fires := !total_fires + oracle.fires_sent
  done;
  (* 500 worlds x 4 shard counts = 2000 compared runs; the vacuity
     guards make sure the generator exercises real cross-site traffic. *)
  Alcotest.(check bool)
    (Printf.sprintf "worlds are not vacuous (%d events, %d fires)" !total_events
       !total_fires)
    true
    (!total_events >= cases * 10 && !total_fires >= cases * 4)

(* ---- degenerate and structural cases -------------------------------- *)

(* A zero-latency cross-shard link makes the conservative lookahead 0:
   the fabric must fall back to safe serialization — terminate, and
   agree with the sequential oracle — rather than hang or guess. *)
let zero_lookahead_serializes () =
  let w =
    {
      m = 3;
      rules =
        Parser.parse_rules
          "u0: U(X0, v) ->[5] C(X1, v)\n\
           c1: C(X1, v) ->[5] W(X1, v)\n\
           u1: U(X1, v) ->[5] C(X2, v)\n\
           c2: C(X2, v) ->[5] W(X2, v)";
      updates = [ (0, 7, 1.0); (1, 9, 2.0); (0, 11, 3.0) ];
      until = 10.0;
    }
  in
  let build shards assignment =
    let config = Config.seeded 77 |> Config.with_shards shards in
    let fab =
      Fabric.create ~config ~assign:(fun s -> assignment.(int_of_string (String.sub s 1 1))) locator
    in
    for i = 0 to w.m - 1 do
      ignore (Fabric.add_shell fab ~site:(site i))
    done;
    for i = 0 to w.m - 1 do
      for j = 0 to w.m - 1 do
        if i <> j then
          Fabric.set_latency fab ~from_site:(site i) ~to_site:(site j)
            { Cm_net.Net.base = 0.0; jitter = 0.0 }
      done
    done;
    Fabric.install fab
      {
        Strategy.strategy_name = "zero";
        description = "zero-latency chains";
        rules = w.rules;
        aux_init = [];
      };
    List.iter
      (fun (i, v, t) ->
        let s = site i in
        let emit = Shell.emitter_for (Fabric.shell_for fab ~site:s) ~site:s in
        Fabric.at fab ~site:s t (fun () ->
            ignore
              (emit
                 { Event.name = "U";
                   args = [ Event.Ai (Item.make (base i)); Event.Av (Value.Int v) ] }
                 ~kind:Event.Spontaneous)))
      w.updates;
    fab
  in
  let oracle = build 1 [| 0; 0; 0 |] in
  Fabric.run oracle ~until:w.until;
  let sharded = build 3 [| 0; 1; 2 |] in
  Alcotest.(check bool) "lookahead degenerates to zero" true
    (Fabric.lookahead sharded = 0.0);
  Fabric.run sharded ~until:w.until;
  Alcotest.(check string) "serialized run matches the oracle"
    (Fabric.trace_digest oracle) (Fabric.trace_digest sharded);
  Alcotest.(check bool) "cross-shard messages flowed" true
    (Fabric.messages_forwarded sharded > 0)

(* All sites on one shard of a multi-shard fabric: no pair crosses
   shards, the lookahead is unbounded, and the whole run is one window. *)
let empty_shard_unbounded_lookahead () =
  let rng = Prng.create ~seed:100_001 in
  let w = gen_world rng in
  let oracle_fab = build_fabric ~case:1 ~shards:1 ~assignment:(Array.make w.m 0) w in
  Fabric.run oracle_fab ~until:w.until;
  let fab = build_fabric ~case:1 ~shards:2 ~assignment:(Array.make w.m 0) w in
  Alcotest.(check bool) "lookahead unbounded" true (Fabric.lookahead fab = infinity);
  Fabric.run fab ~until:w.until;
  Alcotest.(check string) "one-window run matches the oracle"
    (Fabric.trace_digest oracle_fab) (Fabric.trace_digest fab);
  Alcotest.(check int) "nothing crossed shards" 0 (Fabric.messages_forwarded fab)

let monitor_rejected_under_shards () =
  let config = Config.seeded 1 |> Config.with_shards 2 |> Config.with_monitor true in
  match Fabric.create ~config ~assign:(fun _ -> 0) locator with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let repeated_runs_identical () =
  let rng = Prng.create ~seed:100_007 in
  let w = gen_world rng in
  let digest () =
    let arng = Prng.create ~seed:7 in
    let assignment = Array.init w.m (fun _ -> Prng.int arng 4) in
    let fab = build_fabric ~case:7 ~shards:4 ~assignment w in
    Fabric.run fab ~until:w.until;
    Fabric.trace_digest fab
  in
  Alcotest.(check string) "same seed, same shards, same digest" (digest ()) (digest ())

let () =
  Alcotest.run "shard"
    [
      ( "differential",
        [
          Alcotest.test_case
            "500 random worlds at shards {1,2,4,7}: digest/counters/state equal"
            `Quick differential_cases;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "zero lookahead serializes safely" `Quick
            zero_lookahead_serializes;
          Alcotest.test_case "empty shard, unbounded lookahead" `Quick
            empty_shard_unbounded_lookahead;
          Alcotest.test_case "monitor rejected under shards" `Quick
            monitor_rejected_under_shards;
          Alcotest.test_case "repeated sharded runs byte-identical" `Quick
            repeated_runs_identical;
        ] );
    ]
