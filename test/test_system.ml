(* Unit tests for System: guarantee status registry, strategy
   installation (aux data placement, timer registration), and failure /
   reset semantics across sites (§5). *)

open Cm_rule
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Strategy = Cm_core.Strategy
module Guarantee = Cm_core.Guarantee
module Msg = Cm_core.Msg

let value = Alcotest.testable Value.pp Value.equal

let locator item =
  match item.Item.base with "Xa" | "AuxA" -> "a" | _ -> "b"

let pair =
  { Guarantee.leader = Item.make "Xa"; follower = Item.make "Xb" }

let three_site_system () =
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 3) locator in
  let sa = Sys_.add_shell system ~site:"a" in
  let sb = Sys_.add_shell system ~site:"b" in
  (system, sa, sb)

(* ---- guarantee registry ---- *)

let metric_failure_hits_only_metric () =
  let system, sa, _sb = three_site_system () in
  let g1 = Sys_.declare_guarantee system ~sites:[ "a"; "b" ] (Guarantee.Follows pair) in
  let g4 =
    Sys_.declare_guarantee system ~sites:[ "a"; "b" ]
      (Guarantee.Metric_follows (pair, 5.0))
  in
  Shell.report_failure sa Msg.Metric;
  Sys_.run system ~until:1.0;
  Alcotest.(check bool) "(1) still valid" true (Sys_.guarantee_valid g1);
  Alcotest.(check bool) "(4) invalidated" false (Sys_.guarantee_valid g4);
  Alcotest.(check int) "one invalidation recorded" 1 (List.length (Sys_.invalidations g4))

let logical_failure_hits_all () =
  let system, sa, _sb = three_site_system () in
  let g1 = Sys_.declare_guarantee system ~sites:[ "a"; "b" ] (Guarantee.Follows pair) in
  Shell.report_failure sa Msg.Logical;
  Sys_.run system ~until:1.0;
  Alcotest.(check bool) "invalidated" false (Sys_.guarantee_valid g1)

let unrelated_site_failure_ignored () =
  let system, _sa, sb = three_site_system () in
  let g =
    Sys_.declare_guarantee system ~sites:[ "a" ]
      (Guarantee.Metric_follows (pair, 5.0))
  in
  (* Failure at b: the guarantee only involves a. *)
  Shell.report_failure sb Msg.Logical;
  Sys_.run system ~until:1.0;
  Alcotest.(check bool) "unaffected" true (Sys_.guarantee_valid g)

let duplicate_failures_recorded_once () =
  let system, sa, _sb = three_site_system () in
  let g =
    Sys_.declare_guarantee system ~sites:[ "a" ] (Guarantee.Metric_follows (pair, 5.0))
  in
  Shell.report_failure sa Msg.Metric;
  Shell.report_failure sa Msg.Metric;
  Sys_.run system ~until:1.0;
  Alcotest.(check int) "deduplicated" 1 (List.length (Sys_.invalidations g))

let reset_clears_only_origin () =
  let system, sa, sb = three_site_system () in
  let g =
    Sys_.declare_guarantee system ~sites:[ "a"; "b" ] (Guarantee.Follows pair)
  in
  Shell.report_failure sa Msg.Logical;
  Shell.report_failure sb Msg.Logical;
  Sys_.run system ~until:1.0;
  Alcotest.(check int) "two invalidations" 2 (List.length (Sys_.invalidations g));
  Shell.broadcast_reset sa;
  Sys_.run system ~until:2.0;
  Alcotest.(check bool) "still invalid (b pending)" false (Sys_.guarantee_valid g);
  Shell.broadcast_reset sb;
  Sys_.run system ~until:3.0;
  Alcotest.(check bool) "fully restored" true (Sys_.guarantee_valid g)

let guarantee_of_roundtrip () =
  let system, _sa, _sb = three_site_system () in
  let g = Sys_.declare_guarantee system ~sites:[ "a" ] (Guarantee.Follows pair) in
  Alcotest.(check string) "same guarantee" "(1) follows"
    (Guarantee.name (Sys_.guarantee_of g))

(* ---- install semantics ---- *)

let aux_init_lands_at_locator_site () =
  let system, sa, sb = three_site_system () in
  Sys_.install system
    {
      Strategy.strategy_name = "aux";
      description = "aux placement";
      rules = Parser.parse_rules "r1: Ping(Xa, v) ->[5] Pong(Xa, v)";
      aux_init =
        [ (Item.make "AuxA", Value.Int 1); (Item.make "AuxB", Value.Int 2) ];
    };
  Alcotest.(check (option value)) "AuxA at a" (Some (Value.Int 1))
    (Shell.read_aux sa (Item.make "AuxA"));
  Alcotest.(check (option value)) "AuxB at b" (Some (Value.Int 2))
    (Shell.read_aux sb (Item.make "AuxB"));
  Alcotest.(check (option value)) "AuxB not at a" None
    (Shell.read_aux sa (Item.make "AuxB"))

let polling_rule_registers_timer () =
  let system, _sa, _sb = three_site_system () in
  Sys_.install system
    {
      Strategy.strategy_name = "poll";
      description = "tick";
      rules = Parser.parse_rules "t: P(10) ->[1] Ping(Xa, 0)";
      aux_init = [];
    };
  Sys_.run system ~until:35.0;
  Alcotest.(check int) "ticks recorded at a" 3
    (List.length
       (List.filter
          (fun (e : Event.t) -> e.site = "a")
          (Trace.named (Sys_.trace system) "P")))

let install_rejects_unplaceable_aux () =
  let system, _sa, _sb = three_site_system () in
  let bad_locator_item = Item.make "Nowhere" in
  let strategy =
    {
      Strategy.strategy_name = "bad";
      description = "aux at unknown site";
      rules = Parser.parse_rules "r: Ping(Xa, v) ->[5] Pong(Xa, v)";
      aux_init = [ (bad_locator_item, Value.Int 1) ];
    }
  in
  (* locator sends unknown bases to "b" in this fixture, so use a locator
     miss by building a separate system whose locator yields an unhandled
     site. *)
  ignore strategy;
  let system2 = Sys_.create ~config:(Cm_core.System.Config.seeded 4) (fun _ -> "ghost-site") in
  let _ = system in
  Alcotest.(check bool) "raises" true
    (try
       Sys_.install system2 strategy;
       false
     with Invalid_argument _ -> true)

let all_rules_combines () =
  let system, sa, _sb = three_site_system () in
  ignore sa;
  Sys_.install system
    {
      Strategy.strategy_name = "s";
      description = "one rule";
      rules = Parser.parse_rules "r: Ping(Xa, v) ->[5] Pong(Xa, v)";
      aux_init = [];
    };
  Alcotest.(check int) "strategy rules" 1 (List.length (Sys_.strategy_rules system));
  (* No translators in this fixture: all_rules = strategy rules. *)
  Alcotest.(check int) "all rules" 1 (List.length (Sys_.all_rules system))

let shell_lookup_by_site () =
  let system, sa, sb = three_site_system () in
  Alcotest.(check string) "a" (Shell.site sa) (Shell.site (Sys_.shell system ~site:"a"));
  Alcotest.(check string) "b" (Shell.site sb) (Shell.site (Sys_.shell system ~site:"b"));
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Sys_.shell system ~site:"zzz");
       false
     with Not_found -> true)

let duplicate_shell_rejected () =
  let system, _sa, _sb = three_site_system () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sys_.add_shell system ~site:"a");
       false
     with Invalid_argument _ -> true)

(* ---- Guarantee_view: §5 invalidation -> reset round trip ---- *)

module GV = Sys_.Guarantee_view
module Payroll = Cm_workload.Payroll

let guarantee_view_roundtrip () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 7) ~employees:1 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  let interfaces =
    Sys_.interface_rules system
    @ [ Cm_core.Interface.no_spontaneous_write Payroll.target_pattern ]
  in
  Sys_.declare_copies ~interfaces system [ ("Salary1", "Salary2") ];
  let entry () =
    match Sys_.copy_view system ~source:"Salary1" ~target:"Salary2" with
    | Some e -> e
    | None -> Alcotest.fail "declared copy missing from the view"
  in
  let qualifies () =
    Sys_.copy_qualifies system ~source:"Salary1" ~target:"Salary2"
  in
  let e0 = entry () in
  Alcotest.(check bool) "valid at declaration" true e0.GV.gv_valid;
  let kappa0 =
    match qualifies () with
    | Ok k -> k
    | Error e -> Alcotest.failf "expected qualification, got %s" e
  in
  Alcotest.(check bool) "kappa positive" true (kappa0 > 0.0);
  (* A §5 metric failure at the copy site invalidates the metric
     guarantee and takes the copy out of qualification... *)
  Shell.report_failure p.Payroll.shell_b Msg.Metric;
  Sys_.run system ~until:1.0;
  let e1 = entry () in
  Alcotest.(check bool) "invalidated after failure" false e1.GV.gv_valid;
  Alcotest.(check bool) "invalidation recorded" true
    (e1.GV.gv_invalidations <> []);
  (match qualifies () with
  | Error "invalidated" -> ()
  | Ok _ -> Alcotest.fail "invalidated copy still qualifies"
  | Error e -> Alcotest.failf "wrong skip reason: %s" e);
  (* ...and the origin's reset notice restores exactly the prior state:
     same validity, same kappa, empty invalidation log. *)
  Shell.broadcast_reset p.Payroll.shell_b;
  Sys_.run system ~until:2.0;
  let e2 = entry () in
  Alcotest.(check bool) "re-validated after reset" true e2.GV.gv_valid;
  Alcotest.(check int) "invalidation log cleared" 0
    (List.length e2.GV.gv_invalidations);
  match qualifies () with
  | Ok k -> Alcotest.(check (float 0.0)) "same kappa as before" kappa0 k
  | Error e -> Alcotest.failf "copy did not re-qualify: %s" e

let () =
  Alcotest.run "cm_system"
    [
      ( "guarantee registry",
        [
          Alcotest.test_case "metric only hits metric" `Quick
            metric_failure_hits_only_metric;
          Alcotest.test_case "logical hits all" `Quick logical_failure_hits_all;
          Alcotest.test_case "unrelated site ignored" `Quick
            unrelated_site_failure_ignored;
          Alcotest.test_case "dedup" `Quick duplicate_failures_recorded_once;
          Alcotest.test_case "reset per origin" `Quick reset_clears_only_origin;
          Alcotest.test_case "guarantee_of" `Quick guarantee_of_roundtrip;
        ] );
      ( "install",
        [
          Alcotest.test_case "aux placement" `Quick aux_init_lands_at_locator_site;
          Alcotest.test_case "timer registration" `Quick polling_rule_registers_timer;
          Alcotest.test_case "unplaceable aux" `Quick install_rejects_unplaceable_aux;
          Alcotest.test_case "all_rules" `Quick all_rules_combines;
        ] );
      ( "shells",
        [
          Alcotest.test_case "lookup by site" `Quick shell_lookup_by_site;
          Alcotest.test_case "duplicate rejected" `Quick duplicate_shell_rejected;
        ] );
      ( "guarantee view",
        [
          Alcotest.test_case "invalidation/reset round trip" `Quick
            guarantee_view_roundtrip;
        ] );
    ]
