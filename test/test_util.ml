(* Tests for cm_util: PRNG determinism, heap ordering, stats, tables. *)

let prng_deterministic () =
  let a = Cm_util.Prng.create ~seed:7 in
  let b = Cm_util.Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Cm_util.Prng.bits64 a) (Cm_util.Prng.bits64 b)
  done

let prng_seed_matters () =
  let a = Cm_util.Prng.create ~seed:1 in
  let b = Cm_util.Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Cm_util.Prng.bits64 a <> Cm_util.Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let prng_int_bounds () =
  let g = Cm_util.Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Cm_util.Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let prng_float_bounds () =
  let g = Cm_util.Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Cm_util.Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let prng_split_independent () =
  let g = Cm_util.Prng.create ~seed:5 in
  let child = Cm_util.Prng.split g in
  let a = Cm_util.Prng.bits64 child in
  let b = Cm_util.Prng.bits64 g in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let prng_copy () =
  let g = Cm_util.Prng.create ~seed:6 in
  ignore (Cm_util.Prng.bits64 g);
  let c = Cm_util.Prng.copy g in
  Alcotest.(check int64) "copy continues identically" (Cm_util.Prng.bits64 g)
    (Cm_util.Prng.bits64 c)

let prng_exponential_positive () =
  let g = Cm_util.Prng.create ~seed:8 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Cm_util.Prng.exponential g ~mean:3.0 > 0.0)
  done

let prng_invalid_args () =
  let g = Cm_util.Prng.create ~seed:9 in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Cm_util.Prng.int g 0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Cm_util.Prng.pick g [||]))

let heap_sorts () =
  let h = Cm_util.Heap.of_list ~leq:( <= ) [ 5; 3; 9; 1; 7; 3 ] in
  Alcotest.(check (list int)) "sorted drain" [ 1; 3; 3; 5; 7; 9 ]
    (Cm_util.Heap.to_sorted_list h)

let heap_empty () =
  let h = Cm_util.Heap.create ~leq:( <= ) in
  Alcotest.(check bool) "is_empty" true (Cm_util.Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Cm_util.Heap.pop h);
  Alcotest.(check (option int)) "min empty" None (Cm_util.Heap.min h)

let heap_min_then_pop () =
  let h = Cm_util.Heap.of_list ~leq:( <= ) [ 4; 2 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Cm_util.Heap.min h);
  Alcotest.(check int) "size unchanged by min" 2 (Cm_util.Heap.size h);
  Alcotest.(check (option int)) "pop" (Some 2) (Cm_util.Heap.pop h);
  Alcotest.(check int) "size after pop" 1 (Cm_util.Heap.size h)

let heap_clear () =
  let h = Cm_util.Heap.of_list ~leq:( <= ) [ 1; 2; 3 ] in
  Cm_util.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Cm_util.Heap.size h)

let heap_fold () =
  let h = Cm_util.Heap.of_list ~leq:( <= ) [ 5; 3; 9; 1 ] in
  (* Order is unspecified; fold must visit every element exactly once
     and leave the heap intact. *)
  Alcotest.(check int) "sum over all elements" 18
    (Cm_util.Heap.fold ( + ) 0 h);
  Alcotest.(check int) "count matches size" (Cm_util.Heap.size h)
    (Cm_util.Heap.fold (fun n _ -> n + 1) 0 h);
  Alcotest.(check (list int)) "heap untouched by fold" [ 1; 3; 5; 9 ]
    (Cm_util.Heap.to_sorted_list h);
  let empty = Cm_util.Heap.create ~leq:( <= ) in
  Alcotest.(check int) "fold over empty" 0 (Cm_util.Heap.fold ( + ) 0 empty)

let heap_qcheck =
  QCheck.Test.make ~name:"heap drains any int list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Cm_util.Heap.of_list ~leq:( <= ) xs in
      Cm_util.Heap.to_sorted_list h = List.sort compare xs)

let heap_size_qcheck =
  QCheck.Test.make ~name:"heap size tracks adds and pops" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Cm_util.Heap.create ~leq:( <= ) in
      List.iter (Cm_util.Heap.add h) xs;
      let n = List.length xs in
      let popped = ref 0 in
      while Cm_util.Heap.pop h <> None do
        incr popped
      done;
      !popped = n && Cm_util.Heap.is_empty h)

let stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Cm_util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Cm_util.Stats.mean [])

let stats_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Cm_util.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known" 2.0
    (Cm_util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "median" 5.0 (Cm_util.Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Cm_util.Stats.percentile 1.0 xs);
  Alcotest.(check (float 1e-9)) "p0-ish" 1.0 (Cm_util.Stats.percentile 0.01 xs);
  (* Nearest-rank edge cases: p = 1.0 on a singleton must not overrun,
     and 0.95 * 20 = 19.000000000000004 must round to rank 19, not
     ceil to 20. *)
  Alcotest.(check (float 1e-9)) "p100 singleton" 7.0
    (Cm_util.Stats.percentile 1.0 [ 7.0 ]);
  let twenty = List.init 20 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p95 of 20 is rank 19" 19.0
    (Cm_util.Stats.percentile 0.95 twenty)

let stats_summary () =
  let s = Cm_util.Stats.summary [ 4.0; 1.0; 3.0; 2.0; 5.0 ] in
  Alcotest.(check int) "n" 5 s.Cm_util.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Cm_util.Stats.mean;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Cm_util.Stats.p50;
  Alcotest.(check (float 1e-9)) "p95" 5.0 s.Cm_util.Stats.p95;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Cm_util.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Cm_util.Stats.max;
  let empty = Cm_util.Stats.summary [] in
  Alcotest.(check int) "empty n" 0 empty.Cm_util.Stats.n

let stats_min_max () =
  let lo, hi = Cm_util.Stats.min_max [ 3.0; -1.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "min" (-1.0) lo;
  Alcotest.(check (float 1e-9)) "max" 3.0 hi

let stats_histogram () =
  let h = Cm_util.Stats.histogram ~buckets:2 [ 0.0; 1.0; 9.0; 10.0 ] in
  Alcotest.(check int) "bucket count" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all points counted" 4 total

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let table_renders () =
  let t = Cm_util.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Cm_util.Table.add_row t [ "1"; "2" ];
  Cm_util.Table.add_row t [ "333" ];
  let s = Cm_util.Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 6 = "== T =");
  Alcotest.(check bool) "contains row" true (contains s "333");
  Alcotest.(check bool) "short row padded" true (contains s "333  ")

let table_cells () =
  Alcotest.(check string) "float" "1.50" (Cm_util.Table.cell_f 1.5);
  Alcotest.(check string) "digits" "1.500" (Cm_util.Table.cell_f ~digits:3 1.5);
  Alcotest.(check string) "pct" "12.5%" (Cm_util.Table.cell_pct 0.125);
  Alcotest.(check string) "bool" "yes" (Cm_util.Table.cell_bool true)

let () =
  Alcotest.run "cm_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick prng_deterministic;
          Alcotest.test_case "seed matters" `Quick prng_seed_matters;
          Alcotest.test_case "int bounds" `Quick prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick prng_float_bounds;
          Alcotest.test_case "split independent" `Quick prng_split_independent;
          Alcotest.test_case "copy" `Quick prng_copy;
          Alcotest.test_case "exponential positive" `Quick prng_exponential_positive;
          Alcotest.test_case "invalid args" `Quick prng_invalid_args;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick heap_sorts;
          Alcotest.test_case "empty" `Quick heap_empty;
          Alcotest.test_case "min then pop" `Quick heap_min_then_pop;
          Alcotest.test_case "clear" `Quick heap_clear;
          Alcotest.test_case "fold" `Quick heap_fold;
          QCheck_alcotest.to_alcotest heap_qcheck;
          QCheck_alcotest.to_alcotest heap_size_qcheck;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick stats_mean;
          Alcotest.test_case "stddev" `Quick stats_stddev;
          Alcotest.test_case "percentile" `Quick stats_percentile;
          Alcotest.test_case "summary" `Quick stats_summary;
          Alcotest.test_case "min_max" `Quick stats_min_max;
          Alcotest.test_case "histogram" `Quick stats_histogram;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick table_renders;
          Alcotest.test_case "cells" `Quick table_cells;
        ] );
    ]
