(* Tests for runtime rule evolution (Cm_core.Evolution): the
   propose -> cutover (drain) -> retire state machine, epoch-aware Fire
   handling across Reliable retransmission, journal replay of epoch
   transitions through crashes, the pinned §4.2.3 guarantee-survival
   report, and the churn-chaos acceptance sweep. *)

module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Obs = Cm_core.Obs
module Shell = Cm_core.Shell
module Sys_ = Cm_core.System
module Journal = Cm_core.Journal
module Reliable = Cm_core.Reliable
module Strategy = Cm_core.Strategy
module Interface = Cm_core.Interface
module Evolution = Cm_core.Evolution
module Toolkit = Cm_core.Toolkit
module Cmrid = Cm_core.Cmrid
module Payroll = Cm_workload.Payroll
module Chaos = Cm_chaos.Chaos
open Cm_rule

let ok_or_fail label = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" label m

let expect_error label = function
  | Ok _ -> Alcotest.failf "%s: expected an error" label
  | Error _ -> ()

let v2_strategy () =
  Strategy.propagate ~prefix:"v2" ~delta:5.0 ~source:Payroll.source_pattern
    ~target:Payroll.target_pattern ()

let noop_strategy =
  {
    Strategy.strategy_name = "noop";
    description = "an epoch with no rules";
    rules = [];
    aux_init = [];
  }

let phase shell ~epoch =
  match Shell.epoch_phase shell ~epoch with
  | Some p -> Journal.epoch_phase_to_string p
  | None -> "absent"

(* -- the per-site state machine -- *)

let state_machine_walkthrough () =
  let obs = Obs.create () in
  let p =
    Payroll.create
      ~config:Sys_.Config.(seeded 5 |> with_obs obs)
      ~employees:2 ()
  in
  Payroll.install_propagation p;
  let evo =
    Evolution.create ~constraints:[ ("Salary1", "Salary2") ] p.Payroll.system
  in
  Alcotest.(check int) "base epoch" 0 (Evolution.current_epoch evo);
  expect_error "cutover without proposal" (Evolution.cutover evo);
  expect_error "retire the active epoch" (Evolution.retire evo ~epoch:0);
  let e = ok_or_fail "propose" (Evolution.propose evo (v2_strategy ())) in
  Alcotest.(check int) "first proposed epoch" 1 e;
  expect_error "second outstanding proposal"
    (Evolution.propose evo noop_strategy);
  Alcotest.(check string) "staged at the shells" "proposed"
    (phase p.Payroll.shell_a ~epoch:1);
  Alcotest.(check int) "dispatch unaffected while proposed" 0
    (Evolution.current_epoch evo);
  let tr = ok_or_fail "cutover" (Evolution.cutover evo) in
  Alcotest.(check int) "transition from" 0 tr.Evolution.tr_from;
  Alcotest.(check int) "transition to" 1 tr.Evolution.tr_to;
  Alcotest.(check int) "current epoch" 1 (Evolution.current_epoch evo);
  Alcotest.(check (list int)) "old epoch draining" [ 0 ]
    (Evolution.draining evo);
  Alcotest.(check string) "shell active epoch" "active"
    (phase p.Payroll.shell_b ~epoch:1);
  Alcotest.(check string) "shell draining epoch" "draining"
    (phase p.Payroll.shell_b ~epoch:0);
  Alcotest.(check int) "shells report the new epoch" 1
    (Shell.rule_epoch p.Payroll.shell_a);
  (* A proposal carrying colliding rule ids is refused before it reaches
     any shell. *)
  let dup =
    let s = v2_strategy () in
    { s with Strategy.rules = s.Strategy.rules @ s.Strategy.rules }
  in
  expect_error "duplicate rule ids" (Evolution.propose evo dup);
  expect_error "retire an unknown epoch" (Evolution.retire evo ~epoch:7);
  ok_or_fail "retire" (Evolution.retire evo ~epoch:0);
  Alcotest.(check (list int)) "drain over" [] (Evolution.draining evo);
  Alcotest.(check int) "retirements counted" 1 (Evolution.retirements evo);
  Alcotest.(check string) "shell retired epoch" "retired"
    (phase p.Payroll.shell_a ~epoch:0);
  expect_error "double retire" (Evolution.retire evo ~epoch:0);
  (* The cutover is surfaced through Obs. *)
  let rows = Obs.snapshot obs in
  let gauge name =
    List.find_map
      (fun r ->
        match r.Obs.sample with
        | Obs.Gauge_sample v when String.equal r.Obs.name name -> Some v
        | _ -> None)
      rows
  in
  Alcotest.(check (option (float 0.0))) "evolution_epoch gauge" (Some 1.0)
    (gauge "evolution_epoch")

(* -- cutover redirects new dispatch -- *)

let new_epoch_takes_dispatch () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 6) ~employees:1 () in
  Payroll.install_propagation p;
  let evo = Evolution.create p.Payroll.system in
  let sim = Sys_.sim p.Payroll.system in
  Payroll.schedule_update p ~at:2.0 ~emp:"e1" ~salary:1111;
  Sim.schedule_at sim 10.0 (fun () ->
      ignore (ok_or_fail "evolve" (Evolution.evolve ~quiesce:false evo noop_strategy)));
  Payroll.schedule_update p ~at:20.0 ~emp:"e1" ~salary:2222;
  Sys_.run p.Payroll.system ~until:60.0;
  Alcotest.(check bool) "pre-cutover update propagated" true
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 1111));
  Alcotest.(check bool) "post-cutover update applied at the source" true
    (Value.equal (Payroll.salary_at p `A "e1") (Value.Int 2222));
  Alcotest.(check bool) "empty epoch stopped propagation" true
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 1111))

(* -- drain and stale rejection across Reliable retransmission -- *)

(* A Fire produced under epoch 0 is trapped behind a partition while the
   system cuts over to epoch 1; retransmission delivers it afterwards. *)
let drained_fire_setup ~retire_at =
  let reliable =
    { Reliable.default_config with retry_timeout = 1.0; max_retries = 30 }
  in
  let p =
    Payroll.create
      ~config:Sys_.Config.(seeded 7 |> with_reliable reliable)
      ~employees:1 ()
  in
  Payroll.install_propagation p;
  let evo = Evolution.create p.Payroll.system in
  let sim = Sys_.sim p.Payroll.system in
  Net.partition (Sys_.net p.Payroll.system) ~from_site:Payroll.site_a
    ~to_site:Payroll.site_b ~until:15.0;
  Payroll.schedule_update p ~at:1.0 ~emp:"e1" ~salary:4242;
  Sim.schedule_at sim 5.0 (fun () ->
      ignore
        (ok_or_fail "evolve" (Evolution.evolve ~quiesce:false evo noop_strategy)));
  (match retire_at with
  | Some t ->
    Sim.schedule_at sim t (fun () ->
        ok_or_fail "retire" (Evolution.retire evo ~epoch:0))
  | None -> ());
  Sys_.run p.Payroll.system ~until:60.0;
  (p, evo)

let draining_fire_executes_under_origin_epoch () =
  let p, evo = drained_fire_setup ~retire_at:None in
  Alcotest.(check bool) "retransmitted old-epoch fire executed" true
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 4242));
  Alcotest.(check int) "no stale rejection while draining" 0
    (Shell.stale_epoch_rejections p.Payroll.shell_b);
  Alcotest.(check (list int)) "epoch 0 still draining" [ 0 ]
    (Evolution.draining evo);
  Alcotest.(check bool) "the retransmission chain was real" true
    ((match Sys_.reliable p.Payroll.system with
     | Some r -> (Reliable.stats r).Reliable.retransmits
     | None -> 0)
    > 0)

let retired_epoch_rejects_and_counts () =
  let p, evo = drained_fire_setup ~retire_at:(Some 10.0) in
  Alcotest.(check bool) "stale fire NOT executed" false
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 4242));
  Alcotest.(check int) "rejection counted, not silently dropped" 1
    (Shell.stale_epoch_rejections p.Payroll.shell_b);
  Alcotest.(check int) "manager sums shell counters" 1
    (Evolution.stale_rejections evo);
  Alcotest.(check int) "transport drained (rejected, but acknowledged)" 0
    (match Sys_.reliable p.Payroll.system with
    | Some r -> Reliable.pending r
    | None -> -1);
  Alcotest.(check int) "no execution under the wrong rules" 0
    (Shell.fires_executed p.Payroll.shell_b)

(* -- crash recovery replays the epoch state machine -- *)

let crash_during_drain_recovers_epochs () =
  let p =
    Payroll.create
      ~config:
        Sys_.Config.(
          seeded 11
          |> with_reliable Reliable.default_config
          |> with_durability Journal.Journal_with_checkpoint)
      ~employees:1 ()
  in
  Payroll.install_propagation p;
  let evo = Evolution.create p.Payroll.system in
  let sim = Sys_.sim p.Payroll.system in
  Sim.schedule_at sim 10.0 (fun () ->
      ignore
        (ok_or_fail "evolve" (Evolution.evolve ~quiesce:false evo (v2_strategy ()))));
  Sim.schedule_at sim 12.0 (fun () ->
      Sys_.crash_site p.Payroll.system ~site:Payroll.site_b);
  Sim.schedule_at sim 30.0 (fun () ->
      Sys_.restart_site p.Payroll.system ~site:Payroll.site_b);
  Sys_.run p.Payroll.system ~until:40.0;
  (* The crash wiped the shell's volatile state mid-drain; replay must
     put it back into epoch 1 with epoch 0 still draining — not
     resurrect epoch 0 as the active program. *)
  Alcotest.(check int) "replayed into the new epoch" 1
    (Shell.rule_epoch p.Payroll.shell_b);
  Alcotest.(check string) "old epoch still draining after replay" "draining"
    (phase p.Payroll.shell_b ~epoch:0);
  Alcotest.(check string) "new epoch active after replay" "active"
    (phase p.Payroll.shell_b ~epoch:1);
  (* Retire, crash again (this time the journal has a checkpoint beyond
     the cutover), and make sure retirement is not forgotten either. *)
  ok_or_fail "retire" (Evolution.retire evo ~epoch:0);
  Sys_.crash_site p.Payroll.system ~site:Payroll.site_b;
  Sim.schedule_at sim 50.0 (fun () ->
      Sys_.restart_site p.Payroll.system ~site:Payroll.site_b);
  Sys_.run p.Payroll.system ~until:60.0;
  Alcotest.(check string) "retirement survives the second crash" "retired"
    (phase p.Payroll.shell_b ~epoch:0);
  Alcotest.(check int) "still in the new epoch" 1
    (Shell.rule_epoch p.Payroll.shell_b);
  (* And the recovered site actually runs the new program. *)
  Payroll.schedule_update p ~at:65.0 ~emp:"e1" ~salary:3131;
  Sys_.run p.Payroll.system ~until:120.0;
  Alcotest.(check bool) "epoch-1 program live after recovery" true
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 3131))

(* -- self-healing: required pairs roll a regressing cutover back -- *)

let healing_payroll ?(seed = 23) ?required () =
  let p =
    Payroll.create
      ~config:
        Sys_.Config.(
          seeded seed |> with_durability Journal.Journal_with_checkpoint)
      ~employees:1 ()
  in
  Payroll.install_propagation p;
  let interfaces =
    Sys_.interface_rules p.Payroll.system
    @ [ Interface.no_spontaneous_write Payroll.target_pattern ]
  in
  let evo =
    Evolution.create
      ~constraints:[ ("Salary1", "Salary2") ]
      ?required ~interfaces p.Payroll.system
  in
  Sys_.declare_copies ~interfaces p.Payroll.system [ ("Salary1", "Salary2") ];
  (p, evo)

let required_regression_rolls_back () =
  let p, evo = healing_payroll ~required:[ ("Salary1", "Salary2") ] () in
  let system = p.Payroll.system in
  (* The bad rollout: an empty program loses every guarantee of the
     required pair, so the cutover must be undone on the spot. *)
  ignore (ok_or_fail "evolve noop" (Evolution.evolve ~quiesce:false evo noop_strategy));
  (match Evolution.rollbacks evo with
  | [ rb ] ->
    Alcotest.(check int) "rolled back epoch 1" 1 rb.Evolution.rb_from;
    Alcotest.(check int) "restored epoch 0's program" 0 rb.Evolution.rb_to;
    Alcotest.(check int) "via a fresh epoch" 2 rb.Evolution.rb_via;
    Alcotest.(check string) "names the rejected strategy" "noop"
      rb.Evolution.rb_strategy;
    Alcotest.(check bool) "records the lost guarantees" true
      (rb.Evolution.rb_lost <> [])
  | rbs -> Alcotest.failf "expected 1 rollback, got %d" (List.length rbs));
  Alcotest.(check int) "current epoch is the restoring one" 2
    (Evolution.current_epoch evo);
  (* Write-ahead: the rollback record reaches the journal before the
     restoring epoch's own proposal, at every durable site. *)
  List.iter
    (fun site ->
      let records =
        match Sys_.journal system ~site with
        | Some j -> Journal.records j
        | None -> Alcotest.failf "no journal at %s" site
      in
      let index kind =
        match
          List.find_index
            (fun r -> String.equal (Journal.record_kind r) kind)
            records
        with
        | Some i -> i
        | None -> Alcotest.failf "no %s record at %s" kind site
      in
      let rb_i = index "epoch_rollback" in
      let restore_i =
        match
          List.find_index
            (function
              | Journal.Epoch_proposed { epoch = 2; _ } -> true | _ -> false)
            records
        with
        | Some i -> i
        | None -> Alcotest.failf "no epoch-2 proposal at %s" site
      in
      Alcotest.(check bool)
        (Printf.sprintf "rollback journaled before the restore at %s" site)
        true (rb_i < restore_i))
    [ Payroll.site_a; Payroll.site_b ];
  (* The restored program still propagates and the copy still
     qualifies: self-healing leaves the system as it was. *)
  (match Sys_.copy_qualifies system ~source:"Salary1" ~target:"Salary2" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "copy lost its guarantee after rollback: %s" e);
  Payroll.schedule_update p ~at:10.0 ~emp:"e1" ~salary:4242;
  Sys_.run system ~until:60.0;
  Alcotest.(check bool) "restored program live" true
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 4242))

let unrequired_regression_stands () =
  let p, evo = healing_payroll () in
  ignore (ok_or_fail "evolve noop" (Evolution.evolve ~quiesce:false evo noop_strategy));
  Alcotest.(check int) "no rollback" 0 (List.length (Evolution.rollbacks evo));
  Alcotest.(check int) "bad epoch stands" 1 (Evolution.current_epoch evo);
  ignore p

let never_lost_does_not_trigger () =
  (* With no quiet statement nothing is provable in epoch 0 either: the
     noop cutover classifies the guarantees Never, not Lost — the prior
     epoch is no better a refuge, so no rollback. *)
  let p =
    Payroll.create ~config:(Sys_.Config.seeded 29) ~employees:1 ()
  in
  Payroll.install_propagation p;
  let evo =
    Evolution.create
      ~constraints:[ ("Salary1", "Salary2") ]
      ~required:[ ("Salary1", "Salary2") ]
      ~interfaces:[] p.Payroll.system
  in
  ignore (ok_or_fail "evolve noop" (Evolution.evolve ~quiesce:false evo noop_strategy));
  Alcotest.(check int) "no rollback for Never" 0
    (List.length (Evolution.rollbacks evo));
  Alcotest.(check int) "cutover stands" 1 (Evolution.current_epoch evo)

let required_must_be_subset () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 31) ~employees:1 () in
  Payroll.install_propagation p;
  match
    Evolution.create
      ~constraints:[ ("Salary1", "Salary2") ]
      ~required:[ ("Salary1", "Elsewhere") ]
      p.Payroll.system
  with
  | _ -> Alcotest.fail "required outside constraints accepted"
  | exception Invalid_argument _ -> ()

let rollback_survives_crash_replay () =
  let p, evo = healing_payroll ~required:[ ("Salary1", "Salary2") ] () in
  let system = p.Payroll.system in
  let sim = Sys_.sim system in
  Sim.schedule_at sim 10.0 (fun () ->
      ignore
        (ok_or_fail "evolve noop"
           (Evolution.evolve ~quiesce:false evo noop_strategy)));
  Sim.schedule_at sim 12.0 (fun () ->
      Sys_.crash_site system ~site:Payroll.site_b);
  Sim.schedule_at sim 30.0 (fun () ->
      Sys_.restart_site system ~site:Payroll.site_b);
  Sys_.run system ~until:40.0;
  (* Replay must land the crashed site in the restoring epoch (2), with
     the rolled-back epoch's program nowhere active. *)
  Alcotest.(check int) "replayed into the restoring epoch" 2
    (Shell.rule_epoch p.Payroll.shell_b);
  Payroll.schedule_update p ~at:45.0 ~emp:"e1" ~salary:5151;
  Sys_.run system ~until:100.0;
  Alcotest.(check bool) "restored program live after replay" true
    (Value.equal (Payroll.salary_at p `B "e1") (Value.Int 5151))

(* -- the pinned §4.2.3 survival report -- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

(* The same inputs `cmtool evolve examples/config/payroll.cmrid
   examples/config/poll.rules examples/config/interfaces.rules` uses.
   Of interfaces.rules only t_quiet survives the (kind, base) merge —
   s_notify / s_read / t_write restate capabilities the translators
   already declare. *)
let payroll_4_2_3_survivals () =
  let config =
    match Cmrid.parse_file "../examples/config/payroll.cmrid" with
    | Ok c -> c
    | Error _ -> Alcotest.fail "payroll.cmrid must parse"
  in
  let built = ok_or_fail "build" (Toolkit.build config) in
  let system = built.Toolkit.system in
  let proposed = Parser.parse_rules (read_file "../examples/config/poll.rules") in
  let declared =
    Parser.parse_rules (read_file "../examples/config/interfaces.rules")
  in
  let is_iface r = Interface.classify r <> None in
  let novel =
    List.filter
      (fun r -> Interface.classify r = Some Interface.No_spontaneous_write)
      declared
  in
  let prop_ifaces, strategy_after = List.partition is_iface proposed in
  Evolution.compare_programs
    ~interfaces_before:(Sys_.interface_rules system @ novel)
    ~interfaces_after:prop_ifaces
    ~strategy_before:(Sys_.strategy_rules system)
    ~strategy_after
    ~constraints:[ ("Salary1", "Salary2") ]

let survival_golden_text () =
  let expected =
    "guarantee survival: Salary2 copies Salary1\n\
    \  (1) follows          kept      proved -> proved\n\
    \  (2) leads            lost      proved -> unprovable: no complete \
     observation channel: filtered/sampled channels can miss values (\xc2\xa74.2.3)\n\
    \  (3) strictly-follows kept      proved -> proved\n\
    \  (4) metric-follows   kept      proved (kappa = 11) -> proved (kappa = 28)\n"
  in
  Alcotest.(check string) "pinned text report" expected
    (Evolution.survivals_to_text (payroll_4_2_3_survivals ()))

let survival_golden_json () =
  let expected =
    "{ \"constraints\": [\n\
    \  { \"source\": \"Salary1\", \"target\": \"Salary2\",\n\
    \    \"guarantees\": [\n\
    \      { \"name\": \"(1) follows\", \"status\": \"kept\", \"before\": \
     \"proved\", \"after\": \"proved\" },\n\
    \      { \"name\": \"(2) leads\", \"status\": \"lost\", \"before\": \
     \"proved\", \"after\": \"unprovable\", \"after_reason\": \"no complete \
     observation channel: filtered/sampled channels can miss values \
     (\xc2\xa74.2.3)\" },\n\
    \      { \"name\": \"(3) strictly-follows\", \"status\": \"kept\", \
     \"before\": \"proved\", \"after\": \"proved\" },\n\
    \      { \"name\": \"(4) metric-follows\", \"status\": \"kept\", \
     \"before\": \"proved\", \"before_kappa\": 11, \"after\": \"proved\", \
     \"after_kappa\": 28 }\n\
    \    ] }\n\
     ] }\n"
  in
  Alcotest.(check string) "pinned JSON report" expected
    (Evolution.survivals_to_json (payroll_4_2_3_survivals ()))

(* -- acceptance: rule churn x crash/loss/partition -- *)

let fifty_seed_churn_chaos () =
  let claimed = ref 0 in
  for seed = 1 to 50 do
    let spec =
      { Chaos.default_spec with seed; events = 150; crashes = 3; churn = 3 }
    in
    let r = Chaos.run spec in
    if not (Chaos.passed r) then
      Alcotest.failf "churn chaos seed %d FAIL:\n%s" seed
        (Chaos.report_to_string r);
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: both-epoch guarantee violations" seed)
      [] r.Chaos.both_epoch_violations;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: three cutovers" seed)
      3 r.Chaos.cutovers;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: every cutover retired" seed)
      r.Chaos.cutovers r.Chaos.epoch_retirements;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: retirement waited out the drain" seed)
      0 r.Chaos.stale_epoch_rejections;
    if r.Chaos.both_epoch_guarantees <> [] then incr claimed
  done;
  (* Guard against a vacuous invariant: the prover must actually claim a
     cross-epoch guarantee on most schedules. *)
  Alcotest.(check bool)
    (Printf.sprintf "both-epoch set non-vacuous (%d/50 schedules)" !claimed)
    true
    (!claimed >= 25)

let () =
  Alcotest.run "cm_evolution"
    [
      ( "state machine",
        [
          Alcotest.test_case "propose/cutover/retire walkthrough" `Quick
            state_machine_walkthrough;
          Alcotest.test_case "cutover redirects dispatch" `Quick
            new_epoch_takes_dispatch;
        ] );
      ( "drain",
        [
          Alcotest.test_case "retransmitted fire executes under origin epoch"
            `Quick draining_fire_executes_under_origin_epoch;
          Alcotest.test_case "retired epoch rejects and counts" `Quick
            retired_epoch_rejects_and_counts;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash during drain replays epochs" `Quick
            crash_during_drain_recovers_epochs;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "required regression rolls back" `Quick
            required_regression_rolls_back;
          Alcotest.test_case "unrequired regression stands" `Quick
            unrequired_regression_stands;
          Alcotest.test_case "Never does not trigger rollback" `Quick
            never_lost_does_not_trigger;
          Alcotest.test_case "required must be within constraints" `Quick
            required_must_be_subset;
          Alcotest.test_case "rollback survives crash replay" `Quick
            rollback_survives_crash_replay;
        ] );
      ( "survival",
        [
          Alcotest.test_case "pinned \xc2\xa74.2.3 text report" `Quick
            survival_golden_text;
          Alcotest.test_case "pinned \xc2\xa74.2.3 JSON report" `Quick
            survival_golden_json;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "50-seed churn x fault schedules" `Slow
            fifty_seed_churn_chaos;
        ] );
    ]
