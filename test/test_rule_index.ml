(* Property-based differential tests for Cm_rule.Rule_index.

   The index must be observationally equivalent to the naive linear
   scan it replaced in Shell.occurred: for any rule program and any
   event, [Rule_index.select] followed by template matching yields
   exactly the same (rule, environment) list — same members, same
   (registration) order — as [Rule_index.select_naive] followed by
   template matching.

   A seeded Prng drives a generator of random rule programs (random
   templates over shared pools of names, bases and sites, registered
   under random LHS sites or as site-free chaining rules) and random
   event streams (events derived from installed templates so matches
   actually happen, then mutated to cover near-misses: renamed, rebased,
   truncated, extended).  Every generated (program, event, site) triple
   is one differential case; the suite runs well over 1000 of them. *)

open Cm_rule
module Prng = Cm_util.Prng

let names = [| "EvA"; "EvB"; "EvC"; "EvD" |]
let bases = [| "A"; "B"; "C"; "D"; "E"; "F" |]
let sites = [| "s0"; "s1"; "s2"; "s3" |]
let vars = [| "u"; "v"; "w"; "x" |]

let gen_value rng =
  match Prng.int rng 4 with
  | 0 -> Value.Int (Prng.int rng 10)
  | 1 -> Value.Str (Printf.sprintf "c%d" (Prng.int rng 5))
  | 2 -> Value.Bool (Prng.bool rng)
  | _ -> Value.Float (float_of_int (Prng.int rng 7))

(* Item params are themselves template args restricted to Const/Var/
   Wildcard (Expr.is_template_arg). *)
let gen_param rng =
  match Prng.int rng 3 with
  | 0 -> Expr.Const (gen_value rng)
  | 1 -> Expr.Var (Prng.pick rng vars)
  | _ -> Expr.Wildcard

let gen_template_arg rng =
  match Prng.int rng 5 with
  | 0 -> Expr.Const (gen_value rng)
  | 1 | 2 -> Expr.Var (Prng.pick rng vars)
  | 3 -> Expr.Wildcard
  | _ ->
    let params = List.init (Prng.int rng 2) (fun _ -> gen_param rng) in
    Expr.Item (Prng.pick rng bases, params)

let gen_template rng =
  (* An occasional FALSE template: matches nothing on either path. *)
  if Prng.int rng 20 = 0 then Template.false_
  else
    let arity = Prng.int rng 4 in
    Template.make (Prng.pick rng names)
      (List.init arity (fun _ -> gen_template_arg rng))

(* A program: templates registered in order under random LHS sites
   (None = site-free chaining rule).  The payload is (registration id,
   template) so the oracle can re-run template matching. *)
let gen_program rng =
  let n = 1 + Prng.int rng 20 in
  let index = Rule_index.create () in
  let all = ref [] in
  for id = 0 to n - 1 do
    let tpl = gen_template rng in
    let site = if Prng.int rng 4 = 0 then None else Some (Prng.pick rng sites) in
    Rule_index.add index ~lhs:tpl ~site (id, tpl);
    all := (id, tpl, site) :: !all
  done;
  (index, List.rev !all)

(* Instantiate a template into a concrete event descriptor, then
   sometimes mutate it so near-misses (wrong name, wrong base, wrong
   arity) are covered too. *)
let gen_event_desc rng (tpl : Template.t) =
  let arg_of = function
    | Expr.Const v -> Event.Av v
    | Expr.Var _ | Expr.Wildcard ->
      if Prng.int rng 5 = 0 then Event.Ai (Item.make (Prng.pick rng bases))
      else Event.Av (gen_value rng)
    | Expr.Item (base, params) ->
      let params =
        List.map
          (function Expr.Const v -> v | _ -> gen_value rng)
          params
      in
      Event.Ai (Item.make base ~params)
    | _ -> Event.Av (gen_value rng)
  in
  let desc = { Event.name = tpl.Template.name; args = List.map arg_of tpl.Template.args } in
  match Prng.int rng 10 with
  | 0 -> { desc with Event.name = Prng.pick rng names }
  | 1 -> (
    (* Rebase the first item argument, if any. *)
    match desc.Event.args with
    | Event.Ai item :: rest ->
      { desc with
        Event.args = Event.Ai (Item.make (Prng.pick rng bases) ~params:item.Item.params) :: rest
      }
    | _ -> desc)
  | 2 ->
    { desc with
      Event.args = (match desc.Event.args with [] -> [] | _ :: rest -> rest) }
  | 3 -> { desc with Event.args = desc.Event.args @ [ Event.Av (gen_value rng) ] }
  | _ -> desc

let gen_desc_from_program rng program =
  match program with
  | [] -> { Event.name = Prng.pick rng names; args = [] }
  | _ ->
    let _, tpl, _ = List.nth program (Prng.int rng (List.length program)) in
    if Template.is_false tpl then { Event.name = Prng.pick rng names; args = [] }
    else gen_event_desc rng tpl

(* The observable outcome of dispatching [desc]: (rule id, sorted
   bindings) per match, in rule order. *)
let matches_of candidates desc =
  List.filter_map
    (fun (id, tpl) ->
      Template.matches tpl desc ~seed:Expr.empty_env
      |> Option.map (fun env -> (id, Expr.Env.bindings env)))
    candidates

let binding_to_string = function
  | Expr.Bval v -> Value.to_string v
  | Expr.Bitem item -> Item.to_string item

let outcome_to_string outcome =
  String.concat "; "
    (List.map
       (fun (id, bindings) ->
         Printf.sprintf "#%d{%s}" id
           (String.concat ","
              (List.map
                 (fun (x, b) -> x ^ "=" ^ binding_to_string b)
                 bindings)))
       outcome)

let check_case ~case index desc ~local_site ~event_site =
  let indexed =
    matches_of (Rule_index.select index ~local_site ~event_site ~desc) desc
  in
  let naive =
    matches_of (Rule_index.select_naive index ~local_site ~event_site) desc
  in
  if indexed <> naive then
    Alcotest.failf
      "case %d: %s at %s (local %s)\n  indexed: [%s]\n  naive:   [%s]" case
      (Event.desc_to_string desc) event_site local_site
      (outcome_to_string indexed) (outcome_to_string naive)

let differential_cases () =
  let rng = Prng.create ~seed:424242 in
  let cases = ref 0 in
  let matched = ref 0 in
  for _program = 1 to 300 do
    let index, program = gen_program rng in
    for _event = 1 to 5 do
      let desc = gen_desc_from_program rng program in
      let event_site = Prng.pick rng sites in
      let local_site =
        if Prng.bool rng then event_site else Prng.pick rng sites
      in
      incr cases;
      check_case ~case:!cases index desc ~local_site ~event_site;
      let produced =
        matches_of (Rule_index.select index ~local_site ~event_site ~desc) desc
      in
      if produced <> [] then incr matched
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "ran >= 1000 differential cases (got %d)" !cases)
    true (!cases >= 1000);
  (* Guard against a vacuous generator: a healthy fraction of cases
     must actually produce matches. *)
  Alcotest.(check bool)
    (Printf.sprintf "generator is not vacuous (%d/%d cases matched)" !matched
       !cases)
    true
    (!matched * 5 >= !cases)

(* Churn differential: the same equivalence must survive epoch
   boundaries — rules removed (an epoch retiring its program) and new
   ones registered (the next epoch cutting over) in interleaved rounds.
   Exercises the tombstone/compaction path of [remove] under the exact
   pattern Shell.cutover_epoch produces. *)
let churn_differential_cases () =
  let rng = Prng.create ~seed:313131 in
  let cases = ref 0 in
  let removed_total = ref 0 in
  for _program = 1 to 120 do
    let index, program = gen_program rng in
    let live = ref program in
    let next_id = ref (List.length program) in
    for _round = 1 to 4 do
      (* Retire a random subset of the live program... *)
      let keep, retire =
        List.partition (fun _ -> Prng.int rng 3 > 0) !live
      in
      List.iter
        (fun (id, tpl, site) ->
          let ok =
            Rule_index.remove index ~lhs:tpl ~site (fun (id', _) -> id' = id)
          in
          if not ok then
            Alcotest.failf "remove lost a live entry (#%d)" id;
          incr removed_total)
        retire;
      (* ...and cut over to a fresh batch. *)
      let fresh =
        List.init (Prng.int rng 6) (fun _ ->
            let id = !next_id in
            incr next_id;
            let tpl = gen_template rng in
            let site =
              if Prng.int rng 4 = 0 then None else Some (Prng.pick rng sites)
            in
            Rule_index.add index ~lhs:tpl ~site (id, tpl);
            (id, tpl, site))
      in
      live := keep @ fresh;
      Alcotest.(check int) "length tracks live entries"
        (List.length !live) (Rule_index.length index);
      for _event = 1 to 4 do
        let desc = gen_desc_from_program rng !live in
        let event_site = Prng.pick rng sites in
        let local_site =
          if Prng.bool rng then event_site else Prng.pick rng sites
        in
        incr cases;
        check_case ~case:!cases index desc ~local_site ~event_site
      done
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "ran >= 1000 churn cases (got %d)" !cases)
    true (!cases >= 1000);
  Alcotest.(check bool)
    (Printf.sprintf "churn actually removed entries (%d)" !removed_total)
    true
    (!removed_total >= 500)

(* Deterministic order-preservation scenario: several rules in the same
   discrimination bucket, interleaved with chaining and foreign-site
   rules, must come back in exact registration order. *)
let registration_order () =
  let index = Rule_index.create () in
  let tpl name args = Template.make name args in
  let x_tpl = tpl "Ev" [ Expr.Item ("X", []); Expr.Var "v" ] in
  let free_tpl = tpl "Ev" [ Expr.Var "a"; Expr.Var "v" ] in
  Rule_index.add index ~lhs:x_tpl ~site:(Some "s0") 0;
  Rule_index.add index ~lhs:free_tpl ~site:None 1;
  Rule_index.add index ~lhs:x_tpl ~site:(Some "s0") 2;
  Rule_index.add index ~lhs:x_tpl ~site:(Some "s1") 3;  (* foreign *)
  Rule_index.add index ~lhs:free_tpl ~site:(Some "s0") 4;
  Rule_index.add index ~lhs:x_tpl ~site:None 5;
  let desc =
    { Event.name = "Ev"; args = [ Event.Ai (Item.make "X"); Event.Av (Value.Int 1) ] }
  in
  let got = Rule_index.select index ~local_site:"s0" ~event_site:"s0" ~desc in
  Alcotest.(check (list int)) "same-bucket interleaving preserves order"
    [ 0; 1; 2; 4; 5 ] got;
  let naive = Rule_index.select_naive index ~local_site:"s0" ~event_site:"s0" in
  Alcotest.(check (list int)) "naive returns all site-eligible entries"
    [ 0; 1; 2; 4; 5 ] naive;
  (* At a foreign site only that site's bucket applies. *)
  let got_s1 = Rule_index.select index ~local_site:"s0" ~event_site:"s1" ~desc in
  Alcotest.(check (list int)) "foreign-site event selects only its bucket"
    [ 3 ] got_s1

let base_discrimination () =
  let index = Rule_index.create () in
  let item_tpl base = Template.make "Ev" [ Expr.Item (base, []); Expr.Var "v" ] in
  Rule_index.add index ~lhs:(item_tpl "X") ~site:(Some "s0") "x";
  Rule_index.add index ~lhs:(item_tpl "Y") ~site:(Some "s0") "y";
  Rule_index.add index
    ~lhs:(Template.make "Ev" [ Expr.Var "a"; Expr.Var "v" ])
    ~site:(Some "s0") "free";
  let desc base =
    { Event.name = "Ev"; args = [ Event.Ai (Item.make base); Event.Av (Value.Int 0) ] }
  in
  Alcotest.(check (list string)) "X event skips the Y bucket" [ "x"; "free" ]
    (Rule_index.select index ~local_site:"s0" ~event_site:"s0" ~desc:(desc "X"));
  Alcotest.(check (list string)) "Y event skips the X bucket" [ "y"; "free" ]
    (Rule_index.select index ~local_site:"s0" ~event_site:"s0" ~desc:(desc "Y"));
  let no_item = { Event.name = "Ev"; args = [ Event.Av (Value.Int 1) ] } in
  Alcotest.(check (list string))
    "itemless event consults only the base-free bucket" [ "free" ]
    (Rule_index.select index ~local_site:"s0" ~event_site:"s0" ~desc:no_item);
  let buckets, largest = Rule_index.bucket_stats index in
  Alcotest.(check int) "three discrimination buckets" 3 buckets;
  Alcotest.(check int) "singleton buckets" 1 largest;
  Alcotest.(check int) "length counts every registration" 3
    (Rule_index.length index)

let () =
  Alcotest.run "rule_index"
    [
      ( "differential",
        [
          Alcotest.test_case "1500 random programs/events: indexed = naive"
            `Quick differential_cases;
          Alcotest.test_case
            "epoch churn (remove + re-add rounds): indexed = naive" `Quick
            churn_differential_cases;
        ] );
      ( "discrimination",
        [
          Alcotest.test_case "registration order" `Quick registration_order;
          Alcotest.test_case "base buckets" `Quick base_discrimination;
        ] );
    ]
