(** Rows: column-name → value maps. *)

type t

val empty : t
val of_list : (string * Cm_rule.Value.t) list -> t
val to_list : t -> (string * Cm_rule.Value.t) list
(** Sorted by column name. *)

val get : t -> string -> Cm_rule.Value.t option
val get_or_null : t -> string -> Cm_rule.Value.t
val set : t -> string -> Cm_rule.Value.t -> t
val equal : t -> t -> bool
val to_string : t -> string
