lib/relational/sql_ast.ml: Cm_rule List Printf String
