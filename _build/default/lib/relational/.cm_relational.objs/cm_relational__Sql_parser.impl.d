lib/relational/sql_parser.ml: Array Cm_rule List Option Printf Sql_ast Sql_lexer String
