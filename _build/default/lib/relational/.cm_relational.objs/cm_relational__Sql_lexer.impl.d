lib/relational/sql_lexer.ml: Array Buffer Cm_rule List Printf String
