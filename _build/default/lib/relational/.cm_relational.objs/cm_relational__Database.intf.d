lib/relational/database.mli: Cm_rule Row Sql_ast Stdlib
