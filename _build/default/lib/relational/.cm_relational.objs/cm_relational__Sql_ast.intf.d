lib/relational/sql_ast.mli: Cm_rule
