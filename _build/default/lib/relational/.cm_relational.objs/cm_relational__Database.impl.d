lib/relational/database.ml: Cm_rule Hashtbl List Option Printf Row Sql_ast Sql_parser
