lib/relational/row.mli: Cm_rule
