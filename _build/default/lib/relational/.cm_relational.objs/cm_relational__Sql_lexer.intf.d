lib/relational/sql_lexer.mli: Cm_rule
