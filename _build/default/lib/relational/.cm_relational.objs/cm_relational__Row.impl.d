lib/relational/row.ml: Cm_rule List Map Option String
