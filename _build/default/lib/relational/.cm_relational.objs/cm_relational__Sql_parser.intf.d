lib/relational/sql_parser.mli: Sql_ast
