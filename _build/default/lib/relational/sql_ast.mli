(** Abstract syntax for the SQL subset understood by the relational RIS.

    The subset is what the paper's CM-Translators need from a "Sybase"
    class source (§4.2.1): single-table DML with WHERE predicates,
    CHECK constraints (used as the local constraint managers the
    Demarcation Protocol relies on, §6.1), and [$x] parameters so CM-RID
    command templates like
    ["UPDATE employees SET salary = $b WHERE empid = $n"]
    can be instantiated per rule firing. *)

type col_type = T_int | T_real | T_text | T_bool

type expr =
  | Lit of Cm_rule.Value.t
  | Col of string
  | Param of string  (** [$x]; bound at execution time *)
  | Unary of unary * expr
  | Binary of binary * expr * expr
  | Is_null of expr * bool  (** [IS NULL] / [IS NOT NULL] (bool = negated) *)

and unary = Neg | Not

and binary = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type col_def = {
  col_name : string;
  col_type : col_type;
  primary_key : bool;
  not_null : bool;
}

type order = Asc | Desc

type agg = Count | Sum | Min | Max | Avg

type sel_item =
  | S_col of string
  | S_agg of agg * string option  (** [None] is the star form of COUNT *)

type stmt =
  | Create_table of {
      table : string;
      cols : col_def list;
      checks : expr list;  (** row-level CHECK constraints *)
    }
  | Insert of { table : string; cols : string list option; values : expr list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Select of {
      table : string;
      projection : sel_item list option;  (** [None] = [*] *)
      where : expr option;
      group_by : string option;
      order_by : (string * order) option;
    }
  | Drop_table of { table : string }

val col_type_to_string : col_type -> string
val agg_to_string : agg -> string
val sel_item_to_string : sel_item -> string
val expr_to_string : expr -> string
val stmt_to_string : stmt -> string
