(** Recursive-descent parser for the SQL subset (see {!Sql_ast}). *)

exception Parse_error of string

val parse : string -> Sql_ast.stmt
(** Parse one statement (an optional trailing [;] is accepted).
    @raise Parse_error *)

val parse_expr : string -> Sql_ast.expr
(** Parse a bare SQL expression — used for trigger WHEN conditions. *)
