module M = Map.Make (String)

type t = Cm_rule.Value.t M.t

let empty = M.empty

let of_list entries =
  List.fold_left (fun m (k, v) -> M.add k v m) M.empty entries

let to_list t = M.bindings t

let get t name = M.find_opt name t

let get_or_null t name = Option.value (M.find_opt name t) ~default:Cm_rule.Value.Null

let set t name v = M.add name v t

let equal = M.equal Cm_rule.Value.equal

let to_string t =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> k ^ "=" ^ Cm_rule.Value.to_string v) (M.bindings t))
  ^ "}"
