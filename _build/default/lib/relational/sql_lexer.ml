type token =
  | KW of string
  | IDENT of string
  | NUMBER of Cm_rule.Value.t
  | STRING of string
  | PARAM of string
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string

let keywords =
  [
    "CREATE"; "TABLE"; "PRIMARY"; "KEY"; "NOT"; "NULL"; "CHECK"; "INSERT";
    "INTO"; "VALUES"; "UPDATE"; "SET"; "WHERE"; "DELETE"; "FROM"; "SELECT";
    "ORDER"; "BY"; "ASC"; "DESC"; "AND"; "OR"; "IS"; "TRUE"; "FALSE"; "INT";
    "REAL"; "TEXT"; "BOOL"; "DROP"; "GROUP"; "COUNT"; "SUM"; "MIN"; "MAX"; "AVG";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit t = out := t :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KW upper) else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let text = String.sub src start (!i - start) in
      emit
        (NUMBER
           (if !is_float then Cm_rule.Value.Float (float_of_string text)
            else Cm_rule.Value.Int (int_of_string text)))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error "unterminated string literal");
      emit (STRING (Buffer.contents buf))
    end
    else if c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      if !i = start then raise (Lex_error "empty parameter name after $");
      emit (PARAM (String.sub src start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then Some (c, src.[!i + 1]) else None
      in
      match two with
      | Some ('<', '>') ->
        emit NE;
        i := !i + 2
      | Some ('!', '=') ->
        emit NE;
        i := !i + 2
      | Some ('<', '=') ->
        emit LE;
        i := !i + 2
      | Some ('>', '=') ->
        emit GE;
        i := !i + 2
      | _ ->
        (match c with
         | '(' -> emit LPAREN
         | ')' -> emit RPAREN
         | ',' -> emit COMMA
         | '*' -> emit STAR
         | '+' -> emit PLUS
         | '-' -> emit MINUS
         | '/' -> emit SLASH
         | '=' -> emit EQ
         | '<' -> emit LT
         | '>' -> emit GT
         | other -> raise (Lex_error (Printf.sprintf "unexpected character %c" other)));
        incr i
    end
  done;
  emit EOF;
  Array.of_list (List.rev !out)

let token_to_string = function
  | KW k -> k
  | IDENT s -> s
  | NUMBER v -> Cm_rule.Value.to_string v
  | STRING s -> "'" ^ s ^ "'"
  | PARAM p -> "$" ^ p
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
