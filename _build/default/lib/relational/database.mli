(** In-memory relational engine — the "Sybase-class" Raw Information
    Source of the paper's running example (§4.2).

    Capabilities the CM-Translator builds on:

    - SQL text execution with [$x] parameters, so CM-RID command
      templates apply directly;
    - row-level CHECK constraints, rejected writes leaving the table
      unchanged — the {e local constraint manager} that the Demarcation
      Protocol delegates to (§6.1);
    - after-change observers (triggers), the basis of notify interfaces
      (§4.2.1: "declaring a database trigger on the data items").

    Execution is synchronous and deterministic; latency is modelled by
    the translator, not here.  SELECT without ORDER BY returns rows in
    insertion order. *)

type t

type error =
  | Parse_failed of string
  | Unknown_table of string
  | Unknown_column of { table : string; column : string }
  | Type_mismatch of string
  | Check_failed of string  (** the violated CHECK's text; table unchanged *)
  | Not_null_violated of string
  | Duplicate_key of string
  | Unbound_param of string
  | Table_exists of string

type result =
  | Rows of { columns : string list; rows : Cm_rule.Value.t list list }
  | Affected of int
  | Done  (** DDL *)

type change =
  | Inserted of { table : string; row : Row.t }
  | Updated of { table : string; old_row : Row.t; new_row : Row.t }
  | Deleted of { table : string; row : Row.t }

val create : unit -> t

val exec :
  t ->
  ?params:(string * Cm_rule.Value.t) list ->
  string ->
  (result, error) Stdlib.result
(** Parse and execute one statement. *)

val exec_stmt :
  t ->
  ?params:(string * Cm_rule.Value.t) list ->
  Sql_ast.stmt ->
  (result, error) Stdlib.result
(** Execute a pre-parsed statement (used on hot paths). *)

val on_change : t -> (change -> unit) -> unit
(** Register an after-change observer, called synchronously after each
    successful insert/update/delete, once per affected row.  Several
    observers run in registration order. *)

val table_names : t -> string list
val columns_of : t -> string -> string list option
val row_count : t -> string -> int option

val error_to_string : error -> string
