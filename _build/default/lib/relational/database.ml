module Value = Cm_rule.Value
open Sql_ast

type table = {
  cols : col_def list;
  checks : expr list;
  pk : string option;
  rows : (int, Row.t) Hashtbl.t;  (* rowid -> row *)
  pk_index : (Value.t, int) Hashtbl.t;
  mutable next_rowid : int;
}

type change =
  | Inserted of { table : string; row : Row.t }
  | Updated of { table : string; old_row : Row.t; new_row : Row.t }
  | Deleted of { table : string; row : Row.t }

type t = {
  tables : (string, table) Hashtbl.t;
  mutable observers : (change -> unit) list;  (* in registration order *)
}

type error =
  | Parse_failed of string
  | Unknown_table of string
  | Unknown_column of { table : string; column : string }
  | Type_mismatch of string
  | Check_failed of string
  | Not_null_violated of string
  | Duplicate_key of string
  | Unbound_param of string
  | Table_exists of string

type result =
  | Rows of { columns : string list; rows : Value.t list list }
  | Affected of int
  | Done

exception Fail of error

let error_to_string = function
  | Parse_failed m -> "parse error: " ^ m
  | Unknown_table t -> "unknown table " ^ t
  | Unknown_column { table; column } ->
    Printf.sprintf "unknown column %s in table %s" column table
  | Type_mismatch m -> "type mismatch: " ^ m
  | Check_failed c -> "CHECK constraint failed: " ^ c
  | Not_null_violated c -> "NOT NULL constraint failed on column " ^ c
  | Duplicate_key k -> "duplicate primary key " ^ k
  | Unbound_param p -> "unbound parameter $" ^ p
  | Table_exists t -> "table already exists: " ^ t

let create () = { tables = Hashtbl.create 8; observers = [] }

let on_change db f = db.observers <- db.observers @ [ f ]

let notify db change = List.iter (fun f -> f change) db.observers

let find_table db name =
  match Hashtbl.find_opt db.tables name with
  | Some tbl -> tbl
  | None -> raise (Fail (Unknown_table name))

let col_exists tbl name = List.exists (fun c -> c.col_name = name) tbl.cols

let require_col table_name tbl name =
  if not (col_exists tbl name) then
    raise (Fail (Unknown_column { table = table_name; column = name }))

(* --- expression evaluation (SQL null semantics, simplified) --- *)

let is_null = function Value.Null -> true | _ -> false

let rec eval params row e =
  match e with
  | Lit v -> v
  | Col name -> Row.get_or_null row name
  | Param p -> (
    match List.assoc_opt p params with
    | Some v -> v
    | None -> raise (Fail (Unbound_param p)))
  | Unary (Neg, e) ->
    let v = eval params row e in
    if is_null v then Value.Null
    else (try Value.neg v with Invalid_argument m -> raise (Fail (Type_mismatch m)))
  | Unary (Not, e) ->
    let v = eval params row e in
    if is_null v then Value.Bool true  (* two-valued: unknown counts as false *)
    else (
      try Value.Bool (not (Value.truthy v))
      with Invalid_argument m -> raise (Fail (Type_mismatch m)))
  | Is_null (e, negated) ->
    let v = eval params row e in
    Value.Bool (if negated then not (is_null v) else is_null v)
  | Binary (op, a, b) -> eval_binary params row op a b

and eval_binary params row op a b =
  match op with
  | And ->
    let truthy_of e =
      let v = eval params row e in
      (not (is_null v))
      &&
      (try Value.truthy v with Invalid_argument m -> raise (Fail (Type_mismatch m)))
    in
    Value.Bool (truthy_of a && truthy_of b)
  | Or ->
    let truthy_of e =
      let v = eval params row e in
      (not (is_null v))
      &&
      (try Value.truthy v with Invalid_argument m -> raise (Fail (Type_mismatch m)))
    in
    Value.Bool (truthy_of a || truthy_of b)
  | _ ->
    let va = eval params row a in
    let vb = eval params row b in
    if is_null va || is_null vb then
      (* Comparisons with NULL are false; arithmetic propagates NULL. *)
      (match op with
       | Eq | Ne | Lt | Le | Gt | Ge -> Value.Bool false
       | _ -> Value.Null)
    else (
      try
        match op with
        | Add -> Value.add va vb
        | Sub -> Value.sub va vb
        | Mul -> Value.mul va vb
        | Div -> Value.div va vb
        | Eq -> Value.Bool (Value.equal va vb)
        | Ne -> Value.Bool (not (Value.equal va vb))
        | Lt -> Value.Bool (Value.compare va vb < 0)
        | Le -> Value.Bool (Value.compare va vb <= 0)
        | Gt -> Value.Bool (Value.compare va vb > 0)
        | Ge -> Value.Bool (Value.compare va vb >= 0)
        | And | Or -> assert false
      with Invalid_argument m -> raise (Fail (Type_mismatch m)))

let truthy params row e =
  let v = eval params row e in
  (not (is_null v))
  && (try Value.truthy v with Invalid_argument m -> raise (Fail (Type_mismatch m)))

(* --- integrity checks --- *)

let value_fits col v =
  match col.col_type, v with
  | _, Value.Null -> true  (* NOT NULL handled separately *)
  | T_int, Value.Int _ -> true
  | T_real, (Value.Int _ | Value.Float _) -> true
  | T_text, Value.Str _ -> true
  | T_bool, Value.Bool _ -> true
  | _ -> false

let validate_row table_name tbl row =
  List.iter
    (fun col ->
      let v = Row.get_or_null row col.col_name in
      if not (value_fits col v) then
        raise
          (Fail
             (Type_mismatch
                (Printf.sprintf "%s.%s (%s) cannot hold %s" table_name col.col_name
                   (col_type_to_string col.col_type)
                   (Value.to_string v))));
      if col.not_null && is_null v then raise (Fail (Not_null_violated col.col_name)))
    tbl.cols;
  List.iter
    (fun check ->
      if not (truthy [] row check) then raise (Fail (Check_failed (expr_to_string check))))
    tbl.checks

(* --- statement execution --- *)

let rows_in_order tbl =
  Hashtbl.fold (fun rowid row acc -> (rowid, row) :: acc) tbl.rows []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let matching params tbl where =
  let keep (_, row) =
    match where with None -> true | Some e -> truthy params row e
  in
  List.filter keep (rows_in_order tbl)

let exec_create db table cols checks =
  if Hashtbl.mem db.tables table then raise (Fail (Table_exists table));
  if cols = [] then raise (Fail (Parse_failed "a table needs at least one column"));
  let pks = List.filter (fun c -> c.primary_key) cols in
  let pk =
    match pks with
    | [] -> None
    | [ c ] -> Some c.col_name
    | _ -> raise (Fail (Parse_failed "multiple PRIMARY KEY columns"))
  in
  (* CHECK expressions may only reference declared columns. *)
  let rec check_cols e =
    match e with
    | Col name ->
      if not (List.exists (fun c -> c.col_name = name) cols) then
        raise (Fail (Unknown_column { table; column = name }))
    | Unary (_, e) | Is_null (e, _) -> check_cols e
    | Binary (_, a, b) ->
      check_cols a;
      check_cols b
    | Lit _ | Param _ -> ()
  in
  List.iter check_cols checks;
  Hashtbl.replace db.tables table
    { cols; checks; pk; rows = Hashtbl.create 64; pk_index = Hashtbl.create 64;
      next_rowid = 0 };
  Done

let exec_insert db params table cols values =
  let tbl = find_table db table in
  let col_names =
    match cols with
    | Some cs ->
      List.iter (require_col table tbl) cs;
      cs
    | None -> List.map (fun c -> c.col_name) tbl.cols
  in
  if List.length col_names <> List.length values then
    raise (Fail (Parse_failed "column/value count mismatch"));
  let row =
    List.fold_left2
      (fun row name e -> Row.set row name (eval params Row.empty e))
      Row.empty col_names values
  in
  (* Missing columns default to NULL. *)
  let row =
    List.fold_left
      (fun row col ->
        match Row.get row col.col_name with
        | Some _ -> row
        | None -> Row.set row col.col_name Value.Null)
      row tbl.cols
  in
  validate_row table tbl row;
  (match tbl.pk with
   | None -> ()
   | Some pk_col ->
     let key = Row.get_or_null row pk_col in
     if Hashtbl.mem tbl.pk_index key then
       raise (Fail (Duplicate_key (Value.to_string key))));
  let rowid = tbl.next_rowid in
  tbl.next_rowid <- rowid + 1;
  Hashtbl.replace tbl.rows rowid row;
  (match tbl.pk with
   | None -> ()
   | Some pk_col -> Hashtbl.replace tbl.pk_index (Row.get_or_null row pk_col) rowid);
  notify db (Inserted { table; row });
  Affected 1

let exec_update db params table sets where =
  let tbl = find_table db table in
  List.iter (fun (c, _) -> require_col table tbl c) sets;
  let targets = matching params tbl where in
  (* Two-phase: validate all updated rows first so a CHECK failure leaves
     the table untouched (statement atomicity). *)
  let updated =
    List.map
      (fun (rowid, old_row) ->
        let new_row =
          List.fold_left
            (fun row (c, e) -> Row.set row c (eval params old_row e))
            old_row sets
        in
        validate_row table tbl new_row;
        (rowid, old_row, new_row))
      targets
  in
  (match tbl.pk with
   | None -> ()
   | Some pk_col ->
     List.iter
       (fun (rowid, old_row, new_row) ->
         let old_key = Row.get_or_null old_row pk_col in
         let new_key = Row.get_or_null new_row pk_col in
         if not (Value.equal old_key new_key) then begin
           (match Hashtbl.find_opt tbl.pk_index new_key with
            | Some other when other <> rowid ->
              raise (Fail (Duplicate_key (Value.to_string new_key)))
            | _ -> ())
         end)
       updated);
  List.iter
    (fun (rowid, old_row, new_row) ->
      Hashtbl.replace tbl.rows rowid new_row;
      (match tbl.pk with
       | None -> ()
       | Some pk_col ->
         let old_key = Row.get_or_null old_row pk_col in
         let new_key = Row.get_or_null new_row pk_col in
         if not (Value.equal old_key new_key) then begin
           Hashtbl.remove tbl.pk_index old_key;
           Hashtbl.replace tbl.pk_index new_key rowid
         end);
      if not (Row.equal old_row new_row) then
        notify db (Updated { table; old_row; new_row }))
    updated;
  Affected (List.length updated)

let exec_delete db params table where =
  let tbl = find_table db table in
  let targets = matching params tbl where in
  List.iter
    (fun (rowid, row) ->
      Hashtbl.remove tbl.rows rowid;
      (match tbl.pk with
       | None -> ()
       | Some pk_col -> Hashtbl.remove tbl.pk_index (Row.get_or_null row pk_col));
      notify db (Deleted { table; row }))
    targets;
  Affected (List.length targets)

let aggregate_value agg rows col =
  match agg, col with
  | Count, None -> Value.Int (List.length rows)
  | Count, Some col ->
    Value.Int
      (List.length
         (List.filter (fun (_, row) -> not (is_null (Row.get_or_null row col))) rows))
  | (Sum | Min | Max | Avg), None ->
    raise (Fail (Parse_failed "aggregate needs a column"))
  | (Sum | Min | Max | Avg), Some col ->
    let values =
      List.filter_map
        (fun (_, row) ->
          let v = Row.get_or_null row col in
          if is_null v then None else Some v)
        rows
    in
    (match values with
     | [] -> Value.Null
     | first :: rest -> (
       try
         match agg with
         | Sum -> List.fold_left Value.add first rest
         | Min ->
           List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) first rest
         | Max ->
           List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) first rest
         | Avg ->
           Value.div (List.fold_left Value.add first rest)
             (Value.Int (List.length values))
         | Count -> assert false
       with Invalid_argument m -> raise (Fail (Type_mismatch m))))

let exec_select db params table projection where group_by order_by =
  let tbl = find_table db table in
  let rows = matching params tbl where in
  let items =
    match projection with
    | None -> List.map (fun c -> Sql_ast.S_col c.col_name) tbl.cols
    | Some items -> items
  in
  List.iter
    (function
      | Sql_ast.S_col c | Sql_ast.S_agg (_, Some c) -> require_col table tbl c
      | Sql_ast.S_agg (_, None) -> ())
    items;
  let has_agg =
    List.exists (function Sql_ast.S_agg _ -> true | Sql_ast.S_col _ -> false) items
  in
  let columns = List.map Sql_ast.sel_item_to_string items in
  if has_agg || group_by <> None then begin
    (* Aggregate query: plain columns must be the GROUP BY column. *)
    (match group_by with Some g -> require_col table tbl g | None -> ());
    List.iter
      (function
        | Sql_ast.S_col c when group_by <> Some c ->
          raise
            (Fail
               (Parse_failed
                  (Printf.sprintf "column %s is neither aggregated nor grouped" c)))
        | _ -> ())
      items;
    let groups =
      match group_by with
      | None -> [ (Value.Null, rows) ]
      | Some g ->
        let table_ = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun ((_, row) as entry) ->
            let key = Row.get_or_null row g in
            let key_str = Value.to_string key in
            match Hashtbl.find_opt table_ key_str with
            | Some bucket -> bucket := entry :: !bucket
            | None ->
              Hashtbl.replace table_ key_str (ref [ entry ]);
              order := (key_str, key) :: !order)
          rows;
        List.rev_map
          (fun (key_str, key) ->
            (key, List.rev !(Hashtbl.find table_ key_str)))
          !order
        |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
    in
    let project_group (key, group_rows) =
      List.map
        (function
          | Sql_ast.S_col _ -> key
          | Sql_ast.S_agg (agg, col) -> aggregate_value agg group_rows col)
        items
    in
    Rows { columns; rows = List.map project_group groups }
  end
  else begin
    let rows =
      match order_by with
      | None -> rows
      | Some (col, dir) ->
        require_col table tbl col;
        let cmp (_, a) (_, b) =
          let c = Value.compare (Row.get_or_null a col) (Row.get_or_null b col) in
          match dir with Asc -> c | Desc -> -c
        in
        List.stable_sort cmp rows
    in
    let cols =
      List.map
        (function Sql_ast.S_col c -> c | Sql_ast.S_agg _ -> assert false)
        items
    in
    let project (_, row) = List.map (Row.get_or_null row) cols in
    Rows { columns; rows = List.map project rows }
  end

let exec_stmt db ?(params = []) stmt =
  try
    Ok
      (match stmt with
       | Create_table { table; cols; checks } -> exec_create db table cols checks
       | Insert { table; cols; values } -> exec_insert db params table cols values
       | Update { table; sets; where } -> exec_update db params table sets where
       | Delete { table; where } -> exec_delete db params table where
       | Select { table; projection; where; group_by; order_by } ->
         exec_select db params table projection where group_by order_by
       | Drop_table { table } ->
         ignore (find_table db table);
         Hashtbl.remove db.tables table;
         Done)
  with Fail e -> Error e

let exec db ?params src =
  match Sql_parser.parse src with
  | exception Sql_parser.Parse_error m -> Error (Parse_failed m)
  | stmt -> exec_stmt db ?params stmt

let table_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.tables [] |> List.sort compare

let columns_of db name =
  Option.map
    (fun tbl -> List.map (fun c -> c.col_name) tbl.cols)
    (Hashtbl.find_opt db.tables name)

let row_count db name =
  Option.map (fun tbl -> Hashtbl.length tbl.rows) (Hashtbl.find_opt db.tables name)
