type col_type = T_int | T_real | T_text | T_bool

type expr =
  | Lit of Cm_rule.Value.t
  | Col of string
  | Param of string
  | Unary of unary * expr
  | Binary of binary * expr * expr
  | Is_null of expr * bool

and unary = Neg | Not

and binary = Add | Sub | Mul | Div | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type col_def = {
  col_name : string;
  col_type : col_type;
  primary_key : bool;
  not_null : bool;
}

type order = Asc | Desc

type agg = Count | Sum | Min | Max | Avg

type sel_item =
  | S_col of string
  | S_agg of agg * string option

type stmt =
  | Create_table of { table : string; cols : col_def list; checks : expr list }
  | Insert of { table : string; cols : string list option; values : expr list }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Select of {
      table : string;
      projection : sel_item list option;
      where : expr option;
      group_by : string option;
      order_by : (string * order) option;
    }
  | Drop_table of { table : string }

let col_type_to_string = function
  | T_int -> "INT"
  | T_real -> "REAL"
  | T_text -> "TEXT"
  | T_bool -> "BOOL"

let agg_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Avg -> "AVG"

let sel_item_to_string = function
  | S_col c -> c
  | S_agg (a, None) -> agg_to_string a ^ "(*)"
  | S_agg (a, Some c) -> agg_to_string a ^ "(" ^ c ^ ")"

let binary_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let rec expr_to_string = function
  | Lit v -> (
    match v with
    | Cm_rule.Value.Str s -> "'" ^ s ^ "'"
    | other -> Cm_rule.Value.to_string other)
  | Col c -> c
  | Param p -> "$" ^ p
  | Unary (Neg, e) -> "-" ^ atom e
  | Unary (Not, e) -> "NOT " ^ atom e
  | Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binary_to_string op)
      (expr_to_string b)
  | Is_null (e, false) -> atom e ^ " IS NULL"
  | Is_null (e, true) -> atom e ^ " IS NOT NULL"

and atom e =
  match e with
  | Lit _ | Col _ | Param _ -> expr_to_string e
  | _ -> "(" ^ expr_to_string e ^ ")"

let where_to_string = function
  | None -> ""
  | Some e -> " WHERE " ^ expr_to_string e

let stmt_to_string = function
  | Create_table { table; cols; checks } ->
    let col_def c =
      Printf.sprintf "%s %s%s%s" c.col_name
        (col_type_to_string c.col_type)
        (if c.primary_key then " PRIMARY KEY" else "")
        (if c.not_null then " NOT NULL" else "")
    in
    let parts =
      List.map col_def cols
      @ List.map (fun e -> "CHECK (" ^ expr_to_string e ^ ")") checks
    in
    Printf.sprintf "CREATE TABLE %s (%s)" table (String.concat ", " parts)
  | Insert { table; cols; values } ->
    let cols_part =
      match cols with None -> "" | Some cs -> " (" ^ String.concat ", " cs ^ ")"
    in
    Printf.sprintf "INSERT INTO %s%s VALUES (%s)" table cols_part
      (String.concat ", " (List.map expr_to_string values))
  | Update { table; sets; where } ->
    Printf.sprintf "UPDATE %s SET %s%s" table
      (String.concat ", "
         (List.map (fun (c, e) -> c ^ " = " ^ expr_to_string e) sets))
      (where_to_string where)
  | Delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" table (where_to_string where)
  | Select { table; projection; where; group_by; order_by } ->
    let proj =
      match projection with
      | None -> "*"
      | Some items -> String.concat ", " (List.map sel_item_to_string items)
    in
    let group = match group_by with None -> "" | Some c -> " GROUP BY " ^ c in
    let order =
      match order_by with
      | None -> ""
      | Some (c, Asc) -> " ORDER BY " ^ c
      | Some (c, Desc) -> " ORDER BY " ^ c ^ " DESC"
    in
    Printf.sprintf "SELECT %s FROM %s%s%s%s" proj table (where_to_string where) group
      order
  | Drop_table { table } -> Printf.sprintf "DROP TABLE %s" table
