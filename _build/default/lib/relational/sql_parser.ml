open Sql_ast

exception Parse_error of string

type stream = { tokens : Sql_lexer.token array; mutable pos : int }

let error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st token what =
  if peek st = token then advance st
  else error "expected %s, found %s" what (Sql_lexer.token_to_string (peek st))

let expect_kw st kw = expect st (Sql_lexer.KW kw) kw

let ident st =
  match peek st with
  | Sql_lexer.IDENT s ->
    advance st;
    s
  | other -> error "expected an identifier, found %s" (Sql_lexer.token_to_string other)

let accept_kw st kw =
  if peek st = Sql_lexer.KW kw then begin
    advance st;
    true
  end
  else false

(* --- expressions --- *)

let rec parse_or st =
  let left = parse_and st in
  if accept_kw st "OR" then Binary (Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept_kw st "AND" then Binary (And, left, parse_and st) else left

and parse_not st =
  if accept_kw st "NOT" then Unary (Not, parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  match peek st with
  | Sql_lexer.EQ ->
    advance st;
    Binary (Eq, left, parse_add st)
  | Sql_lexer.NE ->
    advance st;
    Binary (Ne, left, parse_add st)
  | Sql_lexer.LT ->
    advance st;
    Binary (Lt, left, parse_add st)
  | Sql_lexer.LE ->
    advance st;
    Binary (Le, left, parse_add st)
  | Sql_lexer.GT ->
    advance st;
    Binary (Gt, left, parse_add st)
  | Sql_lexer.GE ->
    advance st;
    Binary (Ge, left, parse_add st)
  | Sql_lexer.KW "IS" ->
    advance st;
    let negated = accept_kw st "NOT" in
    expect_kw st "NULL";
    Is_null (left, negated)
  | _ -> left

and parse_add st =
  let rec loop left =
    match peek st with
    | Sql_lexer.PLUS ->
      advance st;
      loop (Binary (Add, left, parse_mul st))
    | Sql_lexer.MINUS ->
      advance st;
      loop (Binary (Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | Sql_lexer.STAR ->
      advance st;
      loop (Binary (Mul, left, parse_unary st))
    | Sql_lexer.SLASH ->
      advance st;
      loop (Binary (Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  if peek st = Sql_lexer.MINUS then begin
    advance st;
    Unary (Neg, parse_unary st)
  end
  else parse_primary st

and parse_primary st =
  match peek st with
  | Sql_lexer.NUMBER v ->
    advance st;
    Lit v
  | Sql_lexer.STRING s ->
    advance st;
    Lit (Cm_rule.Value.Str s)
  | Sql_lexer.PARAM p ->
    advance st;
    Param p
  | Sql_lexer.KW "TRUE" ->
    advance st;
    Lit (Cm_rule.Value.Bool true)
  | Sql_lexer.KW "FALSE" ->
    advance st;
    Lit (Cm_rule.Value.Bool false)
  | Sql_lexer.KW "NULL" ->
    advance st;
    Lit Cm_rule.Value.Null
  | Sql_lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Sql_lexer.RPAREN ")";
    e
  | Sql_lexer.IDENT name ->
    advance st;
    Col name
  | other -> error "expected an expression, found %s" (Sql_lexer.token_to_string other)

(* --- statements --- *)

let parse_col_type st =
  match peek st with
  | Sql_lexer.KW "INT" ->
    advance st;
    T_int
  | Sql_lexer.KW "REAL" ->
    advance st;
    T_real
  | Sql_lexer.KW "TEXT" ->
    advance st;
    T_text
  | Sql_lexer.KW "BOOL" ->
    advance st;
    T_bool
  | other -> error "expected a column type, found %s" (Sql_lexer.token_to_string other)

let parse_create st =
  expect_kw st "TABLE";
  let table = ident st in
  expect st Sql_lexer.LPAREN "(";
  let cols = ref [] in
  let checks = ref [] in
  let parse_element () =
    if accept_kw st "CHECK" then begin
      expect st Sql_lexer.LPAREN "(";
      let e = parse_or st in
      expect st Sql_lexer.RPAREN ")";
      checks := e :: !checks
    end
    else begin
      let col_name = ident st in
      let col_type = parse_col_type st in
      let primary_key =
        if accept_kw st "PRIMARY" then begin
          expect_kw st "KEY";
          true
        end
        else false
      in
      let not_null =
        if accept_kw st "NOT" then begin
          expect_kw st "NULL";
          true
        end
        else false
      in
      cols := { col_name; col_type; primary_key; not_null } :: !cols
    end
  in
  parse_element ();
  while peek st = Sql_lexer.COMMA do
    advance st;
    parse_element ()
  done;
  expect st Sql_lexer.RPAREN ")";
  Create_table { table; cols = List.rev !cols; checks = List.rev !checks }

let parse_insert st =
  expect_kw st "INTO";
  let table = ident st in
  let cols =
    if peek st = Sql_lexer.LPAREN then begin
      advance st;
      let first = ident st in
      let rec more acc =
        if peek st = Sql_lexer.COMMA then begin
          advance st;
          more (ident st :: acc)
        end
        else List.rev acc
      in
      let cs = more [ first ] in
      expect st Sql_lexer.RPAREN ")";
      Some cs
    end
    else None
  in
  expect_kw st "VALUES";
  expect st Sql_lexer.LPAREN "(";
  let first = parse_or st in
  let rec more acc =
    if peek st = Sql_lexer.COMMA then begin
      advance st;
      more (parse_or st :: acc)
    end
    else List.rev acc
  in
  let values = more [ first ] in
  expect st Sql_lexer.RPAREN ")";
  Insert { table; cols; values }

let parse_where_opt st =
  if accept_kw st "WHERE" then Some (parse_or st) else None

let parse_update st =
  let table = ident st in
  expect_kw st "SET";
  let parse_set () =
    let col = ident st in
    expect st Sql_lexer.EQ "=";
    (col, parse_or st)
  in
  let first = parse_set () in
  let rec more acc =
    if peek st = Sql_lexer.COMMA then begin
      advance st;
      more (parse_set () :: acc)
    end
    else List.rev acc
  in
  let sets = more [ first ] in
  let where = parse_where_opt st in
  Update { table; sets; where }

let parse_delete st =
  expect_kw st "FROM";
  let table = ident st in
  let where = parse_where_opt st in
  Delete { table; where }

let agg_of_kw = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "AVG" -> Some Avg
  | _ -> None

let parse_sel_item st =
  match peek st with
  | Sql_lexer.KW kw when agg_of_kw kw <> None -> (
    let agg = Option.get (agg_of_kw kw) in
    advance st;
    expect st Sql_lexer.LPAREN "(";
    match peek st with
    | Sql_lexer.STAR ->
      advance st;
      expect st Sql_lexer.RPAREN ")";
      if agg <> Count then error "only COUNT accepts *";
      S_agg (Count, None)
    | _ ->
      let col = ident st in
      expect st Sql_lexer.RPAREN ")";
      S_agg (agg, Some col))
  | _ -> S_col (ident st)

let parse_select st =
  let projection =
    if peek st = Sql_lexer.STAR then begin
      advance st;
      None
    end
    else begin
      let first = parse_sel_item st in
      let rec more acc =
        if peek st = Sql_lexer.COMMA then begin
          advance st;
          more (parse_sel_item st :: acc)
        end
        else List.rev acc
      in
      Some (more [ first ])
    end
  in
  expect_kw st "FROM";
  let table = ident st in
  let where = parse_where_opt st in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      Some (ident st)
    end
    else None
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let col = ident st in
      let dir = if accept_kw st "DESC" then Desc else (ignore (accept_kw st "ASC"); Asc) in
      Some (col, dir)
    end
    else None
  in
  Select { table; projection; where; group_by; order_by }

let parse_drop st =
  expect_kw st "TABLE";
  Drop_table { table = ident st }

let parse_stmt st =
  match peek st with
  | Sql_lexer.KW "CREATE" ->
    advance st;
    parse_create st
  | Sql_lexer.KW "INSERT" ->
    advance st;
    parse_insert st
  | Sql_lexer.KW "UPDATE" ->
    advance st;
    parse_update st
  | Sql_lexer.KW "DELETE" ->
    advance st;
    parse_delete st
  | Sql_lexer.KW "SELECT" ->
    advance st;
    parse_select st
  | Sql_lexer.KW "DROP" ->
    advance st;
    parse_drop st
  | other -> error "expected a statement, found %s" (Sql_lexer.token_to_string other)

let with_stream src f =
  let tokens =
    (* Strip one trailing semicolon: common in hand-written CM-RIDs. *)
    let src = String.trim src in
    let src =
      if String.length src > 0 && src.[String.length src - 1] = ';' then
        String.sub src 0 (String.length src - 1)
      else src
    in
    try Sql_lexer.tokenize src with Sql_lexer.Lex_error m -> raise (Parse_error m)
  in
  let st = { tokens; pos = 0 } in
  let result = f st in
  if peek st <> Sql_lexer.EOF then
    error "trailing input: %s" (Sql_lexer.token_to_string (peek st));
  result

let parse src = with_stream src parse_stmt
let parse_expr src = with_stream src parse_or
