(** SQL tokenizer.  Keywords are case-insensitive; identifiers keep their
    case; strings use single quotes with [''] escaping; [$name] is a
    parameter; [--] comments run to end of line. *)

type token =
  | KW of string  (** upper-cased keyword *)
  | IDENT of string
  | NUMBER of Cm_rule.Value.t
  | STRING of string
  | PARAM of string
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string

val tokenize : string -> token array
val token_to_string : token -> string
