type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let fit ncols row =
  let rec go i = function
    | [] -> if i < ncols then "" :: go (i + 1) [] else []
    | x :: rest -> if i >= ncols then [] else x :: go (i + 1) rest
  in
  go 0 row

let add_row t row = t.rows <- fit (List.length t.columns) row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let cell_pct v = Printf.sprintf "%.1f%%" (v *. 100.0)
let cell_bool b = if b then "yes" else "no"
