let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    let idx = max 0 (min (n - 1) idx) in
    List.nth sorted idx

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  match xs with
  | [] -> []
  | _ ->
    let lo, hi = min_max xs in
    let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int buckets in
    let counts = Array.make buckets 0 in
    let place x =
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (buckets - 1) i) in
      counts.(i) <- counts.(i) + 1
    in
    List.iter place xs;
    List.init buckets (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))
