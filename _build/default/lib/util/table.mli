(** Plain-text table rendering for experiment output.

    The benchmark harness prints every reproduced experiment as one of
    these tables, so the format is deliberately stable: a header row, a
    rule, then data rows, columns padded to the widest cell. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    are truncated. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Full rendering including the title line. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_f : ?digits:int -> float -> string
(** Float cell with fixed [digits] (default 2). *)

val cell_pct : float -> string
(** Ratio in [\[0,1\]] rendered as a percentage with one decimal. *)

val cell_bool : bool -> string
(** ["yes"] / ["no"] — used by guarantee-validity matrices. *)
