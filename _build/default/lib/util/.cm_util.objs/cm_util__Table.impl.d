lib/util/table.ml: Array Buffer List Printf String
