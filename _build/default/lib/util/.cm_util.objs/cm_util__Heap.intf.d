lib/util/heap.mli:
