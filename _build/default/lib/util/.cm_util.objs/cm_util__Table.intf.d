lib/util/table.mli:
