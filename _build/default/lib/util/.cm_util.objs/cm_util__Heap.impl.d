lib/util/heap.ml: List
