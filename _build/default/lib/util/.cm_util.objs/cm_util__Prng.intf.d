lib/util/prng.mli:
