lib/util/stats.mli:
