type step = { guard : Expr.t; template : Template.t }

type rhs =
  | False
  | Steps of step list

type t = {
  id : string;
  lhs : Template.t;
  lhs_cond : Expr.t;
  delta : float;
  rhs : rhs;
}

let counter = ref 0

let fresh_id () =
  incr counter;
  "r" ^ string_of_int !counter

let make ?id ?(lhs_cond = Expr.Const (Value.Bool true)) ?(delta = infinity) ~lhs rhs =
  if delta < 0.0 then invalid_arg "Rule.make: negative delta";
  if Template.is_false lhs then invalid_arg "Rule.make: FALSE cannot be a trigger";
  (match rhs with
   | Steps [] -> invalid_arg "Rule.make: empty right-hand side"
   | False | Steps _ -> ());
  let id = match id with Some i -> i | None -> fresh_id () in
  { id; lhs; lhs_cond; delta; rhs }

let rhs_steps t = match t.rhs with False -> [] | Steps steps -> steps

let first_item_site steps locator =
  List.find_map (fun s -> Template.site s.template locator) steps

let rhs_site t locator = first_item_site (rhs_steps t) locator

let lhs_site t locator =
  match Template.site t.lhs locator with
  | Some s -> Some s
  | None -> rhs_site t locator

(* Variables a guard can *introduce*: unbound variables appearing as one
   side of a positive equality (the binding-equality convention). *)
let rec binding_vars = function
  | Expr.Binop (Expr.Eq, Expr.Var x, e) | Expr.Binop (Expr.Eq, e, Expr.Var x) ->
    x :: Expr.free_vars e
  | Expr.Binop (Expr.And, a, b) -> binding_vars a @ binding_vars b
  | _ -> []

let check_well_formed t locator =
  let ( let* ) r f = Result.bind r f in
  let steps = rhs_steps t in
  (* One site for the whole RHS. *)
  let sites =
    List.filter_map (fun s -> Template.site s.template locator) steps
    |> List.sort_uniq String.compare
  in
  let* () =
    match sites with
    | [] | [ _ ] -> Ok ()
    | many ->
      Error
        (Printf.sprintf "rule %s: right-hand side spans several sites: %s" t.id
           (String.concat ", " many))
  in
  (* Every RHS parameter must be bound when its step executes. *)
  let bound = ref (Template.free_vars t.lhs @ binding_vars t.lhs_cond) in
  let check_step i step =
    let guard_bindings = binding_vars step.guard in
    let available = guard_bindings @ !bound in
    let missing =
      List.filter
        (fun x -> not (List.mem x available))
        (Template.free_vars step.template)
    in
    bound := available;
    match missing with
    | [] -> Ok ()
    | xs ->
      Error
        (Printf.sprintf "rule %s: step %d uses unbound parameter(s) %s" t.id (i + 1)
           (String.concat ", " xs))
  in
  let rec check_all i = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = check_step i s in
      check_all (i + 1) rest
  in
  check_all 0 steps

let free_vars t =
  let all =
    Template.free_vars t.lhs
    @ Expr.free_vars t.lhs_cond
    @ List.concat_map
        (fun s -> Expr.free_vars s.guard @ Template.free_vars s.template)
        (rhs_steps t)
  in
  List.sort_uniq String.compare all

let is_true_guard = function Expr.Const (Value.Bool true) -> true | _ -> false

let delta_string d = if d = infinity then "" else Printf.sprintf "[%g]" d

let to_string t =
  let lhs =
    if is_true_guard t.lhs_cond then Template.to_string t.lhs
    else Template.to_string t.lhs ^ " && " ^ Expr.to_string t.lhs_cond
  in
  let rhs =
    match t.rhs with
    | False -> "FALSE"
    | Steps steps ->
      String.concat ", "
        (List.map
           (fun s ->
             if is_true_guard s.guard then Template.to_string s.template
             else
               Printf.sprintf "(%s) ? %s" (Expr.to_string s.guard)
                 (Template.to_string s.template))
           steps)
  in
  Printf.sprintf "%s: %s ->%s %s" t.id lhs (delta_string t.delta) rhs

let pp fmt t = Format.pp_print_string fmt (to_string t)
