(** Per-item value histories reconstructed from a trace.

    Interpretations in the formal model (Appendix A.2, properties 2–3)
    change only at write events; a timeline is exactly that sequence of
    interpretations, indexed by item.  [W] and [Ws] events set a value;
    [INS] brings an item into existence (value [Null] until written);
    [DEL] removes it.  Guarantee predicates [(X = v)@t] and [E(X)@t]
    are answered by {!value_at} and {!exists_at}. *)

type t

val of_trace : ?initial:(Item.t * Value.t) list -> Trace.t -> t
(** Items in [initial] exist from time 0 with the given values. *)

val items : t -> Item.t list

val value_at : t -> Item.t -> float -> Value.t option
(** [None] if the item does not exist at that time.  At a change point
    the new value is in effect (events take effect at their time). *)

val exists_at : t -> Item.t -> float -> bool

val changes : t -> Item.t -> (float * Value.t option) list
(** All change points ([None] = deleted), in time order, including the
    initial point if the item existed initially. *)

val values_taken : t -> Item.t -> (float * Value.t) list
(** The (time, value) sequence of values the item held, collapsing
    consecutive duplicates — the basis for "X leads Y"-style checks. *)

val change_times : t -> float list
(** Sorted times at which {e any} item changed; used to sample conditions
    over a window. *)

val lookup_fun : t -> float -> Item.t -> Value.t option
(** [lookup_fun tl time] as an {!Expr.state}-compatible oracle for the
    state at [time]. *)
