(** Rules: the common specification form for interfaces and strategies.

    The general form (Appendix A.1) is

    {v E0 ∧ C0  →δ  C1?E1, C2?E2, …, Ck?Ek v}

    If an event matching template [E0] occurs at time [t] with condition
    [C0] true, then there exist times [t ≤ t1 < … < tk ≤ t + δ] such that
    at each [ti] condition [Ci] is evaluated and, if true, an event
    matching [Ei] occurs.  All right-hand-side events share one site, and
    every condition refers only to data local to that site (§3.2) — this
    is what lets strategies execute without global transactions (§7.2).

    Interface statements (§3.1) are rules whose conditions sit on the
    left ([E ∧ C →δ E']); the same representation serves both by keeping
    [C0] on the LHS and per-step guards on the RHS. *)

type step = { guard : Expr.t; template : Template.t }
(** One right-hand-side element; [guard] is [Const (Bool true)] when the
    condition was omitted. *)

type rhs =
  | False  (** the prohibition form [E → ℱ] *)
  | Steps of step list

type t = {
  id : string;  (** unique label, used in event provenance and routing *)
  lhs : Template.t;
  lhs_cond : Expr.t;
  delta : float;  (** time bound δ; [infinity] when unspecified *)
  rhs : rhs;
}

val make :
  ?id:string ->
  ?lhs_cond:Expr.t ->
  ?delta:float ->
  lhs:Template.t ->
  rhs ->
  t
(** Missing [id]s are generated ("r1", "r2", …); default [lhs_cond] is
    true; default [delta] is [infinity].
    @raise Invalid_argument if [delta] is negative, the LHS is ℱ, or the
    RHS is empty. *)

val rhs_steps : t -> step list
(** [] for [False]. *)

val lhs_site : t -> Item.locator -> Item.site option
(** Site responsible for detecting the trigger: the site of the LHS
    template's item, or of the first RHS item for item-free LHS forms
    such as [P(p)] (the paper assigns polling rules to the shell that
    owns the polled item). *)

val rhs_site : t -> Item.locator -> Item.site option
(** The single site of the right-hand side.  [None] when no RHS template
    mentions an item (pure CM-internal chaining). *)

val check_well_formed : t -> Item.locator -> (unit, string) result
(** Static checks: RHS events all at one site; RHS parameters bound by
    the LHS template, the LHS condition, or a preceding binding guard;
    standard-name arities respected (enforced at template construction).
    The toolkit refuses ill-formed strategy files. *)

val free_vars : t -> string list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
