(** Event templates and matching interpretations (Appendix A.1).

    A template is an event descriptor whose arguments may be parameters
    ([Var]), wild-cards, parameterized item references, or constants.  An
    event {e matches} a template when some interpretation of the
    template's parameters, substituted into the template, yields the
    event's descriptor; {!matches} computes that matching interpretation
    [mi(E, ℰ)], extending a seed environment (bindings carried over from
    the rule's left-hand side).

    The special false template [ℱ] matches no event — it expresses
    prohibitions such as the "no spontaneous writes" interface
    [Ws(X, b) → ℱ]. *)

type t = { name : string; args : Expr.t list }

val make : string -> Expr.t list -> t
(** @raise Invalid_argument if an argument is not a valid template
    argument form (see {!Expr.is_template_arg}) or the name is a standard
    descriptor name used at the wrong arity.  The two-argument [Ws] form
    is accepted and normalized by inserting a wildcard old-value. *)

val false_ : t
(** The never-matching template ℱ. *)

val is_false : t -> bool

val matches : t -> Event.desc -> seed:Expr.env -> Expr.env option
(** [matches tpl desc ~seed] is [Some env] iff [desc] matches [tpl] under
    some extension [env] of [seed].  Parameters already bound in [seed]
    must agree with the event. *)

val instantiate : t -> Expr.env -> Event.desc
(** Substitute bound parameters into the template, producing a concrete
    descriptor.  @raise Expr.Eval_error on unbound parameters or
    wild-cards (a right-hand-side template must be fully instantiable). *)

val item_base : t -> string option
(** Base name of the first item argument — used with an item locator to
    resolve the template's site. *)

val site : t -> Item.locator -> Item.site option
(** Site of the first item argument.  Parameterized items resolve by base
    name with no parameters, so locators must assign sites per base name
    (all instances of a parameterized family live at one site, as in the
    paper's examples).  [None] for item-free templates such as [P(p)]. *)

val free_vars : t -> string list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
