type t = { name : string; args : Expr.t list }

let false_name = "FALSE"

let false_ = { name = false_name; args = [] }

let is_false t = String.equal t.name false_name

let make name args =
  let args =
    (* Paper shorthand: Ws(X, b) abbreviates Ws(X, *, b). *)
    match name, args with
    | "Ws", [ item; v ] -> [ item; Expr.Wildcard; v ]
    | _ -> args
  in
  List.iter
    (fun a ->
      if not (Expr.is_template_arg a) then
        invalid_arg
          (Printf.sprintf "Template.make: %s is not a template argument" (Expr.to_string a)))
    args;
  (match Event.known_arity name with
   | Some n when n <> List.length args ->
     invalid_arg
       (Printf.sprintf "Template.make: %s expects %d arguments, got %d" name n
          (List.length args))
   | _ -> ());
  { name; args }

let match_value x v env =
  match Expr.Env.find_opt x env with
  | None -> Some (Expr.Env.add x (Expr.Bval v) env)
  | Some (Expr.Bval v') -> if Value.equal v v' then Some env else None
  | Some (Expr.Bitem _) -> None

let match_item_binding x item env =
  match Expr.Env.find_opt x env with
  | None -> Some (Expr.Env.add x (Expr.Bitem item) env)
  | Some (Expr.Bitem it') -> if Item.equal item it' then Some env else None
  | Some (Expr.Bval _) -> None

let rec match_args targs eargs env =
  match targs, eargs with
  | [], [] -> Some env
  | [], _ | _, [] -> None
  | targ :: targs, earg :: eargs -> (
    match match_arg targ earg env with
    | None -> None
    | Some env -> match_args targs eargs env)

and match_arg targ earg env =
  match targ, earg with
  | Expr.Wildcard, _ -> Some env
  | Expr.Const c, Event.Av v -> if Value.equal c v then Some env else None
  | Expr.Const _, Event.Ai _ -> None
  | Expr.Var x, Event.Av v -> match_value x v env
  | Expr.Var x, Event.Ai item -> match_item_binding x item env
  | Expr.Item (base, params), Event.Ai item ->
    if String.equal base item.Item.base then
      match_args params (List.map (fun v -> Event.Av v) item.Item.params) env
    else None
  | Expr.Item _, Event.Av _ -> None
  | (Expr.Unop _ | Expr.Binop _ | Expr.Exists _), _ -> None

let matches t (desc : Event.desc) ~seed =
  if is_false t then None
  else if not (String.equal t.name desc.Event.name) then None
  else match_args t.args desc.Event.args seed

let instantiate_value env e =
  match e with
  | Expr.Const v -> v
  | Expr.Var x -> (
    match Expr.Env.find_opt x env with
    | Some (Expr.Bval v) -> v
    | Some (Expr.Bitem it) ->
      raise
        (Expr.Eval_error
           (Printf.sprintf "parameter %s is an item (%s), a value is required" x
              (Item.to_string it)))
    | None -> raise (Expr.Eval_error (Printf.sprintf "unbound parameter %s" x)))
  | _ ->
    raise
      (Expr.Eval_error
         (Printf.sprintf "cannot instantiate %s to a value" (Expr.to_string e)))

let instantiate_arg env e =
  match e with
  | Expr.Item (base, params) ->
    Event.Ai (Item.make base ~params:(List.map (instantiate_value env) params))
  | Expr.Var x -> (
    match Expr.Env.find_opt x env with
    | Some (Expr.Bitem it) -> Event.Ai it
    | Some (Expr.Bval v) -> Event.Av v
    | None -> raise (Expr.Eval_error (Printf.sprintf "unbound parameter %s" x)))
  | Expr.Wildcard ->
    raise (Expr.Eval_error "wildcard in a right-hand-side template")
  | e -> Event.Av (instantiate_value env e)

let instantiate t env =
  { Event.name = t.name; args = List.map (instantiate_arg env) t.args }

let item_base t =
  List.find_map
    (function Expr.Item (base, _) -> Some base | _ -> None)
    t.args

let site t locator =
  match item_base t with
  | Some base -> Some (locator (Item.make base))
  | None -> None

let free_vars t =
  let all = List.concat_map Expr.free_vars t.args in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    all

let to_string t =
  if is_false t then false_name
  else t.name ^ "(" ^ String.concat ", " (List.map Expr.to_string t.args) ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
