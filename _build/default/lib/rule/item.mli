(** Data item names.

    A data item is what a constraint ranges over: a field, a tuple, a file
    — the framework fixes no granularity (paper §3).  Items may be
    *parameterized* ("the phone number of [n]"), so a concrete name is a
    base identifier plus a vector of concrete parameter values:
    [Salary1("emp7")].  By the paper's convention, item base names start
    with an upper-case letter (lower-case identifiers are rule
    parameters). *)

type t = { base : string; params : Value.t list }

val make : ?params:Value.t list -> string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** [Salary1("emp7", 3)] style rendering; 0-ary items render bare. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

type site = string
(** Sites are named locations: one per participating database plus one per
    CM-Shell's private store.  The special site {!cm_site_prefix}[ ^ s]
    holds CM auxiliary data for the shell at site [s]. *)

type locator = t -> site
(** Where an item lives.  Supplied by toolkit configuration; rule
    distribution (paper §4.1) and the "conditions read local data only"
    restriction (§3.2) are enforced against it. *)
