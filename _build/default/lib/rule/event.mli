(** Events: the observable behaviour of databases and the CM.

    Following Appendix A.1, every event carries the time at which it
    occurred, a descriptor (name + arguments), and — for {e generated}
    events — the rule whose firing produced it and the identifier of the
    triggering event.  {e Spontaneous} events model local applications
    operating on their databases independently of the CM.

    The standard descriptor vocabulary is the paper's (§3.1.1):

    - [W(X, b)]   — the database performs the write X ← b
    - [Ws(X, a, b)] — a spontaneous write X ← b (old value [a]);
      the two-argument form [Ws(X, b)] is shorthand with [a] wild-carded
    - [RR(X)]     — the database receives a read request from the CM
    - [R(X, b)]   — the CM receives the read response
    - [N(X, b)]   — the CM receives a notification of X ← b
    - [WR(X, b)]  — the database receives a write request from the CM
    - [P(p)]      — a periodic event occurring every [p] seconds
    - [INS(X)] / [DEL(X)] — item creation / deletion (for the existence
      predicate of §6.2); [DR(X)] — a deletion request from the CM

    The set is extensible (Appendix A.1): any other name denotes a
    CM-internal event routed between shells, which is how composite
    strategies such as the Demarcation Protocol chain rules. *)

type arg = Av of Value.t | Ai of Item.t

type desc = { name : string; args : arg list }

type kind =
  | Spontaneous
  | Generated of { rule_id : string; trigger : int }
      (** [trigger] is the {!field-id} of the event that fired the rule. *)

type t = {
  id : int;  (** unique within a trace, assigned by {!Trace.record} *)
  time : float;
  site : Item.site;
  desc : desc;
  kind : kind;
}

val desc_to_string : desc -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val arg_equal : arg -> arg -> bool
val desc_equal : desc -> desc -> bool

(** {2 Standard descriptor constructors} *)

val w : Item.t -> Value.t -> desc
val ws : ?old:Value.t -> Item.t -> Value.t -> desc
(** Omitted [old] becomes [Null] (unknown). *)

val rr : Item.t -> desc
val r : Item.t -> Value.t -> desc
val n : Item.t -> Value.t -> desc
val wr : Item.t -> Value.t -> desc
val p : float -> desc
val ins : Item.t -> desc
val del : Item.t -> desc
val dr : Item.t -> desc

val known_arity : string -> int option
(** Arity of the standard names above, [None] for extension names.  Used
    by the parser and linter. *)

val item_of_desc : desc -> Item.t option
(** The first item argument, which determines the event's site for
    standard descriptors. *)

val written_value : desc -> (Item.t * Value.t) option
(** For [W] and [Ws] descriptors, the item and its new value — the basis
    for state reconstruction (Appendix A.2, property 2). *)
