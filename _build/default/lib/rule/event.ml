type arg = Av of Value.t | Ai of Item.t

type desc = { name : string; args : arg list }

type kind =
  | Spontaneous
  | Generated of { rule_id : string; trigger : int }

type t = {
  id : int;
  time : float;
  site : Item.site;
  desc : desc;
  kind : kind;
}

let arg_to_string = function
  | Av v -> Value.to_string v
  | Ai item -> Item.to_string item

let desc_to_string d =
  d.name ^ "(" ^ String.concat ", " (List.map arg_to_string d.args) ^ ")"

let to_string e =
  let origin =
    match e.kind with
    | Spontaneous -> "spontaneous"
    | Generated { rule_id; trigger } -> Printf.sprintf "by %s <- #%d" rule_id trigger
  in
  Printf.sprintf "#%d %.3f @%s %s [%s]" e.id e.time e.site (desc_to_string e.desc) origin

let pp fmt e = Format.pp_print_string fmt (to_string e)

let arg_equal a b =
  match a, b with
  | Av x, Av y -> Value.equal x y
  | Ai x, Ai y -> Item.equal x y
  | Av _, Ai _ | Ai _, Av _ -> false

let desc_equal a b =
  String.equal a.name b.name && List.equal arg_equal a.args b.args

let w item v = { name = "W"; args = [ Ai item; Av v ] }

let ws ?(old = Value.Null) item v = { name = "Ws"; args = [ Ai item; Av old; Av v ] }

let rr item = { name = "RR"; args = [ Ai item ] }
let r item v = { name = "R"; args = [ Ai item; Av v ] }
let n item v = { name = "N"; args = [ Ai item; Av v ] }
let wr item v = { name = "WR"; args = [ Ai item; Av v ] }
let p period = { name = "P"; args = [ Av (Value.Float period) ] }
let ins item = { name = "INS"; args = [ Ai item ] }
let del item = { name = "DEL"; args = [ Ai item ] }
let dr item = { name = "DR"; args = [ Ai item ] }

let known_arity = function
  | "W" | "R" | "N" | "WR" -> Some 2
  | "Ws" -> Some 3
  | "RR" | "P" | "INS" | "DEL" | "DR" -> Some 1
  | _ -> None

let item_of_desc d =
  List.find_map (function Ai item -> Some item | Av _ -> None) d.args

let written_value d =
  match d.name, d.args with
  | "W", [ Ai item; Av v ] -> Some (item, v)
  | "Ws", [ Ai item; _; Av v ] -> Some (item, v)
  | _ -> None
