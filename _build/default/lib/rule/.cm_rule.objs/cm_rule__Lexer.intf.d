lib/rule/lexer.mli: Value
