lib/rule/item.mli: Format Map Set Value
