lib/rule/template.mli: Event Expr Format Item
