lib/rule/validity.mli: Event Item Rule Trace Value
