lib/rule/event.mli: Format Item Value
