lib/rule/value.ml: Float Format Printf Scanf Stdlib String
