lib/rule/expr.mli: Format Item Map Value
