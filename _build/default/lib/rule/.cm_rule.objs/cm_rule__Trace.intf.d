lib/rule/trace.mli: Event Format Item
