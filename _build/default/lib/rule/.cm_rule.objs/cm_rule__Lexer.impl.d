lib/rule/lexer.ml: Array Buffer List Printf String Value
