lib/rule/trace.ml: Event Format Item List Printf String
