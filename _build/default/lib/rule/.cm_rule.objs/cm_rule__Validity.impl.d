lib/rule/validity.ml: Array Event Expr Hashtbl List Option Printf Rule String Template Timeline Trace Value
