lib/rule/parser.mli: Expr Rule Template
