lib/rule/event.ml: Format Item List Printf String Value
