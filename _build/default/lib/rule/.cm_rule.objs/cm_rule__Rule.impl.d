lib/rule/rule.ml: Expr Format List Printf Result String Template Value
