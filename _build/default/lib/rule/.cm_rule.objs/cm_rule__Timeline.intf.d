lib/rule/timeline.mli: Item Trace Value
