lib/rule/item.ml: Format Hashtbl List Map Set String Value
