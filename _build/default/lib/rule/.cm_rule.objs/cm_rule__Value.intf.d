lib/rule/value.mli: Format
