lib/rule/rule.mli: Expr Format Item Template
