lib/rule/timeline.ml: Array Event Item List Option Trace Value
