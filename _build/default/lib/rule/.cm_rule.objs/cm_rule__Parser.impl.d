lib/rule/parser.ml: Array Expr Lexer List Printf Rule String Template Value
