lib/rule/trace_io.ml: Event Expr In_channel List Out_channel Parser Printf String Template Trace
