lib/rule/expr.ml: Format Hashtbl Item List Map Printf String Value
