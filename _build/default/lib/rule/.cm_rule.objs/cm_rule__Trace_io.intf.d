lib/rule/trace_io.mli: Event Trace
