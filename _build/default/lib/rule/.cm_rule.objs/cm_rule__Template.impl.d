lib/rule/template.ml: Event Expr Format Hashtbl Item List Printf String Value
