(** Valid-execution checker (Appendix A.2).

    Given the rules in force — interface statements plus strategy rules —
    and a recorded trace, this module decides whether the trace is a
    {e valid execution}: every generated event has correct provenance and
    arrived within its rule's time bound (properties 4–5), every rule
    that should have fired did (property 6, including ℱ prohibitions),
    and related rules were processed in order (property 7).  Properties
    1–3 (time ordering, state consistency) hold by construction of
    {!Trace} and {!Timeline} and are re-asserted cheaply.

    The distinction between {e metric} and {e logical} violations mirrors
    the paper's failure taxonomy (§5): a bound violation is a metric
    failure of some interface or strategy; anything else breaks the
    interface statements outright. *)

type violation =
  | Prohibited of { event : Event.t; rule : string }
      (** an event matched the LHS of an [→ ℱ] rule *)
  | Bad_provenance of { event : Event.t; reason : string }
      (** the event's rule/trigger annotations are inconsistent (A.2 p5) *)
  | Bound_exceeded of {
      event : Event.t;
      rule : string;
      trigger : int;
      bound : float;
      actual : float;
    }  (** the event occurred, but later than δ after its trigger *)
  | Missing_response of {
      trigger : Event.t;
      rule : string;
      step : int;
      deadline : float;
    }  (** a rule should have produced a step-[step] event and did not *)
  | Out_of_order of { first : Event.t; second : Event.t; rules : string * string }
      (** in-order processing (A.2 p7) violated between related rules *)

val is_metric : violation -> bool
(** [Bound_exceeded] and late [Missing_response] are metric (the action
    may still be coming); the rest are logical. *)

val violation_to_string : violation -> string

val check :
  ?initial:(Item.t * Value.t) list ->
  ?horizon:float ->
  rules:Rule.t list ->
  locator:Item.locator ->
  Trace.t ->
  violation list
(** Check the trace against the rules.  Property-6 obligations whose
    deadline falls after [horizon] (default: the trace's last event time)
    are not reported — the response may legitimately still be pending.
    Conditions are re-evaluated against the reconstructed state, so the
    checker is independent of the engine that produced the trace. *)

val valid : violations:violation list -> bool
(** [violations = []]. *)
