type unop = Neg | Not | Abs

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type t =
  | Const of Value.t
  | Var of string
  | Item of string * t list
  | Unop of unop * t
  | Binop of binop * t * t
  | Exists of string * t list
  | Wildcard

type binding = Bval of Value.t | Bitem of Item.t

module Env = Map.Make (String)

type env = binding Env.t

let empty_env = Env.empty

type state = { lookup : Item.t -> Value.t option }

let state_of_fun lookup = { lookup }

exception Eval_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let rec to_string = function
  | Const v -> Value.to_string v
  | Var x -> x
  | Item (base, []) -> base
  | Item (base, args) ->
    base ^ "(" ^ String.concat ", " (List.map to_string args) ^ ")"
  | Unop (Neg, e) -> "-" ^ atom_string e
  | Unop (Not, e) -> "!" ^ atom_string e
  (* Inner spaces keep nested bars from lexing as the "||" operator. *)
  | Unop (Abs, e) -> "| " ^ to_string e ^ " |"
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (binop_string op) (to_string b)
  | Exists (base, args) ->
    "E(" ^ to_string (Item (base, args)) ^ ")"
  | Wildcard -> "*"

and atom_string e =
  match e with
  | Const _ | Var _ | Item _ | Wildcard -> to_string e
  | _ -> "(" ^ to_string e ^ ")"

and binop_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let rec eval state env expr =
  match expr with
  | Const v -> (v, env)
  | Wildcard -> error "wildcard cannot be evaluated"
  | Var x -> (
    match Env.find_opt x env with
    | Some (Bval v) -> (v, env)
    | Some (Bitem it) -> error "parameter %s is bound to item %s, not a value" x (Item.to_string it)
    | None -> error "unbound parameter %s" x)
  | Item (base, args) ->
    let item = eval_item state env (base, args) in
    (match state.lookup item with
     | Some v -> (v, env)
     | None -> error "data item %s does not exist" (Item.to_string item))
  | Exists (base, args) ->
    let item = eval_item state env (base, args) in
    (Value.Bool (state.lookup item <> None), env)
  | Unop (op, e) ->
    let v, env = eval state env e in
    let r =
      match op with
      | Neg -> Value.neg v
      | Abs -> Value.abs v
      | Not -> Value.Bool (not (Value.truthy v))
    in
    (r, env)
  | Binop (And, a, b) -> (
    (* Conjunction threads bindings left to right and short-circuits. *)
    match eval_cond state env a with
    | None -> (Value.Bool false, env)
    | Some env' -> (
      match eval_cond state env' b with
      | None -> (Value.Bool false, env)
      | Some env'' -> (Value.Bool true, env'')))
  | Binop (Or, a, b) -> (
    (* No binding escapes a disjunction: which branch held is ambiguous. *)
    match eval_cond state env a with
    | Some _ -> (Value.Bool true, env)
    | None -> (
      match eval_cond state env b with
      | Some _ -> (Value.Bool true, env)
      | None -> (Value.Bool false, env)))
  | Binop (Eq, a, b) -> eval_eq state env a b
  | Binop (Ne, a, b) ->
    let r, env = eval_eq state env a b in
    (Value.Bool (not (Value.truthy r)), env)
  | Binop (op, a, b) ->
    let va, env = eval state env a in
    let vb, env = eval state env b in
    let r =
      match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Lt -> Value.Bool (Value.compare va vb < 0)
      | Le -> Value.Bool (Value.compare va vb <= 0)
      | Gt -> Value.Bool (Value.compare va vb > 0)
      | Ge -> Value.Bool (Value.compare va vb >= 0)
      | Eq | Ne | And | Or -> assert false
    in
    (r, env)

(* Equality doubles as a binding construct: if exactly one side is an
   unbound variable, bind it to the other side's value and succeed. *)
and eval_eq state env a b =
  let unbound = function
    | Var x when not (Env.mem x env) -> Some x
    | _ -> None
  in
  match unbound a, unbound b with
  | Some x, None ->
    let v, env = eval state env b in
    (Value.Bool true, Env.add x (Bval v) env)
  | None, Some x ->
    let v, env = eval state env a in
    (Value.Bool true, Env.add x (Bval v) env)
  | Some x, Some _ -> error "equality between two unbound parameters (%s)" x
  | None, None ->
    let va, env = eval state env a in
    let vb, env = eval state env b in
    (Value.Bool (Value.equal va vb), env)

and eval_cond state env expr =
  let v, env' = eval state env expr in
  if Value.truthy v then Some env' else None

and eval_item state env (base, args) =
  let eval_value e =
    let v, _ = eval state env e in
    v
  in
  Item.make base ~params:(List.map eval_value args)

let free_vars expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let note x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      acc := x :: !acc
    end
  in
  let rec go = function
    | Const _ | Wildcard -> ()
    | Var x -> note x
    | Item (_, args) | Exists (_, args) -> List.iter go args
    | Unop (_, e) -> go e
    | Binop (_, a, b) ->
      go a;
      go b
  in
  go expr;
  List.rev !acc

let is_template_arg = function
  | Const _ | Var _ | Wildcard -> true
  | Item (_, args) ->
    List.for_all (function Const _ | Var _ | Wildcard -> true | _ -> false) args
  | _ -> false
