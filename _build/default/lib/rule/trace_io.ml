let kind_to_string = function
  | Event.Spontaneous -> "spont"
  | Event.Generated { rule_id; trigger } -> Printf.sprintf "gen:%s:%d" rule_id trigger

let event_to_line (e : Event.t) =
  Printf.sprintf "%d %.6f %s %s %s" e.id e.time e.site (kind_to_string e.kind)
    (Event.desc_to_string e.desc)

let write_channel oc trace =
  output_string oc "# cmtk trace v1\n";
  List.iter
    (fun e ->
      output_string oc (event_to_line e);
      output_char oc '\n')
    (Trace.events trace)

let write_file path trace =
  Out_channel.with_open_text path (fun oc -> write_channel oc trace)

let parse_kind s =
  if String.equal s "spont" then Ok Event.Spontaneous
  else
    match String.index_opt s ':' with
    | Some 3 when String.sub s 0 3 = "gen" -> (
      (* gen:<rule-id>:<trigger>; the rule id may itself contain no ':'. *)
      match String.rindex_opt s ':' with
      | Some last when last > 3 -> (
        let rule_id = String.sub s 4 (last - 4) in
        match int_of_string_opt (String.sub s (last + 1) (String.length s - last - 1)) with
        | Some trigger -> Ok (Event.Generated { rule_id; trigger })
        | None -> Error "malformed trigger id")
      | _ -> Error "malformed generated kind")
    | _ -> Error ("unknown event kind: " ^ s)

let parse_desc s =
  match Parser.parse_template s with
  | tpl -> (
    match Template.instantiate tpl Expr.empty_env with
    | desc -> Ok desc
    | exception Expr.Eval_error m -> Error ("descriptor not concrete: " ^ m))
  | exception Parser.Parse_error { message; _ } -> Error message

let event_of_line line =
  (* <id> <time> <site> <kind> <descriptor...> *)
  let parts = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  match parts with
  | id :: time :: site :: kind :: rest when rest <> [] -> (
    match int_of_string_opt id, float_of_string_opt time, parse_kind kind with
    | Some id, Some time, Ok kind -> (
      match parse_desc (String.concat " " rest) with
      | Ok desc -> Ok { Event.id; time; site; desc; kind }
      | Error m -> Error m)
    | None, _, _ -> Error "malformed event id"
    | _, None, _ -> Error "malformed time"
    | _, _, Error m -> Error m)
  | _ -> Error "expected: <id> <time> <site> <kind> <descriptor>"

let read_string text =
  let trace = Trace.create () in
  let error = ref None in
  List.iteri
    (fun idx raw ->
      if !error = None then begin
        let line = String.trim raw in
        if line <> "" && line.[0] <> '#' then
          match event_of_line line with
          | Error m -> error := Some (Printf.sprintf "line %d: %s" (idx + 1) m)
          | Ok e ->
            if e.Event.id <> Trace.length trace then
              error :=
                Some
                  (Printf.sprintf "line %d: event id %d out of sequence (expected %d)"
                     (idx + 1) e.Event.id (Trace.length trace))
            else (
              match
                Trace.record trace ~time:e.Event.time ~site:e.Event.site
                  ~kind:e.Event.kind e.Event.desc
              with
              | _ -> ()
              | exception Invalid_argument m ->
                error := Some (Printf.sprintf "line %d: %s" (idx + 1) m))
      end)
    (String.split_on_char '\n' text);
  match !error with Some m -> Error m | None -> Ok trace

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> read_string contents
  | exception Sys_error m -> Error m
