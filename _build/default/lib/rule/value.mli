(** Scalar values stored in data items and carried by events.

    The framework is data-model-agnostic: heterogeneous sources map their
    native representations to these scalars at the CM-Translator boundary
    (paper §4.1).  [Null] doubles as the "item absent / unknown" marker in
    interpretations (Appendix A.1 allows interpretations to under-specify
    the state). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

val equal : t -> t -> bool
(** Structural equality, except numeric values compare by magnitude
    ([Int 3] equals [Float 3.0]) — sources of different data models store
    the "same" number differently. *)

val compare : t -> t -> int
(** Total order consistent with {!equal}; values of different kinds order
    by kind (Null < Bool < numeric < Str). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Numeric arithmetic with int→float promotion.
    @raise Invalid_argument on non-numeric operands or division by zero. *)

val neg : t -> t
val abs : t -> t

val truthy : t -> bool
(** [Bool b] is [b]; [Null] is false; anything else raises. *)

val to_float : t -> float
(** @raise Invalid_argument on non-numeric values. *)

val to_string : t -> string
(** Round-trippable with {!of_string_literal} for ints, floats, bools and
    quoted strings. *)

val of_string_literal : string -> t option
(** Parse ["42"], ["3.5"], ["true"], ["\"s\""], ["null"]. *)

val pp : Format.formatter -> t -> unit
