type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let kind_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | _ -> Stdlib.compare (kind_rank a) (kind_rank b)

let equal a b = compare a b = 0

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v ->
    invalid_arg
      (Printf.sprintf "Value.to_float: non-numeric value (kind %d)" (kind_rank v))

let arith name f_int f_float a b =
  match a, b with
  | Int x, Int y -> Int (f_int x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (f_float (to_float a) (to_float b))
  | _ -> invalid_arg ("Value." ^ name ^ ": non-numeric operand")

let add = arith "add" ( + ) ( +. )
let sub = arith "sub" ( - ) ( -. )
let mul = arith "mul" ( * ) ( *. )

let div a b =
  match a, b with
  | (Int _ | Float _), (Int _ | Float _) ->
    let d = to_float b in
    if d = 0.0 then invalid_arg "Value.div: division by zero"
    else Float (to_float a /. d)
  | _ -> invalid_arg "Value.div: non-numeric operand"

let neg = function
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | _ -> invalid_arg "Value.neg: non-numeric operand"

let abs = function
  | Int i -> Int (Stdlib.abs i)
  | Float f -> Float (Float.abs f)
  | _ -> invalid_arg "Value.abs: non-numeric operand"

let truthy = function
  | Bool b -> b
  | Null -> false
  | _ -> invalid_arg "Value.truthy: not a boolean"

let to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s

let of_string_literal s =
  let n = String.length s in
  if n = 0 then None
  else if s = "null" then Some Null
  else if s = "true" then Some (Bool true)
  else if s = "false" then Some (Bool false)
  else if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    match Scanf.sscanf_opt s "%S" (fun x -> x) with
    | Some x -> Some (Str x)
    | None -> None
  else
    match int_of_string_opt s with
    | Some i -> Some (Int i)
    | None -> (
      match float_of_string_opt s with Some f -> Some (Float f) | None -> None)

let pp fmt v = Format.pp_print_string fmt (to_string v)
