(** Terms, conditions and their evaluation.

    One first-order expression language serves three roles in the rule
    language of the paper (§3, Appendix A.1):

    - {b template arguments} — the restricted forms [Const], [Var],
      [Item] and [Wildcard];
    - {b conditions} on rule left- and right-hand sides — full
      expressions evaluating to a boolean;
    - {b parameterized item names} — [Item (base, args)].

    Rule parameters (lower-case identifiers) are bound by matching the
    LHS event template, and additionally by {e binding equalities} in
    conditions: evaluating [X = b] with [b] unbound binds [b] to the
    current value of item [X] and succeeds.  This is exactly how the
    paper's read interface [RR(X) ∧ (X = b) →δ R(X, b)] and periodic
    notify [P(300) ∧ (X = b) →ε N(X, b)] capture "the current value".
    Binding is permitted only in positive positions (conjunctions);
    under [||] or [!] new bindings are discarded. *)

type unop = Neg | Not | Abs

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type t =
  | Const of Value.t
  | Var of string  (** rule parameter; lower-case by convention *)
  | Item of string * t list
      (** reference to a (possibly parameterized) local data item; reading
          it in a condition yields its current value *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Exists of string * t list
      (** the paper's [E(item)] existence predicate (§6.2) *)
  | Wildcard  (** ["*"]; template argument position only *)

(** What a rule parameter can be bound to.  Variables normally denote
    values, but a wild-carded item position binds the item itself. *)
type binding = Bval of Value.t | Bitem of Item.t

module Env : Map.S with type key = string

type env = binding Env.t

val empty_env : env

(** The local-state oracle a condition evaluates against: the current
    values of data items at the site of the rule's right-hand side, plus
    the CM-Shell's private store.  [lookup] returns [None] when the item
    does not exist — that is what {!Exists} tests. *)
type state = { lookup : Item.t -> Value.t option }

val state_of_fun : (Item.t -> Value.t option) -> state

exception Eval_error of string

val eval : state -> env -> t -> Value.t * env
(** Full evaluation.  Binding equalities extend the environment.
    @raise Eval_error on unbound variables in non-binding positions,
    wildcards, or type errors. *)

val eval_cond : state -> env -> t -> env option
(** Evaluate as a condition: [Some env'] if truthy (with any new
    bindings), [None] if falsy.
    @raise Eval_error as {!eval}. *)

val eval_item : state -> env -> string * t list -> Item.t
(** Resolve a parameterized item reference to a concrete item name. *)

val free_vars : t -> string list
(** Variables occurring anywhere in the expression, without duplicates,
    in first-occurrence order. *)

val is_template_arg : t -> bool
(** True for the restricted forms allowed as event-template arguments. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
