type t = { base : string; params : Value.t list }

let make ?(params = []) base = { base; params }

let compare a b =
  match String.compare a.base b.base with
  | 0 -> List.compare Value.compare a.params b.params
  | c -> c

let equal a b = compare a b = 0

let to_string t =
  match t.params with
  | [] -> t.base
  | ps -> t.base ^ "(" ^ String.concat ", " (List.map Value.to_string ps) ^ ")"

let hash t = Hashtbl.hash (t.base, List.map Value.to_string t.params)

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

type site = string
type locator = t -> site
