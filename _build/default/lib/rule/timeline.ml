type t = {
  histories : (float * Value.t option) list Item.Map.t;  (* newest first *)
  times : float array;  (* sorted change times, all items *)
}

let of_trace ?(initial = []) trace =
  let histories = ref Item.Map.empty in
  let times = ref [] in
  let set item time v =
    let prior = Option.value (Item.Map.find_opt item !histories) ~default:[] in
    histories := Item.Map.add item ((time, v) :: prior) !histories;
    times := time :: !times
  in
  List.iter (fun (item, v) -> set item 0.0 (Some v)) initial;
  let apply (e : Event.t) =
    match Event.written_value e.desc with
    | Some (item, v) -> set item e.time (Some v)
    | None -> (
      match e.desc.Event.name, e.desc.Event.args with
      | "INS", [ Event.Ai item ] ->
        let existing =
          match Item.Map.find_opt item !histories with
          | Some ((_, Some v) :: _) -> Some v
          | _ -> None
        in
        (* INS preserves a value only if the item already exists. *)
        set item e.time (Some (Option.value existing ~default:Value.Null))
      | "DEL", [ Event.Ai item ] -> set item e.time None
      | _ -> ())
  in
  List.iter apply (Trace.events trace);
  let times_array = Array.of_list (List.sort_uniq compare !times) in
  { histories = !histories; times = times_array }

let items t = List.map fst (Item.Map.bindings t.histories)

(* Histories are newest-first; find the newest entry at or before [time]. *)
let entry_at t item time =
  match Item.Map.find_opt item t.histories with
  | None -> None
  | Some history -> List.find_opt (fun (at, _) -> at <= time) history

let value_at t item time =
  match entry_at t item time with
  | Some (_, v) -> v
  | None -> None

let exists_at t item time = value_at t item time <> None

let changes t item =
  match Item.Map.find_opt item t.histories with
  | None -> []
  | Some history -> List.rev history

let values_taken t item =
  let present =
    List.filter_map (fun (at, v) -> Option.map (fun v -> (at, v)) v) (changes t item)
  in
  (* Collapse consecutive duplicates, keeping the first occurrence time. *)
  let rec dedup = function
    | (t1, v1) :: (_, v2) :: rest when Value.equal v1 v2 -> dedup ((t1, v1) :: rest)
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  dedup present

let change_times t = Array.to_list t.times

let lookup_fun t time item = value_at t item time
