lib/sim/sim.mli: Cm_util
