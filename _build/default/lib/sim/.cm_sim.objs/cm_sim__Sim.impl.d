lib/sim/sim.ml: Cm_util
