module Sim = Cm_sim.Sim
module Prng = Cm_util.Prng

let poisson sim ~rng ~mean_interarrival ~until action =
  let rec arm () =
    let delay = Prng.exponential rng ~mean:mean_interarrival in
    let at = Sim.now sim +. delay in
    if at <= until then
      Sim.schedule_at sim at (fun () ->
          action ();
          arm ())
  in
  arm ()

let every_fixed sim ~period ~until action =
  Sim.every sim ~period action ~cancel:(fun () -> Sim.now sim > until)

let random_walk rng ~current ~step =
  if step <= 0 then invalid_arg "Gen.random_walk: step must be positive";
  let delta = 1 + Prng.int rng step in
  if Prng.bool rng then current + delta else current - delta
