lib/workload/payroll.ml: Array Cm_core Cm_relational Cm_rule Cm_sim Cm_util Expr Float Gen Item List Value
