lib/workload/banking_day.ml: Array Cm_core Cm_relational Cm_rule Cm_sim Cm_util Event Item List Value
