lib/workload/gen.ml: Cm_sim Cm_util
