lib/workload/bank.ml: Cm_core Cm_relational Cm_rule Item Printf Value
