lib/workload/stanford.ml: Cm_core Cm_relational Cm_rule Cm_sources Expr Item List Parser Printf Value
