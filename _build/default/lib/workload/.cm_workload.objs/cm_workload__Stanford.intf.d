lib/workload/stanford.mli: Cm_core Cm_relational Cm_rule
