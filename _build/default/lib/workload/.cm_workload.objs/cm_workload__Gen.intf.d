lib/workload/gen.mli: Cm_sim Cm_util
