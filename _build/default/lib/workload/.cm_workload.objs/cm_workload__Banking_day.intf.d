lib/workload/banking_day.mli: Cm_core Cm_relational Cm_rule
