lib/workload/payroll.mli: Cm_core Cm_net Cm_relational Cm_rule
