(** Spontaneous-update generators.

    Local applications "operate on the local database independently" of
    the CM (paper §3.1.1); these helpers drive that behaviour inside the
    simulation: Poisson arrival processes and value walks, all drawing
    from the simulator's seeded PRNG for reproducibility. *)

val poisson :
  Cm_sim.Sim.t ->
  rng:Cm_util.Prng.t ->
  mean_interarrival:float ->
  until:float ->
  (unit -> unit) ->
  unit
(** Run the action at exponentially distributed interarrival times,
    starting one draw after now, stopping at [until]. *)

val every_fixed :
  Cm_sim.Sim.t -> period:float -> until:float -> (unit -> unit) -> unit
(** Deterministic fixed-period variant. *)

val random_walk : Cm_util.Prng.t -> current:int -> step:int -> int
(** Next value of a bounded-step integer walk: uniform in
    [\[current − step, current + step\]] excluding [current]. *)
