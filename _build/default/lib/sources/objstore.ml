module Value = Cm_rule.Value
module Attrs = Map.Make (String)

type callback = id:string -> old_value:Value.t -> new_value:Value.t -> unit

type sub = {
  sub_id : int;
  sub_cls : string;
  sub_attr : string;
  filter : (old_value:Value.t -> new_value:Value.t -> bool) option;
  callback : callback;
}

type subscription = int

type t = {
  objects : (string * string, Value.t Attrs.t) Hashtbl.t;
  mutable subs : sub list;  (* in subscription order *)
  mutable next_sub : int;
  mutable sent : int;
  mutable suppressed : int;
  health : Health.t;
}

let create () =
  {
    objects = Hashtbl.create 32;
    subs = [];
    next_sub = 0;
    sent = 0;
    suppressed = 0;
    health = Health.create ();
  }

let health t = t.health

let fire t ~cls ~id ~attr ~old_value ~new_value =
  if not (Health.dropping_notifications t.health) then
    List.iter
      (fun sub ->
        if String.equal sub.sub_cls cls && String.equal sub.sub_attr attr then
          let wanted =
            match sub.filter with
            | None -> true
            | Some f -> f ~old_value ~new_value
          in
          if wanted then begin
            t.sent <- t.sent + 1;
            sub.callback ~id ~old_value ~new_value
          end
          else t.suppressed <- t.suppressed + 1)
      t.subs

let put t ~cls ~id attrs =
  Health.check t.health ~name:"objstore.put";
  let m = List.fold_left (fun m (k, v) -> Attrs.add k v m) Attrs.empty attrs in
  Hashtbl.replace t.objects (cls, id) m

let set_attr t ~cls ~id ~attr v =
  Health.check t.health ~name:"objstore.set_attr";
  match Hashtbl.find_opt t.objects (cls, id) with
  | None -> false
  | Some attrs ->
    let old_value = Option.value (Attrs.find_opt attr attrs) ~default:Value.Null in
    Hashtbl.replace t.objects (cls, id) (Attrs.add attr v attrs);
    if not (Value.equal old_value v) then
      fire t ~cls ~id ~attr ~old_value ~new_value:v;
    true

let get_attr t ~cls ~id ~attr =
  Health.check t.health ~name:"objstore.get_attr";
  Option.bind (Hashtbl.find_opt t.objects (cls, id)) (Attrs.find_opt attr)

let get t ~cls ~id =
  Health.check t.health ~name:"objstore.get";
  Option.map Attrs.bindings (Hashtbl.find_opt t.objects (cls, id))

let delete t ~cls ~id =
  Health.check t.health ~name:"objstore.delete";
  let existed = Hashtbl.mem t.objects (cls, id) in
  Hashtbl.remove t.objects (cls, id);
  existed

let ids t ~cls =
  Health.check t.health ~name:"objstore.ids";
  Hashtbl.fold
    (fun (c, id) _ acc -> if String.equal c cls then id :: acc else acc)
    t.objects []
  |> List.sort compare

let subscribe t ~cls ~attr ?filter callback =
  let sub_id = t.next_sub in
  t.next_sub <- sub_id + 1;
  t.subs <-
    t.subs @ [ { sub_id; sub_cls = cls; sub_attr = attr; filter; callback } ];
  sub_id

let unsubscribe t sub_id =
  t.subs <- List.filter (fun s -> s.sub_id <> sub_id) t.subs

let notifications_sent t = t.sent
let notifications_suppressed t = t.suppressed
