type mode =
  | Healthy
  | Degraded of { extra_latency : float }
  | Down
  | Silent_drop

type t = { mutable mode : mode }

exception Unavailable of string

let create () = { mode = Healthy }

let mode t = t.mode
let set t m = t.mode <- m

let extra_latency t =
  match t.mode with Degraded { extra_latency } -> extra_latency | _ -> 0.0

let dropping_notifications t = t.mode = Silent_drop

let check t ~name = if t.mode = Down then raise (Unavailable name)
