(** Directory server — the "Stanford whois" class of source (§4.3).

    Native interface: lookup of field lists by principal name, and a full
    dump.  {b Read-only from the CM's perspective}: entries change only
    through administrative operations performed by local applications
    ({!register}, {!update_field}, {!unregister}), which the workload
    layer drives as spontaneous events.  With no write access, the CM can
    only {e monitor} constraints over this source (§6.3). *)

type t

val create : unit -> t
val health : t -> Health.t

(** {2 Native query interface (used by the CM-Translator)} *)

val query : t -> string -> (string * string) list option
(** Fields of the named principal, sorted by field name.
    @raise Health.Unavailable when down. *)

val dump : t -> (string * (string * string) list) list
(** All entries, sorted by name.  @raise Health.Unavailable when down. *)

(** {2 Administrative interface (local applications only)} *)

val register : t -> name:string -> fields:(string * string) list -> unit
val update_field : t -> name:string -> field:string -> value:string -> bool
(** [false] if the principal is unknown. *)

val unregister : t -> name:string -> bool
val size : t -> int
