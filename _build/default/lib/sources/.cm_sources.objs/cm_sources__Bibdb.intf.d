lib/sources/bibdb.mli: Health
