lib/sources/objstore.mli: Cm_rule Health
