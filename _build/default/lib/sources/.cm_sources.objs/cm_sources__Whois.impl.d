lib/sources/whois.ml: Hashtbl Health List Map Option String
