lib/sources/kvfile.ml: Hashtbl Health List
