lib/sources/health.mli:
