lib/sources/kvfile.mli: Health
