lib/sources/objstore.ml: Cm_rule Hashtbl Health List Map Option String
