lib/sources/bibdb.ml: Hashtbl Health List
