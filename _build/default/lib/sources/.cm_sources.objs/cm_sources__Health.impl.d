lib/sources/health.ml:
