lib/sources/whois.mli: Health
