(** Failure injection for Raw Information Sources (paper §5).

    Each source carries a health handle its operations consult:

    - [Healthy] — normal behaviour;
    - [Degraded] — operations still succeed but the CM-Translator must
      add [extra_latency] to every interaction, producing {e metric}
      failures (time bounds missed, actions eventually performed);
    - [Down] — operations raise {!Unavailable}, producing {e logical}
      failures (interface statements no longer honoured);
    - [Silent_drop] — notification-bearing sources stop invoking their
      callbacks {e without any error}: the undetectable failure mode the
      paper warns makes notify interfaces unsuitable (§5).  Read/write
      operations are unaffected. *)

type mode =
  | Healthy
  | Degraded of { extra_latency : float }
  | Down
  | Silent_drop

type t

exception Unavailable of string
(** Raised by source operations while [Down]. *)

val create : unit -> t
(** Starts [Healthy]. *)

val mode : t -> mode
val set : t -> mode -> unit

val extra_latency : t -> float
(** 0 unless [Degraded]. *)

val dropping_notifications : t -> bool
val check : t -> name:string -> unit
(** @raise Unavailable when [Down]. *)
