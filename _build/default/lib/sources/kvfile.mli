(** Flat key/value file store — the "Unix file system" class of source
    (paper §4.3: CM-Translators for Unix files).

    Native interface: byte-string reads and writes by key, no types, no
    queries, {b no notifications} — the capability profile that forces a
    polling strategy on the constraint manager.  Values are raw strings;
    the CM-Translator is responsible for encoding/decoding scalars, just
    as the paper's translators bridge data-model differences. *)

type t

val create : unit -> t
val health : t -> Health.t

val read : t -> string -> string option
(** [None] models ENOENT.  @raise Health.Unavailable when down. *)

val write : t -> string -> string -> unit
(** Create or overwrite.  @raise Health.Unavailable when down. *)

val remove : t -> string -> bool
(** [true] if the key existed.  @raise Health.Unavailable when down. *)

val keys : t -> string list
(** Sorted.  @raise Health.Unavailable when down. *)

val size : t -> int
