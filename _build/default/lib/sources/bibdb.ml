type paper = { key : string; title : string; authors : string list; year : int }

type t = { papers : (string, paper) Hashtbl.t; health : Health.t }

let create () = { papers = Hashtbl.create 32; health = Health.create () }

let health t = t.health

let lookup t key =
  Health.check t.health ~name:"bibdb.lookup";
  Hashtbl.find_opt t.papers key

let by_author t author =
  Health.check t.health ~name:"bibdb.by_author";
  Hashtbl.fold
    (fun _ paper acc -> if List.mem author paper.authors then paper :: acc else acc)
    t.papers []
  |> List.sort (fun a b -> compare a.key b.key)

let all_keys t =
  Health.check t.health ~name:"bibdb.all_keys";
  Hashtbl.fold (fun key _ acc -> key :: acc) t.papers [] |> List.sort compare

let add t paper = Hashtbl.replace t.papers paper.key paper

let withdraw t key =
  let existed = Hashtbl.mem t.papers key in
  Hashtbl.remove t.papers key;
  existed

let size t = Hashtbl.length t.papers
