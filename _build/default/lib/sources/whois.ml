module Fields = Map.Make (String)

type t = { entries : (string, string Fields.t) Hashtbl.t; health : Health.t }

let create () = { entries = Hashtbl.create 32; health = Health.create () }

let health t = t.health

let query t name =
  Health.check t.health ~name:"whois.query";
  Option.map Fields.bindings (Hashtbl.find_opt t.entries name)

let dump t =
  Health.check t.health ~name:"whois.dump";
  Hashtbl.fold (fun name fields acc -> (name, Fields.bindings fields) :: acc) t.entries []
  |> List.sort compare

let register t ~name ~fields =
  let m = List.fold_left (fun m (k, v) -> Fields.add k v m) Fields.empty fields in
  Hashtbl.replace t.entries name m

let update_field t ~name ~field ~value =
  match Hashtbl.find_opt t.entries name with
  | None -> false
  | Some fields ->
    Hashtbl.replace t.entries name (Fields.add field value fields);
    true

let unregister t ~name =
  let existed = Hashtbl.mem t.entries name in
  Hashtbl.remove t.entries name;
  existed

let size t = Hashtbl.length t.entries
