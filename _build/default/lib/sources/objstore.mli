(** Object store with attribute subscriptions — the "lookup" personnel
    database class of source (§4.3): a system that can push update
    notifications, including {e conditional} ones evaluated inside the
    source (§3.1.1: "useful when the local database can evaluate
    conditions that cannot be evaluated from the outside").

    Objects are [(class, id)]-addressed attribute maps over
    {!Cm_rule.Value.t}.  Subscriptions fire synchronously on attribute
    change; the optional [filter] receives the old and new values and
    suppresses the callback when it returns [false] — communication that
    never happens, exactly like the paper's 10 %-change example.

    When health is [Silent_drop], subscriptions silently stop firing
    while reads and writes keep succeeding: the undetectable notify
    failure of §5. *)

type t

type callback = id:string -> old_value:Cm_rule.Value.t -> new_value:Cm_rule.Value.t -> unit

type subscription

val create : unit -> t
val health : t -> Health.t

(** {2 Native data interface} *)

val put : t -> cls:string -> id:string -> (string * Cm_rule.Value.t) list -> unit
(** Create or replace an object.  @raise Health.Unavailable when down. *)

val set_attr : t -> cls:string -> id:string -> attr:string -> Cm_rule.Value.t -> bool
(** [false] if the object is missing.  Fires matching subscriptions.
    @raise Health.Unavailable when down. *)

val get_attr : t -> cls:string -> id:string -> attr:string -> Cm_rule.Value.t option
val get : t -> cls:string -> id:string -> (string * Cm_rule.Value.t) list option
val delete : t -> cls:string -> id:string -> bool
val ids : t -> cls:string -> string list
(** Sorted ids of a class. *)

(** {2 Subscription interface} *)

val subscribe :
  t ->
  cls:string ->
  attr:string ->
  ?filter:(old_value:Cm_rule.Value.t -> new_value:Cm_rule.Value.t -> bool) ->
  callback ->
  subscription

val unsubscribe : t -> subscription -> unit

val notifications_sent : t -> int
(** Delivered callbacks since creation — message-cost accounting for the
    conditional-notify experiment. *)

val notifications_suppressed : t -> int
(** Callbacks suppressed by filters (evaluated in-source, never sent). *)
