type t = { files : (string, string) Hashtbl.t; health : Health.t }

let create () = { files = Hashtbl.create 32; health = Health.create () }

let health t = t.health

let read t key =
  Health.check t.health ~name:"kvfile.read";
  Hashtbl.find_opt t.files key

let write t key data =
  Health.check t.health ~name:"kvfile.write";
  Hashtbl.replace t.files key data

let remove t key =
  Health.check t.health ~name:"kvfile.remove";
  let existed = Hashtbl.mem t.files key in
  Hashtbl.remove t.files key;
  existed

let keys t =
  Health.check t.health ~name:"kvfile.keys";
  Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

let size t = Hashtbl.length t.files
