(** Bibliographic information system (§4.3's bibliographic database).

    Native interface: query by paper key or by author.  Read-only for the
    CM; papers are added and withdrawn by librarians (spontaneous
    operations driven by the workload layer).  Substrate for the
    referential-integrity scenario: "every paper authored by a database
    researcher must also be mentioned in the Sybase database" (§4.3). *)

type paper = { key : string; title : string; authors : string list; year : int }

type t

val create : unit -> t
val health : t -> Health.t

(** {2 Native query interface} *)

val lookup : t -> string -> paper option
(** By paper key.  @raise Health.Unavailable when down. *)

val by_author : t -> string -> paper list
(** Papers listing the author, sorted by key.
    @raise Health.Unavailable when down. *)

val all_keys : t -> string list
(** Sorted.  @raise Health.Unavailable when down. *)

(** {2 Librarian interface (local applications only)} *)

val add : t -> paper -> unit
(** Replaces any paper with the same key. *)

val withdraw : t -> string -> bool
val size : t -> int
