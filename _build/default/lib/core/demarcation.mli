(** The Demarcation Protocol [BGM92] in the toolkit's rule language
    (paper §6.1).

    For an inequality constraint X ≤ Y with X and Y at different sites,
    the protocol keeps local limits — X̄ (upper limit on X, at X's site)
    and Ȳ (lower limit on Y, at Y's site) — with the invariant
    X̄ ≤ Ȳ.  The {e local constraint managers of the underlying
    databases} enforce X ≤ X̄ and Y ≥ Ȳ (here: CHECK constraints of the
    relational engine), so X ≤ X̄ ≤ Ȳ ≤ Y always, with {b no
    communication at all} for operations within the limits.

    Crossing a limit requires a limit-change round, which the rules below
    implement; safety hinges on ordering — Ȳ is raised {e before} X̄
    (confirmed by matching the [W(Ylim, m)] event), and X̄ is lowered
    before Ȳ:

    {v
    A: LCReq(Xlim, w)            →δ SlackReq(Ylim, w)
    B: SlackReq(Ylim, w) ∧ grant →δ W(PendY, m)
    B: W(PendY, m)               →δ WR(Ylim, m)
    B: W(Ylim, m) ∧ PendY = m    →δ SlackGrant(Xlim, m)
    A: SlackGrant(Xlim, m)       →δ WR(Xlim, m)
    v}

    (and the mirror image for lowering Y).  Under the [Eager] policy a
    grant raises Ȳ all the way to Y's current value, buying future slack
    at no extra cost; [Conservative] grants exactly the requested amount.
    The policies obey the same safety guarantee and differ in
    limit-change traffic — experiment E4 compares them. *)

type policy = Eager | Conservative

(** Item names for one side of the constraint. *)
type side = {
  bal : string;  (** the constrained value (database item) *)
  lim : string;  (** the local limit (database item, CHECK-enforced) *)
  pend : string;  (** CM-private pending-grant item *)
}

val rules :
  ?prefix:string -> policy:policy -> delta:float -> x:side -> y:side -> unit -> Strategy.t
(** The full rule set for X ≤ Y (both limit directions). *)

val request_increase_x :
  emit:Cmi.emit -> x:side -> wanted:Cm_rule.Value.t -> unit
(** Application-side: ask the CM to raise X̄ to [wanted] (emits the
    spontaneous [LCReq] event). *)

val request_decrease_y :
  emit:Cmi.emit -> y:side -> wanted:Cm_rule.Value.t -> unit
