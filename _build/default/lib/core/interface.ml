open Cm_rule

type item_pattern = Expr.t

let plain base = Expr.Item (base, [])
let family base params = Expr.Item (base, List.map (fun p -> Expr.Var p) params)

type kind =
  | Write
  | No_spontaneous_write
  | Notify
  | Conditional_notify
  | Periodic_notify
  | Read
  | Delete

let kind_to_string = function
  | Write -> "write"
  | No_spontaneous_write -> "no-spontaneous-write"
  | Notify -> "notify"
  | Conditional_notify -> "conditional-notify"
  | Periodic_notify -> "periodic-notify"
  | Read -> "read"
  | Delete -> "delete"

let tt = Expr.Const (Value.Bool true)

let step template = { Rule.guard = tt; template }

let write ?id ~delta item =
  Rule.make ?id ~delta
    ~lhs:(Template.make "WR" [ item; Expr.Var "b" ])
    (Rule.Steps [ step (Template.make "W" [ item; Expr.Var "b" ]) ])

let no_spontaneous_write ?id item =
  Rule.make ?id ~delta:0.0
    ~lhs:(Template.make "Ws" [ item; Expr.Var "b" ])
    Rule.False

let notify ?id ~delta item =
  Rule.make ?id ~delta
    ~lhs:(Template.make "Ws" [ item; Expr.Var "b" ])
    (Rule.Steps [ step (Template.make "N" [ item; Expr.Var "b" ]) ])

let conditional_notify ?id ~delta ~condition item =
  Rule.make ?id ~delta ~lhs_cond:condition
    ~lhs:(Template.make "Ws" [ item; Expr.Var "a"; Expr.Var "b" ])
    (Rule.Steps [ step (Template.make "N" [ item; Expr.Var "b" ]) ])

let relative_change_condition ~threshold =
  Expr.Binop
    ( Expr.Gt,
      Expr.Unop (Expr.Abs, Expr.Binop (Expr.Sub, Expr.Var "b", Expr.Var "a")),
      Expr.Binop (Expr.Mul, Expr.Const (Value.Float threshold), Expr.Var "a") )

let periodic_notify ?id ~period ~delta item =
  Rule.make ?id ~delta
    ~lhs_cond:(Expr.Binop (Expr.Eq, item, Expr.Var "b"))
    ~lhs:(Template.make "P" [ Expr.Const (Value.Float period) ])
    (Rule.Steps [ step (Template.make "N" [ item; Expr.Var "b" ]) ])

let read ?id ~delta item =
  Rule.make ?id ~delta
    ~lhs_cond:(Expr.Binop (Expr.Eq, item, Expr.Var "b"))
    ~lhs:(Template.make "RR" [ item ])
    (Rule.Steps [ step (Template.make "R" [ item; Expr.Var "b" ]) ])

let delete ?id ~delta item =
  Rule.make ?id ~delta
    ~lhs:(Template.make "DR" [ item ])
    (Rule.Steps [ step (Template.make "DEL" [ item ]) ])

let classify (rule : Rule.t) =
  let rhs_names =
    List.map (fun (s : Rule.step) -> s.template.Template.name) (Rule.rhs_steps rule)
  in
  match rule.lhs.Template.name, rule.rhs, rhs_names with
  | "Ws", Rule.False, _ -> Some No_spontaneous_write
  | "WR", _, [ "W" ] -> Some Write
  | "Ws", _, [ "N" ] ->
    if rule.lhs_cond = tt then Some Notify else Some Conditional_notify
  | "P", _, [ "N" ] -> Some Periodic_notify
  | "RR", _, [ "R" ] -> Some Read
  | "DR", _, [ "DEL" ] -> Some Delete
  | _ -> None

let kinds_of_rules rules =
  let kinds = List.filter_map classify rules in
  List.fold_left (fun acc k -> if List.mem k acc then acc else acc @ [ k ]) [] kinds
