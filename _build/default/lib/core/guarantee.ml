open Cm_rule

type copy_pair = { leader : Item.t; follower : Item.t }

type t =
  | Follows of copy_pair
  | Leads of copy_pair
  | Strictly_follows of copy_pair
  | Metric_follows of copy_pair * float
  | Always_leq of { smaller : Item.t; larger : Item.t }
  | Exists_within of { antecedent : Item.t; consequent : Item.t; bound : float }
  | Monitor_window of {
      flag : Item.t;
      tb : Item.t;
      x : Item.t;
      y : Item.t;
      kappa : float;
    }
  | Periodic_equal of {
      x : Item.t;
      y : Item.t;
      period : float;
      valid_from : float;
      valid_to : float;
    }

let name = function
  | Follows _ -> "(1) follows"
  | Leads _ -> "(2) leads"
  | Strictly_follows _ -> "(3) strictly-follows"
  | Metric_follows _ -> "(4) metric-follows"
  | Always_leq _ -> "always-leq"
  | Exists_within _ -> "exists-within"
  | Monitor_window _ -> "monitor-window"
  | Periodic_equal _ -> "periodic-equal"

let to_string = function
  | Follows { leader; follower } ->
    Printf.sprintf "(%s = y)@t1 => (%s = y)@t2 /\\ t2 <= t1" (Item.to_string follower)
      (Item.to_string leader)
  | Leads { leader; follower } ->
    Printf.sprintf "(%s = x)@t1 => (%s = x)@t2 /\\ t2 > t1" (Item.to_string leader)
      (Item.to_string follower)
  | Strictly_follows { leader; follower } ->
    Printf.sprintf "%s takes values in the order %s took them" (Item.to_string follower)
      (Item.to_string leader)
  | Metric_follows ({ leader; follower }, kappa) ->
    Printf.sprintf "(%s = y)@t1 => (%s = y)@t2 /\\ t1 - %g < t2 <= t1"
      (Item.to_string follower) (Item.to_string leader) kappa
  | Always_leq { smaller; larger } ->
    Printf.sprintf "%s <= %s always" (Item.to_string smaller) (Item.to_string larger)
  | Exists_within { antecedent; consequent; bound } ->
    Printf.sprintf "E(%s)@t => E(%s)@[t, t + %g]" (Item.to_string antecedent)
      (Item.to_string consequent) bound
  | Monitor_window { flag; tb; x; y; kappa } ->
    Printf.sprintf "((%s = true) /\\ (%s = s))@t => (%s = %s)@[s, t - %g]"
      (Item.to_string flag) (Item.to_string tb) (Item.to_string x) (Item.to_string y)
      kappa
  | Periodic_equal { x; y; period; valid_from; valid_to } ->
    Printf.sprintf "(%s = %s) during [k*%g + %g, k*%g + %g] for all k"
      (Item.to_string x) (Item.to_string y) period valid_from period valid_to

let is_metric = function
  | Follows _ | Leads _ | Strictly_follows _ | Always_leq _ -> false
  | Metric_follows _ | Exists_within _ | Monitor_window _ | Periodic_equal _ -> true

type report = {
  holds : bool;
  checked_points : int;
  counterexamples : string list;
}

(* --- interval view of a timeline --- *)

(* [(start, stop, value option)] covering [0, horizon), in order. *)
let intervals tl item ~horizon =
  let changes = Timeline.changes tl item in
  let rec build = function
    | [] -> []
    | [ (t, v) ] -> if t >= horizon then [] else [ (t, horizon, v) ]
    | (t, v) :: ((t', _) :: _ as rest) ->
      if t >= horizon then [] else (t, Float.min t' horizon, v) :: build rest
  in
  let built = build changes in
  match built with
  | (t0, _, _) :: _ when t0 > 0.0 -> (0.0, t0, None) :: built
  | [] -> [ (0.0, horizon, None) ]
  | _ -> built

let taken_until tl item limit =
  List.filter (fun (t, _) -> t <= limit) (Timeline.values_taken tl item)

(* --- a small accumulator for obligations --- *)

type acc = { mutable points : int; mutable bad : string list; mutable nbad : int }

let fresh_acc () = { points = 0; bad = []; nbad = 0 }

let obligation acc ok fail_msg =
  acc.points <- acc.points + 1;
  if not ok then begin
    acc.nbad <- acc.nbad + 1;
    if acc.nbad <= 5 then acc.bad <- fail_msg () :: acc.bad
  end

let finish acc =
  { holds = acc.nbad = 0; checked_points = acc.points; counterexamples = List.rev acc.bad }

(* --- the individual checkers --- *)

let check_follows tl ~horizon { leader; follower } =
  let acc = fresh_acc () in
  let leader_taken = taken_until tl leader horizon in
  List.iter
    (fun (t1, y) ->
      let ok = List.exists (fun (t2, x) -> t2 <= t1 && Value.equal x y) leader_taken in
      obligation acc ok (fun () ->
          Printf.sprintf "%s = %s at %.3f but %s never held it before"
            (Item.to_string follower) (Value.to_string y) t1 (Item.to_string leader)))
    (taken_until tl follower horizon);
  finish acc

let check_leads tl ~horizon ~ignore_after { leader; follower } =
  let acc = fresh_acc () in
  let follower_iv = intervals tl follower ~horizon in
  List.iter
    (fun (t1, x) ->
      let ok =
        List.exists
          (fun (_, stop, v) ->
            match v with Some v -> Value.equal v x && stop > t1 | None -> false)
          follower_iv
      in
      obligation acc ok (fun () ->
          Printf.sprintf "%s took %s at %.3f but %s never reflected it"
            (Item.to_string leader) (Value.to_string x) t1 (Item.to_string follower)))
    (taken_until tl leader ignore_after);
  finish acc

let check_strictly tl ~horizon { leader; follower } =
  let acc = fresh_acc () in
  let leader_seq = taken_until tl leader horizon in
  (* Greedy order-embedding of the follower's value sequence into the
     leader's: each follower value must match a leader occurrence after
     the previous match. *)
  let rec embed remaining = function
    | [] -> ()
    | (t1, y) :: rest -> (
      let rec seek = function
        | [] -> None
        | (_, x) :: tail -> if Value.equal x y then Some tail else seek tail
      in
      match seek remaining with
      | Some tail ->
        obligation acc true (fun () -> "");
        embed tail rest
      | None ->
        obligation acc false (fun () ->
            Printf.sprintf "%s = %s at %.3f is out of order w.r.t. %s's history"
              (Item.to_string follower) (Value.to_string y) t1 (Item.to_string leader));
        embed remaining rest)
  in
  embed leader_seq (taken_until tl follower horizon);
  finish acc

let check_metric_follows tl ~horizon { leader; follower } kappa =
  let acc = fresh_acc () in
  let leader_iv = intervals tl leader ~horizon in
  List.iter
    (fun (t1, y) ->
      let ok =
        List.exists
          (fun (start, stop, v) ->
            match v with
            | Some v -> Value.equal v y && start <= t1 && stop > t1 -. kappa
            | None -> false)
          leader_iv
      in
      obligation acc ok (fun () ->
          Printf.sprintf "%s = %s at %.3f but %s did not hold it within the last %gs"
            (Item.to_string follower) (Value.to_string y) t1 (Item.to_string leader)
            kappa))
    (taken_until tl follower horizon);
  finish acc

let check_always_leq tl ~horizon ~smaller ~larger =
  let acc = fresh_acc () in
  let points =
    0.0 :: List.filter (fun t -> t <= horizon) (Timeline.change_times tl)
    |> List.sort_uniq compare
  in
  List.iter
    (fun t ->
      match Timeline.value_at tl smaller t, Timeline.value_at tl larger t with
      | Some a, Some b ->
        obligation acc
          (Value.compare a b <= 0)
          (fun () ->
            Printf.sprintf "at %.3f: %s = %s > %s = %s" t (Item.to_string smaller)
              (Value.to_string a) (Item.to_string larger) (Value.to_string b))
      | _ -> ())
    points;
  finish acc

let check_exists_within tl ~horizon ~antecedent ~consequent ~bound =
  let acc = fresh_acc () in
  let absent =
    List.filter_map
      (fun (start, stop, v) -> if v = None then Some (start, stop) else None)
      (intervals tl consequent ~horizon)
  in
  let present_antecedent =
    List.filter_map
      (fun (start, stop, v) -> if v <> None then Some (start, stop) else None)
      (intervals tl antecedent ~horizon)
  in
  List.iter
    (fun (a, b) ->
      (* Violation iff the antecedent exists at some t with t + bound < b
         and t >= a: the consequent is then absent throughout [t, t+bound]. *)
      let window_end = b -. bound in
      if window_end > a then
        List.iter
          (fun (s, e) ->
            let lo = Float.max a s in
            let hi = Float.min window_end e in
            obligation acc (hi <= lo) (fun () ->
                Printf.sprintf
                  "%s exists at %.3f but %s is absent for more than %gs afterwards"
                  (Item.to_string antecedent) lo (Item.to_string consequent) bound))
          present_antecedent)
    absent;
  if acc.points = 0 then obligation acc true (fun () -> "");
  finish acc

let equal_at tl x y t =
  match Timeline.value_at tl x t, Timeline.value_at tl y t with
  | Some a, Some b -> Value.equal a b
  | _ -> false

let check_monitor tl ~horizon ~flag ~tb ~x ~y ~kappa =
  let acc = fresh_acc () in
  (* The obligation is universally quantified over time, and its truth can
     flip not only at state changes but also κ after one (when a change
     enters the window [s, t − κ]); sample at both families of points. *)
  let changes = List.filter (fun t -> t <= horizon) (Timeline.change_times tl) in
  let shifted =
    List.filter_map
      (fun t -> if t +. kappa <= horizon then Some (t +. kappa) else None)
      changes
  in
  let points = List.sort_uniq compare ((0.0 :: changes) @ shifted) in
  List.iter
    (fun t ->
      match Timeline.value_at tl flag t with
      | Some (Value.Bool true) -> (
        match Timeline.value_at tl tb t with
        | Some s_val when (match s_val with Value.Int _ | Value.Float _ -> true | _ -> false) ->
          let s = Value.to_float s_val in
          let upto = t -. kappa in
          if upto >= s then begin
            let window_points = s :: List.filter (fun p -> p > s && p <= upto) points in
            List.iter
              (fun p ->
                obligation acc (equal_at tl x y p) (fun () ->
                    Printf.sprintf
                      "Flag true at %.3f (Tb = %.3f) but %s <> %s at %.3f"
                      t s (Item.to_string x) (Item.to_string y) p))
              window_points
          end
        | _ -> ())
      | _ -> ())
    points;
  if acc.points = 0 then obligation acc true (fun () -> "");
  finish acc

let check_periodic tl ~horizon ~x ~y ~period ~valid_from ~valid_to =
  let acc = fresh_acc () in
  let points = List.filter (fun t -> t <= horizon) (Timeline.change_times tl) in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    let w_start = (float_of_int !k *. period) +. valid_from in
    let w_end = Float.min ((float_of_int !k *. period) +. valid_to) horizon in
    if w_start > horizon then continue := false
    else begin
      let window_points = w_start :: List.filter (fun p -> p > w_start && p <= w_end) points in
      List.iter
        (fun p ->
          obligation acc (equal_at tl x y p) (fun () ->
              Printf.sprintf "window %d: %s <> %s at %.3f" !k (Item.to_string x)
                (Item.to_string y) p))
        window_points;
      incr k
    end
  done;
  finish acc

let check ?ignore_after ~horizon tl guarantee =
  let ignore_after = Option.value ignore_after ~default:horizon in
  match guarantee with
  | Follows pair -> check_follows tl ~horizon pair
  | Leads pair -> check_leads tl ~horizon ~ignore_after pair
  | Strictly_follows pair -> check_strictly tl ~horizon pair
  | Metric_follows (pair, kappa) -> check_metric_follows tl ~horizon pair kappa
  | Always_leq { smaller; larger } -> check_always_leq tl ~horizon ~smaller ~larger
  | Exists_within { antecedent; consequent; bound } ->
    check_exists_within tl ~horizon ~antecedent ~consequent ~bound
  | Monitor_window { flag; tb; x; y; kappa } ->
    check_monitor tl ~horizon ~flag ~tb ~x ~y ~kappa
  | Periodic_equal { x; y; period; valid_from; valid_to } ->
    check_periodic tl ~horizon ~x ~y ~period ~valid_from ~valid_to

let for_copy_constraint ~source ~target ~kappa =
  let pair = { leader = source; follower = target } in
  [ Follows pair; Leads pair; Strictly_follows pair; Metric_follows (pair, kappa) ]
