(** Messages exchanged between CM-Shells over the network.

    Rule distribution (paper §4.1) places each rule at the shell of its
    LHS site; when it matches there, the binding environment travels to
    the shell of the RHS site as a {!Fire} envelope, where conditions are
    evaluated against local data and the RHS events are produced.
    Failure notices propagate between shells so that affected guarantees
    can be marked invalid at every site (§5). *)

type failure_kind = Metric | Logical

type t =
  | Fire of {
      rule_id : string;
      env : (string * Cm_rule.Expr.binding) list;
      trigger_id : int;
      trigger_time : float;
    }
  | Failure_notice of { origin_site : string; kind : failure_kind }
  | Reset_notice of { origin_site : string }

val env_to_list : Cm_rule.Expr.env -> (string * Cm_rule.Expr.binding) list
val env_of_list : (string * Cm_rule.Expr.binding) list -> Cm_rule.Expr.env
val failure_kind_to_string : failure_kind -> string
