(** CM-Translator for flat key/value file stores.

    The file system offers read and write but {b no change notification},
    so the only interfaces this translator reports are read, write and
    delete — forcing polling strategies on the CM (paper §4.2.3's second
    scenario).  Because the source cannot observe its own changes, the
    ground-truth [Ws] events for spontaneous application writes are
    recorded by {!write_app} / {!remove_app}, which workload drivers must
    use instead of touching the {!Cm_sources.Kvfile.t} directly.

    Items map to file keys through key templates: binding
    [("Phone", ["n"], "phone.$n")] stores phone("ann") in file
    ["phone.ann"].  Scalars are encoded as their literal syntax. *)

type item_binding = {
  base : string;
  params : string list;
  key_template : string;  (** [$param] substitution *)
  writable : bool;
}

type t

val create :
  sim:Cm_sim.Sim.t ->
  fs:Cm_sources.Kvfile.t ->
  site:string ->
  emit:Cmi.emit ->
  report:Cmi.failure_report ->
  ?latency:float ->
  ?delta:float ->
  item_binding list ->
  t
(** [latency] (default 0.1 s) applies to each operation; [delta] (default
    5 × latency) is the reported interface bound. *)

val cmi : t -> Cmi.t
val interface_rules : t -> Cm_rule.Rule.t list
val health : t -> Cm_sources.Health.t

val key_of : t -> Cm_rule.Item.t -> string option
(** The file key an item maps to. *)

val write_app : t -> Cm_rule.Item.t -> Cm_rule.Value.t -> unit
(** Spontaneous application write: performs the native write and records
    the [Ws] ground truth.  @raise Health.Unavailable when down. *)

val remove_app : t -> Cm_rule.Item.t -> unit
(** Spontaneous removal; records [DEL]. *)
