lib/core/tr_bibdb.mli: Cm_rule Cm_sim Cm_sources Cmi
