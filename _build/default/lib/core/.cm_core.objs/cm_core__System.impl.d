lib/core/system.ml: Cm_net Cm_rule Cm_sim Cmi Expr Guarantee Hashtbl Item List Msg Printf Rule Shell Strategy String Template Timeline Trace Validity Value
