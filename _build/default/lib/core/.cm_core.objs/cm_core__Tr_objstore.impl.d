lib/core/tr_objstore.ml: Cm_rule Cm_sim Cm_sources Cmi Event Expr Hashtbl Interface Item List Logs Msg Option Printf Rule Value
