lib/core/interface.ml: Cm_rule Expr List Rule Template Value
