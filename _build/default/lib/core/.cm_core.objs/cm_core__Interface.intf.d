lib/core/interface.mli: Cm_rule
