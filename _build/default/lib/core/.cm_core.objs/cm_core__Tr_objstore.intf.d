lib/core/tr_objstore.mli: Cm_rule Cm_sim Cm_sources Cmi
