lib/core/tr_relational.mli: Cm_relational Cm_rule Cm_sim Cm_sources Cmi
