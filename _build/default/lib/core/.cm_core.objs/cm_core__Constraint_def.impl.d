lib/core/constraint_def.ml: Cm_rule Printf
