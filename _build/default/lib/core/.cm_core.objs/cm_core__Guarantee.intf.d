lib/core/guarantee.mli: Cm_rule
