lib/core/toolkit.mli: Cm_net Cm_relational Cm_sources Cmrid Shell System Tr_kvfile Tr_relational
