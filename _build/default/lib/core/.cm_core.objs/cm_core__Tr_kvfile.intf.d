lib/core/tr_kvfile.mli: Cm_rule Cm_sim Cm_sources Cmi
