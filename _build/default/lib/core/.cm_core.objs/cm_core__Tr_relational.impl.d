lib/core/tr_relational.ml: Cm_relational Cm_rule Cm_sim Cm_sources Cmi Event Expr Hashtbl Interface Item List Logs Msg Printf Rule String Value
