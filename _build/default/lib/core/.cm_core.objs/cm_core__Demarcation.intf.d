lib/core/demarcation.mli: Cm_rule Cmi Strategy
