lib/core/derive.mli: Cm_rule
