lib/core/tr_whois.mli: Cm_rule Cm_sim Cm_sources Cmi
