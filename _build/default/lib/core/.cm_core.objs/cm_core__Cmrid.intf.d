lib/core/cmrid.mli: Cm_rule
