lib/core/cmi.ml: Cm_rule Msg
