lib/core/cmi.mli: Cm_rule Msg
