lib/core/constraint_def.mli: Cm_rule
