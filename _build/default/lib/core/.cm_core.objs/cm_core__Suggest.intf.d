lib/core/suggest.mli: Constraint_def Guarantee Interface Strategy
