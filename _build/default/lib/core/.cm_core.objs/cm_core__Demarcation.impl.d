lib/core/demarcation.ml: Cm_rule Event Expr Item Rule Strategy Template Value
