lib/core/system.mli: Cm_net Cm_rule Cm_sim Cmi Guarantee Msg Shell Strategy
