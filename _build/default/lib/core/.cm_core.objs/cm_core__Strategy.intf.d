lib/core/strategy.mli: Cm_rule
