lib/core/msg.ml: Cm_rule List
