lib/core/store.ml: Cm_rule List
