lib/core/guarantee.ml: Cm_rule Float Item List Option Printf Timeline Value
