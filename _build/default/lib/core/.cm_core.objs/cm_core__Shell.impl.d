lib/core/shell.ml: Cm_net Cm_rule Cm_sim Cmi Event Expr Hashtbl Item List Logs Msg Option Rule Store String Template Trace Value
