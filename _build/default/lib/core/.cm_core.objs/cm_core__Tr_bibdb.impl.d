lib/core/tr_bibdb.ml: Cm_rule Cm_sim Cm_sources Cmi Event Interface Item Logs Msg Option Printf String Value
