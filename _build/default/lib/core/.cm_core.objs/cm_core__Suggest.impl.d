lib/core/suggest.ml: Cm_rule Constraint_def Demarcation Expr Guarantee Interface Item List Printf Rule Strategy String Template Value
