lib/core/store.mli: Cm_rule
