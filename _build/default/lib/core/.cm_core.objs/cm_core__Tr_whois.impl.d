lib/core/tr_whois.ml: Cm_rule Cm_sim Cm_sources Cmi Event Hashtbl Interface Item List Logs Msg Option Printf Rule String Value
