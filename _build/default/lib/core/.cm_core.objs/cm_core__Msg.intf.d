lib/core/msg.mli: Cm_rule
