lib/core/shell.mli: Cm_net Cm_rule Cm_sim Cmi Msg
