lib/core/toolkit.ml: Cm_relational Cm_rule Cm_sources Cmrid Float Hashtbl Interface List Option Printf Result Shell Strategy String System Tr_kvfile Tr_relational
