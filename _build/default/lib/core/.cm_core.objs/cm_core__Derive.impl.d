lib/core/derive.ml: Cm_rule Constraint_def Expr Float Interface List Option Printf Rule String Template Value
