lib/core/cmrid.ml: Cm_rule Hashtbl In_channel List Printf String
