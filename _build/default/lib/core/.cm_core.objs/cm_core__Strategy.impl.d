lib/core/strategy.ml: Cm_rule Expr Item List Rule String Template Value
