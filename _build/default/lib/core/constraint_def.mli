(** Inter-site constraint declarations.

    Applications inform the CM of the constraints to maintain (paper
    Figure 1); these are the forms the toolkit's strategy-suggestion
    menu covers.  Parameterized families (e.g. salary1(n) = salary2(n)
    for all n) are expressed by using items with no parameters as family
    representatives — the locator maps a whole family to one site, so
    strategy rules generated from the representative cover every
    instance. *)

type t =
  | Copy of { source : Cm_rule.Expr.t; target : Cm_rule.Expr.t }
      (** maintain target as a copy of source (§3.3.1); both are item
          patterns ([Interface.plain] or [Interface.family]) *)
  | Leq of { smaller : Cm_rule.Item.t; larger : Cm_rule.Item.t }
      (** X ≤ Y with X and Y at different sites (§6.1) *)
  | Ref_int of {
      parent : string;  (** item base whose existence is required *)
      child : string;  (** item base requiring the parent *)
      bound : float;  (** tolerated violation window, seconds (§6.2) *)
    }

val to_string : t -> string

val base_of_pattern : Cm_rule.Expr.t -> string
(** Base name of an item pattern.  @raise Invalid_argument otherwise. *)
