(** The menu of proven constraint-management strategies (paper §3.2, §4).

    A strategy is a set of rules (plus any CM auxiliary data it needs);
    the toolkit distributes the rules to shells by LHS site and registers
    the periodic timers the rules mention.  Item arguments are patterns:
    {!Interface.plain} items or {!Interface.family} families — family
    strategies cover every instance through parameter binding, like the
    paper's salary1(n)/salary2(n) example. *)

type t = {
  strategy_name : string;
  description : string;
  rules : Cm_rule.Rule.t list;
  aux_init : (Cm_rule.Item.t * Cm_rule.Value.t) list;
      (** CM private data to initialize, at the RHS shell *)
}

val propagate :
  ?prefix:string -> delta:float -> source:Cm_rule.Expr.t -> target:Cm_rule.Expr.t -> unit -> t
(** Update propagation (§3.2, §4.2.2): [N(X, b) →δ WR(Y, b)].  Requires a
    notify interface on the source and a write interface on the target.
    Validates guarantees (1)–(4). *)

val propagate_cached :
  ?prefix:string ->
  delta:float ->
  source:Cm_rule.Expr.t ->
  target:Cm_rule.Expr.t ->
  cache:string ->
  unit ->
  t
(** Caching propagation (§3.2): forward only when the value differs from
    the CM-cached copy, then update the cache:
    [N(X, b) →δ (Cx ≠ b) ? WR(Y, b), W(Cx, b)]. *)

val poll :
  ?prefix:string ->
  period:float ->
  delta:float ->
  source:Cm_rule.Expr.t ->
  target:Cm_rule.Expr.t ->
  unit ->
  t
(** Polling (§4.2.3's second scenario), for sources offering only a read
    interface: [P(p) →ε RR(X)] and [R(X, b) →δ WR(Y, b)].  Validates
    guarantees (1), (3), (4) but {b not} (2): updates inside one polling
    interval are missed.  Plain (non-family) items only — a read request
    must name a concrete item. *)

val monitor :
  ?prefix:string ->
  delta:float ->
  x:Cm_rule.Expr.t ->
  y:Cm_rule.Expr.t ->
  unit ->
  t
(** Monitoring (§6.3), when the CM can write neither item: maintain
    caches Cx/Cy plus Flag/Tb auxiliary data at the application's shell.
    Flag true with Tb = s means X = Y held throughout [s, now − κ].
    Aux items are named [Flag_<prefix>], [Tb_<prefix>], etc. *)

type monitor_aux = {
  flag : Cm_rule.Item.t;
  tb : Cm_rule.Item.t;
  cx : Cm_rule.Item.t;
  cy : Cm_rule.Item.t;
}

val monitor_items : ?prefix:string -> unit -> monitor_aux
(** The auxiliary item names a [monitor] strategy with the same [prefix]
    uses — needed to express its guarantee and to read it (§7.1). *)

val refint_cache :
  ?prefix:string -> delta:float -> parent:string -> cache:string -> unit -> t
(** Maintain a CM-local existence cache of the parent family at the
    child's shell from INS/DEL events — the local data a referential
    integrity sweep needs (§6.2):
    [INS(P(k)) →δ W(C(k), true)] and [DEL(P(k)) →δ W(C(k), false)]. *)

val end_of_day :
  ?prefix:string -> delta:float -> source:Cm_rule.Expr.t -> target:Cm_rule.Expr.t -> unit -> t
(** The propagation half of the banking scenario (§6.4):
    [R(X, b) →δ WR(Y, b)] — paired with a host-driven end-of-day read
    sweep issuing the RR requests. *)

val combine : t list -> t
(** Union of rules and aux data; name/description concatenated. *)
