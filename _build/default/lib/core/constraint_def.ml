type t =
  | Copy of { source : Cm_rule.Expr.t; target : Cm_rule.Expr.t }
  | Leq of { smaller : Cm_rule.Item.t; larger : Cm_rule.Item.t }
  | Ref_int of { parent : string; child : string; bound : float }

let base_of_pattern = function
  | Cm_rule.Expr.Item (base, _) -> base
  | e ->
    invalid_arg
      ("Constraint_def: not an item pattern: " ^ Cm_rule.Expr.to_string e)

let to_string = function
  | Copy { source; target } ->
    Printf.sprintf "%s = %s (copy)" (Cm_rule.Expr.to_string target)
      (Cm_rule.Expr.to_string source)
  | Leq { smaller; larger } ->
    Printf.sprintf "%s <= %s" (Cm_rule.Item.to_string smaller)
      (Cm_rule.Item.to_string larger)
  | Ref_int { parent; child; bound } ->
    Printf.sprintf "E(%s(k)) requires E(%s(k)) within %gs" child parent bound
