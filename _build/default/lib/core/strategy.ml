open Cm_rule

type t = {
  strategy_name : string;
  description : string;
  rules : Rule.t list;
  aux_init : (Item.t * Value.t) list;
}

let tt = Expr.Const (Value.Bool true)
let step ?(guard = tt) template = { Rule.guard; template }
let var x = Expr.Var x

let rid prefix name =
  match prefix with Some p -> p ^ "/" ^ name | None -> name

let propagate ?prefix ~delta ~source ~target () =
  {
    strategy_name = "propagate";
    description = "forward every notification as a write request";
    rules =
      [
        Rule.make ~id:(rid prefix "prop") ~delta
          ~lhs:(Template.make "N" [ source; var "b" ])
          (Rule.Steps [ step (Template.make "WR" [ target; var "b" ]) ]);
      ];
    aux_init = [];
  }

let propagate_cached ?prefix ~delta ~source ~target ~cache () =
  let cache_item = Expr.Item (cache, []) in
  {
    strategy_name = "propagate-cached";
    description = "forward notifications whose value differs from the CM cache";
    rules =
      [
        Rule.make ~id:(rid prefix "propc") ~delta
          ~lhs:(Template.make "N" [ source; var "b" ])
          (Rule.Steps
             [
               step
                 ~guard:(Expr.Binop (Expr.Ne, cache_item, var "b"))
                 (Template.make "WR" [ target; var "b" ]);
               step (Template.make "W" [ cache_item; var "b" ]);
             ]);
      ];
    (* The cache starts as Null, which differs from every real value, so
       the first notification is always forwarded. *)
    aux_init = [ (Item.make cache, Value.Null) ];
  }

let poll ?prefix ~period ~delta ~source ~target () =
  (match source with
   | Expr.Item (_, args)
     when List.for_all (function Expr.Const _ -> true | _ -> false) args ->
     ()
   | _ -> invalid_arg "Strategy.poll: the polled item must be a concrete item");
  {
    strategy_name = "poll";
    description = "periodically read the source and forward the value";
    rules =
      [
        Rule.make ~id:(rid prefix "tick") ~delta:1.0
          ~lhs:(Template.make "P" [ Expr.Const (Value.Float period) ])
          (Rule.Steps [ step (Template.make "RR" [ source ]) ]);
        Rule.make ~id:(rid prefix "fwd") ~delta
          ~lhs:(Template.make "R" [ source; var "b" ])
          (Rule.Steps [ step (Template.make "WR" [ target; var "b" ]) ]);
      ];
    aux_init = [];
  }

type monitor_aux = { flag : Item.t; tb : Item.t; cx : Item.t; cy : Item.t }

let monitor_base ?prefix () =
  let suffix = match prefix with Some p -> "_" ^ p | None -> "" in
  ( "Flag" ^ suffix, "Tb" ^ suffix, "Cx" ^ suffix, "Cy" ^ suffix )

let monitor_items ?prefix () =
  let flag, tb, cx, cy = monitor_base ?prefix () in
  {
    flag = Item.make flag;
    tb = Item.make tb;
    cx = Item.make cx;
    cy = Item.make cy;
  }

let monitor ?prefix ~delta ~x ~y () =
  let flag, tb, cx, cy = monitor_base ?prefix () in
  let fi = Expr.Item (flag, []) in
  let tbi = Expr.Item (tb, []) in
  let cxi = Expr.Item (cx, []) in
  let cyi = Expr.Item (cy, []) in
  let clock = Expr.Item ("Clock", []) in
  let eq a b = Expr.Binop (Expr.Eq, a, b) in
  let ne a b = Expr.Binop (Expr.Ne, a, b) in
  let conj a b = Expr.Binop (Expr.And, a, b) in
  let caches_equal = eq cxi cyi in
  let flag_false = eq fi (Expr.Const (Value.Bool false)) in
  (* On each notification: refresh the cache, then (caches equal and the
     flag was down) start a new validity window at the current time, then
     set or clear the flag.  Step order matters: Tb is written before
     Flag so a reader seeing Flag = true also sees the matching Tb. *)
  let on_notify id cache_to_update source_pattern =
    Rule.make ~id ~delta
      ~lhs:(Template.make "N" [ source_pattern; var "b" ])
      (Rule.Steps
         [
           step (Template.make "W" [ cache_to_update; var "b" ]);
           step
             ~guard:(conj caches_equal (conj flag_false (eq clock (var "t"))))
             (Template.make "W" [ tbi; var "t" ]);
           step ~guard:caches_equal
             (Template.make "W" [ fi; Expr.Const (Value.Bool true) ]);
           step ~guard:(ne cxi cyi)
             (Template.make "W" [ fi; Expr.Const (Value.Bool false) ]);
         ])
  in
  {
    strategy_name = "monitor";
    description = "maintain Flag/Tb auxiliary data indicating when X = Y held";
    rules =
      [
        on_notify (rid prefix "monx") cxi x;
        on_notify (rid prefix "mony") cyi y;
      ];
    aux_init =
      [
        (Item.make flag, Value.Bool false);
        (Item.make tb, Value.Float 0.0);
      ];
  }

let refint_cache ?prefix ~delta ~parent ~cache () =
  let parent_pat = Expr.Item (parent, [ var "k" ]) in
  let cache_pat = Expr.Item (cache, [ var "k" ]) in
  {
    strategy_name = "refint-cache";
    description = "mirror parent existence into a CM-local cache";
    rules =
      [
        Rule.make ~id:(rid prefix "ins") ~delta
          ~lhs:(Template.make "INS" [ parent_pat ])
          (Rule.Steps
             [ step (Template.make "W" [ cache_pat; Expr.Const (Value.Bool true) ]) ]);
        Rule.make ~id:(rid prefix "del") ~delta
          ~lhs:(Template.make "DEL" [ parent_pat ])
          (Rule.Steps
             [ step (Template.make "W" [ cache_pat; Expr.Const (Value.Bool false) ]) ]);
      ];
    aux_init = [];
  }

let end_of_day ?prefix ~delta ~source ~target () =
  {
    strategy_name = "end-of-day";
    description = "forward read responses (paired with an end-of-day read sweep)";
    rules =
      [
        Rule.make ~id:(rid prefix "eod") ~delta
          ~lhs:(Template.make "R" [ source; var "b" ])
          (Rule.Steps [ step (Template.make "WR" [ target; var "b" ]) ]);
      ];
    aux_init = [];
  }

let combine ts =
  {
    strategy_name = String.concat "+" (List.map (fun t -> t.strategy_name) ts);
    description = String.concat "; " (List.map (fun t -> t.description) ts);
    rules = List.concat_map (fun t -> t.rules) ts;
    aux_init = List.concat_map (fun t -> t.aux_init) ts;
  }
