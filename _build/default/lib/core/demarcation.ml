open Cm_rule

type policy = Eager | Conservative

type side = { bal : string; lim : string; pend : string }

let tt = Expr.Const (Value.Bool true)
let step ?(guard = tt) template = { Rule.guard; template }
let var x = Expr.Var x
let item name = Expr.Item (name, [])

let rid prefix name = match prefix with Some p -> p ^ "/" ^ name | None -> name

let rules ?prefix ~policy ~delta ~x ~y () =
  let le a b = Expr.Binop (Expr.Le, a, b) in
  let ge a b = Expr.Binop (Expr.Ge, a, b) in
  let eq a b = Expr.Binop (Expr.Eq, a, b) in
  let conj a b = Expr.Binop (Expr.And, a, b) in
  (* Raising X's upper limit: B grants by first raising Ȳ. *)
  let grant_y_guard =
    match policy with
    | Conservative -> conj (le (var "w") (item y.bal)) (eq (var "m") (var "w"))
    | Eager -> conj (le (var "w") (item y.bal)) (eq (item y.bal) (var "m"))
  in
  let raise_x =
    [
      Rule.make ~id:(rid prefix "reqx") ~delta
        ~lhs:(Template.make "LCReq" [ item x.lim; var "w" ])
        (Rule.Steps [ step (Template.make "SlackReq" [ item y.lim; var "w" ]) ]);
      Rule.make ~id:(rid prefix "granty") ~delta
        ~lhs:(Template.make "SlackReq" [ item y.lim; var "w" ])
        (Rule.Steps
           [ step ~guard:grant_y_guard (Template.make "W" [ item y.pend; var "m" ]) ]);
      Rule.make ~id:(rid prefix "limy") ~delta
        ~lhs:(Template.make "W" [ item y.pend; var "m" ])
        (Rule.Steps [ step (Template.make "WR" [ item y.lim; var "m" ]) ]);
      Rule.make ~id:(rid prefix "confy") ~delta
        ~lhs_cond:(eq (item y.pend) (var "m"))
        ~lhs:(Template.make "W" [ item y.lim; var "m" ])
        (Rule.Steps [ step (Template.make "SlackGrant" [ item x.lim; var "m" ]) ]);
      Rule.make ~id:(rid prefix "applyx") ~delta
        ~lhs:(Template.make "SlackGrant" [ item x.lim; var "m" ])
        (Rule.Steps [ step (Template.make "WR" [ item x.lim; var "m" ]) ]);
    ]
  in
  (* Lowering Y's lower limit: A grants by first lowering X̄. *)
  let grant_x_guard =
    match policy with
    | Conservative -> conj (ge (var "w") (item x.bal)) (eq (var "m") (var "w"))
    | Eager -> conj (ge (var "w") (item x.bal)) (eq (item x.bal) (var "m"))
  in
  let lower_y =
    [
      Rule.make ~id:(rid prefix "reqy") ~delta
        ~lhs:(Template.make "LCReqY" [ item y.lim; var "w" ])
        (Rule.Steps [ step (Template.make "ShrinkReq" [ item x.lim; var "w" ]) ]);
      Rule.make ~id:(rid prefix "grantx") ~delta
        ~lhs:(Template.make "ShrinkReq" [ item x.lim; var "w" ])
        (Rule.Steps
           [ step ~guard:grant_x_guard (Template.make "W" [ item x.pend; var "m" ]) ]);
      Rule.make ~id:(rid prefix "limx") ~delta
        ~lhs:(Template.make "W" [ item x.pend; var "m" ])
        (Rule.Steps [ step (Template.make "WR" [ item x.lim; var "m" ]) ]);
      Rule.make ~id:(rid prefix "confx") ~delta
        ~lhs_cond:(eq (item x.pend) (var "m"))
        ~lhs:(Template.make "W" [ item x.lim; var "m" ])
        (Rule.Steps [ step (Template.make "ShrinkGrant" [ item y.lim; var "m" ]) ]);
      Rule.make ~id:(rid prefix "applyy") ~delta
        ~lhs:(Template.make "ShrinkGrant" [ item y.lim; var "m" ])
        (Rule.Steps [ step (Template.make "WR" [ item y.lim; var "m" ]) ]);
    ]
  in
  {
    Strategy.strategy_name =
      (match policy with Eager -> "demarcation-eager" | Conservative -> "demarcation-conservative");
    description = "Demarcation Protocol for X <= Y with limit-change rules";
    rules = raise_x @ lower_y;
    (* The pending items start absent on purpose: a limit write before any
       grant leaves the confirmation rules' conditions unevaluable (hence
       false), so set-up writes never look like grant confirmations. *)
    aux_init = [];
  }

let request_increase_x ~emit ~x ~wanted =
  ignore
    (emit
       { Event.name = "LCReq"; args = [ Event.Ai (Item.make x.lim); Event.Av wanted ] }
       ~kind:Event.Spontaneous)

let request_decrease_y ~emit ~y ~wanted =
  ignore
    (emit
       { Event.name = "LCReqY"; args = [ Event.Ai (Item.make y.lim); Event.Av wanted ] }
       ~kind:Event.Spontaneous)
