(** CM-Translator for the object store — the notification-rich source.

    Items map to class attributes with the item's parameter as the
    object id: binding [("Phone", cls:"person", attr:"phone")] surfaces
    phone("ann") as attribute ["phone"] of object [("person", "ann")].

    Offers the full interface menu: read, write, plain notify, and
    conditional notify where the filter condition is evaluated {e inside
    the source} — the messages a filter suppresses are never sent, which
    experiment E10 measures (paper §3.1.1). *)

type notify_mode =
  | No_notify
  | Plain
  | Filtered of {
      filter : old_value:Cm_rule.Value.t -> new_value:Cm_rule.Value.t -> bool;
      filter_expr : Cm_rule.Expr.t;  (** over [a] (old) and [b] (new) *)
    }

type item_binding = {
  base : string;
  cls : string;
  attr : string;
  writable : bool;
  notify : notify_mode;
}

type t

val create :
  sim:Cm_sim.Sim.t ->
  store:Cm_sources.Objstore.t ->
  site:string ->
  emit:Cmi.emit ->
  report:Cmi.failure_report ->
  ?latency:float ->
  ?notify_latency:float ->
  ?delta:float ->
  ?notify_delta:float ->
  item_binding list ->
  t
(** Subscribes to the store for every notify binding.  Defaults:
    [latency] 0.1 s, [notify_latency] 0.5 s, deltas 5× each. *)

val cmi : t -> Cmi.t
val interface_rules : t -> Cm_rule.Rule.t list
val health : t -> Cm_sources.Health.t

val set_app : t -> Cm_rule.Item.t -> Cm_rule.Value.t -> bool
(** Spontaneous application write through the native interface; the
    store's subscription mechanism produces the [Ws]/[N] events.
    [false] if the object does not exist. *)
