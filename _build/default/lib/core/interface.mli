(** The menu of standard database interfaces (paper §3.1.1).

    Each constructor builds the interface statement(s) for one data item
    (or parameterized item family) as {!Cm_rule.Rule.t} values.  These
    rules are what a CM-Translator reports when queried during toolkit
    initialization, what the strategy-suggestion engine matches on, and
    what the validity checker verifies against the trace.

    Items are given as templates: [Item ("Salary1", [Var "n"])] denotes
    the parameterized family salary1(n). *)

type item_pattern = Cm_rule.Expr.t
(** An [Item (base, args)] expression. *)

val plain : string -> item_pattern
(** 0-ary item. *)

val family : string -> string list -> item_pattern
(** [family "Salary1" ["n"]] is salary1(n). *)

(** Which of the standard interfaces a rule set provides — the
    capability vocabulary used by strategy suggestion. *)
type kind =
  | Write  (** [WR(X, b) →δ W(X, b)] *)
  | No_spontaneous_write  (** [Ws(X, b) → ℱ] *)
  | Notify  (** [Ws(X, b) →δ N(X, b)] *)
  | Conditional_notify  (** notify filtered by a condition *)
  | Periodic_notify  (** [P(p) ∧ (X = b) →ε N(X, b)] *)
  | Read  (** [RR(X) ∧ (X = b) →δ R(X, b)] *)
  | Delete  (** [DR(X) →δ DEL(X)] — for referential-integrity sweeps *)

val kind_to_string : kind -> string

val write : ?id:string -> delta:float -> item_pattern -> Cm_rule.Rule.t
val no_spontaneous_write : ?id:string -> item_pattern -> Cm_rule.Rule.t
val notify : ?id:string -> delta:float -> item_pattern -> Cm_rule.Rule.t

val conditional_notify :
  ?id:string -> delta:float -> condition:Cm_rule.Expr.t -> item_pattern -> Cm_rule.Rule.t
(** [condition] ranges over [a] (old value) and [b] (new value); the LHS
    is the three-argument [Ws(X, a, b)] form. *)

val relative_change_condition : threshold:float -> Cm_rule.Expr.t
(** [|b - a| > threshold * a], the paper's 10 %-change example for
    [threshold = 0.1]. *)

val periodic_notify : ?id:string -> period:float -> delta:float -> item_pattern -> Cm_rule.Rule.t
val read : ?id:string -> delta:float -> item_pattern -> Cm_rule.Rule.t
val delete : ?id:string -> delta:float -> item_pattern -> Cm_rule.Rule.t

val classify : Cm_rule.Rule.t -> kind option
(** Recognize which standard interface a rule expresses, if any. *)

val kinds_of_rules : Cm_rule.Rule.t list -> kind list
(** Distinct kinds among the recognizable rules, in stable order. *)
