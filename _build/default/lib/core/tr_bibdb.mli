(** CM-Translator for the bibliographic information system.

    Surfaces the paper catalog as an existence family: item
    [<base>(key)] exists iff the paper with that key is present; its
    value is the paper's title.  Read-only — the source of truth for the
    referential-integrity scenario of §4.3/§6.2 ("every paper authored
    by a database researcher … must also be mentioned in the Sybase
    database").

    Librarian operations ({!add_app}, {!withdraw_app}) record the
    ground-truth [INS]/[DEL] events. *)

type t

val create :
  sim:Cm_sim.Sim.t ->
  db:Cm_sources.Bibdb.t ->
  site:string ->
  emit:Cmi.emit ->
  report:Cmi.failure_report ->
  ?latency:float ->
  ?delta:float ->
  base:string ->
  unit ->
  t
(** Defaults: [latency] 0.5 s, [delta] 5×. *)

val cmi : t -> Cmi.t
val interface_rules : t -> Cm_rule.Rule.t list
val health : t -> Cm_sources.Health.t

val papers_by_author : t -> string -> Cm_sources.Bibdb.paper list
(** Set-oriented query used by host-language sweep strategies. *)

val add_app : t -> Cm_sources.Bibdb.paper -> unit
val withdraw_app : t -> string -> bool
