open Cm_rule

type candidate = {
  candidate_name : string;
  strategy : Strategy.t;
  guarantees : Guarantee.t list;
  notes : string;
}

type bounds = {
  rule_delta : float;
  notify_delta : float;
  write_delta : float;
  poll_period : float;
}

let default_bounds =
  { rule_delta = 5.0; notify_delta = 5.0; write_delta = 1.0; poll_period = 60.0 }

(* Guarantees are expressed over representative concrete items; for a
   family pattern the representative is the bare base item. *)
let representative = function
  | Expr.Item (base, []) -> Item.make base
  | Expr.Item (base, args) ->
    let concrete =
      List.filter_map (function Expr.Const v -> Some v | _ -> None) args
    in
    if List.length concrete = List.length args then Item.make base ~params:concrete
    else Item.make base
  | e -> invalid_arg ("Suggest: not an item pattern: " ^ Expr.to_string e)

let has kind kinds = List.mem kind kinds

let copy_candidates bounds interfaces source target =
  let source_base = Constraint_def.base_of_pattern source in
  let target_base = Constraint_def.base_of_pattern target in
  let src_kinds = interfaces source_base in
  let tgt_kinds = interfaces target_base in
  let src_item = representative source in
  let tgt_item = representative target in
  let pair = { Guarantee.leader = src_item; follower = tgt_item } in
  let kappa = bounds.notify_delta +. bounds.rule_delta +. bounds.write_delta in
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  if has Interface.Write tgt_kinds then begin
    if has Interface.Notify src_kinds then begin
      add
        {
          candidate_name = "propagate";
          strategy =
            Strategy.propagate ~prefix:target_base ~delta:bounds.rule_delta ~source
              ~target ();
          guarantees =
            [
              Guarantee.Follows pair;
              Guarantee.Leads pair;
              Guarantee.Strictly_follows pair;
              Guarantee.Metric_follows (pair, kappa);
            ];
          notes = "notify source + write target: all four §3.3.1 guarantees";
        };
      add
        {
          candidate_name = "propagate-cached";
          strategy =
            Strategy.propagate_cached ~prefix:target_base ~delta:bounds.rule_delta
              ~source ~target
              ~cache:("C_" ^ target_base)
              ();
          guarantees =
            [
              Guarantee.Follows pair;
              Guarantee.Leads pair;
              Guarantee.Strictly_follows pair;
              Guarantee.Metric_follows (pair, kappa);
            ];
          notes =
            "as propagate, but duplicate values are not re-sent; locate the \
             cache item C_<target> at the target's shell";
        }
    end;
    if has Interface.Conditional_notify src_kinds && not (has Interface.Notify src_kinds)
    then
      add
        {
          candidate_name = "propagate (filtered notifications)";
          strategy =
            Strategy.propagate ~prefix:target_base ~delta:bounds.rule_delta ~source
              ~target ();
          guarantees = [ Guarantee.Follows pair; Guarantee.Strictly_follows pair ];
          notes =
            "the source filters small changes, so values can be missed: \
             guarantees (2) and (4) are not offered";
        };
    if has Interface.Periodic_notify src_kinds && not (has Interface.Notify src_kinds)
    then
      add
        {
          candidate_name = "propagate (periodic notifications)";
          strategy =
            Strategy.propagate ~prefix:target_base ~delta:bounds.rule_delta ~source
              ~target ();
          guarantees =
            [
              Guarantee.Follows pair;
              Guarantee.Strictly_follows pair;
              Guarantee.Metric_follows (pair, kappa +. bounds.poll_period);
            ];
          notes = "updates between periodic reports are missed: no guarantee (2)";
        };
    if
      has Interface.Read src_kinds
      && not (has Interface.Notify src_kinds)
      && not (has Interface.Conditional_notify src_kinds)
      && not (has Interface.Periodic_notify src_kinds)
    then begin
      let is_concrete =
        match source with
        | Expr.Item (_, args) ->
          List.for_all (function Expr.Const _ -> true | _ -> false) args
        | _ -> false
      in
      let strategy, extra_note =
        if is_concrete then
          ( Strategy.poll ~prefix:target_base ~period:bounds.poll_period
              ~delta:bounds.rule_delta ~source ~target (),
            "" )
        else
          (* A read request must name a concrete item, so a parameterized
             family gets only the forwarding half here; the toolkit user
             installs one tick rule per instance. *)
          ( {
              Strategy.strategy_name = "poll-family";
              description = "forward read responses (per-instance tick rules required)";
              rules =
                [
                  Rule.make ~id:(target_base ^ "/fwd") ~delta:bounds.rule_delta
                    ~lhs:(Template.make "R" [ source; Expr.Var "b" ])
                    (Rule.Steps
                       [
                         {
                           Rule.guard = Expr.Const (Value.Bool true);
                           template = Template.make "WR" [ target; Expr.Var "b" ];
                         };
                       ]);
                ];
              aux_init = [];
            },
            "; install one P(p) -> RR rule per family instance" )
      in
      add
        {
          candidate_name = "poll";
          strategy;
          guarantees =
            [
              Guarantee.Follows pair;
              Guarantee.Strictly_follows pair;
              Guarantee.Metric_follows
                (pair, bounds.poll_period +. kappa +. bounds.rule_delta);
            ];
          notes =
            "read-only source: updates inside one polling interval are missed, \
             so guarantee (2) is not offered (§4.2.3)" ^ extra_note;
        }
    end
  end;
  (* No write access to the target: monitoring is the best we can do. *)
  if
    (not (has Interface.Write tgt_kinds))
    && (has Interface.Notify src_kinds || has Interface.Conditional_notify src_kinds)
    && (has Interface.Notify tgt_kinds || has Interface.Conditional_notify tgt_kinds)
  then begin
    let aux = Strategy.monitor_items ~prefix:target_base () in
    add
      {
        candidate_name = "monitor";
        strategy =
          Strategy.monitor ~prefix:target_base ~delta:bounds.rule_delta ~x:source
            ~y:target ();
        guarantees =
          [
            Guarantee.Monitor_window
              {
                flag = aux.Strategy.flag;
                tb = aux.Strategy.tb;
                x = src_item;
                y = tgt_item;
                kappa;
              };
          ];
        notes = "CM cannot write either item: monitor only (§6.3)";
      }
  end;
  List.rev !candidates

let leq_candidates bounds interfaces smaller larger =
  let s_kinds = interfaces smaller.Item.base in
  let l_kinds = interfaces larger.Item.base in
  if
    has Interface.Write s_kinds && has Interface.Read s_kinds
    && has Interface.Write l_kinds && has Interface.Read l_kinds
  then
    let mk policy name =
      let x =
        { Demarcation.bal = smaller.Item.base; lim = smaller.Item.base ^ "_lim";
          pend = "Pend_" ^ smaller.Item.base }
      in
      let y =
        { Demarcation.bal = larger.Item.base; lim = larger.Item.base ^ "_lim";
          pend = "Pend_" ^ larger.Item.base }
      in
      {
        candidate_name = name;
        strategy =
          Demarcation.rules ~prefix:smaller.Item.base ~policy ~delta:bounds.rule_delta
            ~x ~y ();
        guarantees = [ Guarantee.Always_leq { smaller; larger } ];
        notes =
          "Demarcation Protocol (§6.1): requires local CHECK enforcement of \
           the limits and <base>_lim limit items bound on both databases";
      }
    in
    [
      mk Demarcation.Conservative "demarcation (conservative grants)";
      mk Demarcation.Eager "demarcation (eager grants)";
    ]
  else []

let refint_candidates bounds ~parent ~child ~bound_secs =
  let cache = "C_" ^ parent in
  [
    {
      candidate_name = "refint-sweep";
      strategy = Strategy.refint_cache ~prefix:child ~delta:bounds.rule_delta ~parent ~cache ();
      guarantees =
        [
          Guarantee.Exists_within
            {
              antecedent = Item.make child;
              consequent = Item.make parent;
              bound = bound_secs;
            };
        ];
      notes =
        Printf.sprintf
          "cache parent existence at the child's shell; a periodic sweep (every \
           %gs at most) deletes orphaned children (§6.2)"
          bound_secs;
    };
  ]

let for_constraint ?(bounds = default_bounds) ~interfaces constraint_def =
  match constraint_def with
  | Constraint_def.Copy { source; target } ->
    copy_candidates bounds interfaces source target
  | Constraint_def.Leq { smaller; larger } ->
    leq_candidates bounds interfaces smaller larger
  | Constraint_def.Ref_int { parent; child; bound } ->
    refint_candidates bounds ~parent ~child ~bound_secs:bound

let describe c =
  let rules =
    String.concat "\n"
      (List.map (fun r -> "    " ^ Rule.to_string r) c.strategy.Strategy.rules)
  in
  let guarantees =
    String.concat "\n"
      (List.map
         (fun g -> Printf.sprintf "    %s: %s" (Guarantee.name g) (Guarantee.to_string g))
         c.guarantees)
  in
  Printf.sprintf "%s — %s\n  rules:\n%s\n  guarantees:\n%s\n  note: %s"
    c.candidate_name c.strategy.Strategy.description rules guarantees c.notes
