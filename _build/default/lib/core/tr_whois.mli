(** CM-Translator for the whois directory — a {b read-only} source.

    Items are field families: binding [("WPhone", field:"phone")] surfaces
    field ["phone"] of principal [n] as item wphone(n).  The only
    interface offered is read; the CM can at best poll and {e monitor}
    constraints involving this source (paper §6.3).

    Directory changes happen through administrative applications;
    {!update_app} / {!register_app} / {!unregister_app} perform them and
    record the ground-truth events. *)

type item_binding = { base : string; field : string }

type t

val create :
  sim:Cm_sim.Sim.t ->
  server:Cm_sources.Whois.t ->
  site:string ->
  emit:Cmi.emit ->
  report:Cmi.failure_report ->
  ?latency:float ->
  ?delta:float ->
  item_binding list ->
  t
(** Defaults: [latency] 0.3 s (a slow 1996 daemon), [delta] 5×. *)

val cmi : t -> Cmi.t
val interface_rules : t -> Cm_rule.Rule.t list
val health : t -> Cm_sources.Health.t

val register_app : t -> name:string -> fields:(string * string) list -> unit
val update_app : t -> name:string -> field:string -> value:string -> bool
val unregister_app : t -> name:string -> bool
