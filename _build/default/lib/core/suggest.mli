(** Strategy suggestion (paper §4.1).

    During initialization the CM queries the translators for their
    interface specifications and "suggests strategies that are applicable
    to these interfaces, along with the associated guarantees".  This
    module is that menu: given a constraint and the interface kinds each
    item offers, it returns the applicable catalog strategies with their
    {e previously proven} guarantees — e.g. polling never offers
    guarantee (2), a conditional-notify source only supports (1)/(3).

    Each suggestion's κ (for metric guarantees) is derived from the
    supplied bounds: notification bound + rule bound + write bound, plus
    the polling period where applicable. *)

type candidate = {
  candidate_name : string;
  strategy : Strategy.t;
  guarantees : Guarantee.t list;  (** proven for this interface/strategy pair *)
  notes : string;
}

type bounds = {
  rule_delta : float;  (** δ for generated strategy rules *)
  notify_delta : float;  (** the source's notification bound *)
  write_delta : float;  (** the target's write bound *)
  poll_period : float;  (** period used when only polling is possible *)
}

val default_bounds : bounds
(** 5 s rules, 5 s notify, 1 s write, 60 s polling. *)

val for_constraint :
  ?bounds:bounds ->
  interfaces:(string -> Interface.kind list) ->
  Constraint_def.t ->
  candidate list
(** Applicable candidates, strongest guarantees first.  Empty when the
    interfaces cannot support the constraint at all (e.g. a copy whose
    target is not writable and where a source is not even readable). *)

val describe : candidate -> string
(** One-paragraph rendering: name, rules, guarantees. *)
