(** Guarantees: weakened consistency statements, checked against traces.

    The paper proves guarantees from interface and strategy
    specifications with proof rules ([CGMW94], out of scope there and
    here); our executable counterpart {e verifies them on concrete
    executions}: the checker reconstructs item timelines from the trace
    and decides each guarantee form.  The numbered forms are the paper's
    (§3.3.1):

    - (1) {e Y follows X} — Y never holds a value X did not hold earlier;
    - (2) {e X leads Y} — every value X takes eventually appears in Y;
    - (3) {e Y strictly follows X} — Y's values appear in the order X
      took them;
    - (4) metric variant of (1): Y's value was held by X at most κ ago;

    plus the additional scenarios of §6: [Always_leq] (Demarcation
    Protocol), [Exists_within] (referential integrity with a bounded
    violation window), [Monitor_window] (the Flag/Tb auxiliary-data
    guarantee of §6.3), and [Periodic_equal] (§6.4). *)

type copy_pair = { leader : Cm_rule.Item.t; follower : Cm_rule.Item.t }

type t =
  | Follows of copy_pair
  | Leads of copy_pair
  | Strictly_follows of copy_pair
  | Metric_follows of copy_pair * float  (** κ *)
  | Always_leq of { smaller : Cm_rule.Item.t; larger : Cm_rule.Item.t }
  | Exists_within of {
      antecedent : Cm_rule.Item.t;
      consequent : Cm_rule.Item.t;
      bound : float;
    }
      (** [E(antecedent)@t ⇒ E(consequent)@t' for some t' ∈ [t, t+bound]] *)
  | Monitor_window of {
      flag : Cm_rule.Item.t;
      tb : Cm_rule.Item.t;
      x : Cm_rule.Item.t;
      y : Cm_rule.Item.t;
      kappa : float;
    }
      (** [(Flag ∧ Tb = s)@t ⇒ (X = Y) throughout [s, t−κ]] *)
  | Periodic_equal of {
      x : Cm_rule.Item.t;
      y : Cm_rule.Item.t;
      period : float;
      valid_from : float;  (** window start offset within each period *)
      valid_to : float;  (** window end offset; may exceed [period] *)
    }

val name : t -> string
(** Short display name: "(1) follows", "(2) leads", … *)

val to_string : t -> string
(** The logical statement, in the paper's notation. *)

val is_metric : t -> bool
(** Metric guarantees mention explicit time bounds and are invalidated
    by metric failures; non-metric ones survive them (§5). *)

type report = {
  holds : bool;
  checked_points : int;  (** how many proof obligations were examined *)
  counterexamples : string list;  (** up to 5, human-readable *)
}

val check :
  ?ignore_after:float ->
  horizon:float ->
  Cm_rule.Timeline.t ->
  t ->
  report
(** Decide the guarantee over the timeline up to [horizon].
    [ignore_after] (default [horizon]) bounds the obligations considered
    for "eventually" forms — {!Leads} obligations arising after it are
    skipped, since their propagation may legitimately still be in
    flight. *)

val for_copy_constraint :
  source:Cm_rule.Item.t -> target:Cm_rule.Item.t -> kappa:float -> t list
(** The four §3.3.1 guarantees for a copy constraint, in paper order. *)
