(** Static derivation of guarantees from interface and strategy
    specifications.

    The paper proves guarantees with proof rules presented in [CGMW94]
    ("we have also developed a set of proof rules that enable us to
    derive the validity of guarantees based on interface and strategy
    specifications"); this module is a conservative, executable
    counterpart for {e copy constraints}: it analyzes the chains of
    rules leading from spontaneous source updates to target writes and
    decides which of the §3.3.1 guarantees are provable, with a
    human-readable derivation or an explanation of what blocks it.

    The analysis is deliberately conservative — [Unprovable] means "these
    proof rules cannot establish it", not "it is false".  It recognizes:

    - {b observation channels}: plain notify (complete), conditional
      notify (incomplete — filtered updates unseen), periodic notify and
      read+polling (sampled — intermediate values unseen);
    - {b propagation chains}: strategy rules carrying the observed value
      unchanged from the observation event to a [WR] on the target,
      including the §3.2 cache pattern
      [(C ≠ b) ? WR(T, b), W(C, b)] (the guarded skip is sound because
      the cache mirrors exactly the values already forwarded);
    - {b interference}: any other rule writing the target, or the absence
      of a no-spontaneous-write interface on the target, blocks the
      follows-style guarantees — precisely the "details discovered during
      the process of verification" the paper reports;
    - {b time bounds}: κ for the metric guarantee is the sum of the
      interface and rule δ's along the chain (plus the sampling period
      for periodic/polling channels). *)

type verdict =
  | Proved of { kappa : float option; derivation : string list }
      (** [kappa] is set for the metric guarantee; [derivation] lists the
          proof steps (rules used, channel classification). *)
  | Unprovable of string  (** what blocks the derivation *)

type report = {
  follows : verdict;  (** guarantee (1) *)
  leads : verdict;  (** guarantee (2) *)
  strictly_follows : verdict;  (** guarantee (3) *)
  metric_follows : verdict;  (** guarantee (4) *)
}

val copy_guarantees :
  interfaces:Cm_rule.Rule.t list ->
  strategy:Cm_rule.Rule.t list ->
  source:Cm_rule.Expr.t ->
  target:Cm_rule.Expr.t ->
  report
(** Derive the four copy-constraint guarantees for
    [target = copy of source] from the given specifications.
    [source]/[target] are item patterns ({!Interface.plain} /
    {!Interface.family}). *)

val verdict_to_string : verdict -> string
val report_to_string : report -> string
