lib/net/net.ml: Cm_sim Cm_util Float Hashtbl String
