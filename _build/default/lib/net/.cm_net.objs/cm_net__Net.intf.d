lib/net/net.mli: Cm_sim
