module Sim = Cm_sim.Sim

type latency = { base : float; jitter : float }

let default_latency = { base = 0.05; jitter = 0.01 }

type 'msg link = {
  mutable link_latency : latency;
  (* Time at which the most recently sent message on this link will be
     delivered; later sends are delivered no earlier (FIFO). *)
  mutable last_delivery : float;
  mutable count : int;
}

type 'msg t = {
  sim : Sim.t;
  default : latency;
  fifo : bool;
  rng : Cm_util.Prng.t;
  handlers : (string, 'msg -> unit) Hashtbl.t;
  links : (string * string, 'msg link) Hashtbl.t;
  mutable sent : int;
}

let create ~sim ?(latency = default_latency) ?(fifo = true) () =
  {
    sim;
    default = latency;
    fifo;
    rng = Cm_util.Prng.split (Sim.rng sim);
    handlers = Hashtbl.create 8;
    links = Hashtbl.create 16;
    sent = 0;
  }

let link t ~from_site ~to_site =
  let key = (from_site, to_site) in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l = { link_latency = t.default; last_delivery = 0.0; count = 0 } in
    Hashtbl.replace t.links key l;
    l

let set_latency t ~from_site ~to_site latency =
  (link t ~from_site ~to_site).link_latency <- latency

let register t ~site handler =
  if Hashtbl.mem t.handlers site then
    invalid_arg ("Net.register: site already registered: " ^ site);
  Hashtbl.replace t.handlers site handler

let send t ~from_site ~to_site msg =
  let handler =
    match Hashtbl.find_opt t.handlers to_site with
    | Some h -> h
    | None -> invalid_arg ("Net.send: unknown destination site " ^ to_site)
  in
  let now = Sim.now t.sim in
  let delay =
    if String.equal from_site to_site then 0.0
    else
      let l = link t ~from_site ~to_site in
      l.link_latency.base
      +. (if l.link_latency.jitter > 0.0 then
            Cm_util.Prng.float t.rng l.link_latency.jitter
          else 0.0)
  in
  let l = link t ~from_site ~to_site in
  (* FIFO: never deliver before a previously sent message on this link. *)
  let at =
    if t.fifo then Float.max (now +. delay) l.last_delivery else now +. delay
  in
  l.last_delivery <- Float.max at l.last_delivery;
  l.count <- l.count + 1;
  t.sent <- t.sent + 1;
  Sim.schedule_at t.sim at (fun () -> handler msg)

let messages_sent t = t.sent

let messages_between t ~from_site ~to_site =
  match Hashtbl.find_opt t.links (from_site, to_site) with
  | Some l -> l.count
  | None -> 0

let reset_counters t =
  t.sent <- 0;
  Hashtbl.iter (fun _ l -> l.count <- 0) t.links
