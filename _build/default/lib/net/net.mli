(** Simulated network between CM-Shell sites.

    The paper assumes a reliable network with in-order message delivery
    and in-order processing at each site (§5 footnote 4, Appendix A.2
    property 7) — guarantee proofs depend on it.  This module provides
    exactly that: per-ordered-pair FIFO channels over the simulation
    clock, with configurable latency.  Jitter is sampled per message but
    delivery order is still enforced (a delayed message holds back later
    ones, as on a TCP stream).

    Message payloads are a type parameter of the endpoint handlers; the
    CM layer sends rule-firing envelopes.  Per-link statistics feed the
    message-cost experiments (E9, E10). *)

type 'msg t

type latency = {
  base : float;  (** seconds added to every message *)
  jitter : float;  (** uniform extra delay in [\[0, jitter)] *)
}

val default_latency : latency
(** 0.05 s base, 0.01 s jitter — a 1996 campus network. *)

val create : sim:Cm_sim.Sim.t -> ?latency:latency -> ?fifo:bool -> unit -> 'msg t
(** [fifo] (default [true]) enforces per-link in-order delivery.
    Setting it to [false] lets jitter reorder messages — deliberately
    violating the paper's in-order assumption (Appendix A.2, property 7)
    for the ablation experiment that shows why the assumption matters. *)

val set_latency : 'msg t -> from_site:string -> to_site:string -> latency -> unit
(** Override the default for one directed link. *)

val register : 'msg t -> site:string -> ('msg -> unit) -> unit
(** Install the receive handler for a site.  @raise Invalid_argument if
    the site is already registered. *)

val send : 'msg t -> from_site:string -> to_site:string -> 'msg -> unit
(** Deliver to the destination handler after the link latency, FIFO per
    directed link.  Sending to the local site delivers with zero delay
    but still asynchronously (on the next simulation step).
    @raise Invalid_argument if the destination was never registered (the
    paper assumes a reliable network; losing a message is a configuration
    error, not a runtime condition). *)

val messages_sent : 'msg t -> int
val messages_between : 'msg t -> from_site:string -> to_site:string -> int
val reset_counters : 'msg t -> unit
