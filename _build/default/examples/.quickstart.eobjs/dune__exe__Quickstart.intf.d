examples/quickstart.mli:
