examples/toolkit_workflow.ml: Cm_core Cm_rule Cm_sim Cm_util Item List Printf Rule String Template Value
