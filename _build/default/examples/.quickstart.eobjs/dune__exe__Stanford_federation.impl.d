examples/stanford_federation.ml: Cm_core Cm_rule Cm_sim Cm_util Cm_workload List Printf Rule Value
