examples/demarcation_bank.mli:
