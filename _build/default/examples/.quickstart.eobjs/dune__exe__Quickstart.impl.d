examples/quickstart.ml: Cm_core Cm_rule Cm_util Cm_workload List Printf Rule Value
