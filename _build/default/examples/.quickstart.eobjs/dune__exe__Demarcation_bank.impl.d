examples/demarcation_bank.ml: Cm_core Cm_net Cm_sim Cm_util Cm_workload List Printf
