examples/monitor_game.mli:
