examples/monitor_game.ml: Cm_core Cm_rule Cm_sim Cm_sources Cm_util Expr Item List Printf Value
