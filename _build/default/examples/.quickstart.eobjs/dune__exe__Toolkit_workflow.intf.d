examples/toolkit_workflow.mli:
