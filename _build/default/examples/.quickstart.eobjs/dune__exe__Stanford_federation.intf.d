examples/stanford_federation.mli:
