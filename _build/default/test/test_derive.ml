(* Tests for the static derivation engine — the executable counterpart of
   the paper's [CGMW94] proof rules. *)

open Cm_rule
module Derive = Cm_core.Derive
module Interface = Cm_core.Interface
module Strategy = Cm_core.Strategy

let src = Interface.family "Salary1" [ "n" ]
let tgt = Interface.family "Salary2" [ "n" ]

let base_interfaces ~source_kinds =
  let tgt_rules =
    [
      Interface.write ~id:"t/write" ~delta:1.0 tgt;
      Interface.no_spontaneous_write ~id:"t/nospont" tgt;
    ]
  in
  let src_rules =
    List.map
      (function
        | `Notify -> Interface.notify ~id:"s/notify" ~delta:2.0 src
        | `Conditional ->
          Interface.conditional_notify ~id:"s/cnotify" ~delta:2.0
            ~condition:(Interface.relative_change_condition ~threshold:0.1)
            src
        | `Read -> Interface.read ~id:"s/read" ~delta:0.5 src
        | `Periodic -> Interface.periodic_notify ~id:"s/pnotify" ~period:60.0 ~delta:2.0 src)
      source_kinds
  in
  src_rules @ tgt_rules

let proved = function Derive.Proved _ -> true | Derive.Unprovable _ -> false

let check_verdict name expected verdict =
  Alcotest.(check bool)
    (name ^ ": " ^ Derive.verdict_to_string verdict)
    expected (proved verdict)

let derive ?(interfaces = base_interfaces ~source_kinds:[ `Notify ]) strategy =
  Derive.copy_guarantees ~interfaces ~strategy:strategy.Strategy.rules ~source:src
    ~target:tgt

(* ---- the §4.2 menu entries ---- *)

let notify_propagate_proves_all () =
  let r = derive (Strategy.propagate ~delta:5.0 ~source:src ~target:tgt ()) in
  check_verdict "(1)" true r.Derive.follows;
  check_verdict "(2)" true r.Derive.leads;
  check_verdict "(3)" true r.Derive.strictly_follows;
  (match r.Derive.metric_follows with
   | Derive.Proved { kappa = Some k; _ } ->
     (* notify 2.0 + rule 5.0 + write 1.0 *)
     Alcotest.(check (float 1e-9)) "kappa" 8.0 k
   | other -> Alcotest.fail (Derive.verdict_to_string other))

let cached_propagate_proves_all () =
  let r =
    derive (Strategy.propagate_cached ~delta:5.0 ~source:src ~target:tgt ~cache:"Cx" ())
  in
  check_verdict "(1) with cache" true r.Derive.follows;
  check_verdict "(2) with cache" true r.Derive.leads;
  check_verdict "(3) with cache" true r.Derive.strictly_follows

let conditional_notify_blocks_leads () =
  let interfaces = base_interfaces ~source_kinds:[ `Conditional ] in
  let r = derive ~interfaces (Strategy.propagate ~delta:5.0 ~source:src ~target:tgt ()) in
  check_verdict "(1)" true r.Derive.follows;
  check_verdict "(2) blocked" false r.Derive.leads;
  check_verdict "(3)" true r.Derive.strictly_follows

let periodic_notify_blocks_leads () =
  let interfaces = base_interfaces ~source_kinds:[ `Periodic ] in
  let r = derive ~interfaces (Strategy.propagate ~delta:5.0 ~source:src ~target:tgt ()) in
  check_verdict "(1)" true r.Derive.follows;
  check_verdict "(2) blocked" false r.Derive.leads

let polling_blocks_leads () =
  let interfaces = base_interfaces ~source_kinds:[ `Read ] in
  let csrc = Expr.Item ("Salary1", [ Expr.Const (Value.Str "e1") ]) in
  let ctgt = Expr.Item ("Salary2", [ Expr.Const (Value.Str "e1") ]) in
  let strategy = Strategy.poll ~period:60.0 ~delta:5.0 ~source:csrc ~target:ctgt () in
  let r =
    Derive.copy_guarantees ~interfaces ~strategy:strategy.Strategy.rules ~source:csrc
      ~target:ctgt
  in
  check_verdict "(1)" true r.Derive.follows;
  check_verdict "(2) blocked" false r.Derive.leads;
  check_verdict "(3)" true r.Derive.strictly_follows;
  check_verdict "(4)" true r.Derive.metric_follows

(* ---- blocking conditions ---- *)

let missing_write_interface_blocks_everything () =
  let interfaces = [ Interface.notify ~id:"s/notify" ~delta:2.0 src ] in
  let r = derive ~interfaces (Strategy.propagate ~delta:5.0 ~source:src ~target:tgt ()) in
  check_verdict "(1)" false r.Derive.follows;
  check_verdict "(2)" false r.Derive.leads

let spontaneous_target_blocks_follows () =
  (* No no-spontaneous-write declaration on the target. *)
  let interfaces =
    [
      Interface.notify ~id:"s/notify" ~delta:2.0 src;
      Interface.write ~id:"t/write" ~delta:1.0 tgt;
    ]
  in
  let r = derive ~interfaces (Strategy.propagate ~delta:5.0 ~source:src ~target:tgt ()) in
  check_verdict "(1) blocked" false r.Derive.follows;
  (* (2) does not need it: values still eventually arrive. *)
  check_verdict "(2)" true r.Derive.leads

let interfering_writer_blocks_follows () =
  let strategy =
    Strategy.combine
      [
        Strategy.propagate ~prefix:"main" ~delta:5.0 ~source:src ~target:tgt ();
        (* a rogue rule writing the target from somewhere else *)
        {
          Strategy.strategy_name = "rogue";
          description = "writes the target from another source";
          rules = Parser.parse_rules "rogue: N(Other(n), b) ->[5] WR(Salary2(n), b)";
          aux_init = [];
        };
      ]
  in
  let r = derive strategy in
  check_verdict "(1) blocked by interference" false r.Derive.follows;
  match r.Derive.follows with
  | Derive.Unprovable m ->
    Alcotest.(check bool) "names the rogue rule" true
      (String.length m > 0
       &&
       let rec contains i =
         i + 5 <= String.length m && (String.sub m i 5 = "rogue" || contains (i + 1))
       in
       contains 0)
  | _ -> Alcotest.fail "expected unprovable"

let no_strategy_blocks_everything () =
  let r =
    Derive.copy_guarantees
      ~interfaces:(base_interfaces ~source_kinds:[ `Notify ])
      ~strategy:[] ~source:src ~target:tgt
  in
  check_verdict "(1)" false r.Derive.follows;
  check_verdict "(2)" false r.Derive.leads

let conditional_guard_blocks_follows () =
  (* An arbitrary guard the prover does not recognize. *)
  let strategy =
    {
      Strategy.strategy_name = "guarded";
      description = "guarded forward";
      rules = Parser.parse_rules "g: N(Salary1(n), b) ->[5] (b > 100) ? WR(Salary2(n), b)";
      aux_init = [];
    }
  in
  let r = derive strategy in
  check_verdict "(1) blocked by guard" false r.Derive.follows

let multiple_chains_block_strictly () =
  (* Two parallel forwarding rules: order can no longer be established. *)
  let strategy =
    {
      Strategy.strategy_name = "dual";
      description = "two parallel chains";
      rules =
        Parser.parse_rules
          {|c1: N(Salary1(n), b) ->[5] WR(Salary2(n), b)
            c2: N(Salary1(n), b) ->[9] WR(Salary2(n), b)|};
      aux_init = [];
    }
  in
  let r = derive strategy in
  check_verdict "(1)" true r.Derive.follows;
  check_verdict "(3) blocked" false r.Derive.strictly_follows;
  (* kappa takes the worst chain: 2 + 9 + 1. *)
  match r.Derive.metric_follows with
  | Derive.Proved { kappa = Some k; _ } -> Alcotest.(check (float 1e-9)) "kappa" 12.0 k
  | other -> Alcotest.fail (Derive.verdict_to_string other)

let multi_hop_chain_found () =
  (* N -> custom Fwd -> WR over two rules. *)
  let strategy =
    {
      Strategy.strategy_name = "hop";
      description = "two-hop chain";
      rules =
        Parser.parse_rules
          {|h1: N(Salary1(n), b) ->[3] Fwd(Salary2(n), b)
            h2: Fwd(Salary2(n), b) ->[4] WR(Salary2(n), b)|};
      aux_init = [];
    }
  in
  let r = derive strategy in
  check_verdict "(1) through two hops" true r.Derive.follows;
  match r.Derive.metric_follows with
  | Derive.Proved { kappa = Some k; _ } ->
    (* 2 (notify) + 3 + 4 (rules) + 1 (write) *)
    Alcotest.(check (float 1e-9)) "kappa sums hops" 10.0 k
  | other -> Alcotest.fail (Derive.verdict_to_string other)

let report_rendering () =
  let r = derive (Strategy.propagate ~delta:5.0 ~source:src ~target:tgt ()) in
  let text = Derive.report_to_string r in
  Alcotest.(check bool) "mentions all four" true
    (String.length text > 100
     && String.index_opt text '\n' <> None)

(* Consistency with the suggestion engine: what Suggest offers for
   notify+write, Derive proves. *)
let derive_agrees_with_suggest () =
  let interfaces base =
    if base = "Salary1" then [ Interface.Notify; Interface.Read ]
    else [ Interface.Write; Interface.Read ]
  in
  let candidates =
    Cm_core.Suggest.for_constraint ~interfaces
      (Cm_core.Constraint_def.Copy { source = src; target = tgt })
  in
  let ifaces = base_interfaces ~source_kinds:[ `Notify; `Read ] in
  List.iter
    (fun c ->
      if c.Cm_core.Suggest.candidate_name = "propagate" then begin
        let r =
          Derive.copy_guarantees ~interfaces:ifaces
            ~strategy:c.Cm_core.Suggest.strategy.Strategy.rules ~source:src ~target:tgt
        in
        check_verdict "suggested propagate: (1)" true r.Derive.follows;
        check_verdict "suggested propagate: (2)" true r.Derive.leads
      end)
    candidates

let () =
  Alcotest.run "cm_derive"
    [
      ( "menu",
        [
          Alcotest.test_case "notify+write proves all" `Quick notify_propagate_proves_all;
          Alcotest.test_case "cache pattern sound" `Quick cached_propagate_proves_all;
          Alcotest.test_case "conditional blocks (2)" `Quick conditional_notify_blocks_leads;
          Alcotest.test_case "periodic blocks (2)" `Quick periodic_notify_blocks_leads;
          Alcotest.test_case "polling blocks (2)" `Quick polling_blocks_leads;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "no write interface" `Quick
            missing_write_interface_blocks_everything;
          Alcotest.test_case "spontaneous target" `Quick spontaneous_target_blocks_follows;
          Alcotest.test_case "interference" `Quick interfering_writer_blocks_follows;
          Alcotest.test_case "no strategy" `Quick no_strategy_blocks_everything;
          Alcotest.test_case "unknown guard" `Quick conditional_guard_blocks_follows;
          Alcotest.test_case "racing chains" `Quick multiple_chains_block_strictly;
        ] );
      ( "chains",
        [
          Alcotest.test_case "multi-hop" `Quick multi_hop_chain_found;
          Alcotest.test_case "rendering" `Quick report_rendering;
          Alcotest.test_case "agrees with suggest" `Quick derive_agrees_with_suggest;
        ] );
    ]
