(* Tests for cm_rule: the formal rule language of the paper (§3, Appendix A). *)

open Cm_rule

let value = Alcotest.testable Value.pp Value.equal

let item name params = Item.make name ~params
let x = item "X" []
let y = item "Y" []

(* ---------- Value ---------- *)

let value_numeric_equality () =
  Alcotest.(check bool) "int=float" true (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "int<>float" false (Value.equal (Value.Int 3) (Value.Float 3.5))

let value_arith () =
  Alcotest.check value "int add" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3));
  Alcotest.check value "mixed add" (Value.Float 5.5)
    (Value.add (Value.Int 2) (Value.Float 3.5));
  Alcotest.check value "sub" (Value.Int (-1)) (Value.sub (Value.Int 2) (Value.Int 3));
  Alcotest.check value "mul" (Value.Int 6) (Value.mul (Value.Int 2) (Value.Int 3));
  Alcotest.check value "div" (Value.Float 2.0) (Value.div (Value.Int 6) (Value.Int 3));
  Alcotest.check value "neg" (Value.Int (-2)) (Value.neg (Value.Int 2));
  Alcotest.check value "abs" (Value.Float 2.5) (Value.abs (Value.Float (-2.5)))

let value_arith_errors () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "div by zero" true
    (raises (fun () -> Value.div (Value.Int 1) (Value.Int 0)));
  Alcotest.(check bool) "add string" true
    (raises (fun () -> Value.add (Value.Str "a") (Value.Int 1)));
  Alcotest.(check bool) "truthy int" true (raises (fun () -> Value.truthy (Value.Int 1)))

let value_ordering () =
  Alcotest.(check bool) "null < bool" true (Value.compare Value.Null (Value.Bool false) < 0);
  Alcotest.(check bool) "num < str" true (Value.compare (Value.Int 9) (Value.Str "") < 0);
  Alcotest.(check bool) "int/float order" true
    (Value.compare (Value.Int 2) (Value.Float 2.5) < 0)

let value_literals () =
  let roundtrip v = Value.of_string_literal (Value.to_string v) in
  Alcotest.(check (option value)) "int" (Some (Value.Int 42)) (roundtrip (Value.Int 42));
  Alcotest.(check (option value)) "float" (Some (Value.Float 2.5)) (roundtrip (Value.Float 2.5));
  Alcotest.(check (option value)) "bool" (Some (Value.Bool true)) (roundtrip (Value.Bool true));
  Alcotest.(check (option value)) "str" (Some (Value.Str "hi")) (roundtrip (Value.Str "hi"));
  Alcotest.(check (option value)) "null" (Some Value.Null) (roundtrip Value.Null);
  Alcotest.(check (option value)) "garbage" None (Value.of_string_literal "@!")

let value_compare_equal_consistent =
  let gen =
    QCheck.Gen.(
      oneof
        [
          return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
          map (fun s -> Value.Str s) (small_string ~gen:printable);
        ])
  in
  let arb = QCheck.make ~print:Value.to_string gen in
  QCheck.Test.make ~name:"compare=0 iff equal" ~count:300 (QCheck.pair arb arb)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

(* ---------- Item ---------- *)

let item_string () =
  Alcotest.(check string) "bare" "X" (Item.to_string x);
  Alcotest.(check string) "params" "Salary1(\"e7\")"
    (Item.to_string (item "Salary1" [ Value.Str "e7" ]))

let item_equality () =
  Alcotest.(check bool) "same" true
    (Item.equal (item "A" [ Value.Int 1 ]) (item "A" [ Value.Int 1 ]));
  Alcotest.(check bool) "diff params" false
    (Item.equal (item "A" [ Value.Int 1 ]) (item "A" [ Value.Int 2 ]));
  Alcotest.(check bool) "diff base" false (Item.equal x y)

(* ---------- Expr ---------- *)

let no_items = Expr.state_of_fun (fun _ -> None)

let state_of bindings =
  Expr.state_of_fun (fun it ->
      List.find_map (fun (i, v) -> if Item.equal i it then Some v else None) bindings)

let eval_value ?(state = no_items) ?(env = Expr.empty_env) e =
  fst (Expr.eval state env e)

let expr_arith () =
  let e = Parser.parse_expr "2 + 3 * 4" in
  Alcotest.check value "precedence" (Value.Int 14) (eval_value e);
  let e = Parser.parse_expr "(2 + 3) * 4" in
  Alcotest.check value "parens" (Value.Int 20) (eval_value e);
  let e = Parser.parse_expr "|2 - 5|" in
  Alcotest.check value "abs" (Value.Int 3) (eval_value e);
  let e = Parser.parse_expr "-2 + 1" in
  Alcotest.check value "unary minus" (Value.Int (-1)) (eval_value e)

let expr_comparisons () =
  let t s = Alcotest.check value s (Value.Bool true) (eval_value (Parser.parse_expr s)) in
  let f s = Alcotest.check value s (Value.Bool false) (eval_value (Parser.parse_expr s)) in
  t "1 < 2";
  t "2 <= 2";
  t "3 > 2";
  t "3 >= 3";
  t "2 == 2";
  t "2 != 3";
  f "2 < 1";
  f "2 != 2";
  t "1 < 2 && 2 < 3";
  f "1 < 2 && 3 < 2";
  t "1 > 2 || 2 < 3";
  t "!(1 > 2)"

let expr_item_lookup () =
  let state = state_of [ (x, Value.Int 7) ] in
  let e = Parser.parse_expr "X + 1" in
  Alcotest.check value "item value" (Value.Int 8) (eval_value ~state e)

let expr_missing_item () =
  let e = Parser.parse_expr "X + 1" in
  Alcotest.(check bool) "raises" true
    (try ignore (eval_value e); false with Expr.Eval_error _ -> true)

let expr_exists () =
  let state = state_of [ (x, Value.Int 7) ] in
  Alcotest.check value "exists" (Value.Bool true)
    (eval_value ~state (Parser.parse_expr "E(X)"));
  Alcotest.check value "not exists" (Value.Bool false)
    (eval_value ~state (Parser.parse_expr "E(Y)"))

let expr_binding_equality () =
  (* X == b with b unbound binds b to the current value of X — the
     mechanism behind the paper's read and periodic-notify interfaces. *)
  let state = state_of [ (x, Value.Int 42) ] in
  match Expr.eval_cond state Expr.empty_env (Parser.parse_expr "X == b") with
  | None -> Alcotest.fail "binding equality should succeed"
  | Some env -> (
    match Expr.Env.find_opt "b" env with
    | Some (Expr.Bval v) -> Alcotest.check value "bound" (Value.Int 42) v
    | _ -> Alcotest.fail "b not bound to a value")

let expr_binding_threads_through_and () =
  let state = state_of [ (x, Value.Int 10) ] in
  match Expr.eval_cond state Expr.empty_env (Parser.parse_expr "X == b && b > 5") with
  | None -> Alcotest.fail "should hold"
  | Some _ -> ()

let expr_no_binding_under_or () =
  let state = state_of [ (x, Value.Int 10) ] in
  match Expr.eval_cond state Expr.empty_env (Parser.parse_expr "(X == b) || (X == b)") with
  | None -> Alcotest.fail "disjunction should hold"
  | Some env ->
    Alcotest.(check bool) "no binding escapes" true (not (Expr.Env.mem "b" env))

let expr_bound_var_equality_checks () =
  let env = Expr.Env.add "b" (Expr.Bval (Value.Int 3)) Expr.empty_env in
  let state = no_items in
  Alcotest.(check bool) "matches" true
    (Expr.eval_cond state env (Parser.parse_expr "b == 3") <> None);
  Alcotest.(check bool) "mismatch" true
    (Expr.eval_cond state env (Parser.parse_expr "b == 4") = None)

let expr_free_vars () =
  let e = Parser.parse_expr "a + X(b) * c + a" in
  Alcotest.(check (list string)) "first-occurrence order" [ "a"; "b"; "c" ]
    (Expr.free_vars e)

let expr_conditional_notify_condition () =
  (* |b - a| > 0.1 * a, the paper's 10%-change filter (§3.1.1). *)
  let cond = Parser.parse_expr "|b - a| > 0.1 * a" in
  let env old_v new_v =
    Expr.Env.add "a" (Expr.Bval (Value.Float old_v))
      (Expr.Env.add "b" (Expr.Bval (Value.Float new_v)) Expr.empty_env)
  in
  Alcotest.(check bool) "big change passes" true
    (Expr.eval_cond no_items (env 100.0 120.0) cond <> None);
  Alcotest.(check bool) "small change filtered" true
    (Expr.eval_cond no_items (env 100.0 105.0) cond = None)

(* ---------- Template matching ---------- *)

let match_env tpl desc = Template.matches tpl desc ~seed:Expr.empty_env

let template_matches_concrete () =
  let tpl = Parser.parse_template "W(X, b)" in
  (match match_env tpl (Event.w x (Value.Int 5)) with
   | Some env -> (
     match Expr.Env.find_opt "b" env with
     | Some (Expr.Bval v) -> Alcotest.check value "b bound" (Value.Int 5) v
     | _ -> Alcotest.fail "b unbound")
   | None -> Alcotest.fail "should match");
  Alcotest.(check bool) "wrong item" true (match_env tpl (Event.w y (Value.Int 5)) = None);
  Alcotest.(check bool) "wrong name" true (match_env tpl (Event.n x (Value.Int 5)) = None)

let template_ws_shorthand () =
  (* Ws(X, b) is shorthand for Ws(X, *, b). *)
  let tpl = Parser.parse_template "Ws(X, b)" in
  let desc = Event.ws ~old:(Value.Int 1) x (Value.Int 2) in
  match match_env tpl desc with
  | Some env -> (
    match Expr.Env.find_opt "b" env with
    | Some (Expr.Bval v) -> Alcotest.check value "b is new value" (Value.Int 2) v
    | _ -> Alcotest.fail "b unbound")
  | None -> Alcotest.fail "shorthand should match 3-arg event"

let template_parameterized_item () =
  let tpl = Parser.parse_template "N(Phone(n), b)" in
  let it = item "Phone" [ Value.Str "ann" ] in
  match match_env tpl (Event.n it (Value.Int 555)) with
  | Some env ->
    (match Expr.Env.find_opt "n" env with
     | Some (Expr.Bval v) -> Alcotest.check value "n bound" (Value.Str "ann") v
     | _ -> Alcotest.fail "n unbound")
  | None -> Alcotest.fail "parameterized item should match"

let template_repeated_var_consistency () =
  let tpl = Parser.parse_template "W(X, b)" in
  let seed = Expr.Env.add "b" (Expr.Bval (Value.Int 9)) Expr.empty_env in
  Alcotest.(check bool) "consistent" true
    (Template.matches tpl (Event.w x (Value.Int 9)) ~seed <> None);
  Alcotest.(check bool) "inconsistent" true
    (Template.matches tpl (Event.w x (Value.Int 8)) ~seed = None)

let template_constant_arg () =
  let tpl = Parser.parse_template "W(X, 5)" in
  Alcotest.(check bool) "matches 5" true (match_env tpl (Event.w x (Value.Int 5)) <> None);
  Alcotest.(check bool) "rejects 6" true (match_env tpl (Event.w x (Value.Int 6)) = None)

let template_wildcard () =
  let tpl = Parser.parse_template "W(X, *)" in
  Alcotest.(check bool) "any value" true (match_env tpl (Event.w x (Value.Str "z")) <> None)

let template_var_binds_item () =
  (* A bare parameter in item position captures the item itself. *)
  let tpl = Template.make "W" [ Expr.Var "i"; Expr.Var "b" ] in
  match match_env tpl (Event.w x (Value.Int 1)) with
  | Some env -> (
    match Expr.Env.find_opt "i" env with
    | Some (Expr.Bitem it) -> Alcotest.(check string) "item" "X" (Item.to_string it)
    | _ -> Alcotest.fail "i should bind the item")
  | None -> Alcotest.fail "should match"

let template_false_matches_nothing () =
  Alcotest.(check bool) "false" true
    (Template.matches Template.false_ (Event.w x (Value.Int 1)) ~seed:Expr.empty_env = None)

let template_instantiate () =
  let tpl = Parser.parse_template "WR(Salary2(n), b)" in
  let env =
    Expr.Env.add "n" (Expr.Bval (Value.Str "e1"))
      (Expr.Env.add "b" (Expr.Bval (Value.Int 90)) Expr.empty_env)
  in
  let desc = Template.instantiate tpl env in
  Alcotest.(check string) "instantiated" "WR(Salary2(\"e1\"), 90)"
    (Event.desc_to_string desc)

let template_instantiate_unbound () =
  let tpl = Parser.parse_template "WR(Y, b)" in
  Alcotest.(check bool) "raises" true
    (try ignore (Template.instantiate tpl Expr.empty_env); false
     with Expr.Eval_error _ -> true)

let template_arity_checked () =
  Alcotest.(check bool) "W/3 rejected" true
    (try ignore (Template.make "W" [ Expr.Var "a"; Expr.Var "b"; Expr.Var "c" ]); false
     with Invalid_argument _ -> true)

(* ---------- Parser ---------- *)

let parser_roundtrip () =
  let texts =
    [
      "WR(X, b) ->[5] W(X, b)";
      "Ws(X, b) -> FALSE";
      "Ws(X, a, b) && |b - a| > 0.1 * a ->[2] N(X, b)";
      "P(300) && X == b ->[1] N(X, b)";
      "RR(X) && X == b ->[1] R(X, b)";
      "N(Salary1(n), b) ->[5] WR(Salary2(n), b)";
      "N(X, b) ->[5] (Cx != b) ? WR(Y, b), W(Cx, b)";
      "P(60) ->[1] RR(X)";
    ]
  in
  List.iter
    (fun text ->
      let r = Parser.parse_rule text in
      (* Reparse the printed form; it must parse to an equal structure. *)
      let r2 = Parser.parse_rule (Rule.to_string r) in
      Alcotest.(check string) text (Rule.to_string r) (Rule.to_string r2))
    texts

let parser_labels () =
  let r = Parser.parse_rule "myrule: WR(X, b) ->[5] W(X, b)" in
  Alcotest.(check string) "label used as id" "myrule" r.Rule.id

let parser_delta () =
  let r = Parser.parse_rule "WR(X, b) ->[2.5] W(X, b)" in
  Alcotest.(check (float 1e-9)) "delta" 2.5 r.Rule.delta;
  let r = Parser.parse_rule "WR(X, b) -> W(X, b)" in
  Alcotest.(check bool) "unbounded" true (r.Rule.delta = infinity)

let parser_multiple_rules () =
  let rules = Parser.parse_rules "a: P(60) ->[1] RR(X)\nb: R(X, v) ->[1] WR(Y, v)" in
  Alcotest.(check int) "two rules" 2 (List.length rules);
  Alcotest.(check (list string)) "ids" [ "a"; "b" ]
    (List.map (fun r -> r.Rule.id) rules)

let parser_comments () =
  let rules = Parser.parse_rules "# a comment\nP(60) ->[1] RR(X) # trailing\n# end" in
  Alcotest.(check int) "one rule" 1 (List.length rules)

let parser_errors () =
  let fails s = try ignore (Parser.parse_rules s); false with Parser.Parse_error _ -> true in
  Alcotest.(check bool) "missing arrow" true (fails "W(X, b) W(Y, b)");
  Alcotest.(check bool) "garbage" true (fails "@@@");
  Alcotest.(check bool) "FALSE trigger" true (fails "FALSE -> W(X, 1)");
  Alcotest.(check bool) "unclosed paren" true (fails "W(X, b ->[1] W(Y, b)");
  Alcotest.(check bool) "bad arity" true (fails "RR(X, b) ->[1] R(X, b)")

let parser_ws_two_arg_normalized () =
  let r = Parser.parse_rule "Ws(X, b) ->[2] N(X, b)" in
  Alcotest.(check int) "3 args after normalization" 3
    (List.length r.Rule.lhs.Template.args)

(* ---------- Rule static checks ---------- *)

let locator_ab it =
  match it.Item.base with
  | "X" | "Salary1" -> "siteA"
  | _ -> "siteB"

let rule_sites () =
  let r = Parser.parse_rule "N(Salary1(n), b) ->[5] WR(Salary2(n), b)" in
  Alcotest.(check (option string)) "lhs site" (Some "siteA") (Rule.lhs_site r locator_ab);
  Alcotest.(check (option string)) "rhs site" (Some "siteB") (Rule.rhs_site r locator_ab)

let rule_polling_site_is_rhs () =
  let r = Parser.parse_rule "P(60) ->[1] RR(X)" in
  Alcotest.(check (option string)) "assigned to polled item's site" (Some "siteA")
    (Rule.lhs_site r locator_ab)

let rule_well_formed_ok () =
  let r = Parser.parse_rule "N(X, b) ->[5] WR(Y, b)" in
  Alcotest.(check bool) "ok" true (Rule.check_well_formed r locator_ab = Ok ())

let rule_rhs_multi_site_rejected () =
  let r = Parser.parse_rule "N(X, b) ->[5] WR(X, b), WR(Y, b)" in
  Alcotest.(check bool) "rejected" true (Rule.check_well_formed r locator_ab <> Ok ())

let rule_unbound_rhs_var_rejected () =
  let r = Parser.parse_rule "N(X, b) ->[5] WR(Y, c)" in
  Alcotest.(check bool) "rejected" true (Rule.check_well_formed r locator_ab <> Ok ())

let rule_binding_cond_provides_var () =
  let r = Parser.parse_rule "RR(X) && X == b ->[1] R(X, b)" in
  Alcotest.(check bool) "b provided by condition" true
    (Rule.check_well_formed r locator_ab = Ok ())

(* ---------- Trace / Timeline ---------- *)

let trace_records_in_order () =
  let tr = Trace.create () in
  let e1 = Trace.record tr ~time:1.0 ~site:"s" (Event.w x (Value.Int 1)) in
  let e2 = Trace.record tr ~time:2.0 ~site:"s" (Event.w x (Value.Int 2)) in
  Alcotest.(check int) "ids sequential" 1 (e2.Event.id - e1.Event.id);
  Alcotest.(check int) "length" 2 (Trace.length tr);
  Alcotest.(check bool) "find" true (Trace.find tr e1.Event.id = Some e1);
  Alcotest.(check bool) "time regression rejected" true
    (try ignore (Trace.record tr ~time:1.5 ~site:"s" (Event.w x (Value.Int 3))); false
     with Invalid_argument _ -> true)

let trace_queries () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"s" (Event.w x (Value.Int 1)));
  ignore (Trace.record tr ~time:2.0 ~site:"s" (Event.n y (Value.Int 2)));
  ignore (Trace.record tr ~time:3.0 ~site:"s" (Event.w x (Value.Int 3)));
  Alcotest.(check int) "named W" 2 (List.length (Trace.named tr "W"));
  Alcotest.(check int) "on_item X" 2 (List.length (Trace.on_item tr x));
  Alcotest.(check (float 1e-9)) "last_time" 3.0 (Trace.last_time tr)

let timeline_reconstruction () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"s" (Event.w x (Value.Int 1)));
  ignore (Trace.record tr ~time:5.0 ~site:"s" (Event.ws x (Value.Int 2)));
  let tl = Timeline.of_trace tr in
  Alcotest.(check (option value)) "before first" None (Timeline.value_at tl x 0.5);
  Alcotest.(check (option value)) "at write" (Some (Value.Int 1)) (Timeline.value_at tl x 1.0);
  Alcotest.(check (option value)) "between" (Some (Value.Int 1)) (Timeline.value_at tl x 3.0);
  Alcotest.(check (option value)) "after" (Some (Value.Int 2)) (Timeline.value_at tl x 9.0)

let timeline_initial_state () =
  let tr = Trace.create () in
  let tl = Timeline.of_trace ~initial:[ (x, Value.Int 7) ] tr in
  Alcotest.(check (option value)) "initial" (Some (Value.Int 7)) (Timeline.value_at tl x 0.0)

let timeline_existence () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"s" (Event.ins x));
  ignore (Trace.record tr ~time:2.0 ~site:"s" (Event.w x (Value.Int 5)));
  ignore (Trace.record tr ~time:3.0 ~site:"s" (Event.del x));
  let tl = Timeline.of_trace tr in
  Alcotest.(check bool) "absent before" false (Timeline.exists_at tl x 0.5);
  Alcotest.(check bool) "exists after ins" true (Timeline.exists_at tl x 1.5);
  Alcotest.(check (option value)) "value" (Some (Value.Int 5)) (Timeline.value_at tl x 2.5);
  Alcotest.(check bool) "deleted" false (Timeline.exists_at tl x 3.5)

let timeline_values_taken () =
  let tr = Trace.create () in
  List.iter
    (fun (t, v) -> ignore (Trace.record tr ~time:t ~site:"s" (Event.w x (Value.Int v))))
    [ (1.0, 1); (2.0, 1); (3.0, 2); (4.0, 1) ];
  let tl = Timeline.of_trace tr in
  Alcotest.(check (list (pair (float 1e-9) value))) "collapsed"
    [ (1.0, Value.Int 1); (3.0, Value.Int 2); (4.0, Value.Int 1) ]
    (Timeline.values_taken tl x)

(* ---------- Validity ---------- *)

let simple_locator it = if it.Item.base = "X" then "A" else "B"

let propagation_rules () =
  Parser.parse_rules
    {|notify: Ws(X, b) ->[2] N(X, b)
      prop:   N(X, b) ->[5] WR(Y, b)
      write:  WR(Y, b) ->[3] W(Y, b)|}

let record_chain tr ~t0 ~lag v =
  (* One full propagation chain: Ws -> N -> WR -> W, each step [lag] apart. *)
  let ws = Trace.record tr ~time:t0 ~site:"A" (Event.ws x (Value.Int v)) in
  let n =
    Trace.record tr ~time:(t0 +. lag) ~site:"A"
      ~kind:(Event.Generated { rule_id = "notify"; trigger = ws.Event.id })
      (Event.n x (Value.Int v))
  in
  let wr =
    Trace.record tr ~time:(t0 +. (2.0 *. lag)) ~site:"B"
      ~kind:(Event.Generated { rule_id = "prop"; trigger = n.Event.id })
      (Event.wr y (Value.Int v))
  in
  ignore
    (Trace.record tr ~time:(t0 +. (3.0 *. lag)) ~site:"B"
       ~kind:(Event.Generated { rule_id = "write"; trigger = wr.Event.id })
       (Event.w y (Value.Int v)))

let validity_accepts_correct_chain () =
  let tr = Trace.create () in
  record_chain tr ~t0:1.0 ~lag:0.5 10;
  record_chain tr ~t0:20.0 ~lag:0.5 11;
  let violations =
    Validity.check ~rules:(propagation_rules ()) ~locator:simple_locator tr
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map Validity.violation_to_string violations)

let validity_detects_missing_response () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"A" (Event.ws x (Value.Int 1)));
  (* Nothing follows; deadline for notify is 3.0.  Give the trace a later
     event so the horizon passes the deadline. *)
  ignore (Trace.record tr ~time:50.0 ~site:"A" (Event.p 60.0));
  let violations =
    Validity.check ~rules:(propagation_rules ()) ~locator:simple_locator tr
  in
  Alcotest.(check bool) "missing response detected" true
    (List.exists (function Validity.Missing_response _ -> true | _ -> false) violations)

let validity_pending_not_reported () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"A" (Event.ws x (Value.Int 1)));
  (* Horizon 1.0 precedes the notify deadline of 3.0: no violation yet. *)
  let violations =
    Validity.check ~rules:(propagation_rules ()) ~locator:simple_locator tr
  in
  Alcotest.(check (list string)) "nothing pending reported" []
    (List.map Validity.violation_to_string violations)

let validity_detects_bound_exceeded () =
  let tr = Trace.create () in
  let ws = Trace.record tr ~time:1.0 ~site:"A" (Event.ws x (Value.Int 1)) in
  ignore
    (Trace.record tr ~time:9.0 ~site:"A"
       ~kind:(Event.Generated { rule_id = "notify"; trigger = ws.Event.id })
       (Event.n x (Value.Int 1)));
  ignore (Trace.record tr ~time:60.0 ~site:"A" (Event.p 60.0));
  let violations =
    Validity.check ~rules:[ List.hd (propagation_rules ()) ] ~locator:simple_locator tr
  in
  Alcotest.(check bool) "bound exceeded (metric)" true
    (List.exists
       (function Validity.Bound_exceeded _ as v -> Validity.is_metric v | _ -> false)
       violations)

let validity_detects_prohibited () =
  let rules = Parser.parse_rules "nospont: Ws(X, b) -> FALSE" in
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"A" (Event.ws x (Value.Int 1)));
  let violations = Validity.check ~rules ~locator:simple_locator tr in
  Alcotest.(check bool) "prohibited (logical)" true
    (List.exists
       (function Validity.Prohibited _ as v -> not (Validity.is_metric v) | _ -> false)
       violations)

let validity_detects_bad_provenance () =
  let tr = Trace.create () in
  let ws = Trace.record tr ~time:1.0 ~site:"A" (Event.ws x (Value.Int 1)) in
  (* N carries a different value than the triggering write: no RHS match. *)
  ignore
    (Trace.record tr ~time:2.0 ~site:"A"
       ~kind:(Event.Generated { rule_id = "notify"; trigger = ws.Event.id })
       (Event.n x (Value.Int 99)));
  let violations =
    Validity.check ~rules:[ List.hd (propagation_rules ()) ] ~locator:simple_locator tr
  in
  Alcotest.(check bool) "bad provenance" true
    (List.exists (function Validity.Bad_provenance _ -> true | _ -> false) violations)

let validity_guard_waives_obligation () =
  (* Rule fires only when Cx differs from the notified value; if Cx already
     equals it, a missing WR is fine. *)
  let rules = Parser.parse_rules "cmp: N(X, b) ->[5] (Cx != b) ? WR(Y, b)" in
  let locator it = if it.Item.base = "Cx" then "B" else simple_locator it in
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:0.5 ~site:"B" (Event.w (item "Cx" []) (Value.Int 1)));
  ignore (Trace.record tr ~time:1.0 ~site:"A" (Event.n x (Value.Int 1)));
  ignore (Trace.record tr ~time:50.0 ~site:"A" (Event.p 60.0));
  let violations = Validity.check ~rules ~locator tr in
  Alcotest.(check (list string)) "guard false => waived" []
    (List.map Validity.violation_to_string violations)

let validity_guard_true_obligation_enforced () =
  let rules = Parser.parse_rules "cmp: N(X, b) ->[5] (Cx != b) ? WR(Y, b)" in
  let locator it = if it.Item.base = "Cx" then "B" else simple_locator it in
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:0.5 ~site:"B" (Event.w (item "Cx" []) (Value.Int 7)));
  ignore (Trace.record tr ~time:1.0 ~site:"A" (Event.n x (Value.Int 1)));
  ignore (Trace.record tr ~time:50.0 ~site:"A" (Event.p 60.0));
  let violations = Validity.check ~rules ~locator tr in
  Alcotest.(check bool) "guard true everywhere => violation" true
    (List.exists (function Validity.Missing_response _ -> true | _ -> false) violations)

let validity_out_of_order () =
  let rules =
    Parser.parse_rules "prop: N(X, b) ->[50] WR(Y, b)"
  in
  let tr = Trace.create () in
  let n1 = Trace.record tr ~time:1.0 ~site:"A" (Event.n x (Value.Int 1)) in
  let n2 = Trace.record tr ~time:2.0 ~site:"A" (Event.n x (Value.Int 2)) in
  (* Deliveries swapped: n2's write lands before n1's. *)
  ignore
    (Trace.record tr ~time:3.0 ~site:"B"
       ~kind:(Event.Generated { rule_id = "prop"; trigger = n2.Event.id })
       (Event.wr y (Value.Int 2)));
  ignore
    (Trace.record tr ~time:4.0 ~site:"B"
       ~kind:(Event.Generated { rule_id = "prop"; trigger = n1.Event.id })
       (Event.wr y (Value.Int 1)));
  let violations = Validity.check ~rules ~locator:simple_locator tr in
  Alcotest.(check bool) "out of order detected" true
    (List.exists (function Validity.Out_of_order _ -> true | _ -> false) violations)

let validity_site_restriction () =
  (* A polling rule for site A's X must not claim P events of site B. *)
  let rules = Parser.parse_rules "poll: P(60) ->[1] RR(X)" in
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:60.0 ~site:"B" (Event.p 60.0));
  ignore (Trace.record tr ~time:120.0 ~site:"B" (Event.p 60.0));
  let violations = Validity.check ~rules ~locator:simple_locator tr in
  Alcotest.(check (list string)) "other site's ticks ignored" []
    (List.map Validity.violation_to_string violations)

let qcheck_chain_validity =
  (* Any number of correctly recorded chains yields a valid execution. *)
  QCheck.Test.make ~name:"correct chains are always valid" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 20) (QCheck.int_range 0 1000))
    (fun vs ->
      let tr = Trace.create () in
      List.iteri (fun i v -> record_chain tr ~t0:(float_of_int (10 * i)) ~lag:0.4 v) vs;
      Validity.check ~rules:(propagation_rules ()) ~locator:simple_locator tr = [])

(* ---------- trace persistence ---------- *)

let trace_io_roundtrip () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:1.0 ~site:"a" (Event.ws x (Value.Int 5)));
  ignore
    (Trace.record tr ~time:2.5 ~site:"a"
       ~kind:(Event.Generated { rule_id = "sf/Salary1/notify"; trigger = 0 })
       (Event.n x (Value.Int 5)));
  ignore
    (Trace.record tr ~time:3.0 ~site:"b"
       (Event.wr (item "Salary2" [ Value.Str "e1" ]) (Value.Str "hi there")));
  ignore (Trace.record tr ~time:4.0 ~site:"b" (Event.p 30.0));
  let text =
    String.concat "\n" (List.map Trace_io.event_to_line (Trace.events tr))
  in
  match Trace_io.read_string text with
  | Error m -> Alcotest.fail m
  | Ok tr2 ->
    Alcotest.(check int) "same length" (Trace.length tr) (Trace.length tr2);
    List.iter2
      (fun (a : Event.t) (b : Event.t) ->
        Alcotest.(check bool)
          ("event preserved: " ^ Event.to_string a)
          true
          (Event.desc_equal a.desc b.desc && a.site = b.site && a.kind = b.kind
           && Float.abs (a.time -. b.time) < 1e-6))
      (Trace.events tr) (Trace.events tr2)

let trace_io_errors () =
  let fails text =
    match Trace_io.read_string text with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage" true (fails "not an event");
  Alcotest.(check bool) "bad id sequence" true (fails "5 1.0 a spont W(X, 1)");
  Alcotest.(check bool) "bad kind" true (fails "0 1.0 a banana W(X, 1)");
  Alcotest.(check bool) "time regression" true
    (fails "0 5.0 a spont W(X, 1)\n1 1.0 a spont W(X, 2)");
  Alcotest.(check bool) "non-concrete descriptor" true (fails "0 1.0 a spont W(X, b)");
  Alcotest.(check bool) "comments ok" false
    (fails "# header\n0 1.0 a spont W(X, 1)\n\n1 2.0 a gen:r1:0 N(X, 1)")

(* ---------- random-AST roundtrip properties ---------- *)

(* Random expressions from the printable fragment of the language. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Expr.Const (Value.Int i)) (int_range 0 100);
        map (fun f -> Expr.Const (Value.Float (Float.of_int f /. 4.0))) (int_range 1 40);
        oneofl
          [
            Expr.Var "a"; Expr.Var "b"; Expr.Var "v";
            Expr.Item ("X", []); Expr.Item ("Cache", []);
            Expr.Item ("Phone", [ Expr.Var "n" ]);
          ];
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> Expr.Binop (op, a, b))
              (oneofl
                 Expr.[ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; And; Or ])
              (go (depth - 1)) (go (depth - 1)) );
          (1, map (fun e -> Expr.Unop (Expr.Abs, e)) (go (depth - 1)));
          (1, map (fun e -> Expr.Unop (Expr.Not, e)) (go (depth - 1)));
          (1, return (Expr.Exists ("X", [])));
        ]
  in
  go 3

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"expr to_string/parse roundtrip" ~count:300
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun e ->
      let printed = Expr.to_string e in
      let reparsed = Parser.parse_expr printed in
      (* The reparse may differ structurally (parenthesisation), but its
         printed form must be stable. *)
      Expr.to_string reparsed = Expr.to_string (Parser.parse_expr (Expr.to_string reparsed)))

let gen_rule =
  let open QCheck.Gen in
  let item = oneofl [ "X"; "Y"; "Salary1"; "Salary2" ] in
  let var = oneofl [ "b"; "v" ] in
  let template name =
    map2 (fun base v -> Template.make name [ Expr.Item (base, []); Expr.Var v ]) item var
  in
  let lhs = oneof [ template "N"; template "Ws"; template "W"; template "R" ] in
  let step = map (fun t -> { Rule.guard = Expr.Const (Value.Bool true); template = t }) (template "WR") in
  let guarded_step =
    map2
      (fun g t -> { Rule.guard = g; template = t })
      (map (fun v -> Expr.Binop (Expr.Ne, Expr.Item ("Cache", []), Expr.Var v)) var)
      (template "WR")
  in
  let delta = map float_of_int (int_range 1 30) in
  map3
    (fun lhs steps delta -> Rule.make ~id:"q" ~delta ~lhs (Rule.Steps steps))
    lhs
    (oneof [ map (fun s -> [ s ]) step; map2 (fun a b -> [ a; b ]) guarded_step step ])
    delta

let qcheck_rule_roundtrip =
  QCheck.Test.make ~name:"rule to_string/parse roundtrip" ~count:300
    (QCheck.make ~print:Rule.to_string gen_rule)
    (fun r ->
      let r2 = Parser.parse_rule (Rule.to_string r) in
      Rule.to_string r = Rule.to_string r2)

let qcheck_timeline_last_write_wins =
  QCheck.Test.make ~name:"timeline reports the last write at or before t" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 0 100) small_nat))
    (fun writes ->
      let writes =
        List.mapi (fun i (t, v) -> (float_of_int t +. (0.001 *. float_of_int i), v)) writes
        |> List.sort compare
      in
      let tr = Trace.create () in
      List.iter
        (fun (t, v) -> ignore (Trace.record tr ~time:t ~site:"s" (Event.w x (Value.Int v))))
        writes;
      let tl = Timeline.of_trace tr in
      (* At each write instant and just after, the timeline equals that write. *)
      List.for_all
        (fun (t, v) ->
          let later_at_same_t =
            List.filter (fun (t', _) -> t' >= t && t' <= t +. 0.0005) writes
          in
          let _, expected = List.nth later_at_same_t (List.length later_at_same_t - 1) in
          ignore v;
          Timeline.value_at tl x (t +. 0.0005) = Some (Value.Int expected))
        writes)

let () =
  Alcotest.run "cm_rule"
    [
      ( "value",
        [
          Alcotest.test_case "numeric equality" `Quick value_numeric_equality;
          Alcotest.test_case "arith" `Quick value_arith;
          Alcotest.test_case "arith errors" `Quick value_arith_errors;
          Alcotest.test_case "ordering" `Quick value_ordering;
          Alcotest.test_case "literals" `Quick value_literals;
          QCheck_alcotest.to_alcotest value_compare_equal_consistent;
        ] );
      ( "item",
        [
          Alcotest.test_case "to_string" `Quick item_string;
          Alcotest.test_case "equality" `Quick item_equality;
        ] );
      ( "expr",
        [
          Alcotest.test_case "arith" `Quick expr_arith;
          Alcotest.test_case "comparisons" `Quick expr_comparisons;
          Alcotest.test_case "item lookup" `Quick expr_item_lookup;
          Alcotest.test_case "missing item" `Quick expr_missing_item;
          Alcotest.test_case "exists" `Quick expr_exists;
          Alcotest.test_case "binding equality" `Quick expr_binding_equality;
          Alcotest.test_case "binding threads &&" `Quick expr_binding_threads_through_and;
          Alcotest.test_case "no binding under ||" `Quick expr_no_binding_under_or;
          Alcotest.test_case "bound var equality" `Quick expr_bound_var_equality_checks;
          Alcotest.test_case "free vars" `Quick expr_free_vars;
          Alcotest.test_case "10% filter" `Quick expr_conditional_notify_condition;
        ] );
      ( "template",
        [
          Alcotest.test_case "matches concrete" `Quick template_matches_concrete;
          Alcotest.test_case "Ws shorthand" `Quick template_ws_shorthand;
          Alcotest.test_case "parameterized item" `Quick template_parameterized_item;
          Alcotest.test_case "repeated var" `Quick template_repeated_var_consistency;
          Alcotest.test_case "constant arg" `Quick template_constant_arg;
          Alcotest.test_case "wildcard" `Quick template_wildcard;
          Alcotest.test_case "var binds item" `Quick template_var_binds_item;
          Alcotest.test_case "FALSE matches nothing" `Quick template_false_matches_nothing;
          Alcotest.test_case "instantiate" `Quick template_instantiate;
          Alcotest.test_case "instantiate unbound" `Quick template_instantiate_unbound;
          Alcotest.test_case "arity checked" `Quick template_arity_checked;
        ] );
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick parser_roundtrip;
          Alcotest.test_case "labels" `Quick parser_labels;
          Alcotest.test_case "delta" `Quick parser_delta;
          Alcotest.test_case "multiple rules" `Quick parser_multiple_rules;
          Alcotest.test_case "comments" `Quick parser_comments;
          Alcotest.test_case "errors" `Quick parser_errors;
          Alcotest.test_case "Ws normalization" `Quick parser_ws_two_arg_normalized;
        ] );
      ( "rule",
        [
          Alcotest.test_case "sites" `Quick rule_sites;
          Alcotest.test_case "polling site" `Quick rule_polling_site_is_rhs;
          Alcotest.test_case "well-formed ok" `Quick rule_well_formed_ok;
          Alcotest.test_case "multi-site RHS rejected" `Quick rule_rhs_multi_site_rejected;
          Alcotest.test_case "unbound RHS var rejected" `Quick rule_unbound_rhs_var_rejected;
          Alcotest.test_case "binding cond provides var" `Quick rule_binding_cond_provides_var;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records in order" `Quick trace_records_in_order;
          Alcotest.test_case "queries" `Quick trace_queries;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "reconstruction" `Quick timeline_reconstruction;
          Alcotest.test_case "initial state" `Quick timeline_initial_state;
          Alcotest.test_case "existence" `Quick timeline_existence;
          Alcotest.test_case "values taken" `Quick timeline_values_taken;
        ] );
      ( "validity",
        [
          Alcotest.test_case "accepts correct chain" `Quick validity_accepts_correct_chain;
          Alcotest.test_case "missing response" `Quick validity_detects_missing_response;
          Alcotest.test_case "pending not reported" `Quick validity_pending_not_reported;
          Alcotest.test_case "bound exceeded" `Quick validity_detects_bound_exceeded;
          Alcotest.test_case "prohibited" `Quick validity_detects_prohibited;
          Alcotest.test_case "bad provenance" `Quick validity_detects_bad_provenance;
          Alcotest.test_case "guard waives" `Quick validity_guard_waives_obligation;
          Alcotest.test_case "guard enforced" `Quick validity_guard_true_obligation_enforced;
          Alcotest.test_case "out of order" `Quick validity_out_of_order;
          Alcotest.test_case "site restriction" `Quick validity_site_restriction;
          QCheck_alcotest.to_alcotest qcheck_chain_validity;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick trace_io_roundtrip;
          Alcotest.test_case "errors" `Quick trace_io_errors;
        ] );
      ( "roundtrip-properties",
        [
          QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_rule_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_timeline_last_write_wins;
        ] );
    ]
