(* Tests for the simulated network: FIFO delivery, latency, statistics. *)

module Sim = Cm_sim.Sim
module Net = Cm_net.Net

let make ?latency () =
  let sim = Sim.create ~seed:5 () in
  let net = Net.create ~sim ?latency () in
  (sim, net)

let delivery () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  let got = ref [] in
  Net.register net ~site:"b" (fun msg -> got := (msg, Sim.now sim) :: !got);
  Net.send net ~from_site:"a" ~to_site:"b" "hello";
  Sim.run sim;
  match !got with
  | [ ("hello", t) ] -> Alcotest.(check (float 1e-9)) "latency applied" 0.1 t
  | _ -> Alcotest.fail "message not delivered exactly once"

let fifo_per_link () =
  let sim, net = make ~latency:{ Net.base = 0.05; jitter = 0.2 } () in
  let got = ref [] in
  Net.register net ~site:"b" (fun msg -> got := msg :: !got);
  for i = 1 to 50 do
    Net.send net ~from_site:"a" ~to_site:"b" i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "in order despite jitter" (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let local_send_is_async () =
  let sim, net = make () in
  let got = ref false in
  Net.register net ~site:"a" (fun () -> got := true);
  Net.send net ~from_site:"a" ~to_site:"a" ();
  Alcotest.(check bool) "not synchronous" false !got;
  Sim.run sim;
  Alcotest.(check bool) "delivered" true !got;
  Alcotest.(check (float 1e-9)) "zero delay" 0.0 (Sim.now sim)

let unknown_destination () =
  let _, net = make () in
  Alcotest.(check bool) "raises" true
    (try
       Net.send net ~from_site:"a" ~to_site:"nowhere" ();
       false
     with Invalid_argument _ -> true)

let duplicate_registration () =
  let _, net = make () in
  Net.register net ~site:"a" (fun () -> ());
  Alcotest.(check bool) "raises" true
    (try
       Net.register net ~site:"a" (fun () -> ());
       false
     with Invalid_argument _ -> true)

let per_link_latency_override () =
  let sim, net = make ~latency:{ Net.base = 0.1; jitter = 0.0 } () in
  Net.set_latency net ~from_site:"a" ~to_site:"b" { Net.base = 2.0; jitter = 0.0 };
  let at = ref 0.0 in
  Net.register net ~site:"b" (fun () -> at := Sim.now sim);
  Net.send net ~from_site:"a" ~to_site:"b" ();
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "override used" 2.0 !at

let statistics () =
  let sim, net = make () in
  Net.register net ~site:"b" (fun () -> ());
  Net.register net ~site:"c" (fun () -> ());
  Net.send net ~from_site:"a" ~to_site:"b" ();
  Net.send net ~from_site:"a" ~to_site:"b" ();
  Net.send net ~from_site:"a" ~to_site:"c" ();
  Sim.run sim;
  Alcotest.(check int) "total" 3 (Net.messages_sent net);
  Alcotest.(check int) "a->b" 2 (Net.messages_between net ~from_site:"a" ~to_site:"b");
  Alcotest.(check int) "a->c" 1 (Net.messages_between net ~from_site:"a" ~to_site:"c");
  Net.reset_counters net;
  Alcotest.(check int) "reset" 0 (Net.messages_sent net)

let deterministic_jitter () =
  let run () =
    let sim, net = make ~latency:{ Net.base = 0.05; jitter = 0.1 } () in
    let times = ref [] in
    Net.register net ~site:"b" (fun () -> times := Sim.now sim :: !times);
    for _ = 1 to 10 do
      Net.send net ~from_site:"a" ~to_site:"b" ()
    done;
    Sim.run sim;
    !times
  in
  Alcotest.(check (list (float 1e-12))) "same seed, same delays" (run ()) (run ())

let () =
  Alcotest.run "cm_net"
    [
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick delivery;
          Alcotest.test_case "fifo per link" `Quick fifo_per_link;
          Alcotest.test_case "local send async" `Quick local_send_is_async;
          Alcotest.test_case "unknown destination" `Quick unknown_destination;
          Alcotest.test_case "duplicate registration" `Quick duplicate_registration;
          Alcotest.test_case "per-link override" `Quick per_link_latency_override;
          Alcotest.test_case "statistics" `Quick statistics;
          Alcotest.test_case "deterministic jitter" `Quick deterministic_jitter;
        ] );
    ]
