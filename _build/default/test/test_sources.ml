(* Tests for the heterogeneous Raw Information Sources. *)

module V = Cm_rule.Value
open Cm_sources

let value = Alcotest.testable V.pp V.equal

(* ---- kvfile ---- *)

let kv_read_write () =
  let fs = Kvfile.create () in
  Alcotest.(check (option string)) "missing" None (Kvfile.read fs "a");
  Kvfile.write fs "a" "hello";
  Alcotest.(check (option string)) "read back" (Some "hello") (Kvfile.read fs "a");
  Kvfile.write fs "a" "bye";
  Alcotest.(check (option string)) "overwrite" (Some "bye") (Kvfile.read fs "a")

let kv_remove_keys () =
  let fs = Kvfile.create () in
  Kvfile.write fs "b" "2";
  Kvfile.write fs "a" "1";
  Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ] (Kvfile.keys fs);
  Alcotest.(check bool) "removed" true (Kvfile.remove fs "a");
  Alcotest.(check bool) "already gone" false (Kvfile.remove fs "a");
  Alcotest.(check int) "size" 1 (Kvfile.size fs)

let kv_down () =
  let fs = Kvfile.create () in
  Health.set (Kvfile.health fs) Health.Down;
  Alcotest.check_raises "read raises" (Health.Unavailable "kvfile.read") (fun () ->
      ignore (Kvfile.read fs "a"));
  Health.set (Kvfile.health fs) Health.Healthy;
  Kvfile.write fs "a" "1";
  Alcotest.(check (option string)) "recovered" (Some "1") (Kvfile.read fs "a")

(* ---- whois ---- *)

let whois_query () =
  let w = Whois.create () in
  Whois.register w ~name:"ann" ~fields:[ ("phone", "555-1"); ("office", "B12") ];
  Alcotest.(check (option (list (pair string string))))
    "fields sorted"
    (Some [ ("office", "B12"); ("phone", "555-1") ])
    (Whois.query w "ann");
  Alcotest.(check (option (list (pair string string)))) "unknown" None (Whois.query w "bob")

let whois_update_and_dump () =
  let w = Whois.create () in
  Whois.register w ~name:"ann" ~fields:[ ("phone", "555-1") ];
  Alcotest.(check bool) "update" true (Whois.update_field w ~name:"ann" ~field:"phone" ~value:"555-2");
  Alcotest.(check bool) "update unknown" false
    (Whois.update_field w ~name:"bob" ~field:"phone" ~value:"1");
  Whois.register w ~name:"bob" ~fields:[];
  Alcotest.(check int) "dump size" 2 (List.length (Whois.dump w));
  Alcotest.(check bool) "unregister" true (Whois.unregister w ~name:"bob");
  Alcotest.(check int) "size" 1 (Whois.size w)

(* ---- bibdb ---- *)

let paper key authors =
  { Bibdb.key; title = "T:" ^ key; authors; year = 1996 }

let bib_queries () =
  let b = Bibdb.create () in
  Bibdb.add b (paper "p1" [ "widom"; "chawathe" ]);
  Bibdb.add b (paper "p2" [ "widom" ]);
  Bibdb.add b (paper "p3" [ "garcia" ]);
  Alcotest.(check int) "by author" 2 (List.length (Bibdb.by_author b "widom"));
  Alcotest.(check (list string)) "keys" [ "p1"; "p2"; "p3" ] (Bibdb.all_keys b);
  Alcotest.(check bool) "lookup" true (Bibdb.lookup b "p2" <> None);
  Alcotest.(check bool) "withdraw" true (Bibdb.withdraw b "p2");
  Alcotest.(check bool) "gone" true (Bibdb.lookup b "p2" = None);
  Alcotest.(check int) "size" 2 (Bibdb.size b)

(* ---- objstore ---- *)

let obj_put_get () =
  let s = Objstore.create () in
  Objstore.put s ~cls:"person" ~id:"ann" [ ("phone", V.Int 5551) ];
  Alcotest.(check (option value)) "get_attr" (Some (V.Int 5551))
    (Objstore.get_attr s ~cls:"person" ~id:"ann" ~attr:"phone");
  Alcotest.(check bool) "set" true
    (Objstore.set_attr s ~cls:"person" ~id:"ann" ~attr:"phone" (V.Int 5552));
  Alcotest.(check (option value)) "updated" (Some (V.Int 5552))
    (Objstore.get_attr s ~cls:"person" ~id:"ann" ~attr:"phone");
  Alcotest.(check bool) "set missing object" false
    (Objstore.set_attr s ~cls:"person" ~id:"bob" ~attr:"phone" (V.Int 1));
  Alcotest.(check (list string)) "ids" [ "ann" ] (Objstore.ids s ~cls:"person");
  Alcotest.(check bool) "delete" true (Objstore.delete s ~cls:"person" ~id:"ann")

let obj_subscription () =
  let s = Objstore.create () in
  Objstore.put s ~cls:"person" ~id:"ann" [ ("phone", V.Int 1) ];
  let log = ref [] in
  let _sub =
    Objstore.subscribe s ~cls:"person" ~attr:"phone"
      (fun ~id ~old_value ~new_value -> log := (id, old_value, new_value) :: !log)
  in
  ignore (Objstore.set_attr s ~cls:"person" ~id:"ann" ~attr:"phone" (V.Int 2));
  ignore (Objstore.set_attr s ~cls:"person" ~id:"ann" ~attr:"other" (V.Int 9));
  ignore (Objstore.set_attr s ~cls:"person" ~id:"ann" ~attr:"phone" (V.Int 2));
  (* no-op *)
  match !log with
  | [ ("ann", o, n) ] ->
    Alcotest.check value "old" (V.Int 1) o;
    Alcotest.check value "new" (V.Int 2) n
  | l -> Alcotest.fail (Printf.sprintf "expected 1 notification, got %d" (List.length l))

let obj_conditional_subscription () =
  let s = Objstore.create () in
  Objstore.put s ~cls:"acct" ~id:"a" [ ("bal", V.Float 100.0) ];
  let fired = ref 0 in
  let filter ~old_value ~new_value =
    Float.abs (V.to_float new_value -. V.to_float old_value) > 0.1 *. V.to_float old_value
  in
  let _sub =
    Objstore.subscribe s ~cls:"acct" ~attr:"bal" ~filter (fun ~id:_ ~old_value:_ ~new_value:_ ->
        incr fired)
  in
  ignore (Objstore.set_attr s ~cls:"acct" ~id:"a" ~attr:"bal" (V.Float 105.0));
  (* 5%: suppressed *)
  ignore (Objstore.set_attr s ~cls:"acct" ~id:"a" ~attr:"bal" (V.Float 130.0));
  (* ~24%: delivered *)
  Alcotest.(check int) "only big change fired" 1 !fired;
  Alcotest.(check int) "sent counter" 1 (Objstore.notifications_sent s);
  Alcotest.(check int) "suppressed counter" 1 (Objstore.notifications_suppressed s)

let obj_unsubscribe () =
  let s = Objstore.create () in
  Objstore.put s ~cls:"c" ~id:"i" [ ("a", V.Int 1) ];
  let fired = ref 0 in
  let sub =
    Objstore.subscribe s ~cls:"c" ~attr:"a" (fun ~id:_ ~old_value:_ ~new_value:_ ->
        incr fired)
  in
  ignore (Objstore.set_attr s ~cls:"c" ~id:"i" ~attr:"a" (V.Int 2));
  Objstore.unsubscribe s sub;
  ignore (Objstore.set_attr s ~cls:"c" ~id:"i" ~attr:"a" (V.Int 3));
  Alcotest.(check int) "unsubscribed" 1 !fired

let obj_silent_drop () =
  (* §5: the undetectable failure mode — notifications stop, reads work. *)
  let s = Objstore.create () in
  Objstore.put s ~cls:"c" ~id:"i" [ ("a", V.Int 1) ];
  let fired = ref 0 in
  let _sub =
    Objstore.subscribe s ~cls:"c" ~attr:"a" (fun ~id:_ ~old_value:_ ~new_value:_ ->
        incr fired)
  in
  Health.set (Objstore.health s) Health.Silent_drop;
  ignore (Objstore.set_attr s ~cls:"c" ~id:"i" ~attr:"a" (V.Int 2));
  Alcotest.(check int) "dropped silently" 0 !fired;
  Alcotest.(check (option value)) "write still applied" (Some (V.Int 2))
    (Objstore.get_attr s ~cls:"c" ~id:"i" ~attr:"a")

let whois_down () =
  let w = Whois.create () in
  Whois.register w ~name:"ann" ~fields:[];
  Health.set (Whois.health w) Health.Down;
  Alcotest.check_raises "query raises" (Health.Unavailable "whois.query") (fun () ->
      ignore (Whois.query w "ann"));
  Alcotest.check_raises "dump raises" (Health.Unavailable "whois.dump") (fun () ->
      ignore (Whois.dump w))

let bibdb_down () =
  let b = Bibdb.create () in
  Health.set (Bibdb.health b) Health.Down;
  Alcotest.check_raises "lookup raises" (Health.Unavailable "bibdb.lookup") (fun () ->
      ignore (Bibdb.lookup b "p1"))

let obj_missing_object () =
  let s = Objstore.create () in
  Alcotest.(check (option value)) "get_attr" None
    (Objstore.get_attr s ~cls:"c" ~id:"i" ~attr:"a");
  Alcotest.(check bool) "get" true (Objstore.get s ~cls:"c" ~id:"i" = None);
  Alcotest.(check bool) "delete missing" false (Objstore.delete s ~cls:"c" ~id:"i");
  Alcotest.(check (list string)) "ids empty" [] (Objstore.ids s ~cls:"c")

(* ---- health ---- *)

let health_modes () =
  let h = Health.create () in
  Alcotest.(check bool) "healthy" true (Health.mode h = Health.Healthy);
  Alcotest.(check (float 1e-9)) "no extra latency" 0.0 (Health.extra_latency h);
  Health.set h (Health.Degraded { extra_latency = 2.5 });
  Alcotest.(check (float 1e-9)) "degraded latency" 2.5 (Health.extra_latency h);
  Alcotest.(check bool) "not dropping" false (Health.dropping_notifications h);
  Health.set h Health.Silent_drop;
  Alcotest.(check bool) "dropping" true (Health.dropping_notifications h);
  Health.set h Health.Down;
  Alcotest.check_raises "check raises" (Health.Unavailable "x") (fun () ->
      Health.check h ~name:"x")

let qcheck_kvfile_model =
  (* Model-based: kvfile behaves like an association map. *)
  QCheck.Test.make ~name:"kvfile matches a map model" ~count:100
    QCheck.(
      list
        (pair (int_range 0 10)
           (make
              (Gen.oneof
                 [ Gen.return None; Gen.map (fun s -> Some s) Gen.small_string ]))))
    (fun ops ->
      let fs = Kvfile.create () in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (k, op) ->
          let key = "k" ^ string_of_int k in
          match op with
          | Some data ->
            Kvfile.write fs key data;
            Hashtbl.replace model key data
          | None ->
            ignore (Kvfile.remove fs key);
            Hashtbl.remove model key)
        ops;
      Hashtbl.fold (fun k v acc -> acc && Kvfile.read fs k = Some v) model true
      && Kvfile.size fs = Hashtbl.length model)

let () =
  Alcotest.run "cm_sources"
    [
      ( "kvfile",
        [
          Alcotest.test_case "read write" `Quick kv_read_write;
          Alcotest.test_case "remove keys" `Quick kv_remove_keys;
          Alcotest.test_case "down" `Quick kv_down;
          QCheck_alcotest.to_alcotest qcheck_kvfile_model;
        ] );
      ( "whois",
        [
          Alcotest.test_case "query" `Quick whois_query;
          Alcotest.test_case "update and dump" `Quick whois_update_and_dump;
          Alcotest.test_case "down" `Quick whois_down;
        ] );
      ( "bibdb",
        [
          Alcotest.test_case "queries" `Quick bib_queries;
          Alcotest.test_case "down" `Quick bibdb_down;
        ] );
      ( "objstore",
        [
          Alcotest.test_case "put get" `Quick obj_put_get;
          Alcotest.test_case "subscription" `Quick obj_subscription;
          Alcotest.test_case "conditional subscription" `Quick obj_conditional_subscription;
          Alcotest.test_case "unsubscribe" `Quick obj_unsubscribe;
          Alcotest.test_case "silent drop" `Quick obj_silent_drop;
          Alcotest.test_case "missing object" `Quick obj_missing_object;
        ] );
      ("health", [ Alcotest.test_case "modes" `Quick health_modes ]);
    ]
