(* Tests for the in-memory relational engine (the "Sybase" stand-in). *)

open Cm_relational
module V = Cm_rule.Value

let value = Alcotest.testable V.pp V.equal

let ok = function
  | Ok r -> r
  | Error e -> Alcotest.fail (Database.error_to_string e)

let expect_error pred what = function
  | Ok _ -> Alcotest.fail ("expected error: " ^ what)
  | Error e ->
    if not (pred e) then
      Alcotest.fail (what ^ ", got: " ^ Database.error_to_string e)

let fresh () =
  let db = Database.create () in
  ignore
    (ok
       (Database.exec db
          "CREATE TABLE emp (id TEXT PRIMARY KEY, salary INT NOT NULL, dept TEXT)"));
  db

let insert db id salary dept =
  ignore
    (ok
       (Database.exec db
          (Printf.sprintf "INSERT INTO emp VALUES ('%s', %d, '%s')" id salary dept)))

let rows = function
  | Database.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

(* ---- DDL / DML basics ---- *)

let create_and_insert () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  Alcotest.(check (option int)) "row count" (Some 1) (Database.row_count db "emp");
  Alcotest.(check (option (list string)))
    "columns" (Some [ "id"; "salary"; "dept" ]) (Database.columns_of db "emp")

let select_star () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  insert db "e2" 200 "eng";
  let r = rows (ok (Database.exec db "SELECT * FROM emp")) in
  Alcotest.(check int) "two rows" 2 (List.length r)

let select_where () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  insert db "e2" 200 "eng";
  insert db "e3" 300 "eng";
  let r = rows (ok (Database.exec db "SELECT id FROM emp WHERE dept = 'eng'")) in
  Alcotest.(check int) "filter" 2 (List.length r);
  let r = rows (ok (Database.exec db "SELECT id FROM emp WHERE salary > 150 AND dept = 'eng'")) in
  Alcotest.(check int) "conjunction" 2 (List.length r);
  let r = rows (ok (Database.exec db "SELECT id FROM emp WHERE salary >= 300 OR dept = 'sales'")) in
  Alcotest.(check int) "disjunction" 2 (List.length r)

let select_order_by () =
  let db = fresh () in
  insert db "e1" 300 "a";
  insert db "e2" 100 "b";
  insert db "e3" 200 "c";
  let r = rows (ok (Database.exec db "SELECT id FROM emp ORDER BY salary")) in
  Alcotest.(check (list (list string)))
    "ascending"
    [ [ "\"e2\"" ]; [ "\"e3\"" ]; [ "\"e1\"" ] ]
    (List.map (List.map V.to_string) r);
  let r = rows (ok (Database.exec db "SELECT id FROM emp ORDER BY salary DESC")) in
  Alcotest.(check string) "descending first" "\"e1\""
    (V.to_string (List.hd (List.hd r)))

let select_insertion_order () =
  let db = fresh () in
  insert db "z" 1 "a";
  insert db "a" 2 "a";
  let r = rows (ok (Database.exec db "SELECT id FROM emp")) in
  Alcotest.(check string) "insertion order" "\"z\"" (V.to_string (List.hd (List.hd r)))

let update_rows () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  insert db "e2" 200 "eng";
  (match ok (Database.exec db "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'") with
   | Database.Affected n -> Alcotest.(check int) "one updated" 1 n
   | _ -> Alcotest.fail "expected Affected");
  let r = rows (ok (Database.exec db "SELECT salary FROM emp WHERE id = 'e2'")) in
  Alcotest.check value "new salary" (V.Int 210) (List.hd (List.hd r))

let delete_rows () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  insert db "e2" 200 "eng";
  (match ok (Database.exec db "DELETE FROM emp WHERE id = 'e1'") with
   | Database.Affected n -> Alcotest.(check int) "one deleted" 1 n
   | _ -> Alcotest.fail "expected Affected");
  Alcotest.(check (option int)) "remaining" (Some 1) (Database.row_count db "emp")

let drop_table () =
  let db = fresh () in
  ignore (ok (Database.exec db "DROP TABLE emp"));
  Alcotest.(check (option int)) "gone" None (Database.row_count db "emp")

let params_substitution () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  let r =
    rows
      (ok
         (Database.exec db "SELECT salary FROM emp WHERE id = $n"
            ~params:[ ("n", V.Str "e1") ]))
  in
  Alcotest.check value "param read" (V.Int 100) (List.hd (List.hd r));
  ignore
    (ok
       (Database.exec db "UPDATE emp SET salary = $b WHERE id = $n"
          ~params:[ ("b", V.Int 555); ("n", V.Str "e1") ]));
  let r = rows (ok (Database.exec db "SELECT salary FROM emp WHERE id = 'e1'")) in
  Alcotest.check value "param write" (V.Int 555) (List.hd (List.hd r))

(* ---- errors and constraints ---- *)

let unknown_table () =
  let db = Database.create () in
  expect_error
    (function Database.Unknown_table _ -> true | _ -> false)
    "unknown table" (Database.exec db "SELECT * FROM nope")

let unknown_column () =
  let db = fresh () in
  expect_error
    (function Database.Unknown_column _ -> true | _ -> false)
    "unknown column" (Database.exec db "SELECT nope FROM emp")

let duplicate_key () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  expect_error
    (function Database.Duplicate_key _ -> true | _ -> false)
    "duplicate key"
    (Database.exec db "INSERT INTO emp VALUES ('e1', 1, 'x')")

let not_null () =
  let db = fresh () in
  expect_error
    (function Database.Not_null_violated _ -> true | _ -> false)
    "not null"
    (Database.exec db "INSERT INTO emp (id, dept) VALUES ('e9', 'x')")

let type_mismatch () =
  let db = fresh () in
  expect_error
    (function Database.Type_mismatch _ -> true | _ -> false)
    "type"
    (Database.exec db "INSERT INTO emp VALUES ('e1', 'not a number', 'x')")

let unbound_param () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  expect_error
    (function Database.Unbound_param _ -> true | _ -> false)
    "unbound param" (Database.exec db "SELECT * FROM emp WHERE id = $nope")

let parse_error () =
  let db = fresh () in
  expect_error
    (function Database.Parse_failed _ -> true | _ -> false)
    "parse" (Database.exec db "SELEKT * FROM emp")

let check_constraint_insert () =
  let db = Database.create () in
  ignore
    (ok
       (Database.exec db
          "CREATE TABLE acct (id TEXT PRIMARY KEY, bal INT, lim INT, CHECK (bal <= lim))"));
  ignore (ok (Database.exec db "INSERT INTO acct VALUES ('a', 10, 50)"));
  expect_error
    (function Database.Check_failed _ -> true | _ -> false)
    "check on insert"
    (Database.exec db "INSERT INTO acct VALUES ('b', 60, 50)")

let check_constraint_update_atomic () =
  (* A CHECK failure must leave the table untouched (statement atomicity):
     this is the local constraint manager the Demarcation Protocol uses. *)
  let db = Database.create () in
  ignore
    (ok
       (Database.exec db
          "CREATE TABLE acct (id TEXT PRIMARY KEY, bal INT, lim INT, CHECK (bal <= lim))"));
  ignore (ok (Database.exec db "INSERT INTO acct VALUES ('a', 10, 50)"));
  ignore (ok (Database.exec db "INSERT INTO acct VALUES ('b', 20, 50)"));
  expect_error
    (function Database.Check_failed _ -> true | _ -> false)
    "check on update" (Database.exec db "UPDATE acct SET bal = bal + 45");
  let r = rows (ok (Database.exec db "SELECT bal FROM acct ORDER BY id")) in
  Alcotest.(check (list (list string))) "both rows unchanged"
    [ [ "10" ]; [ "20" ] ]
    (List.map (List.map V.to_string) r)

let pk_update_reindexes () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  ignore (ok (Database.exec db "UPDATE emp SET id = 'e9' WHERE id = 'e1'"));
  let r = rows (ok (Database.exec db "SELECT salary FROM emp WHERE id = 'e9'")) in
  Alcotest.(check int) "found under new key" 1 (List.length r);
  (* Old key is free again. *)
  insert db "e1" 1 "x";
  Alcotest.(check (option int)) "two rows" (Some 2) (Database.row_count db "emp")

let null_semantics () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  ignore (ok (Database.exec db "INSERT INTO emp (id, salary) VALUES ('e2', 200)"));
  let r = rows (ok (Database.exec db "SELECT id FROM emp WHERE dept = 'sales'")) in
  Alcotest.(check int) "null not equal" 1 (List.length r);
  let r = rows (ok (Database.exec db "SELECT id FROM emp WHERE dept IS NULL")) in
  Alcotest.(check int) "is null" 1 (List.length r);
  let r = rows (ok (Database.exec db "SELECT id FROM emp WHERE dept IS NOT NULL")) in
  Alcotest.(check int) "is not null" 1 (List.length r)

(* ---- aggregates ---- *)

let agg_db () =
  (* A schema with a nullable salary so NULL-handling is observable. *)
  let db = Database.create () in
  ignore
    (ok (Database.exec db "CREATE TABLE emp (id TEXT PRIMARY KEY, salary INT, dept TEXT)"));
  List.iter
    (fun stmt -> ignore (ok (Database.exec db stmt)))
    [
      "INSERT INTO emp VALUES ('e1', 100, 'sales')";
      "INSERT INTO emp VALUES ('e2', 200, 'eng')";
      "INSERT INTO emp VALUES ('e3', 300, 'eng')";
      "INSERT INTO emp (id, dept) VALUES ('e4', 'eng')";  (* NULL salary *)
    ];
  db

let count_star () =
  let db = agg_db () in
  let r = rows (ok (Database.exec db "SELECT COUNT(*) FROM emp")) in
  Alcotest.check value "count" (V.Int 4) (List.hd (List.hd r))

let count_column_skips_null () =
  let db = agg_db () in
  let r = rows (ok (Database.exec db "SELECT COUNT(salary) FROM emp")) in
  Alcotest.check value "null salary skipped" (V.Int 3) (List.hd (List.hd r));
  let r = rows (ok (Database.exec db "SELECT COUNT(*) FROM emp WHERE salary > 150")) in
  Alcotest.check value "count filtered" (V.Int 2) (List.hd (List.hd r))

let sum_min_max_avg () =
  let db = fresh () in
  insert db "e1" 100 "a";
  insert db "e2" 200 "a";
  insert db "e3" 300 "b";
  let one q = List.hd (List.hd (rows (ok (Database.exec db q)))) in
  Alcotest.check value "sum" (V.Int 600) (one "SELECT SUM(salary) FROM emp");
  Alcotest.check value "min" (V.Int 100) (one "SELECT MIN(salary) FROM emp");
  Alcotest.check value "max" (V.Int 300) (one "SELECT MAX(salary) FROM emp");
  Alcotest.check value "avg" (V.Float 200.0) (one "SELECT AVG(salary) FROM emp")

let aggregates_on_empty () =
  let db = fresh () in
  let one q = List.hd (List.hd (rows (ok (Database.exec db q)))) in
  Alcotest.check value "count empty" (V.Int 0) (one "SELECT COUNT(*) FROM emp");
  Alcotest.check value "sum empty is null" V.Null (one "SELECT SUM(salary) FROM emp");
  Alcotest.check value "min empty is null" V.Null (one "SELECT MIN(salary) FROM emp")

let group_by_counts () =
  let db = fresh () in
  insert db "e1" 100 "sales";
  insert db "e2" 200 "eng";
  insert db "e3" 300 "eng";
  let r =
    rows (ok (Database.exec db "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept"))
  in
  (* groups sorted by key: eng, sales *)
  Alcotest.(check (list (list string))) "grouped"
    [ [ "\"eng\""; "2"; "500" ]; [ "\"sales\""; "1"; "100" ] ]
    (List.map (List.map V.to_string) r)

let group_by_rejects_ungrouped_column () =
  let db = agg_db () in
  expect_error
    (function Database.Parse_failed _ -> true | _ -> false)
    "ungrouped column"
    (Database.exec db "SELECT id, COUNT(*) FROM emp GROUP BY dept")

let aggregate_parse_errors () =
  let db = agg_db () in
  expect_error
    (function Database.Parse_failed _ -> true | _ -> false)
    "SUM(*)" (Database.exec db "SELECT SUM(*) FROM emp");
  expect_error
    (function Database.Unknown_column _ -> true | _ -> false)
    "unknown agg column" (Database.exec db "SELECT SUM(nope) FROM emp")

let aggregate_roundtrip () =
  let q = "SELECT dept, COUNT(*), MAX(salary) FROM emp WHERE (salary > 0) GROUP BY dept" in
  let s1 = Sql_ast.stmt_to_string (Sql_parser.parse q) in
  let s2 = Sql_ast.stmt_to_string (Sql_parser.parse s1) in
  Alcotest.(check string) "stable" s1 s2

(* ---- triggers ---- *)

let observer_events () =
  let db = fresh () in
  let log = ref [] in
  Database.on_change db (fun change ->
      let tag =
        match change with
        | Database.Inserted _ -> "ins"
        | Database.Updated _ -> "upd"
        | Database.Deleted _ -> "del"
      in
      log := tag :: !log);
  insert db "e1" 100 "sales";
  ignore (ok (Database.exec db "UPDATE emp SET salary = 150 WHERE id = 'e1'"));
  ignore (ok (Database.exec db "DELETE FROM emp WHERE id = 'e1'"));
  Alcotest.(check (list string)) "event order" [ "ins"; "upd"; "del" ] (List.rev !log)

let observer_sees_old_and_new () =
  let db = fresh () in
  let seen = ref None in
  Database.on_change db (fun change ->
      match change with
      | Database.Updated { old_row; new_row; _ } ->
        seen := Some (Row.get_or_null old_row "salary", Row.get_or_null new_row "salary")
      | _ -> ());
  insert db "e1" 100 "sales";
  ignore (ok (Database.exec db "UPDATE emp SET salary = 150 WHERE id = 'e1'"));
  match !seen with
  | Some (o, n) ->
    Alcotest.check value "old" (V.Int 100) o;
    Alcotest.check value "new" (V.Int 150) n
  | None -> Alcotest.fail "no update observed"

let no_event_on_noop_update () =
  let db = fresh () in
  let count = ref 0 in
  Database.on_change db (fun _ -> incr count);
  insert db "e1" 100 "sales";
  ignore (ok (Database.exec db "UPDATE emp SET salary = 100 WHERE id = 'e1'"));
  Alcotest.(check int) "only the insert" 1 !count

(* ---- property tests ---- *)

let qcheck_insert_select =
  QCheck.Test.make ~name:"every inserted row is selectable by pk" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 0 100000) small_int))
    (fun entries ->
      let db = fresh () in
      let seen = Hashtbl.create 16 in
      let expected = ref 0 in
      List.iter
        (fun (k, sal) ->
          let id = "k" ^ string_of_int k in
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.add seen id sal;
            incr expected;
            match
              Database.exec db
                (Printf.sprintf "INSERT INTO emp VALUES ('%s', %d, 'd')" id sal)
            with
            | Ok _ -> ()
            | Error e -> failwith (Database.error_to_string e)
          end)
        entries;
      Database.row_count db "emp" = Some !expected
      && Hashtbl.fold
           (fun id sal acc ->
             acc
             &&
             match
               Database.exec db "SELECT salary FROM emp WHERE id = $n"
                 ~params:[ ("n", V.Str id) ]
             with
             | Ok (Database.Rows { rows = [ [ v ] ]; _ }) -> V.equal v (V.Int sal)
             | _ -> false)
           seen true)

let qcheck_sql_roundtrip =
  (* stmt -> string -> parse preserves the printed form. *)
  let stmts =
    [
      "SELECT id, salary FROM emp WHERE (salary > 100) ORDER BY id";
      "UPDATE emp SET salary = (salary + 1) WHERE (dept = 'x')";
      "DELETE FROM emp WHERE (salary <= 0)";
      "INSERT INTO emp VALUES ('a', 1, 'b')";
      "CREATE TABLE t (a INT PRIMARY KEY, b TEXT NOT NULL, CHECK ((a > 0)))";
    ]
  in
  QCheck.Test.make ~name:"stmt_to_string/parse roundtrip" ~count:List.(length stmts)
    (QCheck.make (QCheck.Gen.oneofl stmts))
    (fun src ->
      let s1 = Sql_ast.stmt_to_string (Sql_parser.parse src) in
      let s2 = Sql_ast.stmt_to_string (Sql_parser.parse s1) in
      s1 = s2)

let () =
  Alcotest.run "cm_relational"
    [
      ( "dml",
        [
          Alcotest.test_case "create and insert" `Quick create_and_insert;
          Alcotest.test_case "select star" `Quick select_star;
          Alcotest.test_case "select where" `Quick select_where;
          Alcotest.test_case "order by" `Quick select_order_by;
          Alcotest.test_case "insertion order" `Quick select_insertion_order;
          Alcotest.test_case "update" `Quick update_rows;
          Alcotest.test_case "delete" `Quick delete_rows;
          Alcotest.test_case "drop" `Quick drop_table;
          Alcotest.test_case "params" `Quick params_substitution;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown table" `Quick unknown_table;
          Alcotest.test_case "unknown column" `Quick unknown_column;
          Alcotest.test_case "duplicate key" `Quick duplicate_key;
          Alcotest.test_case "not null" `Quick not_null;
          Alcotest.test_case "type mismatch" `Quick type_mismatch;
          Alcotest.test_case "unbound param" `Quick unbound_param;
          Alcotest.test_case "parse error" `Quick parse_error;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "check on insert" `Quick check_constraint_insert;
          Alcotest.test_case "check update atomic" `Quick check_constraint_update_atomic;
          Alcotest.test_case "pk update reindexes" `Quick pk_update_reindexes;
          Alcotest.test_case "null semantics" `Quick null_semantics;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "count star" `Quick count_star;
          Alcotest.test_case "count column" `Quick count_column_skips_null;
          Alcotest.test_case "sum/min/max/avg" `Quick sum_min_max_avg;
          Alcotest.test_case "empty table" `Quick aggregates_on_empty;
          Alcotest.test_case "group by" `Quick group_by_counts;
          Alcotest.test_case "ungrouped column rejected" `Quick
            group_by_rejects_ungrouped_column;
          Alcotest.test_case "parse errors" `Quick aggregate_parse_errors;
          Alcotest.test_case "roundtrip" `Quick aggregate_roundtrip;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "events" `Quick observer_events;
          Alcotest.test_case "old and new rows" `Quick observer_sees_old_and_new;
          Alcotest.test_case "no event on no-op" `Quick no_event_on_noop_update;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_insert_select;
          QCheck_alcotest.to_alcotest qcheck_sql_roundtrip;
        ] );
    ]
