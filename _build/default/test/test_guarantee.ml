(* Unit tests for the guarantee checker (§3.3, §6): each form is
   exercised with hand-built traces, positively and negatively. *)

open Cm_rule
module Guarantee = Cm_core.Guarantee

let x = Item.make "X"
let y = Item.make "Y"
let pair = { Guarantee.leader = x; follower = y }

(* Build a timeline from (time, item, value) writes, with X and Y both 0
   at time 0 unless [initial] overrides. *)
let timeline ?(initial = [ (x, Value.Int 0); (y, Value.Int 0) ]) writes =
  let tr = Trace.create () in
  List.iter
    (fun (t, item, v) -> ignore (Trace.record tr ~time:t ~site:"s" (Event.w item v)))
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) writes);
  Timeline.of_trace ~initial tr

let check ?ignore_after ?(horizon = 1000.0) tl g =
  Guarantee.check ?ignore_after ~horizon tl g

let assert_holds ?ignore_after ?horizon tl g =
  let r = check ?ignore_after ?horizon tl g in
  Alcotest.(check bool)
    (Guarantee.name g ^ ": " ^ String.concat "; " r.Guarantee.counterexamples)
    true r.Guarantee.holds

let assert_fails ?ignore_after ?horizon tl g =
  let r = check ?ignore_after ?horizon tl g in
  Alcotest.(check bool) (Guarantee.name g ^ " should fail") false r.Guarantee.holds

let iv v = Value.Int v

(* ---- (1) follows ---- *)

let follows_holds () =
  let tl =
    timeline [ (1.0, x, iv 5); (2.0, y, iv 5); (3.0, x, iv 7); (4.0, y, iv 7) ]
  in
  assert_holds tl (Guarantee.Follows pair)

let follows_fails_on_foreign_value () =
  let tl = timeline [ (1.0, x, iv 5); (2.0, y, iv 99) ] in
  assert_fails tl (Guarantee.Follows pair)

let follows_fails_on_early_value () =
  (* Y takes the value before X ever does. *)
  let tl = timeline [ (1.0, y, iv 5); (2.0, x, iv 5) ] in
  assert_fails tl (Guarantee.Follows pair)

let follows_same_instant_ok () =
  (* t2 <= t1: simultaneous adoption is allowed (initial states). *)
  let tl = timeline [ (1.0, x, iv 5); (1.0, y, iv 5) ] in
  assert_holds tl (Guarantee.Follows pair)

let follows_initial_state_counts () =
  (* Initial values count as held: Y starting equal to X is fine. *)
  let tl = timeline ~initial:[ (x, iv 3); (y, iv 3) ] [] in
  assert_holds tl (Guarantee.Follows pair)

(* ---- (2) leads ---- *)

let leads_holds () =
  let tl =
    timeline [ (1.0, x, iv 5); (2.0, y, iv 5); (3.0, x, iv 7); (4.0, y, iv 7) ]
  in
  assert_holds tl (Guarantee.Leads pair)

let leads_fails_on_missed_value () =
  let tl = timeline [ (1.0, x, iv 5); (2.0, x, iv 7); (3.0, y, iv 7) ] in
  assert_fails tl (Guarantee.Leads pair)

let leads_ignore_after_tail () =
  (* The missed value arrives after ignore_after: not an obligation. *)
  let tl = timeline [ (1.0, x, iv 5); (2.0, y, iv 5); (900.0, x, iv 9) ] in
  assert_holds ~ignore_after:800.0 tl (Guarantee.Leads pair);
  assert_fails tl (Guarantee.Leads pair)

let leads_satisfied_by_holding_through () =
  (* Y already holds the value and keeps holding it past t1. *)
  let tl = timeline ~initial:[ (x, iv 3); (y, iv 3) ] [ (5.0, x, iv 3) ] in
  (* X "re-takes" 3 at 5.0 (no-op collapsed), Y holds 3 throughout. *)
  assert_holds tl (Guarantee.Leads pair)

(* ---- (3) strictly follows ---- *)

let strictly_holds_with_gaps () =
  (* Y may skip values as long as order is preserved. *)
  let tl =
    timeline
      [ (1.0, x, iv 1); (2.0, x, iv 2); (3.0, x, iv 3); (4.0, y, iv 1); (5.0, y, iv 3) ]
  in
  assert_holds tl (Guarantee.Strictly_follows pair)

let strictly_fails_on_swap () =
  let tl =
    timeline
      [ (1.0, x, iv 1); (2.0, x, iv 2); (3.0, y, iv 2); (4.0, y, iv 1) ]
  in
  assert_fails tl (Guarantee.Strictly_follows pair)

let strictly_handles_repeats () =
  (* X: 1,2,1 — Y: 1,2,1 embeds; Y: 2,1,2 does not (no second 2). *)
  let base = [ (1.0, x, iv 1); (2.0, x, iv 2); (3.0, x, iv 1) ] in
  let tl =
    timeline (base @ [ (4.0, y, iv 1); (5.0, y, iv 2); (6.0, y, iv 1) ])
  in
  assert_holds tl (Guarantee.Strictly_follows pair);
  let tl =
    timeline (base @ [ (4.0, y, iv 2); (5.0, y, iv 1); (6.0, y, iv 2) ])
  in
  assert_fails tl (Guarantee.Strictly_follows pair)

(* ---- (4) metric follows ---- *)

let metric_holds_within_kappa () =
  let tl = timeline [ (10.0, x, iv 5); (12.0, y, iv 5) ] in
  assert_holds tl (Guarantee.Metric_follows (pair, 5.0))

let metric_fails_beyond_kappa () =
  (* X held 5 only during [10, 11); Y adopts it at 20 — staler than 5 s. *)
  let tl = timeline [ (10.0, x, iv 5); (11.0, x, iv 6); (20.0, y, iv 5) ] in
  assert_fails tl (Guarantee.Metric_follows (pair, 5.0));
  (* but a large enough kappa accepts it *)
  assert_holds tl (Guarantee.Metric_follows (pair, 15.0))

let metric_still_held_counts () =
  (* X still holds the value at t1: staleness 0 regardless of when set. *)
  let tl = timeline [ (10.0, x, iv 5); (500.0, y, iv 5) ] in
  assert_holds tl (Guarantee.Metric_follows (pair, 1.0))

(* ---- always_leq ---- *)

let leq_items = (Item.make "A", Item.make "B")

let always_leq_holds () =
  let a, b = leq_items in
  let tl =
    timeline ~initial:[ (a, iv 0); (b, iv 10) ]
      [ (1.0, a, iv 5); (2.0, b, iv 20); (3.0, a, iv 15) ]
  in
  assert_holds tl (Guarantee.Always_leq { smaller = a; larger = b })

let always_leq_fails_transiently () =
  let a, b = leq_items in
  (* a briefly exceeds b between 3.0 and 4.0. *)
  let tl =
    timeline ~initial:[ (a, iv 0); (b, iv 10) ]
      [ (3.0, a, iv 15); (4.0, b, iv 20) ]
  in
  assert_fails tl (Guarantee.Always_leq { smaller = a; larger = b })

let always_leq_skips_missing () =
  let a, b = leq_items in
  let tl = timeline ~initial:[ (a, iv 0) ] [ (1.0, a, iv 100) ] in
  (* b never exists: vacuous. *)
  assert_holds tl (Guarantee.Always_leq { smaller = a; larger = b })

(* ---- exists_within ---- *)

let parent = Item.make "Parent"
let child = Item.make "Child"

let existence_timeline events =
  let tr = Trace.create () in
  List.iter
    (fun (t, item, present) ->
      ignore
        (Trace.record tr ~time:t ~site:"s"
           (if present then Event.ins item else Event.del item)))
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) events);
  Timeline.of_trace tr

let g_exists bound =
  Guarantee.Exists_within { antecedent = child; consequent = parent; bound }

let exists_holds_when_parent_arrives_in_time () =
  let tl =
    existence_timeline [ (10.0, child, true); (15.0, parent, true) ]
  in
  assert_holds ~horizon:100.0 tl (g_exists 20.0)

let exists_fails_when_parent_too_late () =
  let tl =
    existence_timeline [ (10.0, child, true); (50.0, parent, true) ]
  in
  assert_fails ~horizon:100.0 tl (g_exists 20.0)

let exists_fails_when_parent_never_comes () =
  let tl = existence_timeline [ (10.0, child, true) ] in
  assert_fails ~horizon:100.0 tl (g_exists 20.0)

let exists_pending_within_horizon_ok () =
  (* Child appears at 90, bound 20, horizon 100: undecidable, no failure. *)
  let tl = existence_timeline [ (90.0, child, true) ] in
  assert_holds ~horizon:100.0 tl (g_exists 20.0)

let exists_parent_removed_then_violated () =
  let tl =
    existence_timeline
      [ (10.0, parent, true); (20.0, child, true); (30.0, parent, false) ]
  in
  (* Parent disappears at 30 and never returns; child persists. *)
  assert_fails ~horizon:200.0 tl (g_exists 20.0);
  (* Short gaps are fine: parent returns at 45 < 30+20. *)
  let tl =
    existence_timeline
      [ (10.0, parent, true); (20.0, child, true); (30.0, parent, false);
        (45.0, parent, true) ]
  in
  assert_holds ~horizon:200.0 tl (g_exists 20.0)

let exists_vacuous_without_child () =
  let tl = existence_timeline [ (10.0, parent, true) ] in
  assert_holds ~horizon:100.0 tl (g_exists 20.0)

(* ---- monitor window ---- *)

let flag = Item.make "Flag"
let tb = Item.make "Tb"

let g_monitor kappa = Guarantee.Monitor_window { flag; tb; x; y; kappa }

let monitor_holds () =
  (* X = Y on [10, 30]; flag true with Tb = 10 during that span. *)
  let tl =
    timeline
      ~initial:[ (x, iv 0); (y, iv 1); (flag, Value.Bool false); (tb, Value.Float 0.0) ]
      [
        (10.0, y, iv 0);
        (10.5, tb, Value.Float 10.0);
        (11.0, flag, Value.Bool true);
        (30.0, x, iv 9);
        (31.0, flag, Value.Bool false);
      ]
  in
  assert_holds ~horizon:40.0 tl (g_monitor 2.0)

let monitor_fails_when_flag_lies () =
  (* Flag says equal since 5.0 but X <> Y until 10. *)
  let tl =
    timeline
      ~initial:[ (x, iv 0); (y, iv 1); (flag, Value.Bool true); (tb, Value.Float 5.0) ]
      [ (10.0, y, iv 0) ]
  in
  assert_fails ~horizon:40.0 tl (g_monitor 1.0)

let monitor_kappa_excuses_lag () =
  (* X changes at 30; flag drops only at 33; kappa = 5 covers the lag. *)
  let tl =
    timeline
      ~initial:[ (x, iv 0); (y, iv 0); (flag, Value.Bool true); (tb, Value.Float 0.0) ]
      [ (30.0, x, iv 9); (33.0, flag, Value.Bool false) ]
  in
  assert_holds ~horizon:40.0 tl (g_monitor 5.0);
  assert_fails ~horizon:40.0 tl (g_monitor 0.5)

(* ---- periodic equal ---- *)

let g_periodic =
  Guarantee.Periodic_equal
    { x; y; period = 100.0; valid_from = 50.0; valid_to = 80.0 }

let periodic_holds () =
  (* X and Y diverge only outside the [50, 80] window of each period. *)
  let tl =
    timeline
      [
        (10.0, x, iv 1); (45.0, y, iv 1);  (* equal by 50 *)
        (110.0, x, iv 2); (140.0, y, iv 2);  (* equal by 150 *)
      ]
  in
  assert_holds ~horizon:200.0 tl g_periodic

let periodic_fails_inside_window () =
  let tl = timeline [ (60.0, x, iv 1) ] in
  assert_fails ~horizon:100.0 tl g_periodic

let periodic_overnight_window () =
  (* valid_to beyond the period: [k*100+90, k*100+120]. *)
  let g =
    Guarantee.Periodic_equal { x; y; period = 100.0; valid_from = 90.0; valid_to = 120.0 }
  in
  let tl = timeline [ (105.0, x, iv 1) ] in
  (* divergence at 105 falls inside window 0 = [90, 120]. *)
  assert_fails ~horizon:300.0 tl g;
  let tl = timeline [ (130.0, x, iv 1); (185.0, y, iv 1) ] in
  (* divergence 130-185 falls between windows ([90,120] and [190,220]). *)
  assert_holds ~horizon:300.0 tl g

(* ---- misc API ---- *)

let metric_classification () =
  Alcotest.(check bool) "follows non-metric" false (Guarantee.is_metric (Guarantee.Follows pair));
  Alcotest.(check bool) "leads non-metric" false (Guarantee.is_metric (Guarantee.Leads pair));
  Alcotest.(check bool) "metric-follows metric" true
    (Guarantee.is_metric (Guarantee.Metric_follows (pair, 1.0)));
  Alcotest.(check bool) "monitor metric" true (Guarantee.is_metric (g_monitor 1.0));
  Alcotest.(check bool) "exists metric" true (Guarantee.is_metric (g_exists 1.0));
  Alcotest.(check bool) "periodic metric" true (Guarantee.is_metric g_periodic);
  Alcotest.(check bool) "always-leq non-metric" false
    (Guarantee.is_metric (Guarantee.Always_leq { smaller = x; larger = y }))

let for_copy_constraint_shape () =
  let gs = Guarantee.for_copy_constraint ~source:x ~target:y ~kappa:7.0 in
  Alcotest.(check int) "four guarantees" 4 (List.length gs);
  Alcotest.(check (list string)) "names"
    [ "(1) follows"; "(2) leads"; "(3) strictly-follows"; "(4) metric-follows" ]
    (List.map Guarantee.name gs)

let counterexamples_are_bounded () =
  (* Lots of violations: at most 5 counterexamples reported. *)
  let writes = List.init 50 (fun i -> (float_of_int (i + 1), y, iv (1000 + i))) in
  let tl = timeline writes in
  let r = check tl (Guarantee.Follows pair) in
  Alcotest.(check bool) "fails" false r.Guarantee.holds;
  Alcotest.(check bool) "at most 5 examples" true
    (List.length r.Guarantee.counterexamples <= 5);
  Alcotest.(check int) "all obligations counted" 51 r.Guarantee.checked_points

(* ---- property tests ---- *)

(* A faithful propagation process always satisfies (1)-(4). *)
let qcheck_propagation_satisfies_all =
  QCheck.Test.make ~name:"simulated propagation satisfies (1)-(4)" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_range 1 100) (int_range 1 50)))
    (fun updates ->
      (* updates: (gap, value); target adopts each value delta=0.5 later. *)
      let tr = Trace.create () in
      let time = ref 0.0 in
      List.iter
        (fun (gap, v) ->
          time := !time +. float_of_int gap;
          ignore (Trace.record tr ~time:!time ~site:"a" (Event.w x (iv v)));
          ignore (Trace.record tr ~time:(!time +. 0.5) ~site:"b" (Event.w y (iv v))))
        updates;
      let tl = Timeline.of_trace ~initial:[ (x, iv 0); (y, iv 0) ] tr in
      let horizon = !time +. 10.0 in
      List.for_all
        (fun g -> (Guarantee.check ~horizon tl g).Guarantee.holds)
        (Guarantee.for_copy_constraint ~source:x ~target:y ~kappa:1.0))

(* Follows is monotone in the follower's subsequence: dropping follower
   updates never breaks (1). *)
let qcheck_follows_subsequence =
  QCheck.Test.make ~name:"(1) survives dropping follower updates" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20) (int_range 1 50))
        (list_of_size Gen.(int_range 0 20) bool))
    (fun (values, keep_mask) ->
      let tr = Trace.create () in
      List.iteri
        (fun i v ->
          let t = float_of_int (i + 1) in
          ignore (Trace.record tr ~time:t ~site:"a" (Event.w x (iv v)));
          let keep = match List.nth_opt keep_mask i with Some b -> b | None -> true in
          if keep then
            ignore (Trace.record tr ~time:(t +. 0.25) ~site:"b" (Event.w y (iv v))))
        values;
      let tl = Timeline.of_trace ~initial:[ (x, iv 0); (y, iv 0) ] tr in
      (Guarantee.check ~horizon:1000.0 tl (Guarantee.Follows pair)).Guarantee.holds)

(* Metric follows is monotone in kappa. *)
let qcheck_metric_monotone =
  QCheck.Test.make ~name:"(4) monotone in kappa" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 15) (pair (int_range 1 20) (int_range 1 30)))
        (pair (float_bound_exclusive 20.0) (float_bound_exclusive 20.0)))
    (fun (updates, (k1, k2)) ->
      let k_small = Float.min k1 k2 and k_big = Float.max k1 k2 in
      (* The 2 s adoption lag can interleave with the next source write,
         so gather all events and record them in time order. *)
      let time = ref 0.0 in
      let events =
        List.concat_map
          (fun (gap, v) ->
            time := !time +. float_of_int (max 1 gap);
            [ (!time, x, v); (!time +. 2.0, y, v) ])
          updates
      in
      let tr = Trace.create () in
      List.iter
        (fun (t, item, v) ->
          ignore (Trace.record tr ~time:t ~site:"s" (Event.w item (iv v))))
        (List.sort compare events);
      let tl = Timeline.of_trace ~initial:[ (x, iv 0); (y, iv 0) ] tr in
      let holds k =
        (Guarantee.check ~horizon:(!time +. 10.0) tl (Guarantee.Metric_follows (pair, k)))
          .Guarantee.holds
      in
      (not (holds k_small)) || holds k_big)

let () =
  Alcotest.run "cm_guarantee"
    [
      ( "follows",
        [
          Alcotest.test_case "holds" `Quick follows_holds;
          Alcotest.test_case "foreign value" `Quick follows_fails_on_foreign_value;
          Alcotest.test_case "early value" `Quick follows_fails_on_early_value;
          Alcotest.test_case "same instant" `Quick follows_same_instant_ok;
          Alcotest.test_case "initial state" `Quick follows_initial_state_counts;
        ] );
      ( "leads",
        [
          Alcotest.test_case "holds" `Quick leads_holds;
          Alcotest.test_case "missed value" `Quick leads_fails_on_missed_value;
          Alcotest.test_case "ignore_after" `Quick leads_ignore_after_tail;
          Alcotest.test_case "holding through" `Quick leads_satisfied_by_holding_through;
        ] );
      ( "strictly",
        [
          Alcotest.test_case "gaps ok" `Quick strictly_holds_with_gaps;
          Alcotest.test_case "swap fails" `Quick strictly_fails_on_swap;
          Alcotest.test_case "repeats" `Quick strictly_handles_repeats;
        ] );
      ( "metric",
        [
          Alcotest.test_case "within kappa" `Quick metric_holds_within_kappa;
          Alcotest.test_case "beyond kappa" `Quick metric_fails_beyond_kappa;
          Alcotest.test_case "still held" `Quick metric_still_held_counts;
        ] );
      ( "always-leq",
        [
          Alcotest.test_case "holds" `Quick always_leq_holds;
          Alcotest.test_case "transient violation" `Quick always_leq_fails_transiently;
          Alcotest.test_case "missing skipped" `Quick always_leq_skips_missing;
        ] );
      ( "exists-within",
        [
          Alcotest.test_case "in time" `Quick exists_holds_when_parent_arrives_in_time;
          Alcotest.test_case "too late" `Quick exists_fails_when_parent_too_late;
          Alcotest.test_case "never" `Quick exists_fails_when_parent_never_comes;
          Alcotest.test_case "pending" `Quick exists_pending_within_horizon_ok;
          Alcotest.test_case "parent removed" `Quick exists_parent_removed_then_violated;
          Alcotest.test_case "vacuous" `Quick exists_vacuous_without_child;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "holds" `Quick monitor_holds;
          Alcotest.test_case "lying flag" `Quick monitor_fails_when_flag_lies;
          Alcotest.test_case "kappa excuses lag" `Quick monitor_kappa_excuses_lag;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "holds" `Quick periodic_holds;
          Alcotest.test_case "fails inside window" `Quick periodic_fails_inside_window;
          Alcotest.test_case "overnight window" `Quick periodic_overnight_window;
        ] );
      ( "api",
        [
          Alcotest.test_case "metric classification" `Quick metric_classification;
          Alcotest.test_case "for_copy_constraint" `Quick for_copy_constraint_shape;
          Alcotest.test_case "bounded counterexamples" `Quick counterexamples_are_bounded;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_propagation_satisfies_all;
          QCheck_alcotest.to_alcotest qcheck_follows_subsequence;
          QCheck_alcotest.to_alcotest qcheck_metric_monotone;
        ] );
    ]
