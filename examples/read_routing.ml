(* Read routing: who may serve a read, and how stale may it be?

   §3.3.1's metric guarantee bounds a copy's staleness by κ, but the
   paper never says who gets to *use* the copy.  The router
   (Cm_route.Route) turns the static bound into a read-time decision: a
   client asks for "Salary1 within κ seconds" and is served from the
   New York copy iff its guarantee qualifies — κ proved and within the
   SLO, handle still valid, rule epoch still carrying the guarantee,
   site reachable — from the San Francisco master otherwise, and by a
   forced synchronous poll if even the master is cut off.

   Run with: dune exec examples/read_routing.exe *)

module Sys_ = Cm_core.System
module Net = Cm_net.Net
module Shell = Cm_core.Shell
module Msg = Cm_core.Msg
module Interface = Cm_core.Interface
module Route = Cm_route.Route
module Payroll = Cm_workload.Payroll

let show label (d : Route.decision) =
  Printf.printf "  %-34s -> %-11s %s@%s (kappa %g, latency %g)\n" label
    (Route.outcome_to_string d.Route.d_outcome)
    d.Route.d_served_base d.Route.d_served_site d.Route.d_served_kappa
    d.Route.d_latency;
  List.iter
    (fun s ->
      Printf.printf "  %36s skipped %s@%s: %s\n" "" s.Route.sk_target
        s.Route.sk_site s.Route.sk_reason)
    d.Route.d_skips

let () =
  let p = Payroll.create ~config:(Sys_.Config.seeded 2026) ~employees:3 () in
  Payroll.install_propagation p;
  let system = p.Payroll.system in
  (* The administrator knows B never writes Salary2 on its own — the
     same statement interfaces.rules ships for cmtool check/derive. *)
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let route =
    Route.create
      ~interfaces:(Sys_.interface_rules system @ [ nsw ])
      ~strategy:(Sys_.strategy_rules system)
      system
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  print_endline "The catalog the router works from:\n";
  print_string (Route.report_to_text route []);

  print_endline "\nA client in New York reads Salary1:\n";
  show "any staleness"
    (Route.read route ~client_site:Payroll.site_b "Salary1");
  show "within 11 s (= kappa, inclusive)"
    (Route.read ~within_kappa:11.0 route ~client_site:Payroll.site_b "Salary1");
  show "within 5 s (copy too stale)"
    (Route.read ~within_kappa:5.0 route ~client_site:Payroll.site_b "Salary1");

  print_endline
    "\nA metric failure at New York invalidates the copy's guarantee (§5):\n";
  Shell.report_failure (Sys_.shell system ~site:Payroll.site_b) Msg.Metric;
  show "any staleness"
    (Route.read route ~client_site:Payroll.site_b "Salary1");

  print_endline "\n...and a partition towards the master forces a poll:\n";
  Net.partition (Sys_.net system) ~from_site:Payroll.site_b
    ~to_site:Payroll.site_a ~until:1e9;
  show "any staleness"
    (Route.read route ~client_site:Payroll.site_b "Salary1");

  Printf.printf
    "\n%d reads: %d replica, %d master, %d forced poll\n"
    (Route.reads route)
    (Route.reads_by route Route.Replica)
    (Route.reads_by route Route.Master)
    (Route.reads_by route Route.Forced_poll)
