(* The Demarcation Protocol (paper §6.1): an inequality constraint
   X <= Y between account values at two branches, kept valid at all
   times without distributed transactions.

   Operations within the local limits are purely local (zero messages);
   crossing a limit triggers the rule-based limit-change round, in the
   safe order (Y's limit moves before X's).

   Run with: dune exec examples/demarcation_bank.exe *)

module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Guarantee = Cm_core.Guarantee
module Net = Cm_net.Net
module Bank = Cm_workload.Bank
module Table = Cm_util.Table

let state_row b label =
  [
    label;
    Table.cell_f (Bank.x_bal b);
    Table.cell_f (Bank.x_lim b);
    Table.cell_f (Bank.y_lim b);
    Table.cell_f (Bank.y_bal b);
    string_of_int (Net.messages_sent (Sys_.net b.Bank.system));
  ]

let () =
  let b = Bank.create ~config:(Cm_core.System.Config.seeded 7) ~policy:Cm_core.Demarcation.Conservative () in
  let sim = Sys_.sim b.Bank.system in
  let table =
    Table.create ~title:"X <= Y under the Demarcation Protocol (conservative grants)"
      ~columns:[ "step"; "X"; "Xlim"; "Ylim"; "Y"; "msgs" ]
  in
  Table.add_row table (state_row b "initial");

  (* Local operations inside the limit: no communication at all. *)
  Sim.schedule_at sim 1.0 (fun () ->
      assert (Bank.try_set_x b 30 = Bank.Applied);
      Table.add_row table (state_row b "X := 30 (local)"));
  Sim.schedule_at sim 2.0 (fun () ->
      assert (Bank.try_set_x b 45 = Bank.Applied);
      Table.add_row table (state_row b "X := 45 (local)"));

  (* Crossing the limit: rejected locally, limit-change round follows. *)
  Sim.schedule_at sim 3.0 (fun () ->
      assert (Bank.try_set_x b 80 = Bank.Requested);
      Table.add_row table (state_row b "X := 80 rejected; LCReq filed"));
  Sim.schedule_at sim 30.0 (fun () ->
      Table.add_row table (state_row b "after limit-change round");
      assert (Bank.try_set_x b 80 = Bank.Applied);
      Table.add_row table (state_row b "X := 80 (retry, local)"));

  (* Asking for more slack than Y has: denied, limits unchanged. *)
  Sim.schedule_at sim 60.0 (fun () ->
      assert (Bank.try_set_x b 150 = Bank.Requested);
      ());
  Sim.schedule_at sim 90.0 (fun () ->
      Table.add_row table (state_row b "X := 150 denied (Y = 100)"));

  Sys_.run b.Bank.system ~until:120.0;
  Table.print table;

  (* The whole trace satisfies the protocol's guarantee. *)
  let tl = Sys_.timeline ~initial:(Bank.initial b) b.Bank.system in
  let r = Guarantee.check ~horizon:120.0 tl Bank.always_leq_guarantee in
  Printf.printf "guarantee %s: holds = %b (%d state points checked)\n"
    (Guarantee.to_string Bank.always_leq_guarantee)
    r.Guarantee.holds r.Guarantee.checked_points;

  (* Compare grant policies: climbing X in small steps. *)
  print_newline ();
  let climb policy name =
    let b = Bank.create ~config:(Cm_core.System.Config.seeded 8) ~policy () in
    let sim = Sys_.sim b.Bank.system in
    let requests = ref 0 in
    List.iteri
      (fun i v ->
        Sim.schedule_at sim (float_of_int (1 + (i * 25))) (fun () ->
            match Bank.try_set_x b v with
            | Bank.Applied -> ()
            | Bank.Requested -> incr requests);
        Sim.schedule_at sim (float_of_int (20 + (i * 25))) (fun () ->
            ignore (Bank.try_set_x b v)))
      [ 55; 60; 65; 70; 75; 80; 85; 90; 95 ];
    Sys_.run b.Bank.system ~until:300.0;
    Printf.printf "%-13s limit-change requests for a 9-step climb: %d (final X = %g)\n"
      name !requests (Bank.x_bal b)
  in
  climb Cm_core.Demarcation.Conservative "conservative";
  climb Cm_core.Demarcation.Eager "eager";
  print_endline
    "\nEager grants raise the limit to Y's full current value on the first\n\
     request, so later steps stay local — the policy comparison of §6.1."
