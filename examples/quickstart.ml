(* Quickstart: the paper's §4.2 payroll example, end to end.

   A company stores personnel data in a San Francisco branch database (A)
   and at the New York headquarters (B).  The constraint is
   salary1(n) = salary2(n) for every employee n.  A offers a notify
   interface (a trigger on its relational database), B offers a write
   interface; the CM runs the §4.2.2 strategy

       N(salary1(n), b) ->[5] WR(salary2(n), b)

   and, per §4.2.3, guarantees (1)-(4) hold.  Then the administrator at A
   withdraws the notify interface; with only a read interface left, the
   CM must poll, and guarantee (2) is lost.

   Run with: dune exec examples/quickstart.exe *)

open Cm_rule
module Sys_ = Cm_core.System
module Guarantee = Cm_core.Guarantee
module Payroll = Cm_workload.Payroll
module Table = Cm_util.Table

let show_guarantees ~title p ~horizon ~ignore_after =
  let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
  let table = Table.create ~title ~columns:[ "guarantee"; "statement"; "holds" ] in
  List.iter
    (fun g ->
      let r = Guarantee.check ~horizon ~ignore_after tl g in
      Table.add_row table
        [ Guarantee.name g; Guarantee.to_string g; Table.cell_bool r.Guarantee.holds ])
    (Payroll.guarantees p ~emp:"e1");
  Table.print table

let () =
  print_endline "=== Scenario 1: notify interface at A (paper §4.2) ===\n";
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 2024) ~employees:5 () in
  Payroll.install_propagation p;
  print_endline "Strategy rules installed:";
  List.iter
    (fun r -> print_endline ("  " ^ Rule.to_string r))
    (Sys_.strategy_rules p.Payroll.system);
  print_newline ();

  (* Local applications update salaries at A over ~20 simulated minutes. *)
  Payroll.random_updates p ~mean_interarrival:60.0 ~until:1200.0;
  Sys_.run p.Payroll.system ~until:1500.0;

  let table =
    Table.create ~title:"salaries after the run" ~columns:[ "employee"; "A"; "B"; "equal" ]
  in
  List.iter
    (fun emp ->
      let a = Payroll.salary_at p `A emp and b = Payroll.salary_at p `B emp in
      Table.add_row table
        [ emp; Value.to_string a; Value.to_string b; Table.cell_bool (Value.equal a b) ])
    p.Payroll.employees;
  Table.print table;

  show_guarantees ~title:"guarantees for salary1(e1) = salary2(e1)" p ~horizon:1500.0
    ~ignore_after:1200.0;

  (* The trace really is a valid execution in the Appendix-A sense. *)
  let violations = Sys_.check_validity p.Payroll.system in
  Printf.printf "Appendix-A validity violations: %d\n\n" (List.length violations);

  print_endline "=== Scenario 2: A withdraws notify; polling every 60 s (§4.2.3) ===\n";
  let p2 = Payroll.create ~config:(Cm_core.System.Config.seeded 2025) ~employees:5 ~mode:Payroll.Read_only () in
  Payroll.install_polling ~period:60.0 p2;
  (* A burst of updates inside one polling interval. *)
  Payroll.schedule_update p2 ~at:70.0 ~emp:"e1" ~salary:7000;
  Payroll.schedule_update p2 ~at:80.0 ~emp:"e1" ~salary:7100;
  Payroll.schedule_update p2 ~at:90.0 ~emp:"e1" ~salary:7200;
  Payroll.random_updates p2 ~mean_interarrival:100.0 ~until:1200.0;
  Sys_.run p2.Payroll.system ~until:1500.0;
  show_guarantees ~title:"guarantees under polling" p2 ~horizon:1500.0 ~ignore_after:1200.0;
  print_endline
    "Guarantee (2) fails under polling: updates e1 -> 7000 and 7100 fell inside\n\
     one polling interval and were never reflected at B — exactly the paper's\n\
     §4.2.3 observation.  The other guarantees are unaffected."
