(* The full toolkit workflow of §4.1, end to end, from one config file:

   1. the CM-RID configuration describes the sources and their items;
   2. at initialization the CM-Shells query the CM-Translators, which
      respond with their interface specifications;
   3. the CM suggests strategies applicable to these interfaces, along
      with the associated guarantees;
   4. the administrator picks one; the toolkit distributes its rules;
   5. at run time the system maintains the constraint, and the trace
      checkers confirm the offered guarantees — here also statically,
      via the derivation engine.

   Run with: dune exec examples/toolkit_workflow.exe *)

open Cm_rule
module Sys_ = Cm_core.System
module Suggest = Cm_core.Suggest
module Interface = Cm_core.Interface
module Guarantee = Cm_core.Guarantee
module Toolkit = Cm_core.Toolkit
module Table = Cm_util.Table

let config_text =
  {|# Two relational personnel databases; A pushes trigger notifications.
source sf relational
  init CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)
  init INSERT INTO employees VALUES ('e1', 1000)
  init INSERT INTO employees VALUES ('e2', 1100)
  item Salary1(n)
    read SELECT salary FROM employees WHERE empid = $n
    write UPDATE employees SET salary = $b WHERE empid = $n
    notify employees.salary key empid
  latency notify 1.0
  delta notify 5.0

source ny relational
  init CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)
  init INSERT INTO employees VALUES ('e1', 1000)
  init INSERT INTO employees VALUES ('e2', 1100)
  item Salary2(n)
    read SELECT salary FROM employees WHERE empid = $n
    write UPDATE employees SET salary = $b WHERE empid = $n
    notify employees.salary key empid observe
    no_spontaneous
  latency write 0.2
  delta write 1.0
|}
(* Remove the no_spontaneous declaration above and the derivation engine
   conservatively refuses guarantees (1)/(3)/(4): without it, nothing
   rules out foreign values appearing in Salary2. *)

let () =
  (* 1-2: build the system; translators report their interfaces. *)
  let config =
    match Cm_core.Cmrid.parse config_text with
    | Ok c -> c
    | Error es -> failwith (Cm_core.Cmrid.errors_to_string es)
  in
  let built =
    match Toolkit.build ~config:(Cm_core.System.Config.seeded 1996) config with Ok b -> b | Error m -> failwith m
  in
  let system = built.Toolkit.system in
  print_endline "Interfaces discovered during initialization (§4.1):\n";
  List.iter
    (fun (base, kinds) -> Printf.printf "  %-10s %s\n" base (String.concat ", " kinds))
    (Toolkit.interface_summary built);

  (* 3: the CM suggests strategies with previously proven guarantees. *)
  let interface_kinds base =
    Interface.kinds_of_rules
      (List.filter
         (fun r ->
           match Template.item_base r.Rule.lhs with
           | Some b -> String.equal b base
           | None ->
             List.exists
               (fun (s : Rule.step) -> Template.item_base s.Rule.template = Some base)
               (Rule.rhs_steps r))
         (Sys_.interface_rules system))
  in
  let constraint_def =
    Cm_core.Constraint_def.Copy
      {
        source = Interface.family "Salary1" [ "n" ];
        target = Interface.family "Salary2" [ "n" ];
      }
  in
  let candidates = Suggest.for_constraint ~interfaces:interface_kinds constraint_def in
  Printf.printf "\nConstraint: %s\nSuggested strategies:\n\n"
    (Cm_core.Constraint_def.to_string constraint_def);
  List.iteri
    (fun i c -> Printf.printf "[%d] %s\n\n" (i + 1) (Suggest.describe c))
    candidates;

  (* 4: the administrator selects the first suggestion. *)
  let chosen = List.hd candidates in
  Printf.printf "Administrator selects: %s\n\n" chosen.Suggest.candidate_name;
  Sys_.install system chosen.Suggest.strategy;

  (* The derivation engine confirms the offered guarantees statically. *)
  print_endline "Static derivation from the specifications ([CGMW94] proof rules):\n";
  let report =
    Cm_core.Derive.copy_guarantees
      ~interfaces:(Sys_.interface_rules system)
      ~strategy:(Sys_.strategy_rules system)
      ~source:(Interface.family "Salary1" [ "n" ])
      ~target:(Interface.family "Salary2" [ "n" ])
  in
  print_endline (Cm_core.Derive.report_to_string report);

  (* 5: run spontaneous updates through the configured system. *)
  let tr_sf = List.assoc "sf" built.Toolkit.relational in
  List.iteri
    (fun i (emp, salary) ->
      Cm_sim.Sim.schedule_at (Sys_.sim system)
        (10.0 +. (20.0 *. float_of_int i))
        (fun () ->
          ignore
            (Cm_core.Tr_relational.exec_app tr_sf
               "UPDATE employees SET salary = $b WHERE empid = $n"
               ~params:[ ("b", Value.Int salary); ("n", Value.Str emp) ])))
    [ ("e1", 1500); ("e2", 1650); ("e1", 1725) ];
  Sys_.run system ~until:200.0;

  (* ...and the dynamic checkers agree with the static derivation. *)
  let initial =
    List.concat_map
      (fun (emp, v) ->
        [
          (Item.make "Salary1" ~params:[ Value.Str emp ], Value.Int v);
          (Item.make "Salary2" ~params:[ Value.Str emp ], Value.Int v);
        ])
      [ ("e1", 1000); ("e2", 1100) ]
  in
  let tl = Sys_.timeline ~initial system in
  let table =
    Table.create ~title:"dynamic check on the recorded trace"
      ~columns:[ "guarantee"; "statically proved"; "holds on trace" ]
  in
  let statically = function
    | Cm_core.Derive.Proved _ -> "yes"
    | Cm_core.Derive.Unprovable _ -> "no"
  in
  List.iter
    (fun (g, verdict) ->
      let r = Guarantee.check ~horizon:200.0 ~ignore_after:150.0 tl g in
      Table.add_row table
        [ Guarantee.name g; statically verdict; Table.cell_bool r.Guarantee.holds ])
    (let source = Item.make "Salary1" ~params:[ Value.Str "e1" ] in
     let target = Item.make "Salary2" ~params:[ Value.Str "e1" ] in
     let pair = { Guarantee.leader = source; follower = target } in
     let kappa =
       match report.Cm_core.Derive.metric_follows with
       | Cm_core.Derive.Proved { kappa = Some k; _ } -> k
       | _ -> 10.0
     in
     [
       (Guarantee.Follows pair, report.Cm_core.Derive.follows);
       (Guarantee.Leads pair, report.Cm_core.Derive.leads);
       (Guarantee.Strictly_follows pair, report.Cm_core.Derive.strictly_follows);
       (Guarantee.Metric_follows (pair, kappa), report.Cm_core.Derive.metric_follows);
     ]);
  Table.print table;
  Printf.printf "Appendix-A validity violations: %d\n"
    (List.length (Sys_.check_validity system))
