(* Monitoring only (paper §6.3, with the robot/game flavour of §3.3.1):
   a robot broadcasts its position into a field database X; an
   independent legacy feed mirrors it into the plotter's database Y.
   The CM can write NEITHER item — both sources are notify-only — so the
   best it can do is monitor the copy constraint X = Y, maintaining the
   auxiliary items Flag and Tb at the console's shell.  The guarantee:

     ((Flag = true) /\ (Tb = s))@t  =>  (X = Y) throughout [s, t - kappa]

   The console application reads Flag/Tb (local data only, §7.1) to
   decide whether the plotted path was computed from consistent data.

   Run with: dune exec examples/monitor_game.exe *)

open Cm_rule
module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Strategy = Cm_core.Strategy
module Guarantee = Cm_core.Guarantee
module Tr_objstore = Cm_core.Tr_objstore
module Table = Cm_util.Table

let locator item =
  match item.Item.base with
  | "RobotPos" -> "field"
  | "PlotPos" -> "plotter"
  | _ -> "console"

let kappa = 6.0

let () =
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 99) locator in
  let sh_field = Sys_.add_shell system ~site:"field" in
  let sh_plot = Sys_.add_shell system ~site:"plotter" in
  let sh_console = Sys_.add_shell system ~site:"console" in
  let sim = Sys_.sim system in

  let make_source ~site ~shell ~base =
    let store = Cm_sources.Objstore.create () in
    Cm_sources.Objstore.put store ~cls:"pos" ~id:"r1" [ ("coord", Value.Int 0) ];
    let tr =
      Tr_objstore.create ~sim ~store ~site
        ~emit:(Shell.emitter_for shell ~site)
        ~report:(fun k -> Shell.report_failure shell k)
        ~notify_latency:0.5 ~notify_delta:3.0
        [
          {
            Tr_objstore.base;
            cls = "pos";
            attr = "coord";
            writable = false;  (* the CM cannot enforce, only monitor *)
            notify = Tr_objstore.Plain;
          };
        ]
    in
    Sys_.register_translator system ~shell (Tr_objstore.cmi tr);
    tr
  in
  let tr_field = make_source ~site:"field" ~shell:sh_field ~base:"RobotPos" in
  let tr_plot = make_source ~site:"plotter" ~shell:sh_plot ~base:"PlotPos" in

  let x = Expr.Item ("RobotPos", [ Expr.Const (Value.Str "r1") ]) in
  let y = Expr.Item ("PlotPos", [ Expr.Const (Value.Str "r1") ]) in
  Sys_.install system (Strategy.monitor ~prefix:"r1" ~delta:3.0 ~x ~y ());
  let aux = Strategy.monitor_items ~prefix:"r1" () in

  (* The robot moves every ~4 s; the legacy feed mirrors each move with a
     1.5 s lag (and the CM has no part in that propagation). *)
  let move item tr v =
    ignore (Tr_objstore.set_app tr (Item.make item ~params:[ Value.Str "r1" ]) (Value.Int v))
  in
  let positions = [ 3; 7; 12; 18; 25 ] in
  List.iteri
    (fun i v ->
      let t = 5.0 +. (float_of_int i *. 4.0) in
      Sim.schedule_at sim t (fun () -> move "RobotPos" tr_field v);
      Sim.schedule_at sim (t +. 1.5) (fun () -> move "PlotPos" tr_plot v))
    positions;

  (* The console samples the monitor's auxiliary data every 2 s. *)
  let table =
    Table.create ~title:"console's view of the monitor (kappa = 6 s)"
      ~columns:[ "t"; "Flag"; "Tb"; "application's conclusion" ]
  in
  Sim.every sim ~period:2.0 ~start:2.0
    (fun () ->
      let flag = Shell.read_aux sh_console aux.Strategy.flag in
      let tb = Shell.read_aux sh_console aux.Strategy.tb in
      let conclusion =
        match flag, tb with
        | Some (Value.Bool true), Some tb_v ->
          Printf.sprintf "X = Y held on [%s, %.1f]: plot trustworthy"
            (Value.to_string tb_v)
            (Sim.now sim -. kappa)
        | _ -> "unknown: recompute or wait"
      in
      Table.add_row table
        [
          Table.cell_f (Sim.now sim);
          (match flag with Some v -> Value.to_string v | None -> "-");
          (match tb with Some v -> Value.to_string v | None -> "-");
          conclusion;
        ])
    ~cancel:(fun () -> Sim.now sim > 30.0);

  Sys_.run system ~until:40.0;
  Table.print table;

  let tl =
    Sys_.timeline system
      ~initial:
        [
          (Item.make "RobotPos" ~params:[ Value.Str "r1" ], Value.Int 0);
          (Item.make "PlotPos" ~params:[ Value.Str "r1" ], Value.Int 0);
        ]
  in
  let g =
    Guarantee.Monitor_window
      {
        flag = aux.Strategy.flag;
        tb = aux.Strategy.tb;
        x = Item.make "RobotPos" ~params:[ Value.Str "r1" ];
        y = Item.make "PlotPos" ~params:[ Value.Str "r1" ];
        kappa;
      }
  in
  let r = Guarantee.check ~horizon:40.0 tl g in
  Printf.printf "\nmonitor guarantee: holds = %b (%d obligations checked)\n"
    r.Guarantee.holds r.Guarantee.checked_points;
  List.iter print_endline r.Guarantee.counterexamples
