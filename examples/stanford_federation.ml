(* The Stanford federation (paper §4.3): four heterogeneous sources —
   the campus whois directory (read-only), the departmental "lookup"
   personnel database (notify + write), the database group's relational
   database (write), and the bibliographic system (read-only) —
   coordinated by the CM without modifying any of them.

   Run with: dune exec examples/stanford_federation.exe *)

open Cm_rule
module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Guarantee = Cm_core.Guarantee
module Stanford = Cm_workload.Stanford
module Table = Cm_util.Table

let () =
  let s = Stanford.create ~config:(Cm_core.System.Config.seeded 1996) ~people:4 ~poll_period:120.0 () in
  let sim = Sys_.sim s.Stanford.system in

  print_endline "Sources and the interfaces their translators report:\n";
  List.iter
    (fun r -> print_endline ("  " ^ Rule.to_string r))
    (Sys_.interface_rules s.Stanford.system);
  print_newline ();
  print_endline "Installed strategy rules:\n";
  List.iter
    (fun r -> print_endline ("  " ^ Rule.to_string r))
    (Sys_.strategy_rules s.Stanford.system);
  print_newline ();

  (* Day in the life of the federation. *)
  Sim.schedule_at sim 30.0 (fun () ->
      print_endline "t=30    admin changes p1's phone in the whois directory";
      Stanford.admin_change_phone s ~person:"p1" ~phone:"650-723-0001");
  Sim.schedule_at sim 60.0 (fun () ->
      print_endline
        "t=60    p2 edits their own phone in lookup (the directory later\n\
         \        overrides it: whois is authoritative on this hop, and the\n\
         \        polling strategy restores the directory value)";
      Stanford.app_change_phone s ~person:"p2" ~phone:"650-723-0002");
  Sim.schedule_at sim 90.0 (fun () ->
      print_endline "t=90    librarian records the ICDE'96 paper in the bibliography";
      Stanford.publish_paper s ~key:"icde96" ~title:"Constraint Management Toolkit"
        ~authors:[ "chawathe"; "garcia-molina"; "widom" ]);
  Sys_.run s.Stanford.system ~until:300.0;

  print_newline ();
  let table =
    Table.create ~title:"phone numbers after convergence (t = 300)"
      ~columns:[ "person"; "lookup"; "groupdb" ]
  in
  List.iter
    (fun person ->
      let show = function Some v -> Value.to_string v | None -> "-" in
      Table.add_row table
        [
          person;
          show (Stanford.phone_in_lookup s ~person);
          show (Stanford.phone_in_groupdb s ~person);
        ])
    s.Stanford.people;
  Table.print table;

  Printf.printf "icde96 mirrored into groupdb: %b\n\n"
    (Stanford.paper_in_groupdb s ~key:"icde96");

  (* Check the guarantees the toolkit offered. *)
  let tl = Sys_.timeline ~initial:s.Stanford.initial s.Stanford.system in
  let table =
    Table.create ~title:"guarantee validity" ~columns:[ "person"; "guarantee"; "holds" ]
  in
  List.iter
    (fun person ->
      List.iter
        (fun g ->
          let r = Guarantee.check ~horizon:300.0 ~ignore_after:250.0 tl g in
          Table.add_row table
            [ person; Guarantee.name g; Table.cell_bool r.Guarantee.holds ])
        (Stanford.phone_guarantees s ~person))
    s.Stanford.people;
  Table.print table;

  let r =
    Guarantee.check ~horizon:300.0 tl (Stanford.refint_guarantee ~key:"icde96" ~bound:60.0)
  in
  Printf.printf
    "referential integrity (bib paper mentioned in groupdb within 60 s): %b\n"
    r.Guarantee.holds
