module Rule = Cm_rule.Rule
module Template = Cm_rule.Template
module Expr = Cm_rule.Expr
module Item = Cm_rule.Item
module Value = Cm_rule.Value
module Parser = Cm_rule.Parser
module Cmrid = Cm_core.Cmrid
module Chase = Cm_chase.Chase
module Interface = Cm_core.Interface
module Derive = Cm_core.Derive
module Guarantee_view = Cm_core.System.Guarantee_view

type severity = Error | Warning | Info

type finding = {
  code : string;
  severity : severity;
  file : string;
  line : int option;
  site : string option;
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let compare_finding a b =
  let line f = Option.value f.line ~default:0 in
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare (line a) (line b) in
    if c <> 0 then c
    else
      let c = compare a.code b.code in
      if c <> 0 then c
      else
        let c = compare a.site b.site in
        if c <> 0 then c else compare a.message b.message

let summary findings =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) findings

let exit_code ?(deny_warnings = false) findings =
  let errors, warnings, _ = summary findings in
  if errors > 0 then 1 else if deny_warnings && warnings > 0 then 1 else 0

let finding_to_string f =
  let loc = match f.line with Some l -> Printf.sprintf "%s:%d" f.file l | None -> f.file in
  let site = match f.site with Some s -> Printf.sprintf " (site %s)" s | None -> "" in
  Printf.sprintf "%s: %s[%s]%s: %s" loc (severity_to_string f.severity) f.code site f.message

let to_text findings =
  match findings with
  | [] -> "no findings"
  | fs ->
    let errors, warnings, infos = summary fs in
    String.concat "\n" (List.map finding_to_string fs)
    ^ Printf.sprintf "\n%d error(s), %d warning(s), %d info(s)" errors warnings infos

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~checked findings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"checked\":\"%s\",\"findings\":[" (json_escape checked));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%s,\"site\":%s,\"message\":\"%s\"}"
           (json_escape f.code)
           (severity_to_string f.severity)
           (json_escape f.file)
           (match f.line with Some l -> string_of_int l | None -> "null")
           (match f.site with Some s -> "\"" ^ json_escape s ^ "\"" | None -> "null")
           (json_escape f.message)))
    findings;
  let errors, warnings, infos = summary findings in
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d,\"infos\":%d}" errors warnings infos);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Analysis context                                                    *)

(* An item declaration reduced to what the checks need. *)
type item_info = {
  ii_site : string;
  ii_arity : int;
  ii_line : int;
  ii_params : string list;
  ii_readable : bool;
  ii_writable : bool;
  ii_deletable : bool;
  ii_notifies : bool;  (* has a spontaneous (Ws-triggered) notify channel *)
  ii_no_spontaneous : bool;
}

(* A rule with its provenance, for file:line diagnostics. *)
type lrule = {
  rule : Rule.t;
  rfile : string;
  rline : int option;
  kind : Interface.kind option;  (* Some _ = interface statement *)
}

type ctx = {
  items : (string, item_info) Hashtbl.t;  (* empty in rule-level mode *)
  aux : (string, string * int) Hashtbl.t;  (* CM-auxiliary base -> site, line *)
  locator : Item.locator;
  config_mode : bool;
  ifaces : lrule list;  (* interface statements (synthesized + extra) *)
  strategy : lrule list;
  all : lrule list;  (* ifaces @ strategy: the trigger-graph nodes *)
}

let is_true_expr = function Expr.Const (Value.Bool true) -> true | _ -> false

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* Every (base, arity) an expression references, in occurrence order. *)
let rec expr_refs acc (e : Expr.t) =
  match e with
  | Expr.Item (b, args) | Expr.Exists (b, args) ->
    List.fold_left expr_refs ((b, List.length args) :: acc) args
  | Expr.Unop (_, a) -> expr_refs acc a
  | Expr.Binop (_, a, b) -> expr_refs (expr_refs acc a) b
  | Expr.Const _ | Expr.Var _ | Expr.Wildcard -> acc

let template_refs acc (t : Template.t) = List.fold_left expr_refs acc t.Template.args

let rule_refs (r : Rule.t) =
  let acc = template_refs [] r.Rule.lhs in
  let acc = expr_refs acc r.Rule.lhs_cond in
  let acc =
    List.fold_left
      (fun acc (s : Rule.step) -> template_refs (expr_refs acc s.Rule.guard) s.Rule.template)
      acc (Rule.rhs_steps r)
  in
  List.sort_uniq compare acc

(* Item bases read by the rule's conditions (LHS condition + step guards). *)
let cond_read_bases (r : Rule.t) =
  let acc = expr_refs [] r.Rule.lhs_cond in
  let acc =
    List.fold_left (fun acc (s : Rule.step) -> expr_refs acc s.Rule.guard) acc (Rule.rhs_steps r)
  in
  List.sort_uniq compare (List.map fst acc)

let step_bases names (r : Rule.t) =
  List.filter_map
    (fun (s : Rule.step) ->
      if List.mem s.Rule.template.Template.name names then Template.item_base s.Rule.template
      else None)
    (Rule.rhs_steps r)
  |> List.sort_uniq compare

(* Does any rule in [lrs] emit an event [name] on [base]? *)
let emits lrs name base =
  List.exists
    (fun lr ->
      List.exists
        (fun (s : Rule.step) ->
          String.equal s.Rule.template.Template.name name
          && Template.item_base s.Rule.template = Some base)
        (Rule.rhs_steps lr.rule))
    lrs

(* The rule's canonical text without its label, for duplicate detection. *)
let body_string (r : Rule.t) =
  let s = Rule.to_string r in
  let p = String.length r.Rule.id + 2 in
  if String.length s >= p then String.sub s p (String.length s - p) else s

(* The item family an interface statement serves: the LHS item, or the
   first RHS item for P-triggered forms. *)
let iface_base lr =
  match Template.item_base lr.rule.Rule.lhs with
  | Some b -> Some b
  | None ->
    List.find_map
      (fun (s : Rule.step) -> Template.item_base s.Rule.template)
      (Rule.rhs_steps lr.rule)

let iface_kinds_for ctx base =
  List.filter_map
    (fun lr -> if iface_base lr = Some base then lr.kind else None)
    ctx.ifaces

let rule_ids lrs = List.sort_uniq compare (List.map (fun lr -> lr.rule.Rule.id) lrs)

let where lr = (lr.rfile, lr.rline)

(* Keep the first occurrence of each (label, body) pair: the same rule
   shipped both inline in the configuration and in a rule file is one
   rule, not a duplicate. *)
let dedup_exact lrs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun lr ->
      let k = (lr.rule.Rule.id, body_string lr.rule) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    lrs

(* ------------------------------------------------------------------ *)
(* Interface synthesis: the statements the CM-Translators would report
   for these declarations (mirrors Tr_relational/Tr_kvfile).           *)

let op_value ops op ~default =
  match List.assoc_opt op ops with Some v -> v | None -> default

let synth_interfaces ~file (config : Cmrid.t) =
  let of_rule ~line r = { rule = r; rfile = file; rline = Some line; kind = Interface.classify r } in
  List.concat_map
    (fun (src : Cmrid.source_decl) ->
      let id base k = Printf.sprintf "%s/%s/%s" src.Cmrid.s_site base k in
      match src.Cmrid.s_kind with
      | Cmrid.Relational ->
        let lat op d = op_value src.Cmrid.s_latencies op ~default:d in
        let del op l = op_value src.Cmrid.s_deltas op ~default:(l *. 5.0) in
        let d_read = del Cmrid.Read_op (lat Cmrid.Read_op 0.2)
        and d_write = del Cmrid.Write_op (lat Cmrid.Write_op 0.2)
        and d_notify = del Cmrid.Notify_op (lat Cmrid.Notify_op 1.0)
        and d_delete = del Cmrid.Delete_op (lat Cmrid.Delete_op 0.2) in
        List.concat_map
          (fun (it : Cmrid.item_decl) ->
            let pattern = Interface.family it.Cmrid.i_base it.Cmrid.i_params in
            let line = it.Cmrid.i_line in
            let base = it.Cmrid.i_base in
            let rules = ref [] in
            let add r = rules := of_rule ~line r :: !rules in
            if it.Cmrid.i_write <> None then
              add (Interface.write ~id:(id base "write") ~delta:d_write pattern);
            if it.Cmrid.i_read <> None then
              add (Interface.read ~id:(id base "read") ~delta:d_read pattern);
            if it.Cmrid.i_delete <> None then
              add (Interface.delete ~id:(id base "delete") ~delta:d_delete pattern);
            (match it.Cmrid.i_notify with
            | Some { Cmrid.n_send = true; n_threshold = None; _ } ->
              add (Interface.notify ~id:(id base "notify") ~delta:d_notify pattern)
            | Some { Cmrid.n_send = true; n_threshold = Some threshold; _ } ->
              add
                (Interface.conditional_notify ~id:(id base "notify") ~delta:d_notify
                   ~condition:(Interface.relative_change_condition ~threshold)
                   pattern)
            | _ -> ());
            if it.Cmrid.i_no_spontaneous then
              add (Interface.no_spontaneous_write ~id:(id base "nospont") pattern);
            List.rev !rules)
          src.Cmrid.s_items
      | Cmrid.Kvfile ->
        let latency = op_value src.Cmrid.s_latencies Cmrid.Read_op ~default:0.1 in
        let delta = op_value src.Cmrid.s_deltas Cmrid.Read_op ~default:(latency *. 5.0) in
        List.concat_map
          (fun (it : Cmrid.item_decl) ->
            let pattern = Interface.family it.Cmrid.i_base it.Cmrid.i_params in
            let line = it.Cmrid.i_line in
            let base = it.Cmrid.i_base in
            let reads = [ of_rule ~line (Interface.read ~id:(id base "read") ~delta pattern) ] in
            if it.Cmrid.i_writable then
              reads
              @ [
                  of_rule ~line (Interface.write ~id:(id base "write") ~delta pattern);
                  of_rule ~line (Interface.delete ~id:(id base "delete") ~delta pattern);
                ]
            else reads)
          src.Cmrid.s_items)
    config.Cmrid.sources

(* ------------------------------------------------------------------ *)
(* Pass 1: resolution                                                  *)

let resolution_pass ctx add =
  List.iter
    (fun lr ->
      let file, line = where lr in
      let id = lr.rule.Rule.id in
      let unknown = ref false in
      if ctx.config_mode then
        List.iter
          (fun (base, arity) ->
            match Hashtbl.find_opt ctx.items base with
            | Some ii ->
              if arity <> ii.ii_arity then
                add
                  {
                    code = "R002";
                    severity = Error;
                    file;
                    line;
                    site = Some ii.ii_site;
                    message =
                      Printf.sprintf
                        "rule %s uses %s with %d parameter(s), but it is declared with %d" id
                        base arity ii.ii_arity;
                  }
            | None ->
              if not (Hashtbl.mem ctx.aux base) then begin
                unknown := true;
                add
                  {
                    code = "R001";
                    severity = Error;
                    file;
                    line;
                    site = None;
                    message =
                      Printf.sprintf
                        "rule %s references undeclared item base %s (no item or location declares it)"
                        id base;
                  }
              end)
          (rule_refs lr.rule);
      match Rule.check_well_formed lr.rule ctx.locator with
      | Stdlib.Ok () -> ()
      | Stdlib.Error msg ->
        let msg =
          (* check_well_formed already names the rule *)
          if contains_substring msg id then msg else Printf.sprintf "rule %s: %s" id msg
        in
        if contains_substring msg "unbound" then
          add { code = "R003"; severity = Error; file; line; site = None; message = msg }
        else if not !unknown then
          (* An undeclared base resolves to the "unknown" site, so the
             multi-site complaint would be a cascade of R001. *)
          add { code = "R004"; severity = Error; file; line; site = None; message = msg })
    (ctx.strategy @ ctx.ifaces)

let location_pass ~file (config : Cmrid.t) add =
  let source_sites = List.map (fun s -> s.Cmrid.s_site) config.Cmrid.sources in
  List.iter
    (fun (l : Cmrid.location_decl) ->
      if not (List.mem l.Cmrid.l_site source_sites) then
        add
          {
            code = "R005";
            severity = Warning;
            file;
            line = Some l.Cmrid.l_line;
            site = Some l.Cmrid.l_site;
            message =
              Printf.sprintf
                "location places %s at site %s, which no source declares — a CM-Shell runs there with no data source behind it (possible typo)"
                l.Cmrid.l_base l.Cmrid.l_site;
          })
    config.Cmrid.locations

(* ------------------------------------------------------------------ *)
(* Pass 2: capability checking against the declared interfaces (§3.1.1) *)

let capability_pass ctx add =
  let declared base = Hashtbl.find_opt ctx.items base in
  let has_kind base k = List.mem k (iface_kinds_for ctx base) in
  let writable base =
    if ctx.config_mode then
      match declared base with Some ii -> Some ii.ii_writable | None -> None
    else Some (has_kind base Interface.Write)
  in
  let deletable base =
    if ctx.config_mode then
      match declared base with Some ii -> Some ii.ii_deletable | None -> None
    else Some (has_kind base Interface.Delete)
  in
  let spontaneous_notify base =
    (match declared base with Some ii -> ii.ii_notifies | None -> false)
    || has_kind base Interface.Notify
    || has_kind base Interface.Conditional_notify
  in
  let periodic_notify base = has_kind base Interface.Periodic_notify in
  let no_spontaneous base =
    (match declared base with Some ii -> ii.ii_no_spontaneous | None -> false)
    || has_kind base Interface.No_spontaneous_write
  in
  let site_of base =
    match declared base with
    | Some ii -> Some ii.ii_site
    | None -> (
      match Hashtbl.find_opt ctx.aux base with
      | Some (site, _) -> Some site
      | None -> if ctx.config_mode then None else Some (ctx.locator (Item.make base)))
  in
  List.iter
    (fun lr ->
      let file, line = where lr in
      let r = lr.rule in
      let id = r.Rule.id in
      let mk code severity base message =
        add { code; severity; file; line; site = site_of base; message }
      in
      (* Requests the rule issues. *)
      List.iter
        (fun (s : Rule.step) ->
          match s.Rule.template.Template.name, Template.item_base s.Rule.template with
          | "WR", Some base -> (
            match writable base with
            | Some false ->
              mk "CAP001" Error base
                (Printf.sprintf
                   "rule %s issues the write request WR(%s), but %s has no write interface (§3.1.1) — the translator will reject it"
                   id base base)
            | _ -> ())
          | "DR", Some base -> (
            match deletable base with
            | Some false ->
              mk "CAP003" Error base
                (Printf.sprintf
                   "rule %s issues the delete request DR(%s), but %s has no delete interface (§3.1.1)"
                   id base base)
            | _ -> ())
          | _ -> ())
        (Rule.rhs_steps r);
      (* Events the rule waits for. *)
      match r.Rule.lhs.Template.name, Template.item_base r.Rule.lhs with
      | "N", Some base ->
        let known = ctx.config_mode = false || declared base <> None || Hashtbl.mem ctx.aux base in
        if known then
          if
            not
              (spontaneous_notify base || periodic_notify base || emits ctx.strategy "N" base)
          then
            mk "CAP002" Error base
              (Printf.sprintf
                 "rule %s subscribes to N(%s), but %s offers no notification interface and no rule emits N(%s) — the rule can never fire"
                 id base base base)
          else if
            no_spontaneous base
            && (not (periodic_notify base))
            && not (emits ctx.strategy "N" base)
          then
            mk "CAP004" Warning base
              (Printf.sprintf
                 "rule %s waits for notifications of %s, a no-spontaneous source: only CM-initiated writes occur there and those raise no N events"
                 id base)
      | "Ws", Some base ->
        if no_spontaneous base && not (emits ctx.strategy "Ws" base) then
          mk "CAP004" Warning base
            (Printf.sprintf
               "rule %s triggers on Ws(%s), but %s declares no spontaneous writes — the trigger can never occur"
               id base base)
      | _ -> ())
    ctx.strategy

(* ------------------------------------------------------------------ *)
(* Pass 3: conflict analysis over the static rule dependency graph     *)

(* Tarjan's strongly connected components, shared with the chase-based
   dependency analysis via Cm_util.Graph. *)
let sccs = Cm_util.Graph.sccs

let conflict_pass ctx add =
  let rules = Array.of_list ctx.all in
  let n = Array.length rules in
  (* Edges: rule a's step can produce an event matching rule b's trigger.
     An edge is damped when the producing step is guarded or the consumer
     has a non-trivial LHS condition — the loop-breaking conditions of
     Appendix A. *)
  let compatible pb cb =
    match pb, cb with Some a, Some b -> String.equal a b | _ -> true
  in
  let edges = Array.make n [] in
  for a = 0 to n - 1 do
    List.iter
      (fun (s : Rule.step) ->
        if not (Template.is_false s.Rule.template) then
          for b = 0 to n - 1 do
            let consumer = rules.(b).rule in
            if
              (not (Template.is_false consumer.Rule.lhs))
              && String.equal s.Rule.template.Template.name consumer.Rule.lhs.Template.name
              && compatible
                   (Template.item_base s.Rule.template)
                   (Template.item_base consumer.Rule.lhs)
            then
              let damped =
                (not (is_true_expr s.Rule.guard)) || not (is_true_expr consumer.Rule.lhs_cond)
              in
              if not (List.mem (b, damped) edges.(a)) then
                edges.(a) <- (b, damped) :: edges.(a)
          done)
      (Rule.rhs_steps rules.(a).rule)
  done;
  let succs_of keep v = List.filter_map (fun (w, d) -> if keep d then Some w else None) edges.(v) in
  let cyclic = Cm_util.Graph.cyclic in
  let comp_finding code severity comp message_of =
    let members = List.map (fun v -> rules.(v)) comp in
    let ids = rule_ids members in
    let lines = List.filter_map (fun lr -> lr.rline) members in
    let line = match lines with [] -> None | ls -> Some (List.fold_left min max_int ls) in
    let file =
      match List.find_opt (fun lr -> lr.rline = line || line = None) members with
      | Some lr -> lr.rfile
      | None -> (List.hd members).rfile
    in
    add { code; severity; file; line; site = None; message = message_of ids }
  in
  let undamped_succs = succs_of (fun d -> not d) in
  let undamped_comps = List.filter (cyclic undamped_succs) (sccs n undamped_succs) in
  List.iter
    (fun comp ->
      comp_finding "CON002" Error comp (fun ids ->
          Printf.sprintf
            "rules %s form a firing cycle with no damping condition — guaranteed non-termination once triggered (Appendix A)"
            (String.concat ", " ids)))
    undamped_comps;
  let all_succs = succs_of (fun _ -> true) in
  let covered = List.map (fun comp -> List.sort compare comp) undamped_comps in
  List.iter
    (fun comp ->
      let sorted = List.sort compare comp in
      let subsumes inner = List.for_all (fun v -> List.mem v sorted) inner in
      if cyclic all_succs comp && not (List.exists subsumes covered) then
        comp_finding "CON004" Info comp (fun ids ->
            Printf.sprintf
              "rules %s form a firing cycle broken only by their conditions — verify the damping condition eventually turns false (Appendix A)"
              (String.concat ", " ids)))
    (sccs n all_succs);
  (* Write/write: two strategy rules detecting at different sites write
     the same item; their firings race and the last write wins. *)
  let writers = Hashtbl.create 8 in
  List.iter
    (fun lr ->
      List.iter
        (fun base ->
          let prior = Option.value (Hashtbl.find_opt writers base) ~default:[] in
          if not (List.memq lr prior) then Hashtbl.replace writers base (lr :: prior))
        (step_bases [ "WR"; "W" ] lr.rule))
    ctx.strategy;
  Hashtbl.fold (fun base lrs acc -> (base, List.rev lrs) :: acc) writers []
  |> List.sort compare
  |> List.iter (fun (base, lrs) ->
         let sites =
           List.filter_map (fun lr -> Rule.lhs_site lr.rule ctx.locator) lrs
           |> List.sort_uniq compare
         in
         if List.length sites >= 2 then begin
           let lines = List.filter_map (fun lr -> lr.rline) lrs in
           let line = match lines with [] -> None | ls -> Some (List.fold_left min max_int ls) in
           add
             {
               code = "CON001";
               severity = Warning;
               file = (List.hd lrs).rfile;
               line;
               site = None;
               message =
                 Printf.sprintf
                   "rules %s all write %s but detect their triggers at different sites (%s) — concurrent firings race on the item (write/write conflict)"
                   (String.concat ", " (rule_ids lrs))
                   base
                   (String.concat ", " sites);
             }
         end);
  (* Trigger/write: two rules fired by the same event where one writes an
     item the other's condition reads — the outcome depends on order. *)
  let strategy = Array.of_list ctx.strategy in
  for i = 0 to Array.length strategy - 1 do
    for j = i + 1 to Array.length strategy - 1 do
      let a = strategy.(i) and b = strategy.(j) in
      let la = a.rule.Rule.lhs and lb = b.rule.Rule.lhs in
      if
        (not (Template.is_false la))
        && String.equal la.Template.name lb.Template.name
        && compatible (Template.item_base la) (Template.item_base lb)
      then begin
        let hazard writer reader =
          let overlap =
            List.filter
              (fun base -> List.mem base (cond_read_bases reader.rule))
              (step_bases [ "WR"; "W" ] writer.rule)
          in
          match overlap with
          | [] -> ()
          | base :: _ ->
            let lines = List.filter_map (fun lr -> lr.rline) [ writer; reader ] in
            let line = match lines with [] -> None | ls -> Some (List.fold_left min max_int ls) in
            add
              {
                code = "CON003";
                severity = Warning;
                file = writer.rfile;
                line;
                site = None;
                message =
                  Printf.sprintf
                    "rules %s and %s fire on the same trigger; %s writes %s while %s reads it in a condition — the outcome depends on firing order (trigger/write conflict)"
                    writer.rule.Rule.id reader.rule.Rule.id writer.rule.Rule.id base
                    reader.rule.Rule.id;
              }
        in
        hazard a b;
        hazard b a
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Pass 4: guarantee feasibility (drives the Derive prover, §3.3.1)    *)

let guarantee_pass ctx ~file (config : Cmrid.t) add =
  List.iter
    (fun (c : Cmrid.constraint_decl) ->
      let line = Some c.Cmrid.c_line in
      let missing base =
        add
          {
            code = "R001";
            severity = Error;
            file;
            line;
            site = None;
            message =
              Printf.sprintf "constraint copy references undeclared item base %s" base;
          }
      in
      match
        ( Hashtbl.find_opt ctx.items c.Cmrid.c_source,
          Hashtbl.find_opt ctx.items c.Cmrid.c_target )
      with
      | None, _ -> missing c.Cmrid.c_source
      | _, None -> missing c.Cmrid.c_target
      | Some si, Some ti ->
        let pattern base (ii : item_info) = Interface.family base ii.ii_params in
        let report =
          Derive.copy_guarantees
            ~interfaces:(List.map (fun lr -> lr.rule) ctx.ifaces)
            ~strategy:(List.map (fun lr -> lr.rule) ctx.strategy)
            ~source:(pattern c.Cmrid.c_source si)
            ~target:(pattern c.Cmrid.c_target ti)
        in
        (* The "all four unprovable" condition and its reason now come
           from the unified guarantee view, so `cmtool check` and the
           read router agree on what "no guarantee" means. *)
        (match Guarantee_view.blocking_reason report with
        | None -> ()
        | Some reason ->
          add
            {
              code = "GRT001";
              severity = Warning;
              file;
              line;
              site = Some ti.ii_site;
              message =
                Printf.sprintf
                  "constraint %s = copy(%s): none of the four §3.3.1 guarantees is provable from these specifications — %s"
                  c.Cmrid.c_target c.Cmrid.c_source reason;
            }))
    config.Cmrid.constraints

(* ------------------------------------------------------------------ *)
(* Pass 5: hygiene                                                     *)

let duplicate_pass ctx add =
  let user = ctx.all in
  let groups key lrs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun lr ->
        let k = key lr in
        let prior = Option.value (Hashtbl.find_opt tbl k) ~default:[] in
        Hashtbl.replace tbl k (lr :: prior))
      lrs;
    Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl [] |> List.sort compare
  in
  (* Same label, different bodies: later definitions shadow nothing — both
     fire, but references to the label are ambiguous. *)
  List.iter
    (fun (id, lrs) ->
      if List.length lrs > 1 then
        let locations =
          List.map
            (fun lr ->
              match lr.rline with
              | Some l -> Printf.sprintf "%s:%d" lr.rfile l
              | None -> lr.rfile)
            lrs
        in
        add
          {
            code = "HYG002";
            severity = Warning;
            file = (List.hd lrs).rfile;
            line = (List.hd lrs).rline;
            site = None;
            message =
              Printf.sprintf "label %s names %d different rules (%s)" id (List.length lrs)
                (String.concat ", " locations);
          })
    (groups (fun lr -> lr.rule.Rule.id) user);
  (* Same body under different labels: both fire on every trigger. *)
  List.iter
    (fun (_, lrs) ->
      if List.length lrs > 1 then
        add
          {
            code = "HYG002";
            severity = Warning;
            file = (List.hd lrs).rfile;
            line = (List.hd lrs).rline;
            site = None;
            message =
              Printf.sprintf
                "rules %s are identical apart from their labels — each trigger fires all of them"
                (String.concat ", " (rule_ids lrs));
          })
    (groups (fun lr -> body_string lr.rule) user)

let reachability_pass ctx add =
  List.iter
    (fun lr ->
      let file, line = where lr in
      let r = lr.rule in
      let id = r.Rule.id in
      let name = r.Rule.lhs.Template.name in
      let dead base message =
        let site =
          match Hashtbl.find_opt ctx.items base with
          | Some ii -> Some ii.ii_site
          | None -> Option.map fst (Hashtbl.find_opt ctx.aux base)
        in
        add { code = "HYG001"; severity = Warning; file; line; site; message }
      in
      match Template.item_base r.Rule.lhs with
      | None -> ()  (* P(p) and item-free CM-internal events: reachable *)
      | Some base ->
        let known = Hashtbl.mem ctx.items base || Hashtbl.mem ctx.aux base in
        if known then (
          let info = Hashtbl.find_opt ctx.items base in
          let emitted n = emits ctx.strategy n base in
          match name with
          | "WR" | "RR" | "DR" ->
            if not (emitted name) then
              dead base
                (Printf.sprintf
                   "rule %s triggers on %s(%s), but %s events are only issued by rules and none emits one for %s — the rule can never fire"
                   id name base name base)
          | "W" ->
            if not (emitted "W" || emitted "WR") then
              dead base
                (Printf.sprintf
                   "rule %s triggers on W(%s), but nothing writes %s under CM control (no rule emits W or WR for it) — spontaneous writes raise Ws, not W"
                   id base base)
          | "R" ->
            if not (emitted "R") then (
              match info with
              | Some ii when ii.ii_readable ->
                if not (emitted "RR") then
                  dead base
                    (Printf.sprintf
                       "rule %s triggers on R(%s), but read responses only follow read requests and no rule emits RR(%s)"
                       id base base)
              | Some _ ->
                dead base
                  (Printf.sprintf
                     "rule %s triggers on R(%s), but %s has no read interface and no rule emits R for it"
                     id base base)
              | None ->
                dead base
                  (Printf.sprintf
                     "rule %s triggers on R(%s), but %s is CM-auxiliary: no translator answers reads for it and no rule emits R"
                     id base base))
          | "Ws" ->
            if info = None && not (emitted "Ws") then
              dead base
                (Printf.sprintf
                   "rule %s triggers on Ws(%s), but %s is CM-auxiliary and CM writes are never spontaneous"
                   id base base)
          | _ -> ()))
    ctx.strategy

let unused_pass ctx ~file (config : Cmrid.t) add =
  if Hashtbl.length ctx.items > 0 then begin
    let used = Hashtbl.create 32 in
    List.iter
      (fun lr -> List.iter (fun (base, _) -> Hashtbl.replace used base ()) (rule_refs lr.rule))
      ctx.all;
    List.iter
      (fun (c : Cmrid.constraint_decl) ->
        Hashtbl.replace used c.Cmrid.c_source ();
        Hashtbl.replace used c.Cmrid.c_target ())
      config.Cmrid.constraints;
    (* Dependency atoms reference items the same way rules do. *)
    List.iter
      (fun (d : Cmrid.dependency_decl) ->
        match Chase.parse d.Cmrid.d_text with
        | Ok dep ->
          List.iter
            (fun (a : Chase.atom) -> Hashtbl.replace used a.Chase.a_base ())
            (Chase.body_atoms dep @ Chase.head_atoms dep)
        | Error _ -> ())
      config.Cmrid.dependencies;
    Hashtbl.fold (fun base ii acc -> (base, ii) :: acc) ctx.items []
    |> List.sort compare
    |> List.iter (fun (base, ii) ->
           if not (Hashtbl.mem used base) then
             add
               {
                 code = "HYG003";
                 severity = Info;
                 file;
                 line = Some ii.ii_line;
                 site = Some ii.ii_site;
                 message =
                   Printf.sprintf
                     "item %s is declared but no rule or constraint mentions it" base;
               })
  end

(* ------------------------------------------------------------------ *)
(* Pass 7: chase-based dependency analysis (DEP001–DEP005, §4.1)       *)

(* The [dependency] declarations are TGD/EGD constraints over the item
   bases.  The chase repairs them at runtime; these checks decide,
   before anything runs, that the chase terminates (weak acyclicity via
   the shared Tarjan machinery), that its repairs are executable against
   the declared §3.1.1 interfaces, and that each dependency can fire at
   all. *)
let dependency_pass ctx ~file (config : Cmrid.t) add =
  let mk code severity line site message = add { code; severity; file; line; site; message } in
  let parsed =
    List.mapi
      (fun i (d : Cmrid.dependency_decl) ->
        (d, Chase.parse ~label:(Printf.sprintf "d%d" (i + 1)) d.Cmrid.d_text))
      config.Cmrid.dependencies
  in
  let deps =
    List.filter_map
      (fun (d, r) -> match r with Ok dep -> Some (d, dep) | Error _ -> None)
      parsed
  in
  let declared base = Hashtbl.find_opt ctx.items base in
  let is_aux base = Hashtbl.mem ctx.aux base in
  List.iter
    (fun ((d : Cmrid.dependency_decl), r) ->
      match r with
      | Ok _ -> ()
      | Error m ->
        mk "DEP005" Error (Some d.Cmrid.d_line) None ("dependency does not parse: " ^ m))
    parsed;
  List.iter
    (fun ((d : Cmrid.dependency_decl), (dep : Chase.dep)) ->
      (* Arity under the value-last convention: an item with k declared
         parameters takes k + 1 atom arguments. *)
      List.iter
        (fun (a : Chase.atom) ->
          match declared a.Chase.a_base with
          | Some ii when List.length a.Chase.a_args <> ii.ii_arity + 1 ->
            mk "DEP005" Error (Some d.Cmrid.d_line) (Some ii.ii_site)
              (Printf.sprintf
                 "dependency %s: atom %s takes %d argument(s), but item %s declares %d parameter(s) — atoms take the parameters plus the value"
                 dep.Chase.d_label (Chase.atom_to_string a) (List.length a.Chase.a_args)
                 a.Chase.a_base ii.ii_arity)
          | _ -> ())
        (Chase.body_atoms dep @ Chase.head_atoms dep);
      let bases = Chase.body_bases dep in
      if not (List.exists (fun b -> declared b <> None || is_aux b) bases) then
        mk "DEP004" Warning (Some d.Cmrid.d_line) None
          (Printf.sprintf
             "dependency %s is unreachable: none of its body bases (%s) is declared by any source or location, so it can never have an active trigger"
             dep.Chase.d_label (String.concat ", " bases));
      List.iter
        (fun base ->
          match declared base with
          | Some ii when not ii.ii_writable ->
            mk "DEP003" Error (Some d.Cmrid.d_line) (Some ii.ii_site)
              (Printf.sprintf
                 "dependency %s: its repair writes %s, but %s offers no write interface (§3.1.1) — the chase-derived repair cannot execute"
                 dep.Chase.d_label base base)
          | Some _ -> ()
          | None ->
            if not (is_aux base) then
              mk "DEP003" Error (Some d.Cmrid.d_line) None
                (Printf.sprintf
                   "dependency %s: its repair writes %s, which no source or location declares"
                   dep.Chase.d_label base))
        (Chase.written_bases dep))
    deps;
  let program = List.map snd deps in
  let line_of_label label =
    List.fold_left
      (fun acc ((d : Cmrid.dependency_decl), (dep : Chase.dep)) ->
        if dep.Chase.d_label = label then
          match acc with
          | Some l -> Some (min l d.Cmrid.d_line)
          | None -> Some d.Cmrid.d_line
        else acc)
      None deps
  in
  let min_line labels =
    List.fold_left
      (fun acc l ->
        match line_of_label l, acc with
        | Some x, Some y -> Some (min x y)
        | Some x, None -> Some x
        | None, acc -> acc)
      None labels
  in
  List.iter
    (fun (c : Chase.cycle) ->
      mk "DEP001" Error (min_line c.Chase.c_labels) None
        (Printf.sprintf
           "dependencies %s are not weakly acyclic: positions %s form a cycle through an existential (⁎) edge — chase termination cannot be guaranteed, repairs may cascade forever"
           (String.concat ", " c.Chase.c_labels)
           (String.concat ", " (List.map Chase.position_to_string c.Chase.c_positions))))
    (Chase.special_cycles program);
  List.iter
    (fun group ->
      let labels = List.map (fun (dep : Chase.dep) -> dep.Chase.d_label) group in
      mk "DEP002" Warning (min_line labels) None
        (Printf.sprintf
           "dependencies %s form an EGD/TGD interaction cycle: the EGD can merge labelled nulls the TGD creates and re-enable it — restricted-chase termination becomes firing-order-dependent"
           (String.concat ", " labels)))
    (Chase.interaction_cycles program)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let finish findings =
  List.sort_uniq
    (fun a b ->
      let c = compare_finding a b in
      if c <> 0 then c else compare a b)
    findings

let check_config ?(rule_files = []) ~file text =
  let config, perrors = Cmrid.parse_partial text in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (e : Cmrid.error) ->
      add
        {
          code = "CFG001";
          severity = Error;
          file;
          line = (if e.Cmrid.e_line = 0 then None else Some e.Cmrid.e_line);
          site = None;
          message = e.Cmrid.e_msg;
        })
    perrors;
  let items = Hashtbl.create 16 in
  let aux = Hashtbl.create 16 in
  List.iter
    (fun (src : Cmrid.source_decl) ->
      List.iter
        (fun (it : Cmrid.item_decl) ->
          let relational = src.Cmrid.s_kind = Cmrid.Relational in
          Hashtbl.replace items it.Cmrid.i_base
            {
              ii_site = src.Cmrid.s_site;
              ii_arity = List.length it.Cmrid.i_params;
              ii_line = it.Cmrid.i_line;
              ii_params = it.Cmrid.i_params;
              ii_readable = (if relational then it.Cmrid.i_read <> None else true);
              ii_writable =
                (if relational then it.Cmrid.i_write <> None else it.Cmrid.i_writable);
              ii_deletable =
                (if relational then it.Cmrid.i_delete <> None else it.Cmrid.i_writable);
              ii_notifies =
                (match it.Cmrid.i_notify with Some n -> n.Cmrid.n_send | None -> false);
              ii_no_spontaneous = it.Cmrid.i_no_spontaneous;
            })
        src.Cmrid.s_items)
    config.Cmrid.sources;
  List.iter
    (fun (l : Cmrid.location_decl) ->
      if not (Hashtbl.mem items l.Cmrid.l_base) then
        Hashtbl.replace aux l.Cmrid.l_base (l.Cmrid.l_site, l.Cmrid.l_line))
    config.Cmrid.locations;
  location_pass ~file config add;
  let config_rules =
    List.filter_map
      (fun (d : Cmrid.rule_decl) ->
        match Parser.parse_rule d.Cmrid.r_text with
        | r ->
          Some { rule = r; rfile = file; rline = Some d.Cmrid.r_line; kind = Interface.classify r }
        | exception Parser.Parse_error { message; _ } ->
          add
            {
              code = "CFG002";
              severity = Error;
              file;
              line = Some d.Cmrid.r_line;
              site = None;
              message = "rule does not parse: " ^ message;
            };
          None)
      config.Cmrid.rules
  in
  let file_rules =
    List.concat_map
      (fun (fname, contents) ->
        let rules, err = Parser.parse_program contents in
        (match err with
        | Some (l, m) ->
          add
            {
              code = "CFG002";
              severity = Error;
              file = fname;
              line = Some l;
              site = None;
              message = "rule does not parse: " ^ m;
            }
        | None -> ());
        List.map
          (fun (r, l) -> { rule = r; rfile = fname; rline = Some l; kind = Interface.classify r })
          rules)
      rule_files
  in
  let user_rules = dedup_exact (config_rules @ file_rules) in
  let synth = synth_interfaces ~file config in
  (* Interface statements in rule files extend the synthesized set; a
     statement restating a declared capability is the same interface. *)
  let synth_keys = List.map (fun lr -> (lr.kind, iface_base lr)) synth in
  let extra =
    List.filter
      (fun lr -> lr.kind <> None && not (List.mem (lr.kind, iface_base lr) synth_keys))
      user_rules
  in
  let strategy = List.filter (fun lr -> lr.kind = None) user_rules in
  let ifaces =
    (* Synthesized rules carry [rline] of their item declaration but are
       distinguishable from user rules: they never appear in [user_rules]. *)
    synth @ extra
  in
  let ctx =
    {
      items;
      aux;
      locator = Cmrid.locator config;
      config_mode = true;
      ifaces;
      strategy;
      all = ifaces @ strategy;
    }
  in
  (* The user's interface statements still need resolution checks even
     when they duplicate a synthesized capability. *)
  let user_ifaces = List.filter (fun lr -> lr.kind <> None) user_rules in
  let resolution_ctx = { ctx with ifaces = user_ifaces } in
  resolution_pass resolution_ctx add;
  capability_pass ctx add;
  conflict_pass ctx add;
  guarantee_pass ctx ~file config add;
  duplicate_pass { ctx with all = user_rules } add;
  reachability_pass ctx add;
  unused_pass { ctx with all = user_rules } ~file config add;
  dependency_pass ctx ~file config add;
  finish !findings

let check_rules ?(file = "<rules>") ~interfaces ~strategy ~locator () =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let ifaces =
    List.map (fun r -> { rule = r; rfile = file; rline = None; kind = Interface.classify r }) interfaces
  in
  let strategy =
    dedup_exact
      (List.map (fun r -> { rule = r; rfile = file; rline = None; kind = None }) strategy)
  in
  let ctx =
    {
      items = Hashtbl.create 1;
      aux = Hashtbl.create 1;
      locator;
      config_mode = false;
      ifaces;
      strategy;
      all = ifaces @ strategy;
    }
  in
  resolution_pass { ctx with ifaces = [] } add;
  capability_pass ctx add;
  conflict_pass ctx add;
  duplicate_pass { ctx with all = strategy } add;
  finish !findings
