(** Static analysis of CM-RID configurations and rule programs.

    The paper's toolkit "checks the specifications for consistency"
    before generating a Constraint Manager (§4.1); this module is that
    checker, grown into a diagnostics engine.  It never executes a
    system: it parses a configuration (and optional rule files), builds
    the same interface statements the CM-Translators would report, and
    runs six static pass families over the result:

    - {b resolution} (R…): every item a rule mentions is declared, with
      the declared arity; rule parameters are bound; right-hand sides
      stay on one site; [location] lines name sites that exist;
    - {b capability} (CAP…): rules only request operations the declared
      interfaces offer (§3.1.1) — no [WR] without a write interface, no
      [N]-subscription without a notify channel, no [DR] without delete,
      no reliance on spontaneous events from a [no_spontaneous] source;
    - {b conflicts} (CON…): write/write races between rules detecting at
      different sites, trigger/write hazards between rules fired by the
      same event, and rule-firing cycles — undamped cycles are the
      non-termination hazard of Appendix A;
    - {b guarantee feasibility} (GRT…): every [constraint copy] line is
      run through the {!Cm_core.Derive} prover; a constraint for which
      {e no} §3.3.1 guarantee is provable is flagged — the configuration
      promises nothing;
    - {b hygiene} (HYG…): unreachable rules, duplicate labels, items
      declared but never used;
    - {b dependencies} (DEP…): the [dependency] TGD/EGD constraints are
      run through {!Cm_chase.Chase} — DEP001 (error) a ⁎-cycle in the
      position graph defeats weak acyclicity, so chase termination is
      unproven; DEP002 (warning) an EGD/TGD interaction cycle makes
      restricted-chase termination firing-order-dependent; DEP003
      (error) a repair writes a base whose declared §3.1.1 interface
      lacks write capability; DEP004 (warning) no body base of a
      dependency is declared, so it can never have an active trigger;
      DEP005 (error) malformed surface text or an atom whose arity
      breaks the value-last convention (declared parameters + 1).

    Findings are plain data; {!to_text} and {!to_json} render them, and
    {!exit_code} maps them to a CI-friendly process status. *)

type severity = Error | Warning | Info

type finding = {
  code : string;  (** stable machine code, e.g. ["CAP001"] *)
  severity : severity;
  file : string;  (** the file the finding points into *)
  line : int option;  (** 1-based; [None] for file-level findings *)
  site : string option;  (** the site involved, when one is *)
  message : string;
}

val severity_to_string : severity -> string

val compare_finding : finding -> finding -> int
(** Total order: file, line, code, site, message — the output order. *)

val check_config :
  ?rule_files:(string * string) list -> file:string -> string -> finding list
(** [check_config ~rule_files ~file text] analyzes the CM-RID source
    [text] (named [file] in findings) together with additional rule
    programs given as [(filename, contents)] pairs.  Interface
    statements in rule files (recognized by {!Cm_core.Interface.classify})
    extend the interfaces synthesized from the item declarations;
    everything else is strategy.  Exact duplicate rules (same label,
    same body) across the configuration and rule files are merged.
    Returns findings sorted by {!compare_finding}. *)

val check_rules :
  ?file:string ->
  interfaces:Cm_rule.Rule.t list ->
  strategy:Cm_rule.Rule.t list ->
  locator:Cm_rule.Item.locator ->
  unit ->
  finding list
(** Rule-level subset of {!check_config} for already-built systems
    (the preflight gate of [cmtool chaos]): well-formedness, capability
    checks against [interfaces], and conflict/cycle analysis.  No
    declaration-dependent passes run. *)

val summary : finding list -> int * int * int
(** (errors, warnings, infos). *)

val exit_code : ?deny_warnings:bool -> finding list -> int
(** 0 when clean; 1 if any [Error] (or any [Warning] when
    [deny_warnings]).  [Info] findings never fail a run. *)

val finding_to_string : finding -> string
(** [FILE:LINE: severity[CODE] (site S): message]. *)

val to_text : finding list -> string
(** One {!finding_to_string} line per finding plus a trailing summary
    line; ["no findings"] when the list is empty. *)

val to_json : checked:string -> finding list -> string
(** Byte-deterministic JSON document:
    [{"checked":…,"findings":[…],"errors":N,"warnings":N,"infos":N}].
    Findings must already be sorted (both entry points sort). *)
