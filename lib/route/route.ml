module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Item = Cm_rule.Item
module System = Cm_core.System
module Cmrid = Cm_core.Cmrid
module Obs = Cm_core.Obs
module Monitor = Cm_core.Monitor
module Guarantee_view = System.Guarantee_view

type outcome = Replica | Master | Forced_poll

let outcome_to_string = function
  | Replica -> "replica"
  | Master -> "master"
  | Forced_poll -> "forced_poll"

type skip = { sk_target : string; sk_site : string; sk_reason : string }

type decision = {
  d_base : string;
  d_client_site : string;
  d_slo : float option;
  d_outcome : outcome;
  d_served_base : string;
  d_served_site : string;
  d_served_kappa : float;
  d_latency : float;
  d_skips : skip list;
}

type replica = { rep_target : string; rep_site : string }

type t = {
  system : System.t;
  monitor : Monitor.t option;  (* staleness verdicts; None = no quarantine *)
  poll_penalty : float;
  probe_after : float;
  trace_spans : bool;
  by_source : (string, replica list) Hashtbl.t;  (* declaration order *)
  master_site : (string, string) Hashtbl.t;  (* source base -> site *)
  mutable rev_bases : string list;  (* distinct sources, newest first *)
  quarantined : (string * string, float) Hashtbl.t;
      (* (source, target) -> earliest probe time; absent = active *)
  hooks : (decision -> unit) Queue.t;
  mutable n_reads : int;
  mutable n_replica : int;
  mutable n_master : int;
  mutable n_poll : int;
  mutable n_quarantines : int;
  mutable n_probes : int;
  mutable n_readmissions : int;
}

(* Entering (or re-entering, on a flap while awaiting probe) quarantine:
   the copy stops serving and the next probe moves [probe_after] out. *)
let quarantine_copy t ~source ~target ~at =
  let fresh = not (Hashtbl.mem t.quarantined (source, target)) in
  Hashtbl.replace t.quarantined (source, target) (at +. t.probe_after);
  if fresh then begin
    t.n_quarantines <- t.n_quarantines + 1;
    let obs = System.obs t.system in
    if Obs.enabled obs then begin
      Obs.incr obs "route_quarantines" ~labels:[ ("target", target) ];
      Obs.gauge obs "route_quarantined" ~labels:[ ("target", target) ] 1.0
    end
  end

let readmit_copy t ~source ~target =
  Hashtbl.remove t.quarantined (source, target);
  t.n_readmissions <- t.n_readmissions + 1;
  let obs = System.obs t.system in
  if Obs.enabled obs then begin
    Obs.incr obs "route_readmissions" ~labels:[ ("target", target) ];
    Obs.gauge obs "route_quarantined" ~labels:[ ("target", target) ] 0.0
  end

let create ?interfaces ?strategy ?(poll_penalty = 1.0) ?(probe_after = 5.0)
    ?(trace_spans = false) system ~constraints =
  System.declare_copies ?interfaces ?strategy system constraints;
  let locator = System.locator system in
  let t =
    {
      system;
      monitor = System.monitor system;
      poll_penalty;
      probe_after;
      trace_spans;
      by_source = Hashtbl.create 8;
      master_site = Hashtbl.create 8;
      rev_bases = [];
      quarantined = Hashtbl.create 8;
      hooks = Queue.create ();
      n_reads = 0;
      n_replica = 0;
      n_master = 0;
      n_poll = 0;
      n_quarantines = 0;
      n_probes = 0;
      n_readmissions = 0;
    }
  in
  List.iter
    (fun (source, target) ->
      let rep = { rep_target = target; rep_site = locator (Item.make target) } in
      (match Hashtbl.find_opt t.by_source source with
      | Some reps ->
        if not (List.exists (fun r -> String.equal r.rep_target target) reps)
        then Hashtbl.replace t.by_source source (reps @ [ rep ])
      | None ->
        Hashtbl.replace t.by_source source [ rep ];
        Hashtbl.replace t.master_site source (locator (Item.make source));
        t.rev_bases <- source :: t.rev_bases))
    constraints;
  (* A live staleness transition quarantines the copy instantly; the
     healthy transition does NOT readmit — only a successful probe does
     (half-open), so one synchronous look at the copy always separates
     "monitor stopped complaining" from "serving reads again". *)
  Option.iter
    (fun m ->
      Monitor.on_staleness m (fun ~source ~target ~at ~stale ->
          if stale && Hashtbl.mem t.by_source source then
            quarantine_copy t ~source ~target ~at))
    t.monitor;
  t

let of_cmrid ?interfaces ?strategy ?poll_penalty ?probe_after ?trace_spans
    system (cmrid : Cmrid.t) =
  create ?interfaces ?strategy ?poll_penalty ?probe_after ?trace_spans system
    ~constraints:
      (List.map
         (fun (c : Cmrid.constraint_decl) -> (c.Cmrid.c_source, c.Cmrid.c_target))
         cmrid.Cmrid.constraints)

let system t = t.system
let bases t = List.rev t.rev_bases

let replicas t ~base =
  match Hashtbl.find_opt t.by_source base with
  | Some reps -> List.map (fun r -> (r.rep_target, r.rep_site)) reps
  | None -> []

let on_decision t hook = Queue.add hook t.hooks
let reads t = t.n_reads

let quarantined t =
  Hashtbl.fold
    (fun (source, target) probe_at acc -> (source, target, probe_at) :: acc)
    t.quarantined []
  |> List.sort compare

let quarantines t = t.n_quarantines
let probes t = t.n_probes
let readmissions t = t.n_readmissions

let reads_by t = function
  | Replica -> t.n_replica
  | Master -> t.n_master
  | Forced_poll -> t.n_poll

(* Round-trip cost of reading across one directed link: request out,
   value back.  Base latency only — routing must not consume the
   simulation PRNG (jitter draws would make runs depend on read volume). *)
let round_trip net ~from_site ~to_site =
  2.0 *. Net.link_base_latency net ~from_site ~to_site

let read ?within_kappa t ~client_site base =
  let net = System.net t.system in
  let now = Sim.now (System.sim t.system) in
  let master =
    match Hashtbl.find_opt t.master_site base with
    | Some site -> site
    | None -> System.locator t.system (Item.make base)
  in
  let reps =
    Option.value (Hashtbl.find_opt t.by_source base) ~default:[]
  in
  (* One pass over the catalog: collect skip reasons, keep the cheapest
     qualifying copy (ties broken by site then base name, so the choice
     is independent of catalog insertion order). *)
  let skips = ref [] in
  let best = ref None in
  List.iter
    (fun r ->
      let skip reason =
        skips :=
          { sk_target = r.rep_target; sk_site = r.rep_site; sk_reason = reason }
          :: !skips
      in
      (* Whether this copy may serve, and at what surcharge: a copy in
         quarantine with its probe due pays one forced refresh (the
         half-open "single trial request"), billed as a poll. *)
      let admission =
        match t.monitor with
        | None -> Some 0.0
        | Some m -> (
          match Hashtbl.find_opt t.quarantined (base, r.rep_target) with
          | Some probe_at when now < probe_at ->
            skip "quarantined";
            None
          | Some _ ->
            t.n_probes <- t.n_probes + 1;
            let obs = System.obs t.system in
            if Obs.enabled obs then
              Obs.incr obs "route_probes" ~labels:[ ("target", r.rep_target) ];
            if Monitor.force_refresh m ~source:base ~target:r.rep_target then begin
              (* Still stale: back off another probe_after. *)
              Hashtbl.replace t.quarantined (base, r.rep_target)
                (now +. t.probe_after);
              skip "stale";
              None
            end
            else begin
              readmit_copy t ~source:base ~target:r.rep_target;
              Some t.poll_penalty
            end
          | None ->
            (* Active, but never serve against a live stale verdict even
               if no transition has fired yet (belt and braces). *)
            if Monitor.copy_stale m ~source:base ~target:r.rep_target then begin
              quarantine_copy t ~source:base ~target:r.rep_target ~at:now;
              skip "stale";
              None
            end
            else Some 0.0)
      in
      match admission with
      | None -> ()
      | Some surcharge -> (
        match
          System.copy_qualifies ?slo:within_kappa t.system ~source:base
            ~target:r.rep_target
        with
        | Error reason -> skip reason
        | Ok kappa ->
          if not (Net.reachable net ~from_site:client_site ~to_site:r.rep_site)
          then skip "unreachable"
          else begin
            let cost =
              surcharge
              +. round_trip net ~from_site:client_site ~to_site:r.rep_site
            in
            let better =
              match !best with
              | None -> true
              | Some (bc, br, _) ->
                cost < bc
                || (cost = bc
                   &&
                   let c = String.compare r.rep_site br.rep_site in
                   c < 0 || (c = 0 && String.compare r.rep_target br.rep_target < 0))
            in
            if better then best := Some (cost, r, kappa)
          end))
    reps;
  let outcome, served_base, served_site, served_kappa, latency =
    match !best with
    | Some (cost, r, kappa) -> (Replica, r.rep_target, r.rep_site, kappa, cost)
    | None ->
      if Net.reachable net ~from_site:client_site ~to_site:master then
        ( Master,
          base,
          master,
          0.0,
          round_trip net ~from_site:client_site ~to_site:master )
      else begin
        (* Master partitioned away: force a synchronous poll through the
           §3.1.1 read interface, relayed via the cheapest replica site
           that can still reach the master.  With no such relay the
           client polls directly and blocks across the partition — the
           penalty stands in for that wait. *)
        let relay = ref None in
        List.iter
          (fun r ->
            if
              Net.reachable net ~from_site:client_site ~to_site:r.rep_site
              && Net.reachable net ~from_site:r.rep_site ~to_site:master
            then begin
              let cost =
                round_trip net ~from_site:client_site ~to_site:r.rep_site
                +. round_trip net ~from_site:r.rep_site ~to_site:master
              in
              let better =
                match !relay with
                | None -> true
                | Some (bc, bs) ->
                  cost < bc
                  || (cost = bc && String.compare r.rep_site bs < 0)
              in
              if better then relay := Some (cost, r.rep_site)
            end)
          reps;
        let cost =
          match !relay with
          | Some (c, _) -> t.poll_penalty +. c
          | None ->
            t.poll_penalty
            +. round_trip net ~from_site:client_site ~to_site:master
        in
        (Forced_poll, base, master, 0.0, cost)
      end
  in
  let decision =
    {
      d_base = base;
      d_client_site = client_site;
      d_slo = within_kappa;
      d_outcome = outcome;
      d_served_base = served_base;
      d_served_site = served_site;
      d_served_kappa = served_kappa;
      d_latency = latency;
      d_skips = List.rev !skips;
    }
  in
  t.n_reads <- t.n_reads + 1;
  (match outcome with
  | Replica -> t.n_replica <- t.n_replica + 1
  | Master -> t.n_master <- t.n_master + 1
  | Forced_poll -> t.n_poll <- t.n_poll + 1);
  let obs = System.obs t.system in
  if Obs.enabled obs then begin
    let olabel = outcome_to_string outcome in
    Obs.incr obs "route_reads" ~labels:[ ("outcome", olabel) ];
    Obs.observe obs "route_latency" ~labels:[ ("outcome", olabel) ] latency;
    List.iter
      (fun s ->
        Obs.incr obs "route_replica_skips" ~labels:[ ("reason", s.sk_reason) ])
      decision.d_skips;
    if t.trace_spans then begin
      let now = Sim.now (System.sim t.system) in
      let id =
        Obs.span obs ~name:"routed_read" ~at:now
          ~labels:
            [ ("base", base); ("client", client_site); ("outcome", olabel) ]
      in
      Obs.end_span obs ~id ~at:(now +. latency)
    end
  end;
  Queue.iter (fun hook -> hook decision) t.hooks;
  decision

(* -- deterministic reports (cmtool route) -- *)

let plan ?within_kappa t ~client_sites =
  List.concat_map
    (fun site ->
      List.map (fun base -> read ?within_kappa t ~client_site:site base) (bases t))
    client_sites

let fg = Printf.sprintf "%g"

let survival_summary (entry : Guarantee_view.entry) =
  match entry.Guarantee_view.gv_epoch_survival with
  | [] -> "-"
  | s :: _ ->
    let metric =
      List.find_opt
        (fun sv ->
          String.equal sv.Guarantee_view.es_guarantee Guarantee_view.metric_name)
        entry.Guarantee_view.gv_epoch_survival
    in
    let status =
      match metric with
      | Some sv -> sv.Guarantee_view.es_status
      | None -> "-"
    in
    Printf.sprintf "epoch %d %s" s.Guarantee_view.es_epoch status

let report_to_text ?slo t decisions =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "replica catalog:\n";
  List.iter
    (fun (e : Guarantee_view.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s copies %s: master %s, copy %s, kappa %s, %s, survival %s\n"
           e.Guarantee_view.gv_target e.Guarantee_view.gv_source
           e.Guarantee_view.gv_master_site e.Guarantee_view.gv_site
           (match e.Guarantee_view.gv_kappa with
           | Some k -> fg k
           | None -> "unprovable")
           (if e.Guarantee_view.gv_valid then "valid" else "invalidated")
           (survival_summary e)))
    (System.guarantee_view t.system);
  Buffer.add_string buf
    (match slo with
    | Some s -> Printf.sprintf "routes (slo %s):\n" (fg s)
    | None -> "routes (no slo):\n");
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s reads %s -> %s %s@%s (kappa %s, latency %s)\n"
           d.d_client_site d.d_base
           (outcome_to_string d.d_outcome)
           d.d_served_base d.d_served_site (fg d.d_served_kappa)
           (fg d.d_latency));
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "    skipped %s@%s: %s\n" s.sk_target s.sk_site
               s.sk_reason))
        d.d_skips)
    decisions;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json ?slo t decisions =
  let catalog =
    List.map
      (fun (e : Guarantee_view.entry) ->
        Printf.sprintf
          "    { \"source\": \"%s\", \"target\": \"%s\", \"master_site\": \"%s\", \"site\": \"%s\", \"kappa\": %s, \"valid\": %b, \"survival\": \"%s\" }"
          (json_escape e.Guarantee_view.gv_source)
          (json_escape e.Guarantee_view.gv_target)
          (json_escape e.Guarantee_view.gv_master_site)
          (json_escape e.Guarantee_view.gv_site)
          (match e.Guarantee_view.gv_kappa with
          | Some k -> fg k
          | None -> "null")
          e.Guarantee_view.gv_valid
          (json_escape (survival_summary e)))
      (System.guarantee_view t.system)
  in
  let skips d =
    List.map
      (fun s ->
        Printf.sprintf
          "        { \"target\": \"%s\", \"site\": \"%s\", \"reason\": \"%s\" }"
          (json_escape s.sk_target) (json_escape s.sk_site)
          (json_escape s.sk_reason))
      d.d_skips
  in
  let routes =
    List.map
      (fun d ->
        Printf.sprintf
          "    { \"client\": \"%s\", \"base\": \"%s\", \"outcome\": \"%s\", \"served_base\": \"%s\", \"served_site\": \"%s\", \"kappa\": %s, \"latency\": %s,\n      \"skips\": [%s] }"
          (json_escape d.d_client_site) (json_escape d.d_base)
          (outcome_to_string d.d_outcome)
          (json_escape d.d_served_base)
          (json_escape d.d_served_site)
          (fg d.d_served_kappa) (fg d.d_latency)
          (match skips d with
          | [] -> ""
          | ss -> "\n" ^ String.concat ",\n" ss ^ "\n      "))
      decisions
  in
  Printf.sprintf
    "{ \"slo\": %s,\n  \"catalog\": [\n%s\n  ],\n  \"routes\": [\n%s\n  ] }\n"
    (match slo with Some s -> fg s | None -> "null")
    (String.concat ",\n" catalog)
    (String.concat ",\n" routes)
