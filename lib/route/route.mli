(** Constraint-aware read routing over the federation.

    The toolkit maintains κ-bounded copies (§3.3.1 guarantee (4)) but the
    paper never says who gets to {e use} them; this front end does.  A
    replica catalog is derived from the declared [constraint copy]
    directives, annotated through {!Cm_core.System.Guarantee_view} with
    each copy's statically-derived κ (Derive), live §5 validity
    (guarantee handles), and current rule-epoch survival (Evolution).
    Each read then carries an optional staleness budget — "a value held
    by the master at most κ seconds ago" — and is routed to the cheapest
    copy whose guarantee satisfies it:

    - {!outcome.Replica}: some copy qualifies (κ proved, κ ≤ SLO
      inclusive, handle valid, epoch kept the metric guarantee, site
      reachable) — serve from the cheapest such copy by round-trip link
      latency, tie-broken by site then base name so routing is
      deterministic;
    - {!outcome.Master}: no copy qualifies but the master site is
      reachable — fall back to the authoritative item (κ 0 by
      definition);
    - {!outcome.Forced_poll}: the master is unreachable too — force a
      synchronous poll through the read interface (§3.1.1), relayed via
      the cheapest replica site that can still reach the master, paying
      {!create}'s [poll_penalty] on top of the relay round trips.

    Every decision is recorded via {!Cm_core.Obs} (per-outcome counters
    and latency series, per-reason skip counters, optional routed-read
    spans) and handed to {!on_decision} subscribers — the E17 bench
    audits served-κ ≤ SLO post hoc from exactly that stream.

    {b Quarantine (self-healing).}  When the system runs with streaming
    guarantee monitors ({!Cm_core.System.Config.monitor}), the router
    subscribes to their live staleness transitions: a copy whose monitor
    reports it stale — including the §5 [Silent_drop] failure, where the
    copy's notify channel dies while the master keeps writing — is
    {e quarantined} immediately and stops serving reads.  Re-admission
    is half-open: after [probe_after] simulated seconds, the next read
    that considers the copy issues one {!Cm_core.Monitor.force_refresh}
    (a synchronous poll, billed at [poll_penalty] on the served
    latency); a fresh verdict readmits the copy, a stale one re-arms the
    quarantine for another [probe_after].  Active copies are also
    re-checked against the live verdict on every read, so a read is
    never served from a copy whose monitor currently reports it stale.
    Without monitors the router behaves exactly as before. *)

type t

type outcome = Replica | Master | Forced_poll

val outcome_to_string : outcome -> string
(** Stable lowercase names: "replica", "master", "forced_poll" — used as
    the Obs [outcome] label and in the JSON report. *)

type skip = {
  sk_target : string;  (** copy base that was considered *)
  sk_site : string;
  sk_reason : string;
      (** {!Cm_core.System.Guarantee_view.qualifies} vocabulary
          ("epoch-lost" | "unprovable" | "invalidated" | "over-slo")
          plus the router's own "unreachable", "quarantined" (copy in
          quarantine, probe not yet due) and "stale" (live monitor
          verdict: on an active copy it also enters quarantine, on a
          probe it re-arms the quarantine) *)
}

type decision = {
  d_base : string;  (** the item base the client asked for *)
  d_client_site : string;
  d_slo : float option;
  d_outcome : outcome;
  d_served_base : string;  (** which item actually answered *)
  d_served_site : string;
  d_served_kappa : float;
      (** staleness bound of the served value: the copy's κ for
          [Replica], 0 for [Master]/[Forced_poll] (authoritative) *)
  d_latency : float;  (** simulated read latency, seconds *)
  d_skips : skip list;  (** copies considered and rejected, catalog order *)
}

val create :
  ?interfaces:Cm_rule.Rule.t list ->
  ?strategy:Cm_rule.Rule.t list ->
  ?poll_penalty:float ->
  ?probe_after:float ->
  ?trace_spans:bool ->
  Cm_core.System.t ->
  constraints:(string * string) list ->
  t
(** Build the routing front end over a running system from its
    [(source, target)] copy directives: declares them on the system
    ({!Cm_core.System.declare_copies}, with the same optional
    [interfaces]/[strategy] overrides) and indexes replicas by source
    base.  [poll_penalty] (default [1.0] s) is the synchronous-poll
    surcharge of [Forced_poll] and of a quarantine probe.
    [probe_after] (default [5.0] s) is the quarantine dwell before a
    half-open probe is allowed.  [trace_spans] (default [false]) opens a
    ["routed_read"] span per decision — off by default because a
    10⁶-read sweep would retain every span in memory.  Quarantine is
    armed iff the system was built with
    {!Cm_core.System.Config.monitor}. *)

val of_cmrid :
  ?interfaces:Cm_rule.Rule.t list ->
  ?strategy:Cm_rule.Rule.t list ->
  ?poll_penalty:float ->
  ?probe_after:float ->
  ?trace_spans:bool ->
  Cm_core.System.t ->
  Cm_core.Cmrid.t ->
  t
(** {!create} from a parsed CM-RID config's [constraint copy] lines. *)

val system : t -> Cm_core.System.t

val bases : t -> string list
(** Routable master bases, in constraint declaration order. *)

val replicas : t -> base:string -> (string * string) list
(** [(copy base, copy site)] for a master base, declaration order. *)

val on_decision : t -> (decision -> unit) -> unit
(** Subscribe to every routing decision, in registration order. *)

val read : ?within_kappa:float -> t -> client_site:string -> string -> decision
(** Route one read of an item base from a client at [client_site].
    [within_kappa] is the staleness SLO in seconds; omitting it accepts
    any proved κ.  Pure decision over current system state — the
    simulated read cost is reported in [d_latency], not scheduled. *)

val reads : t -> int
val reads_by : t -> outcome -> int

(** {1 Quarantine state} *)

val quarantined : t -> (string * string * float) list
(** Currently-quarantined copies as [(source, target, probe_at)],
    sorted — [probe_at] is the earliest simulated time a read may probe
    the copy. *)

val quarantines : t -> int
(** Quarantine entries (transitions into quarantine, not re-arms). *)

val probes : t -> int
(** Half-open probes issued (each one forced refresh + poll billing). *)

val readmissions : t -> int
(** Probes that came back fresh and returned the copy to service. *)

(** {1 Deterministic reports (cmtool route)} *)

val plan : ?within_kappa:float -> t -> client_sites:string list -> decision list
(** One {!read} per client site × routable base, in the given site order
    then declaration order — the static routing table. *)

val report_to_text : ?slo:float -> t -> decision list -> string
(** Replica catalog (κ / validity / epoch survival per copy, from the
    guarantee view) followed by the routing table.  Byte-deterministic
    for a given system state. *)

val report_to_json : ?slo:float -> t -> decision list -> string
(** Same report as JSON; hand-rolled and byte-deterministic. *)
