(** Demarcation-protocol scenario (§6.1): an inequality constraint
    X ≤ Y between account values at two branches.

    Each branch's database stores the value and its local limit in one
    row whose CHECK constraint ([bal <= lim] at X, [bal >= lim] at Y) is
    the local constraint manager.  Application operations that fit the
    limit succeed locally with no messages; operations that cross it are
    rejected by the CHECK, and {!try_set_x}/{!try_set_y} then file a
    limit-change request with the CM and report [`Requested]. *)

type t = {
  system : Cm_core.System.t;
  shell_a : Cm_core.Shell.t;
  shell_b : Cm_core.Shell.t;
  tr_a : Cm_core.Tr_relational.t;
  tr_b : Cm_core.Tr_relational.t;
  db_a : Cm_relational.Database.t;
  db_b : Cm_relational.Database.t;
  x : Cm_core.Demarcation.side;
  y : Cm_core.Demarcation.side;
}

val locator : Cm_rule.Item.locator
(** X-side items → "branch_a", everything else → "branch_b"; see
    {!Cm_workload.Payroll.locator} for the [?system] protocol. *)

val create :
  ?config:Cm_core.System.Config.t ->
  ?system:Cm_core.System.t ->
  ?x_init:int * int ->
  ?y_init:int * int ->
  policy:Cm_core.Demarcation.policy ->
  unit ->
  t
(** Defaults: X starts at (0, limit 50), Y at (100, limit 50).
    [config] carries the seed and the network/reliability/observability
    setup (see {!Cm_core.System.create}); [system] substitutes a
    pre-built system (created over {!locator}) and [config] is then
    ignored. *)

type outcome = Applied | Requested
(** [Requested]: the local write was rejected by the limit and a
    limit-change request was filed; the caller may retry later. *)

val try_set_x : t -> int -> outcome
val try_set_y : t -> int -> outcome

val x_bal : t -> float
val y_bal : t -> float
val x_lim : t -> float
val y_lim : t -> float

val always_leq_guarantee : Cm_core.Guarantee.t
val initial : t -> (Cm_rule.Item.t * Cm_rule.Value.t) list
