(** The paper's running example (§4.2): salaries replicated between a
    San Francisco branch database A and the New York headquarters
    database B, constraint salary1(n) = salary2(n) for every employee n
    in A.

    Both databases are relational sources; A's interface is configurable
    — [`Notify] (trigger-based, the paper's first scenario),
    [`Conditional of threshold] (10 %-change filtering), or [`Read_only]
    (the paper's §4.2.3 change of interface, which forces polling).
    B always offers write + read. *)

type source_mode = Notify | Conditional of float | Read_only

type t = {
  system : Cm_core.System.t;
  shell_a : Cm_core.Shell.t;
  shell_b : Cm_core.Shell.t;
  tr_a : Cm_core.Tr_relational.t;
  tr_b : Cm_core.Tr_relational.t;
  db_a : Cm_relational.Database.t;
  db_b : Cm_relational.Database.t;
  employees : string list;
  initial : (Cm_rule.Item.t * Cm_rule.Value.t) list;
}

val site_a : string
val site_b : string

val locator : Cm_rule.Item.locator
(** Salary1(…) → {!site_a}, everything else → {!site_b} — the locator
    the internally-built system uses; pass it to an externally-built
    system (e.g. a shard fabric) handed in via [?system]. *)

val create :
  ?config:Cm_core.System.Config.t ->
  ?system:Cm_core.System.t ->
  ?employees:int ->
  ?mode:source_mode ->
  ?notify_latency:float ->
  ?notify_delta:float ->
  ?write_latency:float ->
  unit ->
  t
(** Defaults: 10 employees ("e1"…), [`Notify], 1 s notification latency
    with a 5 s bound, 0.2 s writes.  [config] (default
    {!Cm_core.System.Config.default}) carries the seed, network model,
    reliable-delivery layer, durability mode, and observability registry
    (see {!Cm_core.System.create}).  [system] substitutes a pre-built
    system (created over {!locator}) for the internally-constructed one;
    [config] is then ignored — the sharded golden suite uses this to run
    the same workload through a fabric-owned system. *)

val source_item : string -> Cm_rule.Item.t
(** salary1(emp). *)

val target_item : string -> Cm_rule.Item.t

val source_pattern : Cm_rule.Expr.t
(** The Salary1(n) family pattern. *)

val target_pattern : Cm_rule.Expr.t

val install_propagation : ?delta:float -> t -> unit
(** The §4.2.2 strategy: [N(salary1(n), b) →δ WR(salary2(n), b)]. *)

val install_polling : ?delta:float -> period:float -> t -> unit
(** The §4.2.3 polling strategy, one poller per employee (read requests
    must name concrete items). *)

val update_salary : t -> emp:string -> salary:int -> unit
(** Spontaneous application update on A, at the current simulated time.
    @raise Failure on database errors. *)

val schedule_update : t -> at:float -> emp:string -> salary:int -> unit

val random_updates :
  t -> mean_interarrival:float -> until:float -> unit
(** Poisson stream of salary changes across random employees. *)

val salary_at : t -> [ `A | `B ] -> string -> Cm_rule.Value.t

val guarantees : ?kappa:float -> t -> emp:string -> Cm_core.Guarantee.t list
(** The four §3.3.1 guarantees for one employee's copy constraint. *)
