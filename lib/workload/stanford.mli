(** The Stanford federation (§4.3): four heterogeneous sources
    coordinated without modifying any of them.

    - ["whois"]: the campus directory ({!Cm_sources.Whois}) — read-only;
      phone numbers of record, changed by administrators.
    - ["lookup"]: the CS department personnel database
      ({!Cm_sources.Objstore}) — notify + write.
    - ["groupdb"]: the database group's relational database — write,
      with observer-based ground truth; holds people and the papers
      table.
    - ["biblio"]: the bibliographic system ({!Cm_sources.Bibdb}) —
      read-only, INS/DEL observable.

    Constraints maintained:
    - wphone(n) = lphone(n): whois is read-only, so a per-person polling
      strategy copies directory changes into lookup;
    - lphone(n) = gphone(n): notify → write propagation;
    - referential integrity: every paper in biblio (by a group member)
      must be mentioned in groupdb — maintained by
      [INS(BibPaper(k)) → RR(BibPaper(k))], [R(BibPaper(k), b) →
      WR(GPaper(k), b)] and [DEL(BibPaper(k)) → DR(GPaper(k))]. *)

type t = {
  system : Cm_core.System.t;
  tr_whois : Cm_core.Tr_whois.t;
  tr_lookup : Cm_core.Tr_objstore.t;
  tr_group : Cm_core.Tr_relational.t;
  tr_bib : Cm_core.Tr_bibdb.t;
  people : string list;
  db_group : Cm_relational.Database.t;
  initial : (Cm_rule.Item.t * Cm_rule.Value.t) list;
}

val create :
  ?config:Cm_core.System.Config.t -> ?people:int -> ?poll_period:float -> unit -> t
(** Builds all four sources with consistent initial phone numbers and
    installs all three strategies.  Default 4 people, 120 s polling. *)

(** {2 Spontaneous operations} *)

val admin_change_phone : t -> person:string -> phone:string -> unit
(** Directory change on whois (at the current simulated time). *)

val app_change_phone : t -> person:string -> phone:string -> unit
(** Personnel-database change on lookup. *)

val publish_paper : t -> key:string -> title:string -> authors:string list -> unit
val withdraw_paper : t -> key:string -> unit

(** {2 Observations} *)

val phone_in_lookup : t -> person:string -> Cm_rule.Value.t option
val phone_in_groupdb : t -> person:string -> Cm_rule.Value.t option
val paper_in_groupdb : t -> key:string -> bool

val phone_guarantees : t -> person:string -> Cm_core.Guarantee.t list
(** The four §3.3.1 guarantees for the lookup→groupdb hop (κ = 25). *)

val directory_guarantees : t -> person:string -> Cm_core.Guarantee.t list
(** Follows/strictly-follows for the whois→lookup hop; only meaningful
    when lookup is not independently updated (it is also a polling hop,
    so the leads guarantee is never offered). *)

val refint_guarantee : key:string -> bound:float -> Cm_core.Guarantee.t
(** Bounded-window referential integrity for one paper key. *)
