module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Tr_whois = Cm_core.Tr_whois
module Tr_objstore = Cm_core.Tr_objstore
module Tr_rel = Cm_core.Tr_relational
module Tr_bibdb = Cm_core.Tr_bibdb
module Db = Cm_relational.Database
module Strategy = Cm_core.Strategy
open Cm_rule

type t = {
  system : Sys_.t;
  tr_whois : Tr_whois.t;
  tr_lookup : Tr_objstore.t;
  tr_group : Tr_rel.t;
  tr_bib : Tr_bibdb.t;
  people : string list;
  db_group : Db.t;
  initial : (Item.t * Value.t) list;
}

let locator item =
  match item.Item.base with
  | "WPhone" -> "whois"
  | "LPhone" -> "lookup"
  | "BibPaper" -> "biblio"
  | _ -> "groupdb"

let must = function
  | Ok r -> r
  | Error e -> failwith (Db.error_to_string e)

let initial_phone i = Printf.sprintf "555-%04d" (1000 + i)

let create ?(config = Sys_.Config.default) ?(people = 4) ?(poll_period = 120.0) () =
  let people = List.init people (fun i -> "p" ^ string_of_int (i + 1)) in
  let system = Sys_.create ~config locator in
  let sh_whois = Sys_.add_shell system ~site:"whois" in
  let sh_lookup = Sys_.add_shell system ~site:"lookup" in
  let sh_group = Sys_.add_shell system ~site:"groupdb" in
  let sh_bib = Sys_.add_shell system ~site:"biblio" in
  (* whois: the campus directory. *)
  let whois_server = Cm_sources.Whois.create () in
  List.iteri
    (fun i person ->
      Cm_sources.Whois.register whois_server ~name:person
        ~fields:[ ("phone", initial_phone i) ])
    people;
  let tr_whois =
    Tr_whois.create ~sim:(Sys_.sim system) ~server:whois_server ~site:"whois"
      ~emit:(Shell.emitter_for sh_whois ~site:"whois")
      ~report:(fun k -> Shell.report_failure sh_whois k)
      [ { Tr_whois.base = "WPhone"; field = "phone" } ]
  in
  (* lookup: the departmental personnel database. *)
  let store = Cm_sources.Objstore.create () in
  List.iteri
    (fun i person ->
      Cm_sources.Objstore.put store ~cls:"person" ~id:person
        [ ("phone", Value.Str (initial_phone i)) ])
    people;
  let tr_lookup =
    Tr_objstore.create ~sim:(Sys_.sim system) ~store ~site:"lookup"
      ~emit:(Shell.emitter_for sh_lookup ~site:"lookup")
      ~report:(fun k -> Shell.report_failure sh_lookup k)
      [
        {
          Tr_objstore.base = "LPhone";
          cls = "person";
          attr = "phone";
          writable = true;
          notify = Tr_objstore.Plain;
        };
      ]
  in
  (* groupdb: the database group's relational database. *)
  let db_group = Db.create () in
  ignore
    (must (Db.exec db_group "CREATE TABLE people (person TEXT PRIMARY KEY, phone TEXT)"));
  ignore
    (must (Db.exec db_group "CREATE TABLE papers (id TEXT PRIMARY KEY, title TEXT)"));
  List.iteri
    (fun i person ->
      ignore
        (must
           (Db.exec db_group "INSERT INTO people VALUES ($n, $p)"
              ~params:[ ("n", Value.Str person); ("p", Value.Str (initial_phone i)) ])))
    people;
  let tr_group =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_group ~site:"groupdb"
      ~emit:(Shell.emitter_for sh_group ~site:"groupdb")
      ~report:(fun k -> Shell.report_failure sh_group k)
      ~existence:
        [ { Tr_rel.ex_base = "GPaper"; ex_table = "papers"; ex_key_column = "id" } ]
      [
        {
          Tr_rel.base = "GPhone";
          params = [ "n" ];
          read_sql = Some "SELECT phone FROM people WHERE person = $n";
          write_sql = Some "UPDATE people SET phone = $b WHERE person = $n";
          delete_sql = None;
          notify =
            Some
              {
                Tr_rel.table = "people";
                column = "phone";
                key_column = "person";
                send = false;
                filter = None;
                filter_expr = None;
              };
          no_spontaneous = false;
    periodic = None;
        };
        {
          Tr_rel.base = "GPaper";
          params = [ "k" ];
          read_sql = Some "SELECT title FROM papers WHERE id = $k";
          write_sql = Some "INSERT INTO papers (id, title) VALUES ($k, $b)";
          delete_sql = Some "DELETE FROM papers WHERE id = $k";
          notify = None;
          no_spontaneous = false;
    periodic = None;
        };
      ]
  in
  (* biblio: the bibliographic information system. *)
  let bib = Cm_sources.Bibdb.create () in
  let tr_bib =
    Tr_bibdb.create ~sim:(Sys_.sim system) ~db:bib ~site:"biblio"
      ~emit:(Shell.emitter_for sh_bib ~site:"biblio")
      ~report:(fun k -> Shell.report_failure sh_bib k)
      ~base:"BibPaper" ()
  in
  Sys_.register_translator system ~shell:sh_whois (Tr_whois.cmi tr_whois);
  Sys_.register_translator system ~shell:sh_lookup (Tr_objstore.cmi tr_lookup);
  Sys_.register_translator system ~shell:sh_group (Tr_rel.cmi tr_group);
  Sys_.register_translator system ~shell:sh_bib (Tr_bibdb.cmi tr_bib);
  (* Strategy 1: whois -> lookup by polling, one poller per person. *)
  List.iter
    (fun person ->
      let concrete base = Expr.Item (base, [ Expr.Const (Value.Str person) ]) in
      Sys_.install system
        (Strategy.poll ~prefix:("wl_" ^ person) ~period:poll_period ~delta:10.0
           ~source:(concrete "WPhone") ~target:(concrete "LPhone") ()))
    people;
  (* Strategy 2: lookup -> groupdb.  Spontaneous lookup changes arrive as
     N events; values the CM itself wrote into lookup (from the whois
     poller) arrive as W events — both are forwarded. *)
  let lphone = Cm_core.Interface.family "LPhone" [ "n" ] in
  let gphone = Cm_core.Interface.family "GPhone" [ "n" ] in
  Sys_.install system (Strategy.propagate ~prefix:"lg" ~delta:10.0 ~source:lphone ~target:gphone ());
  Sys_.install system
    {
      Strategy.strategy_name = "propagate-cm-writes";
      description = "forward CM-performed lookup writes to groupdb";
      rules =
        Parser.parse_rules "lgw: W(LPhone(n), b) ->[10] WR(GPhone(n), b)";
      aux_init = [];
    };
  (* Strategy 3: referential integrity biblio -> groupdb (§4.3, §6.2). *)
  Sys_.install system
    {
      Strategy.strategy_name = "refint-papers";
      description = "mirror bibliographic papers into groupdb";
      rules =
        Parser.parse_rules
          {|bibins: INS(BibPaper(k)) ->[5] RR(BibPaper(k))
            bibcp:  R(BibPaper(k), b) ->[30] WR(GPaper(k), b)
            bibdel: DEL(BibPaper(k)) ->[30] DR(GPaper(k))|};
      aux_init = [];
    };
  let initial =
    List.concat
      (List.mapi
         (fun i person ->
           let v = Value.Str (initial_phone i) in
           [
             (Item.make "WPhone" ~params:[ Value.Str person ], v);
             (Item.make "LPhone" ~params:[ Value.Str person ], v);
             (Item.make "GPhone" ~params:[ Value.Str person ], v);
           ])
         people)
  in
  { system; tr_whois; tr_lookup; tr_group; tr_bib; people; db_group; initial }

let admin_change_phone t ~person ~phone =
  ignore (Tr_whois.update_app t.tr_whois ~name:person ~field:"phone" ~value:phone)

let app_change_phone t ~person ~phone =
  ignore
    (Tr_objstore.set_app t.tr_lookup
       (Item.make "LPhone" ~params:[ Value.Str person ])
       (Value.Str phone))

let publish_paper t ~key ~title ~authors =
  Tr_bibdb.add_app t.tr_bib { Cm_sources.Bibdb.key; title; authors; year = 1996 }

let withdraw_paper t ~key = ignore (Tr_bibdb.withdraw_app t.tr_bib key)

let phone_in_lookup t ~person =
  (Tr_objstore.cmi t.tr_lookup).Cm_core.Cmi.current_value
    (Item.make "LPhone" ~params:[ Value.Str person ])

let phone_in_groupdb t ~person =
  match
    Db.exec t.db_group "SELECT phone FROM people WHERE person = $n"
      ~params:[ ("n", Value.Str person) ]
  with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> Some v
  | _ -> None

let paper_in_groupdb t ~key =
  match
    Db.exec t.db_group "SELECT id FROM papers WHERE id = $k"
      ~params:[ ("k", Value.Str key) ]
  with
  | Ok (Db.Rows { rows = [ _ ]; _ }) -> true
  | _ -> false

let phone_guarantees _t ~person =
  (* Guarantees for the lookup -> groupdb hop.  (The whois -> lookup hop
     only satisfies follows-style guarantees when lookup is not updated
     independently — see {!directory_guarantees}.) *)
  let p = Value.Str person in
  let l = Item.make "LPhone" ~params:[ p ] in
  let g = Item.make "GPhone" ~params:[ p ] in
  let pair_lg = { Cm_core.Guarantee.leader = l; follower = g } in
  [
    Cm_core.Guarantee.Follows pair_lg;
    Cm_core.Guarantee.Leads pair_lg;
    Cm_core.Guarantee.Strictly_follows pair_lg;
    Cm_core.Guarantee.Metric_follows (pair_lg, 25.0);
  ]

let directory_guarantees _t ~person =
  let p = Value.Str person in
  let w = Item.make "WPhone" ~params:[ p ] in
  let l = Item.make "LPhone" ~params:[ p ] in
  let pair_wl = { Cm_core.Guarantee.leader = w; follower = l } in
  [
    Cm_core.Guarantee.Follows pair_wl;
    Cm_core.Guarantee.Strictly_follows pair_wl;
  ]

let refint_guarantee ~key ~bound =
  Cm_core.Guarantee.Exists_within
    {
      antecedent = Item.make "BibPaper" ~params:[ Value.Str key ];
      consequent = Item.make "GPaper" ~params:[ Value.Str key ];
      bound;
    }
