module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Tr_rel = Cm_core.Tr_relational
module Db = Cm_relational.Database
module Strategy = Cm_core.Strategy
open Cm_rule

type t = {
  system : Sys_.t;
  shell_branch : Shell.t;
  shell_ho : Shell.t;
  tr_branch : Tr_rel.t;
  tr_ho : Tr_rel.t;
  db_branch : Db.t;
  db_ho : Db.t;
  accounts : string list;
  initial : (Item.t * Value.t) list;
}

let day = 86_400.0
let business_open = 9.0 *. 3600.0
let business_close = 17.0 *. 3600.0
let window_start = (17.0 *. 3600.0) +. (15.0 *. 60.0)
let window_end = day +. (8.0 *. 3600.0)

let locator item =
  match item.Item.base with "Bal1" -> "branch" | _ -> "ho"

let must = function
  | Ok r -> r
  | Error e -> failwith (Db.error_to_string e)

let setup_db db accounts =
  ignore
    (must (Db.exec db "CREATE TABLE accounts (acct TEXT PRIMARY KEY, bal INT NOT NULL)"));
  List.iteri
    (fun i acct ->
      ignore
        (must
           (Db.exec db "INSERT INTO accounts VALUES ($n, $b)"
              ~params:[ ("n", Value.Str acct); ("b", Value.Int (1000 * (i + 1))) ])))
    accounts

let binding base =
  {
    Tr_rel.base;
    params = [ "n" ];
    read_sql = Some "SELECT bal FROM accounts WHERE acct = $n";
    write_sql = Some "UPDATE accounts SET bal = $b WHERE acct = $n";
    delete_sql = None;
    notify =
      Some
        {
          Tr_rel.table = "accounts";
          column = "bal";
          key_column = "acct";
          send = false;
          filter = None;
          filter_expr = None;
        };
    no_spontaneous = false;
    periodic = None;
  }

let eod_rules =
  (* Eod(Bal1(n)) is the custom event the end-of-day job emits per account. *)
  Cm_rule.Parser.parse_rules
    {|eod_read: Eod(Bal1(n)) ->[60] RR(Bal1(n))
      eod_prop: R(Bal1(n), b) ->[300] WR(Bal2(n), b)|}

let create ?(config = Sys_.Config.default) ?(accounts = 5) () =
  let accounts = List.init accounts (fun i -> "a" ^ string_of_int (i + 1)) in
  let system = Sys_.create ~config locator in
  let shell_branch = Sys_.add_shell system ~site:"branch" in
  let shell_ho = Sys_.add_shell system ~site:"ho" in
  let db_branch = Db.create () and db_ho = Db.create () in
  setup_db db_branch accounts;
  setup_db db_ho accounts;
  let tr_branch =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_branch ~site:"branch"
      ~emit:(Shell.emitter_for shell_branch ~site:"branch")
      ~report:(fun k -> Shell.report_failure shell_branch k)
      [ binding "Bal1" ]
  in
  let tr_ho =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_ho ~site:"ho"
      ~emit:(Shell.emitter_for shell_ho ~site:"ho")
      ~report:(fun k -> Shell.report_failure shell_ho k)
      [ binding "Bal2" ]
  in
  Sys_.register_translator system ~shell:shell_branch (Tr_rel.cmi tr_branch);
  Sys_.register_translator system ~shell:shell_ho (Tr_rel.cmi tr_ho);
  Sys_.install system
    {
      Strategy.strategy_name = "end-of-day";
      description = "daily read sweep propagated to the head office";
      rules = eod_rules;
      aux_init = [];
    };
  let initial =
    List.concat
      (List.mapi
         (fun i acct ->
           let v = Value.Int (1000 * (i + 1)) in
           [
             (Item.make "Bal1" ~params:[ Value.Str acct ], v);
             (Item.make "Bal2" ~params:[ Value.Str acct ], v);
           ])
         accounts)
  in
  { system; shell_branch; shell_ho; tr_branch; tr_ho; db_branch; db_ho; accounts;
    initial }

let update t acct bal =
  ignore
    (must
       (Tr_rel.exec_app t.tr_branch "UPDATE accounts SET bal = $b WHERE acct = $n"
          ~params:[ ("b", Value.Int bal); ("n", Value.Str acct) ]))

let sweep t =
  let emit = Shell.emitter_for t.shell_branch ~site:"branch" in
  List.iter
    (fun acct ->
      let item = Item.make "Bal1" ~params:[ Value.Str acct ] in
      ignore
        (emit
           { Event.name = "Eod"; args = [ Event.Ai item ] }
           ~kind:Event.Spontaneous))
    t.accounts

let run_days t ~days ~updates_per_day =
  let sim = Sys_.sim t.system in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let accounts = Array.of_list t.accounts in
  for d = 0 to days - 1 do
    let day_start = float_of_int d *. day in
    for _ = 1 to updates_per_day do
      let at =
        day_start +. Cm_util.Prng.uniform_in rng ~lo:business_open ~hi:business_close
      in
      let acct = Cm_util.Prng.pick rng accounts in
      let bal = 100 + Cm_util.Prng.int rng 10_000 in
      Sim.schedule_at sim at (fun () -> update t acct bal)
    done;
    Sim.schedule_at sim (day_start +. business_close) (fun () -> sweep t)
  done;
  Sys_.run t.system ~until:(float_of_int days *. day)

let guarantee acct =
  Cm_core.Guarantee.Periodic_equal
    {
      x = Item.make "Bal1" ~params:[ Value.Str acct ];
      y = Item.make "Bal2" ~params:[ Value.Str acct ];
      period = day;
      valid_from = window_start;
      valid_to = window_end;
    }

let balance_at t side acct =
  let db = match side with `Branch -> t.db_branch | `Head_office -> t.db_ho in
  match
    Db.exec db "SELECT bal FROM accounts WHERE acct = $n" ~params:[ ("n", Value.Str acct) ]
  with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> v
  | _ -> failwith ("no such account: " ^ acct)
