module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Tr_rel = Cm_core.Tr_relational
module Db = Cm_relational.Database
module Demarcation = Cm_core.Demarcation
open Cm_rule

type t = {
  system : Sys_.t;
  shell_a : Shell.t;
  shell_b : Shell.t;
  tr_a : Tr_rel.t;
  tr_b : Tr_rel.t;
  db_a : Db.t;
  db_b : Db.t;
  x : Demarcation.side;
  y : Demarcation.side;
}

let locator item =
  match item.Item.base with
  | "Xbal" | "Xlim" | "PendX" -> "branch_a"
  | _ -> "branch_b"

let must = function
  | Ok r -> r
  | Error e -> failwith (Db.error_to_string e)

let binding base col =
  {
    Tr_rel.base;
    params = [];
    read_sql = Some (Printf.sprintf "SELECT %s FROM acct" col);
    write_sql = Some (Printf.sprintf "UPDATE acct SET %s = $b" col);
    delete_sql = None;
    notify =
      Some
        {
          Tr_rel.table = "acct";
          column = col;
          key_column = "id";
          send = false;
          filter = None;
          filter_expr = None;
        };
    no_spontaneous = false;
    periodic = None;
  }

let create ?(config = Sys_.Config.default) ?system ?(x_init = (0, 50))
    ?(y_init = (100, 50)) ~policy () =
  let system =
    match system with Some s -> s | None -> Sys_.create ~config locator
  in
  let shell_a = Sys_.add_shell system ~site:"branch_a" in
  let shell_b = Sys_.add_shell system ~site:"branch_b" in
  let db_a = Db.create () and db_b = Db.create () in
  let xb, xl = x_init and yb, yl = y_init in
  ignore
    (must
       (Db.exec db_a
          "CREATE TABLE acct (id TEXT PRIMARY KEY, bal INT NOT NULL, lim INT NOT NULL, CHECK (bal <= lim))"));
  ignore
    (must
       (Db.exec db_a "INSERT INTO acct VALUES ('x', $b, $l)"
          ~params:[ ("b", Value.Int xb); ("l", Value.Int xl) ]));
  ignore
    (must
       (Db.exec db_b
          "CREATE TABLE acct (id TEXT PRIMARY KEY, bal INT NOT NULL, lim INT NOT NULL, CHECK (bal >= lim))"));
  ignore
    (must
       (Db.exec db_b "INSERT INTO acct VALUES ('y', $b, $l)"
          ~params:[ ("b", Value.Int yb); ("l", Value.Int yl) ]));
  let tr_a =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_a ~site:"branch_a"
      ~emit:(Shell.emitter_for shell_a ~site:"branch_a")
      ~report:(fun k -> Shell.report_failure shell_a k)
      [ binding "Xbal" "bal"; binding "Xlim" "lim" ]
  in
  let tr_b =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_b ~site:"branch_b"
      ~emit:(Shell.emitter_for shell_b ~site:"branch_b")
      ~report:(fun k -> Shell.report_failure shell_b k)
      [ binding "Ybal" "bal"; binding "Ylim" "lim" ]
  in
  Sys_.register_translator system ~shell:shell_a (Tr_rel.cmi tr_a);
  Sys_.register_translator system ~shell:shell_b (Tr_rel.cmi tr_b);
  let x = { Demarcation.bal = "Xbal"; lim = "Xlim"; pend = "PendX" } in
  let y = { Demarcation.bal = "Ybal"; lim = "Ylim"; pend = "PendY" } in
  Sys_.install system (Demarcation.rules ~policy ~delta:30.0 ~x ~y ());
  { system; shell_a; shell_b; tr_a; tr_b; db_a; db_b; x; y }

type outcome = Applied | Requested

let try_set_x t v =
  match
    Tr_rel.exec_app t.tr_a "UPDATE acct SET bal = $b" ~params:[ ("b", Value.Int v) ]
  with
  | Ok _ -> Applied
  | Error (Db.Check_failed _) ->
    Demarcation.request_increase_x
      ~emit:(Shell.emitter_for t.shell_a ~site:"branch_a")
      ~x:t.x ~wanted:(Value.Int v);
    Requested
  | Error e -> failwith (Db.error_to_string e)

let try_set_y t v =
  match
    Tr_rel.exec_app t.tr_b "UPDATE acct SET bal = $b" ~params:[ ("b", Value.Int v) ]
  with
  | Ok _ -> Applied
  | Error (Db.Check_failed _) ->
    Demarcation.request_decrease_y
      ~emit:(Shell.emitter_for t.shell_b ~site:"branch_b")
      ~y:t.y ~wanted:(Value.Int v);
    Requested
  | Error e -> failwith (Db.error_to_string e)

let read_col db col =
  match Db.exec db (Printf.sprintf "SELECT %s FROM acct" col) with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> Value.to_float v
  | _ -> failwith "bank: account row missing"

let x_bal t = read_col t.db_a "bal"
let y_bal t = read_col t.db_b "bal"
let x_lim t = read_col t.db_a "lim"
let y_lim t = read_col t.db_b "lim"

let always_leq_guarantee =
  Cm_core.Guarantee.Always_leq
    { smaller = Item.make "Xbal"; larger = Item.make "Ybal" }

let initial t =
  [
    (Item.make "Xbal", Value.Float (x_bal t));
    (Item.make "Ybal", Value.Float (y_bal t));
    (Item.make "Xlim", Value.Float (x_lim t));
    (Item.make "Ylim", Value.Float (y_lim t));
  ]
