module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Tr_rel = Cm_core.Tr_relational
module Db = Cm_relational.Database
module Strategy = Cm_core.Strategy
module Interface = Cm_core.Interface
open Cm_rule

type source_mode = Notify | Conditional of float | Read_only

type t = {
  system : Sys_.t;
  shell_a : Shell.t;
  shell_b : Shell.t;
  tr_a : Tr_rel.t;
  tr_b : Tr_rel.t;
  db_a : Db.t;
  db_b : Db.t;
  employees : string list;
  initial : (Item.t * Value.t) list;
}

let site_a = "sf"
let site_b = "ny"

let locator item =
  match item.Item.base with
  | "Salary1" -> site_a
  | _ -> site_b

let source_item emp = Item.make "Salary1" ~params:[ Value.Str emp ]
let target_item emp = Item.make "Salary2" ~params:[ Value.Str emp ]
let source_pattern = Interface.family "Salary1" [ "n" ]
let target_pattern = Interface.family "Salary2" [ "n" ]

let must = function
  | Ok r -> r
  | Error e -> failwith (Db.error_to_string e)

let initial_salary i = 1000 + (100 * i)

let setup_db db employees =
  ignore
    (must
       (Db.exec db "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)"));
  List.iteri
    (fun i emp ->
      ignore
        (must
           (Db.exec db "INSERT INTO employees VALUES ($n, $s)"
              ~params:[ ("n", Value.Str emp); ("s", Value.Int (initial_salary i)) ])))
    employees

let binding ~base ~mode =
  let notify =
    match mode with
    | Read_only ->
      (* Observe only: ground truth Ws without a notify interface. *)
      Some
        {
          Tr_rel.table = "employees";
          column = "salary";
          key_column = "empid";
          send = false;
          filter = None;
          filter_expr = None;
        }
    | Notify ->
      Some
        {
          Tr_rel.table = "employees";
          column = "salary";
          key_column = "empid";
          send = true;
          filter = None;
          filter_expr = None;
        }
    | Conditional threshold ->
      Some
        {
          Tr_rel.table = "employees";
          column = "salary";
          key_column = "empid";
          send = true;
          filter =
            Some
              (fun ~old_value ~new_value ->
                Float.abs (Value.to_float new_value -. Value.to_float old_value)
                > threshold *. Value.to_float old_value);
          filter_expr = Some (Interface.relative_change_condition ~threshold);
        }
  in
  {
    Tr_rel.base;
    params = [ "n" ];
    read_sql = Some "SELECT salary FROM employees WHERE empid = $n";
    write_sql = Some "UPDATE employees SET salary = $b WHERE empid = $n";
    delete_sql = None;
    notify;
    no_spontaneous = false;
    periodic = None;
  }

let create ?(config = Sys_.Config.default) ?system ?(employees = 10)
    ?(mode = Notify) ?(notify_latency = 1.0) ?(notify_delta = 5.0)
    ?(write_latency = 0.2) () =
  let employees = List.init employees (fun i -> "e" ^ string_of_int (i + 1)) in
  let system =
    match system with Some s -> s | None -> Sys_.create ~config locator
  in
  let shell_a = Sys_.add_shell system ~site:site_a in
  let shell_b = Sys_.add_shell system ~site:site_b in
  let db_a = Db.create () and db_b = Db.create () in
  setup_db db_a employees;
  setup_db db_b employees;
  let latencies lat_notify =
    { Tr_rel.read = 0.2; write = write_latency; notify = lat_notify; delete = 0.2 }
  in
  let deltas =
    { Tr_rel.read = 1.0; write = 1.0; notify = notify_delta; delete = 1.0 }
  in
  let tr_a =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_a ~site:site_a
      ~emit:(Shell.emitter_for shell_a ~site:site_a)
      ~report:(fun k -> Shell.report_failure shell_a k)
      ~latencies:(latencies notify_latency) ~deltas
      [ binding ~base:"Salary1" ~mode ]
  in
  let tr_b =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_b ~site:site_b
      ~emit:(Shell.emitter_for shell_b ~site:site_b)
      ~report:(fun k -> Shell.report_failure shell_b k)
      ~latencies:(latencies 1.0) ~deltas
      [ binding ~base:"Salary2" ~mode:Read_only ]
  in
  Sys_.register_translator system ~shell:shell_a (Tr_rel.cmi tr_a);
  Sys_.register_translator system ~shell:shell_b (Tr_rel.cmi tr_b);
  let initial =
    List.concat
      (List.mapi
         (fun i emp ->
           let v = Value.Int (initial_salary i) in
           [ (source_item emp, v); (target_item emp, v) ])
         employees)
  in
  { system; shell_a; shell_b; tr_a; tr_b; db_a; db_b; employees; initial }

let install_propagation ?(delta = 5.0) t =
  Sys_.install t.system
    (Strategy.propagate ~delta ~source:source_pattern ~target:target_pattern ())

let install_polling ?(delta = 5.0) ~period t =
  List.iter
    (fun emp ->
      let concrete base = Expr.Item (base, [ Expr.Const (Value.Str emp) ]) in
      Sys_.install t.system
        (Strategy.poll ~prefix:("poll_" ^ emp) ~period ~delta
           ~source:(concrete "Salary1") ~target:(concrete "Salary2") ()))
    t.employees

let update_salary t ~emp ~salary =
  ignore
    (must
       (Tr_rel.exec_app t.tr_a "UPDATE employees SET salary = $b WHERE empid = $n"
          ~params:[ ("b", Value.Int salary); ("n", Value.Str emp) ]))

let schedule_update t ~at ~emp ~salary =
  Sim.schedule_at (Sys_.sim t.system) at (fun () -> update_salary t ~emp ~salary)

let random_updates t ~mean_interarrival ~until =
  let sim = Sys_.sim t.system in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let employees = Array.of_list t.employees in
  Gen.poisson sim ~rng ~mean_interarrival ~until (fun () ->
      let emp = Cm_util.Prng.pick rng employees in
      let salary = 1000 + Cm_util.Prng.int rng 9000 in
      update_salary t ~emp ~salary)

let salary_at t side emp =
  let db = match side with `A -> t.db_a | `B -> t.db_b in
  match
    Db.exec db "SELECT salary FROM employees WHERE empid = $n"
      ~params:[ ("n", Value.Str emp) ]
  with
  | Ok (Db.Rows { rows = [ [ v ] ]; _ }) -> v
  | Ok _ -> failwith ("no such employee: " ^ emp)
  | Error e -> failwith (Db.error_to_string e)

let guarantees ?(kappa = 10.0) _t ~emp =
  Cm_core.Guarantee.for_copy_constraint ~source:(source_item emp)
    ~target:(target_item emp) ~kappa
