module Prng = Cm_util.Prng

let open_loop sim ~rng ~clients ~rate_per_client ~until action =
  (* Degenerate inputs are configuration bugs, not load levels: reject
     them loudly instead of silently generating no (or infinite) traffic.
     The NaN case matters — [nan <= 0.0] is false, so a bare sign check
     would wave NaN through into the interarrival divide. *)
  if not (Float.is_finite rate_per_client) then
    invalid_arg "Readers.open_loop: rate_per_client must be finite";
  if rate_per_client <= 0.0 then
    invalid_arg "Readers.open_loop: rate_per_client must be positive";
  if clients = [] then invalid_arg "Readers.open_loop: empty client list";
  List.iter
    (fun (site, n) ->
      if n < 0 then
        invalid_arg
          (Printf.sprintf
             "Readers.open_loop: negative client count %d for site %s" n site))
    clients;
  let clients = List.filter (fun (_, n) -> n > 0) clients in
  (* Cumulative population prefix sums: an arrival draws one uniform
     integer over the whole population and binary-searches its site, so
     the cost of a run is O(reads × log sites) — independent of the
     population size, which is what lets E17 simulate 10⁵–10⁶ clients. *)
  let sites = Array.of_list (List.map fst clients) in
  let cumulative = Array.make (Array.length sites) 0 in
  let total =
    List.fold_left
      (fun acc (i, (_, n)) ->
        cumulative.(i) <- acc + n;
        acc + n)
      0
      (List.mapi (fun i c -> (i, c)) clients)
  in
  if total = 0 then
    invalid_arg "Readers.open_loop: all client populations are zero";
  let site_of draw =
    (* First index whose cumulative count exceeds [draw]. *)
    let lo = ref 0 and hi = ref (Array.length cumulative - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if draw < cumulative.(mid) then hi := mid else lo := mid + 1
    done;
    sites.(!lo)
  in
  (* Superposition of [total] independent Poisson client processes at
     [rate_per_client] each = one Poisson process at the aggregate rate;
     the per-arrival site draw recovers which client population fired. *)
  let mean_interarrival = 1.0 /. (float_of_int total *. rate_per_client) in
  Gen.poisson sim ~rng ~mean_interarrival ~until (fun () ->
      action ~site:(site_of (Prng.int rng total)))
