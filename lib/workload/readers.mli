(** Open-loop read-heavy client populations.

    The ROADMAP's "millions of users" north star needs read traffic at a
    scale where simulating each client as its own process would swamp
    the event heap.  This generator exploits the superposition property
    of Poisson processes: [n] independent clients each issuing reads at
    rate [λ] are statistically one Poisson source at rate [n·λ], and a
    per-arrival weighted draw recovers {e which} site's population the
    read came from.  Simulation cost is therefore proportional to the
    number of {e reads}, not the number of {e clients} — E17 runs 10⁵–10⁶
    simulated clients this way.

    Open-loop means arrivals never wait for responses: load is offered
    at the configured rate regardless of how slowly reads are served,
    the standard client model for tail-latency measurement. *)

val open_loop :
  Cm_sim.Sim.t ->
  rng:Cm_util.Prng.t ->
  clients:(string * int) list ->
  rate_per_client:float ->
  until:float ->
  (site:string -> unit) ->
  unit
(** [open_loop sim ~rng ~clients ~rate_per_client ~until action] drives
    [action ~site] at aggregate Poisson arrivals until [until].
    [clients] gives the population per client site (zero-count entries
    are ignored); each arrival's [site] is drawn with probability
    proportional to that site's population.
    @raise Invalid_argument on a non-finite or non-positive rate (NaN
    included), an empty [clients] list, a negative client count, or an
    all-zero population — each with a distinct message naming the
    offending input. *)
