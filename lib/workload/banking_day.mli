(** The old-fashioned banking scenario (§6.4): account balances at a
    branch are copied to the head office once a day.

    All update transactions happen between 9 a.m. and 5 p.m. (the
    branch's "no updates outside business hours" interface); at 5 p.m. an
    end-of-day job reads every balance and the strategy rule
    [R(bal1(n), b) →δ WR(bal2(n), b)] propagates it.  The resulting
    {e periodic guarantee}: the copies are equal from 5:15 p.m. until
    8 a.m. the next morning, every day. *)

type t = {
  system : Cm_core.System.t;
  shell_branch : Cm_core.Shell.t;
  shell_ho : Cm_core.Shell.t;
  tr_branch : Cm_core.Tr_relational.t;
  tr_ho : Cm_core.Tr_relational.t;
  db_branch : Cm_relational.Database.t;
  db_ho : Cm_relational.Database.t;
  accounts : string list;
  initial : (Cm_rule.Item.t * Cm_rule.Value.t) list;
}

val day : float
(** 86 400 s. *)

val business_open : float
(** 9 h, offset within a day. *)

val business_close : float
(** 17 h. *)

val window_start : float
(** 17 h 15, when the guarantee window opens. *)

val window_end : float
(** 8 h next day, as an offset > [day]. *)

val create : ?config:Cm_core.System.Config.t -> ?accounts:int -> unit -> t
(** Installs the end-of-day strategy and schedules the daily sweep. *)

val run_days : t -> days:int -> updates_per_day:int -> unit
(** Schedule [updates_per_day] random balance updates uniformly inside
    business hours of each day, then run the simulation to the end of
    the last night. *)

val guarantee : string -> Cm_core.Guarantee.t
(** The periodic-equality guarantee for one account. *)

val balance_at : t -> [ `Branch | `Head_office ] -> string -> Cm_rule.Value.t
