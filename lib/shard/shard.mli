(** Sharded multi-domain execution of a CM world.

    One {!Fabric} partitions the sites of a simulated constraint-managed
    federation across OCaml domains: each shard runs its own
    {!Cm_core.System} (wheel, network, trace, journals, observability
    registry), and cross-shard messages travel through per-shard-pair
    mailboxes that are exchanged at deterministic barriers.

    The execution model is conservative parallel discrete-event
    simulation in the Chandy–Misra–Bryant family, specialized to a
    barrier-synchronous window scheme: because every cross-shard network
    link has base latency at least [L] (the {e lookahead}), a message
    sent during the window [[t, t+L)] cannot deliver before [t+L] — so
    all shards may run their wheels to [t+L] in parallel without
    consulting each other, and the mailboxes are merged at the barrier
    in a deterministic order ((delivery time, source shard, send
    sequence)).  When the lookahead degenerates to zero (some
    cross-shard link has zero base latency) the fabric does not hang and
    does not guess: it falls back to a {e safe serialization} that
    repeatedly steps whichever shard holds the globally earliest event
    (ties to the lowest shard index) and exchanges mailboxes after every
    step — sequentially correct, just not parallel.

    Determinism contract.  A fabric run is a function of (config seed,
    world, shard count): repeated runs are byte-identical.  Across
    {e different} shard counts, per-event content is preserved — network
    fault and jitter draws come from per-link keyed streams
    ({!Cm_net.Net.draws.Keyed}) and workload randomness from per-tag
    keyed streams ({!rng}), both pure functions of seed and name — but
    the {e interleaving} of causally unrelated same-window events, and
    therefore raw trace ids, may differ.  The canonical forms
    ({!canonical_lines}, {!trace_digest}) quotient exactly that away:
    events are rendered without ids (generated events name their trigger
    structurally rather than by id) and sorted.  Two runs of the same
    world agree on {!trace_digest} whenever their event {e sets} agree,
    which is the property the differential suite pins at shard counts
    1, 2, 4 and 7 against the unsharded sequential oracle.  The one
    caveat: two causally unrelated events at the {e same} instant whose
    handlers race for the same state can resolve differently across
    layouts; worlds compared across shard counts keep distinct times on
    distinct causal chains (the suites do, by construction).

    [shards = 1] (the config default) builds one plain {!Cm_core.System}
    and delegates everything to it — stream draws, dense trace ids, the
    exact sequential path every release before sharding ran, preserved
    as the differential oracle.  *)

module Fabric : sig
  type t

  val create :
    ?config:Cm_core.System.Config.t ->
    ?keyed_single:bool ->
    assign:(string -> int) ->
    Cm_rule.Item.locator ->
    t
  (** [create ~config ~assign locator] builds [config.shards] shard
      systems; [assign site] names the shard (in [[0, shards)]) that
      owns a site.  With [config.shards = 1] the fabric is a thin
      wrapper around one plain sequential {!Cm_core.System} — unless
      [keyed_single] is set, which builds the single system in
      shard-slot form (keyed network draws, shard-derived sim seed) so
      its behaviour is comparable across shard counts; the chaos
      harness uses this for its cross-[N] byte-identical reports.

      When [config.obs] is set, each shard gets its {e own} fresh
      registry (a shared one would race across domains); query merged
      counters with {!counter_value} / {!counter_total}, or a single
      shard's registry via {!system}.

      @raise Invalid_argument if [config.shards < 1], or if
      [config.monitor] is set with more than one shard (the streaming
      monitor attaches to a single trace; run it unsharded). *)

  val shard_count : t -> int

  val system : t -> int -> Cm_core.System.t
  (** The shard's underlying system — journals, recovery manager,
      per-shard registry, raw trace. *)

  val owner : t -> site:string -> Cm_core.System.t
  (** The system owning [site].  @raise Invalid_argument for a site the
      fabric has never seen. *)

  val shard_of : t -> site:string -> int

  (** {1 World assembly}

      Mirrors {!Cm_core.System}'s initialization protocol; each call is
      routed to the owning shard.  Assemble the whole world before
      {!run} — the fabric wires global routing (foreign sites resolve to
      their owning shell across shards) and global failure-notice peer
      lists at run start. *)

  val add_shell : t -> site:string -> Cm_core.Shell.t
  val shell_for : t -> site:string -> Cm_core.Shell.t

  val register_translator : t -> shell:Cm_core.Shell.t -> Cm_core.Cmi.t -> unit
  (** The translator's site joins the shard of [shell] (the [assign] of
      a translator-only site is not consulted: data without a shell of
      its own lives with the shell that serves it). *)

  val install : t -> Cm_core.Strategy.t -> unit
  (** Install on every shard; each shard keeps the rules whose sites it
      holds (auxiliary writes and periodic timers for foreign sites are
      the owning shard's job). *)

  (** {1 Workload scheduling} *)

  val at : t -> site:string -> float -> (unit -> unit) -> unit
  (** Schedule a callback on the owning shard's wheel at an absolute
      time.  The callback runs inside that shard's domain during {!run}
      and must touch only that shard's state (its shell, its emitters,
      its stores) — the same locality rule every shell callback already
      obeys. *)

  val rng : t -> tag:string -> Cm_util.Prng.t
  (** A keyed stream ([Cm_util.Prng.of_key] over the config seed and
      [tag]) — the same draws in the same order at every shard count.
      Derive one stream per independent workload concern. *)

  (** {1 Topology and faults}

      Fault {e state} must agree across shards at matching virtual
      times: a send checks the destination's liveness on the {e source}
      shard.  The schedule_* calls therefore pre-arm the transition on
      every shard's wheel at the same instant — the owning shard runs
      the full crash/recovery protocol, the others mirror the
      endpoint/partition flags. *)

  val set_latency :
    t -> from_site:string -> to_site:string -> Cm_net.Net.latency -> unit

  val set_faults :
    t -> from_site:string -> to_site:string -> Cm_net.Net.faults -> unit

  val set_default_faults : t -> Cm_net.Net.faults -> unit

  val schedule_crash : t -> site:string -> at:float -> unit
  val schedule_restart : t -> site:string -> at:float -> unit

  val schedule_partition :
    t -> from_site:string -> to_site:string -> at:float -> until:float -> unit

  (** {1 Execution} *)

  val lookahead : t -> float
  (** The conservative window the next {!run} would use: the minimum
      base latency over cross-shard directed links ([infinity] when no
      site pair crosses shards, and the network default base fills in
      for any cross-shard pair without an explicit override).  [<= 0.]
      announces the serialized fallback. *)

  val run : ?lookahead:float -> t -> until:float -> unit
  (** Run every shard to [until] (events at [until] inclusive, like
      {!Cm_core.System.run}): windowed parallel execution over
      [config.shards] domains when the lookahead is positive, safe
      serialization when it is not.  [?lookahead] overrides the computed
      window — it must not exceed the true minimum cross-shard latency
      or conservativeness is lost.  An exception raised inside a shard
      is re-raised here after the workers are joined. *)

  (** {1 Merged results} *)

  val merged_events : t -> Cm_rule.Event.t list
  (** All shards' trace events, sorted by (time, site, descriptor,
      kind, id).  Ids are the per-shard strided originals. *)

  val canonical_lines : t -> string list
  (** One line per event — [time site kind descriptor], no event id;
      generated events render their trigger structurally as
      [gen:<rule>@<trigger-time>@<trigger-site>@<trigger-desc>] —
      sorted.  Equal across shard layouts whenever the event sets are
      equal. *)

  val trace_digest : t -> string
  (** MD5 hex of {!canonical_lines} — the cross-layout comparison key
      pinned by the differential and golden suites. *)

  val counter_value : ?labels:Cm_core.Obs.labels -> t -> string -> int
  (** Sum of one labelled counter across every shard's registry. *)

  val counter_total : t -> string -> int
  (** Sum of {!Cm_core.Obs.counter_total} across shards. *)

  val events_processed : t -> int
  (** Total simulator callbacks across shards — the throughput
      numerator of experiment E20. *)

  val messages_forwarded : t -> int
  (** Cross-shard parcels exchanged so far (0 for a single shard). *)
end
