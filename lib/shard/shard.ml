module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module System = Cm_core.System
module Shell = Cm_core.Shell
module Obs = Cm_core.Obs
module Prng = Cm_util.Prng

module Fabric = struct
  (* One cross-shard message, captured on the source shard with its
     final delivery time (the send-side pipeline — counters, fault
     draws, FIFO hold-back — already ran over there). *)
  type parcel = {
    p_src : int;  (* source shard *)
    p_seq : int;  (* send order within the source shard *)
    p_from : string;
    p_to : string;
    p_at : float;
    p_msg : Cm_core.Msg.t;
  }

  type t = {
    seed : int;
    single : bool;  (* plain sequential delegation: the oracle path *)
    systems : System.t array;
    assign : string -> int;
    (* site -> (owning shard, primary site of the shell serving it).
       Covers shell sites (mapped to themselves) and translator sites
       (mapped to their serving shell). *)
    site_owner : (string, int * string) Hashtbl.t;
    outboxes : parcel list ref array;  (* per source shard, reversed *)
    seqs : int ref array;
    (* Cross-shard latency floor bookkeeping: explicit overrides by
       directed link; the network default covers the rest. *)
    overrides : (string * string, float) Hashtbl.t;
    default_base : float;
    mutable forwarded : int;
  }

  let shard_count t = Array.length t.systems
  let system t k = t.systems.(k)

  let shard_of t ~site =
    match Hashtbl.find_opt t.site_owner site with
    | Some (k, _) -> k
    | None ->
      if t.single then 0
      else begin
        let k = t.assign site in
        if k < 0 || k >= Array.length t.systems then
          invalid_arg
            (Printf.sprintf "Fabric: assign %S -> shard %d out of [0, %d)" site k
               (Array.length t.systems));
        k
      end

  let owner t ~site =
    match Hashtbl.find_opt t.site_owner site with
    | Some (k, _) -> t.systems.(k)
    | None -> invalid_arg ("Fabric.owner: unknown site " ^ site)

  let create ?(config = System.Config.default) ?(keyed_single = false) ~assign
      locator =
    let n = config.System.Config.shards in
    if n < 1 then invalid_arg "Fabric.create: config.shards must be >= 1";
    let single = n = 1 && not keyed_single in
    if config.System.Config.monitor && not single then
      invalid_arg
        "Fabric.create: the streaming monitor attaches to a single trace; \
         run monitored configurations at shards = 1";
    let systems =
      Array.init n (fun k ->
          let c =
            if single then config
            else begin
              (* Each shard gets its own registry when observability is
                 on — a single Obs.t shared across domains would race. *)
              let c = System.Config.with_shard_slot (k, n) config in
              match c.System.Config.obs with
              | None -> c
              | Some _ -> System.Config.with_obs (Obs.create ()) c
            end
          in
          System.create ~config:c locator)
    in
    let t =
      {
        seed = config.System.Config.seed;
        single;
        systems;
        assign;
        site_owner = Hashtbl.create 32;
        outboxes = Array.init n (fun _ -> ref []);
        seqs = Array.init n (fun _ -> ref 0);
        overrides = Hashtbl.create 16;
        default_base =
          (match config.System.Config.latency with
           | Some l -> l.Net.base
           | None -> Net.default_latency.Net.base);
        forwarded = 0;
      }
    in
    if not single then
      Array.iteri
        (fun k sys ->
          let net = System.net sys in
          Net.set_remote net
            ~remote_site:(fun site ->
              match Hashtbl.find_opt t.site_owner site with
              | Some (j, _) -> j <> k
              | None -> false)
            ~forward:(fun ~from_site ~to_site ~at msg ->
              let seq = t.seqs.(k) in
              incr seq;
              let ob = t.outboxes.(k) in
              ob :=
                {
                  p_src = k;
                  p_seq = !seq;
                  p_from = from_site;
                  p_to = to_site;
                  p_at = at;
                  p_msg = msg;
                }
                :: !ob))
        systems;
    t

  let add_shell t ~site =
    let k = shard_of t ~site in
    let shell = System.add_shell t.systems.(k) ~site in
    Hashtbl.replace t.site_owner site (k, site);
    shell

  let shell_for t ~site =
    match Hashtbl.find_opt t.site_owner site with
    | Some (k, _) -> System.shell t.systems.(k) ~site
    | None -> invalid_arg ("Fabric.shell_for: unknown site " ^ site)

  let register_translator t ~shell cmi =
    let shell_site = Shell.site shell in
    let k =
      match Hashtbl.find_opt t.site_owner shell_site with
      | Some (k, _) -> k
      | None ->
        invalid_arg
          ("Fabric.register_translator: shell site unknown to the fabric: "
         ^ shell_site)
    in
    System.register_translator t.systems.(k) ~shell cmi;
    Hashtbl.replace t.site_owner cmi.Cm_core.Cmi.site (k, shell_site)

  let install t strategy = Array.iter (fun sys -> System.install sys strategy) t.systems

  let at t ~site time f =
    Sim.schedule_at (System.sim (owner t ~site)) time f

  let rng t ~tag = Prng.of_key ~seed:t.seed ("fabric:" ^ tag)

  let set_latency t ~from_site ~to_site latency =
    Hashtbl.replace t.overrides (from_site, to_site) latency.Net.base;
    match Hashtbl.find_opt t.site_owner from_site with
    | Some (k, _) -> Net.set_latency (System.net t.systems.(k)) ~from_site ~to_site latency
    | None ->
      (* Source not placed yet: arm the link on every shard; only the
         eventual owner's copy is consulted. *)
      Array.iter
        (fun sys -> Net.set_latency (System.net sys) ~from_site ~to_site latency)
        t.systems

  let set_faults t ~from_site ~to_site faults =
    match Hashtbl.find_opt t.site_owner from_site with
    | Some (k, _) -> Net.set_faults (System.net t.systems.(k)) ~from_site ~to_site faults
    | None ->
      Array.iter
        (fun sys -> Net.set_faults (System.net sys) ~from_site ~to_site faults)
        t.systems

  let set_default_faults t faults =
    Array.iter (fun sys -> Net.set_default_faults (System.net sys) faults) t.systems

  (* Fault-state transitions are mirrored: the send-side liveness and
     partition checks run on the source shard, so every shard's network
     must agree on who is down when.  The owning shard runs the full
     System-level protocol (journal replay, epoch bump, failure notice
     under a durable config); the others only flip the endpoint flag. *)
  let schedule_crash t ~site ~at =
    let o = shard_of t ~site in
    Array.iteri
      (fun k sys ->
        Sim.schedule_at (System.sim sys) at (fun () ->
            if k = o then System.crash_site sys ~site
            else Net.crash_site (System.net sys) ~site))
      t.systems

  let schedule_restart t ~site ~at =
    let o = shard_of t ~site in
    Array.iteri
      (fun k sys ->
        Sim.schedule_at (System.sim sys) at (fun () ->
            if k = o then System.restart_site sys ~site
            else Net.restart_site (System.net sys) ~site))
      t.systems

  let schedule_partition t ~from_site ~to_site ~at ~until =
    Array.iter
      (fun sys ->
        Sim.schedule_at (System.sim sys) at (fun () ->
            Net.partition (System.net sys) ~from_site ~to_site ~until))
      t.systems

  (* Sites that actually terminate network traffic: shells register
     handlers at their primary site, and global routing resolves every
     other site to its serving shell — so the cross-shard latency floor
     ranges over ordered pairs of primary sites on distinct shards. *)
  let primary_counts t =
    let counts = Array.make (Array.length t.systems) 0 in
    Hashtbl.iter
      (fun site (k, prim) -> if String.equal site prim then counts.(k) <- counts.(k) + 1)
      t.site_owner;
    counts

  let lookahead t =
    if t.single then infinity
    else begin
      let counts = primary_counts t in
      let total = Array.fold_left ( + ) 0 counts in
      let cross_pairs =
        Array.fold_left (fun acc c -> acc + (c * (total - c))) 0 counts
      in
      if cross_pairs = 0 then infinity
      else begin
        let covered = ref 0 and min_override = ref infinity in
        Hashtbl.iter
          (fun (f, tt) base ->
            match
              Hashtbl.find_opt t.site_owner f, Hashtbl.find_opt t.site_owner tt
            with
            | Some (kf, pf), Some (kt, pt)
              when kf <> kt && String.equal pf f && String.equal pt tt ->
              incr covered;
              if base < !min_override then min_override := base
            | _ -> ())
          t.overrides;
        if !covered >= cross_pairs then !min_override
        else Float.min t.default_base !min_override
      end
    end

  (* Wire the global view into every shell before running: foreign
     sites route to their owning shell (each System only knows its own
     shard's shells), and failure/reset notices broadcast to every
     shell site in the federation, not just same-shard ones. *)
  let prepare t =
    if not t.single then begin
      let peers =
        Hashtbl.fold
          (fun site (_, prim) acc -> if String.equal site prim then site :: acc else acc)
          t.site_owner []
        |> List.sort String.compare
      in
      let route site =
        match Hashtbl.find_opt t.site_owner site with
        | Some (_, prim) -> prim
        | None -> site
      in
      Array.iter
        (fun sys ->
          List.iter
            (fun (_, shell) ->
              Shell.set_route shell route;
              Shell.set_peer_sites shell peers)
            (System.shells sys))
        t.systems
    end

  (* Drain every outbox and inject the parcels into their destination
     shards in one deterministic order: (delivery time, source shard,
     source send sequence).  Runs on the coordinating domain between
     barriers — the workers' writes happen-before via the barrier
     mutex, and the heap pushes here happen-before the next window. *)
  let exchange t =
    let parcels =
      Array.fold_left
        (fun acc ob ->
          let ps = !ob in
          ob := [];
          List.rev_append ps acc)
        [] t.outboxes
      |> List.sort (fun a b ->
             match Float.compare a.p_at b.p_at with
             | 0 -> (
               match Int.compare a.p_src b.p_src with
               | 0 -> Int.compare a.p_seq b.p_seq
               | c -> c)
             | c -> c)
    in
    List.iter
      (fun p ->
        let dst =
          match Hashtbl.find_opt t.site_owner p.p_to with
          | Some (k, _) -> k
          | None -> p.p_src (* unreachable: forward fires only for owned sites *)
        in
        Net.inject (System.net t.systems.(dst)) ~from_site:p.p_from ~to_site:p.p_to
          ~at:p.p_at p.p_msg)
      parcels;
    let n = List.length parcels in
    t.forwarded <- t.forwarded + n;
    n

  (* Safe serialization for the zero-lookahead degenerate case: always
     step the shard holding the globally earliest event (ties to the
     lowest shard index) and exchange after every step, so a same-
     instant cross-shard delivery becomes visible before the next pick.
     Single-domain; correct for any latency floor including zero. *)
  let run_serialized t ~until =
    let rec loop () =
      let best = ref None in
      Array.iteri
        (fun k sys ->
          match Sim.next_at (System.sim sys) with
          | Some a when a <= until -> (
            match !best with
            | Some (ba, _) when ba <= a -> ()
            | _ -> best := Some (a, k))
          | _ -> ())
        t.systems;
      match !best with
      | None -> ()
      | Some (_, k) ->
        ignore (Sim.step (System.sim t.systems.(k)));
        ignore (exchange t);
        loop ()
    in
    loop ();
    Array.iter (fun sys -> Sim.advance ~inclusive:true (System.sim sys) ~until) t.systems

  (* Barrier-synchronous lookahead windows over persistent worker
     domains.  Per window the coordinator publishes a target horizon,
     the workers advance their wheels to it in parallel, and the
     coordinator exchanges mailboxes before the next window — safe
     because a cross-shard message sent inside [[t, t+L)] delivers no
     earlier than [t+L]. *)
  let run_windowed t ~until ~l =
    let n = Array.length t.systems in
    let mu = Mutex.create () in
    let go = Condition.create () in
    let finished = Condition.create () in
    let generation = ref 0 in
    let target = ref 0.0 in
    let inclusive = ref false in
    let quit = ref false in
    let remaining = ref 0 in
    let failure = ref None in
    let worker k =
      let seen = ref 0 in
      let running = ref true in
      while !running do
        Mutex.lock mu;
        while (not !quit) && !generation = !seen do
          Condition.wait go mu
        done;
        if !quit then begin
          Mutex.unlock mu;
          running := false
        end
        else begin
          seen := !generation;
          let u = !target and inc = !inclusive in
          Mutex.unlock mu;
          (try Sim.advance ~inclusive:inc (System.sim t.systems.(k)) ~until:u
           with e -> (
             Mutex.lock mu;
             (match !failure with None -> failure := Some e | Some _ -> ());
             Mutex.unlock mu));
          Mutex.lock mu;
          decr remaining;
          if !remaining = 0 then Condition.broadcast finished;
          Mutex.unlock mu
        end
      done
    in
    let domains = Array.init n (fun k -> Domain.spawn (fun () -> worker k)) in
    let failed () =
      Mutex.lock mu;
      let f = !failure <> None in
      Mutex.unlock mu;
      f
    in
    let window ~inc u =
      Mutex.lock mu;
      target := u;
      inclusive := inc;
      remaining := n;
      incr generation;
      Condition.broadcast go;
      while !remaining > 0 do
        Condition.wait finished mu
      done;
      Mutex.unlock mu
    in
    let start =
      Array.fold_left (fun m sys -> Float.max m (Sim.now (System.sim sys))) 0.0 t.systems
    in
    let pending_by until =
      Array.exists
        (fun sys ->
          match Sim.next_at (System.sim sys) with
          | Some a -> a <= until
          | None -> false)
        t.systems
    in
    let rec windows now =
      if (not (failed ())) && now < until then begin
        let horizon = if now +. l < until then now +. l else until in
        window ~inc:false horizon;
        ignore (exchange t);
        windows horizon
      end
    in
    (* Final drain at the inclusive boundary: events at exactly [until]
       may seed cross-shard deliveries at [until] only if some latency
       is zero — in which case we are not in this mode — so each round
       strictly consumes the remaining <= until work and terminates. *)
    let rec drain () =
      if not (failed ()) then begin
        window ~inc:true until;
        ignore (exchange t);
        if pending_by until then drain ()
      end
    in
    windows start;
    drain ();
    Mutex.lock mu;
    quit := true;
    Condition.broadcast go;
    Mutex.unlock mu;
    Array.iter Domain.join domains;
    match !failure with Some e -> raise e | None -> ()

  let run ?lookahead:l t ~until =
    if t.single then System.run t.systems.(0) ~until
    else begin
      prepare t;
      let l = match l with Some l -> l | None -> lookahead t in
      if Array.length t.systems = 1 then
        (* keyed single: same wheel semantics as the sequential path *)
        System.run t.systems.(0) ~until
      else if l > 0.0 then run_windowed t ~until ~l
      else run_serialized t ~until
    end

  (* --- merged results ------------------------------------------------ *)

  let all_events t =
    Array.fold_left
      (fun acc sys -> acc @ Cm_rule.Trace.events (System.trace sys))
      [] t.systems

  let merged_events t =
    List.sort
      (fun (a : Cm_rule.Event.t) (b : Cm_rule.Event.t) ->
        match Float.compare a.time b.time with
        | 0 -> (
          match String.compare a.site b.site with
          | 0 -> (
            match
              String.compare
                (Cm_rule.Event.desc_to_string a.desc)
                (Cm_rule.Event.desc_to_string b.desc)
            with
            | 0 -> Int.compare a.id b.id
            | c -> c)
          | c -> c)
        | c -> c)
      (all_events t)

  (* Canonical, id-free rendering: raw event ids are strided per shard
     (k, k+N, ...) and so differ across layouts; a generated event's
     trigger is therefore named structurally — by the triggering
     event's time, site and descriptor — instead of by id.  Sorting the
     lines quotients away cross-shard interleaving of causally
     unrelated events; what remains is exactly the event set. *)
  let canonical_lines t =
    let evs = all_events t in
    let by_id = Hashtbl.create (List.length evs * 2) in
    List.iter (fun (e : Cm_rule.Event.t) -> Hashtbl.replace by_id e.id e) evs;
    let kind_token = function
      | Cm_rule.Event.Spontaneous -> "spont"
      | Cm_rule.Event.Generated { rule_id; trigger } -> (
        match Hashtbl.find_opt by_id trigger with
        | Some (te : Cm_rule.Event.t) ->
          Printf.sprintf "gen:%s@%.6f@%s@%s" rule_id te.time te.site
            (Cm_rule.Event.desc_to_string te.desc)
        | None -> Printf.sprintf "gen:%s@#%d" rule_id trigger)
    in
    List.map
      (fun (e : Cm_rule.Event.t) ->
        Printf.sprintf "%.6f %s %s %s" e.time e.site (kind_token e.kind)
          (Cm_rule.Event.desc_to_string e.desc))
      evs
    |> List.sort String.compare

  let trace_digest t =
    Digest.to_hex (Digest.string (String.concat "\n" (canonical_lines t)))

  let counter_value ?labels t name =
    Array.fold_left
      (fun acc sys -> acc + Obs.counter_value ?labels (System.obs sys) name)
      0 t.systems

  let counter_total t name =
    Array.fold_left
      (fun acc sys -> acc + Obs.counter_total (System.obs sys) name)
      0 t.systems

  let events_processed t =
    Array.fold_left (fun acc sys -> acc + Sim.events_processed (System.sim sys)) 0 t.systems

  let messages_forwarded t = t.forwarded
end
