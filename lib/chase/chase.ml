module Value = Cm_rule.Value
module Expr = Cm_rule.Expr
module Template = Cm_rule.Template
module Rule = Cm_rule.Rule
module Parser = Cm_rule.Parser
module Db = Cm_relational.Database

type term = Tvar of string | Tconst of Value.t

type atom = { a_base : string; a_args : term list }

type tgd = { t_body : atom list; t_head : atom list }

type egd = { e_body : atom list; e_eqs : (term * term) list }

type form = Tgd of tgd | Egd of egd

type dep = { d_label : string; d_form : form }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let term_to_string = function Tvar x -> x | Tconst v -> Value.to_string v

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.a_base (String.concat ", " (List.map term_to_string a.a_args))

let eq_to_string (a, b) = Printf.sprintf "%s == %s" (term_to_string a) (term_to_string b)

let to_string d =
  let body, head =
    match d.d_form with
    | Tgd t ->
      ( String.concat " && " (List.map atom_to_string t.t_body),
        String.concat " && " (List.map atom_to_string t.t_head) )
    | Egd e ->
      ( String.concat " && " (List.map atom_to_string e.e_body),
        String.concat " && " (List.map eq_to_string e.e_eqs) )
  in
  Printf.sprintf "%s: %s -> %s" d.d_label body head

let kind_name d = match d.d_form with Tgd _ -> "tgd" | Egd _ -> "egd"

let body_atoms d = match d.d_form with Tgd t -> t.t_body | Egd e -> e.e_body

let head_atoms d = match d.d_form with Tgd t -> t.t_head | Egd _ -> []

(* ------------------------------------------------------------------ *)
(* Variables and bases                                                 *)

let atom_vars a = List.filter_map (function Tvar x -> Some x | Tconst _ -> None) a.a_args

let atoms_vars atoms =
  (* first-occurrence order, no duplicates *)
  List.fold_left
    (fun acc a ->
      List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) acc (atom_vars a))
    [] atoms

let existential_vars t =
  let universal = atoms_vars t.t_body in
  List.filter (fun x -> not (List.mem x universal)) (atoms_vars t.t_head)

let body_bases d = List.sort_uniq compare (List.map (fun a -> a.a_base) (body_atoms d))

let eq_vars eqs =
  List.concat_map
    (fun (a, b) -> List.filter_map (function Tvar x -> Some x | Tconst _ -> None) [ a; b ])
    eqs

let written_bases d =
  match d.d_form with
  | Tgd t -> List.sort_uniq compare (List.map (fun a -> a.a_base) t.t_head)
  | Egd e ->
    let equated = eq_vars e.e_eqs in
    List.filter_map
      (fun a -> if List.exists (fun x -> List.mem x equated) (atom_vars a) then Some a.a_base else None)
      e.e_body
    |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Surface syntax                                                      *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

(* Optional "label:" prefix, recognized only when a bare identifier is
   immediately followed by ':' — atoms always open a parenthesis first. *)
let split_label text =
  let n = String.length text in
  let rec skip_spaces i = if i < n && text.[i] = ' ' then skip_spaces (i + 1) else i in
  let start = skip_spaces 0 in
  let rec ident_end i = if i < n && is_ident_char text.[i] then ident_end (i + 1) else i in
  let stop = ident_end start in
  if stop > start && stop < n && text.[stop] = ':' then
    (Some (String.sub text start (stop - start)), String.sub text (stop + 1) (n - stop - 1))
  else (None, text)

(* The first "->" outside a string literal splits body from head. *)
let split_arrow text =
  let n = String.length text in
  let rec scan i in_str =
    if i >= n then None
    else if text.[i] = '"' then scan (i + 1) (not in_str)
    else if (not in_str) && text.[i] = '-' && i + 1 < n && text.[i + 1] = '>' then
      Some (String.sub text 0 i, String.sub text (i + 2) (n - i - 2))
    else scan (i + 1) in_str
  in
  scan 0 false

let rec conjuncts = function
  | Expr.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let term_of_expr = function
  | Expr.Var x -> Ok (Tvar x)
  | Expr.Const v -> Ok (Tconst v)
  | e -> Error (Printf.sprintf "term %s must be a variable or a constant" (Expr.to_string e))

let atom_of_expr = function
  | Expr.Item (base, args) ->
    let rec go acc = function
      | [] -> Ok { a_base = base; a_args = List.rev acc }
      | arg :: rest -> (
        match term_of_expr arg with Ok t -> go (t :: acc) rest | Error m -> Error m)
    in
    go [] args
  | e ->
    Error
      (Printf.sprintf "%s is not an item atom — expected Base(t1, …, tk, v)" (Expr.to_string e))

let parse ?(label = "dep") text =
  let ( let* ) = Result.bind in
  let explicit, rest = split_label text in
  let label = Option.value explicit ~default:label in
  match split_arrow rest with
  | None -> Error "a dependency needs '->' between body and head"
  | Some (body_text, head_text) ->
    let parse_side what s =
      if String.trim s = "" then Error (Printf.sprintf "empty %s" what)
      else
        match Parser.parse_expr s with
        | e -> Ok (conjuncts e)
        | exception Parser.Parse_error { message; _ } ->
          Error (Printf.sprintf "cannot parse %s: %s" what message)
        | exception Invalid_argument m -> Error (Printf.sprintf "cannot parse %s: %s" what m)
    in
    let* body_exprs = parse_side "body" body_text in
    let* head_exprs = parse_side "head" head_text in
    let rec atoms acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
        match atom_of_expr e with Ok a -> atoms (a :: acc) rest | Error m -> Error m)
    in
    let* body = atoms [] body_exprs in
    let is_eq = function Expr.Binop (Expr.Eq, _, _) -> true | _ -> false in
    if List.exists is_eq head_exprs then
      (* EGD: every head conjunct must be an equality over body terms. *)
      let rec eqs acc = function
        | [] -> Ok (List.rev acc)
        | Expr.Binop (Expr.Eq, a, b) :: rest ->
          let* ta = term_of_expr a in
          let* tb = term_of_expr b in
          eqs ((ta, tb) :: acc) rest
        | e :: _ ->
          Error
            (Printf.sprintf "EGD heads mix no atoms with equalities: %s" (Expr.to_string e))
      in
      let* eqs = eqs [] head_exprs in
      let universal = atoms_vars body in
      let unbound = List.filter (fun x -> not (List.mem x universal)) (eq_vars eqs) in
      (match unbound with
      | [] -> Ok { d_label = label; d_form = Egd { e_body = body; e_eqs = eqs } }
      | x :: _ ->
        Error (Printf.sprintf "equality variable %s is not bound by the body" x))
    else
      let* head = atoms [] head_exprs in
      Ok { d_label = label; d_form = Tgd { t_body = body; t_head = head } }

(* ------------------------------------------------------------------ *)
(* The position graph and weak acyclicity                              *)

type position = { p_base : string; p_index : int }

let position_to_string p = Printf.sprintf "%s.%d" p.p_base p.p_index

type edge = { e_src : position; e_dst : position; e_special : bool; e_dep : string }

let var_positions atoms x =
  List.concat_map
    (fun a ->
      List.concat
        (List.mapi
           (fun i t -> if t = Tvar x then [ { p_base = a.a_base; p_index = i } ] else [])
           a.a_args))
    atoms

let dependency_graph deps =
  let edges =
    List.concat_map
      (fun d ->
        match d.d_form with
        | Egd _ -> []
        | Tgd t ->
          let universal = atoms_vars t.t_body in
          let head_vars = atoms_vars t.t_head in
          let shared = List.filter (fun x -> List.mem x head_vars) universal in
          let existential = existential_vars t in
          let special_dsts =
            List.concat_map (fun y -> var_positions t.t_head y) existential
          in
          List.concat_map
            (fun x ->
              let srcs = var_positions t.t_body x in
              let ordinary_dsts = var_positions t.t_head x in
              List.concat_map
                (fun src ->
                  List.map
                    (fun dst -> { e_src = src; e_dst = dst; e_special = false; e_dep = d.d_label })
                    ordinary_dsts
                  @ List.map
                      (fun dst -> { e_src = src; e_dst = dst; e_special = true; e_dep = d.d_label })
                      special_dsts)
                srcs)
            shared)
      deps
  in
  List.sort_uniq compare edges

type cycle = { c_positions : position list; c_labels : string list }

let special_cycles deps =
  let edges = dependency_graph deps in
  let positions =
    List.sort_uniq compare (List.concat_map (fun e -> [ e.e_src; e.e_dst ]) edges)
  in
  let pos_arr = Array.of_list positions in
  let n = Array.length pos_arr in
  let index_of = Hashtbl.create (max 8 n) in
  Array.iteri (fun i p -> Hashtbl.replace index_of p i) pos_arr;
  let succ = Array.make n [] in
  List.iter
    (fun e ->
      let s = Hashtbl.find index_of e.e_src and d = Hashtbl.find index_of e.e_dst in
      if not (List.mem d succ.(s)) then succ.(s) <- succ.(s) @ [ d ])
    edges;
  let comps = Cm_util.Graph.sccs n (fun v -> succ.(v)) in
  List.filter_map
    (fun comp ->
      let inside p = List.exists (fun v -> pos_arr.(v) = p) comp in
      let internal = List.filter (fun e -> inside e.e_src && inside e.e_dst) edges in
      if List.exists (fun e -> e.e_special) internal then
        Some
          {
            c_positions = List.sort compare (List.map (fun v -> pos_arr.(v)) comp);
            c_labels = List.sort_uniq compare (List.map (fun e -> e.e_dep) internal);
          }
      else None)
    comps
  |> List.sort compare

let weakly_acyclic deps = special_cycles deps = []

let interaction_cycles deps =
  let arr = Array.of_list deps in
  let n = Array.length arr in
  let writes = Array.map written_bases arr in
  let reads = Array.map body_bases arr in
  let succ v =
    let out = ref [] in
    for w = n - 1 downto 0 do
      if List.exists (fun b -> List.mem b reads.(w)) writes.(v) then out := w :: !out
    done;
    !out
  in
  let comps = Cm_util.Graph.sccs n succ in
  List.filter_map
    (fun comp ->
      let comp = List.sort compare comp in
      let members = List.map (fun v -> arr.(v)) comp in
      let has_egd = List.exists (fun d -> match d.d_form with Egd _ -> true | Tgd _ -> false) members in
      let has_ex_tgd =
        List.exists
          (fun d -> match d.d_form with Tgd t -> existential_vars t <> [] | Egd _ -> false)
          members
      in
      if Cm_util.Graph.cyclic succ comp && has_egd && has_ex_tgd then Some members else None)
    comps
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)

type const = Cval of Value.t | Lnull of int

let const_to_string = function Cval v -> Value.to_string v | Lnull n -> Printf.sprintf "⊥%d" n

let const_equal a b =
  match a, b with
  | Cval x, Cval y -> Value.equal x y
  | Lnull m, Lnull n -> m = n
  | Cval _, Lnull _ | Lnull _, Cval _ -> false

type fact = { f_base : string; f_args : const list }

let fact_to_string f =
  Printf.sprintf "%s(%s)" f.f_base (String.concat ", " (List.map const_to_string f.f_args))

module Instance = struct
  type t = {
    by_base : (string, fact list ref) Hashtbl.t;  (* reversed insertion order *)
    index : (fact, unit) Hashtbl.t;
    mutable count : int;
  }

  let create () = { by_base = Hashtbl.create 16; index = Hashtbl.create 64; count = 0 }

  let mem t f = Hashtbl.mem t.index f

  let add t f =
    if mem t f then false
    else begin
      Hashtbl.replace t.index f ();
      let cell =
        match Hashtbl.find_opt t.by_base f.f_base with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.replace t.by_base f.f_base cell;
          cell
      in
      cell := f :: !cell;
      t.count <- t.count + 1;
      true
    end

  let size t = t.count

  let of_base t base =
    match Hashtbl.find_opt t.by_base base with Some cell -> List.rev !cell | None -> []

  let bases t =
    Hashtbl.fold (fun base _ acc -> base :: acc) t.by_base [] |> List.sort compare

  let facts t = List.concat_map (of_base t) (bases t)

  let copy t =
    let t' = create () in
    List.iter (fun f -> ignore (add t' f)) (facts t);
    t'

  (* Rewrite every fact through [subst], preserving per-base insertion
     order; merged duplicates collapse. *)
  let rewrite t subst =
    let groups = List.map (fun b -> (b, of_base t b)) (bases t) in
    Hashtbl.reset t.by_base;
    Hashtbl.reset t.index;
    t.count <- 0;
    List.iter
      (fun (_, fs) ->
        List.iter (fun f -> ignore (add t { f with f_args = List.map subst f.f_args })) fs)
      groups

  let max_null t =
    Hashtbl.fold
      (fun f () acc ->
        List.fold_left
          (fun acc c -> match c with Lnull n -> max acc n | Cval _ -> acc)
          acc f.f_args)
      t.index 0

  let load_database t ~base_of_table db =
    let rec go = function
      | [] -> Ok ()
      | table :: rest -> (
        match base_of_table table with
        | None -> go rest
        | Some base -> (
          match Db.exec db (Printf.sprintf "SELECT * FROM %s" table) with
          | Ok (Db.Rows { rows; _ }) ->
            List.iter
              (fun row -> ignore (add t { f_base = base; f_args = List.map (fun v -> Cval v) row }))
              rows;
            go rest
          | Ok _ -> go rest
          | Error e ->
            Error (Printf.sprintf "loading table %s: %s" table (Db.error_to_string e))))
    in
    go (List.sort compare (Db.table_names db))
end

(* ------------------------------------------------------------------ *)
(* The restricted chase                                                *)

type repair =
  | Insert of { by : string; fact : fact }
  | Merge of { by : string; null_ : int; into : const }

let repair_to_string = function
  | Insert { by; fact } -> Printf.sprintf "insert %s  (by %s)" (fact_to_string fact) by
  | Merge { by; null_; into } ->
    Printf.sprintf "merge ⊥%d := %s  (by %s)" null_ (const_to_string into) by

type outcome = { rounds : int; repairs : repair list }

exception Chase_failure of string

let chase ?(max_rounds = 1000) deps inst =
  let next_null = ref (Instance.max_null inst + 1) in
  let subst : (int, const) Hashtbl.t = Hashtbl.create 8 in
  let rec resolve c =
    match c with
    | Cval _ -> c
    | Lnull n -> (
      match Hashtbl.find_opt subst n with
      | None -> c
      | Some c' ->
        let r = resolve c' in
        if r <> c' then Hashtbl.replace subst n r;
        r)
  in
  let repairs = ref [] in
  let changed = ref false in
  (* Homomorphisms of [atoms] into the current instance extending [env],
     in deterministic (program × insertion) order.  Fully materialized
     before any firing so mutation never perturbs the trigger set of the
     current dependency. *)
  let unify env atom fact =
    if List.length atom.a_args <> List.length fact.f_args then None
    else
      List.fold_left2
        (fun env t c ->
          match env with
          | None -> None
          | Some env -> (
            match t with
            | Tconst v -> if const_equal (Cval v) c then Some env else None
            | Tvar x -> (
              match List.assoc_opt x env with
              | Some c' -> if const_equal c' c then Some env else None
              | None -> Some ((x, c) :: env))))
        (Some env) atom.a_args fact.f_args
  in
  let rec homs env = function
    | [] -> [ env ]
    | a :: rest ->
      List.concat_map
        (fun f -> match unify env a f with Some env' -> homs env' rest | None -> [])
        (Instance.of_base inst a.a_base)
  in
  let resolve_env env = List.map (fun (x, c) -> (x, resolve c)) env in
  let rec satisfied env = function
    | [] -> true
    | a :: rest ->
      List.exists
        (fun f -> match unify env a f with Some env' -> satisfied env' rest | None -> false)
        (Instance.of_base inst a.a_base)
  in
  let term_const label env = function
    | Tconst v -> Cval v
    | Tvar x -> (
      match List.assoc_opt x env with
      | Some c -> c
      | None -> raise (Chase_failure (Printf.sprintf "dependency %s: unbound variable %s" label x)))
  in
  let fire_tgd label t env =
    let env = resolve_env env in
    if not (satisfied env t.t_head) then begin
      let fresh =
        List.map
          (fun y ->
            let n = !next_null in
            incr next_null;
            (y, Lnull n))
          (existential_vars t)
      in
      let env = fresh @ env in
      List.iter
        (fun a ->
          let f = { f_base = a.a_base; f_args = List.map (term_const label env) a.a_args } in
          if Instance.add inst f then begin
            repairs := Insert { by = label; fact = f } :: !repairs;
            changed := true
          end)
        t.t_head
    end
  in
  let apply_egd label e env =
    let env = resolve_env env in
    List.iter
      (fun (ta, tb) ->
        let ca = resolve (term_const label env ta) and cb = resolve (term_const label env tb) in
        if not (const_equal ca cb) then
          match ca, cb with
          | Cval x, Cval y ->
            raise
              (Chase_failure
                 (Printf.sprintf
                    "dependency %s forces distinct constants %s == %s — the instance is irreparable"
                    label (Value.to_string x) (Value.to_string y)))
          | Lnull n, (Cval _ as into) | (Cval _ as into), Lnull n | Lnull n, (Lnull _ as into)
            ->
            let n, into =
              (* null/null merges fold the younger null into the older *)
              match into with Lnull m when m > n -> (m, Lnull n) | _ -> (n, into)
            in
            Hashtbl.replace subst n into;
            Instance.rewrite inst resolve;
            repairs := Merge { by = label; null_ = n; into } :: !repairs;
            changed := true)
      e.e_eqs
  in
  let step d =
    match d.d_form with
    | Tgd t ->
      let triggers = homs [] t.t_body in
      List.iter (fun env -> fire_tgd d.d_label t env) triggers
    | Egd e ->
      let triggers = homs [] e.e_body in
      List.iter (fun env -> apply_egd d.d_label e env) triggers
  in
  let rec loop n =
    if n > max_rounds then
      Error (Printf.sprintf "chase did not reach a fixpoint within %d rounds" max_rounds)
    else begin
      changed := false;
      List.iter step deps;
      if !changed then loop (n + 1) else Ok n
    end
  in
  match loop 1 with
  | Ok rounds -> Ok { rounds; repairs = List.rev !repairs }
  | Error m -> Error m
  | exception Chase_failure m -> Error m

(* ------------------------------------------------------------------ *)
(* Compiling weakly-acyclic TGDs to CM rules                           *)

let to_rules ?(delta = 5.0) deps =
  let ( let* ) = Result.bind in
  if not (weakly_acyclic deps) then
    Error "program is not weakly acyclic — chase termination is unproven, refusing to compile"
  else
    let term_expr = function Tvar x -> Expr.Var x | Tconst v -> Expr.Const v in
    let split_atom label a =
      match List.rev a.a_args with
      | [] -> Error (Printf.sprintf "dependency %s: atom %s has no value argument" label a.a_base)
      | value :: rev_params -> Ok (List.rev rev_params, value)
    in
    let compile d =
      match d.d_form with
      | Egd _ ->
        Error
          (Printf.sprintf
             "dependency %s is an EGD — equality repairs have no CM-rule form, run the chase directly"
             d.d_label)
      | Tgd t -> (
        match t.t_body with
        | [] -> Error (Printf.sprintf "dependency %s has an empty body" d.d_label)
        | lead :: rest ->
          let* lead_params, lead_value = split_atom d.d_label lead in
          let lhs =
            Template.make "N" [ Expr.Item (lead.a_base, List.map term_expr lead_params); term_expr lead_value ]
          in
          let bound = ref (atom_vars lead) in
          let is_bound = function Tconst _ -> true | Tvar x -> List.mem x !bound in
          let* conds =
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                let* params, value = split_atom d.d_label a in
                match List.find_opt (fun p -> not (is_bound p)) params with
                | Some (Tvar x) ->
                  Error
                    (Printf.sprintf
                       "dependency %s: join parameter %s of %s is not bound by the preceding atoms"
                       d.d_label x a.a_base)
                | Some (Tconst _) | None ->
                  let item = Expr.Item (a.a_base, List.map term_expr params) in
                  let cond = Expr.Binop (Expr.Eq, item, term_expr value) in
                  (match value with Tvar x when not (List.mem x !bound) -> bound := x :: !bound | _ -> ());
                  Ok (acc @ [ cond ]))
              (Ok []) rest
          in
          let existential = existential_vars t in
          let* steps =
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                let* params, value = split_atom d.d_label a in
                (match
                   List.find_opt
                     (fun p -> match p with Tvar x -> List.mem x existential | Tconst _ -> false)
                     params
                 with
                | Some (Tvar x) ->
                  Error
                    (Printf.sprintf
                       "dependency %s: existential variable %s names a parameter of %s — the repair cannot pick which item to write"
                       d.d_label x a.a_base)
                | _ ->
                  let item_args = List.map term_expr params in
                  let* guard, value_expr =
                    match value with
                    | Tvar x when List.mem x existential ->
                      (* create-if-absent: the repair only promises existence,
                         the placeholder value is null *)
                      Ok
                        ( Expr.Unop (Expr.Not, Expr.Exists (a.a_base, item_args)),
                          Expr.Const Value.Null )
                    | Tvar x when not (List.mem x !bound) ->
                      Error
                        (Printf.sprintf
                           "dependency %s: head variable %s of %s is not bound by the body"
                           d.d_label x a.a_base)
                    | v -> Ok (Expr.Const (Value.Bool true), term_expr v)
                  in
                  let template = Template.make "WR" [ Expr.Item (a.a_base, item_args); value_expr ] in
                  Ok (acc @ [ { Rule.guard; template } ])))
              (Ok []) t.t_head
          in
          let lhs_cond =
            match conds with
            | [] -> None
            | c :: cs -> Some (List.fold_left (fun acc c -> Expr.Binop (Expr.And, acc, c)) c cs)
          in
          (match
             match lhs_cond with
             | None -> Rule.make ~id:d.d_label ~delta ~lhs (Rule.Steps steps)
             | Some lhs_cond -> Rule.make ~id:d.d_label ~lhs_cond ~delta ~lhs (Rule.Steps steps)
           with
          | rule -> Ok rule
          | exception Invalid_argument m ->
            Error (Printf.sprintf "dependency %s: %s" d.d_label m)))
    in
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* rule = compile d in
        Ok (acc @ [ rule ]))
      (Ok []) deps
