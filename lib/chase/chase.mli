(** Constraints as dependencies, and the chase that repairs them.

    The paper's repair actions are hand-written per rule (§3.2); this
    module generalizes them following the classical dependency view
    (Cruz-Filipe et al., "Integrity Constraints for General-Purpose
    Knowledge Bases"): a constraint is a {e tuple-generating dependency}
    (TGD, [body -> head atoms]) or an {e equality-generating dependency}
    (EGD, [body -> equalities]), and the {e chase} derives the minimal
    repair of an instance that violates it — inserting facts with
    labelled nulls for existential variables, or merging nulls forced
    equal by an EGD.

    {b Surface syntax} (CM-RID [dependency] lines, parsed by {!parse}):

    {v
    dependency copy_dep: Salary1(n, s) -> Salary2(n, s)
    dependency has_mgr:  Emp(n, s) -> Mgr(n, m)            # m existential
    dependency fd:       Emp(n, s) && Emp(n, s2) -> s == s2
    v}

    Atoms follow the {e value-last convention}: [Base(p1, …, pk, v)]
    states that item [Base(p1, …, pk)] exists and holds value [v] — an
    item declared with [k] parameters takes [k + 1] atom arguments.
    Terms are rule-language variables and constants; head variables
    absent from the body are existentially quantified.

    {b Static analysis.}  {!special_cycles} decides {e weak acyclicity}
    (Fagin et al.): build the position graph (one node per (base, index)
    pair; a TGD adds ordinary edges body-position → head-position for
    each universal variable and ⁎-marked {e special} edges into every
    existential position), run Tarjan SCC ({!Cm_util.Graph}, shared with
    the CON passes), and report every component a special edge stays
    inside — on weakly-acyclic programs the chase terminates on every
    instance.  {!interaction_cycles} flags EGD/TGD feedback loops where
    an EGD can merge nulls a TGD created and re-enable it — restricted-
    chase termination becomes order-dependent there.

    {b Execution.}  {!chase} runs the restricted (standard) chase over
    an {!Instance} — a dependency fires only on {e active} triggers,
    i.e. homomorphisms of its body that no extension already satisfies —
    and returns the repairs applied, in firing order.  {!to_rules}
    compiles a weakly-acyclic TGD program to ordinary CM rules so the
    existing Shell/dispatch/guarantee pipeline executes chase repairs
    unchanged. *)

type term = Tvar of string | Tconst of Cm_rule.Value.t

type atom = { a_base : string; a_args : term list }

type tgd = { t_body : atom list; t_head : atom list }

type egd = { e_body : atom list; e_eqs : (term * term) list }

type form = Tgd of tgd | Egd of egd

type dep = { d_label : string; d_form : form }

val parse : ?label:string -> string -> (dep, string) result
(** Parse one dependency from its surface text [\[label:\] body -> head].
    The body is a [&&]-conjunction of item atoms; the head is either all
    atoms (TGD) or all [==] equalities between body terms (EGD).
    [?label] names the dependency when the text carries no [label:]
    prefix (default ["dep"]).  Errors are human-readable one-liners. *)

val to_string : dep -> string
(** Round-trips with {!parse} (canonical spacing). *)

val atom_to_string : atom -> string
val term_to_string : term -> string

val kind_name : dep -> string
(** ["tgd"] or ["egd"] — for machine-readable reports. *)

val body_atoms : dep -> atom list
val head_atoms : dep -> atom list
(** [] for EGDs. *)

val existential_vars : tgd -> string list
(** Head variables not bound by the body, in first-occurrence order. *)

val body_bases : dep -> string list
(** Sorted, deduplicated bases of the body atoms. *)

val written_bases : dep -> string list
(** Sorted bases a repair for this dependency writes: head-atom bases
    (TGD), or bases of body atoms carrying an equated variable (EGD). *)

(** {1 The dependency (position) graph and weak acyclicity} *)

type position = { p_base : string; p_index : int }
(** Argument position [p_index] (0-based) of base [p_base]. *)

val position_to_string : position -> string
(** ["Base.i"]. *)

type edge = {
  e_src : position;
  e_dst : position;
  e_special : bool;  (** ⁎ edge into an existential position *)
  e_dep : string;  (** label of the TGD contributing the edge *)
}

val dependency_graph : dep list -> edge list
(** All position-graph edges, sorted and deduplicated (EGDs contribute
    none). *)

type cycle = {
  c_positions : position list;  (** the SCC, sorted *)
  c_labels : string list;
      (** labels of the dependencies whose edges stay inside the SCC,
          sorted and deduplicated *)
}

val special_cycles : dep list -> cycle list
(** The witnesses against weak acyclicity: every SCC of the position
    graph that keeps a special edge inside itself.  [[]] iff the program
    is weakly acyclic.  Deterministic. *)

val weakly_acyclic : dep list -> bool

val interaction_cycles : dep list -> dep list list
(** Dependency-level feedback loops that weak acyclicity does not rule
    out: SCCs of the graph with an edge [d1 → d2] whenever a base [d1]
    writes occurs in [d2]'s body, kept when the SCC is cyclic and mixes
    an EGD with an existential TGD (the EGD can merge nulls the TGD
    creates and re-fire it).  Each group lists its members in
    declaration order; groups are ordered by first member. *)

(** {1 Instances and the chase} *)

type const = Cval of Cm_rule.Value.t | Lnull of int
(** A database constant or a labelled null [⊥n]. *)

val const_to_string : const -> string

type fact = { f_base : string; f_args : const list }

val fact_to_string : fact -> string

module Instance : sig
  type t

  val create : unit -> t

  val add : t -> fact -> bool
  (** [false] when the fact was already present. *)

  val mem : t -> fact -> bool
  val size : t -> int

  val facts : t -> fact list
  (** Grouped by base (sorted), insertion order within each base. *)

  val copy : t -> t

  val load_database :
    t ->
    base_of_table:(string -> string option) ->
    Cm_relational.Database.t ->
    (unit, string) result
  (** Add one fact per row of every table [base_of_table] maps to a
      base, columns in table order with the value column last — the
      value-last convention lines up with items reading one column keyed
      by the rest.  Deterministic: tables sorted by name, rows in
      insertion order. *)
end

type repair =
  | Insert of { by : string; fact : fact }
      (** TGD [by] inserted [fact] (existential positions carry fresh
          labelled nulls) *)
  | Merge of { by : string; null_ : int; into : const }
      (** EGD [by] merged [⊥null_] into [into] everywhere *)

val repair_to_string : repair -> string

type outcome = { rounds : int; repairs : repair list }
(** [rounds] counts full passes over the program, including the final
    quiescent one; [repairs] is in firing order. *)

val chase : ?max_rounds:int -> dep list -> Instance.t -> (outcome, string) result
(** Run the restricted chase to fixpoint, mutating the instance.
    [Error] when two distinct constants are forced equal by an EGD (the
    instance is irreparable) or [?max_rounds] (default 1000) passes do
    not reach a fixpoint.  Deterministic: dependencies fire in program
    order, triggers in instance order, labelled nulls are numbered in
    creation order. *)

(** {1 Compiling dependencies to CM rules} *)

val to_rules : ?delta:float -> dep list -> (Cm_rule.Rule.t list, string) result
(** Compile a weakly-acyclic, EGD-free program to ordinary CM rules, one
    per TGD, labelled with the dependency's label: the leading body atom
    becomes the [N(Base(params), v)] trigger, the remaining body atoms
    become LHS-condition conjuncts [Base(params) == v] (binding their
    value variables left to right), and each head atom becomes a
    [WR(Base(params), v)] step with δ [?delta] (default 5) — an
    existential head value compiles to a [!E(Base(params))]-guarded
    write of [null] (create-if-absent); an existential in a parameter
    position is an error, as is a join parameter not bound when its atom
    is evaluated.  Refuses non-weakly-acyclic programs outright. *)
