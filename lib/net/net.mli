(** Simulated network between CM-Shell sites.

    The paper assumes a reliable network with in-order message delivery
    and in-order processing at each site (§5 footnote 4, Appendix A.2
    property 7) — guarantee proofs depend on it.  By default this module
    provides exactly that: per-ordered-pair FIFO channels over the
    simulation clock, with configurable latency.  Jitter is sampled per
    message but delivery order is still enforced (a delayed message holds
    back later ones, as on a TCP stream).

    The assumption can also be deliberately broken.  Each directed link
    carries a {!faults} record (message loss and duplication
    probabilities, both 0 by default) and can be partitioned for a time
    window; a whole site's endpoint can crash and later restart.  All
    fault draws come from the network's own deterministic PRNG stream, so
    a faulty run is exactly reproducible from its seed, and a zero-fault
    network draws nothing extra — seeded executions are byte-identical to
    the pre-fault-model behaviour.  {!Cm_core.Reliable} re-earns the
    paper's reliability assumption on top of a faulty network.

    Message payloads are a type parameter of the endpoint handlers; the
    CM layer sends rule-firing envelopes.  Per-link statistics feed the
    message-cost experiments (E9, E10, E13). *)

type 'msg t

type latency = {
  base : float;  (** seconds added to every message *)
  jitter : float;  (** uniform extra delay in [\[0, jitter)] *)
}

val default_latency : latency
(** 0.05 s base, 0.01 s jitter — a 1996 campus network. *)

type faults = {
  drop_prob : float;  (** probability a message is lost in transit *)
  dup_prob : float;  (** probability a message is delivered twice *)
}

val no_faults : faults
(** [{ drop_prob = 0.0; dup_prob = 0.0 }] — the paper's reliable network. *)

type draws =
  | Stream  (** draws come from one net-wide PRNG stream, in global send
                order — the classic sequential behaviour *)
  | Keyed of int
      (** draws come from one {!Cm_util.Prng.of_key} stream per directed
          link, named by [(seed, from, to)] and advanced in link-send
          order.  A directed link lives entirely at its source site, so
          the draw a message sees is a pure function of the link's own
          traffic — independent of how sites are partitioned across
          shards.  The sharded executor runs every shard's network in
          this mode (with the one global seed) so fault and jitter
          decisions agree across shard counts. *)

type drop_reason =
  | Unroutable  (** destination site never registered *)
  | Endpoint_down  (** source or destination site crashed *)
  | Partitioned  (** directed link inside a partition window *)
  | Faulty  (** random loss from the link's [drop_prob] *)

val drop_reason_to_string : drop_reason -> string
(** Stable lowercase name, used as a metric label. *)

val create :
  sim:Cm_sim.Sim.t ->
  ?latency:latency ->
  ?fifo:bool ->
  ?faults:faults ->
  ?draws:draws ->
  unit ->
  'msg t
(** [fifo] (default [true]) enforces per-link in-order delivery.
    Setting it to [false] lets jitter reorder messages — deliberately
    violating the paper's in-order assumption (Appendix A.2, property 7)
    for the ablation experiment that shows why the assumption matters.
    [faults] (default {!no_faults}) is the initial default fault model
    for every link.  [draws] (default {!draws.Stream}) selects where
    fault/jitter draws come from; a [Stream] network consumes exactly
    the PRNG stream it always did, draw for draw. *)

val set_latency : 'msg t -> from_site:string -> to_site:string -> latency -> unit
(** Override the default for one directed link. *)

val set_faults : 'msg t -> from_site:string -> to_site:string -> faults -> unit
(** Override the fault model for one directed link.  Local links
    (site to itself) never drop or duplicate regardless of settings. *)

val set_default_faults : 'msg t -> faults -> unit
(** Fault model for every link not individually overridden, including
    links created later. *)

val partition : 'msg t -> from_site:string -> to_site:string -> until:float -> unit
(** Take the directed link down until absolute simulation time [until]:
    messages sent while the window is open are dropped ([Partitioned]).
    Messages already in flight still arrive. *)

val partition_pair : 'msg t -> site_a:string -> site_b:string -> until:float -> unit
(** Symmetric partition of both directions between two sites. *)

val crash_site : 'msg t -> site:string -> unit
(** Take a site's endpoint down: messages from or to it are dropped
    ([Endpoint_down]), including in-flight messages that would arrive
    while it is down.  The handler registration survives for {!restart_site}. *)

val restart_site : 'msg t -> site:string -> unit

val site_is_down : 'msg t -> site:string -> bool

val register : 'msg t -> site:string -> ('msg -> unit) -> unit
(** Install the receive handler for a site.  @raise Invalid_argument if
    the site is already registered. *)

val send : 'msg t -> from_site:string -> to_site:string -> 'msg -> unit
(** Deliver to the destination handler after the link latency, FIFO per
    directed link, subject to the link's fault model.  Sending to the
    local site delivers with zero delay but still asynchronously (on the
    next simulation step).  Sending to a site that was never registered
    is recorded as an [Unroutable] drop — with crash/restart in play a
    missing destination is a runtime condition, not a configuration
    error, and must not abort the event loop.  A destination claimed by
    {!set_remote} instead runs the full send-side pipeline here
    (counters, down/partition checks, fault draws, FIFO hold-back) and
    leaves through the forward hook with its final delivery time. *)

val set_remote :
  'msg t ->
  remote_site:(string -> bool) ->
  forward:(from_site:string -> to_site:string -> at:float -> 'msg -> unit) ->
  unit
(** Cross-shard routing, installed by [Cm_shard]: sites with no local
    handler for which [remote_site] holds are forwarded rather than
    dropped as [Unroutable].  [forward] receives the absolute delivery
    time computed by this (source) network and must hand the message to
    the owning shard, which completes delivery with {!inject}. *)

val inject :
  'msg t -> from_site:string -> to_site:string -> at:float -> 'msg -> unit
(** Destination half of a cross-shard delivery: schedule the message for
    its precomputed delivery time on this network's wheel.  Only the
    delivery-time checks run here (a crashed destination records an
    in-flight [Endpoint_down] drop); the send-side pipeline already ran
    on the source shard. *)

val on_drop :
  'msg t -> (from_site:string -> to_site:string -> drop_reason -> unit) -> unit
(** Hook invoked on every dropped message (any reason), after the drop
    counters are updated.  Hook registration (all four kinds) is O(1)
    and hooks run in registration order. *)

val on_send : 'msg t -> (from_site:string -> to_site:string -> unit) -> unit
(** Hook invoked on every send attempt, before routing. *)

val on_deliver :
  'msg t -> (from_site:string -> to_site:string -> latency:float -> unit) -> unit
(** Hook invoked when a message copy is accepted onto a link, with the
    effective latency it will experience (including FIFO hold-back).
    The observability layer records per-link latency series from this.
    Hooks must not consume the simulation PRNG. *)

val on_duplicate : 'msg t -> (from_site:string -> to_site:string -> unit) -> unit
(** Hook invoked when the fault model duplicates a message. *)

val link_base_latency : 'msg t -> from_site:string -> to_site:string -> float
(** The configured base latency of the directed link, jitter excluded —
    the network default for links never overridden with {!set_latency},
    [0.0] from a site to itself.  A pure cost query (used by the read
    router's cheapest-replica comparison); it does not materialize the
    link. *)

val reachable : 'msg t -> from_site:string -> to_site:string -> bool
(** Both endpoints up and the directed link outside any open partition
    window at the current simulation time.  This is the router's
    availability test: probabilistic loss does not count — a lossy link
    is reachable, a partitioned or crashed one is not. *)

val messages_sent : 'msg t -> int
(** Send attempts, including ones that were then dropped. *)

val messages_between : 'msg t -> from_site:string -> to_site:string -> int

val messages_dropped : 'msg t -> int
val drops_by : 'msg t -> drop_reason -> int

val endpoint_down_at_send : 'msg t -> int
(** [Endpoint_down] drops where an endpoint was already down when the
    message was handed to the network. *)

val endpoint_down_in_flight : 'msg t -> int
(** [Endpoint_down] drops where the destination crashed while the
    message was on the wire — it was accepted onto the link and lost at
    delivery time.  [endpoint_down_at_send + endpoint_down_in_flight =
    drops_by Endpoint_down]; chaos debugging needs the two apart because
    only the in-flight case represents state the sender believed was
    safely en route. *)

val dropped_between : 'msg t -> from_site:string -> to_site:string -> int
val messages_duplicated : 'msg t -> int

val reset_counters : 'msg t -> unit
