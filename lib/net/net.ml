module Sim = Cm_sim.Sim

type latency = { base : float; jitter : float }

let default_latency = { base = 0.05; jitter = 0.01 }

type faults = { drop_prob : float; dup_prob : float }

let no_faults = { drop_prob = 0.0; dup_prob = 0.0 }

type draws = Stream | Keyed of int

type drop_reason = Unroutable | Endpoint_down | Partitioned | Faulty

let drop_reason_to_string = function
  | Unroutable -> "unroutable"
  | Endpoint_down -> "endpoint_down"
  | Partitioned -> "partitioned"
  | Faulty -> "faulty"

type 'msg link = {
  mutable link_latency : latency;
  (* Time at which the most recently sent message on this link will be
     delivered; later sends are delivered no earlier (FIFO). *)
  mutable last_delivery : float;
  mutable count : int;
  mutable link_faults : faults option;  (* None = follow the net default *)
  mutable down_until : float;  (* partition window: drop while now < down_until *)
  mutable dropped : int;
  (* Keyed-draw stream of this directed link, created on first draw.
     Its state advances in link-send order, which is deterministic for a
     deterministic execution — and independent of how sites are sharded,
     because a directed link lives entirely at its source site's shard. *)
  mutable link_rng : Cm_util.Prng.t option;
}

type 'msg t = {
  sim : Sim.t;
  default : latency;
  fifo : bool;
  rng : Cm_util.Prng.t;
  draws : draws;
  (* Cross-shard routing, installed by Cm_shard: [remote_site] says
     whether a site with no local handler lives on another shard, and
     [forward] hands it the message with its final delivery time. *)
  mutable remote_site : string -> bool;
  mutable forward :
    from_site:string -> to_site:string -> at:float -> 'msg -> unit;
  handlers : (string, 'msg -> unit) Hashtbl.t;
  links : (string * string, 'msg link) Hashtbl.t;
  down_sites : (string, unit) Hashtbl.t;
  mutable default_faults : faults;
  mutable sent : int;
  mutable dropped : int;
  mutable unroutable : int;
  mutable endpoint_down : int;
  (* Endpoint_down split: dropped at send time (an endpoint was already
     down when the message was handed to the network) vs. in flight (the
     destination crashed while the message was on the wire). *)
  mutable endpoint_down_in_flight : int;
  mutable partitioned : int;
  mutable faulty : int;
  mutable duplicated : int;
  drop_hooks : (from_site:string -> to_site:string -> drop_reason -> unit) Queue.t;
  send_hooks : (from_site:string -> to_site:string -> unit) Queue.t;
  deliver_hooks :
    (from_site:string -> to_site:string -> latency:float -> unit) Queue.t;
  duplicate_hooks : (from_site:string -> to_site:string -> unit) Queue.t;
}

let create ~sim ?(latency = default_latency) ?(fifo = true) ?(faults = no_faults)
    ?(draws = Stream) () =
  {
    sim;
    default = latency;
    fifo;
    (* The split happens whether or not the stream is used, so turning
       keyed draws on/off never shifts another component's stream. *)
    rng = Cm_util.Prng.split (Sim.rng sim);
    draws;
    remote_site = (fun _ -> false);
    forward = (fun ~from_site:_ ~to_site:_ ~at:_ _ -> ());
    handlers = Hashtbl.create 8;
    links = Hashtbl.create 16;
    down_sites = Hashtbl.create 4;
    default_faults = faults;
    sent = 0;
    dropped = 0;
    unroutable = 0;
    endpoint_down = 0;
    endpoint_down_in_flight = 0;
    partitioned = 0;
    faulty = 0;
    duplicated = 0;
    drop_hooks = Queue.create ();
    send_hooks = Queue.create ();
    deliver_hooks = Queue.create ();
    duplicate_hooks = Queue.create ();
  }

let link t ~from_site ~to_site =
  let key = (from_site, to_site) in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l =
      {
        link_latency = t.default;
        last_delivery = 0.0;
        count = 0;
        link_faults = None;
        down_until = 0.0;
        dropped = 0;
        link_rng = None;
      }
    in
    Hashtbl.replace t.links key l;
    l

let set_latency t ~from_site ~to_site latency =
  (link t ~from_site ~to_site).link_latency <- latency

let set_faults t ~from_site ~to_site faults =
  (link t ~from_site ~to_site).link_faults <- Some faults

let set_default_faults t faults = t.default_faults <- faults

let partition t ~from_site ~to_site ~until =
  let l = link t ~from_site ~to_site in
  l.down_until <- Float.max l.down_until until

let partition_pair t ~site_a ~site_b ~until =
  partition t ~from_site:site_a ~to_site:site_b ~until;
  partition t ~from_site:site_b ~to_site:site_a ~until

let crash_site t ~site = Hashtbl.replace t.down_sites site ()
let restart_site t ~site = Hashtbl.remove t.down_sites site
let site_is_down t ~site = Hashtbl.mem t.down_sites site

let register t ~site handler =
  if Hashtbl.mem t.handlers site then
    invalid_arg ("Net.register: site already registered: " ^ site);
  Hashtbl.replace t.handlers site handler

(* Hook registration is O(1) (hooks used to be appended to a list, which
   is quadratic when registering in a loop); queues preserve registration
   order on iteration. *)
let on_drop t hook = Queue.add hook t.drop_hooks
let on_send t hook = Queue.add hook t.send_hooks
let on_deliver t hook = Queue.add hook t.deliver_hooks
let on_duplicate t hook = Queue.add hook t.duplicate_hooks

let record_drop t ?link ?(in_flight = false) ~from_site ~to_site reason =
  t.dropped <- t.dropped + 1;
  (match reason with
   | Unroutable -> t.unroutable <- t.unroutable + 1
   | Endpoint_down ->
     t.endpoint_down <- t.endpoint_down + 1;
     if in_flight then t.endpoint_down_in_flight <- t.endpoint_down_in_flight + 1
   | Partitioned -> t.partitioned <- t.partitioned + 1
   | Faulty -> t.faulty <- t.faulty + 1);
  (match link with
   | Some (l : _ link) -> l.dropped <- l.dropped + 1
   | None -> ());
  Queue.iter (fun hook -> hook ~from_site ~to_site reason) t.drop_hooks

(* Stream of the keyed-draw mode: one Prng per directed link, named by
   (seed, from, to).  Advanced in link-send order, so the draws a link
   sees are a pure function of its own traffic — every shard layout of
   one simulation (the link always lives at its source site's shard)
   makes the same choices. *)
let link_stream ~seed l ~from_site ~to_site =
  match l.link_rng with
  | Some rng -> rng
  | None ->
    let rng = Cm_util.Prng.of_key ~seed (from_site ^ ">" ^ to_site) in
    l.link_rng <- Some rng;
    rng

(* A fault draw happens only when the matching probability is nonzero, so a
   zero-fault network consumes exactly the PRNG stream it did before the
   fault model existed — seeded runs stay byte-identical. *)
let draw t l ~from_site ~to_site prob =
  prob > 0.0
  && (match t.draws with
      | Stream -> Cm_util.Prng.float t.rng 1.0
      | Keyed seed ->
        Cm_util.Prng.float (link_stream ~seed l ~from_site ~to_site) 1.0)
     < prob

let jitter_draw t l ~from_site ~to_site bound =
  match t.draws with
  | Stream -> Cm_util.Prng.float t.rng bound
  | Keyed seed -> Cm_util.Prng.float (link_stream ~seed l ~from_site ~to_site) bound

(* Where a message copy goes once it has a delivery time: onto the local
   wheel, or — for a destination another shard owns — out through the
   cross-shard forward hook, which will {!inject} it over there. *)
type 'msg sink = Local of ('msg -> unit) | Forward

let deliver_copy t l ~from_site ~to_site sink msg =
  let now = Sim.now t.sim in
  let delay =
    if String.equal from_site to_site then 0.0
    else
      l.link_latency.base
      +. (if l.link_latency.jitter > 0.0 then
            jitter_draw t l ~from_site ~to_site l.link_latency.jitter
          else 0.0)
  in
  (* FIFO: never deliver before a previously sent message on this link. *)
  let at =
    if t.fifo then Float.max (now +. delay) l.last_delivery else now +. delay
  in
  l.last_delivery <- Float.max at l.last_delivery;
  Queue.iter (fun hook -> hook ~from_site ~to_site ~latency:(at -. now)) t.deliver_hooks;
  match sink with
  | Forward -> t.forward ~from_site ~to_site ~at msg
  | Local handler ->
    Sim.schedule_at t.sim at (fun () ->
        (* In-flight messages arriving at a crashed endpoint are lost. *)
        if Hashtbl.mem t.down_sites to_site then
          record_drop t ~link:l ~in_flight:true ~from_site ~to_site Endpoint_down
        else handler msg)

let send_via t ~from_site ~to_site sink msg =
  let l = link t ~from_site ~to_site in
  l.count <- l.count + 1;
  if Hashtbl.mem t.down_sites from_site || Hashtbl.mem t.down_sites to_site then
    record_drop t ~link:l ~from_site ~to_site Endpoint_down
  else if Sim.now t.sim < l.down_until then
    record_drop t ~link:l ~from_site ~to_site Partitioned
  else begin
    let local = String.equal from_site to_site in
    let faults = Option.value l.link_faults ~default:t.default_faults in
    (* Loss and duplication are drawn independently, in a fixed order, so
       runs with the same seed make the same choices. *)
    let lost = (not local) && draw t l ~from_site ~to_site faults.drop_prob in
    let duplicated = (not local) && draw t l ~from_site ~to_site faults.dup_prob in
    if lost then record_drop t ~link:l ~from_site ~to_site Faulty
    else deliver_copy t l ~from_site ~to_site sink msg;
    if duplicated then begin
      t.duplicated <- t.duplicated + 1;
      Queue.iter (fun hook -> hook ~from_site ~to_site) t.duplicate_hooks;
      deliver_copy t l ~from_site ~to_site sink msg
    end
  end

let send t ~from_site ~to_site msg =
  t.sent <- t.sent + 1;
  Queue.iter (fun hook -> hook ~from_site ~to_site) t.send_hooks;
  match Hashtbl.find_opt t.handlers to_site with
  | Some handler -> send_via t ~from_site ~to_site (Local handler) msg
  | None ->
    if t.remote_site to_site then send_via t ~from_site ~to_site Forward msg
    else record_drop t ~from_site ~to_site Unroutable

let set_remote t ~remote_site ~forward =
  t.remote_site <- remote_site;
  t.forward <- forward

let inject t ~from_site ~to_site ~at msg =
  (* Destination half of a cross-shard delivery: the source shard already
     ran the send-side pipeline (counters, fault draws, FIFO hold-back)
     and computed [at]; here only the delivery-time checks remain. *)
  Sim.schedule_at t.sim at (fun () ->
      if Hashtbl.mem t.down_sites to_site then
        record_drop t
          ~link:(link t ~from_site ~to_site)
          ~in_flight:true ~from_site ~to_site Endpoint_down
      else
        match Hashtbl.find_opt t.handlers to_site with
        | Some handler -> handler msg
        | None -> record_drop t ~from_site ~to_site Unroutable)

let link_base_latency t ~from_site ~to_site =
  if String.equal from_site to_site then 0.0
  else
    match Hashtbl.find_opt t.links (from_site, to_site) with
    | Some l -> l.link_latency.base
    | None -> t.default.base

let reachable t ~from_site ~to_site =
  (not (Hashtbl.mem t.down_sites from_site))
  && (not (Hashtbl.mem t.down_sites to_site))
  && (String.equal from_site to_site
     ||
     match Hashtbl.find_opt t.links (from_site, to_site) with
     | Some l -> Sim.now t.sim >= l.down_until
     | None -> true)

let messages_sent t = t.sent

let messages_between t ~from_site ~to_site =
  match Hashtbl.find_opt t.links (from_site, to_site) with
  | Some l -> l.count
  | None -> 0

let messages_dropped t = t.dropped

let drops_by t = function
  | Unroutable -> t.unroutable
  | Endpoint_down -> t.endpoint_down
  | Partitioned -> t.partitioned
  | Faulty -> t.faulty

let endpoint_down_in_flight t = t.endpoint_down_in_flight
let endpoint_down_at_send t = t.endpoint_down - t.endpoint_down_in_flight

let dropped_between t ~from_site ~to_site =
  match Hashtbl.find_opt t.links (from_site, to_site) with
  | Some l -> l.dropped
  | None -> 0

let messages_duplicated t = t.duplicated

let reset_counters t =
  t.sent <- 0;
  t.dropped <- 0;
  t.unroutable <- 0;
  t.endpoint_down <- 0;
  t.endpoint_down_in_flight <- 0;
  t.partitioned <- 0;
  t.faulty <- 0;
  t.duplicated <- 0;
  Hashtbl.iter
    (fun _ l ->
      l.count <- 0;
      l.dropped <- 0)
    t.links
