module Sim = Cm_sim.Sim
module Bibdb = Cm_sources.Bibdb
module Health = Cm_sources.Health
open Cm_rule

type t = {
  sim : Sim.t;
  db : Bibdb.t;
  site : string;
  emit : Cmi.emit;
  report : Cmi.failure_report;
  latency : float;
  delta : float;
  base : string;
}

let health t = Bibdb.health t.db

let rule_id t kind = Printf.sprintf "%s/%s/%s" t.site t.base kind

let key_of_item (item : Item.t) =
  match item.Item.params with
  | [ Value.Str key ] -> Some key
  | [ v ] -> Some (Value.to_string v)
  | _ -> None

let current_value t (item : Item.t) =
  if Health.mode (health t) = Health.Down then None
  else if not (String.equal item.Item.base t.base) then None
  else
    Option.bind (key_of_item item) (fun key ->
        Option.map (fun p -> Value.Str p.Bibdb.title) (Bibdb.lookup t.db key))

let interface_rules t =
  [ Interface.read ~id:(rule_id t "read") ~delta:t.delta (Interface.family t.base [ "k" ]) ]

let request t desc ~kind =
  let event = t.emit desc ~kind in
  match desc.Event.name, desc.Event.args with
  | "RR", [ Event.Ai item ] -> (
    if Health.mode (health t) = Health.Down then t.report Msg.Logical
    else
      match current_value t item with
      | None -> ()
      | Some v ->
        let provenance =
          Event.Generated { rule_id = rule_id t "read"; trigger = event.Event.id }
        in
        let delay = t.latency +. Health.extra_latency (health t) in
        Sim.schedule t.sim ~delay (fun () ->
            ignore (t.emit (Event.r item v) ~kind:provenance);
            if delay > t.delta then t.report Msg.Metric))
  | name, _ ->
    Logs.err (fun m ->
        m "translator %s: bibdb is read-only, cannot serve %s" t.site name)

let create ~sim ~db ~site ~emit ~report ?(latency = 0.5) ?delta ~base () =
  let delta = Option.value delta ~default:(latency *. 5.0) in
  { sim; db; site; emit; report; latency; delta; base }

let cmi t =
  {
    Cmi.site = t.site;
    name = "bibdb";
    owns = String.equal t.base;
    bases = [ t.base ];
    interface_rules = (fun () -> interface_rules t);
    current_value = current_value t;
    request = request t;
  }

let papers_by_author t author =
  Health.check (health t) ~name:"bibdb";
  Bibdb.by_author t.db author

let add_app t paper =
  Bibdb.add t.db paper;
  let item = Item.make t.base ~params:[ Value.Str paper.Bibdb.key ] in
  ignore (t.emit (Event.ins item) ~kind:Event.Spontaneous)

let withdraw_app t key =
  let existed = Bibdb.withdraw t.db key in
  if existed then begin
    let item = Item.make t.base ~params:[ Value.Str key ] in
    ignore (t.emit (Event.del item) ~kind:Event.Spontaneous)
  end;
  existed
