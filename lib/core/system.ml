module Sim = Cm_sim.Sim
module Net = Cm_net.Net
open Cm_rule

type guarantee_entry = {
  guarantee : Guarantee.t;
  sites : string list;
  mutable invalidated_by : (string * Msg.failure_kind) list;
}

type guarantee_handle = guarantee_entry

type t = {
  sim : Sim.t;
  net : Msg.t Net.t;
  reliable : Reliable.t option;
  trace : Trace.t;
  locator : Item.locator;
  shells : (string, Shell.t) Hashtbl.t;  (* by primary site *)
  site_to_shell : (string, Shell.t) Hashtbl.t;  (* any handled site *)
  mutable interface_rules : Rule.t list;
  mutable strategy_rules : Rule.t list;
  mutable guarantees : guarantee_entry list;
}

let create ?(seed = 42) ?latency ?fifo ?faults ?reliable locator =
  let sim = Sim.create ~seed () in
  let net = Net.create ~sim ?latency ?fifo ?faults () in
  let reliable =
    Option.map (fun config -> Reliable.create ~sim ~net ~config ()) reliable
  in
  {
    sim;
    net;
    reliable;
    trace = Trace.create ();
    locator;
    shells = Hashtbl.create 8;
    site_to_shell = Hashtbl.create 8;
    interface_rules = [];
    strategy_rules = [];
    guarantees = [];
  }

let sim t = t.sim
let net t = t.net
let reliable t = t.reliable
let trace t = t.trace
let locator t = t.locator

let refresh_routing t =
  let peers = Hashtbl.fold (fun site _ acc -> site :: acc) t.shells [] in
  let route site =
    match Hashtbl.find_opt t.site_to_shell site with
    | Some shell -> Shell.site shell
    | None -> site
  in
  Hashtbl.iter
    (fun _ shell ->
      Shell.set_peer_sites shell peers;
      Shell.set_route shell route)
    t.shells

let note_failure t ~origin kind =
  List.iter
    (fun entry ->
      if List.mem origin entry.sites then begin
        let relevant =
          match kind with
          | Msg.Logical -> true
          | Msg.Metric -> Guarantee.is_metric entry.guarantee
        in
        if relevant && not (List.mem (origin, kind) entry.invalidated_by) then
          entry.invalidated_by <- (origin, kind) :: entry.invalidated_by
      end)
    t.guarantees

let note_reset t ~origin =
  List.iter
    (fun entry ->
      entry.invalidated_by <-
        List.filter (fun (site, _) -> not (String.equal site origin)) entry.invalidated_by)
    t.guarantees

let add_shell t ~site =
  if Hashtbl.mem t.shells site then
    invalid_arg ("System.add_shell: duplicate site " ^ site);
  let shell =
    Shell.create ~sim:t.sim ~net:t.net ~reliable:t.reliable ~trace:t.trace
      ~locator:t.locator ~site
  in
  Hashtbl.replace t.shells site shell;
  Hashtbl.replace t.site_to_shell site shell;
  Shell.on_failure_notice shell (fun ~origin kind -> note_failure t ~origin kind);
  Shell.on_reset_notice shell (fun ~origin -> note_reset t ~origin);
  refresh_routing t;
  shell

let shell t ~site =
  match Hashtbl.find_opt t.site_to_shell site with
  | Some s -> s
  | None -> raise Not_found

let register_translator t ~shell (cmi : Cmi.t) =
  Shell.attach_translator shell cmi;
  Hashtbl.replace t.site_to_shell cmi.Cmi.site shell;
  t.interface_rules <- t.interface_rules @ cmi.Cmi.interface_rules ();
  refresh_routing t

let interface_rules t = t.interface_rules

let period_of_rule rule =
  match rule.Rule.lhs.Template.name, rule.Rule.lhs.Template.args with
  | "P", [ Expr.Const v ] -> Some (Value.to_float v)
  | _ -> None

let install t (strategy : Strategy.t) =
  t.strategy_rules <- t.strategy_rules @ strategy.Strategy.rules;
  Hashtbl.iter (fun _ shell -> Shell.install_strategy shell strategy.Strategy.rules)
    t.shells;
  List.iter
    (fun (item, v) ->
      let site = t.locator item in
      match Hashtbl.find_opt t.site_to_shell site with
      | Some shell -> Shell.write_aux shell item v
      | None ->
        invalid_arg
          (Printf.sprintf "System.install: no shell handles site %s for aux item %s"
             site (Item.to_string item)))
    strategy.Strategy.aux_init;
  List.iter
    (fun rule ->
      match period_of_rule rule with
      | None -> ()
      | Some period -> (
        match Rule.lhs_site rule t.locator with
        | Some site -> (
          match Hashtbl.find_opt t.site_to_shell site with
          | Some sh -> Shell.register_periodic sh ~site ~period ()
          | None ->
            invalid_arg
              ("System.install: no shell for polling rule site " ^ site))
        | None ->
          invalid_arg
            ("System.install: polling rule " ^ rule.Rule.id ^ " has no resolvable site")))
    strategy.Strategy.rules

let strategy_rules t = t.strategy_rules
let all_rules t = t.interface_rules @ t.strategy_rules

let declare_guarantee t ~sites guarantee =
  let entry = { guarantee; sites; invalidated_by = [] } in
  t.guarantees <- t.guarantees @ [ entry ];
  entry

let guarantee_valid entry = entry.invalidated_by = []
let guarantee_of entry = entry.guarantee
let invalidations entry = entry.invalidated_by

let run t ~until = Sim.run ~until t.sim

let timeline ?initial t = Timeline.of_trace ?initial t.trace

let check_guarantee ?initial ?ignore_after t guarantee =
  let tl = timeline ?initial t in
  Guarantee.check ?ignore_after ~horizon:(Sim.now t.sim) tl guarantee

let check_validity ?initial t =
  Validity.check ?initial ~rules:(all_rules t) ~locator:t.locator t.trace
