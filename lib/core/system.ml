module Sim = Cm_sim.Sim
module Net = Cm_net.Net
open Cm_rule

module Config = struct
  type t = {
    seed : int;
    latency : Net.latency option;
    fifo : bool;
    faults : Net.faults option;
    reliable : Reliable.config option;
    obs : Obs.t option;
    durability : Journal.durability;
    dispatch : Shell.dispatch;
    monitor : bool;
    monitor_tick : float;
    shards : int;
    shard_slot : (int * int) option;
  }

  let default =
    {
      seed = 42;
      latency = None;
      fifo = true;
      faults = None;
      reliable = None;
      obs = None;
      durability = Journal.None;
      dispatch = Shell.Indexed;
      monitor = false;
      monitor_tick = 1.0;
      shards = 1;
      shard_slot = None;
    }

  let seeded seed = { default with seed }
  let with_seed seed t = { t with seed }
  let with_latency latency t = { t with latency = Some latency }
  let with_fifo fifo t = { t with fifo }
  let with_faults faults t = { t with faults = Some faults }
  let with_reliable reliable t = { t with reliable = Some reliable }
  let with_obs obs t = { t with obs = Some obs }
  let with_durability durability t = { t with durability }
  let with_dispatch dispatch t = { t with dispatch }
  let with_monitor monitor t = { t with monitor }
  let with_monitor_tick monitor_tick t = { t with monitor_tick }

  let with_shards shards t =
    if shards < 1 then invalid_arg "Config.with_shards: shards must be >= 1";
    { t with shards }

  let with_shard_slot slot t = { t with shard_slot = Some slot }
end

type guarantee_entry = {
  guarantee : Guarantee.t;
  invalidated_by : (string * Msg.failure_kind, unit) Hashtbl.t;
      (* declared-site membership lives in [guarantees_by_site] buckets,
         so a failure probe never scans sites the entry doesn't mention *)
}

type guarantee_handle = guarantee_entry

module Guarantee_view = struct
  type survival = {
    es_epoch : int;
    es_guarantee : string;
    es_status : string;
    es_reason : string option;
  }

  type entry = {
    gv_source : string;
    gv_target : string;
    gv_master_site : string;
    gv_site : string;
    gv_report : Derive.report;
    gv_kappa : float option;
    gv_valid : bool;
    gv_invalidations : (string * Msg.failure_kind) list;
    gv_epoch_survival : survival list;
  }

  let metric_name = "(4) metric-follows"

  let kappa_of_report (r : Derive.report) =
    match r.Derive.metric_follows with
    | Derive.Proved { kappa; _ } -> kappa
    | Derive.Unprovable _ -> None

  let blocking_reason (r : Derive.report) =
    let unprovable = function
      | Derive.Unprovable _ -> true
      | Derive.Proved _ -> false
    in
    if
      unprovable r.Derive.follows && unprovable r.Derive.leads
      && unprovable r.Derive.strictly_follows
      && unprovable r.Derive.metric_follows
    then
      match r.Derive.follows with
      | Derive.Unprovable reason -> Some reason
      | Derive.Proved _ -> None
    else None

  let derive ~interfaces ~strategy ~source ~target =
    Derive.copy_guarantees ~interfaces ~strategy
      ~source:(Interface.family source [ "n" ])
      ~target:(Interface.family target [ "n" ])

  let static ~interfaces ~strategy ~master_site ~site ~source ~target =
    let report = derive ~interfaces ~strategy ~source ~target in
    {
      gv_source = source;
      gv_target = target;
      gv_master_site = master_site;
      gv_site = site;
      gv_report = report;
      gv_kappa = kappa_of_report report;
      gv_valid = true;
      gv_invalidations = [];
      gv_epoch_survival = [];
    }

  let survivals_metric_lost survivals =
    List.exists
      (fun s ->
        String.equal s.es_guarantee metric_name
        && (String.equal s.es_status "lost" || String.equal s.es_status "never"))
      survivals

  let metric_lost entry = survivals_metric_lost entry.gv_epoch_survival

  (* The skip-reason vocabulary is part of the routing contract: the
     router exports it as the [route_replica_skips] reason label and the
     fallback-matrix tests assert on it. *)
  let qualify ?slo ~kappa ~valid ~metric_lost () =
    (* The epoch verdict outranks the κ probe: an epoch that dropped the
       metric guarantee usually also makes κ unprovable, and "epoch-lost"
       is the reason that explains the transition. *)
    if metric_lost then Error "epoch-lost"
    else
      match kappa with
      | None -> Error "unprovable"
      | Some kappa ->
        if not valid then Error "invalidated"
        else (
        (* Inclusive on the boundary: a copy whose derived κ equals the
           SLO satisfies "within κ" — Derive's Sampled-channel κ already
           includes the sampling period, so both sides of the comparison
           are in the same end-to-end-seconds units. *)
        match slo with
        | Some s when not (kappa <= s) -> Error "over-slo"
        | _ -> Ok kappa)

  let qualifies ?slo entry =
    qualify ?slo ~kappa:entry.gv_kappa ~valid:entry.gv_valid
      ~metric_lost:(metric_lost entry) ()
end

(* Runtime state behind one [Guarantee_view.entry]: the derived report is
   replaced wholesale at an epoch cutover, the handle's invalidation table
   mutates in place via the §5 failure machinery, and the survival list
   always describes the most recent cutover only. *)
type copy_state = {
  cp_source : string;
  cp_target : string;
  cp_master_site : string;
  cp_site : string;
  mutable cp_report : Derive.report;
  cp_handle : guarantee_entry;
  mutable cp_survivals : Guarantee_view.survival list;
}

type t = {
  sim : Sim.t;
  net : Msg.t Net.t;
  reliable : Reliable.t option;
  journals : Journal.registry option;
  recovery : Recovery.t option;
  trace : Trace.t;
  locator : Item.locator;
  obs : Obs.t;
  shells : (string, Shell.t) Hashtbl.t;  (* by primary site *)
  site_to_shell : (string, Shell.t) Hashtbl.t;  (* any handled site *)
  dispatch : Shell.dispatch;
  mutable interface_rules : Rule.t list;
  mutable strategy_rules : Rule.t list;
  guarantees_by_site : (string, guarantee_entry list ref) Hashtbl.t;
      (* declaration-ordered bucket per declared site, so a failure at a
         site touches only the guarantees that mention it *)
  copies : (string * string, copy_state) Hashtbl.t;  (* (source, target) *)
  mutable copy_order : (string * string) list;  (* declaration order *)
  monitor : Monitor.t option;
  partitioned : bool;
      (* a shard-slot system holds only its shard's sites: strategy
         state for foreign sites is skipped, not an error — the shard
         that owns the site handles it *)
}

let create ?(config = Config.default) locator =
  (* A shard-slot system is one partition of a sharded world: its sim is
     seeded per shard (streams must not collide across wheels), its
     network draws are keyed per link (so fault/jitter decisions agree
     across shard layouts), and its trace ids are strided (globally
     unique without coordination).  Without a slot nothing changes. *)
  let sim =
    match config.Config.shard_slot with
    | None -> Sim.create ~seed:config.Config.seed ()
    | Some (k, _) -> Sim.create ~seed:(config.Config.seed + ((k + 1) * 1000003)) ()
  in
  let net =
    Net.create ~sim ?latency:config.Config.latency ~fifo:config.Config.fifo
      ?faults:config.Config.faults
      ?draws:
        (match config.Config.shard_slot with
         | None -> None
         | Some _ -> Some (Net.Keyed config.Config.seed))
      ()
  in
  let obs = Option.value config.Config.obs ~default:Obs.noop in
  if Obs.enabled obs then begin
    (* The network layer cannot depend on cm_core, so its neutral hooks
       are wired into the registry here. None of these consume the
       simulation PRNG. *)
    Net.on_send net (fun ~from_site ~to_site ->
        Obs.incr obs "net_sent" ~labels:[ ("from", from_site); ("to", to_site) ]);
    Net.on_drop net (fun ~from_site ~to_site reason ->
        Obs.incr obs "net_dropped"
          ~labels:
            [ ("from", from_site); ("to", to_site);
              ("reason", Net.drop_reason_to_string reason) ]);
    Net.on_duplicate net (fun ~from_site ~to_site ->
        Obs.incr obs "net_duplicated"
          ~labels:[ ("from", from_site); ("to", to_site) ]);
    Net.on_deliver net (fun ~from_site ~to_site ~latency ->
        Obs.observe obs "net_latency"
          ~labels:[ ("from", from_site); ("to", to_site) ]
          latency)
  end;
  let journals =
    match config.Config.durability with
    | Journal.None -> None
    | Journal.Journal | Journal.Journal_with_checkpoint ->
      Some (Journal.create_registry ~obs ())
  in
  let reliable =
    Option.map
      (fun rc -> Reliable.create ~sim ~net ~config:rc ~obs ?journals ())
      config.Config.reliable
  in
  let recovery =
    Option.map
      (fun reg ->
        Recovery.create ~sim ~net ?reliable ~journals:reg ~obs
          config.Config.durability)
      journals
  in
  let trace =
    match config.Config.shard_slot with
    | None -> Trace.create ()
    | Some (k, n) -> Trace.create ~first_id:k ~stride:n ()
  in
  let monitor =
    if config.Config.monitor then begin
      let m = Monitor.create ~sim ~obs ~tick:config.Config.monitor_tick () in
      Monitor.attach m trace;
      Some m
    end
    else None
  in
  {
    sim;
    net;
    reliable;
    journals;
    recovery;
    trace;
    locator;
    obs;
    shells = Hashtbl.create 8;
    site_to_shell = Hashtbl.create 8;
    dispatch = config.Config.dispatch;
    interface_rules = [];
    strategy_rules = [];
    guarantees_by_site = Hashtbl.create 8;
    copies = Hashtbl.create 8;
    copy_order = [];
    monitor;
    partitioned = config.Config.shard_slot <> None;
  }

let sim t = t.sim
let net t = t.net
let reliable t = t.reliable
let recovery t = t.recovery
let journals t = t.journals

let journal t ~site =
  Option.map (fun reg -> Journal.for_site reg ~site) t.journals

let trace t = t.trace
let locator t = t.locator
let obs t = t.obs
let monitor t = t.monitor

(* With a recovery manager, crash/restart go through the full §5
   protocol; without one they degrade to the raw network operations —
   the pre-durability behaviour. *)
let crash_site t ~site =
  (match t.monitor with
  | Some m ->
    (* Monitor state is volatile: watchers homed at the crashed site
       lose their in-memory state and stop hearing the live feed until
       [restart_site] relearns them from the journal. *)
    ignore
      (Monitor.crash_wipe m ~owns:(fun item -> String.equal (t.locator item) site))
  | None -> ());
  match t.recovery with
  | Some r -> Recovery.crash r ~site
  | None -> Net.crash_site t.net ~site

(* The restarted site's monitor watchers relearn their state from the
   journaled event history — every site's journal, merged by time, so
   cross-site guarantees (the common case: leader and follower live on
   different sites) see the leader's writes too. *)
let relearn_monitor t m =
  match t.journals with
  | None -> ()
  | Some reg ->
    let events =
      List.concat_map
        (fun site ->
          List.filter_map
            (function
              | Journal.Event { time; site; desc } -> (
                match Trace_io.parse_desc desc with
                | Ok desc ->
                  Some { Event.id = 0; time; site; desc; kind = Event.Spontaneous }
                | Error _ -> None)
              | _ -> None)
            (Journal.records (Journal.for_site reg ~site)))
        (Journal.sites reg)
    in
    Monitor.relearn m (List.stable_sort (fun a b -> compare a.Event.time b.Event.time) events)

let restart_site t ~site =
  (match t.recovery with
  | Some r -> Recovery.restart r ~site
  | None -> Net.restart_site t.net ~site);
  match t.monitor with Some m -> relearn_monitor t m | None -> ()

let refresh_routing t =
  let peers = Hashtbl.fold (fun site _ acc -> site :: acc) t.shells [] in
  let route site =
    match Hashtbl.find_opt t.site_to_shell site with
    | Some shell -> Shell.site shell
    | None -> site
  in
  Hashtbl.iter
    (fun _ shell ->
      Shell.set_peer_sites shell peers;
      Shell.set_route shell route)
    t.shells

let guarantees_at t site =
  match Hashtbl.find_opt t.guarantees_by_site site with
  | Some bucket -> !bucket
  | None -> []

let note_failure t ~origin kind =
  (* Only the guarantees declared over [origin] can be affected; the
     per-site bucket preserves declaration order, so the invalidation
     log and counters fire in the same order the full scan produced. *)
  List.iter
    (fun entry ->
      let relevant =
        match kind with
        | Msg.Logical -> true
        | Msg.Metric -> Guarantee.is_metric entry.guarantee
      in
      if relevant && not (Hashtbl.mem entry.invalidated_by (origin, kind))
      then begin
        Hashtbl.replace entry.invalidated_by (origin, kind) ();
        Obs.incr t.obs "system_guarantee_invalidations"
          ~labels:[ ("site", origin); ("kind", Msg.failure_kind_to_string kind) ];
        Logs.warn (fun m ->
            m
              ~tags:(Obs.log_tags ~site:origin ~time:(Sim.now t.sim) ())
              "guarantee %s invalidated by %s failure at %s"
              (Guarantee.name entry.guarantee)
              (Msg.failure_kind_to_string kind)
              origin)
      end)
    (guarantees_at t origin)

let note_reset t ~origin =
  Obs.incr t.obs "system_guarantee_resets" ~labels:[ ("site", origin) ];
  (* An entry can only hold [origin] in invalidated_by if it declared
     [origin] among its sites, so clearing its bucket suffices. *)
  List.iter
    (fun entry ->
      Hashtbl.remove entry.invalidated_by (origin, Msg.Logical);
      Hashtbl.remove entry.invalidated_by (origin, Msg.Metric))
    (guarantees_at t origin)

let add_shell t ~site =
  if Hashtbl.mem t.shells site then
    invalid_arg ("System.add_shell: duplicate site " ^ site);
  let shell =
    Shell.create
      {
        Shell.ctx_sim = t.sim;
        ctx_net = t.net;
        ctx_reliable = t.reliable;
        ctx_trace = t.trace;
        ctx_locator = t.locator;
        ctx_obs = t.obs;
        ctx_journals = t.journals;
        ctx_dispatch = t.dispatch;
      }
      ~site
  in
  Hashtbl.replace t.shells site shell;
  Hashtbl.replace t.site_to_shell site shell;
  Shell.on_failure_notice shell (fun ~origin kind -> note_failure t ~origin kind);
  Shell.on_reset_notice shell (fun ~origin -> note_reset t ~origin);
  Option.iter (fun r -> Recovery.register_shell r shell) t.recovery;
  refresh_routing t;
  shell

let shell t ~site =
  match Hashtbl.find_opt t.site_to_shell site with
  | Some s -> s
  | None -> raise Not_found

let register_translator t ~shell (cmi : Cmi.t) =
  Shell.attach_translator shell cmi;
  Hashtbl.replace t.site_to_shell cmi.Cmi.site shell;
  t.interface_rules <- t.interface_rules @ cmi.Cmi.interface_rules ();
  refresh_routing t

let interface_rules t = t.interface_rules

let period_of_rule rule =
  match rule.Rule.lhs.Template.name, rule.Rule.lhs.Template.args with
  | "P", [ Expr.Const v ] -> Some (Value.to_float v)
  | _ -> None

(* Strategy plumbing shared between config-time install and a runtime
   epoch cutover (Cm_core.Evolution): auxiliary-item initialization and
   periodic timers for P-rules. *)
let apply_aux_init t aux_init =
  List.iter
    (fun (item, v) ->
      let site = t.locator item in
      match Hashtbl.find_opt t.site_to_shell site with
      | Some shell -> Shell.write_aux shell item v
      | None when t.partitioned -> ()  (* the owning shard writes it *)
      | None ->
        invalid_arg
          (Printf.sprintf "System.install: no shell handles site %s for aux item %s"
             site (Item.to_string item)))
    aux_init

let register_strategy_periodics t rules =
  List.iter
    (fun rule ->
      match period_of_rule rule with
      | None -> ()
      | Some period -> (
        match Rule.lhs_site rule t.locator with
        | Some site -> (
          match Hashtbl.find_opt t.site_to_shell site with
          | Some sh -> Shell.register_periodic sh ~site ~period ()
          | None when t.partitioned -> ()  (* the owning shard ticks it *)
          | None ->
            invalid_arg
              ("System.install: no shell for polling rule site " ^ site))
        | None ->
          invalid_arg
            ("System.install: polling rule " ^ rule.Rule.id ^ " has no resolvable site")))
    rules

let install t (strategy : Strategy.t) =
  Obs.incr t.obs "system_strategy_installs"
    ~labels:[ ("strategy", strategy.Strategy.strategy_name) ];
  t.strategy_rules <- t.strategy_rules @ strategy.Strategy.rules;
  Hashtbl.iter (fun _ shell -> Shell.install_strategy shell strategy.Strategy.rules)
    t.shells;
  apply_aux_init t strategy.Strategy.aux_init;
  register_strategy_periodics t strategy.Strategy.rules

let shells t =
  Hashtbl.fold (fun site shell acc -> (site, shell) :: acc) t.shells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let strategy_rules t = t.strategy_rules
let all_rules t = t.interface_rules @ t.strategy_rules

let declare_guarantee t ~sites guarantee =
  let site_set = Hashtbl.create (max 1 (List.length sites)) in
  List.iter (fun s -> Hashtbl.replace site_set s ()) sites;
  let entry = { guarantee; invalidated_by = Hashtbl.create 4 } in
  (* Bucket under each distinct declared site, appended in declaration
     order (iterate the deduplicated set, not the raw list, so a site
     repeated in [sites] buckets the entry once). *)
  Hashtbl.iter
    (fun site () ->
      match Hashtbl.find_opt t.guarantees_by_site site with
      | Some bucket -> bucket := !bucket @ [ entry ]
      | None -> Hashtbl.replace t.guarantees_by_site site (ref [ entry ]))
    site_set;
  entry

let guarantee_valid entry = Hashtbl.length entry.invalidated_by = 0
let guarantee_of entry = entry.guarantee

let invalidations entry =
  (* Sorted keys: the hashtable's iteration order must not leak. *)
  Hashtbl.fold (fun inv () acc -> inv :: acc) entry.invalidated_by []
  |> List.sort compare

let declare_copies ?interfaces ?strategy t pairs =
  let interfaces = Option.value interfaces ~default:t.interface_rules in
  let strategy = Option.value strategy ~default:t.strategy_rules in
  List.iter
    (fun (source, target) ->
      let key = (source, target) in
      if not (Hashtbl.mem t.copies key) then begin
        let report = Guarantee_view.derive ~interfaces ~strategy ~source ~target in
        let master_site = t.locator (Item.make source) in
        let site = t.locator (Item.make target) in
        (* The live handle is the metric guarantee: it is what §5 failures
           invalidate (metric guarantees fall to both failure kinds), and
           what the read router polls per decision.  An unprovable copy
           still gets a handle — κ 0.0 is never consulted because routing
           skips it as "unprovable" first. *)
        let kappa =
          Option.value (Guarantee_view.kappa_of_report report) ~default:0.0
        in
        let handle =
          declare_guarantee t ~sites:[ master_site; site ]
            (Guarantee.Metric_follows
               ( { Guarantee.leader = Item.make source;
                   follower = Item.make target },
                 kappa ))
        in
        Hashtbl.replace t.copies key
          {
            cp_source = source;
            cp_target = target;
            cp_master_site = master_site;
            cp_site = site;
            cp_report = report;
            cp_handle = handle;
            cp_survivals = [];
          };
        t.copy_order <- t.copy_order @ [ key ];
        (* Under a monitored configuration every declared copy gets
           streaming §3.3 monitors: the three logical forms per
           parameter vector, plus metric-follows and the live staleness
           verdict when κ is proved. *)
        Option.iter
          (fun m ->
            Monitor.watch_copy m ~source ~target
              ~kappa:(Guarantee_view.kappa_of_report report))
          t.monitor
      end)
    pairs

let entry_of_copy cp =
  {
    Guarantee_view.gv_source = cp.cp_source;
    gv_target = cp.cp_target;
    gv_master_site = cp.cp_master_site;
    gv_site = cp.cp_site;
    gv_report = cp.cp_report;
    gv_kappa = Guarantee_view.kappa_of_report cp.cp_report;
    gv_valid = guarantee_valid cp.cp_handle;
    gv_invalidations = invalidations cp.cp_handle;
    gv_epoch_survival = cp.cp_survivals;
  }

let copy_view t ~source ~target =
  Option.map entry_of_copy (Hashtbl.find_opt t.copies (source, target))

let guarantee_view t =
  List.map (fun key -> entry_of_copy (Hashtbl.find t.copies key)) t.copy_order

let copy_qualifies ?slo t ~source ~target =
  (* Router hot path: per routed read.  No entry record, no sorted
     invalidation list — just the option/validity/survival probes. *)
  match Hashtbl.find_opt t.copies (source, target) with
  | None -> Error "undeclared"
  | Some cp ->
    Guarantee_view.qualify ?slo
      ~kappa:(Guarantee_view.kappa_of_report cp.cp_report)
      ~valid:(guarantee_valid cp.cp_handle)
      ~metric_lost:(Guarantee_view.survivals_metric_lost cp.cp_survivals)
      ()

let note_epoch_survival t ~source ~target ~report survivals =
  match Hashtbl.find_opt t.copies (source, target) with
  | None -> ()
  | Some cp ->
    cp.cp_report <- report;
    (* Only the most recent cutover: routing asks "did the *current*
       epoch keep the guarantee", not for the full history (the Obs
       gauges Evolution emits retain that). *)
    cp.cp_survivals <- survivals

let run t ~until = Sim.run ~until t.sim

let timeline ?initial t = Timeline.of_trace ?initial t.trace

let check_guarantee ?initial ?ignore_after t guarantee =
  let tl = timeline ?initial t in
  Guarantee.check ?ignore_after ~horizon:(Sim.now t.sim) tl guarantee

let check_validity ?initial t =
  Validity.check ?initial ~rules:(all_rules t) ~locator:t.locator t.trace
