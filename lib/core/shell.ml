module Sim = Cm_sim.Sim
module Net = Cm_net.Net
open Cm_rule

(* Rule matching strategy for Shell.occurred: the discrimination index
   is the production path; the naive linear scan is retained as the
   oracle for the differential test harness and the E15 benchmark. *)
type dispatch = Indexed | Naive

(* Everything a shell shares with its siblings — built once by
   System.create from its Config and handed to every add_shell. *)
type ctx = {
  ctx_sim : Sim.t;
  ctx_net : Msg.t Net.t;
  ctx_reliable : Reliable.t option;
  ctx_trace : Trace.t;
  ctx_locator : Item.locator;
  ctx_obs : Obs.t;
  ctx_journals : Journal.registry option;
  ctx_dispatch : dispatch;
}

(* One versioned rule program at this site (ISSUE 6).  Epoch 0 is the
   base program installed at configuration time; later epochs are staged
   by Cm_core.Evolution.  The phase vocabulary is Journal's so that the
   state machine journals and replays without translation. *)
type rule_epoch = {
  re_number : int;
  mutable re_phase : Journal.epoch_phase;
  mutable re_rules : Rule.t list;  (* registration order *)
  re_by_id : (string, Rule.t) Hashtbl.t;
}

(* A replayable epoch transition, as recovery derives it from the
   journal. *)
type epoch_op =
  | Op_propose of int * Rule.t list
  | Op_cutover of int
  | Op_retire of int

type t = {
  sim : Sim.t;
  net : Msg.t Net.t;
  send_msg : from_site:string -> to_site:string -> Msg.t -> unit;
  trace : Trace.t;
  locator : Item.locator;
  obs : Obs.t;
  site : string;
  dispatch_mode : dispatch;
  store : Store.t;
  journal : Journal.t option;
  mutable translators : Cmi.t list;
  translator_by_base : (string, Cmi.t) Hashtbl.t;
      (* first-attached owner per base — replaces the per-read
         List.find_opt scan over [translators] *)
  handled_sites : (string, unit) Hashtbl.t;
  mutable route : string -> string;
  epochs : (int, rule_epoch) Hashtbl.t;
  mutable active_epoch : int;
  mutable stale_epoch_rejections : int;
      (* Fire envelopes rejected because their origin epoch was retired
         (or unknown after a crash) — counted, never silently dropped *)
  mutable lhs_rules : Rule.t Rule_index.t;
      (* rules of the ACTIVE epoch whose LHS site this shell handles,
         discriminated by (LHS site, descriptor name, arg0 base); kept
         in sync incrementally across cutovers *)
  periodics : (string * float, unit) Hashtbl.t;
  custom_handlers : (string, (Event.t -> unit) list ref) Hashtbl.t;
  mutable failure_listeners : (origin:string -> Msg.failure_kind -> unit) list;
  mutable reset_listeners : (origin:string -> unit) list;
  mutable peer_sites : string list;  (* sorted: deterministic broadcasts *)
  mutable fires_sent : int;
  mutable fires_executed : int;
  mutable events_seen : int;
}

let site t = t.site
let sim t = t.sim
let trace t = t.trace
let translators t = t.translators

let tags ?span t = Obs.log_tags ~site:t.site ~time:(Sim.now t.sim) ?span ()

let set_route t route = t.route <- route

let set_peer_sites t sites =
  t.peer_sites <-
    List.sort_uniq String.compare
      (List.filter (fun s -> not (String.equal s t.site)) sites)

let local_state t =
  Expr.state_of_fun (fun item ->
      (* "Clock" is a built-in pseudo-item holding the local time; binding
         it in a guard (Clock == t) is how strategies timestamp auxiliary
         data such as the monitor's Tb (§6.3). *)
      if String.equal item.Item.base "Clock" then Some (Value.Float (Sim.now t.sim))
      else
        match Hashtbl.find_opt t.translator_by_base item.Item.base with
        | Some tr -> tr.Cmi.current_value item
        | None -> Store.get t.store item)

let eval_cond_safe t env cond =
  try Expr.eval_cond (local_state t) env cond with Expr.Eval_error _ -> None

(* --- rule epochs: program versions and the dispatch index --- *)

let active_program t = Hashtbl.find t.epochs t.active_epoch

let journal_append t r =
  match t.journal with Some j -> Journal.append j r | None -> ()

let lhs_site_if_handled t rule =
  let lhs_site = Rule.lhs_site rule t.locator in
  let handled =
    match lhs_site with
    | Some s -> Hashtbl.mem t.handled_sites s
    | None -> true
  in
  (lhs_site, handled)

let index_add t rule =
  let lhs_site, handled = lhs_site_if_handled t rule in
  if handled then Rule_index.add t.lhs_rules ~lhs:rule.Rule.lhs ~site:lhs_site rule

let index_remove t rule =
  let lhs_site, handled = lhs_site_if_handled t rule in
  if handled then
    ignore
      (Rule_index.remove t.lhs_rules ~lhs:rule.Rule.lhs ~site:lhs_site (fun r ->
           String.equal r.Rule.id rule.Rule.id))

(* Structural rule identity for the cutover delta: Rule.t is pure data
   and [to_string] is canonical, so equal strings mean the new epoch
   kept the rule unchanged. *)
let rule_eq a b = String.equal (Rule.to_string a) (Rule.to_string b)

let propose_epoch_aux t ~journal ~epoch rules =
  if Hashtbl.mem t.epochs epoch then
    invalid_arg (Printf.sprintf "Shell.propose_epoch: epoch %d already exists" epoch);
  if epoch <= t.active_epoch then
    invalid_arg "Shell.propose_epoch: epoch numbers must advance";
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if Hashtbl.mem by_id r.Rule.id then
        invalid_arg ("Shell.propose_epoch: duplicate rule id " ^ r.Rule.id);
      Hashtbl.replace by_id r.Rule.id r)
    rules;
  (* Write-ahead: the proposal (with its full program) hits stable
     storage before the volatile epoch table, so a crash mid-transition
     replays into the same state. *)
  if journal then
    journal_append t (Journal.Epoch_proposed { time = Sim.now t.sim; epoch; rules });
  Hashtbl.replace t.epochs epoch
    { re_number = epoch; re_phase = Journal.Ep_proposed; re_rules = rules;
      re_by_id = by_id }

let cutover_epoch_aux t ~journal ~epoch =
  match Hashtbl.find_opt t.epochs epoch with
  | None ->
    invalid_arg (Printf.sprintf "Shell.cutover_epoch: unknown epoch %d" epoch)
  | Some e when e.re_phase <> Journal.Ep_proposed ->
    invalid_arg "Shell.cutover_epoch: only a proposed epoch can cut over"
  | Some e ->
    if journal then
      journal_append t (Journal.Epoch_cutover { time = Sim.now t.sim; epoch });
    let old = active_program t in
    (* Incremental index update: rules the new program keeps verbatim
       retain their index entries (and registration order); removed or
       changed ones leave their buckets, added or changed ones are
       appended.  O(program delta), not an O(all rules) rebuild. *)
    List.iter
      (fun r ->
        match Hashtbl.find_opt e.re_by_id r.Rule.id with
        | Some r' when rule_eq r r' -> ()
        | _ -> index_remove t r)
      old.re_rules;
    List.iter
      (fun r' ->
        match Hashtbl.find_opt old.re_by_id r'.Rule.id with
        | Some r when rule_eq r r' -> ()
        | _ -> index_add t r')
      e.re_rules;
    old.re_phase <- Journal.Ep_draining;
    e.re_phase <- Journal.Ep_active;
    t.active_epoch <- epoch

let retire_epoch_aux t ~journal ~epoch =
  match Hashtbl.find_opt t.epochs epoch with
  | None ->
    invalid_arg (Printf.sprintf "Shell.retire_epoch: unknown epoch %d" epoch)
  | Some e when e.re_phase <> Journal.Ep_draining ->
    invalid_arg "Shell.retire_epoch: only a draining epoch can retire"
  | Some e ->
    if journal then
      journal_append t (Journal.Epoch_retired { time = Sim.now t.sim; epoch });
    e.re_phase <- Journal.Ep_retired

let propose_epoch t ~epoch rules = propose_epoch_aux t ~journal:true ~epoch rules
let cutover_epoch t ~epoch = cutover_epoch_aux t ~journal:true ~epoch
let retire_epoch t ~epoch = retire_epoch_aux t ~journal:true ~epoch

let restore_epoch_ops t ops =
  List.iter
    (function
      | Op_propose (epoch, rules) -> propose_epoch_aux t ~journal:false ~epoch rules
      | Op_cutover epoch -> cutover_epoch_aux t ~journal:false ~epoch
      | Op_retire epoch -> retire_epoch_aux t ~journal:false ~epoch)
    ops

let rule_epoch t = t.active_epoch

let epoch_phase t ~epoch =
  Option.map (fun e -> e.re_phase) (Hashtbl.find_opt t.epochs epoch)

let stale_epoch_rejections t = t.stale_epoch_rejections

let epoch_snapshot t =
  let entries =
    Hashtbl.fold
      (fun n e acc ->
        (* Epoch 0's rules are configuration, not journaled state, and a
           base epoch that is simply active carries no information. *)
        if n = 0 && e.re_phase = Journal.Ep_active then acc
        else (n, e.re_phase, (if n = 0 then [] else e.re_rules)) :: acc)
      t.epochs []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (entries, t.active_epoch)

(* Write-ahead: the store mutation is journaled before it is applied, so
   recovery replays exactly the writes that happened. *)
let journaled_store_set t item v =
  (match t.journal with
   | Some j ->
     Journal.append j
       (Journal.Store_write { time = Sim.now t.sim; item; value = v })
   | None -> ());
  Store.set t.store item v

(* --- event intake: record, then match strategy rules --- *)

(* Candidate rules for an event, already site-filtered.  Indexed pulls
   only the discrimination buckets the event can touch; Naive is the
   pre-index linear scan over every installed rule, retained as the
   oracle (both return registration order, so firing order is
   identical). *)
let candidate_rules t (event : Event.t) =
  match t.dispatch_mode with
  | Indexed ->
    Rule_index.select t.lhs_rules ~local_site:t.site ~event_site:event.site
      ~desc:event.desc
  | Naive ->
    Rule_index.select_naive t.lhs_rules ~local_site:t.site
      ~event_site:event.site

let rec occurred t (event : Event.t) =
  t.events_seen <- t.events_seen + 1;
  (* Obs arguments (label lists, stringified ids, the queue walk behind
     the gauge) are built eagerly at the call site even when the
     registry is the noop one — keep them off the disabled hot path. *)
  if Obs.enabled t.obs then begin
    Obs.incr t.obs "shell_events" ~labels:[ ("site", t.site) ];
    Obs.gauge t.obs "sim_queue_depth" (float_of_int (Sim.pending t.sim))
  end;
  List.iter
    (fun rule ->
      match Template.matches rule.Rule.lhs event.desc ~seed:Expr.empty_env with
      | None -> ()
      | Some env0 -> (
          match eval_cond_safe t env0 rule.Rule.lhs_cond with
          | None ->
            if Obs.enabled t.obs then
              Obs.incr t.obs "shell_guard_rejections"
                ~labels:
                  [ ("site", t.site); ("rule", rule.Rule.id); ("side", "lhs") ]
          | Some env ->
            let rhs_site =
              match Rule.rhs_site rule t.locator with
              | Some s -> s
              | None -> t.site  (* pure chaining rules execute locally *)
            in
            let to_site = t.route rhs_site in
            (* The firing decision is journaled before the envelope is on
               the wire: a crash between the two re-sends, never loses. *)
            (match t.journal with
             | Some j ->
               Journal.append j
                 (Journal.Fire_sent
                    { time = event.time; rule_id = rule.Rule.id; to_site;
                      trigger_id = event.id })
             | None -> ());
            t.fires_sent <- t.fires_sent + 1;
            (* Root of the end-to-end trace for this constraint
               evaluation; the id travels inside the envelope. *)
            let span =
              if not (Obs.enabled t.obs) then 0
              else begin
                Obs.incr t.obs "shell_fires_sent"
                  ~labels:[ ("site", t.site); ("rule", rule.Rule.id) ];
                Obs.span t.obs ~name:"fire" ~at:event.time
                  ~labels:
                    [ ("site", t.site); ("rule", rule.Rule.id);
                      ("to", to_site);
                      ("trigger", string_of_int event.id) ]
              end
            in
            t.send_msg ~from_site:t.site ~to_site
              (Msg.Fire
                 {
                   rule_id = rule.Rule.id;
                   rule_epoch = t.active_epoch;
                   env = Msg.env_to_list env;
                   trigger_id = event.id;
                   trigger_time = event.time;
                   span;
                 });
            if Obs.enabled t.obs then
              Obs.end_span t.obs ~id:span ~at:(Sim.now t.sim)))
    (candidate_rules t event);
  match Hashtbl.find_opt t.custom_handlers event.desc.Event.name with
  | Some handlers -> List.iter (fun h -> h event) !handlers
  | None -> ()

and emit_at t ~site desc ~kind =
  let event = Trace.record t.trace ~time:(Sim.now t.sim) ~site ~kind desc in
  (match t.journal with
   | Some j ->
     Journal.append j
       (Journal.Event
          { time = event.Event.time; site; desc = Event.desc_to_string desc })
   | None -> ());
  occurred t event;
  event

and dispatch t desc ~kind =
  match desc.Event.name with
  | "WR" | "RR" | "DR" -> (
    let base =
      match Event.item_of_desc desc with
      | Some item -> item.Item.base
      | None -> ""
    in
    match Hashtbl.find_opt t.translator_by_base base with
    | Some tr -> tr.Cmi.request desc ~kind
    | None ->
      Logs.warn (fun m ->
          m ~tags:(tags t) "shell %s: no translator owns %s; request dropped"
            t.site
            (Event.desc_to_string desc)))
  | "W" -> (
    match Event.written_value desc with
    | Some (item, v) ->
      let owned = Hashtbl.mem t.translator_by_base item.Item.base in
      if owned then
        Logs.warn (fun m ->
            m ~tags:(tags t)
              "shell %s: W on database item %s must go through WR; dropped"
              t.site
              (Item.to_string item))
      else begin
        journaled_store_set t item v;
        ignore (emit_at t ~site:t.site desc ~kind)
      end
    | None ->
      Logs.warn (fun m ->
          m ~tags:(tags t) "shell %s: malformed W event dropped" t.site))
  | _ ->
    (* Custom / chaining event: occurs at this shell's site. *)
    ignore (emit_at t ~site:t.site desc ~kind)

and handle_fire t ~rule_id ~rule_epoch ~env ~trigger_id ~parent_span =
  let epoch_entry = Hashtbl.find_opt t.epochs rule_epoch in
  let executable =
    match epoch_entry with
    | Some ({ re_phase = Journal.Ep_active | Journal.Ep_draining; _ } as e) ->
      Some e
    | Some _ | None -> None
  in
  match executable with
  | None ->
    (* The envelope's origin epoch is retired (or unknown, after a crash
       forgot un-journaled epochs): reject it and count it.  Executing
       it under a different program would re-interpret an old firing
       under new rules; dropping it silently would hide the loss. *)
    t.stale_epoch_rejections <- t.stale_epoch_rejections + 1;
    if Obs.enabled t.obs then
      Obs.incr t.obs "shell_stale_epoch_rejections"
        ~labels:[ ("site", t.site); ("rule", rule_id) ];
    Logs.warn (fun m ->
        m ~tags:(tags t ?span:(if parent_span > 0 then Some parent_span else None))
          "shell %s: Fire %s#%d rejected: rule epoch %d is %s" t.site rule_id
          trigger_id rule_epoch
          (match epoch_entry with
          | Some e -> Journal.epoch_phase_to_string e.re_phase
          | None -> "unknown"))
  | Some program -> (
    match Hashtbl.find_opt program.re_by_id rule_id with
    | None ->
      Logs.err (fun m ->
          m
            ~tags:(tags t ?span:(if parent_span > 0 then Some parent_span else None))
            "shell %s: Fire for unknown rule %s (epoch %d)" t.site rule_id
            rule_epoch)
    | Some rule ->
    t.fires_executed <- t.fires_executed + 1;
    (* The RHS half of the trace: child of the LHS "fire" span that
       travelled inside the envelope. *)
    let exec_span =
      if not (Obs.enabled t.obs) then 0
      else begin
        Obs.incr t.obs "shell_fires_executed"
          ~labels:[ ("site", t.site); ("rule", rule_id) ];
        Obs.span t.obs ~parent:parent_span ~name:"execute" ~at:(Sim.now t.sim)
          ~labels:[ ("site", t.site); ("rule", rule_id) ]
      end
    in
    let kind = Event.Generated { rule_id; trigger = trigger_id } in
    let rec steps env i = function
      | [] -> ()
      | (step : Rule.step) :: rest -> (
        match eval_cond_safe t env step.guard with
        | None ->
          if Obs.enabled t.obs then
            Obs.incr t.obs "shell_guard_rejections"
              ~labels:[ ("site", t.site); ("rule", rule_id); ("side", "rhs") ];
          steps env (i + 1) rest
        | Some env' -> (
          match Template.instantiate step.template env' with
          | desc ->
            let step_span =
              if not (Obs.enabled t.obs) then 0
              else
                Obs.span t.obs ~parent:exec_span ~name:"step" ~at:(Sim.now t.sim)
                  ~labels:
                    [ ("site", t.site); ("rule", rule_id);
                      ("index", string_of_int i);
                      ("event", desc.Event.name) ]
            in
            dispatch t desc ~kind;
            if Obs.enabled t.obs then
              Obs.end_span t.obs ~id:step_span ~at:(Sim.now t.sim);
            steps env' (i + 1) rest
          | exception Expr.Eval_error message ->
            Logs.err (fun m ->
                m
                  ~tags:
                    (tags t ?span:(if exec_span > 0 then Some exec_span else None))
                  "shell %s: rule %s step cannot instantiate: %s" t.site rule_id
                  message);
            steps env' (i + 1) rest))
    in
    steps (Msg.env_of_list env) 0 (Rule.rhs_steps rule);
    if Obs.enabled t.obs then
      Obs.end_span t.obs ~id:exec_span ~at:(Sim.now t.sim))

and handle_msg t = function
  | Msg.Fire { rule_id; rule_epoch; env; trigger_id; trigger_time = _; span } ->
    handle_fire t ~rule_id ~rule_epoch ~env ~trigger_id ~parent_span:span
  | Msg.Failure_notice { origin_site; kind } ->
    List.iter (fun f -> f ~origin:origin_site kind) t.failure_listeners
  | Msg.Reset_notice { origin_site } ->
    List.iter (fun f -> f ~origin:origin_site) t.reset_listeners
  | Msg.Suspect_down { suspect_site; origin_site = _ } ->
    (* The failure detector's verdict on a dead peer.  Without durable
       state this is a logical failure at that site (§5) — its updates
       may be lost entirely, not just late.  With a journal the site can
       "remember" what it owes on recovery, so the crash degrades to a
       metric failure: updates arrive late, never never. *)
    let kind = if Option.is_some t.journal then Msg.Metric else Msg.Logical in
    List.iter (fun f -> f ~origin:suspect_site kind) t.failure_listeners
  | Msg.Data { payload; _ } ->
    (* Transport envelope reaching the shell means the sender used the
       reliable protocol while this site was registered raw; unwrap so the
       application message is not lost (acks/ordering are unavailable). *)
    handle_msg t payload
  | Msg.Ack _ | Msg.Heartbeat _ -> ()

let create ctx ~site =
  let { ctx_sim = sim; ctx_net = net; ctx_reliable = reliable;
        ctx_trace = trace; ctx_locator = locator; ctx_obs = obs;
        ctx_journals = journals; ctx_dispatch = dispatch_mode } = ctx
  in
  let send_msg =
    match reliable with
    | Some r -> fun ~from_site ~to_site msg -> Reliable.send r ~from_site ~to_site msg
    | None -> fun ~from_site ~to_site msg -> Net.send net ~from_site ~to_site msg
  in
  let t =
    {
      sim;
      net;
      send_msg;
      trace;
      locator;
      obs;
      site;
      dispatch_mode;
      store = Store.create ();
      journal = Option.map (fun reg -> Journal.for_site reg ~site) journals;
      translators = [];
      translator_by_base = Hashtbl.create 16;
      handled_sites = Hashtbl.create 4;
      route = (fun s -> s);
      epochs = Hashtbl.create 4;
      active_epoch = 0;
      stale_epoch_rejections = 0;
      lhs_rules = Rule_index.create ();
      periodics = Hashtbl.create 4;
      custom_handlers = Hashtbl.create 8;
      failure_listeners = [];
      reset_listeners = [];
      peer_sites = [];
      fires_sent = 0;
      fires_executed = 0;
      events_seen = 0;
    }
  in
  Hashtbl.replace t.handled_sites site ();
  Hashtbl.replace t.epochs 0
    { re_number = 0; re_phase = Journal.Ep_active; re_rules = [];
      re_by_id = Hashtbl.create 16 };
  (match reliable with
   | Some r -> Reliable.register r ~site (handle_msg t)
   | None -> Net.register net ~site (handle_msg t));
  t

let attach_translator t (tr : Cmi.t) =
  t.translators <- t.translators @ [ tr ];
  (* First-attached translator wins per base, matching the List.find_opt
     over attachment order this index replaces. *)
  List.iter
    (fun base ->
      if not (Hashtbl.mem t.translator_by_base base) then
        Hashtbl.replace t.translator_by_base base tr)
    tr.bases;
  Hashtbl.replace t.handled_sites tr.site ()

let emitter_for t ~site : Cmi.emit = fun desc ~kind -> emit_at t ~site desc ~kind

let install_strategy t rules =
  (* Installs extend the currently active epoch — for a configured (not
     yet evolved) system that is the base program, epoch 0. *)
  let e = active_program t in
  List.iter
    (fun rule ->
      if Hashtbl.mem e.re_by_id rule.Rule.id then
        invalid_arg ("Shell.install_strategy: duplicate rule id " ^ rule.Rule.id);
      Hashtbl.replace e.re_by_id rule.Rule.id rule;
      e.re_rules <- e.re_rules @ [ rule ];
      index_add t rule)
    rules

let installed_rules t =
  let e = active_program t in
  Hashtbl.fold (fun _ r acc -> r :: acc) e.re_by_id []
  |> List.sort (fun a b -> compare a.Rule.id b.Rule.id)

let register_periodic t ?site ~period () =
  let site = Option.value site ~default:t.site in
  if not (Hashtbl.mem t.periodics (site, period)) then begin
    Hashtbl.replace t.periodics (site, period) ();
    Sim.every t.sim ~period
      (fun () -> ignore (emit_at t ~site (Event.p period) ~kind:Event.Spontaneous))
      ~cancel:(fun () -> false)
  end

let read_aux t item = Store.get t.store item

let write_aux t item v =
  journaled_store_set t item v;
  ignore (emit_at t ~site:t.site (Event.w item v) ~kind:Event.Spontaneous)

let on_custom t name handler =
  match Hashtbl.find_opt t.custom_handlers name with
  | Some handlers -> handlers := !handlers @ [ handler ]
  | None -> Hashtbl.replace t.custom_handlers name (ref [ handler ])

let on_failure_notice t f = t.failure_listeners <- t.failure_listeners @ [ f ]
let on_reset_notice t f = t.reset_listeners <- t.reset_listeners @ [ f ]

let report_failure t kind =
  List.iter (fun f -> f ~origin:t.site kind) t.failure_listeners;
  List.iter
    (fun peer ->
      t.send_msg ~from_site:t.site ~to_site:peer
        (Msg.Failure_notice { origin_site = t.site; kind }))
    t.peer_sites

let broadcast_reset t =
  List.iter (fun f -> f ~origin:t.site) t.reset_listeners;
  List.iter
    (fun peer ->
      t.send_msg ~from_site:t.site ~to_site:peer
        (Msg.Reset_notice { origin_site = t.site }))
    t.peer_sites

let fires_sent t = t.fires_sent
let fires_executed t = t.fires_executed
let events_seen t = t.events_seen
let rule_index_stats t = Rule_index.bucket_stats t.lhs_rules

(* -- crash-recovery hooks (driven by Cm_core.Recovery) -- *)

let journal t = t.journal

let reset_volatile t =
  Store.clear t.store;
  if t.active_epoch <> 0 || Hashtbl.length t.epochs > 1 then begin
    (* Rule epochs beyond the base program are volatile: a crashed site
       reboots on its configured program (epoch 0).  Recovery replays
       the journaled transitions to re-enter the epoch the site had
       actually reached — without a journal, the site keeps running the
       base program and stale-epoch Fires are rejected and counted
       rather than resurrecting the retired rules. *)
    let base = Hashtbl.find t.epochs 0 in
    Hashtbl.reset t.epochs;
    base.re_phase <- Journal.Ep_active;
    Hashtbl.replace t.epochs 0 base;
    t.active_epoch <- 0;
    t.lhs_rules <- Rule_index.create ();
    List.iter (fun r -> index_add t r) base.re_rules
  end

let restore_aux t item v =
  (* Replay path: re-apply a journaled write without re-emitting its
     event (the trace already has it) and without re-journaling it. *)
  Store.set t.store item v
