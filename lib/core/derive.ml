open Cm_rule

type verdict =
  | Proved of { kappa : float option; derivation : string list }
  | Unprovable of string

type report = {
  follows : verdict;
  leads : verdict;
  strictly_follows : verdict;
  metric_follows : verdict;
}

let verdict_to_string = function
  | Proved { kappa; derivation } ->
    let k = match kappa with Some k -> Printf.sprintf " (kappa = %g)" k | None -> "" in
    "PROVED" ^ k ^ "\n    " ^ String.concat "\n    " derivation
  | Unprovable reason -> "UNPROVABLE: " ^ reason

let report_to_string r =
  String.concat "\n"
    [
      "(1) follows:          " ^ verdict_to_string r.follows;
      "(2) leads:            " ^ verdict_to_string r.leads;
      "(3) strictly-follows: " ^ verdict_to_string r.strictly_follows;
      "(4) metric-follows:   " ^ verdict_to_string r.metric_follows;
    ]

(* ---- interface classification per item base ---- *)

type source_channel =
  | Complete of { delta : float; via : string }
  | Filtered of { delta : float; via : string }
  | Sampled of { period : float; delta : float; via : string }

let channel_event = function
  | Complete _ | Filtered _ -> "N"
  | Sampled { via; _ } ->
    (* periodic notify delivers N events; polling delivers R events *)
    if String.length via >= 4 && String.sub via 0 4 = "poll" then "R" else "N"

(* Worst-case observation bound.  A sampled channel (periodic notify,
   read+polling) can sit on a fresh value for a whole period before the
   next sample observes it, so the period is part of the bound — the
   "plus the sampling period" half of the §3.3.1 κ. *)
let channel_delta = function
  | Complete { delta; _ } | Filtered { delta; _ } -> delta
  | Sampled { period; delta; _ } -> period +. delta

let channel_describe = function
  | Complete { via; delta } ->
    Printf.sprintf "complete observation via %s (bound %g)" via delta
  | Filtered { via; delta } ->
    Printf.sprintf "filtered observation via %s (bound %g): some updates unseen" via delta
  | Sampled { via; period; delta } ->
    Printf.sprintf "sampled observation via %s every %gs (bound %g): intermediate values unseen"
      via period delta

let base_of_interface_rule rule =
  match Template.item_base rule.Rule.lhs with
  | Some base -> Some base
  | None ->
    (* periodic notify: the item is on the RHS *)
    List.find_map
      (fun (s : Rule.step) -> Template.item_base s.template)
      (Rule.rhs_steps rule)

let interfaces_of base rules =
  List.filter_map
    (fun rule ->
      match base_of_interface_rule rule with
      | Some b when String.equal b base ->
        Option.map (fun kind -> (kind, rule)) (Interface.classify rule)
      | _ -> None)
    rules

let period_of_p_template (tpl : Template.t) =
  match tpl.Template.name, tpl.Template.args with
  | "P", [ Expr.Const v ] -> Some (Value.to_float v)
  | _ -> None

(* ---- chain search ---- *)

type guard_status =
  | Unconditional
  | Cache_guarded of string
  | Conditional of string

type chain = {
  chain_rules : string list;
  chain_delta : float;
  status : guard_status;
}

let combine_status a b =
  match a, b with
  | Conditional m, _ | _, Conditional m -> Conditional m
  | Cache_guarded c, _ | _, Cache_guarded c -> Cache_guarded c
  | Unconditional, Unconditional -> Unconditional

let is_true = function Expr.Const (Value.Bool true) -> true | _ -> false

(* Detect the §3.2 cache pattern inside a rule's step list: a WR/event
   step guarded by [Cache <> v] followed by an unconditional [W(Cache, v)]
   refreshing the same cache with the same variable. *)
let cache_pattern_ok steps index guard value_var =
  match guard with
  | Expr.Binop (Expr.Ne, Expr.Item (cache, []), Expr.Var v)
  | Expr.Binop (Expr.Ne, Expr.Var v, Expr.Item (cache, [])) ->
    if not (String.equal v value_var) then None
    else
      let refresh_found =
        List.exists
          (fun (s : Rule.step) ->
            is_true s.Rule.guard
            &&
            match s.Rule.template.Template.name, s.Rule.template.Template.args with
            | "W", [ Expr.Item (c, []); Expr.Var v' ] ->
              String.equal c cache && String.equal v' value_var
            | _ -> false)
          (List.filteri (fun i _ -> i > index) steps)
      in
      if refresh_found then Some cache else None
  | _ -> None

(* An event shape: name + item base + which argument position carries the
   source's value (we only track the simple two-argument forms the menu
   strategies use: Name(item, value)). *)
type shape = { ev_name : string; ev_base : string }

let lhs_shape (rule : Rule.t) =
  match rule.Rule.lhs.Template.args with
  | [ Expr.Item (base, _); Expr.Var v ] ->
    Some ({ ev_name = rule.Rule.lhs.Template.name; ev_base = base }, v)
  | _ -> None

let find_chains ~strategy ~start_shape ~target_base =
  let found = ref [] in
  let rec search visited shape path delta status depth =
    if depth <= 5 && not (List.mem shape visited) then
      List.iter
        (fun rule ->
          match lhs_shape rule with
          | Some (s, value_var)
            when String.equal s.ev_name shape.ev_name
                 && String.equal s.ev_base shape.ev_base ->
            let status =
              if is_true rule.Rule.lhs_cond then status
              else combine_status status (Conditional (Expr.to_string rule.Rule.lhs_cond))
            in
            let steps = Rule.rhs_steps rule in
            List.iteri
              (fun i (step : Rule.step) ->
                let step_status =
                  if is_true step.Rule.guard then status
                  else
                    match cache_pattern_ok steps i step.Rule.guard value_var with
                    | Some cache -> combine_status status (Cache_guarded cache)
                    | None ->
                      combine_status status (Conditional (Expr.to_string step.Rule.guard))
                in
                match step.Rule.template.Template.name, step.Rule.template.Template.args with
                | "WR", [ Expr.Item (b, _); Expr.Var v ]
                  when String.equal b target_base && String.equal v value_var ->
                  found :=
                    {
                      chain_rules = path @ [ rule.Rule.id ];
                      chain_delta = delta +. rule.Rule.delta;
                      status = step_status;
                    }
                    :: !found
                | name, [ Expr.Item (b, _); Expr.Var v ]
                  when String.equal v value_var && name <> "W" ->
                  (* value forwarded under another event name: follow it *)
                  search (shape :: visited)
                    { ev_name = name; ev_base = b }
                    (path @ [ rule.Rule.id ])
                    (delta +. rule.Rule.delta) step_status (depth + 1)
                | _ -> ())
              steps
          | _ -> ())
        strategy
  in
  search [] start_shape [] 0.0 Unconditional 0;
  List.rev !found

(* ---- interference: any rule writing the target outside the chains ---- *)

let interfering_rules ~strategy ~target_base ~chain_rule_ids =
  List.filter
    (fun rule ->
      (not (List.mem rule.Rule.id chain_rule_ids))
      && List.exists
           (fun (step : Rule.step) ->
             match step.Rule.template.Template.name, step.Rule.template.Template.args with
             | ("WR" | "W"), (Expr.Item (b, _) :: _) -> String.equal b target_base
             | _ -> false)
           (Rule.rhs_steps rule))
    strategy

(* ---- the derivation ---- *)

let copy_guarantees ~interfaces ~strategy ~source ~target =
  let source_base = Constraint_def.base_of_pattern source in
  let target_base = Constraint_def.base_of_pattern target in
  let src_if = interfaces_of source_base interfaces in
  let tgt_if = interfaces_of target_base interfaces in
  (* 1. observation channels for the source *)
  let poll_channels =
    (* strategy rule P(p) -> RR(source) paired with a read interface *)
    List.filter_map
      (fun rule ->
        match period_of_p_template rule.Rule.lhs with
        | None -> None
        | Some period ->
          let polls_source =
            List.exists
              (fun (step : Rule.step) ->
                String.equal step.Rule.template.Template.name "RR"
                && Template.item_base step.Rule.template = Some source_base)
              (Rule.rhs_steps rule)
          in
          if not polls_source then None
          else
            List.find_map
              (fun (kind, r) ->
                if kind = Interface.Read then
                  Some
                    (Sampled
                       {
                         period;
                         delta = rule.Rule.delta +. r.Rule.delta;
                         via = "polling rule " ^ rule.Rule.id ^ " + read interface";
                       })
                else None)
              src_if)
      strategy
  in
  let channels =
    List.filter_map
      (fun (kind, r) ->
        match kind with
        | Interface.Notify ->
          Some (Complete { delta = r.Rule.delta; via = "notify interface " ^ r.Rule.id })
        | Interface.Conditional_notify ->
          Some (Filtered { delta = r.Rule.delta; via = "conditional notify " ^ r.Rule.id })
        | Interface.Periodic_notify ->
          let period =
            Option.value (period_of_p_template r.Rule.lhs) ~default:infinity
          in
          Some
            (Sampled
               { period; delta = r.Rule.delta; via = "periodic notify " ^ r.Rule.id })
        | _ -> None)
      src_if
    @ poll_channels
  in
  let write_delta =
    List.find_map
      (fun (kind, r) -> if kind = Interface.Write then Some r.Rule.delta else None)
      tgt_if
  in
  let target_quiet =
    List.exists (fun (kind, _) -> kind = Interface.No_spontaneous_write) tgt_if
  in
  (* 2. chains from each channel *)
  let chains_of channel =
    find_chains ~strategy
      ~start_shape:{ ev_name = channel_event channel; ev_base = source_base }
      ~target_base
  in
  let channel_chains = List.map (fun c -> (c, chains_of c)) channels in
  let live = List.filter (fun (_, chains) -> chains <> []) channel_chains in
  let all_chain_rule_ids =
    List.concat_map (fun (_, chains) -> List.concat_map (fun c -> c.chain_rules) chains) live
  in
  let interference = interfering_rules ~strategy ~target_base ~chain_rule_ids:all_chain_rule_ids in
  (* 3. verdicts *)
  match write_delta with
  | None ->
    let blocked = Unprovable ("no write interface on " ^ target_base) in
    { follows = blocked; leads = blocked; strictly_follows = blocked; metric_follows = blocked }
  | Some write_delta -> (
    match live with
    | [] ->
      let blocked =
        Unprovable
          (Printf.sprintf "no propagation chain from %s observations to WR(%s, ...)"
             source_base target_base)
      in
      { follows = blocked; leads = blocked; strictly_follows = blocked;
        metric_follows = blocked }
    | _ ->
      let conditional_chain =
        List.find_map
          (fun (_, chains) ->
            List.find_map
              (fun c ->
                match c.status with Conditional m -> Some m | _ -> None)
              chains)
          live
      in
      let describe_chains () =
        List.concat_map
          (fun (channel, chains) ->
            channel_describe channel
            :: List.map
                 (fun c ->
                   Printf.sprintf "chain [%s], rule bounds sum %g%s"
                     (String.concat " -> " c.chain_rules)
                     c.chain_delta
                     (match c.status with
                      | Unconditional -> ""
                      | Cache_guarded cache ->
                        Printf.sprintf " (cache pattern on %s: sound skip)" cache
                      | Conditional m -> " (CONDITIONAL on " ^ m ^ ")"))
                 chains)
          live
      in
      let base_derivation = describe_chains () in
      let follows =
        if not target_quiet then
          Unprovable
            (Printf.sprintf
               "%s may be updated spontaneously — declare a no-spontaneous-write \
                interface to rule out foreign values"
               target_base)
        else if interference <> [] then
          Unprovable
            ("other rules also write the target: "
            ^ String.concat ", " (List.map (fun r -> r.Rule.id) interference))
        else
          match conditional_chain with
          | Some m -> Unprovable ("a chain is guarded by an unrecognized condition: " ^ m)
          | None ->
            Proved
              {
                kappa = None;
                derivation =
                  base_derivation
                  @ [
                      "every write to " ^ target_base
                      ^ " carries a value observed at " ^ source_base ^ " unchanged";
                      "no spontaneous writes on " ^ target_base ^ " (declared interface)";
                    ];
              }
      in
      let leads =
        let complete =
          List.find_opt
            (fun (channel, chains) ->
              (match channel with Complete _ -> true | _ -> false)
              && List.exists
                   (fun c ->
                     match c.status with Unconditional | Cache_guarded _ -> true | Conditional _ -> false)
                   chains)
            live
        in
        match complete with
        | Some (channel, _) ->
          Proved
            {
              kappa = None;
              derivation =
                [
                  channel_describe channel;
                  "every spontaneous update is observed and forwarded unconditionally";
                  "write interface performs every requested write within "
                  ^ string_of_float write_delta ^ "s";
                ];
            }
        | None ->
          Unprovable
            "no complete observation channel: filtered/sampled channels can miss \
             values (§4.2.3)"
      in
      let strictly_follows =
        match follows with
        | Unprovable m -> Unprovable m
        | Proved _ ->
          let chain_count =
            List.fold_left (fun acc (_, chains) -> acc + List.length chains) 0 live
          in
          if chain_count > 1 then
            Unprovable
              (Printf.sprintf
                 "%d distinct propagation chains could race; ordering cannot be \
                  established" chain_count)
          else
            Proved
              {
                kappa = None;
                derivation =
                  base_derivation
                  @ [
                      "single chain + in-order message processing (Appendix A.2, p7) \
                       preserve update order";
                    ];
              }
      in
      let metric_follows =
        match follows with
        | Unprovable m -> Unprovable m
        | Proved _ ->
          let worst =
            List.fold_left
              (fun acc (channel, chains) ->
                List.fold_left
                  (fun acc c ->
                    Float.max acc (channel_delta channel +. c.chain_delta +. write_delta))
                  acc chains)
              0.0 live
          in
          Proved
            {
              kappa = Some worst;
              derivation =
                base_derivation
                @ [
                    Printf.sprintf
                      "kappa = observation bound + rule bounds + write bound = %g" worst;
                  ];
            }
      in
      { follows; leads; strictly_follows; metric_follows })
