(* Per-site write-ahead log backing crash recovery (ISSUE 3, paper §5).

   The paper's crash-to-metric-failure claim rests on the database being
   able to "remember" messages that need to be sent out upon recovery.
   This module is that memory, made concrete in the ARIES tradition:
   an append-only record stream per site (events received, firing
   decisions, store writes, reliable-transport send/ack/deliver state,
   incarnation changes) plus optional periodic checkpoints that bound
   how much of the stream recovery has to replay.

   The journal survives Net.crash_site by construction: it is owned by
   the recovery manager, not by the site's volatile state, modelling a
   log on stable storage.  Everything is deterministic — appends happen
   in simulation order and serialization is canonical — so two replays
   of the same run produce byte-identical logs. *)

module Item = Cm_rule.Item
module Value = Cm_rule.Value
module Rule = Cm_rule.Rule

type durability = None | Journal | Journal_with_checkpoint

let durability_to_string = function
  | None -> "none"
  | Journal -> "journal"
  | Journal_with_checkpoint -> "journal+checkpoint"

let durability_of_string s : durability option =
  match s with
  | "none" -> Some None
  | "journal" -> Some Journal
  | "journal+checkpoint" | "checkpoint" -> Some Journal_with_checkpoint
  | _ -> None

(* Receiver- and sender-side transport state for one peer, as frozen by
   a checkpoint.  [unacked] and [delivered_mids] are in ascending order
   so checkpoints serialize canonically. *)
type link_state = {
  peer : string;
  next_mid : int;
  unacked : (int * int * int * Msg.t) list;  (* mid, epoch, seq, payload *)
  in_epoch : int;  (* epoch of the last inbound slot consumed from [peer] *)
  in_expected : int;  (* next seq expected from [peer] within [in_epoch] *)
  delivered_mids : int list;
}

(* Lifecycle of a rule epoch as recorded on stable storage; mirrors
   Shell's per-site state machine so recovery can replay a crashed site
   back into the epoch it was actually running. *)
type epoch_phase = Ep_proposed | Ep_active | Ep_draining | Ep_retired

let epoch_phase_to_string = function
  | Ep_proposed -> "proposed"
  | Ep_active -> "active"
  | Ep_draining -> "draining"
  | Ep_retired -> "retired"

type record =
  | Event of { time : float; site : string; desc : string }
  | Fire_sent of {
      time : float;
      rule_id : string;
      to_site : string;
      trigger_id : int;
    }
  | Store_write of { time : float; item : Item.t; value : Value.t }
  | Outbound of {
      time : float;
      to_site : string;
      mid : int;
      epoch : int;
      seq : int;
      payload : Msg.t;
    }
  | Acked of { time : float; to_site : string; mid : int }
  | Delivered of {
      time : float;
      from_site : string;
      epoch : int;
      seq : int;
      mid : int;
      applied : bool;  (* false: slot consumed but payload was a mid-dup *)
    }
  | Restarted of { time : float; incarnation : int }
  | Epoch_proposed of { time : float; epoch : int; rules : Rule.t list }
  | Epoch_cutover of { time : float; epoch : int }
  | Epoch_retired of { time : float; epoch : int }
  | Epoch_rollback of {
      time : float;
      from_epoch : int;  (* the cutover being undone *)
      to_epoch : int;  (* the epoch whose program is re-proposed *)
      reason : string;
    }
  | Checkpoint of {
      time : float;
      incarnation : int;
      store : (Item.t * Value.t) list;  (* in item order *)
      links : link_state list;  (* in peer order *)
      rule_epochs : (int * epoch_phase * Rule.t list) list;
          (* epochs other than a sole base epoch, ascending; epoch 0's
             rules are configuration and serialize as [] *)
      active_epoch : int;
    }

let record_kind = function
  | Event _ -> "event"
  | Fire_sent _ -> "fire_sent"
  | Store_write _ -> "store_write"
  | Outbound _ -> "outbound"
  | Acked _ -> "acked"
  | Delivered _ -> "delivered"
  | Restarted _ -> "restarted"
  | Epoch_proposed _ -> "epoch_proposed"
  | Epoch_cutover _ -> "epoch_cutover"
  | Epoch_retired _ -> "epoch_retired"
  | Epoch_rollback _ -> "epoch_rollback"
  | Checkpoint _ -> "checkpoint"

let link_state_to_string l =
  Printf.sprintf "%s next_mid=%d unacked=[%s] in=e%d/s%d mids=[%s]" l.peer
    l.next_mid
    (String.concat ";"
       (List.map
          (fun (mid, epoch, seq, payload) ->
            Printf.sprintf "m%d:e%d:s%d:%s" mid epoch seq (Msg.summary payload))
          l.unacked))
    l.in_epoch l.in_expected
    (String.concat ";" (List.map string_of_int l.delivered_mids))

let record_to_string r =
  match r with
  | Event { time; site; desc } ->
    Printf.sprintf "%.3f event %s %s" time site desc
  | Fire_sent { time; rule_id; to_site; trigger_id } ->
    Printf.sprintf "%.3f fire_sent %s -> %s trigger=%d" time rule_id to_site
      trigger_id
  | Store_write { time; item; value } ->
    Printf.sprintf "%.3f store_write %s = %s" time (Item.to_string item)
      (Value.to_string value)
  | Outbound { time; to_site; mid; epoch; seq; payload } ->
    Printf.sprintf "%.3f outbound -> %s m%d e%d s%d %s" time to_site mid epoch
      seq (Msg.summary payload)
  | Acked { time; to_site; mid } ->
    Printf.sprintf "%.3f acked -> %s m%d" time to_site mid
  | Delivered { time; from_site; epoch; seq; mid; applied } ->
    Printf.sprintf "%.3f delivered <- %s e%d s%d m%d %s" time from_site epoch
      seq mid
      (if applied then "applied" else "dup")
  | Restarted { time; incarnation } ->
    Printf.sprintf "%.3f restarted incarnation=%d" time incarnation
  | Epoch_proposed { time; epoch; rules } ->
    Printf.sprintf "%.3f epoch_proposed e%d rules={%s}" time epoch
      (String.concat "; " (List.map Rule.to_string rules))
  | Epoch_cutover { time; epoch } ->
    Printf.sprintf "%.3f epoch_cutover e%d" time epoch
  | Epoch_retired { time; epoch } ->
    Printf.sprintf "%.3f epoch_retired e%d" time epoch
  | Epoch_rollback { time; from_epoch; to_epoch; reason } ->
    Printf.sprintf "%.3f epoch_rollback e%d -> e%d (%s)" time from_epoch
      to_epoch reason
  | Checkpoint { time; incarnation; store; links; rule_epochs; active_epoch } ->
    (* The epochs section only appears once a site has evolved, keeping
       checkpoint bytes stable for non-evolving systems. *)
    let epochs_part =
      if rule_epochs = [] && active_epoch = 0 then ""
      else
        Printf.sprintf " epochs={%s} active=e%d"
          (String.concat "|"
             (List.map
                (fun (e, phase, rules) ->
                  Printf.sprintf "e%d:%s:{%s}" e (epoch_phase_to_string phase)
                    (String.concat "; " (List.map Rule.to_string rules)))
                rule_epochs))
          active_epoch
    in
    Printf.sprintf "%.3f checkpoint incarnation=%d store={%s} links={%s}%s" time
      incarnation
      (String.concat ";"
         (List.map
            (fun (item, v) ->
              Printf.sprintf "%s=%s" (Item.to_string item) (Value.to_string v))
            store))
      (String.concat "|" (List.map link_state_to_string links))
      epochs_part

type t = {
  site : string;
  obs : Obs.t;
  mutable rev_records : record list;  (* newest first *)
  mutable count : int;
  mutable bytes : int;  (* serialized size, the journal-overhead metric *)
  mutable checkpoints : int;
  mutable incarnation : int;  (* count of Restarted records appended *)
}

type stats = {
  appends : int;
  bytes : int;
  checkpoints : int;
  incarnation : int;
}

let site t = t.site

let append t r =
  let size = String.length (record_to_string r) + 1 in
  t.rev_records <- r :: t.rev_records;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + size;
  Obs.incr t.obs "journal_appends"
    ~labels:[ ("site", t.site); ("kind", record_kind r) ];
  match r with
  | Restarted { incarnation; _ } -> t.incarnation <- incarnation
  | Checkpoint _ ->
    t.checkpoints <- t.checkpoints + 1;
    Obs.observe t.obs "journal_checkpoint_bytes" ~labels:[ ("site", t.site) ]
      (float_of_int size)
  | _ -> ()

let records t = List.rev t.rev_records
let length t = t.count
let incarnation (t : t) = t.incarnation

let stats t =
  {
    appends = t.count;
    bytes = t.bytes;
    checkpoints = t.checkpoints;
    incarnation = t.incarnation;
  }

(* Recovery reads the log as: the newest checkpoint (if any) plus every
   record after it, oldest first.  Without checkpoints the whole stream
   comes back. *)
let replay_base t : record option * record list =
  let rec split after rs : record option * record list =
    match rs with
    | [] -> (None, after)
    | Checkpoint _ as c :: _ -> (Some c, after)
    | r :: rest -> split (r :: after) rest
  in
  split [] t.rev_records

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf (record_to_string r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

(* -- registry: one journal per site, on shared stable storage -- *)

type registry = { reg_obs : Obs.t; by_site : (string, t) Hashtbl.t }

let create_registry ?(obs = Obs.noop) () = { reg_obs = obs; by_site = Hashtbl.create 8 }

let for_site reg ~site =
  match Hashtbl.find_opt reg.by_site site with
  | Some j -> j
  | None ->
    let j =
      {
        site;
        obs = reg.reg_obs;
        rev_records = [];
        count = 0;
        bytes = 0;
        checkpoints = 0;
        incarnation = 0;
      }
    in
    Hashtbl.replace reg.by_site site j;
    j

let sites reg =
  Hashtbl.fold (fun site _ acc -> site :: acc) reg.by_site []
  |> List.sort compare
