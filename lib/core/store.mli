(** CM-Shell private data store.

    Strategies may keep auxiliary data in the shell itself — caches like
    [Cx], monitor flags like [Flag]/[Tb] (paper §3.2, §6.3).  Writes go
    through the shell so they appear in the trace as [W] events on
    CM-local items; reads are synchronous and consistent because the
    store is single-writer under the shell's control (§7.1). *)

type t

val create : unit -> t
val get : t -> Cm_rule.Item.t -> Cm_rule.Value.t option
val set : t -> Cm_rule.Item.t -> Cm_rule.Value.t -> unit
val remove : t -> Cm_rule.Item.t -> unit
val items : t -> Cm_rule.Item.t list

val bindings : t -> (Cm_rule.Item.t * Cm_rule.Value.t) list
(** All items with their current values, in item order — the shell's
    volatile state as captured by recovery checkpoints. *)

val clear : t -> unit
(** Drop everything.  Models the loss of volatile memory when a site
    crashes; {!Cm_core.Recovery} rebuilds the contents from the journal. *)
