module Sim = Cm_sim.Sim
module Whois = Cm_sources.Whois
module Health = Cm_sources.Health
open Cm_rule

type item_binding = { base : string; field : string }

type t = {
  sim : Sim.t;
  server : Whois.t;
  site : string;
  emit : Cmi.emit;
  report : Cmi.failure_report;
  latency : float;
  delta : float;
  bindings : (string, item_binding) Hashtbl.t;
}

let health t = Whois.health t.server

let rule_id t base kind = Printf.sprintf "%s/%s/%s" t.site base kind

let name_of_item (item : Item.t) =
  match item.Item.params with
  | [ Value.Str name ] -> Some name
  | [ v ] -> Some (Value.to_string v)
  | _ -> None

let current_value t (item : Item.t) =
  if Health.mode (health t) = Health.Down then None
  else
    match Hashtbl.find_opt t.bindings item.Item.base, name_of_item item with
    | Some b, Some name ->
      Option.bind (Whois.query t.server name) (fun fields ->
          Option.map (fun s -> Value.Str s) (List.assoc_opt b.field fields))
    | _ -> None

let interface_rules t =
  Hashtbl.fold
    (fun base _ acc ->
      Interface.read ~id:(rule_id t base "read") ~delta:t.delta
        (Interface.family base [ "n" ])
      :: acc)
    t.bindings []
  |> List.sort (fun a b -> compare a.Rule.id b.Rule.id)

let request t desc ~kind =
  let event = t.emit desc ~kind in
  match desc.Event.name, desc.Event.args with
  | "RR", [ Event.Ai item ] -> (
    if Health.mode (health t) = Health.Down then t.report Msg.Logical
    else
      match current_value t item with
      | None -> ()
      | Some v ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "read"; trigger = event.Event.id }
        in
        let delay = t.latency +. Health.extra_latency (health t) in
        Sim.schedule t.sim ~delay (fun () ->
            ignore (t.emit (Event.r item v) ~kind:provenance);
            if delay > t.delta then t.report Msg.Metric))
  | name, _ ->
    Logs.err (fun m ->
        m "translator %s: whois is read-only, cannot serve %s" t.site name)

let create ~sim ~server ~site ~emit ~report ?(latency = 0.3) ?delta bindings =
  let delta = Option.value delta ~default:(latency *. 5.0) in
  let table = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Hashtbl.mem table b.base then
        invalid_arg ("Tr_whois: duplicate binding for " ^ b.base);
      Hashtbl.replace table b.base b)
    bindings;
  { sim; server; site; emit; report; latency; delta; bindings = table }

let cmi t =
  {
    Cmi.site = t.site;
    name = "whois";
    owns = Hashtbl.mem t.bindings;
    bases =
      List.sort String.compare
        (Hashtbl.fold (fun base _ acc -> base :: acc) t.bindings []);
    interface_rules = (fun () -> interface_rules t);
    current_value = current_value t;
    request = request t;
  }

(* Administrative operations record ground truth for every bound field. *)

let record_ws t ~name ~field ~old_value ~value =
  Hashtbl.iter
    (fun base b ->
      if String.equal b.field field then
        let item = Item.make base ~params:[ Value.Str name ] in
        ignore
          (t.emit
             (Event.ws ~old:old_value item (Value.Str value))
             ~kind:Event.Spontaneous))
    t.bindings

let register_app t ~name ~fields =
  Whois.register t.server ~name ~fields;
  List.iter
    (fun (field, value) -> record_ws t ~name ~field ~old_value:Value.Null ~value)
    fields

let update_app t ~name ~field ~value =
  let old_value =
    match Whois.query t.server name with
    | Some fields ->
      Option.value
        (Option.map (fun s -> Value.Str s) (List.assoc_opt field fields))
        ~default:Value.Null
    | None -> Value.Null
  in
  let changed = Whois.update_field t.server ~name ~field ~value in
  if changed then record_ws t ~name ~field ~old_value ~value;
  changed

let unregister_app t ~name =
  let existed = Whois.unregister t.server ~name in
  if existed then
    Hashtbl.iter
      (fun base _ ->
        let item = Item.make base ~params:[ Value.Str name ] in
        ignore (t.emit (Event.del item) ~kind:Event.Spontaneous))
      t.bindings;
  existed
