(** CM-Translator for relational Raw Information Sources (paper §4.2.1).

    Configured per data item (family) with SQL command templates, exactly
    as the paper's CM-RID prescribes: to write value [b] to
    [Salary2(n)], the template
    ["UPDATE employees SET salary = $b WHERE empid = $n"] is instantiated
    and sent to the SQL engine.  The translator:

    - serves WR/RR/DR requests from the shell, recording the request
      receipt and emitting the W/R/DEL response after the configured
      latency (plus any health-injected degradation);
    - implements notify interfaces by declaring a trigger (an after-change
      observer) on the underlying table and emitting [Ws] ground truth
      plus [N] notifications for spontaneous changes — changes performed
      by the translator itself are recognized and not treated as
      spontaneous;
    - tracks row existence for the referential-integrity scenario,
      emitting [INS]/[DEL] events;
    - maps SQL errors and outage to logical failures and degradation to
      metric failures, reported through the shell (§5). *)

type notify_spec = {
  table : string;
  column : string;
  key_column : string;
      (** the row field that becomes the item's parameter *)
  send : bool;
      (** [true]: a notify interface — [N] events are emitted.  [false]:
          observation only — spontaneous [Ws] ground truth is recorded
          (the simulation's omniscient view) but no notify interface is
          offered to the CM. *)
  filter : (old_value:Cm_rule.Value.t -> new_value:Cm_rule.Value.t -> bool) option;
      (** in-source condition (conditional notify); [None] = plain *)
  filter_expr : Cm_rule.Expr.t option;
      (** the same condition as a rule expression over [a]/[b], used in
          the reported interface statement *)
}

type existence_spec = { ex_base : string; ex_table : string; ex_key_column : string }
(** Row presence in [ex_table] is surfaced as existence of the item
    family [ex_base(key)] through [INS]/[DEL] events. *)

type item_binding = {
  base : string;
  params : string list;
  read_sql : string option;  (** single-value SELECT; [$param] syntax *)
  write_sql : string option;  (** [$b] is the written value *)
  delete_sql : string option;
  notify : notify_spec option;
  no_spontaneous : bool;
      (** promise [Ws → ℱ]: local applications never touch this item *)
  periodic : float option;
      (** periodic-notify interface (§3.1.1): every [p] seconds the
          source pushes the item's current value as an [N] event,
          regardless of changes.  Only for items without parameters — a
          parameterized family would need per-instance enumeration. *)
}

type latencies = { read : float; write : float; notify : float; delete : float }

val default_latencies : latencies
(** 0.2 s per operation, 1 s notification lag. *)

type deltas = latencies
(** Interface time bounds; default is 5× each latency. *)

type t

val create :
  sim:Cm_sim.Sim.t ->
  db:Cm_relational.Database.t ->
  site:string ->
  emit:Cmi.emit ->
  report:Cmi.failure_report ->
  ?latencies:latencies ->
  ?deltas:deltas ->
  ?existence:existence_spec list ->
  item_binding list ->
  t
(** Declares the needed triggers on [db] (observers) immediately.

    A [Down] source loses the notifications that come due while it is
    out and reports a {e logical} failure.  §5's "remember messages that
    need to be sent out upon recovery" facility is no longer a
    translator-local queue: it is the write-ahead {!Journal} plus the
    {!Recovery} restart protocol, configured system-wide through
    {!System.Config.durability}. *)

val cmi : t -> Cmi.t
val health : t -> Cm_sources.Health.t
val interface_rules : t -> Cm_rule.Rule.t list
(** The generated interface statements, with stable ids
    ["<site>/<base>/<kind>"]. *)

val exec_app :
  t -> ?params:(string * Cm_rule.Value.t) list -> string ->
  (Cm_relational.Database.result, Cm_relational.Database.error) result
(** Run a statement as a {e local application} (spontaneous from the
    CM's viewpoint): triggers fire, [Ws]/[INS]/[DEL] ground truth is
    recorded.  Workload drivers use this. *)
