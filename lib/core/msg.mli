(** Messages exchanged between CM-Shells over the network.

    Rule distribution (paper §4.1) places each rule at the shell of its
    LHS site; when it matches there, the binding environment travels to
    the shell of the RHS site as a {!Fire} envelope, where conditions are
    evaluated against local data and the RHS events are produced.
    Failure notices propagate between shells so that affected guarantees
    can be marked invalid at every site (§5).

    The last four variants belong to the transport layer
    ({!Cm_core.Reliable}), which re-earns the paper's reliable-network
    assumption over a faulty {!Cm_net.Net}: application messages travel
    wrapped in sequence-numbered {!Data} envelopes answered by {!Ack}s,
    {!Heartbeat}s feed the per-site failure detector, and
    {!Suspect_down} is what the detector delivers locally when a peer
    stops responding — the §5 failure notice for a dead communication
    endpoint, which would otherwise be a silent stall. *)

type failure_kind = Metric | Logical

type t =
  | Fire of {
      rule_id : string;
      rule_epoch : int;
          (** Rule epoch (see {!Cm_core.Evolution}) the firing was
              produced under: [0] is the base program installed at
              configuration time.  The RHS shell executes the envelope
              under this epoch's program while it is still draining, and
              rejects (and counts) it once that epoch is retired — an
              in-flight firing is never silently re-interpreted under a
              newer program. *)
      env : (string * Cm_rule.Expr.binding) list;
      trigger_id : int;
      trigger_time : float;
      span : int;
          (** Id of the ["fire"] span opened at the LHS shell, or [0]
              when observability is off.  The RHS shell parents its
              ["execute"] span on it; the reliable layer parents
              ["retransmit"] spans on it — one trace follows the
              evaluation end-to-end across sites. *)
    }
  | Failure_notice of { origin_site : string; kind : failure_kind }
  | Reset_notice of { origin_site : string }
  | Data of { from_site : string; epoch : int; seq : int; mid : int; payload : t }
      (** Reliable-delivery envelope: [seq] orders the [from_site] →
          receiver link within [epoch], the sender's incarnation number
          (0 until the site ever crash-restarts).  [mid] is a stable
          per-link message id that survives re-sends across epochs, so
          the receiver can deduplicate a message re-queued after a crash
          even though it carries a fresh [(epoch, seq)]. *)
  | Ack of { from_site : string; epoch : int; seq : int }
      (** Acknowledges [Data { epoch; seq }] on the link towards
          [from_site].  The epoch is echoed so an ack for a previous
          incarnation's frame cannot discharge the re-sent copy. *)
  | Heartbeat of { origin_site : string; beat : int }
  | Suspect_down of { origin_site : string; suspect_site : string }
      (** Delivered locally by [origin_site]'s failure detector when
          [suspect_site] has gone quiet. *)

val env_to_list : Cm_rule.Expr.env -> (string * Cm_rule.Expr.binding) list
val env_of_list : (string * Cm_rule.Expr.binding) list -> Cm_rule.Expr.env
val failure_kind_to_string : failure_kind -> string

val summary : t -> string
(** Compact single-line rendering, stable across runs — used by the
    crash-recovery journal's deterministic serialization. *)
