(* Process-wide instrument registry + span tracing for one system run.
   Everything is deterministic: instruments are keyed by (name, sorted
   labels), snapshots are emitted in sorted order, span ids are
   allocated sequentially, and nothing here consumes the simulation
   PRNG — enabling observability cannot change a seeded run. *)

module Stats = Cm_util.Stats

type labels = (string * string) list

let canon labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

type instrument =
  | Counter of int ref
  | Gauge of float ref
  | Series of float list ref  (* reverse chronological *)

type span = {
  id : int;
  parent : int;  (* 0 = root *)
  span_name : string;
  span_labels : labels;
  started : float;
  mutable ended : float option;
}

type t = {
  enabled : bool;
  instruments : (string * labels, instrument) Hashtbl.t;
  mutable span_log : span list;  (* reverse chronological *)
  mutable next_span : int;
}

let create () =
  {
    enabled = true;
    instruments = Hashtbl.create 64;
    span_log = [];
    next_span = 1;
  }

let noop =
  { enabled = false; instruments = Hashtbl.create 1; span_log = []; next_span = 1 }

let enabled t = t.enabled

let find t name labels make =
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.instruments key with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.replace t.instruments key i;
    i

let incr ?(by = 1) ?(labels = []) t name =
  if t.enabled then
    match find t name labels (fun () -> Counter (ref 0)) with
    | Counter r -> r := !r + by
    | _ -> invalid_arg ("Obs.incr: " ^ name ^ " is not a counter")

let gauge ?(labels = []) t name v =
  if t.enabled then
    match find t name labels (fun () -> Gauge (ref 0.0)) with
    | Gauge r -> r := v
    | _ -> invalid_arg ("Obs.gauge: " ^ name ^ " is not a gauge")

let observe ?(labels = []) t name v =
  if t.enabled then
    match find t name labels (fun () -> Series (ref [])) with
    | Series r -> r := v :: !r
    | _ -> invalid_arg ("Obs.observe: " ^ name ^ " is not a series")

let counter_value ?(labels = []) t name =
  match Hashtbl.find_opt t.instruments (name, canon labels) with
  | Some (Counter r) -> !r
  | _ -> 0

let counter_total t name =
  Hashtbl.fold
    (fun (n, _) i acc ->
      match i with Counter r when String.equal n name -> acc + !r | _ -> acc)
    t.instruments 0

let gauge_value ?(labels = []) t name =
  match Hashtbl.find_opt t.instruments (name, canon labels) with
  | Some (Gauge r) -> Some !r
  | _ -> None

let series_values ?(labels = []) t name =
  match Hashtbl.find_opt t.instruments (name, canon labels) with
  | Some (Series r) -> List.rev !r
  | _ -> []

(* -- spans -- *)

let span ?(parent = 0) ?(labels = []) t ~name ~at =
  if not t.enabled then 0
  else begin
    let id = t.next_span in
    t.next_span <- id + 1;
    t.span_log <-
      { id; parent; span_name = name; span_labels = canon labels;
        started = at; ended = None }
      :: t.span_log;
    id
  end

let end_span t ~id ~at =
  if t.enabled && id > 0 then
    match List.find_opt (fun s -> s.id = id) t.span_log with
    | Some s -> s.ended <- Some at
    | None -> ()

let spans t = List.rev t.span_log

(* -- snapshots -- *)

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Series_sample of Stats.summary

type row = { name : string; labels : labels; sample : sample }

let snapshot t =
  let rows =
    Hashtbl.fold
      (fun (name, labels) i acc ->
        let sample =
          match i with
          | Counter r -> Counter_sample !r
          | Gauge r -> Gauge_sample !r
          | Series r -> Series_sample (Stats.summary (List.rev !r))
        in
        { name; labels; sample } :: acc)
      t.instruments []
  in
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    rows

(* -- rendering (hand-rolled: no JSON dependency in the switch) -- *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g would print float noise; %g keeps snapshots stable and readable
   while still round-tripping every value the registry actually holds
   (counts and sim times). *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%g" v

let labels_to_json buf labels =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      buf_add_json_string buf k;
      Buffer.add_char buf ':';
      buf_add_json_string buf v)
    labels;
  Buffer.add_char buf '}'

(* Semicolon-joined and quoted so multi-label sets stay one CSV field. *)
let labels_to_string labels =
  Printf.sprintf "\"%s\""
    (String.concat ";"
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let snapshot_to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i { name; labels; sample } ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  {\"name\":";
      buf_add_json_string buf name;
      Buffer.add_string buf ",\"labels\":";
      labels_to_json buf labels;
      (match sample with
       | Counter_sample n ->
         Buffer.add_string buf (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n)
       | Gauge_sample v ->
         Buffer.add_string buf ",\"type\":\"gauge\",\"value\":";
         Buffer.add_string buf (float_str v)
       | Series_sample s ->
         Buffer.add_string buf
           (Printf.sprintf ",\"type\":\"series\",\"n\":%d,\"mean\":%s,\"stddev\":%s,\"p50\":%s,\"p95\":%s,\"min\":%s,\"max\":%s"
              s.Stats.n (float_str s.Stats.mean) (float_str s.Stats.stddev)
              (float_str s.Stats.p50) (float_str s.Stats.p95)
              (float_str s.Stats.min) (float_str s.Stats.max)));
      Buffer.add_char buf '}')
    (snapshot t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let snapshot_to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,labels,type,value,n,mean,stddev,p50,p95,min,max\n";
  List.iter
    (fun { name; labels; sample } ->
      let ls = labels_to_string labels in
      match sample with
      | Counter_sample n ->
        Buffer.add_string buf (Printf.sprintf "%s,%s,counter,%d,,,,,,,\n" name ls n)
      | Gauge_sample v ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,gauge,%s,,,,,,,\n" name ls (float_str v))
      | Series_sample s ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,series,,%d,%s,%s,%s,%s,%s,%s\n" name ls
             s.Stats.n (float_str s.Stats.mean) (float_str s.Stats.stddev)
             (float_str s.Stats.p50) (float_str s.Stats.p95)
             (float_str s.Stats.min) (float_str s.Stats.max)))
    (snapshot t);
  Buffer.contents buf

let spans_to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "  {\"id\":%d,\"parent\":%d,\"name\":" s.id s.parent);
      buf_add_json_string buf s.span_name;
      Buffer.add_string buf ",\"labels\":";
      labels_to_json buf s.span_labels;
      Buffer.add_string buf ",\"start\":";
      Buffer.add_string buf (float_str s.started);
      (match s.ended with
       | Some e ->
         Buffer.add_string buf ",\"end\":";
         Buffer.add_string buf (float_str e)
       | None -> Buffer.add_string buf ",\"end\":null");
      Buffer.add_char buf '}')
    (spans t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let spans_to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "id,parent,name,labels,start,end\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%s,%s,%s\n" s.id s.parent s.span_name
           (labels_to_string s.span_labels)
           (float_str s.started)
           (match s.ended with Some e -> float_str e | None -> "")))
    (spans t);
  Buffer.contents buf

(* -- log correlation -- *)

let site_tag : string Logs.Tag.def =
  Logs.Tag.def "site" ~doc:"CM-Shell site" Format.pp_print_string

let time_tag : float Logs.Tag.def =
  Logs.Tag.def "sim-time" ~doc:"simulation time" (fun fmt t ->
      Format.fprintf fmt "%.3f" t)

let span_tag : int Logs.Tag.def =
  Logs.Tag.def "span" ~doc:"active span id" Format.pp_print_int

let log_tags ~site ~time ?span () =
  let tags = Logs.Tag.empty in
  let tags = Logs.Tag.add site_tag site tags in
  let tags = Logs.Tag.add time_tag time tags in
  match span with
  | Some id when id > 0 -> Logs.Tag.add span_tag id tags
  | _ -> tags

let reporter ?(ppf = Format.err_formatter) () =
  let report _src level ~over k msgf =
    msgf @@ fun ?header:_ ?(tags = Logs.Tag.empty) fmt ->
    let prefix =
      let time = Logs.Tag.find time_tag tags in
      let site = Logs.Tag.find site_tag tags in
      let span = Logs.Tag.find span_tag tags in
      let parts =
        List.filter_map Fun.id
          [
            Option.map (Printf.sprintf "t=%.3f") time;
            Option.map (Printf.sprintf "site=%s") site;
            Option.map (Printf.sprintf "span=%d") span;
          ]
      in
      if parts = [] then "" else "[" ^ String.concat " " parts ^ "] "
    in
    Format.kfprintf
      (fun ppf ->
        Format.fprintf ppf "@.";
        over ();
        k ())
      ppf
      ("%s[%s] " ^^ fmt)
      prefix
      (Logs.level_to_string (Some level))
  in
  { Logs.report }
