(** Observability: one instrument registry + span tracing per system run.

    The paper's evaluation (§4.2.3, §5, §6) is a set of claims about
    message cost, staleness, and failure behaviour.  This module makes
    each such number a query over a single registry instead of an ad-hoc
    counter scrape: {!Cm_net.Net} records sends/drops/dups/latency,
    {!Reliable} records retransmissions/acks/heartbeat verdicts,
    {!Shell} records matches/firings/guard rejections, and
    {!System}/{!Toolkit} record guarantee invalidations and strategy
    installs — all into the [Obs.t] carried by {!System.Config}.

    Span-based tracing follows one constraint evaluation end-to-end:
    the LHS shell opens a ["fire"] span when a rule matches, the span id
    travels inside the {!Msg.Fire} envelope, the reliable layer attaches
    ["retransmit"] child spans to it, and the RHS shell opens an
    ["execute"] child span with per-action ["step"] children.

    Everything is deterministic: instruments are keyed by (name, sorted
    labels), snapshots are emitted sorted, span ids are sequential, and
    nothing here draws from the simulation PRNG — a run with
    observability on is byte-identical to the same seed with it off. *)

type t

type labels = (string * string) list
(** Label sets are canonicalized: sorted by key, duplicate keys
    collapsed (first binding per key wins after sorting).  Two calls
    with the same bindings in different orders hit the same
    instrument. *)

val create : unit -> t
(** A fresh, enabled registry. *)

val noop : t
(** The shared disabled registry: every recording operation returns
    immediately, {!span} returns [0], snapshots are empty.  This is the
    default when no [?obs] is configured — zero allocation per event. *)

val enabled : t -> bool

(** {1 Instruments} *)

val incr : ?by:int -> ?labels:labels -> t -> string -> unit
(** Bump a counter (creating it at 0 first). *)

val gauge : ?labels:labels -> t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : ?labels:labels -> t -> string -> float -> unit
(** Append one observation to a series (exported as a
    {!Cm_util.Stats.summary}). *)

val counter_value : ?labels:labels -> t -> string -> int
(** Value of one labelled counter; 0 if absent. *)

val counter_total : t -> string -> int
(** Sum of a counter across all label sets. *)

val gauge_value : ?labels:labels -> t -> string -> float option
val series_values : ?labels:labels -> t -> string -> float list
(** Observations in chronological order; [[]] if absent. *)

(** {1 Spans} *)

val span : ?parent:int -> ?labels:labels -> t -> name:string -> at:float -> int
(** Open a span at sim-time [at]; returns its id (ids start at 1).
    [parent = 0] (the default) means a root span.  On a disabled
    registry returns [0], the "no span" sentinel carried by envelopes. *)

val end_span : t -> id:int -> at:float -> unit
(** Close a span.  Ignored for id [0] or unknown ids. *)

type span = {
  id : int;
  parent : int;  (** 0 = root *)
  span_name : string;
  span_labels : labels;
  started : float;
  mutable ended : float option;
}

val spans : t -> span list
(** All spans in creation order. *)

(** {1 Snapshots} *)

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Series_sample of Cm_util.Stats.summary

type row = { name : string; labels : labels; sample : sample }

val snapshot : t -> row list
(** All instruments, sorted by (name, labels) — deterministic for a
    deterministic run. *)

val snapshot_to_json : t -> string
(** The snapshot as a JSON array (hand-rolled; byte-identical across
    runs at a fixed seed). *)

val snapshot_to_csv : t -> string
val spans_to_json : t -> string
val spans_to_csv : t -> string

(** {1 Log correlation} *)

val site_tag : string Logs.Tag.def
val time_tag : float Logs.Tag.def
val span_tag : int Logs.Tag.def

val log_tags : site:string -> time:float -> ?span:int -> unit -> Logs.Tag.set
(** Tag set stamping a log line with its site, sim-time, and (when
    inside one) active span — built by Shell/System at each warn/err. *)

val reporter : ?ppf:Format.formatter -> unit -> Logs.reporter
(** A reporter that renders the tags as a ["[t=12.000 site=ny span=3]"]
    prefix, so log lines correlate with exported spans. *)
