type failure_kind = Metric | Logical

type t =
  | Fire of {
      rule_id : string;
      rule_epoch : int;
      env : (string * Cm_rule.Expr.binding) list;
      trigger_id : int;
      trigger_time : float;
      span : int;
    }
  | Failure_notice of { origin_site : string; kind : failure_kind }
  | Reset_notice of { origin_site : string }
  | Data of { from_site : string; epoch : int; seq : int; mid : int; payload : t }
  | Ack of { from_site : string; epoch : int; seq : int }
  | Heartbeat of { origin_site : string; beat : int }
  | Suspect_down of { origin_site : string; suspect_site : string }

let env_to_list env = Cm_rule.Expr.Env.bindings env

let env_of_list entries =
  List.fold_left
    (fun acc (k, v) -> Cm_rule.Expr.Env.add k v acc)
    Cm_rule.Expr.empty_env entries

let failure_kind_to_string = function Metric -> "metric" | Logical -> "logical"

let rec summary = function
  | Fire { rule_id; rule_epoch; trigger_id; _ } ->
    (* The epoch tag only appears once a site has evolved past the base
       program, keeping journal bytes stable for non-evolving systems. *)
    if rule_epoch = 0 then Printf.sprintf "Fire(%s#%d)" rule_id trigger_id
    else Printf.sprintf "Fire(%s#%d@e%d)" rule_id trigger_id rule_epoch
  | Failure_notice { origin_site; kind } ->
    Printf.sprintf "Failure(%s,%s)" origin_site (failure_kind_to_string kind)
  | Reset_notice { origin_site } -> Printf.sprintf "Reset(%s)" origin_site
  | Data { from_site; epoch; seq; mid; payload } ->
    Printf.sprintf "Data(%s,e%d,s%d,m%d,%s)" from_site epoch seq mid
      (summary payload)
  | Ack { from_site; epoch; seq } ->
    Printf.sprintf "Ack(%s,e%d,s%d)" from_site epoch seq
  | Heartbeat { origin_site; beat } ->
    Printf.sprintf "Heartbeat(%s,%d)" origin_site beat
  | Suspect_down { origin_site; suspect_site } ->
    Printf.sprintf "Suspect(%s,%s)" origin_site suspect_site
