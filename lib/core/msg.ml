type failure_kind = Metric | Logical

type t =
  | Fire of {
      rule_id : string;
      env : (string * Cm_rule.Expr.binding) list;
      trigger_id : int;
      trigger_time : float;
      span : int;
    }
  | Failure_notice of { origin_site : string; kind : failure_kind }
  | Reset_notice of { origin_site : string }
  | Data of { from_site : string; seq : int; payload : t }
  | Ack of { from_site : string; seq : int }
  | Heartbeat of { origin_site : string; beat : int }
  | Suspect_down of { origin_site : string; suspect_site : string }

let env_to_list env = Cm_rule.Expr.Env.bindings env

let env_of_list entries =
  List.fold_left
    (fun acc (k, v) -> Cm_rule.Expr.Env.add k v acc)
    Cm_rule.Expr.empty_env entries

let failure_kind_to_string = function Metric -> "metric" | Logical -> "logical"
