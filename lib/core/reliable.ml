module Sim = Cm_sim.Sim
module Net = Cm_net.Net

type config = {
  retry_timeout : float;
  backoff : float;
  max_timeout : float;
  max_retries : int;
  heartbeat_period : float;
  suspect_after : float;
}

let default_config =
  {
    retry_timeout = 1.0;
    backoff = 2.0;
    max_timeout = 10.0;
    max_retries = 10;
    heartbeat_period = 0.0;
    suspect_after = 0.0;
  }

type stats = {
  data_sent : int;
  retransmits : int;
  acks_sent : int;
  delivered : int;
  dup_suppressed : int;
  reordered : int;
  heartbeats_sent : int;
  give_ups : int;
  suspects : int;
  recoveries : int;
}

(* Per directed link: the sender side numbers and retains unacknowledged
   envelopes; the receiver side tracks the next sequence it will deliver
   and holds out-of-order arrivals. *)
type link = {
  mutable next_seq : int;
  outstanding : (int, Msg.t) Hashtbl.t;
  mutable expected : int;
  held : (int, Msg.t) Hashtbl.t;
}

type endpoint = {
  ep_site : string;
  deliver : Msg.t -> unit;
  last_heard : (string, float) Hashtbl.t;
  suspected : (string, unit) Hashtbl.t;
  mutable beat : int;
}

type t = {
  sim : Sim.t;
  net : Msg.t Net.t;
  cfg : config;
  obs : Obs.t;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable sites : string list;  (* sorted, for deterministic iteration *)
  links : (string * string, link) Hashtbl.t;
  mutable suspect_hooks : (site:string -> suspect:string -> unit) list;
  mutable recover_hooks : (site:string -> peer:string -> unit) list;
  mutable data_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable delivered : int;
  mutable dup_suppressed : int;
  mutable reordered : int;
  mutable heartbeats_sent : int;
  mutable give_ups : int;
  mutable suspects_count : int;
  mutable recoveries : int;
}

let create ~sim ~net ?(config = default_config) ?(obs = Obs.noop) () =
  {
    sim;
    net;
    cfg = config;
    obs;
    endpoints = Hashtbl.create 8;
    sites = [];
    links = Hashtbl.create 16;
    suspect_hooks = [];
    recover_hooks = [];
    data_sent = 0;
    retransmits = 0;
    acks_sent = 0;
    delivered = 0;
    dup_suppressed = 0;
    reordered = 0;
    heartbeats_sent = 0;
    give_ups = 0;
    suspects_count = 0;
    recoveries = 0;
  }

let config t = t.cfg

let suspect_threshold t =
  if t.cfg.suspect_after > 0.0 then t.cfg.suspect_after
  else 3.0 *. t.cfg.heartbeat_period

let link t ~from_site ~to_site =
  let key = (from_site, to_site) in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l =
      {
        next_seq = 0;
        outstanding = Hashtbl.create 8;
        expected = 0;
        held = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.links key l;
    l

let on_suspect t hook = t.suspect_hooks <- t.suspect_hooks @ [ hook ]
let on_recover t hook = t.recover_hooks <- t.recover_hooks @ [ hook ]

let suspect t ep peer =
  if not (Hashtbl.mem ep.suspected peer) then begin
    Hashtbl.replace ep.suspected peer ();
    t.suspects_count <- t.suspects_count + 1;
    Obs.incr t.obs "reliable_suspects"
      ~labels:[ ("site", ep.ep_site); ("peer", peer) ];
    List.iter (fun hook -> hook ~site:ep.ep_site ~suspect:peer) t.suspect_hooks;
    ep.deliver (Msg.Suspect_down { origin_site = ep.ep_site; suspect_site = peer })
  end

(* Any frame from [peer] counts as a sign of life. *)
let heard t ep peer =
  Hashtbl.replace ep.last_heard peer (Sim.now t.sim);
  if Hashtbl.mem ep.suspected peer then begin
    Hashtbl.remove ep.suspected peer;
    t.recoveries <- t.recoveries + 1;
    Obs.incr t.obs "reliable_recoveries"
      ~labels:[ ("site", ep.ep_site); ("peer", peer) ];
    List.iter (fun hook -> hook ~site:ep.ep_site ~peer) t.recover_hooks;
    ep.deliver (Msg.Reset_notice { origin_site = peer })
  end

let rec transmit t ~from_site ~to_site l ~seq ~attempt ~timeout =
  Net.send t.net ~from_site ~to_site
    (Msg.Data
       { from_site; seq; payload = Hashtbl.find l.outstanding seq });
  Sim.schedule t.sim ~delay:timeout (fun () ->
      if Hashtbl.mem l.outstanding seq then
        if attempt >= t.cfg.max_retries then begin
          Hashtbl.remove l.outstanding seq;
          t.give_ups <- t.give_ups + 1;
          Obs.incr t.obs "reliable_give_ups"
            ~labels:[ ("from", from_site); ("to", to_site) ];
          match Hashtbl.find_opt t.endpoints from_site with
          | Some ep -> suspect t ep to_site
          | None -> ()
        end
        else begin
          t.retransmits <- t.retransmits + 1;
          Obs.incr t.obs "reliable_retransmits"
            ~labels:[ ("from", from_site); ("to", to_site) ];
          (* Attach the retry to the firing's trace when the payload is a
             Fire envelope carrying a span id. *)
          (match Hashtbl.find l.outstanding seq with
           | Msg.Fire { span; _ } when span > 0 ->
             let now = Sim.now t.sim in
             let id =
               Obs.span t.obs ~parent:span ~name:"retransmit" ~at:now
                 ~labels:
                   [ ("from", from_site); ("to", to_site);
                     ("attempt", string_of_int (attempt + 1)) ]
             in
             Obs.end_span t.obs ~id ~at:now
           | _ -> ());
          transmit t ~from_site ~to_site l ~seq ~attempt:(attempt + 1)
            ~timeout:(Float.min (timeout *. t.cfg.backoff) t.cfg.max_timeout)
        end)

let send t ~from_site ~to_site msg =
  if String.equal from_site to_site then
    (* The simulated network never loses local messages; skip the protocol
       so self-sends stay zero-overhead and unsequenced. *)
    Net.send t.net ~from_site ~to_site msg
  else begin
    let l = link t ~from_site ~to_site in
    let seq = l.next_seq in
    l.next_seq <- seq + 1;
    Hashtbl.replace l.outstanding seq msg;
    t.data_sent <- t.data_sent + 1;
    Obs.incr t.obs "reliable_data_sent"
      ~labels:[ ("from", from_site); ("to", to_site) ];
    transmit t ~from_site ~to_site l ~seq ~attempt:0 ~timeout:t.cfg.retry_timeout
  end

let receive t ep frame =
  match frame with
  | Msg.Data { from_site; seq; payload } ->
    heard t ep from_site;
    (* Always ack, even duplicates: the earlier ack may have been lost. *)
    t.acks_sent <- t.acks_sent + 1;
    Obs.incr t.obs "reliable_acks_sent"
      ~labels:[ ("from", ep.ep_site); ("to", from_site) ];
    Net.send t.net ~from_site:ep.ep_site ~to_site:from_site
      (Msg.Ack { from_site = ep.ep_site; seq });
    let l = link t ~from_site ~to_site:ep.ep_site in
    if seq < l.expected || Hashtbl.mem l.held seq then begin
      t.dup_suppressed <- t.dup_suppressed + 1;
      Obs.incr t.obs "reliable_dup_suppressed"
        ~labels:[ ("from", from_site); ("to", ep.ep_site) ]
    end
    else if seq = l.expected then begin
      t.delivered <- t.delivered + 1;
      Obs.incr t.obs "reliable_delivered"
        ~labels:[ ("from", from_site); ("to", ep.ep_site) ];
      l.expected <- seq + 1;
      ep.deliver payload;
      let rec drain () =
        match Hashtbl.find_opt l.held l.expected with
        | None -> ()
        | Some held_payload ->
          Hashtbl.remove l.held l.expected;
          t.delivered <- t.delivered + 1;
          Obs.incr t.obs "reliable_delivered"
            ~labels:[ ("from", from_site); ("to", ep.ep_site) ];
          l.expected <- l.expected + 1;
          ep.deliver held_payload;
          drain ()
      in
      drain ()
    end
    else begin
      t.reordered <- t.reordered + 1;
      Obs.incr t.obs "reliable_reordered"
        ~labels:[ ("from", from_site); ("to", ep.ep_site) ];
      Hashtbl.replace l.held seq payload
    end
  | Msg.Ack { from_site = acker; seq } ->
    heard t ep acker;
    let l = link t ~from_site:ep.ep_site ~to_site:acker in
    Hashtbl.remove l.outstanding seq
  | Msg.Heartbeat { origin_site; beat = _ } -> heard t ep origin_site
  | app_msg ->
    (* Unwrapped application message: a local self-send or a sender that
       bypassed the reliable layer. *)
    ep.deliver app_msg

let heartbeat_tick t ep =
  let now = Sim.now t.sim in
  let threshold = suspect_threshold t in
  List.iter
    (fun peer ->
      if not (String.equal peer ep.ep_site) then begin
        ep.beat <- ep.beat + 1;
        t.heartbeats_sent <- t.heartbeats_sent + 1;
        Obs.incr t.obs "reliable_heartbeats_sent" ~labels:[ ("site", ep.ep_site) ];
        Net.send t.net ~from_site:ep.ep_site ~to_site:peer
          (Msg.Heartbeat { origin_site = ep.ep_site; beat = ep.beat });
        match Hashtbl.find_opt ep.last_heard peer with
        | None ->
          (* First sight of this peer: start its grace period now. *)
          Hashtbl.replace ep.last_heard peer now
        | Some last -> if now -. last > threshold then suspect t ep peer
      end)
    t.sites

let register t ~site deliver =
  if Hashtbl.mem t.endpoints site then
    invalid_arg ("Reliable.register: site already registered: " ^ site);
  let ep =
    {
      ep_site = site;
      deliver;
      last_heard = Hashtbl.create 8;
      suspected = Hashtbl.create 4;
      beat = 0;
    }
  in
  Hashtbl.replace t.endpoints site ep;
  t.sites <- List.sort compare (site :: t.sites);
  Net.register t.net ~site (fun frame -> receive t ep frame);
  if t.cfg.heartbeat_period > 0.0 then
    Sim.every t.sim ~period:t.cfg.heartbeat_period
      (fun () -> heartbeat_tick t ep)
      ~cancel:(fun () -> false)

let suspects t ~site =
  match Hashtbl.find_opt t.endpoints site with
  | None -> []
  | Some ep ->
    Hashtbl.fold (fun peer () acc -> peer :: acc) ep.suspected []
    |> List.sort compare

let stats t =
  {
    data_sent = t.data_sent;
    retransmits = t.retransmits;
    acks_sent = t.acks_sent;
    delivered = t.delivered;
    dup_suppressed = t.dup_suppressed;
    reordered = t.reordered;
    heartbeats_sent = t.heartbeats_sent;
    give_ups = t.give_ups;
    suspects = t.suspects_count;
    recoveries = t.recoveries;
  }

let pending t =
  Hashtbl.fold (fun _ l acc -> acc + Hashtbl.length l.outstanding) t.links 0
