module Sim = Cm_sim.Sim
module Net = Cm_net.Net

type config = {
  retry_timeout : float;
  backoff : float;
  max_timeout : float;
  max_retries : int;
  heartbeat_period : float;
  suspect_after : float;
}

let default_config =
  {
    retry_timeout = 1.0;
    backoff = 2.0;
    max_timeout = 10.0;
    max_retries = 10;
    heartbeat_period = 0.0;
    suspect_after = 0.0;
  }

type stats = {
  data_sent : int;
  retransmits : int;
  acks_sent : int;
  delivered : int;
  dup_suppressed : int;
  reordered : int;
  heartbeats_sent : int;
  give_ups : int;
  suspects : int;
  recoveries : int;
  epoch_rejections : int;
  requeued : int;
}

(* Per directed link.  The sender half (the state at [from_site]) numbers
   frames within its current epoch — bumped by crash recovery so a new
   incarnation's sequence space is disjoint from the old one's — and
   retains unacknowledged envelopes keyed by seq.  Message ids ([mid])
   are stable across epochs: a message re-queued after a crash keeps its
   mid even though it gets a fresh (epoch, seq), which is what lets the
   receiver half deduplicate it.  The receiver half (the state at
   [to_site]) tracks the epoch it is synchronized to, the next sequence
   it will deliver within that epoch, out-of-order arrivals, and the set
   of mids already handed to the application. *)
type link = {
  mutable epoch : int;
  mutable next_seq : int;
  mutable next_mid : int;
  outstanding : (int, int * int * Msg.t) Hashtbl.t;  (* seq -> epoch, mid, payload *)
  mutable in_epoch : int;
  mutable expected : int;
  held : (int, int * Msg.t) Hashtbl.t;  (* seq -> mid, payload *)
  delivered_mids : (int, unit) Hashtbl.t;
}

type endpoint = {
  ep_site : string;
  deliver : Msg.t -> unit;
  last_heard : (string, float) Hashtbl.t;
  suspected : (string, unit) Hashtbl.t;
  mutable beat : int;
}

type t = {
  sim : Sim.t;
  net : Msg.t Net.t;
  cfg : config;
  obs : Obs.t;
  journals : Journal.registry option;
  endpoints : (string, endpoint) Hashtbl.t;
  mutable sites : string list;  (* sorted, for deterministic iteration *)
  links : (string * string, link) Hashtbl.t;
  suspect_hooks : (site:string -> suspect:string -> unit) Queue.t;
  recover_hooks : (site:string -> peer:string -> unit) Queue.t;
  mutable data_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable delivered : int;
  mutable dup_suppressed : int;
  mutable reordered : int;
  mutable heartbeats_sent : int;
  mutable give_ups : int;
  mutable suspects_count : int;
  mutable recoveries : int;
  mutable epoch_rejections : int;
  mutable requeued : int;
}

let create ~sim ~net ?(config = default_config) ?(obs = Obs.noop) ?journals () =
  {
    sim;
    net;
    cfg = config;
    obs;
    journals;
    endpoints = Hashtbl.create 8;
    sites = [];
    links = Hashtbl.create 16;
    suspect_hooks = Queue.create ();
    recover_hooks = Queue.create ();
    data_sent = 0;
    retransmits = 0;
    acks_sent = 0;
    delivered = 0;
    dup_suppressed = 0;
    reordered = 0;
    heartbeats_sent = 0;
    give_ups = 0;
    suspects_count = 0;
    recoveries = 0;
    epoch_rejections = 0;
    requeued = 0;
  }

let config t = t.cfg

let journal_for t site =
  match t.journals with
  | Some reg -> Some (Journal.for_site reg ~site)
  | None -> None

let suspect_threshold t =
  if t.cfg.suspect_after > 0.0 then t.cfg.suspect_after
  else 3.0 *. t.cfg.heartbeat_period

let link t ~from_site ~to_site =
  let key = (from_site, to_site) in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l =
      {
        epoch = 0;
        next_seq = 0;
        next_mid = 0;
        outstanding = Hashtbl.create 8;
        in_epoch = 0;
        expected = 0;
        held = Hashtbl.create 4;
        delivered_mids = Hashtbl.create 16;
      }
    in
    Hashtbl.replace t.links key l;
    l

(* O(1) hook registration (hooks used to be appended to a list, which is
   quadratic when registering in a loop); queues preserve registration
   order on iteration. *)
let on_suspect t hook = Queue.add hook t.suspect_hooks
let on_recover t hook = Queue.add hook t.recover_hooks

let suspect t ep peer =
  if not (Hashtbl.mem ep.suspected peer) then begin
    Hashtbl.replace ep.suspected peer ();
    t.suspects_count <- t.suspects_count + 1;
    Obs.incr t.obs "reliable_suspects"
      ~labels:[ ("site", ep.ep_site); ("peer", peer) ];
    Queue.iter (fun hook -> hook ~site:ep.ep_site ~suspect:peer) t.suspect_hooks;
    ep.deliver (Msg.Suspect_down { origin_site = ep.ep_site; suspect_site = peer })
  end

let rec transmit t ~from_site ~to_site l ~seq ~attempt ~timeout =
  match Hashtbl.find_opt l.outstanding seq with
  | None -> ()
  | Some (epoch, mid, payload) ->
    Net.send t.net ~from_site ~to_site
      (Msg.Data { from_site; epoch; seq; mid; payload });
    Sim.schedule t.sim ~delay:timeout (fun () ->
        (* The entry may have been acknowledged, given up on, or replaced
           by a later incarnation (recovery resets the sequence space, so
           the same seq can name a different message under a new epoch);
           this timer only owns the (epoch, seq) pair it transmitted. *)
        match Hashtbl.find_opt l.outstanding seq with
        | Some (e, _, _) when e = epoch ->
          if attempt = t.cfg.max_retries then begin
            (* Chain exhausted: raise the suspicion either way.  With a
               journal the frame is durable, so abandoning it would only
               manufacture loss — the chain keeps retrying at the capped
               interval instead (a give-up can conclude *after* the
               peer's restart already sent its last sign of life, so
               waiting to hear the peer again is not enough).  Without a
               journal there is nothing to re-queue from later; the
               frame is dropped, which is the pre-recovery protocol. *)
            let durable = Option.is_some (journal_for t from_site) in
            if not durable then Hashtbl.remove l.outstanding seq;
            t.give_ups <- t.give_ups + 1;
            Obs.incr t.obs "reliable_give_ups"
              ~labels:[ ("from", from_site); ("to", to_site) ];
            (match Hashtbl.find_opt t.endpoints from_site with
             | Some ep -> suspect t ep to_site
             | None -> ());
            if durable then
              transmit t ~from_site ~to_site l ~seq ~attempt:(attempt + 1)
                ~timeout:t.cfg.max_timeout
          end
          else if attempt > t.cfg.max_retries then
            (* Post-give-up persistence (journal present): keep the frame
               on the wire at the capped interval, without re-counting
               retransmits or re-raising the suspicion. *)
            transmit t ~from_site ~to_site l ~seq ~attempt:(attempt + 1)
              ~timeout:t.cfg.max_timeout
          else begin
            t.retransmits <- t.retransmits + 1;
            Obs.incr t.obs "reliable_retransmits"
              ~labels:[ ("from", from_site); ("to", to_site) ];
            (* Attach the retry to the firing's trace when the payload is a
               Fire envelope carrying a span id. *)
            (match payload with
             | Msg.Fire { span; _ } when span > 0 ->
               let now = Sim.now t.sim in
               let id =
                 Obs.span t.obs ~parent:span ~name:"retransmit" ~at:now
                   ~labels:
                     [ ("from", from_site); ("to", to_site);
                       ("attempt", string_of_int (attempt + 1)) ]
               in
               Obs.end_span t.obs ~id ~at:now
             | _ -> ());
            transmit t ~from_site ~to_site l ~seq ~attempt:(attempt + 1)
              ~timeout:(Float.min (timeout *. t.cfg.backoff) t.cfg.max_timeout)
          end
        | _ -> ())

(* Put journal-unacked messages back on the wire.  Covers two cases:
   after [from_site] itself restarted (its journal entries carry a
   previous incarnation's epoch, so each message is re-sent with a fresh
   sequence number under the current epoch, keeping its stable mid for
   receiver-side deduplication), and after a give-up when the peer comes
   back (the entry's epoch is current, so the original slot is simply
   resumed — re-numbering it would leave a gap the receiver's reorder
   buffer could never fill). *)
let requeue_unacked t ~from_site ~to_site =
  match journal_for t from_site with
  | None -> ()
  | Some j ->
    let l = link t ~from_site ~to_site in
    let unacked : (int, int * int * Msg.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun r ->
        match r with
        | Journal.Outbound { to_site = peer; mid; epoch; seq; payload; _ }
          when String.equal peer to_site ->
          Hashtbl.replace unacked mid (epoch, seq, payload)
        | Journal.Acked { to_site = peer; mid; _ }
          when String.equal peer to_site -> Hashtbl.remove unacked mid
        | _ -> ())
      (Journal.records j);
    let in_flight_mids =
      Hashtbl.fold (fun _ (e, m, _) acc -> if e = l.epoch then m :: acc else acc)
        l.outstanding []
    in
    Hashtbl.fold (fun mid entry acc -> (mid, entry) :: acc) unacked []
    |> List.sort (fun (a, _) (b, _) -> compare a b)  (* original send order *)
    |> List.iter (fun (mid, (epoch, seq, payload)) ->
        if not (List.mem mid in_flight_mids) then begin
          let seq' =
            if epoch = l.epoch then seq
            else begin
              let s = l.next_seq in
              l.next_seq <- s + 1;
              Journal.append j
                (Journal.Outbound
                   { time = Sim.now t.sim; to_site; mid; epoch = l.epoch;
                     seq = s; payload });
              s
            end
          in
          Hashtbl.replace l.outstanding seq' (l.epoch, mid, payload);
          t.requeued <- t.requeued + 1;
          Obs.incr t.obs "reliable_requeued"
            ~labels:[ ("from", from_site); ("to", to_site) ];
          transmit t ~from_site ~to_site l ~seq:seq' ~attempt:0
            ~timeout:t.cfg.retry_timeout
        end)

(* Any frame from [peer] counts as a sign of life.  If we had given up
   on messages towards a suspected peer, hearing it again re-queues the
   journal-unacked ones. *)
let heard t ep peer =
  Hashtbl.replace ep.last_heard peer (Sim.now t.sim);
  if Hashtbl.mem ep.suspected peer then begin
    Hashtbl.remove ep.suspected peer;
    t.recoveries <- t.recoveries + 1;
    Obs.incr t.obs "reliable_recoveries"
      ~labels:[ ("site", ep.ep_site); ("peer", peer) ];
    Queue.iter (fun hook -> hook ~site:ep.ep_site ~peer) t.recover_hooks;
    ep.deliver (Msg.Reset_notice { origin_site = peer });
    requeue_unacked t ~from_site:ep.ep_site ~to_site:peer
  end

let send t ~from_site ~to_site msg =
  if String.equal from_site to_site then
    (* The simulated network never loses local messages; skip the protocol
       so self-sends stay zero-overhead and unsequenced. *)
    Net.send t.net ~from_site ~to_site msg
  else begin
    let l = link t ~from_site ~to_site in
    let mid = l.next_mid in
    l.next_mid <- mid + 1;
    let seq = l.next_seq in
    l.next_seq <- seq + 1;
    (match journal_for t from_site with
     | Some j ->
       (* Write-ahead: the message is remembered before it is on the wire. *)
       Journal.append j
         (Journal.Outbound
            { time = Sim.now t.sim; to_site; mid; epoch = l.epoch; seq;
              payload = msg })
     | None -> ());
    Hashtbl.replace l.outstanding seq (l.epoch, mid, msg);
    t.data_sent <- t.data_sent + 1;
    Obs.incr t.obs "reliable_data_sent"
      ~labels:[ ("from", from_site); ("to", to_site) ];
    transmit t ~from_site ~to_site l ~seq ~attempt:0 ~timeout:t.cfg.retry_timeout
  end

(* Consume the in-order slot [seq]: advance the window, journal the
   consumption, and hand the payload up unless its mid was already
   delivered in a previous epoch (a crash-requeued duplicate). *)
let consume_slot t ep l ~from_site ~epoch ~seq ~mid payload =
  l.expected <- seq + 1;
  let fresh = not (Hashtbl.mem l.delivered_mids mid) in
  Hashtbl.replace l.delivered_mids mid ();
  (match journal_for t ep.ep_site with
   | Some j ->
     Journal.append j
       (Journal.Delivered
          { time = Sim.now t.sim; from_site; epoch; seq; mid; applied = fresh })
   | None -> ());
  if fresh then begin
    t.delivered <- t.delivered + 1;
    Obs.incr t.obs "reliable_delivered"
      ~labels:[ ("from", from_site); ("to", ep.ep_site) ];
    ep.deliver payload
  end
  else begin
    t.dup_suppressed <- t.dup_suppressed + 1;
    Obs.incr t.obs "reliable_dup_suppressed"
      ~labels:[ ("from", from_site); ("to", ep.ep_site) ]
  end

let receive t ep frame =
  match frame with
  | Msg.Data { from_site; epoch; seq; mid; payload } ->
    heard t ep from_site;
    let l = link t ~from_site ~to_site:ep.ep_site in
    if epoch < l.in_epoch then begin
      (* A retransmit from a previous life of [from_site].  Rejecting it
         (and not acking) is what keeps old and new sequence spaces from
         being mis-deduplicated against each other. *)
      t.epoch_rejections <- t.epoch_rejections + 1;
      Obs.incr t.obs "reliable_epoch_rejections"
        ~labels:[ ("from", from_site); ("to", ep.ep_site) ]
    end
    else begin
      if epoch > l.in_epoch then begin
        (* The peer restarted: adopt its new incarnation.  Its sequence
           space restarts at 0; buffered frames belong to the old life.
           delivered_mids survives — it is the cross-incarnation
           duplicate-suppression set. *)
        l.in_epoch <- epoch;
        l.expected <- 0;
        Hashtbl.reset l.held
      end;
      let ack ~epoch ~seq =
        t.acks_sent <- t.acks_sent + 1;
        Obs.incr t.obs "reliable_acks_sent"
          ~labels:[ ("from", ep.ep_site); ("to", from_site) ];
        Net.send t.net ~from_site:ep.ep_site ~to_site:from_site
          (Msg.Ack { from_site = ep.ep_site; epoch; seq })
      in
      let suppress () =
        t.dup_suppressed <- t.dup_suppressed + 1;
        Obs.incr t.obs "reliable_dup_suppressed"
          ~labels:[ ("from", from_site); ("to", ep.ep_site) ]
      in
      let hold () =
        t.reordered <- t.reordered + 1;
        Obs.incr t.obs "reliable_reordered"
          ~labels:[ ("from", from_site); ("to", ep.ep_site) ];
        Hashtbl.replace l.held seq (mid, payload)
      in
      let consume_and_drain () =
        consume_slot t ep l ~from_site ~epoch ~seq ~mid payload;
        let rec drain ack_each =
          match Hashtbl.find_opt l.held l.expected with
          | None -> ()
          | Some (held_mid, held_payload) ->
            let held_seq = l.expected in
            Hashtbl.remove l.held held_seq;
            consume_slot t ep l ~from_site ~epoch:l.in_epoch ~seq:held_seq
              ~mid:held_mid held_payload;
            if ack_each then ack ~epoch:l.in_epoch ~seq:held_seq;
            drain ack_each
        in
        drain
      in
      if not (Option.is_some (journal_for t ep.ep_site)) then begin
        (* No journal: receiver state survives crashes (nothing is
           wiped), so buffered frames may be acknowledged on arrival.
           This branch is the pre-recovery protocol, byte for byte. *)
        ack ~epoch ~seq;
        if seq < l.expected || Hashtbl.mem l.held seq then suppress ()
        else if seq = l.expected then (consume_and_drain ()) false
        else hold ()
      end
      else if seq < l.expected then begin
        (* Consumed in order earlier, so it is in the journal; the
           previous ack may have been lost — ack again. *)
        ack ~epoch ~seq;
        suppress ()
      end
      else if Hashtbl.mem l.held seq then
        (* Buffered but not consumed: held frames are volatile, and a
           crash here would lose a frame the sender believed was safely
           delivered.  The ack waits until in-order consumption journals
           the frame; until then the sender's retransmissions land in
           this branch. *)
        suppress ()
      else if seq = l.expected then begin
        (* Write-ahead order: consume_slot journals the delivery before
           the ack releases the sender's copy. *)
        (consume_and_drain ()) true;
        ack ~epoch ~seq
      end
      else hold ()
    end
  | Msg.Ack { from_site = acker; epoch; seq } ->
    heard t ep acker;
    let l = link t ~from_site:ep.ep_site ~to_site:acker in
    (match Hashtbl.find_opt l.outstanding seq with
     | Some (e, mid, _) when e = epoch ->
       Hashtbl.remove l.outstanding seq;
       (match journal_for t ep.ep_site with
        | Some j ->
          Journal.append j
            (Journal.Acked { time = Sim.now t.sim; to_site = acker; mid })
        | None -> ())
     | _ ->
       (* Ack for a frame this incarnation no longer owns (already acked,
          given up, or sent in a previous life) — ignore. *)
       ())
  | Msg.Heartbeat { origin_site; beat = _ } -> heard t ep origin_site
  | app_msg ->
    (* Unwrapped application message: a local self-send or a sender that
       bypassed the reliable layer. *)
    ep.deliver app_msg

let heartbeat_tick t ep =
  let now = Sim.now t.sim in
  let threshold = suspect_threshold t in
  List.iter
    (fun peer ->
      if not (String.equal peer ep.ep_site) then begin
        ep.beat <- ep.beat + 1;
        t.heartbeats_sent <- t.heartbeats_sent + 1;
        Obs.incr t.obs "reliable_heartbeats_sent" ~labels:[ ("site", ep.ep_site) ];
        Net.send t.net ~from_site:ep.ep_site ~to_site:peer
          (Msg.Heartbeat { origin_site = ep.ep_site; beat = ep.beat });
        match Hashtbl.find_opt ep.last_heard peer with
        | None ->
          (* First sight of this peer: start its grace period now. *)
          Hashtbl.replace ep.last_heard peer now
        | Some last -> if now -. last > threshold then suspect t ep peer
      end)
    t.sites

let register t ~site deliver =
  if Hashtbl.mem t.endpoints site then
    invalid_arg ("Reliable.register: site already registered: " ^ site);
  let ep =
    {
      ep_site = site;
      deliver;
      last_heard = Hashtbl.create 8;
      suspected = Hashtbl.create 4;
      beat = 0;
    }
  in
  Hashtbl.replace t.endpoints site ep;
  t.sites <- List.sort compare (site :: t.sites);
  Net.register t.net ~site (fun frame -> receive t ep frame);
  if t.cfg.heartbeat_period > 0.0 then
    Sim.every t.sim ~period:t.cfg.heartbeat_period
      (fun () -> heartbeat_tick t ep)
      ~cancel:(fun () -> false)

(* -- crash-recovery hooks (driven by Cm_core.Recovery) -- *)

let reset_endpoint t ~site =
  (match Hashtbl.find_opt t.endpoints site with
   | Some ep ->
     Hashtbl.reset ep.last_heard;
     Hashtbl.reset ep.suspected;
     ep.beat <- 0
   | None -> ());
  Hashtbl.iter
    (fun (from_site, to_site) l ->
      if String.equal from_site site then begin
        (* sender half lives at [site] *)
        Hashtbl.reset l.outstanding;
        l.next_seq <- 0
      end;
      if String.equal to_site site then begin
        (* receiver half lives at [site] *)
        Hashtbl.reset l.held;
        l.in_epoch <- 0;
        l.expected <- 0;
        Hashtbl.reset l.delivered_mids
      end)
    t.links

let restore_sender_state t ~from_site ~to_site ~epoch ~next_mid =
  let l = link t ~from_site ~to_site in
  l.epoch <- epoch;
  l.next_seq <- 0;
  l.next_mid <- next_mid

let restore_receiver_state t ~from_site ~to_site ~epoch ~expected
    ~delivered_mids =
  let l = link t ~from_site ~to_site in
  l.in_epoch <- epoch;
  l.expected <- expected;
  List.iter (fun mid -> Hashtbl.replace l.delivered_mids mid ()) delivered_mids

let suspects t ~site =
  match Hashtbl.find_opt t.endpoints site with
  | None -> []
  | Some ep ->
    Hashtbl.fold (fun peer () acc -> peer :: acc) ep.suspected []
    |> List.sort compare

let stats t =
  {
    data_sent = t.data_sent;
    retransmits = t.retransmits;
    acks_sent = t.acks_sent;
    delivered = t.delivered;
    dup_suppressed = t.dup_suppressed;
    reordered = t.reordered;
    heartbeats_sent = t.heartbeats_sent;
    give_ups = t.give_ups;
    suspects = t.suspects_count;
    recoveries = t.recoveries;
    epoch_rejections = t.epoch_rejections;
    requeued = t.requeued;
  }

let pending t =
  Hashtbl.fold (fun _ l acc -> acc + Hashtbl.length l.outstanding) t.links 0
