(** Incremental streaming guarantee monitors (§3.3 online).

    {!Guarantee.check} folds the {e entire} recorded timeline after the
    run ends — O(trace) memory, and a violated κ bound is discovered
    hours too late for a long-lived service to react.  This module turns
    each §3.3.1 guarantee into a small state machine updated once per
    trace event (via {!Cm_rule.Trace.on_record} or explicit {!feed}):

    - {b (1) follows} — set of values the leader has taken; a follower
      take outside the set is flagged the instant it is recorded.
    - {b (2) leads} — multiset of leader takes not yet reflected by the
      follower; entries are discharged when a follower interval carrying
      the value closes strictly after the take.  An eventually-property:
      leftovers become violations only at {!finalize}, but the pending
      count is exported live as an Obs gauge.
    - {b (3) strictly-follows} — co-simulation of the fold's greedy
      order-embedding: a queue of unconsumed leader takes plus a FIFO of
      follower takes awaiting a future leader occurrence; residuals are
      embedded exactly like the fold at {!finalize}.
    - {b (4) metric-follows κ} — the leader's value intervals pruned to
      the κ window (adjacent same-value entries merged, which is
      equivalence-preserving for the fold's predicate); a follower take
      is checked against the window at its own timestamp.
    - {b always-leq} — evaluated at every instant at which any item
      changed, mirroring the fold's sample points.

    Events sharing a timestamp are micro-batched: all state updates of
    the instant apply before any obligation of that instant is
    evaluated, which is what makes the streaming verdicts {e equal} to
    the post-hoc fold (the fold's predicates quantify over the whole
    instant, not the intra-instant event order).  The differential suite
    in [test/test_monitor.ml] locks this equivalence trace-by-trace.

    State per guarantee is bounded by current activity, not trace
    length: the κ window holds only intervals newer than [now − κ], the
    leads pending set only undischarged takes, the strictly queues only
    unmatched takes (all empty on a converged copy); the follows value
    set grows with {e distinct} leader values only.

    On top of the per-guarantee verdicts, a per-copy {b live staleness}
    verdict drives the self-healing layer: a copy is stale at time T
    when its current value was not held by the leader within (T − κ, T]
    — which catches the §5 [Silent_drop] failure (the leader's writes
    keep appearing in the trace while notifications silently die) within
    κ plus one monitor tick, where the post-hoc fold only notices at the
    end of the run.  {!force_refresh} re-evaluates a copy synchronously
    — the probe step of the router's quarantine machinery. *)

type t

type handle
(** One watched guarantee (from {!watch} or a {!watch_copy} family). *)

type verdict = {
  v_holds : bool;  (** no violation so far (or, after finalize, ever) *)
  v_points : int;  (** obligations checked, = the fold's [checked_points] *)
  v_violations : int;  (** obligations failed, = the fold's failure count *)
}

type violation = {
  vi_at : float;  (** simulated time the violation was detected *)
  vi_guarantee : Guarantee.t;
  vi_detail : string;
}

val create : ?sim:Cm_sim.Sim.t -> ?obs:Obs.t -> ?tick:float -> unit -> t
(** A fresh monitor.  [sim] enables the periodic staleness tick (period
    [tick], default 1.0 s — the "poll period" of the κ + tick detection
    bound); without it staleness is still re-evaluated on every relevant
    event and on {!force_refresh}, but not on quiet passage of time.
    [obs] (default {!Obs.noop}) receives per-guarantee [monitor_holds]
    gauges, [monitor_violations] counters, per-copy [monitor_stale]
    gauges and [monitor_forced_refreshes] counters. *)

val attach : t -> Cm_rule.Trace.t -> unit
(** Subscribe to the trace: every subsequent {!Cm_rule.Trace.record} is
    {!feed}ed automatically.  Observation only — the monitor never
    records events, schedules no PRNG draws, and leaves the trace
    byte-identical to an unmonitored run. *)

val feed : t -> Cm_rule.Event.t -> unit
(** Advance the monitors by one event (in time order — the trace
    discipline).  Events that do not change item state ([N], [RR],
    CM-internal chains, …) return immediately.
    @raise Invalid_argument if fed after {!finalize} or out of order. *)

val note_initial : t -> (Cm_rule.Item.t * Cm_rule.Value.t) list -> unit
(** Pre-existing item values, applied at time 0.0 — the monitor-side
    mirror of {!Cm_rule.Timeline.of_trace}'s [initial].  Call before any
    event with a later timestamp is fed. *)

val supported : Guarantee.t -> bool
(** The five streamed forms above.  [Exists_within], [Monitor_window]
    and [Periodic_equal] quantify over dense time and stay post-hoc. *)

val watch : ?ignore_after:float -> t -> Guarantee.t -> handle
(** Stream one guarantee.  [ignore_after] mirrors the fold's parameter
    for {!Guarantee.Leads}: leader takes after it create no obligation
    (used to excuse updates injected too close to the horizon).
    @raise Invalid_argument if [not (supported g)]. *)

val watch_copy :
  t -> source:string -> target:string -> kappa:float option -> unit
(** Watch a [constraint copy] pair as a {e family}: per parameter
    vector, the three logical forms plus — when [kappa] is proved —
    metric-follows and the live staleness verdict.  Instances appear
    lazily at their first event.  Idempotent per (source, target). *)

val watched_copies : t -> (string * string) list
(** Declaration order. *)

val on_violation : t -> (violation -> unit) -> unit
(** Subscribe to every point violation, in detection order. *)

val on_staleness :
  t -> (source:string -> target:string -> at:float -> stale:bool -> unit) -> unit
(** Subscribe to per-copy staleness {e transitions} (aggregated over the
    family's parameter vectors).  The router's quarantine trigger. *)

val copy_stale : t -> source:string -> target:string -> bool
(** Current staleness verdict of a watched copy; [false] for unwatched
    pairs and for pairs with no proved κ. *)

val force_refresh : t -> source:string -> target:string -> bool
(** Synchronously re-evaluate the copy's staleness at the current time
    (the quarantine probe's "one synchronous poll": the simulation's
    ground-truth leader timeline stands in for the poll result) and
    return the refreshed verdict — [true] = still stale. *)

val crash_wipe : t -> owns:(Cm_rule.Item.t -> bool) -> int
(** Model a site crash: monitor state is volatile, so every watcher
    homed at the crashed site (its follower/right item satisfies
    [owns]) loses its in-memory state — value tracks, metric windows,
    pending leads obligations, strictly queues — and stops hearing the
    live feed.  Copy-family instances whose watchers went down freeze
    their staleness verdict until recovery.  Returns the number of
    watchers wiped.  Accumulated points/violations are kept: those were
    already reported before the crash.  Pair with {!relearn} at
    restart. *)

val relearn : t -> Cm_rule.Event.t list -> unit
(** Journal-replay recovery for watchers downed by {!crash_wipe}: feed
    the full journaled event history (any site order; re-sorted stably
    by time here) through the wiped watchers only, rebuilding their
    state *silently* — no points are scored, no violations reported, no
    staleness transitions published during the replay, because the
    surviving watchers already observed (and reported on) this history
    live.  What the replay restores is the *obligations*: a leads
    trigger journaled before the crash re-enters the pending set, so a
    violation that occurred before the crash but whose detection
    deadline falls after it is still reported at {!finalize} — the
    crash cannot launder a violation.  Watchers then resume hearing the
    live feed, and revived copy instances re-evaluate staleness once
    (subscribers hear only genuine transitions).
    @raise Invalid_argument after {!finalize}. *)

val finalize : t -> horizon:float -> unit
(** Resolve the eventually-properties: close open intervals at
    [horizon], discharge or fail the remaining leads obligations, embed
    the residual strictly-follows queues.  Verdicts then equal
    [Guarantee.check ~horizon] over the same events (with matching
    [ignore_after]), provided every fed event has time ≤ [horizon].
    One-shot: further {!feed}s raise. *)

val verdict : handle -> verdict
val handle_guarantee : handle -> Guarantee.t

val family_verdicts :
  t -> source:string -> target:string -> (Guarantee.t * verdict) list
(** Per-instance verdicts of a watched copy family, keys sorted, forms
    in §3.3.1 order — deterministic for reports. *)
