type notify_decl = {
  n_table : string;
  n_column : string;
  n_key : string;
  n_send : bool;
  n_threshold : float option;
}

type item_decl = {
  i_base : string;
  i_params : string list;
  i_read : string option;
  i_write : string option;
  i_delete : string option;
  i_notify : notify_decl option;
  i_no_spontaneous : bool;
  i_key_template : string option;
  i_writable : bool;
  i_line : int;
}

type kind = Relational | Kvfile

type op = Read_op | Write_op | Notify_op | Delete_op

type source_decl = {
  s_site : string;
  s_kind : kind;
  s_items : item_decl list;
  s_init : string list;
  s_latencies : (op * float) list;
  s_deltas : (op * float) list;
  s_line : int;
}

type location_decl = { l_base : string; l_site : string; l_line : int }

type rule_decl = { r_text : string; r_line : int }

type constraint_decl = {
  c_source : string;
  c_target : string;
  c_required : bool;
  c_line : int;
}

type dependency_decl = { d_text : string; d_line : int }

type t = {
  sources : source_decl list;
  locations : location_decl list;
  rules : rule_decl list;
  constraints : constraint_decl list;
  dependencies : dependency_decl list;
}

type error = { e_line : int; e_msg : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.e_line e.e_msg

let errors_to_string errors = String.concat "\n" (List.map error_to_string errors)

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

(* "item Salary1(n)" -> base + param names *)
let parse_item_head word =
  match String.index_opt word '(' with
  | None -> Ok (word, [])
  | Some i ->
    let base = String.sub word 0 i in
    let rest = String.sub word (i + 1) (String.length word - i - 1) in
    if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
      Error ("malformed item declaration: " ^ word)
    else
      let inner = String.sub rest 0 (String.length rest - 1) in
      let params =
        String.split_on_char ',' inner |> List.map String.trim
        |> List.filter (fun p -> p <> "")
      in
      Ok (base, params)

let op_of_string = function
  | "read" -> Some Read_op
  | "write" -> Some Write_op
  | "notify" -> Some Notify_op
  | "delete" -> Some Delete_op
  | _ -> None

let empty_item base params line =
  {
    i_base = base;
    i_params = params;
    i_read = None;
    i_write = None;
    i_delete = None;
    i_notify = None;
    i_no_spontaneous = false;
    i_key_template = None;
    i_writable = false;
    i_line = line;
  }

type state = {
  mutable sources : source_decl list;  (* reversed *)
  mutable locations : location_decl list;  (* reversed *)
  mutable rule_lines : rule_decl list;  (* reversed *)
  mutable constraint_lines : constraint_decl list;  (* reversed *)
  mutable dependency_lines : dependency_decl list;  (* reversed *)
  mutable cur_source : source_decl option;
  mutable cur_item : item_decl option;
}

let flush_item st =
  match st.cur_item, st.cur_source with
  | Some item, Some src ->
    st.cur_source <- Some { src with s_items = src.s_items @ [ item ] };
    st.cur_item <- None
  | Some _, None -> ()
  | None, _ -> ()

let flush_source st =
  flush_item st;
  match st.cur_source with
  | Some src ->
    st.sources <- src :: st.sources;
    st.cur_source <- None
  | None -> ()

let rest_after line n_words =
  (* The raw text after the first n_words words — preserves SQL spacing. *)
  let rec skip i remaining =
    if remaining = 0 then i
    else if i >= String.length line then i
    else if line.[i] = ' ' then
      let rec skip_spaces j = if j < String.length line && line.[j] = ' ' then skip_spaces (j + 1) else j in
      skip (skip_spaces i) (remaining - 1)
    else skip (i + 1) remaining
  in
  let start =
    let rec skip_spaces j = if j < String.length line && line.[j] = ' ' then skip_spaces (j + 1) else j in
    skip (skip_spaces 0) n_words
  in
  String.trim (String.sub line start (String.length line - start))

let parse_notify words =
  (* employees.salary key empid [threshold 0.1 | observe] *)
  match words with
  | target :: "key" :: key :: rest -> (
    match String.split_on_char '.' target with
    | [ table; column ] -> (
      let base = { n_table = table; n_column = column; n_key = key; n_send = true; n_threshold = None } in
      match rest with
      | [] -> Ok base
      | [ "observe" ] -> Ok { base with n_send = false }
      | [ "threshold"; v ] -> (
        match float_of_string_opt v with
        | Some f -> Ok { base with n_threshold = Some f }
        | None -> Error ("bad threshold: " ^ v))
      | _ -> Error "malformed notify declaration")
    | _ -> Error ("notify target must be table.column: " ^ target))
  | _ -> Error "notify declaration needs: table.column key <column>"

let parse_partial src_text =
  let st =
    { sources = []; locations = []; rule_lines = []; constraint_lines = [];
      dependency_lines = []; cur_source = None; cur_item = None }
  in
  let constraint_seen = Hashtbl.create 8 in
  let errors = ref [] in
  (* Accumulate every problem instead of stopping at the first: `cmtool
     check` reports them all in one run. *)
  let fail lineno msg = errors := { e_line = lineno; e_msg = msg } :: !errors in
  let lines = String.split_on_char '\n' src_text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let line = String.trim line in
      if line <> "" then
        match split_words line with
        | "source" :: site :: kind :: [] -> (
          flush_source st;
          match kind with
          | "relational" ->
            st.cur_source <-
              Some
                { s_site = site; s_kind = Relational; s_items = []; s_init = [];
                  s_latencies = []; s_deltas = []; s_line = lineno }
          | "kvfile" ->
            st.cur_source <-
              Some
                { s_site = site; s_kind = Kvfile; s_items = []; s_init = [];
                  s_latencies = []; s_deltas = []; s_line = lineno }
          | other -> fail lineno ("unknown source kind: " ^ other))
        | "location" :: base :: site :: [] ->
          st.locations <-
            { l_base = base; l_site = site; l_line = lineno } :: st.locations
        | "rule" :: _ ->
          st.rule_lines <-
            { r_text = rest_after line 1; r_line = lineno } :: st.rule_lines
        | "constraint" :: rest -> (
          let add_copy source target required =
            (* Duplicate (source, target) pairs used to be silently
               order-dependent (first declaration won); reject them so the
               effective constraint set never depends on file order. *)
            match Hashtbl.find_opt constraint_seen (source, target) with
            | Some first ->
              fail lineno
                (Printf.sprintf
                   "duplicate constraint copy %s %s (first declared on line %d)"
                   source target first)
            | None ->
              Hashtbl.replace constraint_seen (source, target) lineno;
              st.constraint_lines <-
                { c_source = source; c_target = target; c_required = required;
                  c_line = lineno }
                :: st.constraint_lines
          in
          match rest with
          | [ "copy"; source; target ] -> add_copy source target false
          | [ "copy"; source; target; "required" ] -> add_copy source target true
          | _ ->
            fail lineno
              "constraint declaration needs: copy <source> <target> [required]")
        | "dependency" :: _ :: _ ->
          st.dependency_lines <-
            { d_text = rest_after line 1; d_line = lineno } :: st.dependency_lines
        | [ "dependency" ] -> fail lineno "dependency declaration needs a body"
        | "init" :: _ -> (
          match st.cur_source with
          | Some src -> st.cur_source <- Some { src with s_init = src.s_init @ [ rest_after line 1 ] }
          | None -> fail lineno "init outside a source block")
        | "item" :: head :: [] -> (
          match st.cur_source with
          | None -> fail lineno "item outside a source block"
          | Some _ -> (
            flush_item st;
            match parse_item_head head with
            | Ok (base, params) -> st.cur_item <- Some (empty_item base params lineno)
            | Error m -> fail lineno m))
        | ("read" | "write" | "delete") :: _ -> (
          let sql = rest_after line 1 in
          match st.cur_item with
          | None -> fail lineno "SQL template outside an item block"
          | Some item ->
            let item =
              match List.hd (split_words line) with
              | "read" -> { item with i_read = Some sql }
              | "write" -> { item with i_write = Some sql }
              | _ -> { item with i_delete = Some sql }
            in
            st.cur_item <- Some item)
        | "notify" :: rest -> (
          match st.cur_item with
          | None -> fail lineno "notify outside an item block"
          | Some item -> (
            match parse_notify rest with
            | Ok n -> st.cur_item <- Some { item with i_notify = Some n }
            | Error m -> fail lineno m))
        | [ "no_spontaneous" ] -> (
          match st.cur_item with
          | None -> fail lineno "no_spontaneous outside an item block"
          | Some item -> st.cur_item <- Some { item with i_no_spontaneous = true })
        | "key" :: _ -> (
          match st.cur_item with
          | None -> fail lineno "key outside an item block"
          | Some item -> st.cur_item <- Some { item with i_key_template = Some (rest_after line 1) })
        | [ "writable" ] -> (
          match st.cur_item with
          | None -> fail lineno "writable outside an item block"
          | Some item -> st.cur_item <- Some { item with i_writable = true })
        | [ ("latency" | "delta") as what; op_name; v ] -> (
          match st.cur_source, op_of_string op_name, float_of_string_opt v with
          | None, _, _ -> fail lineno (what ^ " outside a source block")
          | _, None, _ -> fail lineno ("unknown operation: " ^ op_name)
          | _, _, None -> fail lineno ("bad number: " ^ v)
          | Some src, Some op, Some f ->
            flush_item st;
            let src = match st.cur_source with Some s -> s | None -> src in
            st.cur_source <-
              Some
                (if what = "latency" then { src with s_latencies = src.s_latencies @ [ (op, f) ] }
                 else { src with s_deltas = src.s_deltas @ [ (op, f) ] }))
        | word :: _ -> fail lineno ("unrecognized directive: " ^ word)
        | [] -> ())
    lines;
  flush_source st;
  ( {
      sources = List.rev st.sources;
      locations = List.rev st.locations;
      rules = List.rev st.rule_lines;
      constraints = List.rev st.constraint_lines;
      dependencies = List.rev st.dependency_lines;
    },
    List.rev !errors )

let parse src_text =
  match parse_partial src_text with
  | t, [] -> Ok t
  | _, errors -> Error errors

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error m -> Error [ { e_line = 0; e_msg = m } ]

let locator ?(default = "unknown") (t : t) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun src -> List.iter (fun item -> Hashtbl.replace table item.i_base src.s_site) src.s_items)
    t.sources;
  List.iter (fun l -> Hashtbl.replace table l.l_base l.l_site) t.locations;
  fun item ->
    match Hashtbl.find_opt table item.Cm_rule.Item.base with
    | Some site -> site
    | None -> default

let required_constraints (t : t) =
  List.filter_map
    (fun c -> if c.c_required then Some (c.c_source, c.c_target) else None)
    t.constraints

let sites (t : t) =
  let from_sources = List.map (fun s -> s.s_site) t.sources in
  let from_locations = List.map (fun l -> l.l_site) t.locations in
  List.sort_uniq compare (from_sources @ from_locations)
