module Sim = Cm_sim.Sim
module Db = Cm_relational.Database
module Health = Cm_sources.Health
open Cm_rule

type notify_spec = {
  table : string;
  column : string;
  key_column : string;
  send : bool;
  filter : (old_value:Value.t -> new_value:Value.t -> bool) option;
  filter_expr : Expr.t option;
}

type existence_spec = { ex_base : string; ex_table : string; ex_key_column : string }

type item_binding = {
  base : string;
  params : string list;
  read_sql : string option;
  write_sql : string option;
  delete_sql : string option;
  notify : notify_spec option;
  no_spontaneous : bool;
  periodic : float option;
}

type latencies = { read : float; write : float; notify : float; delete : float }

let default_latencies = { read = 0.2; write = 0.2; notify = 1.0; delete = 0.2 }

type deltas = latencies

type compiled = {
  binding : item_binding;
  read_stmt : Cm_relational.Sql_ast.stmt option;
  write_stmt : Cm_relational.Sql_ast.stmt option;
  delete_stmt : Cm_relational.Sql_ast.stmt option;
}

type t = {
  sim : Sim.t;
  db : Db.t;
  site : string;
  emit : Cmi.emit;
  report : Cmi.failure_report;
  latencies : latencies;
  deltas : deltas;
  bindings : (string, compiled) Hashtbl.t;  (* by base *)
  existence : existence_spec list;
  health : Health.t;
  mutable self_write : bool;
}

let health t = t.health

let compile_sql what base = function
  | None -> None
  | Some src -> (
    match Cm_relational.Sql_parser.parse src with
    | stmt -> Some stmt
    | exception Cm_relational.Sql_parser.Parse_error m ->
      invalid_arg (Printf.sprintf "Tr_relational: bad %s SQL for %s: %s" what base m))

let sql_params t (item : Item.t) extra =
  match Hashtbl.find_opt t.bindings item.Item.base with
  | None -> extra
  | Some c -> (
    match List.combine c.binding.params item.Item.params with
    | pairs -> pairs @ extra
    | exception Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "Tr_relational: item %s has wrong parameter count"
           (Item.to_string item)))

let single_value = function
  | Db.Rows { rows = (v :: _) :: _; _ } -> Some v
  | Db.Rows _ -> None
  | Db.Affected _ | Db.Done -> None

let current_value t item =
  if Health.mode t.health = Health.Down then None
  else
    match Hashtbl.find_opt t.bindings item.Item.base with
    | None -> None
    | Some { read_stmt = None; _ } -> None
    | Some { read_stmt = Some stmt; _ } -> (
      match Db.exec_stmt t.db ~params:(sql_params t item []) stmt with
      | Ok result -> single_value result
      | Error _ -> None)

let rule_id t base kind = Printf.sprintf "%s/%s/%s" t.site base kind

let interface_rules t =
  Hashtbl.fold
    (fun base c acc ->
      let b = c.binding in
      let pattern = Interface.family base b.params in
      let rules = ref [] in
      let add r = rules := r :: !rules in
      if b.write_sql <> None then
        add (Interface.write ~id:(rule_id t base "write") ~delta:t.deltas.write pattern);
      if b.read_sql <> None then
        add (Interface.read ~id:(rule_id t base "read") ~delta:t.deltas.read pattern);
      if b.delete_sql <> None then
        add (Interface.delete ~id:(rule_id t base "delete") ~delta:t.deltas.delete pattern);
      (match b.notify with
       | Some { send = true; filter_expr = None; _ } ->
         add (Interface.notify ~id:(rule_id t base "notify") ~delta:t.deltas.notify pattern)
       | Some { send = true; filter_expr = Some condition; _ } ->
         add
           (Interface.conditional_notify ~id:(rule_id t base "notify")
              ~delta:t.deltas.notify ~condition pattern)
       | _ -> ());
      if b.no_spontaneous then
        add (Interface.no_spontaneous_write ~id:(rule_id t base "nospont") pattern);
      (match b.periodic with
       | Some period ->
         add
           (Interface.periodic_notify ~id:(rule_id t base "pnotify") ~period
              ~delta:t.deltas.notify pattern)
       | None -> ());
      !rules @ acc)
    t.bindings []
  |> List.sort (fun a b -> compare a.Rule.id b.Rule.id)

(* --- request handling (WR / RR / DR) --- *)

let delayed_op t ~latency ~bound ~perform =
  let extra = Health.extra_latency t.health in
  let delay = latency +. extra in
  Sim.schedule t.sim ~delay (fun () ->
      perform ();
      if delay > bound then t.report Msg.Metric)

let down t =
  if Health.mode t.health = Health.Down then begin
    t.report Msg.Logical;
    true
  end
  else false

let perform_write t item v stmt ~provenance =
  if Health.mode t.health = Health.Down then t.report Msg.Logical
  else begin
    t.self_write <- true;
    let result = Db.exec_stmt t.db ~params:(sql_params t item [ ("b", v) ]) stmt in
    t.self_write <- false;
    match result with
    | Ok _ -> ignore (t.emit (Event.w item v) ~kind:provenance)
    | Error e ->
      Logs.warn (fun m ->
          m "translator %s: write to %s rejected: %s" t.site (Item.to_string item)
            (Db.error_to_string e));
      (* A CHECK rejection of a CMS-generated write means the local guard
         held against a decision computed from a stale view (e.g. a limit
         grant queued across a peer's crash).  The constraint is intact
         and the managing rules will re-derive a fresh decision, so the
         write is late, not wrong: a metric failure.  Anything else
         (missing table, type error) is a logical one. *)
      (match e with
       | Db.Check_failed _ -> t.report Msg.Metric
       | _ -> t.report Msg.Logical)
  end

let perform_delete t item stmt ~provenance =
  if Health.mode t.health = Health.Down then t.report Msg.Logical
  else begin
    t.self_write <- true;
    let result = Db.exec_stmt t.db ~params:(sql_params t item []) stmt in
    t.self_write <- false;
    match result with
    | Ok _ -> ignore (t.emit (Event.del item) ~kind:provenance)
    | Error e ->
      Logs.warn (fun m ->
          m "translator %s: delete of %s rejected: %s" t.site (Item.to_string item)
            (Db.error_to_string e));
      (match e with
       | Db.Check_failed _ -> t.report Msg.Metric
       | _ -> t.report Msg.Logical)
  end

let request t desc ~kind =
  let event = t.emit desc ~kind in
  match desc.Event.name, desc.Event.args with
  | "WR", [ Event.Ai item; Event.Av v ] -> (
    if not (down t) then
      match Hashtbl.find_opt t.bindings item.Item.base with
      | Some { write_stmt = Some stmt; _ } ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "write"; trigger = event.Event.id }
        in
        delayed_op t ~latency:t.latencies.write ~bound:t.deltas.write ~perform:(fun () ->
            perform_write t item v stmt ~provenance)
      | _ ->
        Logs.err (fun m ->
            m "translator %s: no write interface for %s" t.site (Item.to_string item)))
  | "RR", [ Event.Ai item ] -> (
    if not (down t) then
      match current_value t item with
      | None -> ()  (* item absent: the read interface's condition X=b is false *)
      | Some v ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "read"; trigger = event.Event.id }
        in
        delayed_op t ~latency:t.latencies.read ~bound:t.deltas.read ~perform:(fun () ->
            ignore (t.emit (Event.r item v) ~kind:provenance)))
  | "DR", [ Event.Ai item ] -> (
    if not (down t) then
      match Hashtbl.find_opt t.bindings item.Item.base with
      | Some { delete_stmt = Some stmt; _ } ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "delete"; trigger = event.Event.id }
        in
        delayed_op t ~latency:t.latencies.delete ~bound:t.deltas.delete
          ~perform:(fun () -> perform_delete t item stmt ~provenance)
      | _ ->
        Logs.err (fun m ->
            m "translator %s: no delete interface for %s" t.site (Item.to_string item)))
  | name, _ ->
    Logs.err (fun m -> m "translator %s: unsupported request %s" t.site name)

(* --- trigger (observer) handling: spontaneous changes --- *)

let watched_change t ~table ~column ~old_row ~new_row =
  Hashtbl.fold
    (fun base c acc ->
      match c.binding.notify with
      | Some spec when String.equal spec.table table && String.equal spec.column column ->
        let old_value = Cm_relational.Row.get_or_null old_row column in
        let new_value = Cm_relational.Row.get_or_null new_row column in
        if Value.equal old_value new_value then acc
        else
          (* The item's parameter vector mirrors the binding's arity: a
             parameter-free binding denotes a single item regardless of
             the row key. *)
          let item =
            match c.binding.params with
            | [] -> Item.make base
            | _ ->
              Item.make base
                ~params:[ Cm_relational.Row.get_or_null new_row spec.key_column ]
          in
          (item, spec, old_value, new_value) :: acc
      | _ -> acc)
    t.bindings []

let columns_changed old_row new_row =
  List.filter_map
    (fun (col, v) ->
      if Value.equal v (Cm_relational.Row.get_or_null old_row col) then None else Some col)
    (Cm_relational.Row.to_list new_row)

let on_db_change t change =
  if not t.self_write then
    match change with
    | Db.Updated { table; old_row; new_row } ->
      List.iter
        (fun column ->
          List.iter
            (fun (item, spec, old_value, new_value) ->
              let ws =
                t.emit (Event.ws ~old:old_value item new_value) ~kind:Event.Spontaneous
              in
              let wanted =
                spec.send
                &&
                match spec.filter with
                | None -> true
                | Some f -> f ~old_value ~new_value
              in
              if wanted && not (Health.dropping_notifications t.health) then begin
                let provenance =
                  Event.Generated
                    {
                      rule_id = rule_id t item.Item.base "notify";
                      trigger = ws.Event.id;
                    }
                in
                delayed_op t ~latency:t.latencies.notify ~bound:t.deltas.notify
                  ~perform:(fun () ->
                    if Health.mode t.health = Health.Down then t.report Msg.Logical
                    else ignore (t.emit (Event.n item new_value) ~kind:provenance))
              end)
            (watched_change t ~table ~column ~old_row ~new_row))
        (columns_changed old_row new_row)
    | Db.Inserted { table; row } ->
      List.iter
        (fun spec ->
          if String.equal spec.ex_table table then begin
            let key = Cm_relational.Row.get_or_null row spec.ex_key_column in
            let item = Item.make spec.ex_base ~params:[ key ] in
            ignore (t.emit (Event.ins item) ~kind:Event.Spontaneous)
          end)
        t.existence
    | Db.Deleted { table; row } ->
      List.iter
        (fun spec ->
          if String.equal spec.ex_table table then begin
            let key = Cm_relational.Row.get_or_null row spec.ex_key_column in
            let item = Item.make spec.ex_base ~params:[ key ] in
            ignore (t.emit (Event.del item) ~kind:Event.Spontaneous)
          end)
        t.existence

let create ~sim ~db ~site ~emit ~report ?(latencies = default_latencies) ?deltas
    ?(existence = []) bindings =
  let deltas =
    match deltas with
    | Some d -> d
    | None ->
      {
        read = latencies.read *. 5.0;
        write = latencies.write *. 5.0;
        notify = latencies.notify *. 5.0;
        delete = latencies.delete *. 5.0;
      }
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Hashtbl.mem table b.base then
        invalid_arg ("Tr_relational: duplicate binding for " ^ b.base);
      Hashtbl.replace table b.base
        {
          binding = b;
          read_stmt = compile_sql "read" b.base b.read_sql;
          write_stmt = compile_sql "write" b.base b.write_sql;
          delete_stmt = compile_sql "delete" b.base b.delete_sql;
        })
    bindings;
  let t =
    {
      sim;
      db;
      site;
      emit;
      report;
      latencies;
      deltas;
      bindings = table;
      existence;
      health = Health.create ();
      self_write = false;
    }
  in
  Db.on_change db (on_db_change t);
  (* Periodic-notify interfaces: the source pushes the current value
     every period, whether or not it changed (§3.1.1). *)
  Hashtbl.iter
    (fun base c ->
      match c.binding.periodic with
      | None -> ()
      | Some period ->
        if c.binding.params <> [] then
          invalid_arg
            ("Tr_relational: periodic notify needs a parameter-free item: " ^ base);
        let item = Item.make base in
        Sim.every sim ~period
          (fun () ->
            if Health.mode t.health = Health.Down then t.report Msg.Logical
            else begin
              let p_event = t.emit (Event.p period) ~kind:Event.Spontaneous in
              if not (Health.dropping_notifications t.health) then
                match current_value t item with
                | None -> ()
                | Some v ->
                  let provenance =
                    Event.Generated
                      { rule_id = rule_id t base "pnotify"; trigger = p_event.Event.id }
                  in
                  delayed_op t ~latency:t.latencies.notify ~bound:t.deltas.notify
                    ~perform:(fun () ->
                      ignore (t.emit (Event.n item v) ~kind:provenance))
            end)
          ~cancel:(fun () -> false))
    t.bindings;
  t

let cmi t =
  {
    Cmi.site = t.site;
    name = "relational";
    owns =
      (fun base ->
        Hashtbl.mem t.bindings base
        || List.exists (fun s -> String.equal s.ex_base base) t.existence);
    bases =
      List.sort_uniq String.compare
        (Hashtbl.fold
           (fun base _ acc -> base :: acc)
           t.bindings
           (List.map (fun s -> s.ex_base) t.existence));
    interface_rules = (fun () -> interface_rules t);
    current_value = current_value t;
    request = request t;
  }

let exec_app t ?params src =
  Health.check t.health ~name:"relational";
  Db.exec t.db ?params src
