(* Crash-recovery manager: the protocol that makes Journal's memory
   actionable (paper §5, ISSUE 3).

   crash:    take the site's network endpoint down.  Volatile state is
             not touched yet — a real crash does not get to run code.
   restart:  bring the endpoint back, wipe the volatile state the crash
             actually destroyed (shell store, reliable link state),
             derive the durable state from the journal (checkpoint +
             replay of everything after it), restore it, re-queue
             journal-unacked outbound messages under a fresh epoch, and
             report the crash as a *metric* failure — with the journal
             the site's updates arrive late, never never.

   The derived state is a pure function of the journal, which is also
   how checkpoints are taken: a checkpoint is derive() frozen into a
   record, so replay-from-checkpoint and replay-from-origin agree by
   construction. *)

module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Item = Cm_rule.Item

type stats = {
  crashes : int;
  restarts : int;
  replayed_records : int;
  checkpoints : int;
}

type t = {
  sim : Sim.t;
  net : Msg.t Net.t;
  reliable : Reliable.t option;
  journals : Journal.registry;
  obs : Obs.t;
  mode : Journal.durability;
  checkpoint_period : float;
  shells : (string, Shell.t) Hashtbl.t;
  mutable crashes : int;
  mutable restarts : int;
  mutable replayed : int;
  mutable checkpoints_taken : int;
}

let default_checkpoint_period = 60.0

let create ~sim ~net ?reliable ~journals ?(obs = Obs.noop)
    ?(checkpoint_period = default_checkpoint_period) mode =
  {
    sim;
    net;
    reliable;
    journals;
    obs;
    mode;
    checkpoint_period;
    shells = Hashtbl.create 8;
    crashes = 0;
    restarts = 0;
    replayed = 0;
    checkpoints_taken = 0;
  }

let mode t = t.mode
let journals t = t.journals

(* -- journal folding -- *)

type out_state = {
  mutable next_mid : int;
  unacked : (int, int * int * Msg.t) Hashtbl.t;  (* mid -> epoch, seq, payload *)
}

type in_state = {
  mutable in_epoch : int;
  mutable in_expected : int;
  delivered : (int, unit) Hashtbl.t;
}

type derived = {
  d_incarnation : int;
  d_store : (Item.t * Cm_rule.Value.t) list;  (* in item order *)
  d_out : (string * out_state) list;  (* in peer order *)
  d_in : (string * in_state) list;  (* in peer order *)
  d_epoch_ops : Shell.epoch_op list;  (* rule-epoch transitions, in order *)
  d_replayed : int;  (* records folded, checkpoint base included *)
}

let derive j =
  let store = ref Item.Map.empty in
  let outs : (string, out_state) Hashtbl.t = Hashtbl.create 4 in
  let ins : (string, in_state) Hashtbl.t = Hashtbl.create 4 in
  let incarnation = ref 0 in
  let replayed = ref 0 in
  let rev_ops : Shell.epoch_op list ref = ref [] in
  let out_for peer =
    match Hashtbl.find_opt outs peer with
    | Some o -> o
    | None ->
      let o = { next_mid = 0; unacked = Hashtbl.create 8 } in
      Hashtbl.replace outs peer o;
      o
  in
  let in_for peer =
    match Hashtbl.find_opt ins peer with
    | Some i -> i
    | None ->
      let i = { in_epoch = 0; in_expected = 0; delivered = Hashtbl.create 16 } in
      Hashtbl.replace ins peer i;
      i
  in
  let fold r =
    incr replayed;
    match r with
    | Journal.Store_write { item; value; _ } ->
      store := Item.Map.add item value !store
    | Journal.Outbound { to_site; mid; epoch; seq; payload; _ } ->
      let o = out_for to_site in
      o.next_mid <- max o.next_mid (mid + 1);
      Hashtbl.replace o.unacked mid (epoch, seq, payload)
    | Journal.Acked { to_site; mid; _ } ->
      Hashtbl.remove (out_for to_site).unacked mid
    | Journal.Delivered { from_site; epoch; seq; mid; applied = _; _ } ->
      let i = in_for from_site in
      i.in_epoch <- epoch;
      i.in_expected <- seq + 1;
      Hashtbl.replace i.delivered mid ()
    | Journal.Restarted { incarnation = n; _ } ->
      incarnation := max !incarnation n
    | Journal.Epoch_proposed { epoch; rules; _ } ->
      rev_ops := Shell.Op_propose (epoch, rules) :: !rev_ops
    | Journal.Epoch_cutover { epoch; _ } ->
      rev_ops := Shell.Op_cutover epoch :: !rev_ops
    | Journal.Epoch_retired { epoch; _ } ->
      rev_ops := Shell.Op_retire epoch :: !rev_ops
    | Journal.Checkpoint
        { incarnation = n; store = st; links; rule_epochs; active_epoch = _; _ }
      ->
      (* Checkpoint base: replace everything derived so far.  The frozen
         epoch phases reconstruct canonically as an op sequence: all
         proposals ascending, then a cutover for every epoch past the
         proposed phase ascending (cutovers are monotonic, so the last
         one is the active epoch), then the retirements.  A retire of a
         merely proposed epoch is impossible, so phases determine the
         ops unambiguously. *)
      rev_ops := [];
      List.iter
        (fun (e, _, rules) ->
          if e > 0 then rev_ops := Shell.Op_propose (e, rules) :: !rev_ops)
        rule_epochs;
      List.iter
        (fun (e, phase, _) ->
          if e > 0 && phase <> Journal.Ep_proposed then
            rev_ops := Shell.Op_cutover e :: !rev_ops)
        rule_epochs;
      List.iter
        (fun (e, phase, _) ->
          if phase = Journal.Ep_retired then
            rev_ops := Shell.Op_retire e :: !rev_ops)
        rule_epochs;
      incarnation := max !incarnation n;
      store := List.fold_left (fun m (it, v) -> Item.Map.add it v m) Item.Map.empty st;
      Hashtbl.reset outs;
      Hashtbl.reset ins;
      List.iter
        (fun (l : Journal.link_state) ->
          let o = out_for l.Journal.peer in
          o.next_mid <- l.Journal.next_mid;
          List.iter
            (fun (mid, epoch, seq, payload) ->
              Hashtbl.replace o.unacked mid (epoch, seq, payload))
            l.Journal.unacked;
          let i = in_for l.Journal.peer in
          i.in_epoch <- l.Journal.in_epoch;
          i.in_expected <- l.Journal.in_expected;
          List.iter (fun mid -> Hashtbl.replace i.delivered mid ())
            l.Journal.delivered_mids)
        links
    | Journal.Epoch_rollback _ ->
      (* Documentation only: the rollback's epoch-state effects replay
         via its own Epoch_proposed / Epoch_cutover records. *)
      ()
    | Journal.Event _ | Journal.Fire_sent _ -> ()
  in
  let base, rest = Journal.replay_base j in
  Option.iter fold base;
  List.iter fold rest;
  let sorted_peers tbl =
    Hashtbl.fold (fun peer s acc -> (peer, s) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    d_incarnation = !incarnation;
    d_store = Item.Map.bindings !store;
    d_out = sorted_peers outs;
    d_in = sorted_peers ins;
    d_epoch_ops = List.rev !rev_ops;
    d_replayed = !replayed;
  }

(* Epoch state implied by a transition sequence — the checkpoint's
   frozen form of [d_epoch_ops].  Keeping this a function of the journal
   (rather than asking the shell) preserves the invariant that a
   checkpoint is derive() frozen into a record. *)
let epoch_summary ops =
  let phases :
      (int, Journal.epoch_phase * Cm_rule.Rule.t list) Hashtbl.t =
    Hashtbl.create 4
  in
  let active = ref 0 in
  List.iter
    (function
      | Shell.Op_propose (e, rules) ->
        Hashtbl.replace phases e (Journal.Ep_proposed, rules)
      | Shell.Op_cutover e ->
        let old_rules =
          match Hashtbl.find_opt phases !active with
          | Some (_, r) -> r
          | None -> []  (* epoch 0: configuration, no journaled rules *)
        in
        Hashtbl.replace phases !active (Journal.Ep_draining, old_rules);
        (match Hashtbl.find_opt phases e with
        | Some (_, rules) -> Hashtbl.replace phases e (Journal.Ep_active, rules)
        | None -> Hashtbl.replace phases e (Journal.Ep_active, []));
        active := e
      | Shell.Op_retire e ->
        let rules =
          match Hashtbl.find_opt phases e with Some (_, r) -> r | None -> []
        in
        Hashtbl.replace phases e (Journal.Ep_retired, rules))
    ops;
  let entries =
    Hashtbl.fold
      (fun e (phase, rules) acc ->
        (e, phase, (if e = 0 then [] else rules)) :: acc)
      phases []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (entries, !active)

(* -- checkpoints -- *)

let checkpoint_now t ~site =
  let j = Journal.for_site t.journals ~site in
  let d = derive j in
  let links =
    let peers =
      List.sort_uniq String.compare (List.map fst d.d_out @ List.map fst d.d_in)
    in
    List.map
      (fun peer ->
        let next_mid, unacked =
          match List.assoc_opt peer d.d_out with
          | Some o ->
            ( o.next_mid,
              Hashtbl.fold (fun mid (e, s, p) acc -> (mid, e, s, p) :: acc)
                o.unacked []
              |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) )
          | None -> (0, [])
        in
        let in_epoch, in_expected, delivered_mids =
          match List.assoc_opt peer d.d_in with
          | Some i ->
            ( i.in_epoch,
              i.in_expected,
              Hashtbl.fold (fun mid () acc -> mid :: acc) i.delivered []
              |> List.sort compare )
          | None -> (0, 0, [])
        in
        { Journal.peer; next_mid; unacked; in_epoch; in_expected;
          delivered_mids })
      peers
  in
  let rule_epochs, active_epoch = epoch_summary d.d_epoch_ops in
  Journal.append j
    (Journal.Checkpoint
       { time = Sim.now t.sim; incarnation = Journal.incarnation j;
         store = d.d_store; links; rule_epochs; active_epoch });
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  Obs.incr t.obs "recovery_checkpoints" ~labels:[ ("site", site) ]

let register_shell t shell =
  let site = Shell.site shell in
  Hashtbl.replace t.shells site shell;
  match t.mode with
  | Journal.Journal_with_checkpoint when t.checkpoint_period > 0.0 ->
    Sim.every t.sim ~period:t.checkpoint_period
      (fun () ->
        (* A crashed site cannot write its own checkpoint. *)
        if not (Net.site_is_down t.net ~site) then checkpoint_now t ~site)
      ~cancel:(fun () -> false)
  | _ -> ()

(* -- crash / restart -- *)

let crash t ~site =
  Net.crash_site t.net ~site;
  t.crashes <- t.crashes + 1;
  Obs.incr t.obs "recovery_crashes" ~labels:[ ("site", site) ]

let restart t ~site =
  let j = Journal.for_site t.journals ~site in
  let incarnation = Journal.incarnation j + 1 in
  Net.restart_site t.net ~site;
  Journal.append j (Journal.Restarted { time = Sim.now t.sim; incarnation });
  (* The crash destroyed volatile state; model that before restoring. *)
  (match Hashtbl.find_opt t.shells site with
   | Some shell -> Shell.reset_volatile shell
   | None -> ());
  (match t.reliable with
   | Some r -> Reliable.reset_endpoint r ~site
   | None -> ());
  (* Replay: checkpoint base plus everything after it. *)
  let d = derive j in
  t.replayed <- t.replayed + d.d_replayed;
  Obs.incr t.obs "recovery_replayed_records" ~by:d.d_replayed
    ~labels:[ ("site", site) ];
  (match Hashtbl.find_opt t.shells site with
   | Some shell ->
     List.iter (fun (item, v) -> Shell.restore_aux shell item v) d.d_store;
     (* Replay the rule-epoch transitions so the site re-enters the
        epoch it had actually reached instead of resurrecting the
        retired base program (ISSUE 6: crash during cutover). *)
     Shell.restore_epoch_ops shell d.d_epoch_ops
   | None -> ());
  (match t.reliable with
   | Some r ->
     List.iter
       (fun (peer, (i : in_state)) ->
         Reliable.restore_receiver_state r ~from_site:peer ~to_site:site
           ~epoch:i.in_epoch ~expected:i.in_expected
           ~delivered_mids:
             (Hashtbl.fold (fun mid () acc -> mid :: acc) i.delivered []
             |> List.sort compare))
       d.d_in;
     List.iter
       (fun (peer, (o : out_state)) ->
         (* New incarnation: sequence space restarts under the bumped
            epoch, so retransmits from the previous life get rejected
            instead of mis-deduplicated. *)
         Reliable.restore_sender_state r ~from_site:site ~to_site:peer
           ~epoch:incarnation ~next_mid:o.next_mid;
         Reliable.requeue_unacked r ~from_site:site ~to_site:peer)
       d.d_out
   | None -> ());
  t.restarts <- t.restarts + 1;
  Obs.incr t.obs "recovery_restarts" ~labels:[ ("site", site) ];
  (* §5: with the journal the crash maps to a metric failure — the
     notice doubles as the sign of life that lets peers which gave up
     on this site re-queue what they owe it. *)
  match Hashtbl.find_opt t.shells site with
  | Some shell -> Shell.report_failure shell Msg.Metric
  | None -> ()

let stats t =
  {
    crashes = t.crashes;
    restarts = t.restarts;
    replayed_records = t.replayed;
    checkpoints = t.checkpoints_taken;
  }
